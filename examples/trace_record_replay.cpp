/**
 * @file
 * Record/replay example: snapshot a workload into the binary trace
 * format, then replay it through two different coherence schemes.
 *
 * Usage:
 *   example_trace_record_replay record <file> [workload] [cores]
 *   example_trace_record_replay replay <file> [sparse|tiny]
 *
 * This is the integration path for external traces: anything that can
 * be converted into the tinydir trace format (see
 * workload/trace_file.hh for the layout) replays through every scheme
 * with identical per-core access sequences — the same methodology the
 * paper uses for its PIN-trace commercial workloads.
 */

#include <cstring>
#include <iostream>
#include <string>

#include "common/sim_error.hh"
#include "sim/driver.hh"
#include "sim/system.hh"
#include "workload/generator.hh"
#include "workload/trace_file.hh"

using namespace tinydir;

namespace
{

int
record(const std::string &path, const std::string &app, unsigned cores)
{
    SystemConfig cfg = SystemConfig::scaled(cores);
    auto lay = std::make_shared<const SharedLayout>(profileByName(app),
                                                    cfg);
    auto counts = TraceFileWriter::write(
        path, makeStreams(lay, cfg, 20000, /*prologue=*/true));
    std::uint64_t total = 0;
    for (auto n : counts)
        total += n;
    std::cout << "recorded " << total << " accesses (" << cores
              << " cores) of " << app << " to " << path << '\n';
    return 0;
}

int
replay(const std::string &path, const std::string &scheme)
{
    const TraceFileInfo info = traceFileInfo(path);
    SystemConfig cfg = SystemConfig::scaled(info.numCores);
    if (scheme == "tiny") {
        cfg.tracker = TrackerKind::TinyDir;
        cfg.dirSizeFactor = 1.0 / 64;
        cfg.tinySpill = true;
    } else {
        cfg.tracker = TrackerKind::SparseDir;
        cfg.dirSizeFactor = 2.0;
    }
    System sys(cfg);
    Driver driver;
    auto rr = driver.run(sys, openTraceStreams(path));
    auto d = sys.dump();
    std::cout << "replayed " << rr.accesses << " accesses under "
              << sys.tracker->name() << '\n';
    std::cout << "  exec cycles      : " << rr.execCycles << '\n';
    std::cout << "  LLC miss rate    : " << d.get("llc.miss_rate")
              << '\n';
    std::cout << "  lengthened reads : " << d.get("lengthened.frac")
              << '\n';
    std::cout << "  traffic (bytes)  : " << d.get("traffic.total.bytes")
              << '\n';
    return 0;
}

} // namespace

int
main(int argc, char **argv)
try {
    if (argc >= 3 && std::strcmp(argv[1], "record") == 0) {
        return record(argv[2], argc > 3 ? argv[3] : "TPC-C",
                      argc > 4 ? static_cast<unsigned>(
                                     std::atoi(argv[4])) : 16);
    }
    if (argc >= 3 && std::strcmp(argv[1], "replay") == 0)
        return replay(argv[2], argc > 3 ? argv[3] : "sparse");
    std::cerr << "usage:\n  " << argv[0]
              << " record <file> [workload] [cores]\n  " << argv[0]
              << " replay <file> [sparse|tiny]\n";
    return 1;
} catch (const SimError &e) {
    // Unknown workload, unreadable or malformed trace file, ...
    std::cerr << "error: " << e.what() << '\n';
    return 1;
}
