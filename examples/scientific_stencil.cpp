/**
 * @file
 * Domain example: a custom scientific-stencil workload built directly
 * against the AccessStream API (no canned profile).
 *
 * Models a 2D Jacobi sweep decomposed into per-core tiles: each core
 * streams over its private tile and reads the halo rows it shares
 * with its two neighbours — the nearest-neighbour pattern behind the
 * paper's ocean_cp outlier (Fig. 1), where *smaller* directories can
 * help by turning shared-halo three-hop reads into two-hop ones.
 */

#include <iostream>
#include <memory>
#include <vector>

#include "sim/driver.hh"
#include "sim/system.hh"

using namespace tinydir;

namespace
{

/** One core's sweep over its tile plus neighbour halos. */
class StencilStream : public AccessStream
{
  public:
    StencilStream(CoreId core, unsigned cores, std::uint64_t rows,
                  std::uint64_t row_blocks, std::uint64_t sweeps)
        : core(core), cores(cores), rows(rows), rowBlocks(row_blocks),
          remainingSweeps(sweeps)
    {
    }

    bool
    next(TraceAccess &out) override
    {
        if (remainingSweeps == 0)
            return false;
        out.gap = 4;
        // Walk the tile row by row; at the tile edges read the
        // neighbour's boundary row (the shared halo).
        const std::uint64_t tile_base =
            (1ull << 30) + core * rows * rowBlocks;
        if (phase == 0) { // read the halo of the previous neighbour
            const unsigned prev = (core + cores - 1) % cores;
            const std::uint64_t halo =
                (1ull << 30) + (prev * rows + rows - 1) * rowBlocks;
            out.type = AccessType::Load;
            out.addr = (halo + cursor) << blockShift;
        } else if (phase == 1) { // read the next neighbour's halo
            const unsigned nxt = (core + 1) % cores;
            const std::uint64_t halo =
                (1ull << 30) + (nxt * rows) * rowBlocks;
            out.type = AccessType::Load;
            out.addr = (halo + cursor) << blockShift;
        } else { // update the own tile
            out.type = (cursor % 3 == 0) ? AccessType::Store
                                         : AccessType::Load;
            out.addr = (tile_base + row * rowBlocks + cursor)
                << blockShift;
        }
        if (++cursor >= rowBlocks) {
            cursor = 0;
            if (phase < 2) {
                ++phase;
            } else if (++row >= rows) {
                row = 0;
                phase = 0;
                --remainingSweeps;
            }
        }
        return true;
    }

  private:
    CoreId core;
    unsigned cores;
    std::uint64_t rows, rowBlocks;
    std::uint64_t remainingSweeps;
    std::uint64_t row = 0, cursor = 0;
    unsigned phase = 0;
};

} // namespace

int
main()
{
    const unsigned cores = 16;
    std::cout << "2D stencil halo-exchange study on " << cores
              << " cores\n";
    for (double size : {2.0, 1.0 / 8, 1.0 / 64}) {
        SystemConfig cfg = SystemConfig::scaled(cores);
        cfg.tracker = TrackerKind::SparseDir;
        cfg.dirSizeFactor = size;
        System sys(cfg);
        std::vector<std::unique_ptr<AccessStream>> streams;
        for (CoreId c = 0; c < cores; ++c) {
            streams.push_back(std::make_unique<StencilStream>(
                c, cores, 24, 16, 6));
        }
        Driver driver;
        auto rr = driver.run(sys, std::move(streams));
        auto d = sys.dump();
        std::cout << "  sparse " << size << "x: cycles "
                  << rr.execCycles << "  fwd/owner "
                  << d.get("fwd.owner") << "  back-invals "
                  << d.get("inval.back") << '\n';
    }
    // The tiny directory captures the halo rows (hot shared blocks).
    SystemConfig cfg = SystemConfig::scaled(cores);
    cfg.tracker = TrackerKind::TinyDir;
    cfg.dirSizeFactor = 1.0 / 64;
    cfg.tinySpill = true;
    System sys(cfg);
    std::vector<std::unique_ptr<AccessStream>> streams;
    for (CoreId c = 0; c < cores; ++c) {
        streams.push_back(std::make_unique<StencilStream>(
            c, cores, 24, 16, 6));
    }
    Driver driver;
    auto rr = driver.run(sys, std::move(streams));
    auto d = sys.dump();
    std::cout << "  tiny 1/64x+DynSpill: cycles " << rr.execCycles
              << "  lengthened " << d.get("lengthened.frac") * 100
              << "%  tiny hits " << d.get("dir.hits") << '\n';
    return 0;
}
