/**
 * @file
 * Extension example: plugging a user-defined coherence tracker into
 * the engine.
 *
 * Implements a trivially simple "ideal map" tracker — an unbounded
 * hash map with zero conflict evictions — and races it against the
 * paper's schemes on the same workload. This is the upper bound any
 * finite tracking structure can approach, and a template for
 * experimenting with new designs: implement CoherenceTracker, hand it
 * to the engine, and reuse everything else.
 */

#include <iostream>
#include <memory>
#include <unordered_map>

#include "sim/driver.hh"
#include "sim/system.hh"
#include "workload/generator.hh"

using namespace tinydir;

namespace
{

/** Unbounded exact tracker: the ideal directory. */
class IdealMapTracker : public CoherenceTracker
{
  public:
    TrackerView
    view(Addr block) override
    {
        auto it = map.find(block);
        if (it == map.end())
            return {};
        return {it->second, Residence::DirSram};
    }

    void
    update(Addr block, const TrackState &ns, const ReqCtx &,
           EngineOps &) override
    {
        if (ns.invalid())
            map.erase(block);
        else
            map[block] = ns;
    }

    void
    evictionUpdate(Addr block, const TrackState &ns, MesiState,
                   EngineOps &) override
    {
        if (ns.invalid())
            map.erase(block);
        else
            map[block] = ns;
    }

    void onLlcDataVictim(const LlcEntry &, EngineOps &) override {}

    std::uint64_t trackerSramBits() const override { return 0; }
    std::string name() const override { return "ideal-map"; }

  private:
    std::unordered_map<Addr, TrackState> map;
};

Cycle
runWith(const SystemConfig &cfg, CoherenceTracker *custom)
{
    auto layout = std::make_shared<const SharedLayout>(
        profileByName("SPEC_JBB"), cfg);
    auto streams = makeStreams(layout, cfg, 4000);
    System sys(cfg);
    std::unique_ptr<CoherenceTracker> holder;
    if (custom) {
        holder.reset(custom);
        sys.engine.setTracker(holder.get());
        // keep both alive for the run
        auto rr = Driver{}.run(sys, std::move(streams));
        return rr.execCycles;
    }
    auto rr = Driver{}.run(sys, std::move(streams));
    return rr.execCycles;
}

} // namespace

int
main()
{
    SystemConfig cfg = SystemConfig::scaled(16);
    cfg.tracker = TrackerKind::SparseDir; // placeholder for custom run
    const Cycle ideal = runWith(cfg, new IdealMapTracker);

    cfg.tracker = TrackerKind::SparseDir;
    cfg.dirSizeFactor = 2.0;
    const Cycle sparse = runWith(cfg, nullptr);

    cfg.tracker = TrackerKind::TinyDir;
    cfg.dirSizeFactor = 1.0 / 64;
    cfg.tinySpill = true;
    const Cycle tiny = runWith(cfg, nullptr);

    std::cout << "SPEC_JBB, 16 cores, execution cycles:\n";
    std::cout << "  ideal unbounded tracker : " << ideal << '\n';
    std::cout << "  sparse 2x directory     : " << sparse << "  ("
              << static_cast<double>(sparse) /
                     static_cast<double>(ideal)
              << "x ideal)\n";
    std::cout << "  tiny 1/64x + DynSpill   : " << tiny << "  ("
              << static_cast<double>(tiny) /
                     static_cast<double>(ideal)
              << "x ideal)\n";
    std::cout << "\nImplementing CoherenceTracker (5 virtuals) is all"
                 " a new scheme needs.\n";
    return 0;
}
