/**
 * @file
 * Section VI future-work exploration: tiny directories for
 * inter-socket coherence tracking.
 *
 * The paper closes with: "The application of the tiny directory
 * proposal to inter-socket coherence tracking in a multi-socket
 * environment is the next natural step to explore."
 *
 * The library's abstractions map directly: model each *socket* as a
 * "core" whose private hierarchy stands in for the socket-local cache
 * hierarchy (MB-scale), the shared "LLC" as the memory-side snoop
 * filter substrate, hop latency as the inter-socket link (~40 ns),
 * and DRAM as the shared memory pool. The inter-socket directory is
 * then exactly the coherence tracker under study, sized as a fraction
 * of the aggregate socket-cache capacity.
 *
 * The study asks the paper's question one level up: how small can the
 * inter-socket directory be before cross-socket shared reads suffer,
 * and does DSTRA+gNRU+DynSpill still close the gap?
 */

#include <iostream>
#include <vector>

#include "sim/driver.hh"
#include "sim/experiment.hh"
#include "sim/system.hh"
#include "workload/generator.hh"

using namespace tinydir;

namespace
{

SystemConfig
socketConfig(unsigned sockets)
{
    SystemConfig cfg;
    cfg.numCores = sockets;        // one "core" = one socket
    cfg.l1Bytes = 512 * 1024;      // socket-local L2 slice stand-in
    cfg.l1Assoc = 8;
    cfg.l1Latency = 12;
    cfg.l2Bytes = 4 * 1024 * 1024; // socket LLC
    cfg.l2Assoc = 16;
    cfg.l2Latency = 30;
    cfg.hopCycles = 80;            // ~40 ns inter-socket link at 2 GHz
    cfg.llcAssoc = 16;
    cfg.llcBlocksPerN = 2.0;       // memory-side buffer/filter substrate
    cfg.memChannels = 4;
    cfg.dramCas = 30;
    cfg.dramRcd = 30;
    cfg.dramRp = 30;
    cfg.spillWindowAccesses = 1024;
    return cfg;
}

double
run(SystemConfig cfg, const WorkloadProfile &prof)
{
    cfg.validate();
    RunOut o = runOne(cfg, prof, 30000, 15000);
    return static_cast<double>(o.execCycles);
}

} // namespace

int
main(int argc, char **argv)
{
    const unsigned sockets =
        argc > 1 ? static_cast<unsigned>(std::atoi(argv[1])) : 8;
    // A database-like profile with a large cross-socket shared set.
    WorkloadProfile prof = profileByName("TPC-C");
    prof.privBlocksPerCore = 40000;   // per-socket private footprint
    prof.privHotBlocks = 4096;
    prof.sharedBlocksPerCore = 16384; // cross-socket shared tables
    prof.codeBlocks = 16384;

    std::cout << "Inter-socket coherence tracking study (" << sockets
              << " sockets, 4 MB socket LLCs, 40 ns links)\n\n";

    SystemConfig base = socketConfig(sockets);
    base.tracker = TrackerKind::SparseDir;
    base.dirSizeFactor = 2.0;
    const double ref = run(base, prof);
    std::cout << "sparse 2x inter-socket directory (reference): 1.0\n";

    for (double f : {1.0 / 4, 1.0 / 16, 1.0 / 64}) {
        SystemConfig cfg = socketConfig(sockets);
        cfg.tracker = TrackerKind::SparseDir;
        cfg.dirSizeFactor = f;
        std::cout << "sparse " << f << "x: " << run(cfg, prof) / ref
                  << '\n';
    }
    {
        SystemConfig cfg = socketConfig(sockets);
        cfg.tracker = TrackerKind::InLlc;
        std::cout << "in-memory-buffer tracking (no directory): "
                  << run(cfg, prof) / ref << '\n';
    }
    for (bool spill : {false, true}) {
        SystemConfig cfg = socketConfig(sockets);
        cfg.tracker = TrackerKind::TinyDir;
        cfg.dirSizeFactor = 1.0 / 64;
        cfg.tinyPolicy = TinyPolicy::DstraGnru;
        cfg.tinySpill = spill;
        std::cout << "tiny 1/64x DSTRA+gNRU"
                  << (spill ? "+DynSpill" : "") << ": "
                  << run(cfg, prof) / ref << '\n';
    }
    std::cout << "\nInterpretation: with 40 ns links, every recovered"
                 " two-hop read saves ~2 link crossings; the tiny\n"
                 "directory tracks the cross-socket shared working set"
                 " at a small fraction of the snoop-filter cost.\n";
    return 0;
}
