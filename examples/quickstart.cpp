/**
 * @file
 * Quickstart: simulate one workload on a tiny-directory system and
 * print the headline statistics.
 *
 * Build and run:
 *   cmake -B build -G Ninja && cmake --build build
 *   ./build/examples/example_quickstart [workload] [cores]
 *
 * This walks the full public API surface in ~40 lines: pick a
 * SystemConfig, pick a workload profile, run, read the stats dump.
 */

#include <cstdlib>
#include <iostream>

#include "common/sim_error.hh"
#include "sim/experiment.hh"
#include "workload/profile.hh"

using namespace tinydir;

int
main(int argc, char **argv)
try {
    const std::string app = argc > 1 ? argv[1] : "barnes";
    const unsigned cores = argc > 2
        ? static_cast<unsigned>(std::atoi(argv[2])) : 16;

    // A system with the paper's headline configuration: a 1/64x tiny
    // directory with DSTRA+gNRU allocation and dynamic spilling.
    SystemConfig cfg = SystemConfig::scaled(cores);
    cfg.tracker = TrackerKind::TinyDir;
    cfg.dirSizeFactor = 1.0 / 64;
    cfg.tinyPolicy = TinyPolicy::DstraGnru;
    cfg.tinySpill = true;

    std::cout << "Simulating " << app << " on " << cores
              << " cores with a 1/64x tiny directory...\n";
    RunOut out = runOne(cfg, profileByName(app), 5000);

    std::cout << "accesses executed : " << out.accesses << '\n';
    std::cout << "execution cycles  : " << out.execCycles << '\n';
    std::cout << "LLC miss rate     : "
              << out.stats.get("llc.miss_rate") << '\n';
    std::cout << "lengthened reads  : "
              << out.stats.get("lengthened.frac") * 100 << " %\n";
    std::cout << "tiny dir hits     : " << out.stats.get("dir.hits")
              << '\n';
    std::cout << "spilled entries   : " << out.stats.get("dir.spills")
              << '\n';
    std::cout << "total energy (J)  : "
              << out.stats.get("energy.total_j") << '\n';

    // Compare against the conventional 2x sparse directory.
    SystemConfig base = cfg;
    base.tracker = TrackerKind::SparseDir;
    base.dirSizeFactor = 2.0;
    base.tinySpill = false;
    RunOut ref = runOne(base, profileByName(app), 5000);
    std::cout << "normalized execution time vs sparse 2x: "
              << static_cast<double>(out.execCycles) /
                     static_cast<double>(ref.execCycles)
              << '\n';
    return 0;
} catch (const SimError &e) {
    // Unknown workload name, impossible geometry, ...
    std::cerr << "error: " << e.what() << '\n';
    return 1;
}
