/**
 * @file
 * Domain example: a web-serving consolidation study.
 *
 * The paper's introduction motivates tiny directories with commercial
 * server workloads (SPECWeb, TPC) whose shared code/data footprints
 * overwhelm small directories. This example sweeps the directory size
 * for the three SPECWeb-like profiles and reports where each scheme's
 * execution time and interconnect traffic land, answering the
 * capacity-planning question "how small a directory can a web tier
 * tolerate?".
 */

#include <iostream>
#include <vector>

#include "sim/experiment.hh"
#include "workload/profile.hh"

using namespace tinydir;

int
main(int argc, char **argv)
{
    BenchScale scale = parseBenchScale(argc, argv);
    const std::vector<const char *> apps{"SPEC_Web-B", "SPEC_Web-E",
                                         "SPEC_Web-S"};
    const std::vector<double> sizes{2.0, 1.0 / 16, 1.0 / 32,
                                    1.0 / 64};

    std::cout << "Web-tier directory sizing study (" << scale.cores
              << " cores)\n";
    for (const char *app : apps) {
        const auto &prof = profileByName(app);

        // Baseline sparse directories of decreasing size.
        SystemConfig cfg = baseConfig(scale);
        cfg.tracker = TrackerKind::SparseDir;
        cfg.dirSizeFactor = 2.0;
        RunOut base = runOne(cfg, prof, scale.accessesPerCore);

        std::cout << "\n== " << app << " ==\n";
        for (double size : sizes) {
            SystemConfig c2 = baseConfig(scale);
            c2.tracker = TrackerKind::SparseDir;
            c2.dirSizeFactor = size;
            RunOut o = runOne(c2, prof, scale.accessesPerCore);
            std::cout << "  sparse " << size << "x: exec "
                      << static_cast<double>(o.execCycles) /
                             static_cast<double>(base.execCycles)
                      << "  traffic "
                      << o.stats.get("traffic.total.bytes") /
                             base.stats.get("traffic.total.bytes")
                      << '\n';
        }
        // The tiny directory alternative at 1/64x.
        SystemConfig tiny = baseConfig(scale);
        tiny.tracker = TrackerKind::TinyDir;
        tiny.dirSizeFactor = 1.0 / 64;
        tiny.tinySpill = true;
        RunOut o = runOne(tiny, prof, scale.accessesPerCore);
        std::cout << "  tiny 1/64x+DynSpill: exec "
                  << static_cast<double>(o.execCycles) /
                         static_cast<double>(base.execCycles)
                  << "  traffic "
                  << o.stats.get("traffic.total.bytes") /
                         base.stats.get("traffic.total.bytes")
                  << "  (spills " << o.stats.get("dir.spills")
                  << ")\n";
    }
    return 0;
}
