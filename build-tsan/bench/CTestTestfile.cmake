# CMake generated Testfile for 
# Source directory: /root/repo/bench
# Build directory: /root/repo/build-tsan/bench
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(bench_quick_parallel "/root/repo/build-tsan/bench/fig10_tiny_32" "--quick" "--jobs=4")
set_tests_properties(bench_quick_parallel PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;41;add_test;/root/repo/bench/CMakeLists.txt;0;")
