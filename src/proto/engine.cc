#include "proto/engine.hh"

#include <algorithm>

#include "common/log.hh"
#include "ckpt/io.hh"

namespace tinydir
{

Engine::Engine(const SystemConfig &c, Llc &l, Mesh &m, Dram &d,
               std::vector<PrivateCache> &p)
    : cfg(c), llc(l), mesh(m), dram(d), privs(p)
{
    // Pre-size the busy-window map and the expiry wheel's node pool so
    // steady state never rehashes or allocates (expiry reaping keeps
    // the footprint near the live-window count, far below this).
    busyUntil.reserve(256);
    busyExpiry.reserve(256);
}

Cycle
Engine::bankService(unsigned bank, Cycle arrival, Cycle busy_cycles)
{
    const Cycle start = std::max(arrival, llc.bankFreeAt(bank));
    llc.setBankFreeAt(bank, start + busy_cycles);
    return start;
}

Cycle
Engine::dramTrip(Addr block, unsigned home_node, Cycle miss_at)
{
    const unsigned ch = dram.channelOf(block);
    const unsigned mn = mesh.memNode(ch);
    const Cycle at_mem = miss_at + mesh.latency(home_node, mn);
    stats.traffic.add(MsgClass::Processor, ctrlBytes); // read command
    Cycle mem_done;
    {
        auto dg = dramGuard();
        mem_done = dram.access(block, at_mem);
    }
    stats.traffic.add(MsgClass::Processor, dataBytes); // data return
    return mem_done + mesh.latency(mn, home_node);
}

void
Engine::writebackToMemory(Addr block, Cycle t)
{
    const unsigned ch = dram.channelOf(block);
    const unsigned mn = mesh.memNode(ch);
    const unsigned home_node = llc.bankOf(block);
    stats.traffic.add(MsgClass::Writeback, dataBytes);
    {
        auto dg = dramGuard();
        dram.access(block, t + mesh.latency(home_node, mn));
    }
    ++stats.dirtyWritebacks;
}

LlcEntry *
Engine::ensureLlcData(Llc::Loc loc, Addr block, Cycle t)
{
    if (LlcEntry *e = llc.findData(loc, block))
        return e;
    auto ar = llc.allocate(loc, block);
    if (ar.victim)
        processVictim(*ar.victim, t);
    LlcEntry *e = ar.slot;
    e->dirty = false;
    e->meta = LlcMeta::Normal;
    ++stats.llcFills;
    if (observer)
        observer->onLlcFill(block);
    return e;
}

void
Engine::processVictim(const LlcEntry &victim, Cycle t)
{
    switch (victim.meta) {
      case LlcMeta::Normal:
        llc.noteDeath(victim);
        noteLlcDataDeath(victim.tag);
        if (victim.dirty)
            writebackToMemory(victim.tag, t);
        tracker->onLlcDataVictim(victim, *this);
        break;
      case LlcMeta::CorruptExcl:
      case LlcMeta::CorruptShared:
        llc.noteDeath(victim);
        noteLlcDataDeath(victim.tag);
        // Reconstruction and back-invalidation are the tracker's
        // business; the pre-corruption dirtiness still needs to reach
        // memory because the tag dies.
        tracker->onLlcDataVictim(victim, *this);
        if (victim.dirty)
            writebackToMemory(victim.tag, t);
        break;
      case LlcMeta::Spill:
        tracker->onLlcSpillVictim(victim, *this);
        break;
    }
}

void
Engine::backInvalidate(Addr block, const TrackState &ts)
{
    backInvalidateTo(block, ts, DirtyDest::Llc);
}

void
Engine::backInvalidateTo(Addr block, const TrackState &ts, DirtyDest dest)
{
    if (ts.invalid())
        return;
    if (observer)
        observer->onBackInval(block, ts);
    ++stats.backInvals;
    bool dirty = false;
    auto inval_one = [&](CoreId s) {
        auto g = privGuard(s);
        auto r = privs[s].invalidate(block);
        if (!r.wasPresent)
            return;
        dirty |= r.wasDirty;
        stats.traffic.add(MsgClass::Coherence, ctrlBytes); // inval
        stats.traffic.add(MsgClass::Coherence,
                          r.wasDirty ? dataBytes : ctrlBytes); // ack
        ++stats.invalidations;
    };
    if (ts.exclusive())
        inval_one(ts.owner);
    else
        ts.sharers.forEach(inval_one);
    if (dirty) {
        switch (dest) {
          case DirtyDest::Llc: {
            LlcEntry *e = llc.findData(block);
            if (e && !e->isCorrupt()) {
                e->dirty = true;
            } else {
                // No (usable) LLC tag; send the data to memory rather
                // than allocating mid-transaction.
                writebackToMemory(block, *timeRef);
            }
            break;
          }
          case DirtyDest::Memory:
            writebackToMemory(block, *timeRef);
            break;
          case DirtyDest::Discard:
            break;
        }
    }
}

void
Engine::reconstructTraffic(Addr block, const TrackState &ts)
{
    (void)block;
    (void)ts;
    stats.traffic.add(MsgClass::Coherence, ctrlBytes); // query
    stats.traffic.add(MsgClass::Coherence,
                      ctrlBytes + reconstructBytes(cfg.numCores));
}

void
Engine::addTraffic(MsgClass cls, unsigned bytes, Counter count)
{
    stats.traffic.add(cls, bytes, count);
}

void
Engine::saveState(ckpt::Writer &w) const
{
    stats.llcAccesses.saveState(w);
    stats.llcDataMisses.saveState(w);
    stats.llcFills.saveState(w);
    stats.lengthenedReads.saveState(w);
    stats.lengthenedCode.saveState(w);
    stats.savedBySpill.saveState(w);
    stats.nackRetries.saveState(w);
    stats.ownerForwards.saveState(w);
    stats.invalidations.saveState(w);
    stats.backInvals.saveState(w);
    stats.dirtyWritebacks.saveState(w);
    stats.evictionNotices.saveState(w);
    stats.upgradeMisses.saveState(w);
    stats.traffic.saveState(w);
    stats.latency.saveState(w);
    busyUntil.saveState(
        w, [](ckpt::Writer &wr, const Cycle &c) { wr.u64(c); });
    // The wheel is rebuilt from the authoritative map on load; only
    // its clock needs to persist (stream slot of the old nextPrune).
    w.u64(busyExpiry.now());
    w.u64(*timeRef);
}

void
Engine::loadState(ckpt::Reader &r)
{
    stats.llcAccesses.loadState(r);
    stats.llcDataMisses.loadState(r);
    stats.llcFills.loadState(r);
    stats.lengthenedReads.loadState(r);
    stats.lengthenedCode.loadState(r);
    stats.savedBySpill.loadState(r);
    stats.nackRetries.loadState(r);
    stats.ownerForwards.loadState(r);
    stats.invalidations.loadState(r);
    stats.backInvals.loadState(r);
    stats.dirtyWritebacks.loadState(r);
    stats.evictionNotices.loadState(r);
    stats.upgradeMisses.loadState(r);
    stats.traffic.loadState(r);
    stats.latency.loadState(r);
    busyUntil.loadState(
        r, [](ckpt::Reader &rd, Cycle &c) { c = rd.u64(); });
    // Rebuild the expiry wheel from the authoritative map: one
    // reminder per live window, clock restored from the stream so a
    // re-save reproduces identical bytes.
    busyExpiry.reset(r.u64());
    busyUntil.forEach([&](Addr blk, const Cycle &until) {
        busyExpiry.insert(until, blk);
    });
    *timeRef = r.u64();
}

// TDLINT: hot
RequestResult
Engine::request(CoreId c, Addr block, ReqType type, Cycle t0)
{
    panic_if(tracker == nullptr, "engine has no tracker");
    *timeRef = std::max(*timeRef, t0);
    tracker->tick(t0);

    // Reap stale busy windows. Requests arrive in global time order,
    // so any window ending at or before this request's issue time can
    // only ever hit the lazy-erase path below — dropping it early is
    // behaviour-preserving. The expiry wheel delivers exactly the
    // reminders whose deadline has passed (no linear map sweeps); the
    // map stays authoritative, so a reminder made stale by a
    // consumed-and-recreated window is simply discarded.
    busyExpiry.advance(t0, [&](Cycle, Addr blk) {
        const Cycle *b = busyUntil.find(blk);
        if (b && *b <= t0)
            busyUntil.erase(blk);
    });

    const Llc::Loc loc = llc.locate(block);
    const unsigned home = loc.bank;
    const unsigned home_node = home;
    const unsigned req_node = nodeOfCore(c);
    const Cycle req_hop = mesh.latency(req_node, home_node);
    const Cycle tag_lat = cfg.llcTagLatency;
    const Cycle data_lat = cfg.llcDataLatency;

    // ---- NACK/retry on busy blocks ------------------------------------
    Cycle t = t0;
    Cycle arrival = t + req_hop;
    if (const Cycle *busy = busyUntil.find(block)) {
        while (*busy > arrival) {
            ++stats.nackRetries;
            stats.traffic.add(MsgClass::Processor, ctrlBytes); // request
            stats.traffic.add(MsgClass::Processor, ctrlBytes); // NACK
            const Cycle nack_back = arrival + tag_lat +
                mesh.latency(home_node, req_node) + cfg.nackRetryCycles;
            t = std::max(nack_back, *busy > req_hop ?
                         *busy - req_hop : *busy);
            arrival = t + req_hop;
        }
        busyUntil.erase(block);
    }

    stats.traffic.add(MsgClass::Processor, ctrlBytes); // the request
    ++stats.llcAccesses;
    if (type == ReqType::Upg)
        ++stats.upgradeMisses;

    TrackerView v = tracker->view(block);
    if (v.ts.exclusive() && v.ts.owner == c) {
        // Region-grain tracking (MgD) can name the requester itself as
        // the owner of a block it does not cache; serve as untracked.
        // Relaxed epochs reach the same shape for exact trackers when
        // the requester's eviction notice is still in a mailbox.
        if (relaxed && !tracker->coarseGrain())
            ++relax.softenedRequests;
        else
            panic_if(!tracker->coarseGrain(),
                     "exact tracker says requester owns the missing block");
        v = TrackerView{};
    }
    // Relaxed-skew softening of view/request mismatches. Every case is
    // a request that crossed an in-flight eviction notice or remote
    // grant inside the skew window; the serial engine (and exact
    // lockstep) treats each as a hard protocol violation.
    if (relaxed) {
        if (v.ts.kind == TrackState::Kind::Invalid &&
            type == ReqType::Upg) {
            // Upgrade of a block whose last sharer notice already
            // landed: re-shape into a plain write miss.
            type = ReqType::GetX;
            ++relax.softenedRequests;
        } else if (v.ts.kind == TrackState::Kind::Exclusive &&
                   type == ReqType::Upg) {
            // The requester's S copy was invalidated in flight and
            // another core took ownership: a GetX does the right thing.
            type = ReqType::GetX;
            ++relax.softenedRequests;
        } else if (v.ts.kind == TrackState::Kind::Shared &&
                   type == ReqType::Upg && !v.ts.sharers.contains(c)) {
            // Upgrade from a core the tracker no longer lists: proceed
            // as an upgrade anyway (grants M, invalidates the rest).
            ++relax.softenedRequests;
        }
    }
    auto [data, spill] = llc.findBoth(loc, block);
    // LRU ordering rule of Section IV-B1: E_B to MRU, then B.
    if (spill)
        llc.touchEntry(loc, spill);
    if (data)
        llc.touchEntry(loc, data);

    const bool is_read = type == ReqType::GetS || type == ReqType::GetSI;
    const bool stra_read = is_read && v.ts.shared();
    if (data) {
        if (stra_read)
            ++data->stats.straReads;
        else
            ++data->stats.otherAccesses;
    }

    RequestResult res;
    res.pre = !data ? PreEntry::None
        : data->isCorrupt() ? PreEntry::Corrupt : PreEntry::Normal;
    TrackState ns;
    bool missed = false;

    switch (v.ts.kind) {
      case TrackState::Kind::Invalid: {
        panic_if(type == ReqType::Upg, "upgrade of untracked block");
        if (data && data->isCorrupt()) {
            // The tracker's view already dropped the block (its last
            // notice is sitting in a mailbox) but the data ways still
            // carry tracking bits: the data is unusable, so take a
            // plain DRAM trip. tracker->update() below re-establishes
            // tracking state over the entry.
            panic_if(!relaxed, "corrupt LLC entry with no tracking state");
            ++relax.softenedRequests;
            missed = true;
            ++stats.llcDataMisses;
            const Cycle start = bankService(home, arrival, tag_lat);
            const Cycle back =
                dramTrip(block, home_node, start + tag_lat);
            res.done = back + data_lat + mesh.latency(home_node, req_node);
            res.src = DataSource::Dram;
        } else if (data) {
            const Cycle start =
                bankService(home, arrival, tag_lat + data_lat);
            res.done = start + tag_lat + data_lat +
                mesh.latency(home_node, req_node);
            res.src = DataSource::Llc;
        } else {
            missed = true;
            ++stats.llcDataMisses;
            const Cycle start = bankService(home, arrival, tag_lat);
            const Cycle back =
                dramTrip(block, home_node, start + tag_lat);
            data = ensureLlcData(loc, block, back);
            ++data->stats.otherAccesses;
            res.done = back + data_lat + mesh.latency(home_node, req_node);
            res.src = DataSource::Dram;
        }
        stats.traffic.add(MsgClass::Processor, dataBytes); // response
        if (type == ReqType::GetSI) {
            res.grant = MesiState::S;
            ns = TrackState::makeShared(SharerSet::single(c));
        } else if (type == ReqType::GetS) {
            res.grant = MesiState::E;
            ns = TrackState::makeExclusive(c);
        } else {
            res.grant = MesiState::M;
            ns = TrackState::makeExclusive(c);
        }
        break;
      }

      case TrackState::Kind::Exclusive: {
        const CoreId o = v.ts.owner;
        panic_if(o == c, "owner re-requesting block it owns");
        panic_if(type == ReqType::Upg, "upgrade of exclusively owned "
                 "block by another core");
        const Cycle extra =
            v.where == Residence::LlcCorrupt ? data_lat + 1 : 0;
        Cycle bcast_extra = 0;
        if (v.where == Residence::Broadcast) {
            // Stash recovery: probe every core (Section V-C).
            stats.traffic.add(MsgClass::Coherence, ctrlBytes,
                              cfg.numCores - 1); // probes
            stats.traffic.add(MsgClass::Coherence, ctrlBytes,
                              cfg.numCores - 2); // miss acks
            bcast_extra = mesh.maxLatencyFrom(home_node);
        }
        const Cycle start = bankService(home, arrival, tag_lat + extra);
        const Cycle fwd_at = start + tag_lat + extra + bcast_extra;
        ++stats.ownerForwards;
        stats.traffic.add(MsgClass::Coherence, ctrlBytes); // forward

        bool owner_present;
        {
            auto g = privGuard(o);
            owner_present = privs[o].present(block);
        }
        if (!owner_present) {
            // Region-grain false positive (MgD): the region owner does
            // not actually cache this block; home supplies it.
            stats.traffic.add(MsgClass::Coherence, ctrlBytes); // miss rep
            const Cycle back = fwd_at + mesh.latency(home_node, o) +
                cfg.l2Latency + mesh.latency(o, home_node);
            if (data && !data->isCorrupt()) {
                res.done = back + data_lat +
                    mesh.latency(home_node, req_node);
                res.src = DataSource::Llc;
            } else {
                missed = true;
                ++stats.llcDataMisses;
                const Cycle ret = dramTrip(block, home_node, back);
                data = ensureLlcData(loc, block, ret);
                res.done = ret + data_lat +
                    mesh.latency(home_node, req_node);
                res.src = DataSource::Dram;
            }
            stats.traffic.add(MsgClass::Processor, dataBytes);
            if (type == ReqType::GetSI) {
                res.grant = MesiState::S;
                ns = TrackState::makeShared(SharerSet::single(c));
            } else if (type == ReqType::GetS) {
                res.grant = MesiState::E;
                ns = TrackState::makeExclusive(c);
            } else {
                res.grant = MesiState::M;
                ns = TrackState::makeExclusive(c);
            }
            break;
        }

        const Cycle at_owner = fwd_at + mesh.latency(home_node, o) +
            cfg.l2Latency;
        res.done = at_owner + mesh.latency(nodeOfCore(o), req_node);
        res.src = DataSource::Owner;
        stats.traffic.add(MsgClass::Processor, dataBytes); // owner->req
        stats.traffic.add(MsgClass::Coherence, ctrlBytes); // busy-clear
        const Cycle busy_end =
            at_owner + mesh.latency(nodeOfCore(o), home_node);
        busyUntil[block] = busy_end;
        busyExpiry.insert(busy_end, block);

        if (is_read) {
            auto d = [&] {
                auto g = privGuard(o);
                return privs[o].downgrade(block);
            }();
            if (d.wasDirty) {
                // Sharing writeback to the home LLC.
                stats.traffic.add(MsgClass::Coherence, dataBytes);
                LlcEntry *e = ensureLlcData(loc, block, res.done);
                e->dirty = true;
                data = e;
            }
            SharerSet sh;
            sh.add(o);
            sh.add(c);
            ns = TrackState::makeShared(sh);
            res.grant = MesiState::S;
        } else { // GetX
            {
                auto g = privGuard(o);
                privs[o].invalidate(block);
            }
            ++stats.invalidations;
            ns = TrackState::makeExclusive(c);
            res.grant = MesiState::M;
        }
        break;
      }

      case TrackState::Kind::Shared: {
        const SharerSet &sh = v.ts.sharers;
        Cycle bcast_extra = 0;
        if (v.where == Residence::Broadcast) {
            stats.traffic.add(MsgClass::Coherence, ctrlBytes,
                              cfg.numCores - 1);
            stats.traffic.add(MsgClass::Coherence, ctrlBytes,
                              cfg.numCores - 2);
            bcast_extra = mesh.maxLatencyFrom(home_node);
        }
        if (is_read) {
            // With exact tracking a sharer can never re-request; a
            // coarse sharer vector may list the requester's
            // groupmates conservatively, which is harmless on the
            // two-hop path below. Relaxed skew re-creates the shape
            // when the requester's own PutS is still in flight.
            if (relaxed && sh.contains(c) && cfg.sharerGrain == 1)
                ++relax.softenedRequests;
            else
                panic_if(sh.contains(c) && cfg.sharerGrain == 1,
                         "sharer re-requesting read");
            const CoreId fwd_sharer = sh.electNear(c, cfg.numCores);
            if (relaxed && v.where == Residence::LlcCorrupt &&
                fwd_sharer == invalidCore) {
                // Stale singleton sharer (the requester itself) on a
                // corrupt entry: no core can supply the data, so take
                // a plain DRAM trip instead of the three-hop forward.
                ++relax.softenedRequests;
                missed = true;
                ++stats.llcDataMisses;
                const Cycle start = bankService(home, arrival, tag_lat);
                const Cycle back =
                    dramTrip(block, home_node, start + tag_lat);
                res.done = back + data_lat +
                    mesh.latency(home_node, req_node);
                res.src = DataSource::Dram;
                stats.traffic.add(MsgClass::Processor, dataBytes);
            } else if (v.where == Residence::LlcCorrupt) {
                // The three-hop lengthened path (Section III-C).
                const CoreId s = fwd_sharer;
                panic_if(s == invalidCore, "shared with no sharers");
                const Cycle start =
                    bankService(home, arrival, tag_lat + data_lat + 1);
                const Cycle fwd_at = start + tag_lat + data_lat + 1;
                const Cycle at_sharer = fwd_at +
                    mesh.latency(home_node, nodeOfCore(s)) +
                    cfg.l2Latency;
                res.done = at_sharer +
                    mesh.latency(nodeOfCore(s), req_node);
                res.src = DataSource::Sharer;
                const Cycle busy_end = at_sharer +
                    mesh.latency(nodeOfCore(s), home_node);
                busyUntil[block] = busy_end;
                busyExpiry.insert(busy_end, block);
                stats.traffic.add(MsgClass::Coherence, ctrlBytes); // fwd
                stats.traffic.add(MsgClass::Processor, dataBytes);
                stats.traffic.add(MsgClass::Coherence, ctrlBytes); // clr
                ++stats.lengthenedReads;
                if (type == ReqType::GetSI)
                    ++stats.lengthenedCode;
                if (data) {
                    ++data->stats.lengthened;
                    if (type == ReqType::GetSI)
                        ++data->stats.lengthenedCode;
                }
            } else {
                if (v.where == Residence::LlcSpill)
                    ++stats.savedBySpill;
                // Two-hop: the LLC (or DRAM) supplies the data.
                const Cycle occ = tag_lat + data_lat +
                    (spill ? data_lat + 1 : 0);
                if (data) {
                    const Cycle start = bankService(home, arrival, occ);
                    res.done = start + tag_lat + data_lat + bcast_extra +
                        mesh.latency(home_node, req_node);
                    res.src = DataSource::Llc;
                } else {
                    missed = true;
                    ++stats.llcDataMisses;
                    const Cycle start =
                        bankService(home, arrival, tag_lat);
                    const Cycle back = dramTrip(block, home_node,
                                                start + tag_lat +
                                                bcast_extra);
                    data = ensureLlcData(loc, block, back);
                    ++data->stats.straReads;
                    res.done = back + data_lat +
                        mesh.latency(home_node, req_node);
                    res.src = DataSource::Dram;
                }
                stats.traffic.add(MsgClass::Processor, dataBytes);
            }
            SharerSet nsh = sh;
            nsh.add(c);
            ns = TrackState::makeShared(nsh);
            res.grant = MesiState::S;
        } else {
            // GetX or Upg: invalidate every other sharer; acks are
            // collected at the requester (sequential consistency).
            const bool upg = type == ReqType::Upg;
            panic_if(!relaxed && upg && !sh.contains(c),
                     "upgrade from non-sharer");
            if (relaxed && !upg && sh.contains(c) && cfg.sharerGrain == 1)
                ++relax.softenedRequests;
            else
                panic_if(!upg && sh.contains(c) && cfg.sharerGrain == 1,
                         "GetX from current sharer (should be Upg)");
            const bool corrupt_like =
                v.where == Residence::LlcCorrupt ||
                v.where == Residence::LlcSpill;
            const Cycle extra = corrupt_like ? data_lat + 1 : 0;
            const Cycle start = bankService(home, arrival,
                                            tag_lat + extra +
                                            (upg ? 0 : data_lat));
            const Cycle ready = start + tag_lat + extra + bcast_extra;
            CoreId data_sharer = invalidCore;
            if (!upg && v.where == Residence::LlcCorrupt)
                data_sharer = sh.electNear(c, cfg.numCores);
            Cycle worst = 0;
            unsigned count = 0;
            sh.forEach([&](CoreId s) {
                if (s == c)
                    return;
                {
                    auto g = privGuard(s);
                    privs[s].invalidate(block);
                }
                ++count;
                stats.traffic.add(MsgClass::Coherence, ctrlBytes);
                stats.traffic.add(MsgClass::Coherence,
                                  s == data_sharer ? dataBytes
                                                   : ctrlBytes);
                const Cycle p =
                    mesh.latency(home_node, nodeOfCore(s)) +
                    cfg.l1Latency +
                    mesh.latency(nodeOfCore(s), req_node);
                worst = std::max(worst, p);
            });
            stats.invalidations += count;
            Cycle data_path = 0;
            if (data_sharer != invalidCore)
                res.src = DataSource::Sharer;
            if (!upg && data_sharer == invalidCore) {
                if (data && !data->isCorrupt()) {
                    data_path = data_lat +
                        mesh.latency(home_node, req_node);
                    stats.traffic.add(MsgClass::Processor, dataBytes);
                    res.src = DataSource::Llc;
                } else {
                    missed = true;
                    ++stats.llcDataMisses;
                    const Cycle back =
                        dramTrip(block, home_node, ready);
                    data = ensureLlcData(loc, block, back);
                    data_path = (back - ready) + data_lat +
                        mesh.latency(home_node, req_node);
                    stats.traffic.add(MsgClass::Processor, dataBytes);
                    res.src = DataSource::Dram;
                }
            } else if (upg) {
                stats.traffic.add(MsgClass::Processor, ctrlBytes); // ack
                data_path = mesh.latency(home_node, req_node);
            }
            res.done = ready + std::max(worst, data_path);
            ns = TrackState::makeExclusive(c);
            res.grant = MesiState::M;
        }
        break;
      }
    }

    // Residency bookkeeping must precede tracker->update(): the update
    // may reallocate LLC ways and stale this pointer.
    if (data && ns.shared()) {
        data->stats.maxSharers =
            std::max(data->stats.maxSharers, ns.sharers.count());
    }
    data = nullptr;
    spill = nullptr;

    ReqCtx ctx{c, type, t0};
    tracker->update(block, ns, ctx, *this);
    tracker->onLlcAccess(block, missed, stra_read);
    stats.recordLatency(res.done - t0);

    *timeRef = std::max(*timeRef, res.done);
    return res;
}

// TDLINT: hot
void
Engine::evictionNotice(CoreId c, Addr block, MesiState st, Cycle t)
{
    panic_if(tracker == nullptr, "engine has no tracker");
    panic_if(st == MesiState::I, "eviction notice with I state");
    *timeRef = std::max(*timeRef, t);
    tracker->tick(t);

    // Under relaxed epochs a notice can arrive after the tracker has
    // already moved past the evicting core's view of the block (the
    // race it lost is sitting in a mailbox). Such stale notices are
    // dropped whole — no stats, no traffic, no tracker update — and
    // counted so the divergence is observable.
    TrackerView v = tracker->view(block);
    TrackState ns = v.ts;
    switch (v.ts.kind) {
      case TrackState::Kind::Exclusive:
        if (relaxed && v.ts.owner != c) {
            ++relax.staleNotices;
            return;
        }
        panic_if(v.ts.owner != c, "eviction notice from non-owner");
        ns = TrackState{};
        break;
      case TrackState::Kind::Shared:
        if (relaxed &&
            (!v.ts.sharers.contains(c) || st != MesiState::S)) {
            ++relax.staleNotices;
            return;
        }
        panic_if(!v.ts.sharers.contains(c),
                 "eviction notice from non-sharer");
        panic_if(st != MesiState::S, "non-S eviction of shared block");
        ns.sharers.remove(c);
        if (ns.sharers.empty())
            ns = TrackState{};
        break;
      case TrackState::Kind::Invalid:
        // Region-grain (MgD) private blocks are not block-tracked;
        // the tracker handles the notice below. An exact tracker with
        // no record only sees this shape under relaxed skew.
        if (relaxed && !tracker->coarseGrain()) {
            ++relax.staleNotices;
            return;
        }
        break;
    }
    ++stats.evictionNotices;

    const unsigned extra = tracker->evictionNoticeExtraBytes(st);
    if (st == MesiState::M)
        stats.traffic.add(MsgClass::Writeback, dataBytes);
    else
        stats.traffic.add(MsgClass::Writeback, ctrlBytes + extra);
    stats.traffic.add(MsgClass::Writeback, ctrlBytes); // the ack

    tracker->evictionUpdate(block, ns, st, *this);

    if (st == MesiState::M) {
        LlcEntry *e = ensureLlcData(block, t);
        if (relaxed && e->isCorrupt()) {
            // A concurrent transaction corrupted the entry while this
            // PutM was in flight; route the dirty data to memory
            // instead of marking a corrupt way dirty.
            writebackToMemory(block, t);
            ++relax.staleNotices;
        } else {
            panic_if(e->isCorrupt(),
                     "PutM left a corrupt LLC entry behind");
            e->dirty = true;
        }
    }
}

} // namespace tinydir
