/**
 * @file
 * The tiny directory (paper Section IV) — the central contribution.
 *
 * A very small sparse directory (1/32x .. 1/256x) augments the in-LLC
 * tracking substrate of Section III. An allocation policy decides, at
 * exactly two kinds of events, whether a block's tracking moves into
 * the tiny directory:
 *   (i)  a read request for a block in a corrupted state;
 *   (ii) an instruction read for a block in unowned state.
 *
 * Policies:
 *  - DSTRA: victimize the lowest-STRA-category way, only if strictly
 *    below the candidate's category.
 *  - DSTRA+gNRU: generational not-recently-used refinement; entries
 *    unused for a full generation gain eviction priority (EP), letting
 *    equal-category useless entries be replaced. The generation length
 *    is the measured mean inter-reuse interval, maintained with the
 *    paper's quantized T/A/B counter scheme.
 *
 * When the tiny directory declines (or evicts a shared entry), the
 * Dynamic Spill policy (Section IV-B, proto/spill.hh) may place the
 * tracking entry in an LLC way of the block's own set instead.
 */

#ifndef TINYDIR_PROTO_TINY_DIR_HH
#define TINYDIR_PROTO_TINY_DIR_HH

#include <vector>

#include "cache/llc.hh"
#include "common/config.hh"
#include "proto/spill.hh"
#include "proto/tracker.hh"

namespace tinydir
{

/** Tiny directory + in-LLC substrate + optional dynamic spilling. */
class TinyDirTracker : public CoherenceTracker
{
  public:
    TinyDirTracker(const SystemConfig &cfg, Llc &llc);

    TrackerView view(Addr block) override;
    void update(Addr block, const TrackState &ns, const ReqCtx &ctx,
                EngineOps &ops) override;
    void evictionUpdate(Addr block, const TrackState &ns, MesiState put,
                        EngineOps &ops) override;
    void onLlcDataVictim(const LlcEntry &victim, EngineOps &ops) override;
    void onLlcSpillVictim(const LlcEntry &victim, EngineOps &ops) override;
    void onLlcAccess(Addr block, bool miss, bool stra_read) override;
    void tick(Cycle now) override;
    unsigned evictionNoticeExtraBytes(MesiState s) const override;
    std::uint64_t trackerSramBits() const override;
    std::string name() const override;

    Counter dirHits() const override { return hits_.value(); }
    Counter dirAllocs() const override { return allocs_.value(); }
    Counter spills() const override { return spills_.value(); }

    const SpillPolicy &spillPolicy() const { return spill; }

    bool debugHasDirEntry(Addr block) override;
    bool debugForgeState(Addr block, const TrackState &ts) override;
    bool debugDropEntry(Addr block) override;

    void saveState(ckpt::Writer &w) const override;
    void loadState(ckpt::Reader &r) override;
    bool warmRegister(Addr block, const TrackState &ts,
                      EngineOps &ops) override;

    void
    resetStats() override
    {
        hits_.reset();
        allocs_.reset();
        spills_.reset();
    }

  private:
    /** One tiny directory entry (155 bits in the paper). */
    struct TinyEntry
    {
        Addr tag = 0;
        bool valid = false;
        TrackState::Kind kind = TrackState::Kind::Invalid;
        CoreId owner = invalidCore;
        SharerSet sharers;
        std::uint8_t strac = 0;
        std::uint8_t oac = 0;
        std::uint16_t tlast = 0; //!< last T value seen (gNRU)
        bool rbit = false;       //!< reused this generation
        bool epbit = false;      //!< eviction priority

        TrackState
        state() const
        {
            TrackState ts;
            ts.kind = kind;
            ts.owner = owner;
            ts.sharers = sharers;
            return ts;
        }

        void
        setState(const TrackState &ts)
        {
            kind = ts.kind;
            owner = ts.owner;
            sharers = ts.sharers;
        }
    };

    /** One per-bank tiny directory slice with its gNRU counters. */
    struct Slice
    {
        std::vector<TinyEntry> entries;
        std::uint16_t tcounter = 0;     //!< 10-bit T counter
        std::uint64_t accA = 0;         //!< accumulated reuse gaps
        std::uint64_t accB = 0;         //!< gap count
        std::uint64_t genRemaining = 0; //!< quanta left in generation
    };

    TinyEntry *findTiny(Addr block);
    Slice &sliceOf(Addr block) { return slices[block % banks]; }
    std::uint64_t setOf(Addr block) const
    {
        return (block / banks) & (sets - 1);
    }

    /** STRA category implied by a STRAC/OAC pair. */
    static unsigned catOf(std::uint8_t strac, std::uint8_t oac);

    /** Apply the saturating counter update with halving. */
    void bumpCounters(std::uint8_t &strac, std::uint8_t &oac,
                      bool stra_read) const;

    /** gNRU bookkeeping on a fill or access of an entry. */
    void gnruTouch(Slice &sl, TinyEntry &e);

    /** End-of-generation sweep for one slice. */
    void endGeneration(Slice &sl);

    /**
     * DSTRA / DSTRA+gNRU victim selection in the target set for a
     * candidate of category @p j. Returns the way index, or -1 when
     * the policy declines.
     */
    int selectVictim(Slice &sl, std::uint64_t set, unsigned j);

    /**
     * Try to move @p block (new state @p ns, counters @p strac/@p oac,
     * currently at @p where) into the tiny directory. Handles victim
     * transfer and, for corrupted blocks, LLC reconstruction.
     */
    bool tryTinyAlloc(Addr block, const TrackState &ns,
                      std::uint8_t strac, std::uint8_t oac,
                      Residence where, EngineOps &ops);

    /** Try to spill @p block's tracking entry into its LLC set. */
    bool trySpill(Addr block, const TrackState &ns, std::uint8_t strac,
                  std::uint8_t oac, EngineOps &ops);

    /** Move an evicted tiny entry out (spill / corrupt / back-inval). */
    void transferOut(const TinyEntry &victim, EngineOps &ops);

    /** Restore a corrupted LLC entry to Normal (reconstruction). */
    void reconstruct(Addr block, EngineOps &ops);

    const SystemConfig &cfg;
    Llc &llc;
    unsigned banks;
    std::uint64_t sets;
    unsigned ways;
    bool gnru;
    bool spillEnabled;
    SpillPolicy spill;
    Cycle lastQuantum = 0;
    std::vector<Slice> slices;
    Scalar hits_, allocs_, spills_;
};

} // namespace tinydir

#endif // TINYDIR_PROTO_TINY_DIR_HH
