/**
 * @file
 * Conventional sparse directory (the paper's baseline).
 *
 * One slice per LLC bank, 8-way set-associative with 1-bit NRU
 * replacement (Table I), fully-associative once a slice drops to 16
 * entries or fewer. Every privately cached block owns an entry; an
 * entry eviction back-invalidates the block from all private caches.
 */

#ifndef TINYDIR_PROTO_SPARSE_DIR_HH
#define TINYDIR_PROTO_SPARSE_DIR_HH

#include <vector>

#include "common/config.hh"
#include "mem/cache_array.hh"
#include "proto/tracker.hh"

namespace tinydir
{

/** A full-map sparse directory entry. */
struct SparseDirEntry
{
    Addr tag = 0;
    bool valid = false;
    TrackState::Kind kind = TrackState::Kind::Invalid;
    CoreId owner = invalidCore;
    SharerSet sharers;

    TrackState
    state() const
    {
        TrackState ts;
        ts.kind = kind;
        ts.owner = owner;
        ts.sharers = sharers;
        return ts;
    }

    void
    setState(const TrackState &ts)
    {
        kind = ts.kind;
        owner = ts.owner;
        sharers = ts.sharers;
    }

    /** Serialize the whole entry (ckpt/). */
    template <typename W>
    void
    saveState(W &w) const
    {
        w.u64(tag);
        w.b(valid);
        state().saveState(w);
    }

    /** Restore state written by saveState. */
    template <typename R>
    void
    loadState(R &r)
    {
        tag = r.u64();
        valid = r.b();
        TrackState ts;
        ts.loadState(r);
        setState(ts);
    }
};

/** The conventional sparse directory tracker. */
class SparseDirTracker : public CoherenceTracker
{
  public:
    explicit SparseDirTracker(const SystemConfig &cfg);

    TrackerView view(Addr block) override;
    void update(Addr block, const TrackState &ns, const ReqCtx &ctx,
                EngineOps &ops) override;
    void evictionUpdate(Addr block, const TrackState &ns, MesiState put,
                        EngineOps &ops) override;
    void onLlcDataVictim(const LlcEntry &victim, EngineOps &ops) override;
    std::uint64_t trackerSramBits() const override;
    std::string name() const override;

    Counter
    dirAllocs() const override
    {
        Counter total = 0;
        for (const Scalar &s : sliceAllocs)
            total += s.value();
        return total;
    }

    void
    resetStats() override
    {
        for (Scalar &s : sliceAllocs)
            s.reset();
    }

    /**
     * All state (slices, alloc counters) is indexed by `block % banks`
     * with no cross-slice structures: safe for concurrent shard
     * engines holding distinct home locks.
     */
    bool shardSafe() const override { return true; }

    bool debugHasDirEntry(Addr block) override;
    bool debugForgeState(Addr block, const TrackState &ts) override;
    bool debugDropEntry(Addr block) override;

    void saveState(ckpt::Writer &w) const override;
    void loadState(ckpt::Reader &r) override;

  private:
    /** Store @p ns, allocating (and possibly evicting) as needed. */
    void store(Addr block, const TrackState &ns, EngineOps &ops);

    /** Expand a sharer set to the configured coarse grain. */
    SharerSet coarsen(const SharerSet &s) const;

    const SystemConfig &cfg;
    unsigned banks;
    std::uint64_t sets;
    unsigned ways;
    std::vector<CacheArray<SparseDirEntry>> slices;
    /** Allocation counters, one per slice (see shardSafe()). */
    std::vector<Scalar> sliceAllocs;
};

} // namespace tinydir

#endif // TINYDIR_PROTO_SPARSE_DIR_HH
