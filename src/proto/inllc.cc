#include "proto/inllc.hh"

#include "common/log.hh"

namespace tinydir
{

namespace inllc_detail
{

TrackState
stateOf(const LlcEntry &e)
{
    TrackState ts;
    switch (e.meta) {
      case LlcMeta::CorruptExcl:
        ts.kind = TrackState::Kind::Exclusive;
        ts.owner = e.owner;
        break;
      case LlcMeta::CorruptShared:
      case LlcMeta::Spill:
        if (e.owner != invalidCore) {
            ts.kind = TrackState::Kind::Exclusive;
            ts.owner = e.owner;
        } else {
            ts.kind = TrackState::Kind::Shared;
            ts.sharers = e.sharers;
        }
        break;
      case LlcMeta::Normal:
        if (e.owner != invalidCore) {
            ts.kind = TrackState::Kind::Exclusive;
            ts.owner = e.owner;
        } else if (!e.sharers.empty()) {
            ts.kind = TrackState::Kind::Shared;
            ts.sharers = e.sharers;
        }
        break;
    }
    return ts;
}

void
encode(LlcEntry &e, const TrackState &ts)
{
    if (ts.exclusive()) {
        e.owner = ts.owner;
        e.sharers.clear();
    } else if (ts.shared()) {
        e.owner = invalidCore;
        e.sharers = ts.sharers;
    } else {
        e.owner = invalidCore;
        e.sharers.clear();
    }
}

} // namespace inllc_detail

// ---------------------------------------------------------------------------
// InLlcTracker
// ---------------------------------------------------------------------------

InLlcTracker::InLlcTracker(const SystemConfig &c, Llc &l)
    : cfg(c), llc(l)
{
}

TrackerView
InLlcTracker::view(Addr block)
{
    LlcEntry *e = llc.findData(block);
    if (!e || !e->isCorrupt())
        return {};
    return {inllc_detail::stateOf(*e), Residence::LlcCorrupt};
}

void
InLlcTracker::update(Addr block, const TrackState &ns, const ReqCtx &ctx,
                     EngineOps &ops)
{
    (void)ctx;
    (void)ops;
    LlcEntry *e = llc.findData(block);
    panic_if(!e, "in-LLC tracking without an LLC tag for block ", block);
    if (ns.invalid()) {
        e->meta = LlcMeta::Normal;
        inllc_detail::encode(*e, ns);
        return;
    }
    e->meta = ns.exclusive() ? LlcMeta::CorruptExcl
                             : LlcMeta::CorruptShared;
    inllc_detail::encode(*e, ns);
    llc.noteCohDataWrite();
}

void
InLlcTracker::evictionUpdate(Addr block, const TrackState &ns,
                             MesiState put, EngineOps &ops)
{
    LlcEntry *e = llc.findData(block);
    panic_if(!e, "eviction notice for block without LLC tag: ", block);
    panic_if(!e->isCorrupt(),
             "eviction notice for a non-corrupt in-LLC block");
    if (ns.invalid()) {
        if (put == MesiState::S) {
            // The LLC asks the last sharer for the borrowed bits
            // (special eviction acknowledgement, Section III-B).
            ops.addTraffic(MsgClass::Writeback,
                           ctrlBytes + reconstructBytes(cfg.numCores));
        }
        // PutE carried the bits in the notice; PutM carries full data.
        e->meta = LlcMeta::Normal;
        inllc_detail::encode(*e, ns);
        llc.noteCohDataWrite(); // data-array write to restore the bits
        return;
    }
    panic_if(!ns.shared(), "notice left in-LLC block exclusively owned");
    e->meta = LlcMeta::CorruptShared;
    inllc_detail::encode(*e, ns);
    llc.noteCohDataWrite();
}

void
InLlcTracker::onLlcDataVictim(const LlcEntry &victim, EngineOps &ops)
{
    if (!victim.isCorrupt())
        return;
    const TrackState ts = inllc_detail::stateOf(victim);
    // Reconstruct the block by querying the owner / an elected sharer,
    // then back-invalidate every private copy (Section III-B).
    ops.reconstructTraffic(victim.tag, ts);
    ops.backInvalidate(victim.tag, ts);
}

unsigned
InLlcTracker::evictionNoticeExtraBytes(MesiState s) const
{
    // E-state eviction notices carry the first 4 + ceil(log2 C) bits
    // of the block so the LLC can reconstruct it.
    return s == MesiState::E ? reconstructBytes(cfg.numCores) : 0;
}

bool
InLlcTracker::warmRegister(Addr block, const TrackState &ts,
                           EngineOps &ops)
{
    // Tag-inclusive tracking: a block without an LLC tag cannot be
    // tracked at all. Let the caller back-invalidate it instead.
    if (!llc.findData(block))
        return false;
    return CoherenceTracker::warmRegister(block, ts, ops);
}

// ---------------------------------------------------------------------------
// TagExtendedTracker
// ---------------------------------------------------------------------------

TagExtendedTracker::TagExtendedTracker(const SystemConfig &c, Llc &l)
    : cfg(c), llc(l)
{
}

TrackerView
TagExtendedTracker::view(Addr block)
{
    LlcEntry *e = llc.findData(block);
    if (!e)
        return {};
    panic_if(e->isCorrupt(), "corrupt entry in tag-extended scheme");
    TrackState ts = inllc_detail::stateOf(*e);
    if (ts.invalid())
        return {};
    return {ts, Residence::DirSram};
}

void
TagExtendedTracker::store(Addr block, const TrackState &ns, EngineOps &ops)
{
    (void)ops;
    LlcEntry *e = llc.findData(block);
    panic_if(!e, "tag-extended tracking without LLC tag for ", block);
    inllc_detail::encode(*e, ns);
}

void
TagExtendedTracker::update(Addr block, const TrackState &ns,
                           const ReqCtx &ctx, EngineOps &ops)
{
    (void)ctx;
    store(block, ns, ops);
}

void
TagExtendedTracker::evictionUpdate(Addr block, const TrackState &ns,
                                   MesiState put, EngineOps &ops)
{
    (void)put;
    store(block, ns, ops);
}

void
TagExtendedTracker::onLlcDataVictim(const LlcEntry &victim, EngineOps &ops)
{
    const TrackState ts = inllc_detail::stateOf(victim);
    if (!ts.invalid())
        ops.backInvalidate(victim.tag, ts);
}

bool
TagExtendedTracker::warmRegister(Addr block, const TrackState &ts,
                                 EngineOps &ops)
{
    // store() panics on a block with no LLC tag (tag-inclusive).
    if (!llc.findData(block))
        return false;
    return CoherenceTracker::warmRegister(block, ts, ops);
}

std::uint64_t
TagExtendedTracker::trackerSramBits() const
{
    // Every LLC tag extended by a sharer vector plus two state bits.
    return llc.numBanks() * llc.setsPerBank() * llc.assoc() *
        (cfg.numCores + 2);
}

} // namespace tinydir
