#include "proto/mesi.hh"

namespace tinydir
{

std::string
toString(MesiState s)
{
    switch (s) {
      case MesiState::I: return "I";
      case MesiState::S: return "S";
      case MesiState::E: return "E";
      case MesiState::M: return "M";
    }
    return "?";
}

std::string
toString(AccessType t)
{
    switch (t) {
      case AccessType::Load: return "load";
      case AccessType::Store: return "store";
      case AccessType::Ifetch: return "ifetch";
    }
    return "?";
}

std::string
toString(ReqType t)
{
    switch (t) {
      case ReqType::GetS: return "GetS";
      case ReqType::GetSI: return "GetSI";
      case ReqType::GetX: return "GetX";
      case ReqType::Upg: return "Upg";
    }
    return "?";
}

unsigned
straCategory(double ratio)
{
    if (ratio <= 0.0)
        return 0;
    double bound = 0.5; // 1 - 1/2^i for i = 1
    for (unsigned i = 1; i <= 6; ++i) {
        if (ratio <= bound)
            return i;
        bound = 0.5 * (1.0 + bound); // 1 - 1/2^(i+1)
    }
    return 7;
}

} // namespace tinydir
