/**
 * @file
 * Coherence-tracker interface.
 *
 * The home-side MESI transaction flow lives in one place (the Engine,
 * proto/engine.hh) for every scheme; a CoherenceTracker only decides
 * *where and whether* a block's owner/sharers are recorded:
 * conventional directory SRAM, the tiny directory, a spilled LLC
 * entry, corrupted LLC data bits, or nowhere. The residence determines
 * the engine's timing (2-hop vs 3-hop shared reads, extra serial LLC
 * cycles) and the side effects (reconstructions, back-invalidations,
 * broadcasts) which the tracker performs through EngineOps.
 */

#ifndef TINYDIR_PROTO_TRACKER_HH
#define TINYDIR_PROTO_TRACKER_HH

#include <cstdint>
#include <string>

#include "common/types.hh"
#include "noc/traffic.hh"
#include "proto/mesi.hh"

namespace tinydir
{

namespace ckpt
{
class Writer;
class Reader;
} // namespace ckpt

/** Where a block's coherence tracking currently resides. */
enum class Residence : std::uint8_t
{
    Untracked,  //!< no live tracking state (unowned block)
    DirSram,    //!< a directory SRAM entry (sparse/tiny/MgD/Stash)
    LlcCorrupt, //!< borrowed bits of the block's LLC data way
    LlcSpill,   //!< a spilled tracking entry in the block's LLC set
    Broadcast,  //!< untracked but possibly cached (Stash recovery)
};

/** Tracker's answer to a home-side lookup. */
struct TrackerView
{
    TrackState ts;
    Residence where = Residence::Untracked;
};

/**
 * Services the engine offers to trackers for their side effects.
 * None of these add latency to the transaction being processed; they
 * account traffic and mutate private-cache/LLC state (back-
 * invalidations and reconstructions are off the critical path of the
 * request that triggered them).
 */
class EngineOps
{
  public:
    virtual ~EngineOps() = default;

    /**
     * Invalidate every private copy of @p block per @p ts, retrieving
     * dirty data into the LLC. Used on directory-entry eviction and on
     * corrupted-LLC-block eviction.
     */
    virtual void backInvalidate(Addr block, const TrackState &ts) = 0;

    /**
     * Account the messages needed to reconstruct a corrupted LLC data
     * block by querying the owner or an elected sharer (Section
     * III-B): a query and a reply carrying the borrowed bits.
     */
    virtual void reconstructTraffic(Addr block, const TrackState &ts) = 0;

    /** Raw traffic hook for scheme-specific messages. */
    virtual void addTraffic(MsgClass cls, unsigned bytes,
                            Counter count = 1) = 0;

    /** Current simulated time. */
    virtual Cycle now() const = 0;

    /**
     * Probe core @p c's private hierarchy for @p block under the
     * engine's private-cache locking discipline. Trackers must use
     * this instead of touching the hierarchies directly: in parallel
     * runs a concurrent worker may be mutating them under the per-core
     * lock the engine holds here.
     */
    virtual bool privPresent(CoreId c, Addr block) = 0;

    /**
     * A tracker dispatched an LLC data victim itself (spill-allocation
     * evictions, which bypass the engine's processVictim). The engine
     * relays this to the installed AccessObserver so the differential
     * oracle's LLC residency model sees every data-entry death.
     */
    virtual void noteLlcDataDeath(Addr block) { (void)block; }
};

/** Request context passed to tracker updates. */
struct ReqCtx
{
    CoreId core = invalidCore;
    ReqType type = ReqType::GetS;
    Cycle when = 0;
};

// Forward declaration: trackers handling LLC meta-states receive the
// evicted entry.
struct LlcEntry;

/** Abstract coherence-tracking scheme. */
class CoherenceTracker
{
  public:
    virtual ~CoherenceTracker() = default;

    /** Current tracking state + residence of @p block. */
    virtual TrackerView view(Addr block) = 0;

    /**
     * Commit the post-transaction state @p ns of @p block. Called once
     * per home transaction after the engine has computed the new
     * global state; the tracker applies its allocation policy here
     * (and may evict/spill/reconstruct through @p ops).
     */
    virtual void update(Addr block, const TrackState &ns,
                        const ReqCtx &ctx, EngineOps &ops) = 0;

    /**
     * Commit the post-eviction-notice state @p ns of @p block after a
     * core evicted it (PutS/PutE/PutM). @p put is the private state
     * the block had at the evicting core.
     */
    virtual void evictionUpdate(Addr block, const TrackState &ns,
                                MesiState put, EngineOps &ops) = 0;

    /**
     * The LLC evicted a data entry (Normal or Corrupt*). Trackers
     * keeping state in the LLC must clean up (reconstruct + back-
     * invalidate); the entry is already detached from the array.
     */
    virtual void onLlcDataVictim(const LlcEntry &victim,
                                 EngineOps &ops) = 0;

    /** The LLC evicted a spilled tracking entry. */
    virtual void
    onLlcSpillVictim(const LlcEntry &victim, EngineOps &ops)
    {
        (void)victim;
        (void)ops;
    }

    /**
     * Every LLC data access (except writebacks) with its outcome.
     * Feeds windowed policies (DynSpill miss-rate observation).
     */
    virtual void
    onLlcAccess(Addr block, bool miss, bool stra_read)
    {
        (void)block;
        (void)miss;
        (void)stra_read;
    }

    /** Advance policy clocks (gNRU generations). */
    virtual void tick(Cycle now) { (void)now; }

    /**
     * Extra bytes an eviction notice of a block in state @p s must
     * carry (in-LLC reconstruction bits, Section III-B).
     */
    virtual unsigned
    evictionNoticeExtraBytes(MesiState s) const
    {
        (void)s;
        return 0;
    }

    /** SRAM bits invested in tracking (energy model input). */
    virtual std::uint64_t trackerSramBits() const = 0;

    /** Scheme name for reports. */
    virtual std::string name() const = 0;

    /**
     * True for coarse-grain trackers (MgD) whose Exclusive answers are
     * region-grain approximations: the named owner may not cache the
     * requested block, and may even be the requester itself.
     */
    virtual bool coarseGrain() const { return false; }

    /**
     * True when the tracker's state is sliced by LLC bank (`block %
     * banks`) with no cross-slice structures, so concurrent shard
     * engines holding distinct home locks never touch the same
     * tracker state. Trackers returning false (tiny directory's
     * global gNRU clock and region structures, MgD's region map,
     * Stash) are serialized behind a single home lock by the parallel
     * driver — hits still run concurrently, home transactions do not.
     */
    virtual bool shardSafe() const { return false; }

    // -- verification / fault-injection hooks (debug only) --------------
    // Used by verify/verifier.hh (residence mutual-exclusion checks)
    // and verify/fault_inject.hh (deliberate state corruption). None of
    // these model hardware behaviour: no traffic, no side effects, no
    // replacement updates.

    /** Does the tracker's directory SRAM hold a live entry for @p block? */
    virtual bool debugHasDirEntry(Addr block) { (void)block; return false; }

    /**
     * Fault injection: overwrite the tracked state of @p block in
     * place. @return false when the tracker holds no mutable entry for
     * the block (the injector then corrupts LLC-resident state instead).
     */
    virtual bool
    debugForgeState(Addr block, const TrackState &ts)
    {
        (void)block;
        (void)ts;
        return false;
    }

    /**
     * Fault injection: silently drop any tracking entry of @p block —
     * no back-invalidation, no spill, no reconstruction. The block
     * becomes cached-but-untracked, which the verifier must flag.
     */
    virtual bool debugDropEntry(Addr block) { (void)block; return false; }

    // -- scheme-specific statistics (zero where not applicable) --------
    virtual Counter dirHits() const { return 0; }
    virtual Counter dirAllocs() const { return 0; }
    virtual Counter spills() const { return 0; }
    virtual Counter broadcasts() const { return 0; }

    /** Reset statistic counters after warmup (state untouched). */
    virtual void resetStats() {}

    // -- checkpoint/restore (ckpt/) -------------------------------------

    /**
     * Serialize all mutable tracking state (SRAM entries, spilled
     * maps, policy clocks, statistic counters). Stateless trackers
     * (in-LLC schemes, whose entire state lives in LLC meta-bits that
     * the Llc serializes itself) keep the no-op default.
     */
    virtual void saveState(ckpt::Writer &w) const { (void)w; }

    /** Restore state written by saveState (same scheme + config). */
    virtual void loadState(ckpt::Reader &r) { (void)r; }

    /**
     * Warmup fast-forward: register @p ts — the ground-truth private-
     * cache state of @p block — with a freshly constructed tracker so
     * a scheme-independent warmup snapshot can be adopted by any
     * scheme. The default synthesizes a plausible final request and
     * routes it through update(); schemes that can only track a block
     * alongside a live LLC data way override this and return false
     * when the way is missing (the reconstructor then back-invalidates
     * the block instead, keeping coherence intact).
     *
     * @retval true when the block is now tracked (or legally
     *         untrackable for this scheme, e.g. MgD region merges);
     *         false when the caller must back-invalidate.
     */
    virtual bool
    warmRegister(Addr block, const TrackState &ts, EngineOps &ops)
    {
        ReqCtx ctx;
        ctx.core = ts.exclusive() ? ts.owner : ts.sharers.first();
        ctx.type = ts.exclusive() ? ReqType::GetX : ReqType::GetS;
        ctx.when = ops.now();
        update(block, ts, ctx, ops);
        return true;
    }
};

} // namespace tinydir

#endif // TINYDIR_PROTO_TRACKER_HH
