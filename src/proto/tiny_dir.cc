#include "proto/tiny_dir.hh"

#include <algorithm>
#include <sstream>

#include "common/bitops.hh"
#include "common/log.hh"
#include "ckpt/io.hh"
#include "proto/inllc.hh"

namespace tinydir
{

namespace
{

/** Default generation length (quanta) before any reuse is measured. */
constexpr std::uint64_t defaultGenQuanta = 64;

} // namespace

TinyDirTracker::TinyDirTracker(const SystemConfig &c, Llc &l)
    : cfg(c), llc(l), banks(c.llcBanks()),
      ways(c.effectiveDirAssoc()),
      gnru(c.tinyPolicy == TinyPolicy::DstraGnru),
      spillEnabled(c.tinySpill), spill(c, c.llcBanks())
{
    const std::uint64_t per_slice = c.dirEntriesPerSlice();
    sets = std::max<std::uint64_t>(1, per_slice / ways);
    slices.resize(banks);
    for (auto &sl : slices) {
        sl.entries.resize(sets * ways);
        sl.genRemaining = defaultGenQuanta;
    }
}

TinyDirTracker::TinyEntry *
TinyDirTracker::findTiny(Addr block)
{
    Slice &sl = sliceOf(block);
    const std::uint64_t base = setOf(block) * ways;
    for (unsigned w = 0; w < ways; ++w) {
        TinyEntry &e = sl.entries[base + w];
        if (e.valid && e.tag == block)
            return &e;
    }
    return nullptr;
}

unsigned
TinyDirTracker::catOf(std::uint8_t strac, std::uint8_t oac)
{
    const unsigned total = strac + oac;
    if (total == 0 || strac == 0)
        return 0;
    return straCategory(static_cast<double>(strac) /
                        static_cast<double>(total));
}

void
TinyDirTracker::bumpCounters(std::uint8_t &strac, std::uint8_t &oac,
                             bool stra_read) const
{
    // straCounterBits-wide saturating counters (6 in the paper),
    // halved together when either saturates.
    const std::uint8_t sat = static_cast<std::uint8_t>(
        (1u << cfg.straCounterBits) - 1);
    if (stra_read)
        ++strac;
    else
        ++oac;
    if (strac >= sat || oac >= sat) {
        strac >>= 1;
        oac >>= 1;
    }
}

void
TinyDirTracker::gnruTouch(Slice &sl, TinyEntry &e)
{
    e.rbit = true;
    e.epbit = false;
    if (!gnru)
        return;
    if (e.tlast < sl.tcounter) {
        sl.accA += sl.tcounter - e.tlast;
        ++sl.accB;
        if (sl.accA >= (1ull << 20) || sl.accB >= (1ull << 14)) {
            sl.accA >>= 1;
            sl.accB >>= 1;
        }
    }
    e.tlast = sl.tcounter;
}

void
TinyDirTracker::endGeneration(Slice &sl)
{
    for (auto &e : sl.entries) {
        if (!e.valid)
            continue;
        if (!e.rbit)
            e.epbit = true;
        e.rbit = false;
    }
    sl.genRemaining = sl.accB
        ? std::max<std::uint64_t>(1, sl.accA / sl.accB)
        : defaultGenQuanta;
}

void
TinyDirTracker::tick(Cycle now)
{
    if (!gnru)
        return;
    const Cycle quantum = cfg.gnruQuantumCycles;
    while (now >= lastQuantum + quantum) {
        lastQuantum += quantum;
        for (auto &sl : slices) {
            if (++sl.tcounter >= (1u << cfg.gnruTimerBits))
                sl.tcounter = 0; // T saturates and resets (Section IV-A2)
            if (sl.genRemaining > 0)
                --sl.genRemaining;
            if (sl.genRemaining == 0)
                endGeneration(sl);
        }
    }
}

int
TinyDirTracker::selectVictim(Slice &sl, std::uint64_t set, unsigned j)
{
    const std::uint64_t base = set * ways;
    for (unsigned w = 0; w < ways; ++w) {
        if (!sl.entries[base + w].valid)
            return static_cast<int>(w);
    }
    unsigned min_cat = numStraCategories;
    for (unsigned w = 0; w < ways; ++w) {
        const TinyEntry &e = sl.entries[base + w];
        min_cat = std::min(min_cat, catOf(e.strac, e.oac));
    }
    int best = -1;
    if (gnru) {
        // gNRU's purpose is to "quickly remove useless directory
        // entries which the DSTRA policy would have retained for a
        // long time" (Section V-A): an entry whose EP bit is set went
        // a whole generation without reuse and is evictable
        // regardless of its (stale, non-decaying) STRA category.
        // Among EP ways prefer the lowest category, then way id.
        unsigned best_cat = numStraCategories;
        for (unsigned w = 0; w < ways; ++w) {
            const TinyEntry &e = sl.entries[base + w];
            if (!e.epbit)
                continue;
            const unsigned cat = catOf(e.strac, e.oac);
            if (cat < best_cat) {
                best_cat = cat;
                best = static_cast<int>(w);
            }
        }
        if (best >= 0)
            return best;
        // No stale entry: fall back to the DSTRA comparison.
        for (unsigned w = 0; w < ways; ++w) {
            const TinyEntry &e = sl.entries[base + w];
            if (catOf(e.strac, e.oac) == min_cat) {
                best = static_cast<int>(w);
                break;
            }
        }
        return min_cat < j ? best : -1;
    }
    for (unsigned w = 0; w < ways; ++w) {
        const TinyEntry &e = sl.entries[base + w];
        if (catOf(e.strac, e.oac) == min_cat) {
            best = static_cast<int>(w);
            break;
        }
    }
    return min_cat < j ? best : -1;
}

void
TinyDirTracker::reconstruct(Addr block, EngineOps &ops)
{
    LlcEntry *de = llc.findData(block);
    panic_if(!de || !de->isCorrupt(), "reconstruct of non-corrupt block");
    ops.reconstructTraffic(block, inllc_detail::stateOf(*de));
    de->meta = LlcMeta::Normal;
    de->owner = invalidCore;
    de->sharers.clear();
    de->strac = 0;
    de->oac = 0;
    llc.noteCohDataWrite();
}

void
TinyDirTracker::transferOut(const TinyEntry &victim, EngineOps &ops)
{
    const TrackState ts = victim.state();
    if (ts.invalid())
        return;
    // Section IV-B: a tiny entry evicted while its block is shared
    // first consults the spill policy.
    if (ts.shared() && spillEnabled &&
        trySpill(victim.tag, ts, victim.strac, victim.oac, ops)) {
        return;
    }
    LlcEntry *de = llc.findData(llc.locate(victim.tag), victim.tag);
    if (de && de->meta == LlcMeta::Normal) {
        de->meta = ts.exclusive() ? LlcMeta::CorruptExcl
                                  : LlcMeta::CorruptShared;
        inllc_detail::encode(*de, ts);
        de->strac = victim.strac;
        de->oac = victim.oac;
        llc.noteCohDataWrite();
        return;
    }
    // Rare: the data block is no longer in the LLC (Section IV).
    ops.backInvalidate(victim.tag, ts);
}

bool
TinyDirTracker::trySpill(Addr block, const TrackState &ns,
                         std::uint8_t strac, std::uint8_t oac,
                         EngineOps &ops)
{
    panic_if(!ns.shared(), "only shared blocks may spill");
    const Llc::Loc loc = llc.locate(block);
    const unsigned cat = catOf(strac, oac);
    if (!spill.allows(loc.bank, cat, llc.isSampledSet(loc)))
        return false;
    // The data block must be present and usable (V=1) for spilling to
    // pay off; reconstruct it first if it is corrupted.
    LlcEntry *de = llc.findData(loc, block);
    if (!de)
        return false;
    if (de->isCorrupt())
        reconstruct(block, ops);
    if (llc.findSpill(loc, block))
        panic("double spill for block ", block);
    auto ar = llc.allocate(loc, block);
    if (ar.victim) {
        // Dispatch through the same paths the engine uses.
        const LlcEntry v = *ar.victim;
        if (v.meta == LlcMeta::Spill) {
            onLlcSpillVictim(v, ops);
        } else {
            llc.noteDeath(v);
            ops.noteLlcDataDeath(v.tag);
            if (v.isCorrupt()) {
                onLlcDataVictim(v, ops);
            }
            // Dirty data of a Normal victim still needs to reach
            // memory; account it as a writeback message. We cannot
            // reach the DRAM model from here, so the engine-level
            // traffic suffices (occupancy impact is negligible).
            if (v.meta == LlcMeta::Normal && v.dirty)
                ops.addTraffic(MsgClass::Writeback, dataBytes);
            if (v.isCorrupt() && v.dirty)
                ops.addTraffic(MsgClass::Writeback, dataBytes);
        }
    }
    LlcEntry *eb = ar.slot;
    eb->meta = LlcMeta::Spill;
    inllc_detail::encode(*eb, ns);
    eb->strac = strac;
    eb->oac = oac;
    llc.noteCohDataWrite();
    // Ordering rule: E_B to MRU first, then B.
    llc.touchEntry(loc, eb);
    llc.touchEntry(loc, de);
    ++spills_;
    return true;
}

bool
TinyDirTracker::tryTinyAlloc(Addr block, const TrackState &ns,
                             std::uint8_t strac, std::uint8_t oac,
                             Residence where, EngineOps &ops)
{
    Slice &sl = sliceOf(block);
    const std::uint64_t set = setOf(block);
    const unsigned j = catOf(strac, oac);
    const int w = selectVictim(sl, set, j);
    if (w < 0)
        return false;
    TinyEntry &e = sl.entries[set * ways + static_cast<unsigned>(w)];
    const TinyEntry victim = e;
    // Install the new entry before transferring the victim out so a
    // reentrant LLC allocation cannot disturb this block's tracking.
    e = TinyEntry{};
    e.tag = block;
    e.valid = true;
    e.setState(ns);
    e.strac = strac;
    e.oac = oac;
    e.tlast = sl.tcounter;
    gnruTouch(sl, e);
    ++allocs_;
    if (where == Residence::LlcCorrupt)
        reconstruct(block, ops);
    if (victim.valid)
        transferOut(victim, ops);
    return true;
}

TrackerView
TinyDirTracker::view(Addr block)
{
    if (TinyEntry *te = findTiny(block))
        return {te->state(), Residence::DirSram};
    auto [de, sp] = llc.findBoth(llc.locate(block), block);
    if (sp)
        return {inllc_detail::stateOf(*sp), Residence::LlcSpill};
    if (de && de->isCorrupt())
        return {inllc_detail::stateOf(*de), Residence::LlcCorrupt};
    return {};
}

void
TinyDirTracker::update(Addr block, const TrackState &ns, const ReqCtx &ctx,
                       EngineOps &ops)
{
    panic_if(ns.invalid(), "request update with invalid state");
    const bool is_read =
        ctx.type == ReqType::GetS || ctx.type == ReqType::GetSI;

    // Locate the current tracking entry and its policy counters.
    const Llc::Loc loc = llc.locate(block);
    TinyEntry *te = findTiny(block);
    auto both = llc.findBoth(loc, block);
    LlcEntry *sp = te ? nullptr : both.spill;
    LlcEntry *de = both.data;
    std::uint8_t strac = 0;
    std::uint8_t oac = 0;
    Residence where = Residence::Untracked;
    bool old_shared = false;
    if (te) {
        strac = te->strac;
        oac = te->oac;
        where = Residence::DirSram;
        old_shared = te->kind == TrackState::Kind::Shared;
    } else if (sp) {
        strac = sp->strac;
        oac = sp->oac;
        where = Residence::LlcSpill;
        old_shared = true;
    } else if (de && de->isCorrupt()) {
        strac = de->strac;
        oac = de->oac;
        where = Residence::LlcCorrupt;
        old_shared = de->meta == LlcMeta::CorruptShared;
    }
    bumpCounters(strac, oac, is_read && old_shared);

    if (te) {
        // Already in the tiny directory: update in place.
        ++hits_;
        gnruTouch(sliceOf(block), *te);
        te->setState(ns);
        te->strac = strac;
        te->oac = oac;
        return;
    }

    if (sp) {
        if (ns.shared()) {
            inllc_detail::encode(*sp, ns);
            sp->strac = strac;
            sp->oac = oac;
            llc.noteCohDataWrite();
        } else {
            // Read-exclusive/upgrade: E_B is invalidated and the state
            // moves to B, which becomes corrupted exclusive (IV-B1).
            llc.freeSpill(loc, block);
            de = llc.findData(loc, block);
            panic_if(!de, "spilled entry without its data block");
            de->meta = LlcMeta::CorruptExcl;
            inllc_detail::encode(*de, ns);
            de->strac = strac;
            de->oac = oac;
            llc.noteCohDataWrite();
        }
        return;
    }

    // Allocation consideration points (Section IV):
    //  (i) read request for a block in a corrupted state;
    //  (ii) instruction read for an unowned block.
    const bool consider =
        (where == Residence::LlcCorrupt && is_read) ||
        (where == Residence::Untracked && ctx.type == ReqType::GetSI);
    if (consider) {
        if (tryTinyAlloc(block, ns, strac, oac, where, ops))
            return;
        if (spillEnabled && ns.shared() &&
            trySpill(block, ns, strac, oac, ops)) {
            return;
        }
    }

    // Fall back to the in-LLC corrupted representation.
    de = llc.findData(loc, block);
    panic_if(!de, "tiny scheme: no LLC tag for corrupted tracking of ",
             block);
    de->meta = ns.exclusive() ? LlcMeta::CorruptExcl
                              : LlcMeta::CorruptShared;
    inllc_detail::encode(*de, ns);
    de->strac = strac;
    de->oac = oac;
    llc.noteCohDataWrite();
}

void
TinyDirTracker::evictionUpdate(Addr block, const TrackState &ns,
                               MesiState put, EngineOps &ops)
{
    if (TinyEntry *te = findTiny(block)) {
        if (ns.invalid()) {
            // Block returns to unowned: entry freed, counters reset.
            *te = TinyEntry{};
        } else {
            te->setState(ns);
        }
        return;
    }
    const Llc::Loc loc = llc.locate(block);
    auto [de, sp] = llc.findBoth(loc, block);
    if (sp) {
        if (ns.invalid()) {
            llc.freeSpill(loc, block);
        } else {
            panic_if(!ns.shared(), "spilled entry left non-shared");
            inllc_detail::encode(*sp, ns);
            llc.noteCohDataWrite();
        }
        return;
    }
    panic_if(!de || !de->isCorrupt(),
             "eviction notice for untracked block ", block);
    if (ns.invalid()) {
        if (put == MesiState::S) {
            ops.addTraffic(MsgClass::Writeback,
                           ctrlBytes + reconstructBytes(cfg.numCores));
        }
        de->meta = LlcMeta::Normal;
        de->owner = invalidCore;
        de->sharers.clear();
        de->strac = 0;
        de->oac = 0;
        llc.noteCohDataWrite();
        return;
    }
    panic_if(!ns.shared(), "notice left corrupted block exclusive");
    de->meta = LlcMeta::CorruptShared;
    inllc_detail::encode(*de, ns);
    llc.noteCohDataWrite();
}

void
TinyDirTracker::onLlcDataVictim(const LlcEntry &victim, EngineOps &ops)
{
    if (!victim.isCorrupt())
        return; // tiny-tracked blocks survive LLC eviction
    const TrackState ts = inllc_detail::stateOf(victim);
    ops.reconstructTraffic(victim.tag, ts);
    ops.backInvalidate(victim.tag, ts);
}

void
TinyDirTracker::onLlcSpillVictim(const LlcEntry &victim, EngineOps &ops)
{
    const TrackState ts = inllc_detail::stateOf(victim);
    LlcEntry *de = llc.findData(llc.locate(victim.tag), victim.tag);
    if (de && de->meta == LlcMeta::Normal) {
        de->meta = LlcMeta::CorruptShared;
        inllc_detail::encode(*de, ts);
        de->strac = victim.strac;
        de->oac = victim.oac;
        llc.noteCohDataWrite();
        return;
    }
    ops.backInvalidate(victim.tag, ts);
}

void
TinyDirTracker::onLlcAccess(Addr block, bool miss, bool stra_read)
{
    if (!spillEnabled)
        return;
    const Llc::Loc loc = llc.locate(block);
    spill.observe(loc.bank, llc.isSampledSet(loc), miss, stra_read);
}

unsigned
TinyDirTracker::evictionNoticeExtraBytes(MesiState s) const
{
    return s == MesiState::E ? reconstructBytes(cfg.numCores) : 0;
}

std::uint64_t
TinyDirTracker::trackerSramBits() const
{
    const std::uint64_t total_sets = sets * banks;
    const unsigned tag_bits = physAddrBits - blockShift -
        ceilLog2(std::max<std::uint64_t>(2, total_sets));
    // Paper Section V: 128-bit sharer vector, 2x6 counter bits, 10
    // timestamp bits, 2 R/EP bits, 1 busy bit, 2 state bits = 155.
    const std::uint64_t payload = cfg.numCores +
        2 * cfg.straCounterBits + cfg.gnruTimerBits + 2 + 1 + 2;
    return (payload + tag_bits) * sets * ways * banks;
}

bool
TinyDirTracker::debugHasDirEntry(Addr block)
{
    return findTiny(block) != nullptr;
}

bool
TinyDirTracker::debugForgeState(Addr block, const TrackState &ts)
{
    if (TinyEntry *te = findTiny(block)) {
        te->setState(ts);
        return true;
    }
    return false;
}

bool
TinyDirTracker::debugDropEntry(Addr block)
{
    if (TinyEntry *te = findTiny(block)) {
        *te = TinyEntry{};
        return true;
    }
    if (llc.findSpill(block)) {
        llc.freeSpill(block);
        return true;
    }
    if (LlcEntry *de = llc.findData(block); de && de->isCorrupt()) {
        de->meta = LlcMeta::Normal;
        de->owner = invalidCore;
        de->sharers.clear();
        return true;
    }
    return false;
}

void
TinyDirTracker::saveState(ckpt::Writer &w) const
{
    for (const auto &sl : slices) {
        for (const auto &e : sl.entries) {
            w.u64(e.tag);
            w.b(e.valid);
            e.state().saveState(w);
            w.u8(e.strac);
            w.u8(e.oac);
            w.u16(e.tlast);
            w.b(e.rbit);
            w.b(e.epbit);
        }
        w.u16(sl.tcounter);
        w.u64(sl.accA);
        w.u64(sl.accB);
        w.u64(sl.genRemaining);
    }
    w.u64(lastQuantum);
    spill.saveState(w);
    hits_.saveState(w);
    allocs_.saveState(w);
    spills_.saveState(w);
}

void
TinyDirTracker::loadState(ckpt::Reader &r)
{
    for (auto &sl : slices) {
        for (auto &e : sl.entries) {
            e.tag = r.u64();
            e.valid = r.b();
            TrackState ts;
            ts.loadState(r);
            e.setState(ts);
            e.strac = r.u8();
            e.oac = r.u8();
            e.tlast = r.u16();
            e.rbit = r.b();
            e.epbit = r.b();
        }
        sl.tcounter = r.u16();
        sl.accA = r.u64();
        sl.accB = r.u64();
        sl.genRemaining = r.u64();
    }
    lastQuantum = r.u64();
    spill.loadState(r);
    hits_.loadState(r);
    allocs_.loadState(r);
    spills_.loadState(r);
}

bool
TinyDirTracker::warmRegister(Addr block, const TrackState &ts,
                             EngineOps &ops)
{
    // The in-LLC substrate can only track blocks with an LLC tag;
    // update() panics otherwise. Let the caller back-invalidate.
    if (!llc.findData(block))
        return false;
    return CoherenceTracker::warmRegister(block, ts, ops);
}

std::string
TinyDirTracker::name() const
{
    std::ostringstream os;
    os << "tiny(" << cfg.dirSizeFactor << "x, " << toString(cfg.tinyPolicy)
       << (spillEnabled ? "+DynSpill" : "") << ")";
    return os.str();
}

} // namespace tinydir
