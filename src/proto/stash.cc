#include "proto/stash.hh"

#include <sstream>

#include "common/bitops.hh"
#include "common/log.hh"
#include "ckpt/io.hh"

namespace tinydir
{

StashTracker::StashTracker(const SystemConfig &c)
    : cfg(c), banks(c.llcBanks()), ways(c.effectiveDirAssoc())
{
    const std::uint64_t per_slice = c.dirEntriesPerSlice();
    sets = std::max<std::uint64_t>(1, per_slice / ways);
    slices.reserve(banks);
    for (unsigned b = 0; b < banks; ++b)
        slices.emplace_back(sets, ways, ReplPolicy::Nru, c.seed + 60 + b);
}

TrackerView
StashTracker::view(Addr block)
{
    auto &arr = slices[block % banks];
    const std::uint64_t set = (block / banks) & (sets - 1);
    if (SparseDirEntry *e = arr.find(set, block))
        return {e->state(), Residence::DirSram};
    if (const TrackState *ts = stashed.find(block))
        return {*ts, Residence::Broadcast};
    return {};
}

void
StashTracker::store(Addr block, const TrackState &ns, EngineOps &ops)
{
    auto &arr = slices[block % banks];
    const std::uint64_t set = (block / banks) & (sets - 1);
    int w = arr.findWay(set, block);
    if (ns.invalid()) {
        if (w >= 0) {
            arr.clearWay(set, static_cast<unsigned>(w));
            arr.demote(set, static_cast<unsigned>(w));
        }
        return;
    }
    if (w < 0) {
        const unsigned vw = arr.victimWay(set);
        const SparseDirEntry &victim = arr.way(set, vw);
        if (victim.valid) {
            if (victim.kind == TrackState::Kind::Exclusive) {
                // The Stash trick: drop tracking, keep the block
                // cached. A later request broadcasts to recover.
                stashed[victim.tag] = victim.state();
            } else {
                ops.backInvalidate(victim.tag, victim.state());
            }
        }
        arr.install(set, vw, block);
        ++allocs;
        w = static_cast<int>(vw);
    }
    SparseDirEntry &e = arr.way(set, static_cast<unsigned>(w));
    e.setState(ns);
    arr.touch(set, static_cast<unsigned>(w));
}

void
StashTracker::update(Addr block, const TrackState &ns, const ReqCtx &ctx,
                     EngineOps &ops)
{
    (void)ctx;
    if (stashed.erase(block)) {
        // The engine just performed the broadcast recovery.
        ++bcasts;
    }
    store(block, ns, ops);
}

void
StashTracker::evictionUpdate(Addr block, const TrackState &ns,
                             MesiState put, EngineOps &ops)
{
    (void)put;
    if (stashed.contains(block)) {
        // Eviction notice from the hidden owner: the block is gone.
        panic_if(!ns.invalid(),
                 "stashed block notice left residual state");
        stashed.erase(block);
        return;
    }
    store(block, ns, ops);
}

void
StashTracker::onLlcDataVictim(const LlcEntry &victim, EngineOps &ops)
{
    (void)victim;
    (void)ops;
}

bool
StashTracker::debugHasDirEntry(Addr block)
{
    auto &arr = slices[block % banks];
    return arr.findWay((block / banks) & (sets - 1), block) >= 0;
}

bool
StashTracker::debugForgeState(Addr block, const TrackState &ts)
{
    auto &arr = slices[block % banks];
    if (SparseDirEntry *e = arr.find((block / banks) & (sets - 1),
                                     block)) {
        e->setState(ts);
        return true;
    }
    if (TrackState *st = stashed.find(block)) {
        *st = ts;
        return true;
    }
    return false;
}

bool
StashTracker::debugDropEntry(Addr block)
{
    auto &arr = slices[block % banks];
    const std::uint64_t set = (block / banks) & (sets - 1);
    const int w = arr.findWay(set, block);
    if (w >= 0) {
        arr.clearWay(set, static_cast<unsigned>(w));
        return true;
    }
    return stashed.erase(block);
}

std::uint64_t
StashTracker::trackerSramBits() const
{
    const std::uint64_t total_sets = sets * banks;
    const unsigned tag_bits = physAddrBits - blockShift -
        ceilLog2(std::max<std::uint64_t>(2, total_sets));
    const std::uint64_t entry_bits = tag_bits + cfg.numCores + 3;
    return entry_bits * sets * ways * banks;
}

void
StashTracker::saveState(ckpt::Writer &w) const
{
    for (const auto &arr : slices) {
        arr.saveState(w, [](ckpt::Writer &wr, const SparseDirEntry &e) {
            e.saveState(wr);
        });
    }
    stashed.saveState(w, [](ckpt::Writer &wr, const TrackState &ts) {
        ts.saveState(wr);
    });
    allocs.saveState(w);
    bcasts.saveState(w);
}

void
StashTracker::loadState(ckpt::Reader &r)
{
    for (auto &arr : slices) {
        arr.loadState(r, [](ckpt::Reader &rd, SparseDirEntry &e) {
            e.loadState(rd);
        });
    }
    stashed.loadState(r, [](ckpt::Reader &rd, TrackState &ts) {
        ts.loadState(rd);
    });
    allocs.loadState(r);
    bcasts.loadState(r);
}

std::string
StashTracker::name() const
{
    std::ostringstream os;
    os << "stash(" << cfg.dirSizeFactor << "x)";
    return os.str();
}

} // namespace tinydir
