#include "proto/spill.hh"

namespace tinydir
{

SpillPolicy::SpillPolicy(const SystemConfig &c, unsigned num_banks)
    : cfg(c), states(num_banks)
{
}

void
SpillPolicy::observe(unsigned bank, bool sampled_set, bool miss,
                     bool stra_read)
{
    BankState &st = states[bank];
    ++st.winAccesses;
    if (sampled_set) {
        ++st.sampAccesses;
        if (miss)
            ++st.sampMisses;
    } else {
        ++st.otherAccesses;
        if (miss)
            ++st.otherMisses;
    }
    if (miss)
        ++st.misses;
    if (stra_read)
        ++st.straReads;
    if (st.winAccesses >= cfg.spillWindowAccesses)
        endWindow(st);
}

void
SpillPolicy::endWindow(BankState &st)
{
    ++windows;
    const double mr_nospill = st.sampAccesses
        ? static_cast<double>(st.sampMisses) /
              static_cast<double>(st.sampAccesses)
        : 0.0;
    const double mr_spill = st.otherAccesses
        ? static_cast<double>(st.otherMisses) /
              static_cast<double>(st.otherAccesses)
        : 0.0;
    if (mr_spill <= mr_nospill + st.delta) {
        if (st.thresholdIdx > 0)
            --st.thresholdIdx;
    } else {
        if (st.thresholdIdx < 7)
            ++st.thresholdIdx;
    }
    // Choose delta for the next window from this window's profile.
    const double mr = st.winAccesses
        ? static_cast<double>(st.misses) /
              static_cast<double>(st.winAccesses)
        : 0.0;
    const double stra = st.winAccesses
        ? static_cast<double>(st.straReads) /
              static_cast<double>(st.winAccesses)
        : 0.0;
    if (mr >= 0.10)
        st.delta = stra >= 0.4 ? 1.0 / 4 : 1.0 / 32;
    else
        st.delta = stra >= 0.4 ? 1.0 / 16 : 1.0 / 32;
    st.winAccesses = 0;
    st.sampAccesses = 0;
    st.sampMisses = 0;
    st.otherAccesses = 0;
    st.otherMisses = 0;
    st.straReads = 0;
    st.misses = 0;
}

} // namespace tinydir
