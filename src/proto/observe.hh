/**
 * @file
 * Per-access observation interface for differential testing.
 *
 * The engine and system expose the externally visible outcome of
 * every transaction — priv-cache hit state, request type, granted
 * MESI state, where the data came from, eviction notices, back-
 * invalidations, LLC data fills/evictions — through an optional
 * AccessObserver. The reference model (src/oracle) consumes exactly
 * this event stream and nothing else, so it stays independent of the
 * tracking schemes' data structures.
 *
 * All hooks are null-checked at the emission sites: with no observer
 * installed the per-access cost is a handful of predictable branches,
 * keeping the PR 3 hot path intact (bench_perf_smoke guards this).
 */

#ifndef TINYDIR_PROTO_OBSERVE_HH
#define TINYDIR_PROTO_OBSERVE_HH

#include "common/types.hh"
#include "proto/mesi.hh"

namespace tinydir
{

/** Who supplied the data (or acks) for a home transaction. */
enum class DataSource : std::uint8_t
{
    None,   //!< no data movement (pure upgrade)
    Llc,    //!< served from a usable LLC data way
    Dram,   //!< fetched from memory
    Owner,  //!< forwarded by the exclusive owner
    Sharer, //!< forwarded by an elected sharer (lengthened path)
};

/** LLC data-way status for the block when the transaction started. */
enum class PreEntry : std::uint8_t
{
    None,    //!< no data way for the tag
    Normal,  //!< usable data way (V=1)
    Corrupt, //!< data way borrowed for coherence bits (V=0,D=1)
};

/** Externally visible outcome of one core access. */
struct AccessObservation
{
    CoreId core = invalidCore;
    Addr block = 0;
    AccessType type = AccessType::Load;

    bool privPresent = false;          //!< hit in the private hierarchy
    MesiState privState = MesiState::I; //!< private state at lookup

    bool requested = false;            //!< a home transaction ran
    ReqType req = ReqType::GetS;
    MesiState grant = MesiState::I;    //!< state granted (when requested)
    DataSource src = DataSource::None;
    PreEntry pre = PreEntry::None;

    Cycle issue = 0;
    Cycle done = 0;
};

/**
 * Receiver of the per-access event stream. Events arrive in execution
 * order; the hooks fired during one executeAccess (notices, fills,
 * evictions, back-invalidations) all precede its final onAccess.
 */
class AccessObserver
{
  public:
    virtual ~AccessObserver() = default;

    /** One core access completed (summary of the whole transaction). */
    virtual void onAccess(const AccessObservation &obs) = 0;

    /** A core evicted @p block, sending Put@p put to the home. */
    virtual void onNotice(CoreId core, Addr block, MesiState put) = 0;

    /** The home back-invalidated @p block per tracked state @p ts. */
    virtual void onBackInval(Addr block, const TrackState &ts) = 0;

    /** A usable LLC data way was allocated for @p block. */
    virtual void onLlcFill(Addr block) = 0;

    /** The LLC data way of @p block died (Normal or Corrupt victim). */
    virtual void onLlcEvict(Addr block) = 0;
};

} // namespace tinydir

#endif // TINYDIR_PROTO_OBSERVE_HH
