#include "proto/mgd.hh"

#include <sstream>

#include "common/bitops.hh"
#include "common/log.hh"
#include "ckpt/io.hh"

namespace tinydir
{

namespace
{

/** Region tags share the arrays with block tags; mark them apart. */
constexpr Addr regionMark = 1ull << 60;

Addr
regionKey(Addr region)
{
    return region | regionMark;
}

} // namespace

MgdTracker::MgdTracker(const SystemConfig &c,
                       std::vector<PrivateCache> &p)
    : cfg(c), privs(p), banks(c.llcBanks()),
      regionBlocks(c.mgdRegionBytes / blockBytes), skewed(c.dirSkewed)
{
    ways = skewed ? 4 : c.effectiveDirAssoc();
    const std::uint64_t per_slice = c.dirEntriesPerSlice();
    rows = std::max<std::uint64_t>(1, per_slice / ways);
    if (skewed)
        skewSlices.reserve(banks);
    else
        slices.reserve(banks);
    for (unsigned b = 0; b < banks; ++b) {
        if (skewed)
            skewSlices.emplace_back(rows, ways, c.seed + 70 + b);
        else
            slices.emplace_back(rows, ways, ReplPolicy::Nru,
                                c.seed + 70 + b);
    }
}

MgdTracker::MgdEntry *
MgdTracker::findBlockEntry(Addr block)
{
    const unsigned slice = block % banks;
    if (skewed) {
        MgdEntry *e = skewSlices[slice].find(block);
        return (e && !e->region) ? e : nullptr;
    }
    const std::uint64_t set = (block / banks) & (rows - 1);
    MgdEntry *e = slices[slice].find(set, block);
    return (e && !e->region) ? e : nullptr;
}

MgdTracker::MgdEntry *
MgdTracker::findRegionEntry(Addr region)
{
    const Addr key = regionKey(region);
    const unsigned slice = region % banks;
    if (skewed) {
        MgdEntry *e = skewSlices[slice].find(key);
        return (e && e->region) ? e : nullptr;
    }
    const std::uint64_t set = (region / banks) & (rows - 1);
    MgdEntry *e = slices[slice].find(set, key);
    return (e && e->region) ? e : nullptr;
}

void
MgdTracker::eraseBlockEntry(Addr block)
{
    const unsigned slice = block % banks;
    if (skewed) {
        MgdEntry *e = skewSlices[slice].find(block);
        if (!e || e->region)
            return;
        noteBlockEntryGone(block);
        skewSlices[slice].clearEntry(e);
        return;
    }
    const std::uint64_t set = (block / banks) & (rows - 1);
    auto &arr = slices[slice];
    const int w = arr.findWay(set, block);
    if (w < 0 || arr.way(set, static_cast<unsigned>(w)).region)
        return;
    noteBlockEntryGone(block);
    arr.clearWay(set, static_cast<unsigned>(w));
}

/** Drop @p block from the per-region block-entry census. */
void
MgdTracker::noteBlockEntryGone(Addr block)
{
    const Addr region = regionOf(block);
    if (unsigned *cnt = blockEntries.find(region)) {
        if (--*cnt == 0)
            blockEntries.erase(region);
    }
}

void
MgdTracker::handleVictim(const MgdEntry &victim, EngineOps &ops)
{
    if (!victim.valid)
        return;
    if (victim.region) {
        // Invalidate every block of the region the owner still caches.
        const Addr region = victim.tag & ~regionMark;
        const Addr base = region * regionBlocks;
        for (unsigned i = 0; i < regionBlocks; ++i) {
            const Addr b = base + i;
            if (ops.privPresent(victim.owner, b)) {
                ops.backInvalidate(
                    b, TrackState::makeExclusive(victim.owner));
            }
        }
        return;
    }
    const Addr region = regionOf(victim.tag);
    if (unsigned *cnt = blockEntries.find(region)) {
        if (--*cnt == 0)
            blockEntries.erase(region);
    }
    ops.backInvalidate(victim.tag, victim.state());
}

void
MgdTracker::storeBlock(Addr block, const TrackState &ns, EngineOps &ops)
{
    if (ns.invalid()) {
        eraseBlockEntry(block);
        return;
    }
    const unsigned slice = block % banks;
    if (skewed) {
        auto &arr = skewSlices[slice];
        if (MgdEntry *e = arr.find(block)) {
            panic_if(e->region, "block/region tag collision");
            e->kind = ns.kind;
            e->owner = ns.owner;
            e->sharers = ns.sharers;
            arr.touch(block);
            return;
        }
        auto ir = arr.insert(block);
        if (ir.victim)
            handleVictim(*ir.victim, ops);
        ir.slot->region = false;
        ir.slot->kind = ns.kind;
        ir.slot->owner = ns.owner;
        ir.slot->sharers = ns.sharers;
        ++allocs;
        ++blockEntries[regionOf(block)];
    } else {
        auto &arr = slices[slice];
        const std::uint64_t set = (block / banks) & (rows - 1);
        int w = arr.findWay(set, block);
        if (w < 0) {
            const unsigned vw = arr.victimWay(set);
            const MgdEntry &v = arr.way(set, vw);
            if (v.valid)
                handleVictim(v, ops);
            arr.install(set, vw, block);
            w = static_cast<int>(vw);
            ++allocs;
            ++blockEntries[regionOf(block)];
        }
        MgdEntry &e = arr.way(set, static_cast<unsigned>(w));
        panic_if(e.region, "block/region tag collision");
        e.region = false;
        e.kind = ns.kind;
        e.owner = ns.owner;
        e.sharers = ns.sharers;
        arr.touch(set, static_cast<unsigned>(w));
    }
}

void
MgdTracker::splitRegion(Addr region, CoreId owner, Addr except,
                        EngineOps &ops)
{
    ++splits;
    // Remove the region entry first.
    const Addr key = regionKey(region);
    const unsigned slice = region % banks;
    if (skewed) {
        if (MgdEntry *e = skewSlices[slice].find(key))
            skewSlices[slice].clearEntry(e);
    } else {
        const std::uint64_t set = (region / banks) & (rows - 1);
        const int w = slices[slice].findWay(set, key);
        if (w >= 0)
            slices[slice].clearWay(set, static_cast<unsigned>(w));
    }
    // Probe the owner for its cached blocks of the region: one probe,
    // one presence-bitmap reply.
    ops.addTraffic(MsgClass::Coherence, ctrlBytes);
    ops.addTraffic(MsgClass::Coherence,
                   ctrlBytes + divCeil(regionBlocks, 8));
    const Addr base = region * regionBlocks;
    for (unsigned i = 0; i < regionBlocks; ++i) {
        const Addr b = base + i;
        if (b == except || !ops.privPresent(owner, b))
            continue;
        storeBlock(b, TrackState::makeExclusive(owner), ops);
    }
}

TrackerView
MgdTracker::view(Addr block)
{
    if (MgdEntry *e = findBlockEntry(block))
        return {e->state(), Residence::DirSram};
    if (MgdEntry *re = findRegionEntry(regionOf(block)))
        return {TrackState::makeExclusive(re->owner), Residence::DirSram};
    return {};
}

void
MgdTracker::update(Addr block, const TrackState &ns, const ReqCtx &ctx,
                   EngineOps &ops)
{
    (void)ctx;
    if (findBlockEntry(block)) {
        storeBlock(block, ns, ops);
        return;
    }
    const Addr region = regionOf(block);
    if (MgdEntry *re = findRegionEntry(region)) {
        const CoreId ro = re->owner;
        if (ns.exclusive() && ns.owner == ro) {
            // Still private to the region owner.
            if (skewed)
                skewSlices[region % banks].touch(regionKey(region));
            return;
        }
        // The region is no longer private: split to block grain.
        splitRegion(region, ro, block, ops);
        storeBlock(block, ns, ops);
        return;
    }
    if (ns.exclusive() && !blockEntries.contains(region)) {
        // First touch of an untracked region: one region-grain entry.
        const Addr key = regionKey(region);
        const unsigned slice = region % banks;
        if (skewed) {
            auto ir = skewSlices[slice].insert(key);
            if (ir.victim)
                handleVictim(*ir.victim, ops);
            ir.slot->region = true;
            ir.slot->kind = TrackState::Kind::Exclusive;
            ir.slot->owner = ns.owner;
        } else {
            auto &arr = slices[slice];
            const std::uint64_t set = (region / banks) & (rows - 1);
            const unsigned vw = arr.victimWay(set);
            const MgdEntry &v = arr.way(set, vw);
            if (v.valid)
                handleVictim(v, ops);
            MgdEntry &e = arr.install(set, vw, key);
            e.region = true;
            e.kind = TrackState::Kind::Exclusive;
            e.owner = ns.owner;
            arr.touch(set, vw);
        }
        ++allocs;
        return;
    }
    storeBlock(block, ns, ops);
}

void
MgdTracker::evictionUpdate(Addr block, const TrackState &ns,
                           MesiState put, EngineOps &ops)
{
    (void)put;
    if (findBlockEntry(block)) {
        storeBlock(block, ns, ops);
        return;
    }
    // Region-grain tracked block: the region entry persists; nothing
    // block-level to update.
}

void
MgdTracker::onLlcDataVictim(const LlcEntry &victim, EngineOps &ops)
{
    (void)victim;
    (void)ops;
}

std::uint64_t
MgdTracker::trackerSramBits() const
{
    const std::uint64_t total_sets = rows * banks;
    const unsigned tag_bits = physAddrBits - blockShift -
        ceilLog2(std::max<std::uint64_t>(2, total_sets));
    // tag + grain bit + sharer vector + 2 state bits + repl bit
    const std::uint64_t entry_bits = tag_bits + 1 + cfg.numCores + 3;
    return entry_bits * rows * ways * banks;
}

void
MgdTracker::saveState(ckpt::Writer &w) const
{
    const auto save_entry = [](ckpt::Writer &wr, const MgdEntry &e) {
        wr.u64(e.tag);
        wr.b(e.valid);
        wr.b(e.region);
        e.state().saveState(wr);
    };
    for (const auto &arr : slices)
        arr.saveState(w, save_entry);
    for (const auto &arr : skewSlices)
        arr.saveState(w, save_entry);
    blockEntries.saveState(w, [](ckpt::Writer &wr, const unsigned &n) {
        wr.u32(n);
    });
    allocs.saveState(w);
    splits.saveState(w);
}

void
MgdTracker::loadState(ckpt::Reader &r)
{
    const auto load_entry = [](ckpt::Reader &rd, MgdEntry &e) {
        e.tag = rd.u64();
        e.valid = rd.b();
        e.region = rd.b();
        TrackState ts;
        ts.loadState(rd);
        e.kind = ts.kind;
        e.owner = ts.owner;
        e.sharers = ts.sharers;
    };
    for (auto &arr : slices)
        arr.loadState(r, load_entry);
    for (auto &arr : skewSlices)
        arr.loadState(r, load_entry);
    blockEntries.loadState(r, [](ckpt::Reader &rd, unsigned &n) {
        n = rd.u32();
    });
    allocs.loadState(r);
    splits.loadState(r);
}

std::string
MgdTracker::name() const
{
    std::ostringstream os;
    os << "mgd(" << cfg.dirSizeFactor << "x"
       << (skewed ? ", skew" : "") << ")";
    return os.str();
}

} // namespace tinydir
