#include "proto/sparse_dir.hh"

#include <sstream>

#include "common/bitops.hh"
#include "common/log.hh"
#include "ckpt/io.hh"

namespace tinydir
{

SparseDirTracker::SparseDirTracker(const SystemConfig &c)
    : cfg(c), banks(c.llcBanks()), ways(c.effectiveDirAssoc())
{
    const std::uint64_t per_slice = c.dirEntriesPerSlice();
    sets = per_slice / ways;
    panic_if(sets == 0, "sparse directory slice with zero sets");
    slices.reserve(banks);
    for (unsigned b = 0; b < banks; ++b)
        slices.emplace_back(sets, ways, ReplPolicy::Nru, c.seed + 50 + b);
    sliceAllocs.resize(banks);
}

TrackerView
SparseDirTracker::view(Addr block)
{
    auto &arr = slices[block % banks];
    const std::uint64_t set = (block / banks) & (sets - 1);
    if (SparseDirEntry *e = arr.find(set, block))
        return {e->state(), Residence::DirSram};
    return {};
}

void
SparseDirTracker::store(Addr block, const TrackState &ns, EngineOps &ops)
{
    auto &arr = slices[block % banks];
    const std::uint64_t set = (block / banks) & (sets - 1);
    int w = arr.findWay(set, block);
    if (ns.invalid()) {
        if (w >= 0) {
            arr.clearWay(set, static_cast<unsigned>(w));
            arr.demote(set, static_cast<unsigned>(w));
        }
        return;
    }
    if (w < 0) {
        const unsigned vw = arr.victimWay(set);
        const SparseDirEntry &victim = arr.way(set, vw);
        if (victim.valid)
            ops.backInvalidate(victim.tag, victim.state());
        arr.install(set, vw, block);
        ++sliceAllocs[block % banks];
        w = static_cast<int>(vw);
    }
    SparseDirEntry &e = arr.way(set, static_cast<unsigned>(w));
    TrackState stored = ns;
    if (cfg.sharerGrain > 1 && stored.shared())
        stored.sharers = coarsen(stored.sharers);
    e.setState(stored);
    arr.touch(set, static_cast<unsigned>(w));
}

SharerSet
SparseDirTracker::coarsen(const SharerSet &s) const
{
    // Conservative group expansion: a set bit stands for all cores of
    // its group, exactly like a numCores/grain-bit coarse vector.
    SharerSet out;
    const unsigned grain = cfg.sharerGrain;
    s.forEach([&](CoreId c) {
        const unsigned g0 = (c / grain) * grain;
        for (unsigned i = 0; i < grain; ++i) {
            const unsigned core = g0 + i;
            if (core < cfg.numCores)
                out.add(static_cast<CoreId>(core));
        }
    });
    return out;
}

void
SparseDirTracker::update(Addr block, const TrackState &ns,
                         const ReqCtx &ctx, EngineOps &ops)
{
    (void)ctx;
    store(block, ns, ops);
}

void
SparseDirTracker::evictionUpdate(Addr block, const TrackState &ns,
                                 MesiState put, EngineOps &ops)
{
    (void)put;
    store(block, ns, ops);
}

void
SparseDirTracker::onLlcDataVictim(const LlcEntry &victim, EngineOps &ops)
{
    // Non-inclusive LLC: evicting a data block does not disturb the
    // directory.
    (void)victim;
    (void)ops;
}

std::uint64_t
SparseDirTracker::trackerSramBits() const
{
    const std::uint64_t total_sets = sets * banks;
    const unsigned tag_bits = physAddrBits - blockShift -
        ceilLog2(std::max<std::uint64_t>(2, total_sets));
    // tag + (possibly coarse) sharer bitvector + 2 state bits + NRU
    const std::uint64_t entry_bits =
        tag_bits + cfg.numCores / cfg.sharerGrain + 3;
    return entry_bits * sets * ways * banks;
}

bool
SparseDirTracker::debugHasDirEntry(Addr block)
{
    auto &arr = slices[block % banks];
    return arr.findWay((block / banks) & (sets - 1), block) >= 0;
}

bool
SparseDirTracker::debugForgeState(Addr block, const TrackState &ts)
{
    auto &arr = slices[block % banks];
    SparseDirEntry *e = arr.find((block / banks) & (sets - 1), block);
    if (!e)
        return false;
    e->setState(ts);
    return true;
}

bool
SparseDirTracker::debugDropEntry(Addr block)
{
    auto &arr = slices[block % banks];
    const std::uint64_t set = (block / banks) & (sets - 1);
    const int w = arr.findWay(set, block);
    if (w < 0)
        return false;
    arr.clearWay(set, static_cast<unsigned>(w));
    return true;
}

void
SparseDirTracker::saveState(ckpt::Writer &w) const
{
    for (const auto &arr : slices) {
        arr.saveState(w, [](ckpt::Writer &wr, const SparseDirEntry &e) {
            e.saveState(wr);
        });
    }
    // Stream layout unchanged from the single-counter era: the slices'
    // sum is what dump() reports and what a restore needs.
    w.u64(dirAllocs());
}

void
SparseDirTracker::loadState(ckpt::Reader &r)
{
    for (auto &arr : slices) {
        arr.loadState(r, [](ckpt::Reader &rd, SparseDirEntry &e) {
            e.loadState(rd);
        });
    }
    for (Scalar &s : sliceAllocs)
        s.reset();
    sliceAllocs[0] += r.u64();
}

std::string
SparseDirTracker::name() const
{
    std::ostringstream os;
    os << "sparse(" << cfg.dirSizeFactor << "x)";
    return os.str();
}

} // namespace tinydir
