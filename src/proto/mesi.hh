/**
 * @file
 * MESI protocol vocabulary shared by the private hierarchy, the home
 * controller (engine) and the coherence trackers.
 *
 * The baseline protocol is write-invalidate MESI (Table I) with:
 *  - instruction reads always granted S (code-sharing acceleration);
 *  - all private-hierarchy evictions notified to the home;
 *  - sequential consistency (no eager-exclusive replies).
 */

#ifndef TINYDIR_PROTO_MESI_HH
#define TINYDIR_PROTO_MESI_HH

#include <string>

#include "common/sharer_set.hh"
#include "common/sim_error.hh"
#include "common/types.hh"

namespace tinydir
{

/** Stable MESI state of a block inside one core's private hierarchy. */
enum class MesiState : std::uint8_t
{
    I, //!< invalid / not present
    S, //!< shared, clean
    E, //!< exclusive, clean
    M, //!< modified
};

/** Memory operation kinds issued by a core. */
enum class AccessType : std::uint8_t
{
    Load,
    Store,
    Ifetch,
};

/** Request types seen by the home LLC bank. */
enum class ReqType : std::uint8_t
{
    GetS,  //!< data read miss
    GetSI, //!< instruction read miss (granted S)
    GetX,  //!< write miss (read-exclusive)
    Upg,   //!< upgrade: requester holds S, wants M
};

/** Home-side view of a block's global coherence state. */
struct TrackState
{
    enum class Kind : std::uint8_t
    {
        Invalid,   //!< unowned / not privately cached
        Exclusive, //!< exclusively owned (owner may be E or M)
        Shared,    //!< one or more read-only sharers
    };

    Kind kind = Kind::Invalid;
    CoreId owner = invalidCore;
    SharerSet sharers;

    bool invalid() const { return kind == Kind::Invalid; }
    bool exclusive() const { return kind == Kind::Exclusive; }
    bool shared() const { return kind == Kind::Shared; }

    static TrackState
    makeExclusive(CoreId c)
    {
        TrackState t;
        t.kind = Kind::Exclusive;
        t.owner = c;
        return t;
    }

    static TrackState
    makeShared(const SharerSet &s)
    {
        TrackState t;
        t.kind = Kind::Shared;
        t.sharers = s;
        return t;
    }

    /** Serialize kind/owner/sharers (ckpt/). */
    template <typename W>
    void
    saveState(W &w) const
    {
        w.u8(static_cast<std::uint8_t>(kind));
        w.u16(owner);
        sharers.saveState(w);
    }

    /** Restore state written by saveState; validates the kind tag. */
    template <typename R>
    void
    loadState(R &r)
    {
        const std::uint8_t k = r.u8();
        if (k > static_cast<std::uint8_t>(Kind::Shared))
            throw CheckpointError("checkpoint corrupt: track kind " +
                                  std::to_string(k));
        kind = static_cast<Kind>(k);
        owner = r.u16();
        sharers.loadState(r);
    }
};

/** Human-readable names. */
std::string toString(MesiState s);
std::string toString(AccessType t);
std::string toString(ReqType t);

/**
 * STRA category of a block given its (estimated or measured) STRA
 * ratio (Section III-C): C0 = ratio 0; Ci (1<=i<=6) covers
 * (1 - 1/2^(i-1), 1 - 1/2^i]; C7 covers (1 - 1/64, 1].
 */
unsigned straCategory(double ratio);

/** Number of STRA categories (C0..C7). */
constexpr unsigned numStraCategories = 8;

} // namespace tinydir

#endif // TINYDIR_PROTO_MESI_HH
