/**
 * @file
 * Stash directory baseline [14], evaluated in Fig. 22.
 *
 * A conventional sparse directory that, on entry eviction, does not
 * invalidate private (exclusively owned) blocks: the block is
 * "stashed" — cached but untracked. When a stashed block is requested
 * again, the home resorts to a broadcast to locate the copy and
 * rebuilds the entry. Shared victims are back-invalidated as usual.
 * The model keeps the ground-truth state of stashed blocks in a side
 * map standing in for what the broadcast would discover; the
 * broadcast's traffic and latency are charged by the engine via the
 * Residence::Broadcast marker.
 */

#ifndef TINYDIR_PROTO_STASH_HH
#define TINYDIR_PROTO_STASH_HH

#include <vector>

#include "common/config.hh"
#include "common/flat_map.hh"
#include "mem/cache_array.hh"
#include "proto/sparse_dir.hh"
#include "proto/tracker.hh"

namespace tinydir
{

/** The Stash directory tracker. */
class StashTracker : public CoherenceTracker
{
  public:
    explicit StashTracker(const SystemConfig &cfg);

    TrackerView view(Addr block) override;
    void update(Addr block, const TrackState &ns, const ReqCtx &ctx,
                EngineOps &ops) override;
    void evictionUpdate(Addr block, const TrackState &ns, MesiState put,
                        EngineOps &ops) override;
    void onLlcDataVictim(const LlcEntry &victim, EngineOps &ops) override;
    std::uint64_t trackerSramBits() const override;
    std::string name() const override;

    Counter dirAllocs() const override { return allocs.value(); }
    Counter broadcasts() const override { return bcasts.value(); }

    void
    resetStats() override
    {
        allocs.reset();
        bcasts.reset();
    }
    Counter stashedNow() const { return stashed.size(); }

    bool debugHasDirEntry(Addr block) override;
    bool debugForgeState(Addr block, const TrackState &ts) override;
    bool debugDropEntry(Addr block) override;
    bool isStashed(Addr block) const { return stashed.contains(block); }

    void saveState(ckpt::Writer &w) const override;
    void loadState(ckpt::Reader &r) override;

  private:
    void store(Addr block, const TrackState &ns, EngineOps &ops);

    const SystemConfig &cfg;
    unsigned banks;
    std::uint64_t sets;
    unsigned ways;
    std::vector<CacheArray<SparseDirEntry>> slices;
    /** Cached-but-untracked blocks (what a broadcast would find). */
    FlatMap<TrackState> stashed;
    Scalar allocs, bcasts;
};

} // namespace tinydir

#endif // TINYDIR_PROTO_STASH_HH
