/**
 * @file
 * Multi-grain directory (MgD) baseline [47], evaluated in Fig. 22.
 *
 * MgD invests a single directory entry for a privately accessed 1 KB
 * region; blocks of shared regions are tracked at block grain with
 * full-map entries. When a second core touches a privately owned
 * region, the region entry is split: the owner is probed and a block
 * entry is allocated for every region block it caches. Region-entry
 * eviction invalidates the owner's cached blocks of that region.
 * The organization is the 4-way skew-associative (H3) one the paper
 * evaluates; a set-associative option exists for ablations.
 */

#ifndef TINYDIR_PROTO_MGD_HH
#define TINYDIR_PROTO_MGD_HH

#include <vector>

#include "common/config.hh"
#include "common/flat_map.hh"
#include "core/private_cache.hh"
#include "mem/cache_array.hh"
#include "mem/skew_array.hh"
#include "proto/tracker.hh"

namespace tinydir
{

/** The multi-grain directory tracker. */
class MgdTracker : public CoherenceTracker
{
  public:
    /**
     * @param privs The private hierarchies; region split/eviction
     * consult them in lieu of the probe responses real hardware would
     * collect (the probe traffic is still accounted).
     */
    MgdTracker(const SystemConfig &cfg,
               std::vector<PrivateCache> &privs);

    TrackerView view(Addr block) override;
    void update(Addr block, const TrackState &ns, const ReqCtx &ctx,
                EngineOps &ops) override;
    void evictionUpdate(Addr block, const TrackState &ns, MesiState put,
                        EngineOps &ops) override;
    void onLlcDataVictim(const LlcEntry &victim, EngineOps &ops) override;
    std::uint64_t trackerSramBits() const override;
    std::string name() const override;
    bool coarseGrain() const override { return true; }

    Counter dirAllocs() const override { return allocs.value(); }
    Counter regionSplits() const { return splits.value(); }

    void
    resetStats() override
    {
        allocs.reset();
        splits.reset();
    }

    void saveState(ckpt::Writer &w) const override;
    void loadState(ckpt::Reader &r) override;

  private:
    /** Region or block entry. */
    struct MgdEntry
    {
        Addr tag = 0; //!< block number, or region number for regions
        bool valid = false;
        bool region = false;
        TrackState::Kind kind = TrackState::Kind::Invalid;
        CoreId owner = invalidCore;
        SharerSet sharers;

        TrackState
        state() const
        {
            TrackState ts;
            ts.kind = kind;
            ts.owner = owner;
            ts.sharers = sharers;
            return ts;
        }
    };

    Addr regionOf(Addr block) const { return block / regionBlocks; }

    MgdEntry *findBlockEntry(Addr block);
    MgdEntry *findRegionEntry(Addr region);
    void eraseBlockEntry(Addr block);
    void noteBlockEntryGone(Addr block);
    /** Allocate a block-grain entry; victims handled. */
    void storeBlock(Addr block, const TrackState &ns, EngineOps &ops);
    /** Handle an evicted entry (region or block). */
    void handleVictim(const MgdEntry &victim, EngineOps &ops);
    /** Split a region entry into block entries (probe the owner). */
    void splitRegion(Addr region, CoreId owner, Addr except,
                     EngineOps &ops);

    const SystemConfig &cfg;
    std::vector<PrivateCache> &privs;
    unsigned banks;
    unsigned regionBlocks;
    std::uint64_t rows;
    unsigned ways;
    bool skewed;
    std::vector<SkewArray<MgdEntry>> skewSlices;
    std::vector<CacheArray<MgdEntry>> slices;
    /** Count of live block entries per region (grain choice). */
    FlatMap<unsigned> blockEntries;
    Scalar allocs, splits;
};

} // namespace tinydir

#endif // TINYDIR_PROTO_MGD_HH
