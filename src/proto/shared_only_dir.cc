#include "proto/shared_only_dir.hh"

#include <sstream>

#include "common/bitops.hh"
#include "common/log.hh"
#include "ckpt/io.hh"

namespace tinydir
{

SharedOnlyDirTracker::SharedOnlyDirTracker(const SystemConfig &c)
    : cfg(c), banks(c.llcBanks()), skewed(c.dirSkewed)
{
    ways = skewed ? 4 : c.effectiveDirAssoc();
    const std::uint64_t per_slice = c.dirEntriesPerSlice();
    sets = std::max<std::uint64_t>(1, per_slice / ways);
    if (skewed)
        skewSlices.reserve(banks);
    else
        slices.reserve(banks);
    for (unsigned b = 0; b < banks; ++b) {
        if (skewed)
            skewSlices.emplace_back(sets, ways, c.seed + 90 + b);
        else
            slices.emplace_back(sets, ways, ReplPolicy::Nru,
                                c.seed + 90 + b);
    }
}

SparseDirEntry *
SharedOnlyDirTracker::findDir(Addr block)
{
    const unsigned slice = block % banks;
    if (skewed)
        return skewSlices[slice].find(block);
    const std::uint64_t set = (block / banks) & (sets - 1);
    return slices[slice].find(set, block);
}

TrackerView
SharedOnlyDirTracker::view(Addr block)
{
    SparseDirEntry *e = findDir(block);
    if (e)
        return {e->state(), Residence::DirSram};
    if (const TrackState *ts = unbounded.find(block))
        return {*ts, Residence::DirSram};
    return {};
}

void
SharedOnlyDirTracker::eraseDir(Addr block)
{
    const unsigned slice = block % banks;
    if (skewed) {
        if (SparseDirEntry *e = skewSlices[slice].find(block))
            skewSlices[slice].clearEntry(e);
        return;
    }
    const std::uint64_t set = (block / banks) & (sets - 1);
    int w = slices[slice].findWay(set, block);
    if (w >= 0) {
        slices[slice].clearWay(set, static_cast<unsigned>(w));
        slices[slice].demote(set, static_cast<unsigned>(w));
    }
}

void
SharedOnlyDirTracker::store(Addr block, const TrackState &ns,
                            EngineOps &ops)
{
    if (ns.invalid()) {
        eraseDir(block);
        unbounded.erase(block);
        return;
    }
    const unsigned slice0 = block % banks;
    // A directory entry, once allocated, stays until eviction or the
    // block reaches a state with no sharer or owner (Section I).
    bool in_dir;
    if (skewed) {
        in_dir = skewSlices[slice0].find(block) != nullptr;
    } else {
        const std::uint64_t set0 = (block / banks) & (sets - 1);
        in_dir = slices[slice0].findWay(set0, block) >= 0;
    }
    const bool widely_shared = ns.shared() && ns.sharers.count() >= 2;
    if (!in_dir && !widely_shared) {
        // Private, exclusively owned, or single-sharer blocks live in
        // the unbounded structure until they become widely shared.
        unbounded[block] = ns;
        return;
    }
    unbounded.erase(block);
    const unsigned slice = block % banks;
    if (skewed) {
        auto &arr = skewSlices[slice];
        if (SparseDirEntry *e = arr.find(block)) {
            e->setState(ns);
            arr.touch(block);
            return;
        }
        auto ir = arr.insert(block);
        if (ir.victim && ir.victim->valid)
            ops.backInvalidate(ir.victim->tag, ir.victim->state());
        ir.slot->setState(ns);
        ++allocs;
        return;
    }
    auto &arr = slices[slice];
    const std::uint64_t set = (block / banks) & (sets - 1);
    int w = arr.findWay(set, block);
    if (w < 0) {
        const unsigned vw = arr.victimWay(set);
        const SparseDirEntry &victim = arr.way(set, vw);
        if (victim.valid)
            ops.backInvalidate(victim.tag, victim.state());
        arr.install(set, vw, block);
        ++allocs;
        w = static_cast<int>(vw);
    }
    SparseDirEntry &e = arr.way(set, static_cast<unsigned>(w));
    e.setState(ns);
    arr.touch(set, static_cast<unsigned>(w));
}

void
SharedOnlyDirTracker::update(Addr block, const TrackState &ns,
                             const ReqCtx &ctx, EngineOps &ops)
{
    (void)ctx;
    store(block, ns, ops);
}

void
SharedOnlyDirTracker::evictionUpdate(Addr block, const TrackState &ns,
                                     MesiState put, EngineOps &ops)
{
    (void)put;
    store(block, ns, ops);
}

void
SharedOnlyDirTracker::onLlcDataVictim(const LlcEntry &victim,
                                      EngineOps &ops)
{
    (void)victim;
    (void)ops;
}

bool
SharedOnlyDirTracker::debugHasDirEntry(Addr block)
{
    return findDir(block) != nullptr;
}

bool
SharedOnlyDirTracker::debugForgeState(Addr block, const TrackState &ts)
{
    if (SparseDirEntry *e = findDir(block)) {
        e->setState(ts);
        return true;
    }
    if (TrackState *st = unbounded.find(block)) {
        *st = ts;
        return true;
    }
    return false;
}

bool
SharedOnlyDirTracker::debugDropEntry(Addr block)
{
    const unsigned slice = block % banks;
    if (skewed) {
        if (SparseDirEntry *e = skewSlices[slice].find(block)) {
            skewSlices[slice].clearEntry(e);
            return true;
        }
    } else {
        const std::uint64_t set = (block / banks) & (sets - 1);
        const int w = slices[slice].findWay(set, block);
        if (w >= 0) {
            slices[slice].clearWay(set, static_cast<unsigned>(w));
            return true;
        }
    }
    return unbounded.erase(block);
}

std::uint64_t
SharedOnlyDirTracker::trackerSramBits() const
{
    // Fig. 3 explicitly ignores the unbounded structure's overhead.
    const std::uint64_t total_sets = sets * banks;
    const unsigned tag_bits = physAddrBits - blockShift -
        ceilLog2(std::max<std::uint64_t>(2, total_sets));
    const std::uint64_t entry_bits = tag_bits + cfg.numCores + 3;
    return entry_bits * sets * ways * banks;
}

void
SharedOnlyDirTracker::saveState(ckpt::Writer &w) const
{
    const auto save_entry = [](ckpt::Writer &wr,
                               const SparseDirEntry &e) {
        e.saveState(wr);
    };
    for (const auto &arr : slices)
        arr.saveState(w, save_entry);
    for (const auto &arr : skewSlices)
        arr.saveState(w, save_entry);
    unbounded.saveState(w, [](ckpt::Writer &wr, const TrackState &ts) {
        ts.saveState(wr);
    });
    allocs.saveState(w);
}

void
SharedOnlyDirTracker::loadState(ckpt::Reader &r)
{
    const auto load_entry = [](ckpt::Reader &rd, SparseDirEntry &e) {
        e.loadState(rd);
    };
    for (auto &arr : slices)
        arr.loadState(r, load_entry);
    for (auto &arr : skewSlices)
        arr.loadState(r, load_entry);
    unbounded.loadState(r, [](ckpt::Reader &rd, TrackState &ts) {
        ts.loadState(rd);
    });
    allocs.loadState(r);
}

std::string
SharedOnlyDirTracker::name() const
{
    std::ostringstream os;
    os << "shared-only(" << cfg.dirSizeFactor << "x"
       << (skewed ? ", skew" : "") << ")";
    return os.str();
}

} // namespace tinydir
