/**
 * @file
 * Idealized shared-only sparse directory (the Fig. 3 experiment).
 *
 * A block's entry is allocated in the sparse directory only when the
 * block enters the shared state with two distinct sharers; blocks that
 * are unowned, exclusively owned, or shared by a single core are
 * tracked in a special unbounded structure whose overhead is ignored
 * (paper Section I). Supports the 8-way set-associative organization
 * and the 4-way skew-associative H3/ZCache variant.
 */

#ifndef TINYDIR_PROTO_SHARED_ONLY_DIR_HH
#define TINYDIR_PROTO_SHARED_ONLY_DIR_HH

#include <memory>
#include <vector>

#include "common/config.hh"
#include "common/flat_map.hh"
#include "mem/cache_array.hh"
#include "mem/skew_array.hh"
#include "proto/sparse_dir.hh"
#include "proto/tracker.hh"

namespace tinydir
{

/** Shared-only directory with an unbounded private-side table. */
class SharedOnlyDirTracker : public CoherenceTracker
{
  public:
    explicit SharedOnlyDirTracker(const SystemConfig &cfg);

    TrackerView view(Addr block) override;
    void update(Addr block, const TrackState &ns, const ReqCtx &ctx,
                EngineOps &ops) override;
    void evictionUpdate(Addr block, const TrackState &ns, MesiState put,
                        EngineOps &ops) override;
    void onLlcDataVictim(const LlcEntry &victim, EngineOps &ops) override;
    std::uint64_t trackerSramBits() const override;
    std::string name() const override;

    Counter dirAllocs() const override { return allocs.value(); }
    void resetStats() override { allocs.reset(); }

    bool debugHasDirEntry(Addr block) override;
    bool debugForgeState(Addr block, const TrackState &ts) override;
    bool debugDropEntry(Addr block) override;

    void saveState(ckpt::Writer &w) const override;
    void loadState(ckpt::Reader &r) override;

  private:
    SparseDirEntry *findDir(Addr block);
    void store(Addr block, const TrackState &ns, EngineOps &ops);
    void eraseDir(Addr block);

    const SystemConfig &cfg;
    unsigned banks;
    std::uint64_t sets;
    unsigned ways;
    bool skewed;
    std::vector<CacheArray<SparseDirEntry>> slices;
    std::vector<SkewArray<SparseDirEntry>> skewSlices;
    /** Unbounded tracking for non-shared blocks (overhead ignored). */
    FlatMap<TrackState> unbounded;
    Scalar allocs;
};

} // namespace tinydir

#endif // TINYDIR_PROTO_SHARED_ONLY_DIR_HH
