/**
 * @file
 * In-LLC coherence tracking (paper Section III).
 *
 * Two variants:
 *
 *  - InLlcTracker: no directory SRAM at all. A tracked block's LLC way
 *    enters a corrupted state (V=0, D=1) and its first bits encode
 *    owner/sharers (Tables III/IV). Reads of corrupted-shared blocks
 *    become three-hop transactions; evictions need reconstruction.
 *    Tracking is tag-inclusive: evicting a corrupted LLC way
 *    back-invalidates the private copies.
 *
 *  - TagExtendedTracker: the storage-heavy strawman of Fig. 4 (left
 *    bars): every LLC tag is extended with a full tracking entry. The
 *    data way stays usable, so shared reads remain two-hop; tracking
 *    is still tag-inclusive.
 */

#ifndef TINYDIR_PROTO_INLLC_HH
#define TINYDIR_PROTO_INLLC_HH

#include "cache/llc.hh"
#include "common/config.hh"
#include "proto/tracker.hh"

namespace tinydir
{

/** Helpers shared by the in-LLC family (also used by TinyDirTracker). */
namespace inllc_detail
{

/** Read the TrackState encoded in a corrupted or spilled LLC entry. */
TrackState stateOf(const LlcEntry &e);

/** Write @p ts into the entry's tracking payload (owner/sharers). */
void encode(LlcEntry &e, const TrackState &ts);

} // namespace inllc_detail

/** Section III: tracking in borrowed LLC data-block bits. */
class InLlcTracker : public CoherenceTracker
{
  public:
    InLlcTracker(const SystemConfig &cfg, Llc &llc);

    TrackerView view(Addr block) override;
    void update(Addr block, const TrackState &ns, const ReqCtx &ctx,
                EngineOps &ops) override;
    void evictionUpdate(Addr block, const TrackState &ns, MesiState put,
                        EngineOps &ops) override;
    void onLlcDataVictim(const LlcEntry &victim, EngineOps &ops) override;
    unsigned evictionNoticeExtraBytes(MesiState s) const override;
    std::uint64_t trackerSramBits() const override { return 0; }
    std::string name() const override { return "in-llc"; }

    bool warmRegister(Addr block, const TrackState &ts,
                      EngineOps &ops) override;

    /** All state lives in per-bank LLC ways: shard-concurrency safe. */
    bool shardSafe() const override { return true; }

  private:
    const SystemConfig &cfg;
    Llc &llc;
};

/** Fig. 4 strawman: every LLC tag extended with a tracking entry. */
class TagExtendedTracker : public CoherenceTracker
{
  public:
    TagExtendedTracker(const SystemConfig &cfg, Llc &llc);

    TrackerView view(Addr block) override;
    void update(Addr block, const TrackState &ns, const ReqCtx &ctx,
                EngineOps &ops) override;
    void evictionUpdate(Addr block, const TrackState &ns, MesiState put,
                        EngineOps &ops) override;
    void onLlcDataVictim(const LlcEntry &victim, EngineOps &ops) override;
    std::uint64_t trackerSramBits() const override;
    std::string name() const override { return "in-llc-tag-extended"; }

    bool warmRegister(Addr block, const TrackState &ts,
                      EngineOps &ops) override;

    /** All state lives in per-bank LLC ways: shard-concurrency safe. */
    bool shardSafe() const override { return true; }

  private:
    void store(Addr block, const TrackState &ns, EngineOps &ops);

    const SystemConfig &cfg;
    Llc &llc;
};

} // namespace tinydir

#endif // TINYDIR_PROTO_INLLC_HH
