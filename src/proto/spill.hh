/**
 * @file
 * Dynamic Spill policy (paper Section IV-B2).
 *
 * Each LLC bank independently maintains a STRA spill threshold
 * category index i: tracking entries of blocks with STRA category
 * Cj, j >= i may spill into the LLC. Sixteen sampled sets per bank
 * never admit spills and estimate MR_no-spill; every 8K non-writeback
 * accesses the bank compares MR_spill against MR_no-spill + delta and
 * walks i down (more spilling) or up (less). delta is re-chosen each
 * window from the bank's miss rate and overall STRA ratio:
 * (A) mr>=10%, stra>=0.4 -> 1/4; (B) mr>=10%, stra<0.4 -> 1/32;
 * (C) mr<10%, stra>=0.4 -> 1/16; (D) otherwise -> 1/32.
 */

#ifndef TINYDIR_PROTO_SPILL_HH
#define TINYDIR_PROTO_SPILL_HH

#include <vector>

#include "common/config.hh"
#include "common/stats.hh"
#include "common/types.hh"

namespace tinydir
{

/** Per-bank dynamic spill threshold controller. */
class SpillPolicy
{
  public:
    SpillPolicy(const SystemConfig &cfg, unsigned num_banks);

    /**
     * May the tracking entry of a block with STRA category @p cat
     * spill into bank @p bank? @p sampled_set marks the no-spill
     * sampled sets.
     */
    bool
    allows(unsigned bank, unsigned cat, bool sampled_set) const
    {
        if (sampled_set)
            return false;
        return cat >= states[bank].thresholdIdx;
    }

    /** Record an LLC access outcome; drives the observation windows. */
    void observe(unsigned bank, bool sampled_set, bool miss,
                 bool stra_read);

    unsigned thresholdIdx(unsigned bank) const
    {
        return states[bank].thresholdIdx;
    }

    double delta(unsigned bank) const { return states[bank].delta; }

    Counter windowsCompleted() const { return windows.value(); }

    /** Serialize every bank's controller state (ckpt/). */
    template <typename W>
    void
    saveState(W &w) const
    {
        for (const auto &st : states) {
            w.u32(st.thresholdIdx);
            w.d(st.delta);
            w.u64(st.winAccesses);
            w.u64(st.sampAccesses);
            w.u64(st.sampMisses);
            w.u64(st.otherAccesses);
            w.u64(st.otherMisses);
            w.u64(st.straReads);
            w.u64(st.misses);
        }
        windows.saveState(w);
    }

    /** Restore state written by saveState. */
    template <typename R>
    void
    loadState(R &r)
    {
        for (auto &st : states) {
            st.thresholdIdx = r.u32();
            st.delta = r.d();
            st.winAccesses = r.u64();
            st.sampAccesses = r.u64();
            st.sampMisses = r.u64();
            st.otherAccesses = r.u64();
            st.otherMisses = r.u64();
            st.straReads = r.u64();
            st.misses = r.u64();
        }
        windows.loadState(r);
    }

  private:
    struct BankState
    {
        /**
         * STRA spill threshold category index. Starts permissive
         * (0, everything spills); the window controller walks it up
         * as soon as the sampled sets show spilling hurts the miss
         * rate (the paper leaves the initial value unspecified; a
         * permissive start converges fastest and is still bounded by
         * delta within one window).
         */
        unsigned thresholdIdx = 0;
        double delta = 1.0 / 32;
        Counter winAccesses = 0;
        Counter sampAccesses = 0;
        Counter sampMisses = 0;
        Counter otherAccesses = 0;
        Counter otherMisses = 0;
        Counter straReads = 0;
        Counter misses = 0;
    };

    void endWindow(BankState &st);

    const SystemConfig &cfg;
    std::vector<BankState> states;
    Scalar windows;
};

} // namespace tinydir

#endif // TINYDIR_PROTO_SPILL_HH
