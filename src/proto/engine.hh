/**
 * @file
 * Home-side coherence engine.
 *
 * One MESI transaction flow serves every tracking scheme; the
 * scheme-specific behaviour is confined to the CoherenceTracker it is
 * configured with. The engine is responsible for:
 *
 *  - the critical-path timing of each transaction (hop latencies on
 *    the mesh, LLC bank queueing, tag/data/decode serialization for
 *    corrupted and spilled entries per Section IV-C, DRAM trips);
 *  - message/byte accounting in the three Fig. 5 classes;
 *  - busy windows for three-hop forwards with NACK/retry semantics;
 *  - LLC fills, victim dispatch, and writebacks;
 *  - the per-residency measurement counters feeding Figs. 2 and 6-9.
 *
 * Transactions are processed atomically in global time order
 * (DESIGN.md Section 2); the protocol's transient states cannot race,
 * but their latency and traffic costs are modeled.
 */

#ifndef TINYDIR_PROTO_ENGINE_HH
#define TINYDIR_PROTO_ENGINE_HH

#include <algorithm>
#include <mutex>
#include <vector>

#include "cache/llc.hh"
#include "common/flat_map.hh"
#include "common/time_wheel.hh"
#include "common/config.hh"
#include "common/stats.hh"
#include "core/private_cache.hh"
#include "mem/dram.hh"
#include "noc/mesh.hh"
#include "noc/traffic.hh"
#include "proto/observe.hh"
#include "proto/tracker.hh"

namespace tinydir
{

/** Engine-level statistics. */
struct EngineStats
{
    Scalar llcAccesses;      //!< LLC accesses except writebacks
    Scalar llcDataMisses;    //!< accesses that fetched from DRAM
    Scalar llcFills;
    Scalar lengthenedReads;  //!< three-hop shared reads (vs 2-hop base)
    Scalar lengthenedCode;   //!< subset that were instruction reads
    Scalar savedBySpill;     //!< 2-hop reads thanks to spilled entries
    Scalar nackRetries;
    Scalar ownerForwards;    //!< forwards to exclusive owners
    Scalar invalidations;    //!< invalidation messages sent
    Scalar backInvals;       //!< blocks back-invalidated
    Scalar dirtyWritebacks;  //!< LLC -> DRAM writebacks
    Scalar evictionNotices;
    Scalar upgradeMisses;    //!< upgrade transactions
    TrafficStats traffic;

    /**
     * Miss-latency distribution in 32-cycle buckets (bucket 31 is the
     * overflow). Separates the 2-hop / 3-hop / DRAM populations for
     * latency-shape analysis.
     */
    Histogram latency{32};

    void
    recordLatency(Cycle lat)
    {
        latency.sample(
            static_cast<unsigned>(std::min<Cycle>(lat / 32, 31)));
    }

    /**
     * Fold another engine's counters into this one (parallel-shard
     * join). Plain sums: stats are associative, so per-shard deltas
     * can be flushed into the system engine at any barrier.
     */
    void
    merge(const EngineStats &o)
    {
        llcAccesses += o.llcAccesses.value();
        llcDataMisses += o.llcDataMisses.value();
        llcFills += o.llcFills.value();
        lengthenedReads += o.lengthenedReads.value();
        lengthenedCode += o.lengthenedCode.value();
        savedBySpill += o.savedBySpill.value();
        nackRetries += o.nackRetries.value();
        ownerForwards += o.ownerForwards.value();
        invalidations += o.invalidations.value();
        backInvals += o.backInvals.value();
        dirtyWritebacks += o.dirtyWritebacks.value();
        evictionNotices += o.evictionNotices.value();
        upgradeMisses += o.upgradeMisses.value();
        traffic.merge(o.traffic);
        for (unsigned b = 0; b < o.latency.size(); ++b) {
            if (o.latency.bucket(b))
                latency.sample(b, o.latency.bucket(b));
        }
    }

    void
    reset()
    {
        llcAccesses.reset();
        llcDataMisses.reset();
        llcFills.reset();
        lengthenedReads.reset();
        lengthenedCode.reset();
        savedBySpill.reset();
        nackRetries.reset();
        ownerForwards.reset();
        invalidations.reset();
        backInvals.reset();
        dirtyWritebacks.reset();
        evictionNotices.reset();
        upgradeMisses.reset();
        traffic.reset();
        latency.reset();
    }
};

/** Result of a home transaction. */
struct RequestResult
{
    Cycle done = 0;        //!< absolute completion time at requester
    MesiState grant = MesiState::I; //!< state granted to requester
    DataSource src = DataSource::None; //!< who supplied the data
    PreEntry pre = PreEntry::None; //!< LLC data-way status at lookup
};

/** Where retrieved dirty data goes on a back-invalidation. */
enum class DirtyDest : std::uint8_t
{
    Llc,     //!< write into the LLC (directory-entry eviction)
    Memory,  //!< write to DRAM (corrupted LLC victim)
    Discard, //!< drop (tests only)
};

/**
 * Relaxed-epoch softening counters (sim/shard.hh). Deliberately NOT
 * an `*Stats` struct: these never enter StatsDump or checkpoints —
 * they count protocol races that only exist under bounded clock skew,
 * and are all zero in serial and exact-lockstep runs. The parallel
 * driver aggregates them into its telemetry at every fold.
 */
struct RelaxCounters
{
    /** Stale eviction notices dropped (the evictor lost a race). */
    Counter staleNotices = 0;
    /** Requests whose tracker view was softened (e.g. Upg -> GetX). */
    Counter softenedRequests = 0;

    void
    merge(const RelaxCounters &o)
    {
        staleNotices += o.staleNotices;
        softenedRequests += o.softenedRequests;
    }
};

/** The shared home controller. */
class Engine : public EngineOps
{
  public:
    Engine(const SystemConfig &cfg, Llc &llc, Mesh &mesh, Dram &dram,
           std::vector<PrivateCache> &privs);

    /** Install the scheme. Must be called before any transaction. */
    void setTracker(CoherenceTracker *t) { tracker = t; }
    CoherenceTracker *getTracker() { return tracker; }

    /**
     * Install (or remove, with nullptr) the per-access observer fed by
     * LLC fill/evict and back-invalidation events. System::setObserver
     * wires this together with the access-level events.
     */
    void setObserver(AccessObserver *o) { observer = o; }

    /** Process a private-hierarchy miss or upgrade. */
    RequestResult request(CoreId c, Addr block, ReqType type, Cycle t0);

    /** Process an eviction notice (PutS/PutE/PutM) from a core. */
    void evictionNotice(CoreId c, Addr block, MesiState st, Cycle t);

    // -- EngineOps ---------------------------------------------------------
    void backInvalidate(Addr block, const TrackState &ts) override;
    void reconstructTraffic(Addr block, const TrackState &ts) override;
    void addTraffic(MsgClass cls, unsigned bytes,
                    Counter count = 1) override;
    Cycle now() const override { return *timeRef; }

    bool
    privPresent(CoreId c, Addr block) override
    {
        auto g = privGuard(c);
        return privs[c].present(block);
    }

    void
    noteLlcDataDeath(Addr block) override
    {
        if (observer)
            observer->onLlcEvict(block);
    }

    /** backInvalidate with explicit dirty-data destination. */
    void backInvalidateTo(Addr block, const TrackState &ts,
                          DirtyDest dest);

    EngineStats stats;

    /** Softening counters (relaxed parallel mode only; else zero). */
    RelaxCounters relax;

    /** Mesh node of a core (1:1 core/bank/node mapping). */
    unsigned nodeOfCore(CoreId c) const { return c; }

    // -- parallel-shard support (sim/shard.hh) --------------------------
    //
    // A sharded run instantiates one Engine per home shard over the
    // SAME Llc/Mesh/Dram/privs components. Each shard engine owns the
    // busy windows and statistic deltas of its banks; the system's
    // engine stays the canonical fold target so dump()/saveState()
    // see exactly the serial layout.

    /**
     * Relaxed-epoch mode: soften the staleness panics that bounded
     * clock skew makes reachable (an eviction notice racing a remote
     * grant, an upgrade whose sharer entry was invalidated in flight).
     * Off (the default) every such event stays a hard panic.
     */
    void setRelaxed(bool r) { relaxed = r; }

    /**
     * Share this engine's transaction clock with @p master (exact
     * lockstep mode): every shard engine then advances the single
     * clock the serial engine would have, which keeps DRAM writeback
     * timestamps — and therefore checkpoint bytes — bit-identical.
     */
    void shareTimeWith(Engine &master) { timeRef = master.timeRef; }

    /**
     * Per-core private-hierarchy locks (array of numCores mutexes;
     * nullptr = serial, no locking). Taken leaf-order: the engine only
     * acquires them while holding its home lock, never the reverse.
     */
    void setPrivLocks(std::mutex *mus) { privMus = mus; }

    /** Serialize DRAM channel/row state across shards (nullptr = off). */
    void setDramMutex(std::mutex *mu) { dramMu = mu; }

    /**
     * Reap every busy window expired by @p to, advancing the expiry
     * wheel clock to @p to. The fold sequence runs this on every shard
     * engine with the global maximum so the merged busyUntil map holds
     * exactly the entries the serial engine would (serial reaping is
     * global on every request; shard reaping is per-home and lags).
     */
    void
    drainExpiredTo(Cycle to)
    {
        busyExpiry.advance(to, [&](Cycle, Addr blk) {
            const Cycle *b = busyUntil.find(blk);
            if (b && *b <= to)
                busyUntil.erase(blk);
        });
    }

    /** Expiry-wheel clock (fold computes the global maximum of these). */
    Cycle expiryClock() const { return busyExpiry.now(); }

    /**
     * Fold @p o's statistic deltas into this engine and zero them in
     * @p o (sums are associative, so folds can happen at any barrier).
     * Also maxes the transaction clock.
     */
    void
    absorbStatsFrom(Engine &o)
    {
        stats.merge(o.stats);
        o.stats.reset();
        relax.merge(o.relax);
        o.relax = RelaxCounters{};
        *timeRef = std::max(*timeRef, *o.timeRef);
    }

    /** Move @p o's busy windows into this engine (checkpoint fold). */
    void
    absorbBusyFrom(Engine &o)
    {
        o.busyUntil.forEach([&](Addr blk, const Cycle &until) {
            busyUntil[blk] = until;
            busyExpiry.insert(until, blk);
        });
        o.busyUntil.clear();
        o.busyExpiry.clear();
    }

    /**
     * Inverse of absorbBusyFrom: hand each busy window back to its
     * home shard engine (@p engineOf maps a block to it) after a
     * mid-run checkpoint, so future NACK checks consult the map that
     * actually serves the block.
     */
    template <typename F>
    void
    redistributeBusy(F &&engineOf)
    {
        busyUntil.forEach([&](Addr blk, const Cycle &until) {
            Engine &e = engineOf(blk);
            e.busyUntil[blk] = until;
            e.busyExpiry.insert(until, blk);
        });
        busyUntil.clear();
        busyExpiry.clear();
    }

    /** Live busy-window entries (tests assert this stays bounded). */
    std::size_t busyFootprint() const { return busyUntil.size(); }

    /** Serialize stats, busy windows and the engine clock (ckpt/). */
    void saveState(ckpt::Writer &w) const;

    /** Restore state written by saveState under an identical config. */
    void loadState(ckpt::Reader &r);

  private:
    /**
     * Scoped lock over an optional mutex: no-op when the pointer is
     * null (the serial configuration), so the plain hot path only
     * pays a branch.
     */
    struct OptLock
    {
        std::mutex *m;
        explicit OptLock(std::mutex *mm) : m(mm)
        {
            if (m)
                m->lock();
        }
        ~OptLock()
        {
            if (m)
                m->unlock();
        }
        OptLock(const OptLock &) = delete;
        OptLock &operator=(const OptLock &) = delete;
    };

    OptLock
    privGuard(CoreId c)
    {
        return OptLock(privMus ? &privMus[c] : nullptr);
    }

    OptLock dramGuard() { return OptLock(dramMu); }

    /** Bank queueing: returns service start, advances bank occupancy. */
    Cycle bankService(unsigned bank, Cycle arrival, Cycle busy_cycles);

    /**
     * Guarantee an LLC data entry for @p block (fill on miss),
     * dispatching any victim. Fresh entries are Normal and clean.
     */
    LlcEntry *ensureLlcData(Addr block, Cycle t)
    {
        return ensureLlcData(llc.locate(block), block, t);
    }
    LlcEntry *ensureLlcData(Llc::Loc loc, Addr block, Cycle t);

    /** Handle an evicted LLC way per its meta-state. */
    void processVictim(const LlcEntry &victim, Cycle t);

    /** Writeback a dirty block to DRAM (traffic + DRAM occupancy). */
    void writebackToMemory(Addr block, Cycle t);

    /** DRAM round trip starting when the miss is detected at home. */
    Cycle dramTrip(Addr block, unsigned home_node, Cycle miss_at);

    const SystemConfig &cfg;
    Llc &llc;
    Mesh &mesh;
    Dram &dram;
    std::vector<PrivateCache> &privs;
    CoherenceTracker *tracker = nullptr;
    AccessObserver *observer = nullptr;

    /**
     * Blocks with an outstanding three-hop forward. Entries are
     * normally consumed by the next request to the block; blocks never
     * touched again are reaped by the busyExpiry wheel the moment
     * their window can no longer matter (see request()), so the map
     * stays bounded on long runs.
     */
    FlatMap<Cycle> busyUntil;
    /**
     * Expiry reminders for busyUntil, bucketed by deadline cycle. The
     * map stays authoritative: a popped reminder only erases its block
     * if the live window really has expired (the entry may have been
     * consumed and re-created with a later deadline since).
     */
    TimeWheel<Addr> busyExpiry;
    Cycle curTime = 0;

    /**
     * The transaction clock actually used: &curTime normally; exact
     * lockstep points every shard engine at the system engine's cell
     * (shareTimeWith) so writeback timestamps match serial execution.
     */
    Cycle *timeRef = &curTime;

    /** Relaxed-epoch staleness softening (sim/shard.hh). */
    bool relaxed = false;

    /** Per-core private-cache locks (parallel mode; null = serial). */
    std::mutex *privMus = nullptr;

    /** DRAM serialization (parallel mode; null = serial). */
    std::mutex *dramMu = nullptr;
};

} // namespace tinydir

#endif // TINYDIR_PROTO_ENGINE_HH
