/**
 * @file
 * Home-side coherence engine.
 *
 * One MESI transaction flow serves every tracking scheme; the
 * scheme-specific behaviour is confined to the CoherenceTracker it is
 * configured with. The engine is responsible for:
 *
 *  - the critical-path timing of each transaction (hop latencies on
 *    the mesh, LLC bank queueing, tag/data/decode serialization for
 *    corrupted and spilled entries per Section IV-C, DRAM trips);
 *  - message/byte accounting in the three Fig. 5 classes;
 *  - busy windows for three-hop forwards with NACK/retry semantics;
 *  - LLC fills, victim dispatch, and writebacks;
 *  - the per-residency measurement counters feeding Figs. 2 and 6-9.
 *
 * Transactions are processed atomically in global time order
 * (DESIGN.md Section 2); the protocol's transient states cannot race,
 * but their latency and traffic costs are modeled.
 */

#ifndef TINYDIR_PROTO_ENGINE_HH
#define TINYDIR_PROTO_ENGINE_HH

#include <algorithm>
#include <vector>

#include "cache/llc.hh"
#include "common/flat_map.hh"
#include "common/time_wheel.hh"
#include "common/config.hh"
#include "common/stats.hh"
#include "core/private_cache.hh"
#include "mem/dram.hh"
#include "noc/mesh.hh"
#include "noc/traffic.hh"
#include "proto/observe.hh"
#include "proto/tracker.hh"

namespace tinydir
{

/** Engine-level statistics. */
struct EngineStats
{
    Scalar llcAccesses;      //!< LLC accesses except writebacks
    Scalar llcDataMisses;    //!< accesses that fetched from DRAM
    Scalar llcFills;
    Scalar lengthenedReads;  //!< three-hop shared reads (vs 2-hop base)
    Scalar lengthenedCode;   //!< subset that were instruction reads
    Scalar savedBySpill;     //!< 2-hop reads thanks to spilled entries
    Scalar nackRetries;
    Scalar ownerForwards;    //!< forwards to exclusive owners
    Scalar invalidations;    //!< invalidation messages sent
    Scalar backInvals;       //!< blocks back-invalidated
    Scalar dirtyWritebacks;  //!< LLC -> DRAM writebacks
    Scalar evictionNotices;
    Scalar upgradeMisses;    //!< upgrade transactions
    TrafficStats traffic;

    /**
     * Miss-latency distribution in 32-cycle buckets (bucket 31 is the
     * overflow). Separates the 2-hop / 3-hop / DRAM populations for
     * latency-shape analysis.
     */
    Histogram latency{32};

    void
    recordLatency(Cycle lat)
    {
        latency.sample(
            static_cast<unsigned>(std::min<Cycle>(lat / 32, 31)));
    }

    void
    reset()
    {
        llcAccesses.reset();
        llcDataMisses.reset();
        llcFills.reset();
        lengthenedReads.reset();
        lengthenedCode.reset();
        savedBySpill.reset();
        nackRetries.reset();
        ownerForwards.reset();
        invalidations.reset();
        backInvals.reset();
        dirtyWritebacks.reset();
        evictionNotices.reset();
        upgradeMisses.reset();
        traffic.reset();
        latency.reset();
    }
};

/** Result of a home transaction. */
struct RequestResult
{
    Cycle done = 0;        //!< absolute completion time at requester
    MesiState grant = MesiState::I; //!< state granted to requester
    DataSource src = DataSource::None; //!< who supplied the data
    PreEntry pre = PreEntry::None; //!< LLC data-way status at lookup
};

/** Where retrieved dirty data goes on a back-invalidation. */
enum class DirtyDest : std::uint8_t
{
    Llc,     //!< write into the LLC (directory-entry eviction)
    Memory,  //!< write to DRAM (corrupted LLC victim)
    Discard, //!< drop (tests only)
};

/** The shared home controller. */
class Engine : public EngineOps
{
  public:
    Engine(const SystemConfig &cfg, Llc &llc, Mesh &mesh, Dram &dram,
           std::vector<PrivateCache> &privs);

    /** Install the scheme. Must be called before any transaction. */
    void setTracker(CoherenceTracker *t) { tracker = t; }
    CoherenceTracker *getTracker() { return tracker; }

    /**
     * Install (or remove, with nullptr) the per-access observer fed by
     * LLC fill/evict and back-invalidation events. System::setObserver
     * wires this together with the access-level events.
     */
    void setObserver(AccessObserver *o) { observer = o; }

    /** Process a private-hierarchy miss or upgrade. */
    RequestResult request(CoreId c, Addr block, ReqType type, Cycle t0);

    /** Process an eviction notice (PutS/PutE/PutM) from a core. */
    void evictionNotice(CoreId c, Addr block, MesiState st, Cycle t);

    // -- EngineOps ---------------------------------------------------------
    void backInvalidate(Addr block, const TrackState &ts) override;
    void reconstructTraffic(Addr block, const TrackState &ts) override;
    void addTraffic(MsgClass cls, unsigned bytes,
                    Counter count = 1) override;
    Cycle now() const override { return curTime; }

    void
    noteLlcDataDeath(Addr block) override
    {
        if (observer)
            observer->onLlcEvict(block);
    }

    /** backInvalidate with explicit dirty-data destination. */
    void backInvalidateTo(Addr block, const TrackState &ts,
                          DirtyDest dest);

    EngineStats stats;

    /** Mesh node of a core (1:1 core/bank/node mapping). */
    unsigned nodeOfCore(CoreId c) const { return c; }

    /** Live busy-window entries (tests assert this stays bounded). */
    std::size_t busyFootprint() const { return busyUntil.size(); }

    /** Serialize stats, busy windows and the engine clock (ckpt/). */
    void saveState(ckpt::Writer &w) const;

    /** Restore state written by saveState under an identical config. */
    void loadState(ckpt::Reader &r);

  private:
    /** Bank queueing: returns service start, advances bank occupancy. */
    Cycle bankService(unsigned bank, Cycle arrival, Cycle busy_cycles);

    /**
     * Guarantee an LLC data entry for @p block (fill on miss),
     * dispatching any victim. Fresh entries are Normal and clean.
     */
    LlcEntry *ensureLlcData(Addr block, Cycle t)
    {
        return ensureLlcData(llc.locate(block), block, t);
    }
    LlcEntry *ensureLlcData(Llc::Loc loc, Addr block, Cycle t);

    /** Handle an evicted LLC way per its meta-state. */
    void processVictim(const LlcEntry &victim, Cycle t);

    /** Writeback a dirty block to DRAM (traffic + DRAM occupancy). */
    void writebackToMemory(Addr block, Cycle t);

    /** DRAM round trip starting when the miss is detected at home. */
    Cycle dramTrip(Addr block, unsigned home_node, Cycle miss_at);

    const SystemConfig &cfg;
    Llc &llc;
    Mesh &mesh;
    Dram &dram;
    std::vector<PrivateCache> &privs;
    CoherenceTracker *tracker = nullptr;
    AccessObserver *observer = nullptr;

    /**
     * Blocks with an outstanding three-hop forward. Entries are
     * normally consumed by the next request to the block; blocks never
     * touched again are reaped by the busyExpiry wheel the moment
     * their window can no longer matter (see request()), so the map
     * stays bounded on long runs.
     */
    FlatMap<Cycle> busyUntil;
    /**
     * Expiry reminders for busyUntil, bucketed by deadline cycle. The
     * map stays authoritative: a popped reminder only erases its block
     * if the live window really has expired (the entry may have been
     * consumed and re-created with a later deadline since).
     */
    TimeWheel<Addr> busyExpiry;
    Cycle curTime = 0;
};

} // namespace tinydir

#endif // TINYDIR_PROTO_ENGINE_HH
