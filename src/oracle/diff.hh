/**
 * @file
 * Differential comparison between a live System and the reference
 * model: OracleDiff implements AccessObserver, feeds every event to
 * RefModel, and latches the first divergence with enough surrounding
 * context (a ring of recent events) to make the report actionable.
 *
 * Two stronger checks are available on demand:
 *  - crossCheck() walks the real private hierarchies and compares them
 *    block-by-block against the model in both directions, catching
 *    corruptions whose symptom has not yet reached the event stream;
 *  - checkTotals() compares the system's cumulative counters against
 *    the model's scheme-independent totals (warmup-free runs only).
 */

#ifndef TINYDIR_ORACLE_DIFF_HH
#define TINYDIR_ORACLE_DIFF_HH

#include <array>
#include <cstddef>
#include <string>

#include "common/stats.hh"
#include "oracle/ref_model.hh"
#include "proto/observe.hh"

namespace tinydir
{

class System;

/** First divergence found by the oracle, with recent-event context. */
struct DivergenceReport
{
    bool diverged = false;
    Counter accessIndex = 0; //!< accesses completed when it tripped
    std::string rule;
    std::string detail;
    std::vector<std::string> context; //!< recent events, oldest first

    /** Multi-line human-readable rendering. */
    std::string describe() const;
};

/** AccessObserver that diffs the engine against the reference model. */
class OracleDiff : public AccessObserver
{
  public:
    explicit OracleDiff(const SystemConfig &cfg) : model_(cfg) {}

    void onAccess(const AccessObservation &obs) override;
    void onNotice(CoreId core, Addr block, MesiState put) override;
    void onBackInval(Addr block, const TrackState &ts) override;
    void onLlcFill(Addr block) override;
    void onLlcEvict(Addr block) override;

    /**
     * Compare the real private hierarchies against the model in both
     * directions (and run the model's own SWMR check). Latches a
     * divergence like the event checks do.
     * @retval true when everything matches.
     */
    bool crossCheck(const System &sys);

    /**
     * Compare cumulative counters against the model totals. Only valid
     * when the run had no warmup (resetStats() never called).
     * @retval true when all totals match.
     */
    bool checkTotals(const StatsDump &d);

    /**
     * Seed the model from a warm (e.g. checkpoint-restored) System:
     * every private-hierarchy holder state plus LLC data residency.
     * Lets the oracle attach mid-run; checkTotals() is not meaningful
     * afterwards, the event checks and crossCheck() are.
     */
    void primeFromSystem(const System &sys);

    bool diverged() const { return report_.diverged; }
    const DivergenceReport &report() const { return report_; }
    const RefModel &model() const { return model_; }
    Counter accessesSeen() const { return accesses_; }

  private:
    void latch(const OracleDivergence &d);
    void remember(std::string event);

    RefModel model_;
    DivergenceReport report_;
    Counter accesses_ = 0;

    static constexpr std::size_t contextSize = 12;
    std::array<std::string, contextSize> ring_{};
    std::size_t ringNext_ = 0;
    Counter ringCount_ = 0;
};

} // namespace tinydir

#endif // TINYDIR_ORACLE_DIFF_HH
