#include "oracle/ref_model.hh"

#include <sstream>

namespace tinydir
{

namespace
{

std::string
describeAccess(const AccessObservation &o)
{
    std::ostringstream os;
    os << "core " << o.core << " " << toString(o.type) << " block 0x"
       << std::hex << o.block << std::dec;
    if (o.requested)
        os << " [" << toString(o.req) << " -> " << toString(o.grant) << "]";
    else
        os << " [hit " << toString(o.privState) << "]";
    return os.str();
}

} // namespace

RefModel::RefModel(const SystemConfig &cfg)
    : numCores(cfg.numCores), relaxGrant(cfg.sharerGrain > 1),
      coarse(cfg.tracker == TrackerKind::Mgd)
{
}

MesiState
RefModel::holderState(CoreId core, Addr block) const
{
    auto li = lines.find(block);
    if (li == lines.end())
        return MesiState::I;
    auto hi = li->second.holders.find(core);
    return hi == li->second.holders.end() ? MesiState::I : hi->second;
}

bool
RefModel::llcResident(Addr block) const
{
    auto li = lines.find(block);
    return li != lines.end() && li->second.resident;
}

void
RefModel::primeHolder(Addr block, CoreId core, MesiState st)
{
    if (st == MesiState::I)
        lineOf(block).holders.erase(core);
    else
        lineOf(block).holders[core] = st;
}

void
RefModel::primeResident(Addr block, bool resident)
{
    lineOf(block).resident = resident;
}

std::optional<OracleDivergence>
RefModel::onAccess(const AccessObservation &o)
{
    Line &line = lineOf(o.block);
    const MesiState st = holderState(o.core, o.block);

    // Residency the engine saw at lookup: if this access's own
    // fills/evictions already touched the block, use the journalled
    // pre-event value instead of the current one.
    auto ji = journal.find(o.block);
    const bool residentAtLookup =
        ji != journal.end() ? ji->second : line.resident;
    journal.clear();

    auto fail = [&](const char *rule, const std::string &why) {
        return OracleDivergence{rule, why + " during " + describeAccess(o)};
    };

    ++tot.accesses;
    switch (o.type) {
      case AccessType::Load: ++tot.loads; break;
      case AccessType::Store: ++tot.stores; break;
      case AccessType::Ifetch: ++tot.ifetches; break;
    }

    // 1. Private-hierarchy presence and state must match the model.
    if (o.privPresent != (st != MesiState::I))
        return fail("priv.presence",
                    "model holds " + toString(st) + ", engine saw " +
                        (o.privPresent ? "a hit" : "a miss"));
    if (o.privPresent && o.privState != st)
        return fail("priv.state", "model holds " + toString(st) +
                                      ", private hierarchy reported " +
                                      toString(o.privState));

    // 2. A home transaction must run exactly on miss or S-store.
    const bool expectReq =
        !o.privPresent || (o.type == AccessType::Store && st == MesiState::S);
    if (o.requested != expectReq)
        return fail(expectReq ? "req.missing" : "req.spurious",
                    std::string("a home request was ") +
                        (expectReq ? "required" : "not allowed"));

    if (!o.requested) {
        ++tot.privHits;
        // Silent E->M on a store hit.
        if (o.type == AccessType::Store && st == MesiState::E)
            line.holders[o.core] = MesiState::M;
        return std::nullopt;
    }

    // 3. The request type is determined by the local state + op.
    ReqType want = ReqType::GetS;
    if (o.privPresent)
        want = ReqType::Upg;
    else if (o.type == AccessType::Store)
        want = ReqType::GetX;
    else if (o.type == AccessType::Ifetch)
        want = ReqType::GetSI;
    if (o.req != want)
        return fail("req.type", "expected " + toString(want) + ", engine sent " +
                                    toString(o.req));

    // 4. LLC residency at lookup time must agree with the model.
    const bool sawEntry = o.pre != PreEntry::None;
    if (sawEntry && !residentAtLookup)
        return fail("llc.phantom-entry",
                    "engine found an LLC data way the model evicted");
    if (!sawEntry && residentAtLookup)
        return fail("llc.lost-entry",
                    "model expects a live LLC data way, engine found none");

    // 5. The granted state must be coherent with the other holders.
    unsigned others = 0;
    bool otherExcl = false;
    for (const auto &[c, hs] : line.holders) {
        if (c == o.core)
            continue;
        ++others;
        if (hs == MesiState::E || hs == MesiState::M)
            otherExcl = true;
    }

    switch (o.req) {
      case ReqType::Upg:
      case ReqType::GetX:
        if (o.grant != MesiState::M)
            return fail("grant.store",
                        "store must be granted M, got " + toString(o.grant));
        break;
      case ReqType::GetSI:
        if (o.grant != MesiState::S)
            return fail("grant.ifetch",
                        "ifetch must be granted S, got " + toString(o.grant));
        break;
      case ReqType::GetS:
        if (others == 0) {
            // Unheld: exact tracking must grant E; coarse sharer
            // vectors may conservatively believe sharers exist and
            // grant S instead.
            const bool ok = o.grant == MesiState::E ||
                            (relaxGrant && o.grant == MesiState::S);
            if (!ok)
                return fail("grant.read",
                            "read of an unheld block granted " +
                                toString(o.grant));
        } else {
            if (o.grant != MesiState::S)
                return fail("grant.read", "read of a held block granted " +
                                              toString(o.grant) + " with " +
                                              std::to_string(others) +
                                              " other holder(s)");
        }
        break;
    }

    // 6. Counters.
    if (o.req != ReqType::Upg && otherExcl)
        ++tot.mustForward;
    if (o.privPresent)
        ++tot.upgrades;
    else
        ++tot.misses;

    // 7. Apply the transaction to the model.
    if (o.req == ReqType::Upg || o.req == ReqType::GetX) {
        line.holders.clear();
        line.holders[o.core] = MesiState::M;
    } else if (o.grant == MesiState::S) {
        // Any exclusive holder was downgraded by the forward.
        for (auto &[c, hs] : line.holders)
            if (hs == MesiState::E || hs == MesiState::M)
                hs = MesiState::S;
        line.holders[o.core] = MesiState::S;
    } else {
        line.holders[o.core] = o.grant;
    }

    return std::nullopt;
}

std::optional<OracleDivergence>
RefModel::onNotice(CoreId core, Addr block, MesiState put)
{
    std::ostringstream os;
    os << "core " << core << " Put" << toString(put) << " block 0x" << std::hex
       << block << std::dec;

    auto li = lines.find(block);
    const MesiState st =
        li == lines.end() ? MesiState::I : holderState(core, block);
    if (st == MesiState::I)
        return OracleDivergence{"notice.untracked",
                                "eviction notice for a block the model does "
                                "not hold: " +
                                    os.str()};
    if (st != put)
        return OracleDivergence{"notice.state", "model holds " + toString(st) +
                                                    ": " + os.str()};
    li->second.holders.erase(core);
    ++tot.notices;
    return std::nullopt;
}

void
RefModel::onBackInval(Addr block, const TrackState &ts)
{
    // Which cores the home believes it must invalidate is a policy
    // decision (and, for coarse schemes, a superset); the model just
    // applies it. Stale private copies that survive a wrong
    // invalidation set are caught later by priv.presence / crossCheck.
    auto li = lines.find(block);
    if (li == lines.end())
        return;
    if (ts.exclusive()) {
        li->second.holders.erase(ts.owner);
    } else if (ts.shared()) {
        ts.sharers.forEach([&](CoreId c) { li->second.holders.erase(c); });
    }
}

std::optional<OracleDivergence>
RefModel::onLlcFill(Addr block)
{
    Line &line = lineOf(block);
    journal.emplace(block, line.resident); // keep first (pre-access) value
    if (line.resident) {
        std::ostringstream os;
        os << "LLC fill of already-resident block 0x" << std::hex << block;
        return OracleDivergence{"llc.double-fill", os.str()};
    }
    line.resident = true;
    return std::nullopt;
}

std::optional<OracleDivergence>
RefModel::onLlcEvict(Addr block)
{
    Line &line = lineOf(block);
    journal.emplace(block, line.resident);
    if (!line.resident) {
        std::ostringstream os;
        os << "LLC eviction of non-resident block 0x" << std::hex << block;
        return OracleDivergence{"llc.evict-untracked", os.str()};
    }
    line.resident = false;
    return std::nullopt;
}

std::optional<OracleDivergence>
RefModel::selfCheck() const
{
    for (const auto &[block, line] : lines) {
        unsigned excl = 0, shared = 0;
        for (const auto &[c, st] : line.holders) {
            if (st == MesiState::E || st == MesiState::M)
                ++excl;
            else if (st == MesiState::S)
                ++shared;
        }
        if (excl > 1 || (excl > 0 && shared > 0)) {
            std::ostringstream os;
            os << "block 0x" << std::hex << block << std::dec << " has "
               << excl << " exclusive and " << shared << " shared holders";
            return OracleDivergence{"swmr", os.str()};
        }
    }
    return std::nullopt;
}

} // namespace tinydir
