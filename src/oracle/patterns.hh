/**
 * @file
 * Coverage-oriented sharing-pattern generators for the fuzzer and the
 * randomized property tests.
 *
 * Each generator produces complete per-core access streams exercising
 * one class of coherence behavior that historically breaks trackers:
 * false sharing (invalidation ping-pong), migratory data (E/M handoff
 * chains), producer-consumer (owner forwards + downgrades), set
 * conflicts (directory/LLC set pressure and back-invalidations), and
 * spill pressure (footprints overflowing a tiny directory). randomMix
 * interleaves slices of all of them plus uniform noise.
 */

#ifndef TINYDIR_ORACLE_PATTERNS_HH
#define TINYDIR_ORACLE_PATTERNS_HH

#include <vector>

#include "common/config.hh"
#include "common/rng.hh"
#include "core/trace.hh"

namespace tinydir
{

/** Per-core access streams, outer index = core id. */
using TraceStreams = std::vector<std::vector<TraceAccess>>;

/** Shape parameters common to all pattern generators. */
struct PatternParams
{
    unsigned numCores = 4;
    Counter accessesPerCore = 1000;
    std::uint64_t seed = 1;
    Cycle maxGap = 8;
};

/** Cores hammering distinct words that map to shared hot blocks. */
TraceStreams falseSharing(const PatternParams &p);

/** Read-modify-write chains handing blocks from core to core. */
TraceStreams migratory(const PatternParams &p);

/** One writer per block group, the other cores polling it. */
TraceStreams producerConsumer(const PatternParams &p);

/** Addresses folded onto few cache/directory sets (conflict storms). */
TraceStreams setConflict(const PatternParams &p);

/** Wide footprint of exclusively owned blocks (directory overflow). */
TraceStreams spillPressure(const PatternParams &p);

/** Random interleaving of slices of all patterns plus uniform noise. */
TraceStreams randomMix(const PatternParams &p);

/** All generators, for iteration. */
using PatternFn = TraceStreams (*)(const PatternParams &);
struct NamedPattern
{
    const char *name;
    PatternFn fn;
};
const std::vector<NamedPattern> &allPatterns();

} // namespace tinydir

#endif // TINYDIR_ORACLE_PATTERNS_HH
