/**
 * @file
 * Corpus case I/O: a minimized failing (or regression) trace stored as
 * a standard workload/trace_file.hh binary plus a human-readable
 * `.meta` sidecar carrying the configuration it must replay under and
 * the expected outcome. Cases live in tests/corpus/ and are replayed
 * verbatim by tests/test_corpus_replay.cc and `fuzz_traces --replay`.
 *
 * Sidecar format: one `key = value` per line, `#` comments. Only
 * configuration fields that the corpus cases actually vary are
 * serialized; everything else keeps SystemConfig defaults so cases
 * stay valid as unrelated defaults evolve.
 */

#ifndef TINYDIR_ORACLE_CORPUS_HH
#define TINYDIR_ORACLE_CORPUS_HH

#include <string>

#include "oracle/replay.hh"

namespace tinydir
{

/** Expected outcome of replaying a corpus case. */
enum class CorpusExpect
{
    Clean,    //!< must replay with the oracle fully satisfied
    Detected, //!< oracle must catch a divergence (fault-injection repro)
};

std::string toString(CorpusExpect e);

/** One on-disk corpus case. */
struct CorpusCase
{
    std::string name;    //!< base name (meta path minus directory/ext)
    ReplaySpec spec;     //!< config + streams + injection, ready to run
    CorpusExpect expect = CorpusExpect::Clean;
    std::string rule;    //!< for Detected: divergence rule (advisory)
};

/**
 * Write @p c as @p basePath.meta + @p basePath.tdtr.
 * @p basePath has no extension; directories must already exist.
 */
void saveCorpusCase(const std::string &basePath, const CorpusCase &c);

/** Load the case described by @p metaPath (fatal() on malformed input). */
CorpusCase loadCorpusCase(const std::string &metaPath);

/** All `.meta` files directly inside @p dir, sorted by name. */
std::vector<std::string> listCorpusCases(const std::string &dir);

} // namespace tinydir

#endif // TINYDIR_ORACLE_CORPUS_HH
