#include "oracle/schemes.hh"

#include "common/types.hh"

namespace tinydir
{

const std::vector<FuzzScheme> &
fuzzSchemes()
{
    static const std::vector<FuzzScheme> schemes = {
        {"sparse2x", TrackerKind::SparseDir, 2.0},
        {"sparse2x_skew", TrackerKind::SparseDir, 2.0, false, true},
        {"sparse2x_grain4", TrackerKind::SparseDir, 2.0, false, false, 4},
        {"sparse16th", TrackerKind::SparseDir, 1.0 / 16},
        {"sharedonly", TrackerKind::SharedOnlyDir, 1.0 / 64},
        {"tagext", TrackerKind::InLlcTagExtended, 2.0},
        {"inllc", TrackerKind::InLlc, 2.0},
        {"tiny32", TrackerKind::TinyDir, 1.0 / 32},
        {"tiny32spill", TrackerKind::TinyDir, 1.0 / 32, true},
        {"tiny64skew", TrackerKind::TinyDir, 1.0 / 64, false, true},
        {"tiny256spill", TrackerKind::TinyDir, 1.0 / 256, true},
        {"mgd", TrackerKind::Mgd, 1.0 / 8, false, true},
        {"stash", TrackerKind::Stash, 1.0 / 32},
    };
    return schemes;
}

const FuzzScheme *
findFuzzScheme(const std::string &label)
{
    for (const auto &s : fuzzSchemes())
        if (label == s.label)
            return &s;
    return nullptr;
}

SystemConfig
makeFuzzConfig(const FuzzScheme &s, unsigned cores, std::uint64_t seed,
               bool tinyCaches)
{
    SystemConfig cfg = SystemConfig::scaled(cores);
    cfg.seed = seed;
    cfg.tracker = s.kind;
    cfg.dirSizeFactor = s.factor;
    cfg.tinySpill = s.spill;
    cfg.dirSkewed = s.skew || s.kind == TrackerKind::Mgd;
    // A grain wider than the machine is rejected by validate(); clamp
    // so the coarse-grain scheme stays usable at 2-core fuzz configs.
    cfg.sharerGrain = s.grain > cores ? cores : s.grain;
    // Skew-associative slices are modeled as a 4-way ZCache (and MgD
    // always uses that organization) — config.cc enforces the pairing.
    if (cfg.dirSkewed)
        cfg.dirAssoc = 4;
    if (tinyCaches) {
        cfg.l1Bytes = 8 * 2 * blockBytes;
        cfg.l1Assoc = 2;
        cfg.l2Bytes = 16 * 2 * blockBytes;
        cfg.l2Assoc = 2;
    }
    return cfg;
}

} // namespace tinydir
