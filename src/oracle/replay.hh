/**
 * @file
 * Trace replay under the differential oracle: run per-core access
 * streams through a real System with an OracleDiff observer attached,
 * optionally planting a verify/fault_inject.hh corruption mid-run, and
 * report how the run ended. This is the single execution harness the
 * fuzzer, the shrinker and the corpus-replay tests all share, so a
 * minimized trace reproduces under exactly the machinery that found it.
 */

#ifndef TINYDIR_ORACLE_REPLAY_HH
#define TINYDIR_ORACLE_REPLAY_HH

#include <optional>
#include <string>

#include "common/config.hh"
#include "oracle/diff.hh"
#include "oracle/patterns.hh"
#include "verify/fault_inject.hh"

namespace tinydir
{

/** One oracle-checked replay job. */
struct ReplaySpec
{
    SystemConfig cfg;
    TraceStreams streams;

    /**
     * Cross-check the private hierarchies against the model every this
     * many accesses (0 = only at the end). After a fault injects, the
     * cadence drops to every access so detection is as early as
     * possible.
     */
    Counter checkPeriod = 256;

    /**
     * Corruption to plant: after each access, injection is attempted
     * until a block eligible for this fault class exists. Keeping the
     * attempt-every-access rule makes injection stable under trace
     * minimization (the shrinker never has to hit an exact index).
     */
    std::optional<FaultKind> inject;
};

/** How an oracle-checked replay ended. */
enum class ReplayStatus
{
    Clean,      //!< ran to completion, oracle fully satisfied
    Diverged,   //!< the oracle caught a divergence
    EngineHalt, //!< the engine itself panicked (SimError)
};

std::string toString(ReplayStatus s);

/** Outcome of replayWithOracle(). */
struct ReplayResult
{
    ReplayStatus status = ReplayStatus::Clean;
    DivergenceReport report;  //!< populated when status == Diverged
    std::string haltMessage;  //!< populated when status == EngineHalt
    bool injected = false;    //!< a requested fault was actually planted
    Addr faultBlock = invalidAddr;
    std::string faultNote;    //!< injector's description
    Counter accessesRun = 0;

    /** Replay failed (by divergence or halt). */
    bool failed() const { return status != ReplayStatus::Clean; }
};

/** Execute @p spec and return how it ended. */
ReplayResult replayWithOracle(const ReplaySpec &spec);

} // namespace tinydir

#endif // TINYDIR_ORACLE_REPLAY_HH
