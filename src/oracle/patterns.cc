#include "oracle/patterns.hh"

#include <algorithm>

namespace tinydir
{

namespace
{

TraceAccess
acc(AccessType t, Addr addr, Cycle gap)
{
    TraceAccess a;
    a.gap = gap;
    a.type = t;
    a.addr = addr;
    return a;
}

/** Base address keeping patterns apart in the address space. */
constexpr Addr patternBase = 1ull << 22;

} // namespace

TraceStreams
falseSharing(const PatternParams &p)
{
    Rng rng(p.seed);
    TraceStreams out(p.numCores);
    // A handful of hot blocks; each core owns a distinct word in each,
    // mostly writing it — every write ping-pongs the whole block.
    const unsigned hotBlocks = 4;
    for (unsigned c = 0; c < p.numCores; ++c) {
        auto &s = out[c];
        s.reserve(p.accessesPerCore);
        for (Counter i = 0; i < p.accessesPerCore; ++i) {
            const Addr block = patternBase +
                static_cast<Addr>(rng.below(hotBlocks)) * blockBytes;
            const Addr word = block + (c % (blockBytes / 8)) * 8;
            const auto t =
                rng.chance(0.6) ? AccessType::Store : AccessType::Load;
            s.push_back(acc(t, word, rng.below(p.maxGap + 1)));
        }
    }
    return out;
}

TraceStreams
migratory(const PatternParams &p)
{
    Rng rng(p.seed);
    TraceStreams out(p.numCores);
    // Each core performs load-then-store bursts on a small pool of
    // blocks touched by everyone: classic migratory read-modify-write.
    const unsigned pool = 8;
    for (unsigned c = 0; c < p.numCores; ++c) {
        auto &s = out[c];
        s.reserve(p.accessesPerCore);
        Counter i = 0;
        while (i < p.accessesPerCore) {
            const Addr addr = patternBase + (1ull << 16) +
                static_cast<Addr>(rng.below(pool)) * blockBytes;
            s.push_back(acc(AccessType::Load, addr, rng.below(p.maxGap + 1)));
            ++i;
            if (i < p.accessesPerCore) {
                s.push_back(acc(AccessType::Store, addr, 1));
                ++i;
            }
        }
    }
    return out;
}

TraceStreams
producerConsumer(const PatternParams &p)
{
    Rng rng(p.seed);
    TraceStreams out(p.numCores);
    // Core (b mod numCores) produces block b; everyone else consumes.
    const unsigned blocks = 2 * p.numCores;
    for (unsigned c = 0; c < p.numCores; ++c) {
        auto &s = out[c];
        s.reserve(p.accessesPerCore);
        for (Counter i = 0; i < p.accessesPerCore; ++i) {
            const unsigned b = static_cast<unsigned>(rng.below(blocks));
            const Addr addr = patternBase + (1ull << 17) +
                static_cast<Addr>(b) * blockBytes;
            const bool producer = b % p.numCores == c;
            const auto t = producer && rng.chance(0.8) ? AccessType::Store
                                                       : AccessType::Load;
            s.push_back(acc(t, addr, rng.below(p.maxGap + 1)));
        }
    }
    return out;
}

TraceStreams
setConflict(const PatternParams &p)
{
    Rng rng(p.seed);
    TraceStreams out(p.numCores);
    // Many tags folded onto a few low set indices: large strides with
    // identical low bits stress one LLC/directory set, forcing evictions
    // and back-invalidations.
    const unsigned tags = 64;
    const Addr stride = 1ull << 18; // clears any realistic index width
    for (unsigned c = 0; c < p.numCores; ++c) {
        auto &s = out[c];
        s.reserve(p.accessesPerCore);
        for (Counter i = 0; i < p.accessesPerCore; ++i) {
            const Addr addr = patternBase + (1ull << 21) +
                static_cast<Addr>(rng.zipf(tags, 0.8)) * stride;
            const auto t =
                rng.chance(0.3) ? AccessType::Store : AccessType::Load;
            s.push_back(acc(t, addr, rng.below(p.maxGap + 1)));
        }
    }
    return out;
}

TraceStreams
spillPressure(const PatternParams &p)
{
    Rng rng(p.seed);
    TraceStreams out(p.numCores);
    // All cores read over a wide common footprint: far more
    // concurrently-shared blocks than a tiny directory can track, so
    // shared entries get evicted continuously — the case DynSpill
    // exists for (only shared victims may spill). A trickle of stores
    // and a private store range keep exclusive entries in play too.
    const unsigned sharedFootprint = 2048;
    const unsigned privFootprint = 64;
    for (unsigned c = 0; c < p.numCores; ++c) {
        auto &s = out[c];
        s.reserve(p.accessesPerCore);
        const Addr privBase =
            patternBase + (2ull << 21) + static_cast<Addr>(c) * (1ull << 16);
        for (Counter i = 0; i < p.accessesPerCore; ++i) {
            if (rng.chance(0.85)) {
                const Addr addr = patternBase + (4ull << 21) +
                    static_cast<Addr>(rng.zipf(sharedFootprint, 0.4)) *
                        blockBytes;
                const auto t = rng.chance(0.03) ? AccessType::Store
                                                : AccessType::Load;
                s.push_back(acc(t, addr, rng.below(p.maxGap + 1)));
            } else {
                const Addr addr = privBase +
                    static_cast<Addr>(rng.below(privFootprint)) * blockBytes;
                s.push_back(
                    acc(AccessType::Store, addr, rng.below(p.maxGap + 1)));
            }
        }
    }
    return out;
}

TraceStreams
randomMix(const PatternParams &p)
{
    Rng rng(p.seed);
    // Concatenate random slices of each pattern (re-seeded per slice)
    // and sprinkle uniform noise, including some ifetches.
    TraceStreams out(p.numCores);
    const auto &pats = allPatterns();
    Counter produced = 0;
    while (produced < p.accessesPerCore) {
        PatternParams sub = p;
        sub.seed = rng.next();
        sub.accessesPerCore =
            std::min<Counter>(p.accessesPerCore - produced,
                              64 + rng.below(192));
        // allPatterns() ends with randomMix itself; never recurse.
        const auto &np = pats[rng.below(pats.size() - 1)];
        TraceStreams slice = np.fn(sub);
        for (unsigned c = 0; c < p.numCores; ++c)
            out[c].insert(out[c].end(), slice[c].begin(), slice[c].end());
        produced += sub.accessesPerCore;
    }
    // Noise: replace a fraction with uniform accesses / ifetches.
    for (unsigned c = 0; c < p.numCores; ++c) {
        for (auto &a : out[c]) {
            if (rng.chance(0.1)) {
                a.addr = patternBase + (3ull << 21) +
                    rng.below(1024) * blockBytes;
                a.type = rng.chance(0.3) ? AccessType::Ifetch
                       : rng.chance(0.5) ? AccessType::Store
                                         : AccessType::Load;
            }
        }
    }
    return out;
}

const std::vector<NamedPattern> &
allPatterns()
{
    static const std::vector<NamedPattern> pats = {
        {"false_sharing", &falseSharing},
        {"migratory", &migratory},
        {"producer_consumer", &producerConsumer},
        {"set_conflict", &setConflict},
        {"spill_pressure", &spillPressure},
        {"random_mix", &randomMix}, // must stay last (randomMix skips it)
    };
    return pats;
}

} // namespace tinydir
