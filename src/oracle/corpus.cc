#include "oracle/corpus.hh"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <map>
#include <memory>
#include <sstream>

#include "common/log.hh"
#include "workload/trace_file.hh"

namespace tinydir
{

namespace
{

/** AccessStream over an in-memory vector (for TraceFileWriter). */
class VectorStream : public AccessStream
{
  public:
    explicit VectorStream(std::vector<TraceAccess> v) : accs(std::move(v)) {}

    bool
    next(TraceAccess &out) override
    {
        if (pos >= accs.size())
            return false;
        out = accs[pos++];
        return true;
    }

  private:
    std::vector<TraceAccess> accs;
    std::size_t pos = 0;
};

TrackerKind
parseTracker(const std::string &s)
{
    for (auto k : {TrackerKind::SparseDir, TrackerKind::SharedOnlyDir,
                   TrackerKind::InLlcTagExtended, TrackerKind::InLlc,
                   TrackerKind::TinyDir, TrackerKind::Mgd,
                   TrackerKind::Stash}) {
        if (toString(k) == s)
            return k;
    }
    fatal("corpus: unknown tracker '", s, "'");
}

TinyPolicy
parsePolicy(const std::string &s)
{
    for (auto p : {TinyPolicy::Dstra, TinyPolicy::DstraGnru})
        if (toString(p) == s)
            return p;
    fatal("corpus: unknown tinyPolicy '", s, "'");
}

FaultKind
parseFault(const std::string &s)
{
    for (auto k : {FaultKind::FlipSharerBit, FaultKind::DropTrackerEntry,
                   FaultKind::DesyncSpilledEntry, FaultKind::ForgeOwner})
        if (toString(k) == s)
            return k;
    fatal("corpus: unknown fault kind '", s, "'");
}

} // namespace

std::string
toString(CorpusExpect e)
{
    return e == CorpusExpect::Clean ? "clean" : "detected";
}

void
saveCorpusCase(const std::string &basePath, const CorpusCase &c)
{
    const SystemConfig &cfg = c.spec.cfg;

    std::vector<std::unique_ptr<AccessStream>> streams;
    for (const auto &s : c.spec.streams)
        streams.push_back(std::make_unique<VectorStream>(s));
    TraceFileWriter::write(basePath + ".tdtr", std::move(streams));

    std::ofstream meta(basePath + ".meta");
    fatal_if(!meta, "corpus: cannot write ", basePath, ".meta");
    meta << "# tinydir oracle corpus case (see src/oracle/corpus.hh)\n";
    meta << "trace = " <<
        std::filesystem::path(basePath + ".tdtr").filename().string() << "\n";
    meta << "expect = " << toString(c.expect) << "\n";
    if (!c.rule.empty())
        meta << "rule = " << c.rule << "\n";
    meta << "inject = "
         << (c.spec.inject ? toString(*c.spec.inject) : std::string("none"))
         << "\n";
    meta << "checkPeriod = " << c.spec.checkPeriod << "\n";
    meta << "numCores = " << cfg.numCores << "\n";
    meta << "l1Bytes = " << cfg.l1Bytes << "\n";
    meta << "l1Assoc = " << cfg.l1Assoc << "\n";
    meta << "l2Bytes = " << cfg.l2Bytes << "\n";
    meta << "l2Assoc = " << cfg.l2Assoc << "\n";
    meta << "llcAssoc = " << cfg.llcAssoc << "\n";
    meta << "llcBlocksPerN = " << cfg.llcBlocksPerN << "\n";
    meta << "tracker = " << toString(cfg.tracker) << "\n";
    meta << "dirSizeFactor = " << cfg.dirSizeFactor << "\n";
    meta << "dirAssoc = " << cfg.dirAssoc << "\n";
    meta << "dirSkewed = " << (cfg.dirSkewed ? 1 : 0) << "\n";
    meta << "tinyPolicy = " << toString(cfg.tinyPolicy) << "\n";
    meta << "tinySpill = " << (cfg.tinySpill ? 1 : 0) << "\n";
    meta << "sharerGrain = " << cfg.sharerGrain << "\n";
    meta << "mgdRegionBytes = " << cfg.mgdRegionBytes << "\n";
    meta << "seed = " << cfg.seed << "\n";
}

CorpusCase
loadCorpusCase(const std::string &metaPath)
{
    std::ifstream in(metaPath);
    fatal_if(!in, "corpus: cannot read ", metaPath);

    std::map<std::string, std::string> kv;
    std::string line;
    while (std::getline(in, line)) {
        const auto hash = line.find('#');
        if (hash != std::string::npos)
            line.erase(hash);
        const auto eq = line.find('=');
        if (eq == std::string::npos)
            continue;
        auto trim = [](std::string s) {
            const auto b = s.find_first_not_of(" \t\r");
            const auto e = s.find_last_not_of(" \t\r");
            return b == std::string::npos ? std::string()
                                          : s.substr(b, e - b + 1);
        };
        kv[trim(line.substr(0, eq))] = trim(line.substr(eq + 1));
    }

    auto get = [&](const char *key) -> const std::string & {
        auto it = kv.find(key);
        fatal_if(it == kv.end(), "corpus: ", metaPath, " missing key '", key,
                 "'");
        return it->second;
    };
    auto getU = [&](const char *key) {
        return static_cast<unsigned>(std::stoul(get(key)));
    };

    CorpusCase c;
    const std::filesystem::path mp(metaPath);
    c.name = mp.stem().string();

    SystemConfig &cfg = c.spec.cfg;
    cfg.numCores = getU("numCores");
    cfg.l1Bytes = getU("l1Bytes");
    cfg.l1Assoc = getU("l1Assoc");
    cfg.l2Bytes = getU("l2Bytes");
    cfg.l2Assoc = getU("l2Assoc");
    cfg.llcAssoc = getU("llcAssoc");
    cfg.llcBlocksPerN = std::stod(get("llcBlocksPerN"));
    cfg.tracker = parseTracker(get("tracker"));
    cfg.dirSizeFactor = std::stod(get("dirSizeFactor"));
    cfg.dirAssoc = getU("dirAssoc");
    cfg.dirSkewed = getU("dirSkewed") != 0;
    cfg.tinyPolicy = parsePolicy(get("tinyPolicy"));
    cfg.tinySpill = getU("tinySpill") != 0;
    cfg.sharerGrain = getU("sharerGrain");
    cfg.mgdRegionBytes = getU("mgdRegionBytes");
    cfg.seed = std::stoull(get("seed"));

    c.spec.checkPeriod = std::stoull(get("checkPeriod"));
    const std::string &inj = get("inject");
    if (inj != "none")
        c.spec.inject = parseFault(inj);

    const std::string &expect = get("expect");
    if (expect == "clean")
        c.expect = CorpusExpect::Clean;
    else if (expect == "detected")
        c.expect = CorpusExpect::Detected;
    else
        fatal("corpus: bad expect '", expect, "' in ", metaPath);
    if (auto it = kv.find("rule"); it != kv.end())
        c.rule = it->second;

    const std::string tracePath =
        (mp.parent_path() / get("trace")).string();
    const TraceFileInfo info = traceFileInfo(tracePath);
    fatal_if(info.numCores != cfg.numCores, "corpus: ", tracePath, " has ",
             info.numCores, " cores, meta says ", cfg.numCores);
    auto streams = openTraceStreams(tracePath);
    c.spec.streams.resize(info.numCores);
    for (unsigned core = 0; core < info.numCores; ++core) {
        TraceAccess a;
        while (streams[core]->next(a))
            c.spec.streams[core].push_back(a);
    }
    return c;
}

std::vector<std::string>
listCorpusCases(const std::string &dir)
{
    std::vector<std::string> out;
    std::error_code ec;
    for (const auto &e : std::filesystem::directory_iterator(dir, ec)) {
        if (e.is_regular_file() && e.path().extension() == ".meta")
            out.push_back(e.path().string());
    }
    std::sort(out.begin(), out.end());
    return out;
}

} // namespace tinydir
