#include "oracle/diff.hh"

#include <sstream>

#include "core/private_cache.hh"
#include "sim/system.hh"

namespace tinydir
{

std::string
DivergenceReport::describe() const
{
    if (!diverged)
        return "no divergence";
    std::ostringstream os;
    os << "oracle divergence [" << rule << "] after " << accessIndex
       << " accesses: " << detail << "\n";
    if (!context.empty()) {
        os << "recent events (oldest first):\n";
        for (const auto &e : context)
            os << "  " << e << "\n";
    }
    return os.str();
}

void
OracleDiff::latch(const OracleDivergence &d)
{
    if (report_.diverged)
        return;
    report_.diverged = true;
    report_.accessIndex = accesses_;
    report_.rule = d.rule;
    report_.detail = d.detail;
    // Unroll the ring oldest-first.
    const std::size_t n =
        ringCount_ < contextSize ? static_cast<std::size_t>(ringCount_)
                                 : contextSize;
    const std::size_t start = (ringNext_ + contextSize - n) % contextSize;
    for (std::size_t i = 0; i < n; ++i)
        report_.context.push_back(ring_[(start + i) % contextSize]);
}

void
OracleDiff::remember(std::string event)
{
    ring_[ringNext_] = std::move(event);
    ringNext_ = (ringNext_ + 1) % contextSize;
    ++ringCount_;
}

void
OracleDiff::onAccess(const AccessObservation &o)
{
    if (report_.diverged)
        return;
    std::ostringstream os;
    os << "access #" << accesses_ << ": core " << o.core << " "
       << toString(o.type) << " 0x" << std::hex << o.block << std::dec;
    if (o.requested)
        os << " " << toString(o.req) << "->" << toString(o.grant);
    else
        os << " hit " << toString(o.privState);
    remember(os.str());

    if (auto d = model_.onAccess(o))
        latch(*d);
    ++accesses_;
}

void
OracleDiff::onNotice(CoreId core, Addr block, MesiState put)
{
    if (report_.diverged)
        return;
    std::ostringstream os;
    os << "notice: core " << core << " Put" << toString(put) << " 0x"
       << std::hex << block << std::dec;
    remember(os.str());

    if (auto d = model_.onNotice(core, block, put))
        latch(*d);
}

void
OracleDiff::onBackInval(Addr block, const TrackState &ts)
{
    if (report_.diverged)
        return;
    std::ostringstream os;
    os << "back-inval: 0x" << std::hex << block << std::dec << " "
       << (ts.exclusive() ? "exclusive" : ts.shared() ? "shared" : "invalid");
    remember(os.str());

    model_.onBackInval(block, ts);
}

void
OracleDiff::onLlcFill(Addr block)
{
    if (report_.diverged)
        return;
    std::ostringstream os;
    os << "llc-fill: 0x" << std::hex << block << std::dec;
    remember(os.str());

    if (auto d = model_.onLlcFill(block))
        latch(*d);
}

void
OracleDiff::onLlcEvict(Addr block)
{
    if (report_.diverged)
        return;
    std::ostringstream os;
    os << "llc-evict: 0x" << std::hex << block << std::dec;
    remember(os.str());

    if (auto d = model_.onLlcEvict(block))
        latch(*d);
}

bool
OracleDiff::crossCheck(const System &sys)
{
    if (report_.diverged)
        return false;

    // Direction 1: every block cached in a real private hierarchy must
    // be held in the same state by the model.
    for (CoreId c = 0; c < static_cast<CoreId>(sys.privs.size()); ++c) {
        std::optional<OracleDivergence> found;
        sys.privs[c].forEachBlock([&](Addr b, MesiState st) {
            if (found)
                return;
            const MesiState want = model_.holderState(c, b);
            if (st != want) {
                std::ostringstream os;
                os << "core " << c << " caches 0x" << std::hex << b
                   << std::dec << " in " << toString(st) << ", model says "
                   << toString(want);
                found = OracleDivergence{"crosscheck.priv", os.str()};
            }
        });
        if (found) {
            latch(*found);
            return false;
        }
    }

    // Direction 2: every model holder must exist in the real hierarchy.
    std::optional<OracleDivergence> found;
    model_.forEachHolder([&](Addr b, CoreId c, MesiState st) {
        if (found)
            return;
        const MesiState real = sys.privs[c].state(b);
        if (real != st) {
            std::ostringstream os;
            os << "model holds 0x" << std::hex << b << std::dec << " at core "
               << c << " in " << toString(st) << ", hierarchy says "
               << toString(real);
            found = OracleDivergence{"crosscheck.model", os.str()};
        }
    });
    if (found) {
        latch(*found);
        return false;
    }

    if (auto d = model_.selfCheck()) {
        latch(*d);
        return false;
    }
    return true;
}

void
OracleDiff::primeFromSystem(const System &sys)
{
    for (CoreId c = 0; c < static_cast<CoreId>(sys.privs.size()); ++c) {
        sys.privs[c].forEachBlock([&](Addr b, MesiState st) {
            model_.primeHolder(b, c, st);
        });
    }
    // Model residency means "the block owns an LLC way that findData
    // would return" — Normal or Corrupt, not Spill (PreEntry::None is
    // what the engine reports for spill-only ways).
    sys.llc.forEachEntry([&](const LlcEntry &e) {
        if (e.isData())
            model_.primeResident(e.tag, true);
    });
}

bool
OracleDiff::checkTotals(const StatsDump &d)
{
    if (report_.diverged)
        return false;

    const OracleTotals &t = model_.totals();
    auto match = [&](const char *key, Counter want) -> bool {
        const Counter got = static_cast<Counter>(d.get(key));
        if (got == want)
            return true;
        std::ostringstream os;
        os << key << ": system reports " << got << ", model computed "
           << want;
        latch({"totals", os.str()});
        return false;
    };

    if (!match("core.loads", t.loads) || !match("core.stores", t.stores) ||
        !match("core.ifetches", t.ifetches) ||
        !match("core.priv_hits", t.privHits) ||
        !match("core.misses", t.misses) ||
        !match("core.upgrades", t.upgrades) ||
        !match("wb.notices", t.notices)) {
        return false;
    }

    // MgD region entries make the home forward through a phantom owner
    // for blocks nobody holds exclusively, so the real count is only
    // bounded below by the model's.
    const Counter fwd = static_cast<Counter>(d.get("fwd.owner"));
    if (model_.coarseOwner() ? fwd < t.mustForward : fwd != t.mustForward) {
        std::ostringstream os;
        os << "fwd.owner: system reports " << fwd << ", model computed "
           << t.mustForward << (model_.coarseOwner() ? " (lower bound)" : "");
        latch({"totals", os.str()});
        return false;
    }
    return true;
}

} // namespace tinydir
