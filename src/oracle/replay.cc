#include "oracle/replay.hh"

#include "common/sim_error.hh"
#include "sim/system.hh"

namespace tinydir
{

std::string
toString(ReplayStatus s)
{
    switch (s) {
      case ReplayStatus::Clean: return "clean";
      case ReplayStatus::Diverged: return "diverged";
      case ReplayStatus::EngineHalt: return "engine-halt";
    }
    return "?";
}

ReplayResult
replayWithOracle(const ReplaySpec &spec)
{
    ReplayResult res;

    System sys(spec.cfg);
    OracleDiff diff(spec.cfg);
    sys.setObserver(&diff);

    const unsigned n = static_cast<unsigned>(spec.streams.size());
    std::vector<std::size_t> idx(n, 0);

    // A freshly planted fault is only guaranteed observable while the
    // state it corrupted still exists (a dropped sharer can later
    // evict its copy, silently healing the corruption). So the moment
    // injection succeeds, probe the faulted block from every core —
    // loads then stores, cross-checking after each — which forces any
    // corruption of its tracking state to surface as a divergence or
    // an engine panic.
    auto probeFault = [&](Addr block) {
        const Addr probeAddr = block << blockShift;
        for (const AccessType t : {AccessType::Load, AccessType::Store}) {
            for (CoreId c = 0; c < static_cast<CoreId>(n); ++c) {
                TraceAccess a;
                a.gap = 1;
                a.type = t;
                a.addr = probeAddr;
                const Cycle issue = sys.cores[c].clock + a.gap;
                sys.cores[c].clock = sys.executeAccess(c, a, issue);
                ++res.accessesRun;
                if (diff.diverged() || !diff.crossCheck(sys))
                    return true;
            }
        }
        return false;
    };

    Counter sinceCheck = 0;
    try {
        while (true) {
            // Next access: smallest issue time, ties to the lower core
            // (same rule as sim/driver.hh, so runs are reproducible).
            CoreId pick = invalidCore;
            Cycle best = 0;
            for (CoreId c = 0; c < static_cast<CoreId>(n); ++c) {
                if (idx[c] >= spec.streams[c].size())
                    continue;
                const Cycle issue =
                    sys.cores[c].clock + spec.streams[c][idx[c]].gap;
                if (pick == invalidCore || issue < best) {
                    pick = c;
                    best = issue;
                }
            }
            if (pick == invalidCore)
                break;

            const TraceAccess &a = spec.streams[pick][idx[pick]++];
            sys.cores[pick].clock = sys.executeAccess(pick, a, best);
            ++res.accessesRun;

            if (spec.inject && !res.injected) {
                const FaultReport r = injectFault(sys, *spec.inject);
                if (r.injected) {
                    res.injected = true;
                    res.faultBlock = r.block;
                    res.faultNote = r.description;
                    if (probeFault(r.block)) {
                        res.status = ReplayStatus::Diverged;
                        res.report = diff.report();
                        return res;
                    }
                }
            }

            if (diff.diverged()) {
                res.status = ReplayStatus::Diverged;
                res.report = diff.report();
                return res;
            }

            ++sinceCheck;
            const bool due = res.injected ||
                (spec.checkPeriod > 0 && sinceCheck >= spec.checkPeriod);
            if (due) {
                sinceCheck = 0;
                if (!diff.crossCheck(sys)) {
                    res.status = ReplayStatus::Diverged;
                    res.report = diff.report();
                    return res;
                }
            }
        }

        // End of trace: final cross-check, then (warmup-free replay)
        // the cumulative counters.
        if (!diff.crossCheck(sys) || !diff.checkTotals(sys.dump())) {
            res.status = ReplayStatus::Diverged;
            res.report = diff.report();
            return res;
        }
    } catch (const SimError &e) {
        res.status = ReplayStatus::EngineHalt;
        res.haltMessage = e.what();
        return res;
    }

    res.status = ReplayStatus::Clean;
    return res;
}

} // namespace tinydir
