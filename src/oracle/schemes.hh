/**
 * @file
 * The scheme/configuration matrix the differential-testing harness
 * sweeps: every tracker kind at representative sizes (tiny 1/32x to
 * 1/256x), spill on/off, skewed on/off, and a coarse sharer grain —
 * shared by the fuzzer (tools/fuzz_traces.cc), the randomized property
 * tests and the corpus generator so they all speak the same labels.
 */

#ifndef TINYDIR_ORACLE_SCHEMES_HH
#define TINYDIR_ORACLE_SCHEMES_HH

#include <vector>

#include "common/config.hh"

namespace tinydir
{

/** One fuzzable tracking configuration. */
struct FuzzScheme
{
    const char *label;
    TrackerKind kind;
    double factor;      //!< dirSizeFactor
    bool spill = false;
    bool skew = false;
    unsigned grain = 1; //!< sharerGrain
};

/** The whole matrix (labels are unique). */
const std::vector<FuzzScheme> &fuzzSchemes();

/** Find a scheme by label; nullptr when unknown. */
const FuzzScheme *findFuzzScheme(const std::string &label);

/**
 * Materialize @p s for @p cores cores. @p tinyCaches shrinks the
 * private hierarchy to a few dozen blocks so eviction notices and
 * directory pressure appear within short fuzz traces.
 */
SystemConfig makeFuzzConfig(const FuzzScheme &s, unsigned cores,
                            std::uint64_t seed, bool tinyCaches = true);

} // namespace tinydir

#endif // TINYDIR_ORACLE_SCHEMES_HH
