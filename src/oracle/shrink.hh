/**
 * @file
 * Failing-trace minimization by delta debugging.
 *
 * The shrinker flattens per-core streams into one (core, access) list
 * that preserves each core's program order, then runs classic ddmin
 * (Zeller & Hildebrandt): try removing chunks of decreasing size,
 * keeping any removal under which the caller's predicate still fails,
 * until removing any single access makes the failure disappear. The
 * result is a 1-minimal trace — usually a handful of accesses that
 * tell the whole story of the bug.
 *
 * The predicate is opaque (typically "replayWithOracle() still
 * reports the same divergence rule"), so the same shrinker serves
 * fuzzer counterexamples and injected-fault repros alike.
 */

#ifndef TINYDIR_ORACLE_SHRINK_HH
#define TINYDIR_ORACLE_SHRINK_HH

#include <functional>
#include <utility>
#include <vector>

#include "core/trace.hh"
#include "oracle/patterns.hh"

namespace tinydir
{

/** Interleaved trace: per-core order is preserved, cores round-robin. */
using FlatTrace = std::vector<std::pair<CoreId, TraceAccess>>;

/** Flatten per-core streams round-robin (stable per-core order). */
FlatTrace flattenStreams(const TraceStreams &streams);

/** Rebuild per-core streams (always @p numCores entries). */
TraceStreams unflattenTrace(const FlatTrace &flat, unsigned numCores);

/** Minimization outcome. */
struct ShrinkResult
{
    TraceStreams streams;     //!< smallest failing trace found
    Counter originalAccesses = 0;
    Counter finalAccesses = 0;
    Counter predicateRuns = 0;
    bool exhausted = false;   //!< stopped because maxRuns was hit
};

/**
 * Minimize @p streams with ddmin.
 * @param failsOn must return true when the candidate trace still
 *        exhibits the failure being chased. It is assumed to hold for
 *        @p streams itself (callers check before shrinking).
 * @param maxRuns hard cap on predicate evaluations (each one replays
 *        a whole system); the best trace so far is returned when hit.
 */
ShrinkResult
shrinkTrace(const TraceStreams &streams, unsigned numCores,
            const std::function<bool(const TraceStreams &)> &failsOn,
            Counter maxRuns = 2000);

} // namespace tinydir

#endif // TINYDIR_ORACLE_SHRINK_HH
