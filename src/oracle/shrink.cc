#include "oracle/shrink.hh"

#include <algorithm>

namespace tinydir
{

FlatTrace
flattenStreams(const TraceStreams &streams)
{
    FlatTrace flat;
    std::size_t total = 0;
    for (const auto &s : streams)
        total += s.size();
    flat.reserve(total);

    std::vector<std::size_t> idx(streams.size(), 0);
    bool progressed = true;
    while (progressed) {
        progressed = false;
        for (CoreId c = 0; c < static_cast<CoreId>(streams.size()); ++c) {
            if (idx[c] < streams[c].size()) {
                flat.emplace_back(c, streams[c][idx[c]++]);
                progressed = true;
            }
        }
    }
    return flat;
}

TraceStreams
unflattenTrace(const FlatTrace &flat, unsigned numCores)
{
    TraceStreams streams(numCores);
    for (const auto &[c, a] : flat)
        streams[c].push_back(a);
    return streams;
}

ShrinkResult
shrinkTrace(const TraceStreams &streams, unsigned numCores,
            const std::function<bool(const TraceStreams &)> &failsOn,
            Counter maxRuns)
{
    FlatTrace current = flattenStreams(streams);

    ShrinkResult res;
    res.originalAccesses = current.size();

    auto stillFails = [&](const FlatTrace &cand) {
        ++res.predicateRuns;
        return failsOn(unflattenTrace(cand, numCores));
    };

    // Classic ddmin: partition into n chunks; try each chunk's
    // complement (drop one chunk). On success restart with the smaller
    // trace; otherwise refine the partition. Done when chunks are
    // single accesses and none can be dropped.
    std::size_t chunks = 2;
    while (current.size() >= 2 && chunks <= current.size()) {
        if (res.predicateRuns >= maxRuns) {
            res.exhausted = true;
            break;
        }

        const std::size_t len = current.size();
        const std::size_t chunkLen = (len + chunks - 1) / chunks;
        bool reduced = false;

        for (std::size_t start = 0; start < len; start += chunkLen) {
            if (res.predicateRuns >= maxRuns) {
                res.exhausted = true;
                break;
            }
            const std::size_t end = std::min(start + chunkLen, len);

            FlatTrace cand;
            cand.reserve(len - (end - start));
            cand.insert(cand.end(), current.begin(),
                        current.begin() + static_cast<std::ptrdiff_t>(start));
            cand.insert(cand.end(),
                        current.begin() + static_cast<std::ptrdiff_t>(end),
                        current.end());

            if (!cand.empty() && stillFails(cand)) {
                current = std::move(cand);
                chunks = std::max<std::size_t>(2, chunks - 1);
                reduced = true;
                break;
            }
        }

        if (res.exhausted)
            break;
        if (!reduced) {
            if (chunks >= current.size())
                break; // 1-minimal
            chunks = std::min(current.size(), chunks * 2);
        }
    }

    res.finalAccesses = current.size();
    res.streams = unflattenTrace(current, numCores);
    return res;
}

} // namespace tinydir
