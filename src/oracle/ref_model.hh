/**
 * @file
 * Scheme-independent reference model for differential testing.
 *
 * RefModel consumes the per-access event stream of proto/observe.hh
 * and maintains its own copy of the protocol-mandated ground truth:
 * the MESI state of every block in every core's private hierarchy and
 * the set of blocks with a live LLC data way. It is deliberately
 * simple — std::map of std::map, no banks, no sets, no replacement —
 * so it shares no data structure or optimization with the engine and
 * trackers it cross-checks (the whole point after the PR 3 hot-path
 * rewrite).
 *
 * What is checked versus what is merely mirrored:
 *
 *  - Checked (protocol-mandated, scheme-independent): private-cache
 *    hit/miss against the model's holder states; which request type a
 *    miss/upgrade must issue; legality of the granted MESI state
 *    (SWMR); eviction notices carrying the holder's true state; LLC
 *    residency consistency (an access must see a data way exactly when
 *    the model believes one is live); single-writer in the model's own
 *    state (selfCheck); cumulative access/miss/upgrade/notice totals.
 *
 *  - Mirrored as nondeterministic inputs (timing/policy-dependent,
 *    so no "expected" value exists): which blocks get capacity-evicted
 *    (eviction notices), which blocks the schemes back-invalidate, and
 *    which LLC ways are filled or evicted. The model applies them and
 *    checks their *consequences* instead.
 *
 * Strictness is derived from the configuration: with sharerGrain > 1
 * the sparse directory tracks a conservative superset of sharers, so
 * a read of an unheld block may legally be granted S instead of E;
 * MgD's region-grain entries produce phantom owner forwards, so the
 * forward count is only a lower bound there.
 */

#ifndef TINYDIR_ORACLE_REF_MODEL_HH
#define TINYDIR_ORACLE_REF_MODEL_HH

#include <map>
#include <optional>
#include <string>

#include "common/config.hh"
#include "common/types.hh"
#include "proto/mesi.hh"
#include "proto/observe.hh"

namespace tinydir
{

/** One rule violation found by the reference model. */
struct OracleDivergence
{
    std::string rule;   //!< short dotted identifier, e.g. "grant.read"
    std::string detail; //!< human-readable context
};

/** Cumulative scheme-independent totals (valid for warmup-free runs). */
struct OracleTotals
{
    Counter accesses = 0;
    Counter loads = 0;
    Counter stores = 0;
    Counter ifetches = 0;
    Counter privHits = 0;
    Counter misses = 0;
    Counter upgrades = 0;
    Counter notices = 0;
    /** Requests that had to forward from an exclusive owner. */
    Counter mustForward = 0;
};

/** The map-based reference simulator. */
class RefModel
{
  public:
    explicit RefModel(const SystemConfig &cfg);

    // -- event intake (mirrors AccessObserver, returning violations) ----
    std::optional<OracleDivergence> onAccess(const AccessObservation &o);
    std::optional<OracleDivergence> onNotice(CoreId core, Addr block,
                                             MesiState put);
    void onBackInval(Addr block, const TrackState &ts);
    std::optional<OracleDivergence> onLlcFill(Addr block);
    std::optional<OracleDivergence> onLlcEvict(Addr block);

    /** SWMR over the model's own holder map. */
    std::optional<OracleDivergence> selfCheck() const;

    /** Model's MESI state of @p block at @p core (I when absent). */
    MesiState holderState(CoreId core, Addr block) const;

    // -- priming (attach to a restored warm system) ---------------------
    /**
     * Install a holder state directly, bypassing the event stream.
     * Used to seed the model from a checkpoint-restored System so the
     * oracle can attach mid-run; totals are unaffected (checkTotals
     * is not meaningful on a primed model).
     */
    void primeHolder(Addr block, CoreId core, MesiState st);

    /** Install LLC residency directly (see primeHolder). */
    void primeResident(Addr block, bool resident);

    /** Whether the model believes @p block has a live LLC data way. */
    bool llcResident(Addr block) const;

    /** Visit every (block, core, state) holder triple. */
    template <typename F>
    void
    forEachHolder(F &&f) const
    {
        for (const auto &[block, line] : lines)
            for (const auto &[core, st] : line.holders)
                f(block, core, st);
    }

    const OracleTotals &totals() const { return tot; }

    /** Reads of unheld blocks may be granted S (coarse sharer grain). */
    bool relaxedGrant() const { return relaxGrant; }
    /** Owner-forward totals are a lower bound only (MgD phantoms). */
    bool coarseOwner() const { return coarse; }

  private:
    struct Line
    {
        std::map<CoreId, MesiState> holders; //!< non-I states only
        bool resident = false;               //!< live LLC data way
    };

    Line &lineOf(Addr block) { return lines[block]; }

    std::map<Addr, Line> lines;

    /**
     * LLC residency before the first fill/evict of the in-flight
     * access touched each block: the engine captures its PreEntry
     * snapshot at lookup time, before its own fills/evictions, so the
     * comparison must also use pre-access residency. Cleared by each
     * onAccess.
     */
    std::map<Addr, bool> journal;

    OracleTotals tot;
    unsigned numCores;
    bool relaxGrant;
    bool coarse;
};

} // namespace tinydir

#endif // TINYDIR_ORACLE_REF_MODEL_HH
