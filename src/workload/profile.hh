/**
 * @file
 * Synthetic workload profiles standing in for the paper's Table II
 * applications.
 *
 * The real binaries/traces (PARSEC, SPLASH-2, SPEC OMP, SPEC JBB,
 * SPECWeb, TPC, SPECjvm) are not available here; each profile fixes
 * the sharing-pattern statistics those applications exhibit in the
 * paper's own characterization (Fig. 2 sharer histogram, Fig. 6/7
 * lengthened-access populations, Section V-A LLC miss rates). The
 * coherence-tracking schemes under study are sensitive to exactly
 * these statistics, not to program semantics (DESIGN.md Section 2).
 */

#ifndef TINYDIR_WORKLOAD_PROFILE_HH
#define TINYDIR_WORKLOAD_PROFILE_HH

#include <array>
#include <string>
#include <vector>

#include "common/types.hh"

namespace tinydir
{

/** Parameter set of one synthetic application. */
struct WorkloadProfile
{
    std::string name;

    // -- access mix ------------------------------------------------------
    double ifetchFrac = 0.05;    //!< instruction-read fraction
    double sharedFrac = 0.15;    //!< shared-data fraction of data refs
    double migratoryFrac = 0.0;  //!< migratory fraction of shared refs
    double streamFrac = 0.0;     //!< no-reuse streaming fraction of refs
    double writeFracPriv = 0.3;  //!< store fraction of private refs
    double writeFracShared = 0.1;//!< store fraction of shared refs

    // -- footprints (cache blocks) ----------------------------------------
    std::uint64_t privBlocksPerCore = 4096;
    std::uint64_t sharedBlocksPerCore = 512; //!< scales with core count
    std::uint64_t codeBlocks = 512;          //!< globally shared code
    std::uint64_t migBlocksPerCore = 0;

    // -- locality skew ------------------------------------------------------
    double zipfPriv = 1.2;
    double zipfShared = 0.6;
    double zipfCode = 0.9;
    /**
     * Private references split into a small hot set (stack, loop
     * state — reused throughout) and phased scratch data (buffers
     * worked on for a while, then abandoned). Directory evictions of
     * scratch entries are therefore mostly harmless — the property
     * that keeps real sparse directories usable at 1/4x (Fig. 1) and
     * that a static reuse distribution cannot produce.
     */
    double privHotFrac = 0.65;
    std::uint64_t privHotBlocks = 192;
    /**
     * Popularity skew across a core's sharing groups. This produces
     * the paper's Fig. 8/9 concentration: a small set of hot shared
     * blocks (categories C6/C7) receives most shared reads, which is
     * precisely the subset a tiny directory can capture.
     */
    double zipfGroup = 1.1;

    /**
     * Fraction of sharing groups that are read-only (lookup tables,
     * code-like read-mostly data). Their blocks accumulate STRA
     * ratios in the top categories; writable groups cycle through
     * exclusive episodes and stay in the low categories.
     */
    double readOnlyShared = 0.5;

    /**
     * Temporal phasing of shared data. Real parallel programs work on
     * a rotating subset of the shared footprint; the tiny directory's
     * job is to track exactly this instantaneous working set. A
     * fraction of shared references target a sliding window of
     * "active" groups that all affinity cores visit simultaneously;
     * the rest use the static popularity distribution (producing the
     * C1..C3 background population of Fig. 8).
     */
    double sharedWindowFrac = 0.9;
    /** Active window size as a divisor of the group count. */
    unsigned windowDivisor = 32;
    /**
     * Code-window divisor. Commercial instruction working sets far
     * exceed the L1I, so the active code window must too: the
     * resulting steady ifetch traffic at the LLC is what makes code
     * the dominant lengthened-access class in the paper's Fig. 6.
     */
    unsigned codeWindowDivisor = 8;
    /** Accesses per core between window shifts. */
    unsigned windowPhaseLen = 4096;

    /**
     * Sharer-degree mix of the shared region: weight of block groups
     * whose affinity set sizes fall in the Fig. 2 bins
     * [2,4], [5,8], [9,16], [17,C].
     */
    std::array<double, 4> degreeMix{0.6, 0.2, 0.15, 0.05};

    // -- timing --------------------------------------------------------------
    unsigned meanGap = 6; //!< mean compute cycles between accesses

    /** Migratory phase length (accesses per ownership epoch). */
    unsigned migPhaseLen = 512;
};

/** The seventeen Table II applications. */
const std::vector<WorkloadProfile> &allProfiles();

/** Look up a profile by name; fatal() if unknown. */
const WorkloadProfile &profileByName(const std::string &name);

} // namespace tinydir

#endif // TINYDIR_WORKLOAD_PROFILE_HH
