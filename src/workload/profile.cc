#include "workload/profile.hh"

#include "common/log.hh"

namespace tinydir
{

namespace
{

std::vector<WorkloadProfile>
buildProfiles()
{
    std::vector<WorkloadProfile> v;

    // PARSEC ---------------------------------------------------------------
    {
        WorkloadProfile p;
        p.name = "bodytrack";
        p.ifetchFrac = 0.05;
        p.sharedFrac = 0.28;
        p.streamFrac = 0.004;
        p.privBlocksPerCore = 2560;
        p.sharedBlocksPerCore = 512;
        p.codeBlocks = 1024;
        p.degreeMix = {0.55, 0.25, 0.15, 0.05};
        p.writeFracShared = 0.12;
        p.zipfGroup = 1.3;
        v.push_back(p);
    }
    {
        WorkloadProfile p;
        p.name = "swaptions";
        p.ifetchFrac = 0.04;
        p.sharedFrac = 0.22;
        p.streamFrac = 0.002;
        p.privBlocksPerCore = 2048;
        p.sharedBlocksPerCore = 384;
        p.codeBlocks = 512;
        p.degreeMix = {0.7, 0.2, 0.08, 0.02};
        p.zipfGroup = 1.3;
        v.push_back(p);
    }

    // SPLASH-2 ---------------------------------------------------------------
    {
        // Barnes: 78% of allocated LLC blocks suffer lengthened
        // accesses under in-LLC tracking (Fig. 7) — a small, heavily
        // shared tree touched by many cores.
        WorkloadProfile p;
        p.name = "barnes";
        p.ifetchFrac = 0.03;
        p.sharedFrac = 0.70;
        p.streamFrac = 0.0;
        p.privBlocksPerCore = 768;
        p.sharedBlocksPerCore = 896;
        p.codeBlocks = 384;
        p.degreeMix = {0.40, 0.30, 0.20, 0.10};
        p.zipfShared = 0.35;
        p.zipfGroup = 1.5;
        p.readOnlyShared = 0.65;
        p.writeFracShared = 0.08;
        v.push_back(p);
    }
    {
        // Ocean: 35% LLC miss rate; mostly nearest-neighbour (2-way)
        // sharing at subgrid boundaries; benefits from smaller
        // directories in the paper (Fig. 1 outlier).
        WorkloadProfile p;
        p.name = "ocean_cp";
        p.ifetchFrac = 0.02;
        p.sharedFrac = 0.20;
        p.streamFrac = 0.036;
        p.privBlocksPerCore = 2560;
        p.sharedBlocksPerCore = 512;
        p.codeBlocks = 256;
        p.degreeMix = {0.92, 0.06, 0.015, 0.005};
        p.writeFracShared = 0.30;
        p.zipfShared = 0.2;
        v.push_back(p);
    }

    // SPEC OMP ---------------------------------------------------------------
    {
        // 314.mgrid: streaming stencil, 78% LLC miss rate.
        WorkloadProfile p;
        p.name = "314.mgrid";
        p.ifetchFrac = 0.02;
        p.sharedFrac = 0.06;
        p.streamFrac = 0.095;
        p.privBlocksPerCore = 2048;
        p.sharedBlocksPerCore = 192;
        p.codeBlocks = 192;
        p.degreeMix = {0.85, 0.10, 0.04, 0.01};
        v.push_back(p);
    }
    {
        WorkloadProfile p;
        p.name = "316.applu";
        p.ifetchFrac = 0.03;
        p.sharedFrac = 0.26;
        p.streamFrac = 0.005;
        p.migratoryFrac = 0.15;
        p.migBlocksPerCore = 32;
        p.privBlocksPerCore = 2560;
        p.sharedBlocksPerCore = 512;
        p.codeBlocks = 256;
        p.degreeMix = {0.75, 0.15, 0.08, 0.02};
        v.push_back(p);
    }
    {
        WorkloadProfile p;
        p.name = "324.apsi";
        p.ifetchFrac = 0.03;
        p.sharedFrac = 0.10;
        p.streamFrac = 0.005;
        p.privBlocksPerCore = 2048;
        p.sharedBlocksPerCore = 256;
        p.codeBlocks = 256;
        p.degreeMix = {0.8, 0.12, 0.06, 0.02};
        v.push_back(p);
    }
    {
        // 330.art: 63% LLC miss rate.
        WorkloadProfile p;
        p.name = "330.art";
        p.ifetchFrac = 0.02;
        p.sharedFrac = 0.10;
        p.streamFrac = 0.062;
        p.privBlocksPerCore = 2048;
        p.sharedBlocksPerCore = 256;
        p.codeBlocks = 192;
        p.degreeMix = {0.7, 0.2, 0.08, 0.02};
        v.push_back(p);
    }

    // Commercial (PIN-trace applications in the paper) -----------------------
    {
        WorkloadProfile p;
        p.name = "SPEC_JBB";
        p.ifetchFrac = 0.15;
        p.sharedFrac = 0.32;
        p.streamFrac = 0.004;
        p.privBlocksPerCore = 2560;
        p.sharedBlocksPerCore = 768;
        p.codeBlocks = 3072;
        p.degreeMix = {0.35, 0.25, 0.25, 0.15};
        p.writeFracShared = 0.10;
        p.zipfGroup = 1.3;
        p.zipfShared = 0.8;
        p.zipfCode = 1.1;
        v.push_back(p);
    }
    {
        WorkloadProfile p;
        p.name = "SPEC_Web-B";
        p.ifetchFrac = 0.20;
        p.sharedFrac = 0.45;
        p.streamFrac = 0.032;
        p.privBlocksPerCore = 2560;
        p.sharedBlocksPerCore = 1024;
        p.codeBlocks = 4096;
        p.degreeMix = {0.30, 0.25, 0.25, 0.20};
        p.zipfGroup = 1.3;
        p.zipfShared = 0.8;
        p.zipfCode = 1.1;
        v.push_back(p);
    }
    {
        WorkloadProfile p;
        p.name = "SPEC_Web-E";
        p.ifetchFrac = 0.20;
        p.sharedFrac = 0.44;
        p.streamFrac = 0.05;
        p.privBlocksPerCore = 2560;
        p.sharedBlocksPerCore = 1024;
        p.codeBlocks = 4096;
        p.degreeMix = {0.30, 0.25, 0.25, 0.20};
        p.zipfGroup = 1.3;
        p.zipfShared = 0.8;
        p.zipfCode = 1.1;
        v.push_back(p);
    }
    {
        WorkloadProfile p;
        p.name = "SPEC_Web-S";
        p.ifetchFrac = 0.20;
        p.sharedFrac = 0.42;
        p.streamFrac = 0.047;
        p.privBlocksPerCore = 2560;
        p.sharedBlocksPerCore = 896;
        p.codeBlocks = 4096;
        p.degreeMix = {0.32, 0.26, 0.24, 0.18};
        p.zipfGroup = 1.3;
        p.zipfShared = 0.8;
        p.zipfCode = 1.1;
        v.push_back(p);
    }
    {
        WorkloadProfile p;
        p.name = "TPC-C";
        p.ifetchFrac = 0.18;
        p.sharedFrac = 0.50;
        p.streamFrac = 0.004;
        p.privBlocksPerCore = 2560;
        p.sharedBlocksPerCore = 1024;
        p.codeBlocks = 4096;
        p.degreeMix = {0.30, 0.25, 0.25, 0.20};
        p.writeFracShared = 0.05;
        p.zipfGroup = 1.3;
        p.zipfShared = 0.8;
        p.zipfCode = 1.1;
        p.readOnlyShared = 0.6;
        v.push_back(p);
    }
    {
        WorkloadProfile p;
        p.name = "TPC-E";
        p.ifetchFrac = 0.18;
        p.sharedFrac = 0.48;
        p.streamFrac = 0.004;
        p.privBlocksPerCore = 2560;
        p.sharedBlocksPerCore = 1024;
        p.codeBlocks = 4096;
        p.degreeMix = {0.32, 0.26, 0.24, 0.18};
        p.writeFracShared = 0.08;
        p.zipfGroup = 1.3;
        p.zipfShared = 0.8;
        p.zipfCode = 1.1;
        v.push_back(p);
    }
    {
        WorkloadProfile p;
        p.name = "TPC-H";
        p.ifetchFrac = 0.12;
        p.sharedFrac = 0.45;
        p.streamFrac = 0.005;
        p.privBlocksPerCore = 2560;
        p.sharedBlocksPerCore = 1024;
        p.codeBlocks = 3072;
        p.degreeMix = {0.28, 0.26, 0.26, 0.20};
        p.writeFracShared = 0.02;
        p.zipfGroup = 1.3;
        p.zipfShared = 0.8;
        p.zipfCode = 1.1;
        v.push_back(p);
    }

    // SPECjvm -----------------------------------------------------------------
    {
        WorkloadProfile p;
        p.name = "sunflow";
        p.ifetchFrac = 0.10;
        p.sharedFrac = 0.25;
        p.streamFrac = 0.003;
        p.privBlocksPerCore = 2560;
        p.sharedBlocksPerCore = 512;
        p.codeBlocks = 2048;
        p.degreeMix = {0.55, 0.25, 0.15, 0.05};
        p.zipfGroup = 1.3;
        p.zipfCode = 1.1;
        v.push_back(p);
    }
    {
        WorkloadProfile p;
        p.name = "compress";
        p.ifetchFrac = 0.08;
        p.sharedFrac = 0.06;
        p.streamFrac = 0.0025;
        p.privBlocksPerCore = 2048;
        p.sharedBlocksPerCore = 128;
        p.codeBlocks = 1024;
        p.degreeMix = {0.7, 0.2, 0.08, 0.02};
        v.push_back(p);
    }
    return v;
}

} // namespace

const std::vector<WorkloadProfile> &
allProfiles()
{
    static const std::vector<WorkloadProfile> profiles = buildProfiles();
    return profiles;
}

const WorkloadProfile &
profileByName(const std::string &name)
{
    for (const auto &p : allProfiles()) {
        if (p.name == name)
            return p;
    }
    fatal("unknown workload profile: ", name);
}

} // namespace tinydir
