#include "workload/generator.hh"

#include <cmath>
#include <map>
#include <mutex>
#include <tuple>

#include "common/bitops.hh"
#include "common/log.hh"
#include "ckpt/io.hh"

namespace tinydir
{

namespace
{

// Disjoint block-number regions (48-bit physical space, block numbers
// up to 2^42).
constexpr Addr codeRegion = 1ull << 20;
constexpr Addr sharedRegion = 1ull << 24;
constexpr Addr migRegion = 1ull << 28;
constexpr Addr privRegion = 1ull << 30;
constexpr Addr streamRegion = 1ull << 36;

/** Representative degree for each Fig. 2 sharer bin. */
unsigned
binDegree(unsigned bin, unsigned num_cores, Rng &rng)
{
    unsigned lo, hi;
    switch (bin) {
      case 0: lo = 2; hi = 4; break;
      case 1: lo = 5; hi = 8; break;
      case 2: lo = 9; hi = 16; break;
      default: lo = 17; hi = num_cores; break;
    }
    lo = std::min(lo, num_cores);
    hi = std::min(hi, num_cores);
    if (hi <= lo)
        return lo;
    return lo + static_cast<unsigned>(rng.below(hi - lo + 1));
}

} // namespace

SharedLayout::SharedLayout(const WorkloadProfile &p,
                           const SystemConfig &cfg)
    : prof(p), numCores(cfg.numCores)
{
    codeBase = codeRegion;
    codeBlocks = std::max<std::uint64_t>(16, p.codeBlocks);
    migBase = migRegion;
    migBlocksTotal = p.migBlocksPerCore * numCores;
    privBase = privRegion;
    privSpan = std::max<std::uint64_t>(64, p.privBlocksPerCore);
    privStride = privSpan + 37 * numCores + 3;
    streamBase = streamRegion;
    streamSpan = 1ull << 22; // plenty for any run length

    // Partition the shared region into groups. Each group holds
    // groupBlocks blocks and an affinity window of `degree` cores.
    const std::uint64_t total_shared =
        std::max<std::uint64_t>(64, p.sharedBlocksPerCore * numCores);
    constexpr std::uint64_t groupBlocks = 32;
    const std::uint64_t num_groups =
        std::max<std::uint64_t>(4, total_shared / groupBlocks);
    Rng rng(cfg.seed ^ 0x5eed5eedull);
    groupsOfCore.resize(numCores);
    double cum[4];
    double acc = 0;
    for (unsigned b = 0; b < 4; ++b) {
        acc += p.degreeMix[b];
        cum[b] = acc;
    }
    Addr next_block = sharedRegion;
    groups.reserve(num_groups);
    for (std::uint64_t g = 0; g < num_groups; ++g) {
        const double u = rng.uniform() * acc;
        unsigned bin = 0;
        while (bin < 3 && u > cum[bin])
            ++bin;
        Group grp;
        grp.firstBlock = next_block;
        grp.numBlocks = groupBlocks;
        grp.degree = binDegree(bin, numCores, rng);
        grp.firstCore = static_cast<unsigned>(rng.below(numCores));
        grp.readOnly = rng.chance(p.readOnlyShared);
        next_block += groupBlocks;
        const unsigned idx = static_cast<unsigned>(groups.size());
        groups.push_back(grp);
        for (unsigned d = 0; d < grp.degree; ++d)
            groupsOfCore[(grp.firstCore + d) % numCores].push_back(idx);
    }
    // Guarantee every core belongs to at least one group.
    for (unsigned c = 0; c < numCores; ++c) {
        if (groupsOfCore[c].empty() && !groups.empty())
            groupsOfCore[c].push_back(c % groups.size());
    }
}

SyntheticStream::SyntheticStream(std::shared_ptr<const SharedLayout> l,
                                 CoreId c, std::uint64_t n,
                                 std::uint64_t seed, bool with_prologue)
    : lay(std::move(l)), core(c), remaining(n),
      rng(seed * 0x9e3779b9ull + c + 1),
      streamCursor(lay->streamBase + c * lay->streamSpan),
      prologue(with_prologue),
      groupPick(std::max<std::uint64_t>(1,
                    lay->groupsOfCore[c].size()),
                lay->prof.zipfGroup),
      inGroupPick(32, lay->prof.zipfShared),
      codePick(lay->codeBlocks, lay->prof.zipfCode),
      codeWinPick(std::max<std::uint64_t>(
                      16, lay->codeBlocks / lay->prof.codeWindowDivisor),
                  lay->prof.zipfCode),
      privPick(lay->privSpan, lay->prof.zipfPriv)
{
    winMembers.reserve(lay->groupsOfCore[c].size());
}

Addr
SyntheticStream::pickCode()
{
    const WorkloadProfile &p = lay->prof;
    if (p.sharedWindowFrac > 0 && rng.chance(p.sharedWindowFrac)) {
        // The instruction working set phases like the shared data:
        // different transaction types / program stages run different
        // code. All cores slide through the same window.
        const std::uint64_t w = codeWinPick.size();
        const std::uint64_t phase = mainIssued / p.windowPhaseLen;
        const std::uint64_t c0 =
            (phase * (w / 2)) % lay->codeBlocks;
        return lay->codeBase + (c0 + codeWinPick(rng)) % lay->codeBlocks;
    }
    return lay->codeBase + codePick(rng);
}

std::pair<Addr, bool>
SyntheticStream::pickShared()
{
    const auto &mine = lay->groupsOfCore[core];
    if (mine.empty())
        return {lay->privBase + core * lay->privStride, false};
    const WorkloadProfile &p = lay->prof;
    const std::uint64_t n_groups = lay->groups.size();
    if (p.sharedWindowFrac > 0 && rng.chance(p.sharedWindowFrac)) {
        // Active-window access: the sliding window is defined on
        // global group ids, so the members of a group visit it during
        // the same phase (issued counts advance in lockstep).
        const std::uint64_t w = std::max<std::uint64_t>(
            4, n_groups / p.windowDivisor);
        const std::uint64_t phase = mainIssued / p.windowPhaseLen;
        // Candidates: this core's groups with id in [g0, g0+w) cyclic.
        // `mine` is ascending in group id by construction. The window
        // only moves when the phase does, so the membership scan is
        // cached per phase; no RNG is drawn here, so the stream is
        // identical to rescanning every access.
        if (phase != winPhase) {
            winPhase = phase;
            const std::uint64_t g0 = (phase * (w / 2)) % n_groups;
            winMembers.clear();
            for (unsigned gid : mine) {
                const std::uint64_t rel =
                    (gid + n_groups - g0) % n_groups;
                if (rel < w)
                    winMembers.push_back(gid);
            }
        }
        if (!winMembers.empty()) {
            const std::uint64_t k = rng.below(winMembers.size());
            const auto &grp = lay->groups[winMembers[k]];
            std::uint64_t off = inGroupPick(rng);
            if (off >= grp.numBlocks)
                off = rng.below(grp.numBlocks);
            return {grp.firstBlock + off, grp.readOnly};
        }
        // No active group for this core: fall through to the static
        // popularity path.
    }
    // Hot-group skew: group lists are in ascending group order, so
    // the cores of an affinity set agree on which groups are hot.
    const auto &grp = lay->groups[mine[groupPick(rng)]];
    std::uint64_t off = inGroupPick(rng);
    if (off >= grp.numBlocks)
        off = rng.below(grp.numBlocks);
    return {grp.firstBlock + off, grp.readOnly};
}

Addr
SyntheticStream::pickMigratory()
{
    const std::uint64_t per_core = lay->prof.migBlocksPerCore;
    if (per_core == 0 || lay->migBlocksTotal == 0)
        return pickShared().first;
    // Ownership of migratory chunks rotates across cores each phase:
    // the chunk this core works on moves on, so the next owner finds
    // the blocks exclusively cached elsewhere (E/M migration).
    const std::uint64_t phase = mainIssued / lay->prof.migPhaseLen;
    const std::uint64_t chunk = (core + phase) % lay->numCores;
    const std::uint64_t off = rng.below(per_core);
    return lay->migBase + chunk * per_core + off;
}

std::uint64_t
SyntheticStream::prologueLen() const
{
    if (!prologue)
        return 0;
    std::uint64_t shared_blocks = 0;
    for (unsigned g : lay->groupsOfCore[core])
        shared_blocks += lay->groups[g].numBlocks;
    return lay->privSpan + divCeil(lay->codeBlocks, lay->numCores) +
        shared_blocks;
}

bool
SyntheticStream::prologueNext(TraceAccess &out)
{
    out.gap = 1;
    out.type = AccessType::Load;
    std::uint64_t idx = prologueCursor++;
    // 1. Private region sweep.
    if (idx < lay->privSpan) {
        out.addr = (lay->privBase + core * lay->privStride + idx)
            << blockShift;
        return true;
    }
    idx -= lay->privSpan;
    // 2. This core's stripe of the code region.
    const std::uint64_t code_slice =
        divCeil(lay->codeBlocks, lay->numCores);
    if (idx < code_slice) {
        const std::uint64_t blk = idx * lay->numCores + core;
        if (blk < lay->codeBlocks) {
            out.type = AccessType::Ifetch;
            out.addr = (lay->codeBase + blk) << blockShift;
            return true;
        }
        // Past the ragged edge: substitute a private touch.
        out.addr = (lay->privBase + core * lay->privStride) << blockShift;
        return true;
    }
    idx -= code_slice;
    // 3. Every block of the core's sharing groups. The cursor is
    //    monotonic, so resume the walk from the cached group instead
    //    of re-scanning the list (which made the prologue quadratic).
    const auto &mine = lay->groupsOfCore[core];
    while (proGroup < mine.size()) {
        const auto &grp = lay->groups[mine[proGroup]];
        if (idx < proGroupBase + grp.numBlocks) {
            out.addr = (grp.firstBlock + (idx - proGroupBase))
                << blockShift;
            return true;
        }
        proGroupBase += grp.numBlocks;
        ++proGroup;
    }
    prologue = false; // done
    return false;
}

bool
SyntheticStream::next(TraceAccess &out)
{
    if (remaining == 0)
        return false;
    if (prologue && prologueNext(out)) {
        --remaining;
        ++issued;
        return true;
    }
    --remaining;
    ++issued;
    ++mainIssued;
    const WorkloadProfile &p = lay->prof;

    // Compute gap: geometric-ish around meanGap.
    const double u = rng.uniform();
    out.gap = 1 + static_cast<Cycle>(-std::log(1.0 - u) * p.meanGap);
    if (out.gap > 40ull * p.meanGap)
        out.gap = 40ull * p.meanGap;

    Addr block;
    if (rng.chance(p.ifetchFrac)) {
        out.type = AccessType::Ifetch;
        block = pickCode();
        out.addr = block << blockShift;
        return true;
    }
    if (rng.chance(p.streamFrac)) {
        // Never-reused streaming block.
        block = streamCursor++;
        out.type = rng.chance(p.writeFracPriv) ? AccessType::Store
                                               : AccessType::Load;
        out.addr = block << blockShift;
        return true;
    }
    if (rng.chance(p.sharedFrac)) {
        if (p.migratoryFrac > 0 && rng.chance(p.migratoryFrac)) {
            block = pickMigratory();
            // Migratory data is read-modify-write.
            out.type = rng.chance(0.5) ? AccessType::Store
                                       : AccessType::Load;
        } else {
            auto [blk, read_only] = pickShared();
            block = blk;
            out.type = (!read_only && rng.chance(p.writeFracShared))
                ? AccessType::Store : AccessType::Load;
        }
        out.addr = block << blockShift;
        return true;
    }
    block = lay->privBase + core * lay->privStride + pickPrivate();
    out.type = rng.chance(p.writeFracPriv) ? AccessType::Store
                                           : AccessType::Load;
    out.addr = block << blockShift;
    return true;
}

std::uint64_t
SyntheticStream::pickPrivate()
{
    const WorkloadProfile &p = lay->prof;
    const std::uint64_t hot =
        std::min<std::uint64_t>(p.privHotBlocks, lay->privSpan);
    if (hot >= lay->privSpan || rng.chance(p.privHotFrac))
        return privPick(rng) % hot;
    // Phased scratch: a sliding window over the rest of the region;
    // blocks outside the current window are dead until the window
    // wraps around.
    const std::uint64_t scratch = lay->privSpan - hot;
    const std::uint64_t w = std::max<std::uint64_t>(
        32, scratch / p.windowDivisor);
    const std::uint64_t phase = mainIssued / p.windowPhaseLen;
    const std::uint64_t s0 = (phase * (w / 2)) % scratch;
    return hot + (s0 + rng.below(w)) % scratch;
}

void
SyntheticStream::saveState(ckpt::Writer &w) const
{
    w.u64(remaining);
    w.u64(issued);
    w.u64(mainIssued);
    rng.saveState(w);
    w.u64(streamCursor);
    w.b(prologue);
    w.u64(prologueCursor);
    w.u64(proGroup);
    w.u64(proGroupBase);
    // winPhase/winMembers are a pure function of mainIssued and are
    // rebuilt lazily; the Zipf samplers are pure functions of the
    // layout. Neither is serialized.
}

void
SyntheticStream::loadState(ckpt::Reader &r)
{
    remaining = r.u64();
    issued = r.u64();
    mainIssued = r.u64();
    rng.loadState(r);
    streamCursor = r.u64();
    prologue = r.b();
    prologueCursor = r.u64();
    proGroup = static_cast<std::size_t>(r.u64());
    proGroupBase = r.u64();
    winPhase = ~0ull;
    winMembers.clear();
}

std::shared_ptr<const SharedLayout>
layoutFor(const WorkloadProfile &prof, const SystemConfig &cfg)
{
    // Only the registered Table II profiles are cached: they are
    // immortal, so keying by address is safe. A caller-owned profile
    // could be destroyed and another allocated at the same address,
    // which would alias cache entries.
    bool registered = false;
    for (const auto &p : allProfiles()) {
        if (&p == &prof) {
            registered = true;
            break;
        }
    }
    if (!registered)
        return std::make_shared<const SharedLayout>(prof, cfg);

    // SharedLayout only reads numCores and seed from the config.
    using Key = std::tuple<const WorkloadProfile *, unsigned,
                           std::uint64_t>;
    static std::mutex mu;
    static std::map<Key, std::shared_ptr<const SharedLayout>> cache;
    const Key key{&prof, cfg.numCores, cfg.seed};
    std::lock_guard<std::mutex> guard(mu);
    auto it = cache.find(key);
    if (it == cache.end()) {
        it = cache
                 .emplace(key,
                          std::make_shared<const SharedLayout>(prof, cfg))
                 .first;
    }
    return it->second;
}

std::vector<std::unique_ptr<AccessStream>>
makeStreams(std::shared_ptr<const SharedLayout> layout,
            const SystemConfig &cfg, std::uint64_t accesses_per_core,
            bool with_prologue)
{
    std::vector<std::unique_ptr<AccessStream>> streams;
    streams.reserve(cfg.numCores);
    for (CoreId c = 0; c < cfg.numCores; ++c) {
        streams.push_back(std::make_unique<SyntheticStream>(
            layout, c, accesses_per_core, cfg.seed, with_prologue));
    }
    return streams;
}

std::uint64_t
maxPrologueLen(const SharedLayout &layout)
{
    std::uint64_t mx = 0;
    for (unsigned c = 0; c < layout.numCores; ++c) {
        std::uint64_t shared_blocks = 0;
        for (unsigned g : layout.groupsOfCore[c])
            shared_blocks += layout.groups[g].numBlocks;
        mx = std::max(mx, layout.privSpan +
                              divCeil(layout.codeBlocks,
                                      layout.numCores) +
                              shared_blocks);
    }
    return mx;
}

} // namespace tinydir
