/**
 * @file
 * Binary trace file I/O.
 *
 * The paper replays PIN traces for its commercial workloads; this
 * module provides the equivalent substrate for the library: a compact
 * binary format holding per-core access streams, a writer that can
 * capture any AccessStream (e.g. to snapshot a synthetic workload or
 * import external traces), and a reader implementing AccessStream for
 * replay through the simulator.
 *
 * Format (little-endian):
 *   header:  magic "TDTR" | u32 version | u32 numCores |
 *            u64 accessesPerCore[numCores]
 *   records: per core, contiguous: u64 addr | u32 gap | u8 type
 * The per-core blocks are stored sequentially; the reader mmap-less
 * implementation keeps one ifstream per stream with independent
 * offsets, so all cores can replay concurrently.
 */

#ifndef TINYDIR_WORKLOAD_TRACE_FILE_HH
#define TINYDIR_WORKLOAD_TRACE_FILE_HH

#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "core/trace.hh"

namespace tinydir
{

/** Writes per-core access streams into a trace file. */
class TraceFileWriter
{
  public:
    /**
     * Capture @p streams (draining them) into @p path.
     * @return accesses written per core.
     */
    static std::vector<std::uint64_t>
    write(const std::string &path,
          std::vector<std::unique_ptr<AccessStream>> streams);
};

/** Replays one core's stream from a trace file. */
class TraceFileStream : public AccessStream
{
  public:
    TraceFileStream(const std::string &path, unsigned core);

    bool next(TraceAccess &out) override;

    void saveState(ckpt::Writer &w) const override;
    void loadState(ckpt::Reader &r) override;

  private:
    std::ifstream in;
    std::uint64_t remaining;
};

/** Trace file metadata. */
struct TraceFileInfo
{
    unsigned numCores = 0;
    std::vector<std::uint64_t> accessesPerCore;
};

/** Read the header of a trace file. fatal() on malformed input. */
TraceFileInfo traceFileInfo(const std::string &path);

/** Open every core's stream of a trace file. */
std::vector<std::unique_ptr<AccessStream>>
openTraceStreams(const std::string &path);

} // namespace tinydir

#endif // TINYDIR_WORKLOAD_TRACE_FILE_HH
