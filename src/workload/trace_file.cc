#include "workload/trace_file.hh"

#include <cstring>

#include "common/log.hh"
#include "ckpt/io.hh"

namespace tinydir
{

namespace
{

constexpr char magic[4] = {'T', 'D', 'T', 'R'};
constexpr std::uint32_t version = 1;
constexpr std::size_t recordBytes = 8 + 4 + 1;

std::uint64_t
headerBytes(unsigned num_cores)
{
    return 4 + 4 + 4 + 8ull * num_cores;
}

void
putU32(std::ostream &os, std::uint32_t v)
{
    os.write(reinterpret_cast<const char *>(&v), 4);
}

void
putU64(std::ostream &os, std::uint64_t v)
{
    os.write(reinterpret_cast<const char *>(&v), 8);
}

std::uint32_t
getU32(std::istream &is)
{
    std::uint32_t v = 0;
    is.read(reinterpret_cast<char *>(&v), 4);
    return v;
}

std::uint64_t
getU64(std::istream &is)
{
    std::uint64_t v = 0;
    is.read(reinterpret_cast<char *>(&v), 8);
    return v;
}

} // namespace

std::vector<std::uint64_t>
TraceFileWriter::write(const std::string &path,
                       std::vector<std::unique_ptr<AccessStream>> streams)
{
    std::ofstream os(path, std::ios::binary | std::ios::trunc);
    fatal_if(!os, "cannot open trace file for writing: ", path);
    const auto num_cores = static_cast<unsigned>(streams.size());
    // Header with per-core counts patched in afterwards.
    os.write(magic, 4);
    putU32(os, version);
    putU32(os, num_cores);
    std::vector<std::uint64_t> counts(num_cores, 0);
    for (unsigned c = 0; c < num_cores; ++c)
        putU64(os, 0);

    TraceAccess a;
    for (unsigned c = 0; c < num_cores; ++c) {
        while (streams[c] && streams[c]->next(a)) {
            putU64(os, a.addr);
            putU32(os, static_cast<std::uint32_t>(
                           std::min<Cycle>(a.gap, ~0u)));
            const auto t = static_cast<char>(a.type);
            os.write(&t, 1);
            ++counts[c];
        }
    }
    // Patch the counts.
    os.seekp(12);
    for (unsigned c = 0; c < num_cores; ++c)
        putU64(os, counts[c]);
    fatal_if(!os, "short write to trace file: ", path);
    return counts;
}

TraceFileInfo
traceFileInfo(const std::string &path)
{
    std::ifstream is(path, std::ios::binary);
    fatal_if(!is, "cannot open trace file: ", path);
    char m[4];
    is.read(m, 4);
    fatal_if(!is || std::memcmp(m, magic, 4) != 0,
             "not a tinydir trace file: ", path);
    const std::uint32_t v = getU32(is);
    fatal_if(v != version, "unsupported trace version ", v, " in ",
             path);
    TraceFileInfo info;
    info.numCores = getU32(is);
    fatal_if(info.numCores == 0 || info.numCores > maxCores,
             "implausible core count in trace: ", info.numCores);
    info.accessesPerCore.resize(info.numCores);
    for (auto &n : info.accessesPerCore)
        n = getU64(is);
    fatal_if(!is, "truncated trace header: ", path);
    return info;
}

TraceFileStream::TraceFileStream(const std::string &path, unsigned core)
    : in(path, std::ios::binary)
{
    fatal_if(!in, "cannot open trace file: ", path);
    const TraceFileInfo info = traceFileInfo(path);
    fatal_if(core >= info.numCores, "trace has no core ", core);
    std::uint64_t offset = headerBytes(info.numCores);
    for (unsigned c = 0; c < core; ++c)
        offset += info.accessesPerCore[c] * recordBytes;
    in.seekg(static_cast<std::streamoff>(offset));
    remaining = info.accessesPerCore[core];
}

bool
TraceFileStream::next(TraceAccess &out)
{
    if (remaining == 0)
        return false;
    --remaining;
    out.addr = getU64(in);
    out.gap = getU32(in);
    char t = 0;
    in.read(&t, 1);
    fatal_if(!in, "truncated trace record");
    out.type = static_cast<AccessType>(t);
    return true;
}

void
TraceFileStream::saveState(ckpt::Writer &w) const
{
    w.u64(remaining);
    // tellg() is const-unfriendly; the read offset is recomputable
    // from the record count consumed, but storing it directly keeps
    // restore O(1). const_cast is safe: tellg does not move the get
    // pointer.
    auto &is = const_cast<std::ifstream &>(in);
    const auto pos = is.tellg();
    if (pos < 0)
        throw CheckpointError("trace stream position unavailable");
    w.u64(static_cast<std::uint64_t>(pos));
}

void
TraceFileStream::loadState(ckpt::Reader &r)
{
    remaining = r.u64();
    const std::uint64_t pos = r.u64();
    in.clear();
    in.seekg(static_cast<std::streamoff>(pos));
    if (!in)
        throw CheckpointError("cannot seek trace stream to " +
                              std::to_string(pos));
}

std::vector<std::unique_ptr<AccessStream>>
openTraceStreams(const std::string &path)
{
    const TraceFileInfo info = traceFileInfo(path);
    std::vector<std::unique_ptr<AccessStream>> streams;
    streams.reserve(info.numCores);
    for (unsigned c = 0; c < info.numCores; ++c)
        streams.push_back(std::make_unique<TraceFileStream>(path, c));
    return streams;
}

} // namespace tinydir
