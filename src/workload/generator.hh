/**
 * @file
 * Synthetic access-stream generator.
 *
 * A run builds one SharedLayout per (profile, system) pair: the block
 * ranges of the code region, the shared region partitioned into
 * sharing groups with affinity sets sized per the profile's
 * degreeMix, the migratory region, and the per-core private and
 * streaming regions. Every core then draws a deterministic access
 * stream from its own RNG, so runs are reproducible and independent
 * of the tracking scheme being simulated.
 */

#ifndef TINYDIR_WORKLOAD_GENERATOR_HH
#define TINYDIR_WORKLOAD_GENERATOR_HH

#include <cstddef>
#include <memory>
#include <utility>
#include <vector>

#include "common/config.hh"
#include "common/rng.hh"
#include "core/trace.hh"
#include "workload/profile.hh"

namespace tinydir
{

/** Run-wide address-space layout shared by all core streams. */
struct SharedLayout
{
    /** One group of shared blocks with a fixed affinity set. */
    struct Group
    {
        Addr firstBlock;
        std::uint64_t numBlocks;
        unsigned firstCore; //!< affinity set = firstCore..+degree (wrap)
        unsigned degree;
        bool readOnly;      //!< never stored to (read-mostly data)
    };

    SharedLayout(const WorkloadProfile &prof, const SystemConfig &cfg);

    const WorkloadProfile &prof;
    unsigned numCores;
    std::vector<Group> groups;
    /** Indices of groups whose affinity set contains each core. */
    std::vector<std::vector<unsigned>> groupsOfCore;
    Addr codeBase;
    std::uint64_t codeBlocks;
    Addr migBase;
    std::uint64_t migBlocksTotal;
    Addr privBase;
    std::uint64_t privSpan;
    /**
     * Distance between consecutive cores' private regions. Strictly
     * larger than privSpan and not a multiple of the directory/LLC
     * set span, so the cores' hot sets do not collide in the same
     * cache/directory sets (real address-space layouts are similarly
     * decorrelated by the OS page allocator).
     */
    std::uint64_t privStride;
    Addr streamBase; //!< per-core stride streamSpan
    std::uint64_t streamSpan;
};

/** Lazily generated per-core access stream. */
class SyntheticStream : public AccessStream
{
  public:
    /**
     * @param with_prologue Emit a deterministic warmup prologue first:
     * one touch of every private-region block, the core's slice of the
     * code region, and every block of the core's sharing groups. With
     * the prologue inside the warmup window, the measured phase is
     * free of compulsory misses (steady state, as the paper measures).
     */
    SyntheticStream(std::shared_ptr<const SharedLayout> layout,
                    CoreId core, std::uint64_t num_accesses,
                    std::uint64_t seed, bool with_prologue = false);

    bool next(TraceAccess &out) override;

    /** Prologue length of this core's stream (0 when disabled). */
    std::uint64_t prologueLen() const;

    void saveState(ckpt::Writer &w) const override;
    void loadState(ckpt::Reader &r) override;

  private:
    /** @return block number and whether the group is read-only. */
    std::pair<Addr, bool> pickShared();
    Addr pickMigratory();

    /** Next prologue access, or false when the prologue is done. */
    bool prologueNext(TraceAccess &out);

    std::shared_ptr<const SharedLayout> lay;
    CoreId core;
    std::uint64_t remaining;
    std::uint64_t issued = 0;
    /** Post-prologue access count: cores align phases on this. */
    std::uint64_t mainIssued = 0;
    Rng rng;
    Addr streamCursor;
    bool prologue;
    std::uint64_t prologueCursor = 0;
    ZipfSampler groupPick;
    ZipfSampler inGroupPick;
    ZipfSampler codePick;
    ZipfSampler codeWinPick;
    ZipfSampler privPick;

    /**
     * Cache of this core's in-window group ids for the sliding-window
     * shared path. The window is a pure function of the phase, so the
     * membership scan only needs to run when the phase advances, not
     * on every access; the draw order (and thus the stream) does not
     * change. ~0 marks the cache as empty.
     */
    std::uint64_t winPhase = ~0ull;
    std::vector<unsigned> winMembers;

    /**
     * Prologue progress through the core's sharing groups: index into
     * groupsOfCore[core] and the cumulative block count of the groups
     * before it. The cursor only moves forward, so the group walk
     * resumes where the previous access left off instead of
     * re-walking the list from the start every call.
     */
    std::size_t proGroup = 0;
    std::uint64_t proGroupBase = 0;

    /** Pick a code block (phased working set + static tail). */
    Addr pickCode();

    /** Pick a private-region offset (hot set + phased scratch). */
    std::uint64_t pickPrivate();
};

/**
 * Layout registry: the SharedLayout for (@p prof, @p cfg). Layout
 * construction is deterministic in the profile, the core count and
 * the seed, and the result is immutable, so layouts of the built-in
 * profiles (allProfiles()) are cached and shared across concurrent
 * runs — re-simulating a workload under another scheme reuses the
 * layout instead of rebuilding it. Ad-hoc profiles (e.g. test-local
 * ones, whose lifetime the registry cannot rely on) get a fresh
 * layout each call. Thread-safe.
 */
std::shared_ptr<const SharedLayout>
layoutFor(const WorkloadProfile &prof, const SystemConfig &cfg);

/** Build the per-core streams for one run (with warmup prologue). */
std::vector<std::unique_ptr<AccessStream>>
makeStreams(std::shared_ptr<const SharedLayout> layout,
            const SystemConfig &cfg, std::uint64_t accesses_per_core,
            bool with_prologue = true);

/** The longest per-core prologue implied by a layout. */
std::uint64_t maxPrologueLen(const SharedLayout &layout);

} // namespace tinydir

#endif // TINYDIR_WORKLOAD_GENERATOR_HH
