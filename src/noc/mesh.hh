/**
 * @file
 * 2D mesh interconnect timing model.
 *
 * Table I: XY dimension-order routing, 3 ns per hop at 2 GHz
 * (four-stage router pipeline + link), one core + one LLC bank + one
 * directory slice per mesh node; eight memory controllers evenly
 * distributed over the mesh. Links are modeled contention-free
 * (DESIGN.md Section 2); bank and DRAM queueing is modeled where it
 * matters.
 */

#ifndef TINYDIR_NOC_MESH_HH
#define TINYDIR_NOC_MESH_HH

#include <vector>

#include "common/config.hh"
#include "common/types.hh"

namespace tinydir
{

/** Hop-latency calculator for the on-die 2D mesh. */
class Mesh
{
  public:
    explicit Mesh(const SystemConfig &cfg);

    /** Manhattan hop count between two mesh nodes. */
    unsigned hops(unsigned node_a, unsigned node_b) const;

    /**
     * Latency in cycles of a one-way message between two nodes.
     * Served from a table precomputed at construction; the XY
     * div/mod decomposition never runs on the access path.
     */
    Cycle
    latency(unsigned node_a, unsigned node_b) const
    {
        return lat[node_a * nodes + node_b];
    }

    /**
     * Worst-case one-way latency from @p node to any core node;
     * precomputed for the broadcast probe paths (Stash recovery) so
     * they do not loop over every core per transaction.
     */
    Cycle maxLatencyFrom(unsigned node) const { return maxLat[node]; }

    /** Mesh node hosting memory channel @p ch. */
    unsigned memNode(unsigned ch) const;

    /** The average one-way latency between two distinct random nodes. */
    Cycle averageLatency() const;

    unsigned width() const { return w; }
    unsigned height() const { return h; }

  private:
    unsigned w, h;
    unsigned nodes;
    Cycle hopCycles;
    std::vector<unsigned> memNodes;
    /** nodes x nodes one-way latency table. */
    std::vector<Cycle> lat;
    /** Per-node worst-case latency to any core node. */
    std::vector<Cycle> maxLat;
};

} // namespace tinydir

#endif // TINYDIR_NOC_MESH_HH
