#include "noc/traffic.hh"

namespace tinydir
{

std::string
toString(MsgClass c)
{
    switch (c) {
      case MsgClass::Processor: return "processor";
      case MsgClass::Writeback: return "writeback";
      case MsgClass::Coherence: return "coherence";
    }
    return "?";
}

} // namespace tinydir
