/**
 * @file
 * Interconnect message taxonomy and byte accounting.
 *
 * Figure 5 of the paper splits interconnect traffic into three message
 * classes:
 *  - Processor: private-cache misses and their responses;
 *  - Writeback: eviction notices from the cores and their acks;
 *  - Coherence: requests forwarded by the home LLC bank, invalidations,
 *    busy-clear notifications, NACK/retry messages.
 *
 * Sizes follow the usual convention of an 8-byte control header and a
 * 64-byte data payload; in-LLC reconstruction payloads add the
 * byte-rounded size of the borrowed bits (Section III-B).
 */

#ifndef TINYDIR_NOC_TRAFFIC_HH
#define TINYDIR_NOC_TRAFFIC_HH

#include <array>
#include <string>

#include "common/bitops.hh"
#include "common/stats.hh"
#include "common/types.hh"

namespace tinydir
{

/** Figure 5 message classes. */
enum class MsgClass
{
    Processor,
    Writeback,
    Coherence,
};

constexpr unsigned numMsgClasses = 3;

/** Human-readable class name. */
std::string toString(MsgClass c);

/** Bytes in a control (data-less) message. */
constexpr unsigned ctrlBytes = 8;

/** Bytes in a full data-carrying message. */
constexpr unsigned dataBytes = ctrlBytes + blockBytes;

/**
 * Bytes of the in-LLC reconstruction payload for a C-core system in
 * pointer format: 4 + ceil(log2 C) bits, rounded up to whole bytes
 * (Section III-B: E-state eviction notices carry these bits).
 */
constexpr unsigned
reconstructBytes(unsigned num_cores)
{
    return static_cast<unsigned>(
        divCeil(4 + ceilLog2(num_cores), 8));
}

/** Byte counters per message class. */
class TrafficStats
{
  public:
    void
    add(MsgClass c, unsigned bytes, Counter count = 1)
    {
        byteCount[static_cast<unsigned>(c)] += bytes * count;
        msgCount[static_cast<unsigned>(c)] += count;
    }

    Counter
    bytes(MsgClass c) const
    {
        return byteCount[static_cast<unsigned>(c)];
    }

    Counter
    messages(MsgClass c) const
    {
        return msgCount[static_cast<unsigned>(c)];
    }

    Counter
    totalBytes() const
    {
        Counter t = 0;
        for (auto b : byteCount)
            t += b;
        return t;
    }

    void
    reset()
    {
        byteCount.fill(0);
        msgCount.fill(0);
    }

    /** Fold another counter set into this one (shard-stat merge). */
    void
    merge(const TrafficStats &o)
    {
        for (unsigned i = 0; i < numMsgClasses; ++i) {
            byteCount[i] += o.byteCount[i];
            msgCount[i] += o.msgCount[i];
        }
    }

    /** Serialize both counter arrays (ckpt::Writer-shaped sink). */
    template <typename W>
    void
    saveState(W &w) const
    {
        for (Counter b : byteCount)
            w.u64(b);
        for (Counter m : msgCount)
            w.u64(m);
    }

    /** Restore counters written by saveState. */
    template <typename R>
    void
    loadState(R &r)
    {
        for (auto &b : byteCount)
            b = r.u64();
        for (auto &m : msgCount)
            m = r.u64();
    }

  private:
    std::array<Counter, numMsgClasses> byteCount{};
    std::array<Counter, numMsgClasses> msgCount{};
};

} // namespace tinydir

#endif // TINYDIR_NOC_TRAFFIC_HH
