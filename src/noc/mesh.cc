#include "noc/mesh.hh"

#include <algorithm>
#include <cstdlib>

#include "common/log.hh"

namespace tinydir
{

Mesh::Mesh(const SystemConfig &cfg)
    : w(cfg.meshWidth()), h(cfg.meshHeight()), nodes(w * h),
      hopCycles(cfg.hopCycles)
{
    panic_if(nodes < cfg.numCores, "mesh too small for core count");
    // Spread memory controllers evenly across node ids.
    const unsigned n = cfg.numCores;
    memNodes.reserve(cfg.memChannels);
    for (unsigned ch = 0; ch < cfg.memChannels; ++ch)
        memNodes.push_back((ch * n) / cfg.memChannels + n / (2 * cfg.memChannels));

    // Precompute all pairwise latencies and, per node, the worst-case
    // latency to any core node (cores occupy node ids [0, numCores)).
    lat.resize(static_cast<std::size_t>(nodes) * nodes);
    maxLat.assign(nodes, 0);
    for (unsigned a = 0; a < nodes; ++a) {
        for (unsigned b = 0; b < nodes; ++b) {
            const Cycle l = static_cast<Cycle>(hops(a, b)) * hopCycles;
            lat[static_cast<std::size_t>(a) * nodes + b] = l;
            if (b < cfg.numCores)
                maxLat[a] = std::max(maxLat[a], l);
        }
    }
}

unsigned
Mesh::hops(unsigned node_a, unsigned node_b) const
{
    const int ax = static_cast<int>(node_a % w);
    const int ay = static_cast<int>(node_a / w);
    const int bx = static_cast<int>(node_b % w);
    const int by = static_cast<int>(node_b / w);
    return static_cast<unsigned>(std::abs(ax - bx) + std::abs(ay - by));
}

unsigned
Mesh::memNode(unsigned ch) const
{
    panic_if(ch >= memNodes.size(), "bad memory channel");
    return memNodes[ch];
}

Cycle
Mesh::averageLatency() const
{
    const unsigned n = w * h;
    std::uint64_t total = 0;
    std::uint64_t pairs = 0;
    for (unsigned a = 0; a < n; ++a) {
        for (unsigned b = 0; b < n; ++b) {
            if (a == b)
                continue;
            total += hops(a, b);
            ++pairs;
        }
    }
    return pairs ? static_cast<Cycle>(
        total * hopCycles / pairs) : 0;
}

} // namespace tinydir
