/**
 * @file
 * Per-core private cache hierarchy: L1I + L1D + unified L2.
 *
 * Table I geometry: 32 KB 8-way L1s (2 cycles), 128 KB 8-way L2
 * (3 cycles), non-inclusive/non-exclusive, fill on miss, no
 * back-invalidation on eviction. Coherence is kept at hierarchy
 * granularity: a block is "privately cached" while it lives in any of
 * the three arrays, and the eviction notice required by the protocol
 * ([29], Section I footnote 2) is generated exactly when the block
 * leaves the last array.
 */

#ifndef TINYDIR_CORE_PRIVATE_CACHE_HH
#define TINYDIR_CORE_PRIVATE_CACHE_HH

#include "common/config.hh"
#include "common/flat_map.hh"
#include "common/inline_vec.hh"
#include "common/types.hh"
#include "mem/cache_array.hh"
#include "proto/mesi.hh"

namespace tinydir
{

namespace ckpt
{
class Writer;
class Reader;
} // namespace ckpt

/** Eviction notice emitted when a block leaves the hierarchy. */
struct EvictionNotice
{
    Addr block;
    MesiState state; //!< private state at eviction (PutS/PutE/PutM)
};

/**
 * Caller-provided scratch buffer for eviction notices. One access()
 * evicts at most one block (a single L1 refill); one fill() evicts at
 * most two (L1 + L2 allocation); capacity 4 leaves headroom without
 * leaving the stack.
 */
using NoticeVec = InlineVec<EvictionNotice, 4>;

/** One core's private two-level cache hierarchy. */
class PrivateCache
{
  public:
    PrivateCache(const SystemConfig &cfg, CoreId core);

    /** Coherence state of @p block in this hierarchy (I if absent). */
    MesiState state(Addr block) const;

    bool present(Addr block) const;

    /**
     * Host-cache hint that @p block is about to be looked up: touches
     * the per-block state map's home slot. No simulation-visible
     * effect; issued by the batched driver front-end.
     */
    void prefetch(Addr block) const { info.prefetch(block); }

    /** Result of a local lookup. */
    struct AccessResult
    {
        bool present = false;     //!< block lives in the hierarchy
        MesiState state = MesiState::I;
        Cycle latency = 0;        //!< L1 or L1+L2 lookup cycles
    };

    /**
     * Look up @p block for @p type, updating recency and refilling the
     * appropriate L1 from L2 when needed. Never changes the coherence
     * state; the caller decides whether the access can complete
     * locally (e.g. a store to an S block still needs an upgrade).
     * Eviction notices from L2->L1 refills are appended to @p notices
     * (a caller-owned scratch buffer; not cleared here).
     */
    AccessResult access(Addr block, AccessType type, NoticeVec &notices);

    /**
     * Install @p block with state @p st after a miss response,
     * filling the appropriate L1 and the L2 (fill on miss at each
     * level). Eviction notices for blocks pushed out of the hierarchy
     * are appended to @p notices.
     */
    void fill(Addr block, MesiState st, AccessType type,
              NoticeVec &notices);

    /** Change the state of a resident block (e.g. silent E->M). */
    void setState(Addr block, MesiState st);

    struct CoherenceResult
    {
        bool wasPresent = false;
        bool wasDirty = false; //!< block was in M
    };

    /** Remove the block everywhere (home-initiated invalidation). */
    CoherenceResult invalidate(Addr block);

    /** Downgrade E/M -> S (forwarded GetS). */
    CoherenceResult downgrade(Addr block);

    /** Number of blocks currently in the hierarchy. */
    std::size_t footprint() const { return info.size(); }

    /** Visit (block, state) pairs; used by invariant checks. */
    template <typename F>
    void
    forEachBlock(F &&f) const
    {
        info.forEach([&](Addr blk, const Flags &bi) { f(blk, bi.state); });
    }

    /** Serialize all three arrays plus the per-block state map (ckpt/). */
    void saveState(ckpt::Writer &w) const;

    /** Restore state written by saveState under an identical config. */
    void loadState(ckpt::Reader &r);

  private:
    struct Flags
    {
        MesiState state = MesiState::I;
        bool l1i = false;
        bool l1d = false;
        bool l2 = false;

        bool anywhere() const { return l1i || l1d || l2; }
    };

    struct Entry
    {
        Addr tag = 0;
        bool valid = false;
    };

    /** Insert into an array; handle the victim's flag bookkeeping. */
    void insert(CacheArray<Entry> &arr, int level, Addr block,
                NoticeVec &notices);

    /** Clear a block's flag for one level after an array eviction. */
    void clearFlag(int level, Addr block, NoticeVec &notices);

    /** Remove the tag of @p block from one array if present. */
    static void removeTag(CacheArray<Entry> &arr, Addr block);

    Cycle l1Lat, l2Lat;
    CacheArray<Entry> l1i, l1d, l2;
    /**
     * Per-block hierarchy state, pre-sized in the constructor to the
     * maximum possible footprint (sum of the three arrays' capacities)
     * so steady-state accesses never rehash or allocate.
     */
    FlatMap<Flags> info;
};

} // namespace tinydir

#endif // TINYDIR_CORE_PRIVATE_CACHE_HH
