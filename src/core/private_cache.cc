#include "core/private_cache.hh"

#include "common/bitops.hh"
#include "common/log.hh"

namespace tinydir
{

namespace
{

constexpr int levelL1i = 0;
constexpr int levelL1d = 1;
constexpr int levelL2 = 2;

std::uint64_t
setsOf(unsigned bytes, unsigned assoc)
{
    return bytes / blockBytes / assoc;
}

} // namespace

PrivateCache::PrivateCache(const SystemConfig &cfg, CoreId core)
    : l1Lat(cfg.l1Latency), l2Lat(cfg.l2Latency),
      l1i(setsOf(cfg.l1Bytes, cfg.l1Assoc), cfg.l1Assoc, ReplPolicy::Lru,
          cfg.seed + 1000 + core),
      l1d(setsOf(cfg.l1Bytes, cfg.l1Assoc), cfg.l1Assoc, ReplPolicy::Lru,
          cfg.seed + 2000 + core),
      l2(setsOf(cfg.l2Bytes, cfg.l2Assoc), cfg.l2Assoc, ReplPolicy::Lru,
         cfg.seed + 3000 + core)
{
}

MesiState
PrivateCache::state(Addr block) const
{
    auto it = info.find(block);
    return it == info.end() ? MesiState::I : it->second.state;
}

bool
PrivateCache::present(Addr block) const
{
    return info.find(block) != info.end();
}

PrivateCache::AccessResult
PrivateCache::access(Addr block, AccessType type)
{
    AccessResult res;
    auto it = info.find(block);
    if (it == info.end()) {
        res.latency = l1Lat; // L1 lookup preceded the miss
        return res;
    }
    Flags &fl = it->second;
    res.present = true;
    res.state = fl.state;

    const bool inst = type == AccessType::Ifetch;
    CacheArray<Entry> &l1 = inst ? l1i : l1d;
    const bool in_l1 = inst ? fl.l1i : fl.l1d;
    if (in_l1) {
        const std::uint64_t set = block & (l1.numSets() - 1);
        int w = l1.findWay(set, block);
        panic_if(w < 0, "L1 flag/array mismatch for block ", block);
        l1.touch(set, static_cast<unsigned>(w));
        res.latency = l1Lat;
    } else {
        // L1 miss; block is in L2 (or the other L1, which we model as
        // an L2-latency local transfer). Refill the missing L1.
        res.latency = l1Lat + l2Lat;
        if (fl.l2) {
            const std::uint64_t set = block & (l2.numSets() - 1);
            int w = l2.findWay(set, block);
            panic_if(w < 0, "L2 flag/array mismatch for block ", block);
            l2.touch(set, static_cast<unsigned>(w));
        }
        insert(l1, inst ? levelL1i : levelL1d, block, res.notices);
    }
    return res;
}

std::vector<EvictionNotice>
PrivateCache::fill(Addr block, MesiState st, AccessType type)
{
    std::vector<EvictionNotice> notices;
    panic_if(st == MesiState::I, "filling with invalid state");
    Flags &fl = info[block];
    fl.state = st;
    const bool inst = type == AccessType::Ifetch;
    if (inst) {
        if (!fl.l1i)
            insert(l1i, levelL1i, block, notices);
    } else {
        if (!fl.l1d)
            insert(l1d, levelL1d, block, notices);
    }
    // fill on miss at each level: the L2 also allocates.
    auto it = info.find(block);
    panic_if(it == info.end(), "fill lost its own block");
    if (!it->second.l2)
        insert(l2, levelL2, block, notices);
    return notices;
}

void
PrivateCache::setState(Addr block, MesiState st)
{
    auto it = info.find(block);
    panic_if(it == info.end(), "setState on absent block");
    panic_if(st == MesiState::I, "setState(I); use invalidate()");
    it->second.state = st;
}

PrivateCache::CoherenceResult
PrivateCache::invalidate(Addr block)
{
    CoherenceResult res;
    auto it = info.find(block);
    if (it == info.end())
        return res;
    res.wasPresent = true;
    res.wasDirty = it->second.state == MesiState::M;
    if (it->second.l1i)
        removeTag(l1i, block);
    if (it->second.l1d)
        removeTag(l1d, block);
    if (it->second.l2)
        removeTag(l2, block);
    info.erase(it);
    return res;
}

PrivateCache::CoherenceResult
PrivateCache::downgrade(Addr block)
{
    CoherenceResult res;
    auto it = info.find(block);
    if (it == info.end())
        return res;
    res.wasPresent = true;
    res.wasDirty = it->second.state == MesiState::M;
    it->second.state = MesiState::S;
    return res;
}

void
PrivateCache::insert(CacheArray<Entry> &arr, int level, Addr block,
                     std::vector<EvictionNotice> &notices)
{
    const std::uint64_t set = block & (arr.numSets() - 1);
    const unsigned w = arr.victimWay(set);
    Entry &e = arr.way(set, w);
    if (e.valid)
        clearFlag(level, e.tag, notices);
    e.tag = block;
    e.valid = true;
    arr.touch(set, w);

    auto it = info.find(block);
    panic_if(it == info.end(), "insert of block without flags");
    Flags &fl = it->second;
    switch (level) {
      case levelL1i: fl.l1i = true; break;
      case levelL1d: fl.l1d = true; break;
      default: fl.l2 = true; break;
    }
}

void
PrivateCache::clearFlag(int level, Addr block,
                        std::vector<EvictionNotice> &notices)
{
    auto it = info.find(block);
    panic_if(it == info.end(), "array victim without flags: ", block);
    Flags &fl = it->second;
    switch (level) {
      case levelL1i: fl.l1i = false; break;
      case levelL1d: fl.l1d = false; break;
      default: fl.l2 = false; break;
    }
    if (!fl.anywhere()) {
        notices.push_back({block, fl.state});
        info.erase(it);
    }
}

void
PrivateCache::removeTag(CacheArray<Entry> &arr, Addr block)
{
    const std::uint64_t set = block & (arr.numSets() - 1);
    int w = arr.findWay(set, block);
    panic_if(w < 0, "removeTag: flag/array mismatch for block ", block);
    arr.way(set, static_cast<unsigned>(w)) = Entry{};
    arr.demote(set, static_cast<unsigned>(w));
}

} // namespace tinydir
