#include "core/private_cache.hh"

#include "common/bitops.hh"
#include "common/log.hh"
#include "ckpt/io.hh"

namespace tinydir
{

namespace
{

constexpr int levelL1i = 0;
constexpr int levelL1d = 1;
constexpr int levelL2 = 2;

std::uint64_t
setsOf(unsigned bytes, unsigned assoc)
{
    return bytes / blockBytes / assoc;
}

} // namespace

PrivateCache::PrivateCache(const SystemConfig &cfg, CoreId core)
    : l1Lat(cfg.l1Latency), l2Lat(cfg.l2Latency),
      l1i(setsOf(cfg.l1Bytes, cfg.l1Assoc), cfg.l1Assoc, ReplPolicy::Lru,
          cfg.seed + 1000 + core),
      l1d(setsOf(cfg.l1Bytes, cfg.l1Assoc), cfg.l1Assoc, ReplPolicy::Lru,
          cfg.seed + 2000 + core),
      l2(setsOf(cfg.l2Bytes, cfg.l2Assoc), cfg.l2Assoc, ReplPolicy::Lru,
         cfg.seed + 3000 + core)
{
    // Pre-size to the maximum possible footprint (every way of every
    // array holding a distinct block) so steady-state accesses never
    // rehash. Non-inclusive hierarchy: the three arrays are disjoint
    // in the worst case.
    info.reserve(2 * (cfg.l1Bytes / blockBytes) +
                 cfg.l2Bytes / blockBytes);
}

MesiState
PrivateCache::state(Addr block) const
{
    const Flags *fl = info.find(block);
    return fl ? fl->state : MesiState::I;
}

bool
PrivateCache::present(Addr block) const
{
    return info.contains(block);
}

PrivateCache::AccessResult
PrivateCache::access(Addr block, AccessType type, NoticeVec &notices)
{
    AccessResult res;
    Flags *fl = info.find(block);
    if (!fl) {
        res.latency = l1Lat; // L1 lookup preceded the miss
        return res;
    }
    res.present = true;
    res.state = fl->state;

    const bool inst = type == AccessType::Ifetch;
    CacheArray<Entry> &l1 = inst ? l1i : l1d;
    const bool in_l1 = inst ? fl->l1i : fl->l1d;
    if (in_l1) {
        const std::uint64_t set = block & (l1.numSets() - 1);
        int w = l1.findWay(set, block);
        panic_if(w < 0, "L1 flag/array mismatch for block ", block);
        l1.touch(set, static_cast<unsigned>(w));
        res.latency = l1Lat;
    } else {
        // L1 miss; block is in L2 (or the other L1, which we model as
        // an L2-latency local transfer). Refill the missing L1.
        res.latency = l1Lat + l2Lat;
        if (fl->l2) {
            const std::uint64_t set = block & (l2.numSets() - 1);
            int w = l2.findWay(set, block);
            panic_if(w < 0, "L2 flag/array mismatch for block ", block);
            l2.touch(set, static_cast<unsigned>(w));
        }
        // insert() may erase other info entries, relocating slots; fl
        // is dead past this point.
        insert(l1, inst ? levelL1i : levelL1d, block, notices);
    }
    return res;
}

void
PrivateCache::fill(Addr block, MesiState st, AccessType type,
                   NoticeVec &notices)
{
    panic_if(st == MesiState::I, "filling with invalid state");
    Flags &fl = info[block];
    fl.state = st;
    const bool inst = type == AccessType::Ifetch;
    const bool have_l1 = inst ? fl.l1i : fl.l1d;
    // insert() below may erase other info entries, relocating slots;
    // fl is dead once the first insert runs. Re-find before the L2
    // check for the same reason.
    if (!have_l1) {
        insert(inst ? l1i : l1d, inst ? levelL1i : levelL1d, block,
               notices);
    }
    // fill on miss at each level: the L2 also allocates.
    Flags *fl2 = info.find(block);
    panic_if(!fl2, "fill lost its own block");
    if (!fl2->l2)
        insert(l2, levelL2, block, notices);
}

void
PrivateCache::setState(Addr block, MesiState st)
{
    Flags *fl = info.find(block);
    panic_if(!fl, "setState on absent block");
    panic_if(st == MesiState::I, "setState(I); use invalidate()");
    fl->state = st;
}

PrivateCache::CoherenceResult
PrivateCache::invalidate(Addr block)
{
    CoherenceResult res;
    Flags *fl = info.find(block);
    if (!fl)
        return res;
    res.wasPresent = true;
    res.wasDirty = fl->state == MesiState::M;
    if (fl->l1i)
        removeTag(l1i, block);
    if (fl->l1d)
        removeTag(l1d, block);
    if (fl->l2)
        removeTag(l2, block);
    info.erase(block);
    return res;
}

PrivateCache::CoherenceResult
PrivateCache::downgrade(Addr block)
{
    CoherenceResult res;
    Flags *fl = info.find(block);
    if (!fl)
        return res;
    res.wasPresent = true;
    res.wasDirty = fl->state == MesiState::M;
    fl->state = MesiState::S;
    return res;
}

void
PrivateCache::insert(CacheArray<Entry> &arr, int level, Addr block,
                     NoticeVec &notices)
{
    const std::uint64_t set = block & (arr.numSets() - 1);
    const unsigned w = arr.victimWay(set);
    const Entry &victim = arr.way(set, w);
    if (victim.valid)
        clearFlag(level, victim.tag, notices);
    arr.install(set, w, block);
    arr.touch(set, w);

    // Re-find: clearFlag() above may have erased an entry and shifted
    // this block's slot.
    Flags *fl = info.find(block);
    panic_if(!fl, "insert of block without flags");
    switch (level) {
      case levelL1i: fl->l1i = true; break;
      case levelL1d: fl->l1d = true; break;
      default: fl->l2 = true; break;
    }
}

void
PrivateCache::clearFlag(int level, Addr block, NoticeVec &notices)
{
    Flags *fl = info.find(block);
    panic_if(!fl, "array victim without flags: ", block);
    switch (level) {
      case levelL1i: fl->l1i = false; break;
      case levelL1d: fl->l1d = false; break;
      default: fl->l2 = false; break;
    }
    if (!fl->anywhere()) {
        notices.push_back({block, fl->state});
        info.erase(block);
    }
}

void
PrivateCache::saveState(ckpt::Writer &w) const
{
    const auto save_tag = [](ckpt::Writer &wr, const Entry &e) {
        wr.u64(e.tag);
        wr.b(e.valid);
    };
    l1i.saveState(w, save_tag);
    l1d.saveState(w, save_tag);
    l2.saveState(w, save_tag);
    info.saveState(w, [](ckpt::Writer &wr, const Flags &fl) {
        wr.u8(static_cast<std::uint8_t>(fl.state));
        wr.b(fl.l1i);
        wr.b(fl.l1d);
        wr.b(fl.l2);
    });
}

void
PrivateCache::loadState(ckpt::Reader &r)
{
    const auto load_tag = [](ckpt::Reader &rd, Entry &e) {
        e.tag = rd.u64();
        e.valid = rd.b();
    };
    l1i.loadState(r, load_tag);
    l1d.loadState(r, load_tag);
    l2.loadState(r, load_tag);
    info.loadState(r, [](ckpt::Reader &rd, Flags &fl) {
        const std::uint8_t st = rd.u8();
        if (st > static_cast<std::uint8_t>(MesiState::M))
            throw CheckpointError("checkpoint corrupt: MESI state " +
                                  std::to_string(st));
        fl.state = static_cast<MesiState>(st);
        fl.l1i = rd.b();
        fl.l1d = rd.b();
        fl.l2 = rd.b();
    });
}

void
PrivateCache::removeTag(CacheArray<Entry> &arr, Addr block)
{
    const std::uint64_t set = block & (arr.numSets() - 1);
    int w = arr.findWay(set, block);
    panic_if(w < 0, "removeTag: flag/array mismatch for block ", block);
    arr.clearWay(set, static_cast<unsigned>(w));
    arr.demote(set, static_cast<unsigned>(w));
}

} // namespace tinydir
