/**
 * @file
 * Trace vocabulary: the memory-access records cores replay and the
 * stream abstraction workload generators implement.
 */

#ifndef TINYDIR_CORE_TRACE_HH
#define TINYDIR_CORE_TRACE_HH

#include "common/sim_error.hh"
#include "common/types.hh"
#include "proto/mesi.hh"

namespace tinydir
{

namespace ckpt
{
class Writer;
class Reader;
} // namespace ckpt

/** One memory access of a core's instruction stream. */
struct TraceAccess
{
    Cycle gap = 0;    //!< compute cycles since the previous access
    AccessType type = AccessType::Load;
    Addr addr = 0;    //!< byte address
};

/** A (possibly lazily generated) per-core access stream. */
class AccessStream
{
  public:
    virtual ~AccessStream() = default;

    /** Produce the next access; false when the stream is exhausted. */
    virtual bool next(TraceAccess &out) = 0;

    /**
     * Snapshot the stream's generation state (ckpt/). Streams that
     * cannot be checkpointed keep the default, which refuses.
     */
    virtual void
    saveState(ckpt::Writer &) const
    {
        throw CheckpointError("stream does not support checkpointing");
    }

    /** Restore state written by saveState. */
    virtual void
    loadState(ckpt::Reader &)
    {
        throw CheckpointError("stream does not support checkpointing");
    }
};

} // namespace tinydir

#endif // TINYDIR_CORE_TRACE_HH
