/**
 * @file
 * Trace-replay core model.
 *
 * Each core is blocking: it issues the next access `gap` cycles after
 * the previous one completed, and a miss stalls it for the full round
 * trip. The private hierarchies live in the System (the engine and
 * the MgD tracker need the whole vector); a Core carries the clock and
 * per-core counters. The paper simulates out-of-order cores; the
 * normalized execution-time comparisons between tracking schemes are
 * driven by the same memory-system effects either way (DESIGN.md
 * Section 2).
 */

#ifndef TINYDIR_CORE_CORE_HH
#define TINYDIR_CORE_CORE_HH

#include "common/stats.hh"
#include "common/types.hh"

namespace tinydir
{

/** Per-core replay state and statistics. */
struct Core
{
    explicit Core(CoreId id) : id(id) {}

    CoreId id;
    Cycle clock = 0;

    Scalar loads, stores, ifetches;
    Scalar privHits; //!< accesses completed inside the hierarchy
    Scalar upgrades; //!< store hits that needed an upgrade
    Scalar misses;   //!< accesses that went to the home
};

} // namespace tinydir

#endif // TINYDIR_CORE_CORE_HH
