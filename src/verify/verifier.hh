/**
 * @file
 * Runtime coherence-invariant verifier.
 *
 * Walks the entire system state — private cache hierarchies, LLC
 * meta-states, the active tracker and spilled entries — and checks the
 * invariants every tracking scheme must preserve while moving state
 * between the directory SRAM, corrupted LLC ways and spilled entries
 * (paper Sections III-IV):
 *
 *   swmr.*       at most one E/M owner per block, never concurrent
 *                with read sharers (single-writer/multiple-reader);
 *   tracker.*    the tracker's view matches the ground truth of the
 *                private hierarchies: the exact owner for exclusive
 *                blocks, and a sharer set equal to (grain 1) or a
 *                superset of (coarse grains) the real sharers;
 *   residence.*  a block's tracking lives in at most one place:
 *                directory SRAM, a corrupted LLC way, or a spilled
 *                entry — never two at once;
 *   llc.*        meta-state consistency of the V=0,D=1 encodings:
 *                CorruptExcl must name a real in-range owner,
 *                CorruptShared/Spill must encode a non-empty state, a
 *                spilled entry must have its companion data block, and
 *                (exact-grain schemes) every core named by an
 *                LLC-resident entry must actually cache the block.
 *
 * check() collects violations; enforce() additionally writes a
 * structured JSON state dump (block, per-core states, tracker entry,
 * recent-transaction context) and throws InvariantViolation. attach()
 * installs enforce() as a periodic Driver hook, which is how runOne()
 * wires it up when RunControls::verifyPeriod (or TINYDIR_VERIFY) is
 * set. The fault-injection harness (verify/fault_inject.hh) validates
 * that each corruption class trips the corresponding rule.
 */

#ifndef TINYDIR_VERIFY_VERIFIER_HH
#define TINYDIR_VERIFY_VERIFIER_HH

#include <string>
#include <vector>

#include "common/sim_error.hh"
#include "common/types.hh"
#include "sim/driver.hh"
#include "sim/system.hh"

namespace tinydir
{

/** One broken invariant. */
struct Violation
{
    std::string rule;   //!< stable rule id, e.g. "swmr.two-owners"
    Addr block = invalidAddr;
    std::string detail; //!< human-readable description
};

/** Outcome of one full-state verification pass. */
struct VerifyReport
{
    std::vector<Violation> violations;
    Counter blocksChecked = 0;

    bool ok() const { return violations.empty(); }

    /** "ok" or the first violation, for log lines. */
    std::string summary() const;
};

/** Full-system coherence invariant checker. */
class Verifier
{
  public:
    struct Options
    {
        /** Write a JSON state dump when enforce() finds a violation. */
        bool dumpOnViolation = true;
        /** Dump directory ("" = $TINYDIR_DUMP_DIR, else cwd). */
        std::string dumpDir;
        /** Scheme/workload context for dump naming and error text. */
        std::string label;
        /** Stop collecting after this many violations. */
        std::size_t maxViolations = 16;
    };

    Verifier() = default;
    explicit Verifier(Options o) : opts(std::move(o)) {}

    /** Walk the whole system state and collect violations (no throw). */
    VerifyReport check(System &sys);

    /**
     * check(); on violation write the dump (per Options) and throw
     * InvariantViolation carrying the first violating block and the
     * dump path. @p accessCount stamps the dump with simulation
     * progress (pass the Driver hook's running access count).
     */
    void enforce(System &sys, Counter accessCount = 0);

    /** Path of the last dump written by enforce(), or "". */
    const std::string &lastDumpPath() const { return lastDump; }

    /**
     * Install enforce() as @p driver's periodic hook, firing every
     * @p period accesses. The Verifier must outlive the driven run.
     */
    void attach(Driver &driver, Counter period);

    const Options &options() const { return opts; }

  private:
    Options opts;
    std::string lastDump;
};

/**
 * Write the structured JSON dump for @p report: the violations, the
 * per-core / tracker / LLC state of each violating block, and the
 * system's recent-transaction ring. @return the file path, or "" when
 * the file could not be written (reported with warn()).
 */
std::string writeViolationDump(System &sys, const VerifyReport &report,
                               const Verifier::Options &opts,
                               Counter accessCount);

} // namespace tinydir

#endif // TINYDIR_VERIFY_VERIFIER_HH
