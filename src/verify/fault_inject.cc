#include "verify/fault_inject.hh"

#include <map>
#include <sstream>
#include <vector>

#include "proto/inllc.hh"

namespace tinydir
{

namespace
{

/** Blocks cached by at least one core, with the ground-truth holders. */
struct Holders
{
    SharerSet sharers;
    CoreId owner = invalidCore;
};

std::map<Addr, Holders>
groundTruth(System &sys)
{
    std::map<Addr, Holders> truth;
    for (CoreId c = 0; c < sys.cfg.numCores; ++c) {
        sys.privs[c].forEachBlock([&](Addr blk, MesiState st) {
            Holders &h = truth[blk];
            if (st == MesiState::S)
                h.sharers.add(c);
            else
                h.owner = c;
        });
    }
    return truth;
}

/**
 * Overwrite the tracked state of @p block with @p forged, wherever it
 * lives: tracker SRAM (debug hook), a spilled entry, a corrupted way,
 * or a tag-extended payload. @return false if no mutable tracking
 * entry exists for the block.
 */
bool
forgeAnywhere(System &sys, Addr block, const TrackState &forged)
{
    if (sys.tracker->debugForgeState(block, forged))
        return true;
    if (LlcEntry *sp = sys.llc.findSpill(block)) {
        inllc_detail::encode(*sp, forged);
        return true;
    }
    LlcEntry *de = sys.llc.findData(block);
    if (de && de->isCorrupt()) {
        de->meta = forged.exclusive() ? LlcMeta::CorruptExcl
                                      : LlcMeta::CorruptShared;
        inllc_detail::encode(*de, forged);
        return true;
    }
    if (de && (de->owner != invalidCore || !de->sharers.empty())) {
        // Tag-extended payload in a Normal way.
        inllc_detail::encode(*de, forged);
        return true;
    }
    return false;
}

FaultReport
flipSharerBit(System &sys)
{
    for (const auto &[blk, h] : groundTruth(sys)) {
        if (h.owner != invalidCore || h.sharers.empty())
            continue;
        const TrackerView v = sys.tracker->view(blk);
        if (!v.ts.shared() || v.ts.sharers.empty())
            continue;
        // Drop a *real* sharer: caught by both the exact-equality and
        // the coarse-superset tracker checks.
        CoreId victim = invalidCore;
        h.sharers.forEach([&](CoreId s) {
            if (victim == invalidCore && v.ts.sharers.contains(s))
                victim = s;
        });
        if (victim == invalidCore)
            continue;
        TrackState forged = v.ts;
        forged.sharers.remove(victim);
        if (!forgeAnywhere(sys, blk, forged))
            continue;
        std::ostringstream os;
        os << "removed sharer " << static_cast<unsigned>(victim)
           << " from the tracked sharer set of block " << blk;
        return {true, blk, os.str()};
    }
    return {false, invalidAddr, "no tracked shared block to corrupt"};
}

FaultReport
dropTrackerEntry(System &sys)
{
    for (const auto &[blk, h] : groundTruth(sys)) {
        (void)h;
        const TrackerView v = sys.tracker->view(blk);
        if (v.ts.invalid())
            continue;
        if (sys.tracker->debugDropEntry(blk)) {
            std::ostringstream os;
            os << "silently dropped the tracking entry of block " << blk;
            return {true, blk, os.str()};
        }
        // LLC-resident tracking: erase it in place.
        if (sys.llc.findSpill(blk)) {
            sys.llc.freeSpill(blk);
            std::ostringstream os;
            os << "silently dropped the spilled entry of block " << blk;
            return {true, blk, os.str()};
        }
        LlcEntry *de = sys.llc.findData(blk);
        if (de && (de->isCorrupt() || de->owner != invalidCore ||
                   !de->sharers.empty())) {
            de->meta = LlcMeta::Normal;
            de->owner = invalidCore;
            de->sharers.clear();
            std::ostringstream os;
            os << "silently cleared the LLC-resident tracking of block "
               << blk;
            return {true, blk, os.str()};
        }
    }
    return {false, invalidAddr, "no tracked cached block to corrupt"};
}

FaultReport
desyncSpilledEntry(System &sys)
{
    // Find any spilled tracking entry E_B and remove its companion
    // data block B, breaking the pairing invariant of Section IV-B1.
    Addr target = invalidAddr;
    sys.llc.forEachEntry([&](LlcEntry &e) {
        if (target == invalidAddr && e.meta == LlcMeta::Spill &&
            sys.llc.findData(e.tag))
            target = e.tag;
    });
    if (target == invalidAddr)
        return {false, invalidAddr,
                "no spilled entry present (scheme may never spill)"};
    sys.llc.freeData(target);
    std::ostringstream os;
    os << "removed data block " << target
       << " while its spilled entry survives";
    return {true, target, os.str()};
}

FaultReport
forgeOwner(System &sys)
{
    for (const auto &[blk, h] : groundTruth(sys)) {
        if (h.owner == invalidCore)
            continue;
        const TrackerView v = sys.tracker->view(blk);
        if (!v.ts.exclusive())
            continue;
        // Name an owner that does not cache the block at all.
        CoreId bogus = invalidCore;
        for (CoreId c = 0; c < sys.cfg.numCores; ++c) {
            if (sys.privs[c].state(blk) == MesiState::I) {
                bogus = c;
                break;
            }
        }
        if (bogus == invalidCore)
            continue;
        if (!forgeAnywhere(sys, blk, TrackState::makeExclusive(bogus)))
            continue;
        std::ostringstream os;
        os << "forged core " << static_cast<unsigned>(bogus)
           << " as exclusive owner of block " << blk << " owned by core "
           << static_cast<unsigned>(h.owner);
        return {true, blk, os.str()};
    }
    return {false, invalidAddr, "no tracked owned block to corrupt"};
}

} // namespace

std::string
toString(FaultKind k)
{
    switch (k) {
      case FaultKind::FlipSharerBit: return "flip-sharer-bit";
      case FaultKind::DropTrackerEntry: return "drop-tracker-entry";
      case FaultKind::DesyncSpilledEntry: return "desync-spilled-entry";
      case FaultKind::ForgeOwner: return "forge-owner";
    }
    return "?";
}

FaultReport
injectFault(System &sys, FaultKind kind)
{
    switch (kind) {
      case FaultKind::FlipSharerBit: return flipSharerBit(sys);
      case FaultKind::DropTrackerEntry: return dropTrackerEntry(sys);
      case FaultKind::DesyncSpilledEntry: return desyncSpilledEntry(sys);
      case FaultKind::ForgeOwner: return forgeOwner(sys);
    }
    return {false, invalidAddr, "unknown fault kind"};
}

} // namespace tinydir
