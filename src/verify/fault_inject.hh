/**
 * @file
 * Deliberate coherence-state corruption, used to prove the invariant
 * verifier (verify/verifier.hh) catches real tracking bugs.
 *
 * Each FaultKind models one class of tracking-layer defect:
 *
 *  - FlipSharerBit: silently remove a real sharer from the tracked
 *    sharer vector (a lost-invalidation / dropped-bit bug). Caught by
 *    tracker.sharers-mismatch / tracker.sharers-not-superset.
 *  - DropTrackerEntry: silently destroy the block's tracking entry —
 *    no back-invalidation, no spill — leaving the block cached but
 *    untracked. Caught by tracker.owner-mismatch /
 *    tracker.sharers-untracked.
 *  - DesyncSpilledEntry: remove the data block B while its spilled
 *    tracking entry E_B survives, breaking the Section IV-B1 pairing.
 *    Caught by llc.spill-orphan. Only injectable on schemes that
 *    spill (the tiny directory).
 *  - ForgeOwner: rewrite the tracked state to name an exclusive owner
 *    that does not cache the block. Caught by tracker.owner-mismatch
 *    and llc.stale-owner.
 *
 * Injection mutates tracker SRAM through the CoherenceTracker debug
 * hooks, or LLC-resident tracking (corrupted/spilled ways, tag-
 * extended payloads) directly — never through the protocol engine, so
 * no traffic or latency is accounted and no side effects fire; the
 * corruption is exactly as silent as a hardware bug would be.
 */

#ifndef TINYDIR_VERIFY_FAULT_INJECT_HH
#define TINYDIR_VERIFY_FAULT_INJECT_HH

#include <string>

#include "common/types.hh"
#include "sim/system.hh"

namespace tinydir
{

/** Classes of tracking-state corruption the verifier must catch. */
enum class FaultKind
{
    FlipSharerBit,
    DropTrackerEntry,
    DesyncSpilledEntry,
    ForgeOwner,
};

std::string toString(FaultKind k);

/** Outcome of one injection attempt. */
struct FaultReport
{
    bool injected = false;      //!< a fault was actually planted
    Addr block = invalidAddr;   //!< the corrupted block
    std::string description;    //!< what was done (or why nothing was)
};

/**
 * Plant one fault of kind @p kind into @p sys, picking the first
 * block whose current state supports that corruption class. Run some
 * accesses through the system first so there is shared/tracked state
 * to corrupt; a report with injected=false means no eligible block
 * was found (e.g. DesyncSpilledEntry on a scheme that never spills).
 */
FaultReport injectFault(System &sys, FaultKind kind);

} // namespace tinydir

#endif // TINYDIR_VERIFY_FAULT_INJECT_HH
