#include "verify/verifier.hh"

#include <unistd.h>

#include <atomic>
#include <cctype>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>
#include <utility>

#include "common/log.hh"
#include "proto/inllc.hh"

namespace tinydir
{

namespace
{

const char *
residenceName(Residence r)
{
    switch (r) {
      case Residence::Untracked: return "Untracked";
      case Residence::DirSram: return "DirSram";
      case Residence::LlcCorrupt: return "LlcCorrupt";
      case Residence::LlcSpill: return "LlcSpill";
      case Residence::Broadcast: return "Broadcast";
    }
    return "?";
}

const char *
metaName(LlcMeta m)
{
    switch (m) {
      case LlcMeta::Normal: return "Normal";
      case LlcMeta::CorruptExcl: return "CorruptExcl";
      case LlcMeta::CorruptShared: return "CorruptShared";
      case LlcMeta::Spill: return "Spill";
    }
    return "?";
}

const char *
kindName(TrackState::Kind k)
{
    switch (k) {
      case TrackState::Kind::Invalid: return "Invalid";
      case TrackState::Kind::Exclusive: return "Exclusive";
      case TrackState::Kind::Shared: return "Shared";
    }
    return "?";
}

std::string
sharerList(const SharerSet &s)
{
    std::ostringstream os;
    os << "{";
    bool first = true;
    s.forEach([&](CoreId c) {
        os << (first ? "" : ",") << static_cast<unsigned>(c);
        first = false;
    });
    os << "}";
    return os.str();
}

/** Ground truth for one block, rebuilt from the private hierarchies. */
struct Truth
{
    SharerSet sharers;
    CoreId owner = invalidCore;
};

// -- JSON helpers ----------------------------------------------------------

std::string
jsonEscape(const std::string &s)
{
    std::ostringstream os;
    for (char c : s) {
        switch (c) {
          case '"': os << "\\\""; break;
          case '\\': os << "\\\\"; break;
          case '\n': os << "\\n"; break;
          case '\t': os << "\\t"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20)
                os << ' ';
            else
                os << c;
        }
    }
    return os.str();
}

void
jsonSharers(std::ostream &os, const SharerSet &s)
{
    os << "[";
    bool first = true;
    s.forEach([&](CoreId c) {
        os << (first ? "" : ",") << static_cast<unsigned>(c);
        first = false;
    });
    os << "]";
}

void
jsonTrackState(std::ostream &os, const TrackState &ts)
{
    os << "{\"kind\":\"" << kindName(ts.kind) << "\",\"owner\":";
    if (ts.owner == invalidCore)
        os << "null";
    else
        os << static_cast<unsigned>(ts.owner);
    os << ",\"sharers\":";
    jsonSharers(os, ts.sharers);
    os << "}";
}

void
jsonLlcEntry(std::ostream &os, const LlcEntry &e)
{
    os << "{\"meta\":\"" << metaName(e.meta) << "\",\"dirty\":"
       << (e.dirty ? "true" : "false") << ",\"owner\":";
    if (e.owner == invalidCore)
        os << "null";
    else
        os << static_cast<unsigned>(e.owner);
    os << ",\"sharers\":";
    jsonSharers(os, e.sharers);
    os << ",\"strac\":" << static_cast<unsigned>(e.strac)
       << ",\"oac\":" << static_cast<unsigned>(e.oac) << "}";
}

/** Full diagnostic context of one violating block. */
void
jsonBlockContext(std::ostream &os, System &sys, Addr blk)
{
    os << "{\"block\":" << blk << ",\"coreStates\":[";
    bool first = true;
    for (CoreId c = 0; c < sys.cfg.numCores; ++c) {
        const MesiState st = sys.privs[c].state(blk);
        if (st == MesiState::I)
            continue;
        os << (first ? "" : ",") << "{\"core\":"
           << static_cast<unsigned>(c) << ",\"state\":\""
           << toString(st) << "\"}";
        first = false;
    }
    os << "],\"tracker\":";
    const TrackerView v = sys.tracker->view(blk);
    os << "{\"residence\":\"" << residenceName(v.where) << "\",\"state\":";
    jsonTrackState(os, v.ts);
    os << "},\"inDirSram\":"
       << (sys.tracker->debugHasDirEntry(blk) ? "true" : "false")
       << ",\"llcData\":";
    if (const LlcEntry *de = sys.llc.findData(blk))
        jsonLlcEntry(os, *de);
    else
        os << "null";
    os << ",\"llcSpill\":";
    if (const LlcEntry *sp = sys.llc.findSpill(blk))
        jsonLlcEntry(os, *sp);
    else
        os << "null";
    os << "}";
}

} // namespace

std::string
VerifyReport::summary() const
{
    if (ok())
        return "ok";
    std::ostringstream os;
    const Violation &v = violations.front();
    os << v.rule << ": " << v.detail;
    if (violations.size() > 1)
        os << " (+" << violations.size() - 1 << " more)";
    return os.str();
}

VerifyReport
Verifier::check(System &sys)
{
    VerifyReport rep;
    auto add = [&](const char *rule, Addr blk, const std::string &detail) {
        if (rep.violations.size() < opts.maxViolations)
            rep.violations.push_back({rule, blk, detail});
    };

    const SystemConfig &cfg = sys.cfg;
    CoherenceTracker &trk = *sys.tracker;
    const bool coarse = trk.coarseGrain();
    const bool exact = cfg.sharerGrain == 1;

    // Ground truth: who actually caches what, in which state.
    std::map<Addr, Truth> truth;
    for (CoreId c = 0; c < cfg.numCores; ++c) {
        sys.privs[c].forEachBlock([&](Addr blk, MesiState st) {
            Truth &t = truth[blk];
            if (st == MesiState::S) {
                t.sharers.add(c);
            } else {
                if (t.owner != invalidCore) {
                    std::ostringstream os;
                    os << "cores " << static_cast<unsigned>(t.owner)
                       << " and " << static_cast<unsigned>(c)
                       << " both hold the block in E/M";
                    add("swmr.two-owners", blk, os.str());
                }
                t.owner = c;
            }
        });
    }

    for (auto &[blk, t] : truth) {
        ++rep.blocksChecked;

        // SWMR: an E/M owner excludes concurrent read sharers.
        if (t.owner != invalidCore && !t.sharers.empty()) {
            std::ostringstream os;
            os << "owned in E/M by core "
               << static_cast<unsigned>(t.owner) << " but also shared by "
               << sharerList(t.sharers);
            add("swmr.owner-and-sharers", blk, os.str());
        }

        // Tracker view vs ground truth.
        const TrackerView v = trk.view(blk);
        if (t.owner != invalidCore) {
            if (!v.ts.exclusive() || v.ts.owner != t.owner) {
                std::ostringstream os;
                os << "owner core " << static_cast<unsigned>(t.owner)
                   << " but tracked as " << kindName(v.ts.kind)
                   << " (residence " << residenceName(v.where);
                if (v.ts.exclusive())
                    os << ", owner " << static_cast<unsigned>(v.ts.owner);
                os << ")";
                add("tracker.owner-mismatch", blk, os.str());
            }
        } else if (!t.sharers.empty()) {
            if (!v.ts.shared()) {
                std::ostringstream os;
                os << "shared by " << t.sharers.count()
                   << " cores " << sharerList(t.sharers)
                   << " but tracked as " << kindName(v.ts.kind)
                   << " (residence " << residenceName(v.where) << ")";
                add("tracker.sharers-untracked", blk, os.str());
            } else if (!exact || coarse) {
                // Coarse vectors track a conservative superset.
                bool missing = false;
                t.sharers.forEach([&](CoreId s) {
                    missing |= !v.ts.sharers.contains(s);
                });
                if (missing) {
                    std::ostringstream os;
                    os << "coarse sharer set "
                       << sharerList(v.ts.sharers)
                       << " misses a real sharer of "
                       << sharerList(t.sharers);
                    add("tracker.sharers-not-superset", blk, os.str());
                }
            } else if (!(v.ts.sharers == t.sharers)) {
                std::ostringstream os;
                os << "tracked sharers " << sharerList(v.ts.sharers)
                   << " != actual sharers " << sharerList(t.sharers);
                add("tracker.sharers-mismatch", blk, os.str());
            }
        }

        // Residence mutual exclusion: tracking for a block lives in at
        // most one of directory SRAM, a corrupted LLC way, or a
        // spilled entry.
        const bool inDir = trk.debugHasDirEntry(blk);
        const LlcEntry *de = sys.llc.findData(blk);
        const bool corrupt = de && de->isCorrupt();
        const bool spilled = sys.llc.findSpill(blk) != nullptr;
        if (static_cast<int>(inDir) + static_cast<int>(corrupt) +
                static_cast<int>(spilled) > 1) {
            std::ostringstream os;
            os << "tracking resident in multiple places:"
               << (inDir ? " dir-sram" : "")
               << (corrupt ? " llc-corrupt" : "")
               << (spilled ? " llc-spill" : "");
            add("residence.multiple", blk, os.str());
        }
    }

    // LLC meta-state consistency (the V=0,D=1 encodings of Sections
    // III/IV) plus the reverse direction for LLC-resident tracking:
    // entries must describe cores that really cache the block.
    sys.llc.forEachEntry([&](LlcEntry &e) {
        if (e.meta == LlcMeta::Normal)
            return;
        const Addr blk = e.tag;
        if (e.owner != invalidCore && e.owner >= cfg.numCores) {
            std::ostringstream os;
            os << metaName(e.meta) << " way names out-of-range owner "
               << static_cast<unsigned>(e.owner);
            add("llc.bad-owner", blk, os.str());
            return; // owner unusable for the checks below
        }
        const TrackState ts = inllc_detail::stateOf(e);
        if (e.meta == LlcMeta::CorruptExcl && !ts.exclusive()) {
            add("llc.corrupt-excl-unowned", blk,
                "CorruptExcl way encodes no owner");
        }
        if (ts.invalid()) {
            std::ostringstream os;
            os << metaName(e.meta) << " way encodes an empty state";
            add("llc.corrupt-empty", blk, os.str());
        }
        if (e.meta == LlcMeta::Spill && !sys.llc.findData(blk)) {
            add("llc.spill-orphan", blk,
                "spilled tracking entry without its data block");
        }
        // Reverse check (exact-grain schemes only): every core named
        // by the entry actually caches the block as described.
        if (exact && !coarse) {
            if (ts.exclusive() && ts.owner < cfg.numCores) {
                const MesiState st = sys.privs[ts.owner].state(blk);
                if (st != MesiState::E && st != MesiState::M) {
                    std::ostringstream os;
                    os << metaName(e.meta) << " way names owner "
                       << static_cast<unsigned>(ts.owner)
                       << " whose private state is " << toString(st);
                    add("llc.stale-owner", blk, os.str());
                }
            } else if (ts.shared()) {
                ts.sharers.forEach([&](CoreId s) {
                    if (s < cfg.numCores &&
                        sys.privs[s].state(blk) == MesiState::S)
                        return;
                    std::ostringstream os;
                    os << metaName(e.meta) << " way lists sharer "
                       << static_cast<unsigned>(s)
                       << " that does not cache the block in S";
                    add("llc.stale-sharer", blk, os.str());
                });
            }
        }
    });

    return rep;
}

void
Verifier::enforce(System &sys, Counter accessCount)
{
    VerifyReport rep = check(sys);
    if (rep.ok())
        return;
    lastDump.clear();
    if (opts.dumpOnViolation)
        lastDump = writeViolationDump(sys, rep, opts, accessCount);
    const Violation &v = rep.violations.front();
    std::ostringstream os;
    os << "coherence invariant violated";
    if (!opts.label.empty())
        os << " [" << opts.label << "]";
    os << ": block " << v.block << ": " << rep.summary();
    if (!lastDump.empty())
        os << "; state dump: " << lastDump;
    throw InvariantViolation(os.str(), v.block, lastDump);
}

void
Verifier::attach(Driver &driver, Counter period)
{
    driver.hookPeriod = period;
    driver.hook = [this](System &sys, Counter n) { enforce(sys, n); };
}

std::string
writeViolationDump(System &sys, const VerifyReport &report,
                   const Verifier::Options &opts, Counter accessCount)
{
    namespace fs = std::filesystem;

    std::string dir = opts.dumpDir;
    if (dir.empty()) {
        if (const char *env = std::getenv("TINYDIR_DUMP_DIR"))
            dir = env;
    }
    if (dir.empty())
        dir = ".";

    static std::atomic<unsigned> seq{0};
    std::ostringstream name;
    name << "tinydir-violation-" << ::getpid() << "-"
         << seq.fetch_add(1, std::memory_order_relaxed);
    if (!opts.label.empty()) {
        name << "-";
        for (char c : opts.label)
            name << (std::isalnum(static_cast<unsigned char>(c)) ? c : '-');
    }
    name << ".json";

    std::error_code ec;
    fs::create_directories(dir, ec); // best effort; open() reports failure
    const std::string path = (fs::path(dir) / name.str()).string();

    std::ofstream out(path);
    if (!out) {
        warn("cannot write violation dump to ", path);
        return "";
    }

    out << "{\n  \"kind\": \"tinydir-invariant-violation\",\n";
    out << "  \"label\": \"" << jsonEscape(opts.label) << "\",\n";
    out << "  \"scheme\": \"" << jsonEscape(sys.tracker->name())
        << "\",\n";
    out << "  \"numCores\": " << sys.cfg.numCores << ",\n";
    out << "  \"accessCount\": " << accessCount << ",\n";
    out << "  \"execCycles\": " << sys.execCycles() << ",\n";

    out << "  \"violations\": [\n";
    for (std::size_t i = 0; i < report.violations.size(); ++i) {
        const Violation &v = report.violations[i];
        out << "    {\"rule\": \"" << jsonEscape(v.rule)
            << "\", \"block\": " << v.block << ", \"detail\": \""
            << jsonEscape(v.detail) << "\"}"
            << (i + 1 < report.violations.size() ? "," : "") << "\n";
    }
    out << "  ],\n";

    // Per-block diagnostic context, deduplicated.
    out << "  \"blocks\": [\n";
    std::vector<Addr> blocks;
    for (const Violation &v : report.violations) {
        if (v.block == invalidAddr)
            continue;
        bool seen = false;
        for (Addr b : blocks)
            seen |= b == v.block;
        if (!seen)
            blocks.push_back(v.block);
    }
    for (std::size_t i = 0; i < blocks.size(); ++i) {
        out << "    ";
        jsonBlockContext(out, sys, blocks[i]);
        out << (i + 1 < blocks.size() ? "," : "") << "\n";
    }
    out << "  ],\n";

    // Last few home transactions: the context needed to replay the
    // corruption.
    out << "  \"recentTxns\": [\n";
    const std::vector<TxnRecord> txns = sys.recentTxns();
    for (std::size_t i = 0; i < txns.size(); ++i) {
        const TxnRecord &t = txns[i];
        out << "    {\"when\": " << t.when << ", \"core\": "
            << static_cast<unsigned>(t.core) << ", \"block\": "
            << t.block << ", \"type\": \"" << toString(t.type)
            << "\", \"notice\": " << (t.isNotice ? "true" : "false")
            << ", \"put\": \"" << toString(t.put) << "\"}"
            << (i + 1 < txns.size() ? "," : "") << "\n";
    }
    out << "  ]\n}\n";
    return path;
}

} // namespace tinydir
