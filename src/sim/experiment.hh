/**
 * @file
 * Experiment harness: one-call runs of (configuration x workload)
 * pairs, bench-scale selection, and figure-style table printing.
 *
 * Every bench binary under bench/ is a thin main() over these
 * helpers: it builds the scheme list its figure compares, runs all 17
 * workloads, and prints rows normalized against the figure's baseline.
 */

#ifndef TINYDIR_SIM_EXPERIMENT_HH
#define TINYDIR_SIM_EXPERIMENT_HH

#include <iosfwd>
#include <string>
#include <vector>

#include "common/config.hh"
#include "common/stats.hh"
#include "workload/profile.hh"

namespace tinydir
{

/** Output of one simulated run. */
struct RunOut
{
    Cycle execCycles = 0;
    Counter accesses = 0;
    StatsDump stats;
};

/**
 * Run @p prof on a system configured by @p cfg. The first
 * @p warmup_per_core accesses of each core warm the caches and
 * policies; statistics cover only the remainder.
 */
RunOut runOne(const SystemConfig &cfg, const WorkloadProfile &prof,
              std::uint64_t accesses_per_core,
              std::uint64_t warmup_per_core = 0);

/** Bench scale chosen from argv/environment. */
struct BenchScale
{
    unsigned cores = 16;
    std::uint64_t accessesPerCore = 20000;
    std::uint64_t warmupPerCore = 10000;
    bool full = false;    //!< paper-scale (128 cores, Table I sizes)
    bool quick = false;   //!< CI-quick subset
    std::vector<std::string> onlyApps; //!< restrict workload list
};

/**
 * Parse --full / --quick / --cores=N / --accesses=N / --app=NAME
 * (repeatable) plus the TINYDIR_FULL / TINYDIR_QUICK environment
 * variables.
 */
BenchScale parseBenchScale(int argc, char **argv);

/** The profiles selected by a scale (all 17 unless restricted). */
std::vector<const WorkloadProfile *> selectApps(const BenchScale &s);

/** Base system config for a scale (cores + seed; tracker unset). */
SystemConfig baseConfig(const BenchScale &s);

/** Figure-style table: rows = workloads, columns = schemes. */
class ResultTable
{
  public:
    ResultTable(std::string title, std::vector<std::string> columns);

    void addRow(const std::string &name, std::vector<double> values);

    /**
     * Print all rows plus an arithmetic-mean Average row. Setting the
     * TINYDIR_CSV=1 environment variable switches every bench to
     * machine-readable CSV.
     */
    void print(std::ostream &os, int precision = 4,
               bool with_average = true) const;

    /** CSV form (also reachable via TINYDIR_CSV=1). */
    void printCsv(std::ostream &os, bool with_average = true) const;

    /** Arithmetic mean of one column over all rows. */
    double columnAverage(unsigned col) const;

  private:
    std::string title;
    std::vector<std::string> cols;
    std::vector<std::pair<std::string, std::vector<double>>> rows;
};

} // namespace tinydir

#endif // TINYDIR_SIM_EXPERIMENT_HH
