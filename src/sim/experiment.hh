/**
 * @file
 * Experiment harness: one-call runs of (configuration x workload)
 * pairs, bench-scale selection, and figure-style table printing.
 *
 * Every bench binary under bench/ is a thin main() over these
 * helpers: it builds the scheme list its figure compares, runs all 17
 * workloads, and prints rows normalized against the figure's baseline.
 */

#ifndef TINYDIR_SIM_EXPERIMENT_HH
#define TINYDIR_SIM_EXPERIMENT_HH

#include <iosfwd>
#include <string>
#include <utility>
#include <vector>

#include "common/config.hh"
#include "common/stats.hh"
#include "workload/profile.hh"

namespace tinydir
{

/** Output of one simulated run. */
struct RunOut
{
    /**
     * Cycles of the measured (post-warmup) region — identical to the
     * exec_cycles stat. Scheme-vs-scheme execution-time ratios must
     * use this, not totalCycles: the warmup half of the trace would
     * otherwise dilute them.
     */
    Cycle execCycles = 0;
    /** Raw run length including the warmup phase. */
    Cycle totalCycles = 0;
    Counter accesses = 0;
    /** Host wall time spent inside Driver::run (setup excluded). */
    double wallSeconds = 0.0;
    /**
     * Simulated accesses per host-second for this run: the simulator
     * throughput metric the perf regression guard (bench_hotpath)
     * tracks. Derived from accesses / wallSeconds; 0 when the run was
     * too fast for the clock to resolve.
     */
    double accessesPerSec = 0.0;
    StatsDump stats;
};

/**
 * Robustness controls for one simulated run: periodic invariant
 * verification (verify/verifier.hh) and a wall-clock watchdog. Shared
 * by runOne() and the parallel runner (sim/parallel.hh), which turns
 * the resulting InvariantViolation / SimTimeout into failed cells.
 */
struct RunControls
{
    /** Verify coherence invariants every N accesses (0 = off). */
    Counter verifyPeriod = 0;
    /** Per-run wall-clock limit in seconds (0 = unlimited). */
    double timeoutSeconds = 0.0;
    /** Violation-dump directory ("" = $TINYDIR_DUMP_DIR, else cwd). */
    std::string dumpDir;
    /** Scheme/workload context for error messages and dump names. */
    std::string label;

    bool any() const { return verifyPeriod > 0 || timeoutSeconds > 0; }
};

/**
 * Controls taken from the environment: TINYDIR_VERIFY (verification
 * period in accesses) and TINYDIR_TIMEOUT (wall-clock seconds).
 * Malformed values warn and are ignored.
 */
RunControls envRunControls();

/**
 * Run @p prof on a system configured by @p cfg. The first
 * @p warmup_per_core accesses of each core warm the caches and
 * policies; statistics cover only the remainder. With non-default
 * @p ctl the run verifies invariants periodically (throwing
 * InvariantViolation on corruption) and enforces the wall-clock
 * watchdog (throwing SimTimeout).
 */
RunOut runOne(const SystemConfig &cfg, const WorkloadProfile &prof,
              std::uint64_t accesses_per_core,
              std::uint64_t warmup_per_core = 0,
              const RunControls &ctl = {});

/** Bench scale chosen from argv/environment. */
struct BenchScale
{
    unsigned cores = 16;
    std::uint64_t accessesPerCore = 20000;
    std::uint64_t warmupPerCore = 10000;
    /** Simulation worker threads (0 = TINYDIR_JOBS, else hardware). */
    unsigned jobs = 0;
    bool full = false;    //!< paper-scale (128 cores, Table I sizes)
    bool quick = false;   //!< CI-quick subset
    /** Fail fast: abort the whole grid on the first failed cell. */
    bool strict = false;
    std::vector<std::string> onlyApps; //!< restrict workload list
    /** Per-cell verification/watchdog controls (label set per job). */
    RunControls controls;
};

/**
 * Parse --full / --quick / --cores=N / --accesses=N / --warmup=N /
 * --jobs=N / --app=NAME (repeatable) / --strict / --verify=N /
 * --timeout=N plus the TINYDIR_FULL / TINYDIR_QUICK / TINYDIR_JOBS /
 * TINYDIR_STRICT / TINYDIR_VERIFY / TINYDIR_TIMEOUT environment
 * variables.
 *
 * Explicit flags win over the --full/--quick presets; combining
 * --full with --quick warns and keeps --full. Numeric flags must be
 * positive integers: garbage or zero is rejected with fatal().
 */
BenchScale parseBenchScale(int argc, char **argv);

/** The profiles selected by a scale (all 17 unless restricted). */
std::vector<const WorkloadProfile *> selectApps(const BenchScale &s);

/** Base system config for a scale (cores + seed; tracker unset). */
SystemConfig baseConfig(const BenchScale &s);

/** Figure-style table: rows = workloads, columns = schemes. */
class ResultTable
{
  public:
    ResultTable(std::string title, std::vector<std::string> columns);

    void addRow(const std::string &name, std::vector<double> values);

    /**
     * Print all rows plus an arithmetic-mean Average row. Setting the
     * TINYDIR_CSV=1 environment variable switches every bench to
     * machine-readable CSV.
     */
    void print(std::ostream &os, int precision = 4,
               bool with_average = true) const;

    /** CSV form (also reachable via TINYDIR_CSV=1). */
    void printCsv(std::ostream &os, bool with_average = true) const;

    /** Arithmetic mean of one column over all rows. */
    double columnAverage(unsigned col) const;

    const std::string &tableTitle() const { return title; }
    const std::vector<std::string> &columns() const { return cols; }
    const std::vector<std::pair<std::string, std::vector<double>>> &
    rowData() const
    {
        return rows;
    }

  private:
    std::string title;
    std::vector<std::string> cols;
    std::vector<std::pair<std::string, std::vector<double>>> rows;
};

/** One failed grid cell, for reports and the JSON dump. */
struct BenchFailure
{
    std::string error;    //!< scheme/workload identity + what happened
    std::string dumpPath; //!< violation dump, when one was written
    bool timedOut = false;
};

/** Wall-time accounting for one tabulated experiment. */
struct BenchTiming
{
    double wallSeconds = 0.0; //!< end-to-end matrix wall time
    double simSeconds = 0.0;  //!< summed per-simulation wall time
    unsigned jobs = 1;        //!< worker threads used
    unsigned simsRun = 0;     //!< simulations actually executed
    unsigned simsMemoized = 0; //!< cells served from identical jobs
    /** Simulated accesses summed over the executed (non-memoized) sims. */
    Counter simAccesses = 0;
    /** Summed time inside Driver::run (per-sim setup excluded). */
    double runSeconds = 0.0;
    std::vector<BenchFailure> failures; //!< failed cells (partial run)

    /** Aggregate throughput: simulated accesses per Driver::run second. */
    double
    accessesPerSec() const
    {
        return runSeconds > 0.0
                   ? static_cast<double>(simAccesses) / runSeconds
                   : 0.0;
    }
};

/** Path of the machine-readable results dump (TINYDIR_JSON), or "". */
std::string jsonResultsPath();

/**
 * Append one JSON-lines record (title, scale, per-cell values, wall
 * time) for @p table to @p path. Benches call this automatically when
 * TINYDIR_JSON is set, so a whole suite run can share one file.
 */
void appendJsonResults(const std::string &path, const ResultTable &table,
                       const BenchScale &scale,
                       const BenchTiming &timing);

} // namespace tinydir

#endif // TINYDIR_SIM_EXPERIMENT_HH
