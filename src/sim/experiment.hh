/**
 * @file
 * Experiment harness: one-call runs of (configuration x workload)
 * pairs, bench-scale selection, and figure-style table printing.
 *
 * Every bench binary under bench/ is a thin main() over these
 * helpers: it builds the scheme list its figure compares, runs all 17
 * workloads, and prints rows normalized against the figure's baseline.
 */

#ifndef TINYDIR_SIM_EXPERIMENT_HH
#define TINYDIR_SIM_EXPERIMENT_HH

#include <iosfwd>
#include <string>
#include <utility>
#include <vector>

#include "common/config.hh"
#include "common/stats.hh"
#include "workload/profile.hh"

namespace tinydir
{

/** Output of one simulated run. */
struct RunOut
{
    /**
     * Cycles of the measured (post-warmup) region — identical to the
     * exec_cycles stat. Scheme-vs-scheme execution-time ratios must
     * use this, not totalCycles: the warmup half of the trace would
     * otherwise dilute them.
     */
    Cycle execCycles = 0;
    /** Raw run length including the warmup phase. */
    Cycle totalCycles = 0;
    Counter accesses = 0;
    /** Host wall time spent inside Driver::run (setup excluded). */
    double wallSeconds = 0.0;
    /**
     * Simulated accesses per host-second for this run: the simulator
     * throughput metric the perf regression guard (bench_hotpath)
     * tracks. Derived from the accesses this process actually
     * executed (accesses - resumedAt) / wallSeconds; 0 when the run
     * was too fast for the clock to resolve.
     */
    double accessesPerSec = 0.0;
    /**
     * Accesses that were already executed when the run started (loaded
     * from a checkpoint); 0 for a fresh run. accesses includes them —
     * accesses - resumedAt is the work this process performed.
     */
    Counter resumedAt = 0;
    StatsDump stats;

    // -- parallel-engine telemetry (sim/shard.hh) -----------------------
    // Host-side execution facts, deliberately NOT part of stats:
    // TINYDIR_JSON output must be identical across thread counts.

    /** Worker threads the run actually used (1 = serial driver). */
    unsigned simThreads = 1;
    /** Relaxed-epoch barriers crossed (0 in serial/exact runs). */
    Counter epochs = 0;
    /** Largest (issue - epoch start) observed; < epoch by design. */
    Cycle maxObservedSkew = 0;
    /** Eviction notices routed through cross-shard mailboxes. */
    Counter crossShardNotices = 0;
    /** Requests softened by the relaxed protocol (skew races). */
    Counter softenedRequests = 0;
    /** Stale eviction notices dropped by the relaxed protocol. */
    Counter staleNotices = 0;
};

/**
 * Robustness controls for one simulated run: periodic invariant
 * verification (verify/verifier.hh) and a wall-clock watchdog. Shared
 * by runOne() and the parallel runner (sim/parallel.hh), which turns
 * the resulting InvariantViolation / SimTimeout into failed cells.
 */
struct RunControls
{
    /** Verify coherence invariants every N accesses (0 = off). */
    Counter verifyPeriod = 0;
    /** Per-run wall-clock limit in seconds (0 = unlimited). */
    double timeoutSeconds = 0.0;
    /** Violation-dump directory ("" = $TINYDIR_DUMP_DIR, else cwd). */
    std::string dumpDir;
    /** Scheme/workload context for error messages and dump names. */
    std::string label;

    // -- checkpoint/restore (ckpt/ckpt.hh) ------------------------------
    /** Write a checkpoint here ("" = no checkpointing). */
    std::string checkpointPath;
    /** Rewrite checkpointPath every N accesses (0 = only on early
     *  stop / interrupt). */
    Counter checkpointEvery = 0;
    /** Restore the run from this checkpoint before simulating. */
    std::string resumePath;
    /**
     * Allow restoring a checkpoint whose configuration differs in
     * tracker-only fields: the tracker is rebuilt from the restored
     * caches (warmup fast-forward). Without it, any config mismatch
     * refuses the restore with CheckpointError.
     */
    bool resumeFastForward = false;
    /**
     * Stop (without finalizing) after this many total accesses; used
     * to cut a run at an exact boundary when generating checkpoints.
     */
    Counter stopAfterAccesses = 0;

    // -- parallel engine (sim/shard.hh) ---------------------------------
    /**
     * Simulation worker threads for ONE run (distinct from
     * BenchScale::jobs, which parallelizes across independent runs).
     * 1 = the serial driver.
     */
    unsigned simThreads = 1;
    /**
     * Relaxed-lockstep epoch window in cycles; 0 = exact lockstep
     * (bit-identical to serial for every tracker). Positive values
     * trade exactness for speed with divergence bounded by the skew
     * window; periodic verification is then skipped with a warning
     * (the invariants legitimately wobble within an epoch).
     */
    Cycle simEpoch = 0;

    bool any() const { return verifyPeriod > 0 || timeoutSeconds > 0; }
};

/**
 * Controls taken from the environment: TINYDIR_VERIFY (verification
 * period in accesses) and TINYDIR_TIMEOUT (wall-clock seconds).
 * Malformed values warn and are ignored.
 */
RunControls envRunControls();

/**
 * Run @p prof on a system configured by @p cfg. The first
 * @p warmup_per_core accesses of each core warm the caches and
 * policies; statistics cover only the remainder. With non-default
 * @p ctl the run verifies invariants periodically (throwing
 * InvariantViolation on corruption) and enforces the wall-clock
 * watchdog (throwing SimTimeout).
 */
RunOut runOne(const SystemConfig &cfg, const WorkloadProfile &prof,
              std::uint64_t accesses_per_core,
              std::uint64_t warmup_per_core = 0,
              const RunControls &ctl = {});

/**
 * The warmup length runOne() actually uses for @p warmup_per_core:
 * extended to cover the workload's deterministic prologue plus
 * steady-state settling (0 stays 0). Exposed so the warmup
 * fast-forward path (sim/parallel.cc) can cut its shared snapshots at
 * exactly the boundary runOne() will expect.
 */
std::uint64_t effectiveWarmupPerCore(const SystemConfig &cfg,
                                     const WorkloadProfile &prof,
                                     std::uint64_t warmup_per_core);

/** Bench scale chosen from argv/environment. */
struct BenchScale
{
    unsigned cores = 16;
    std::uint64_t accessesPerCore = 20000;
    std::uint64_t warmupPerCore = 10000;
    /** Simulation worker threads (0 = TINYDIR_JOBS, else hardware). */
    unsigned jobs = 0;
    bool full = false;    //!< paper-scale (128 cores, Table I sizes)
    bool quick = false;   //!< CI-quick subset
    /** Fail fast: abort the whole grid on the first failed cell. */
    bool strict = false;
    std::vector<std::string> onlyApps; //!< restrict workload list
    /** Per-cell verification/watchdog/checkpoint controls. */
    RunControls controls;
    /**
     * Warmup fast-forward snapshot directory (--warmup-ff[=DIR] /
     * TINYDIR_WARMUP_FF). Non-empty = grids snapshot each workload
     * once at end-of-warmup and every scheme restores from it.
     */
    std::string warmupSnapshotDir;
};

/**
 * Parse --full / --quick / --cores=N / --accesses=N / --warmup=N /
 * --jobs=N / --app=NAME (repeatable) / --strict / --verify=N /
 * --timeout=N / --checkpoint=PATH / --checkpoint-every=N /
 * --resume=PATH / --warmup-ff[=DIR] / --threads=N (per-run simulation
 * worker threads) / --epoch=N (relaxed-lockstep window in cycles,
 * 0 = exact) plus the TINYDIR_FULL / TINYDIR_QUICK / TINYDIR_JOBS /
 * TINYDIR_STRICT / TINYDIR_VERIFY / TINYDIR_TIMEOUT /
 * TINYDIR_WARMUP_FF / TINYDIR_THREADS / TINYDIR_EPOCH environment
 * variables. Also
 * installs the SIGINT/SIGTERM handlers (ckpt/ckpt.hh) so interrupted
 * grids flush a final checkpoint and their partial results.
 *
 * Explicit flags win over the --full/--quick presets; combining
 * --full with --quick warns and keeps --full. Numeric flags must be
 * positive integers: garbage or zero is rejected with fatal().
 */
BenchScale parseBenchScale(int argc, char **argv);

/** The profiles selected by a scale (all 17 unless restricted). */
std::vector<const WorkloadProfile *> selectApps(const BenchScale &s);

/** Base system config for a scale (cores + seed; tracker unset). */
SystemConfig baseConfig(const BenchScale &s);

/** Figure-style table: rows = workloads, columns = schemes. */
class ResultTable
{
  public:
    ResultTable(std::string title, std::vector<std::string> columns);

    void addRow(const std::string &name, std::vector<double> values);

    /**
     * Print all rows plus an arithmetic-mean Average row. Setting the
     * TINYDIR_CSV=1 environment variable switches every bench to
     * machine-readable CSV.
     */
    void print(std::ostream &os, int precision = 4,
               bool with_average = true) const;

    /** CSV form (also reachable via TINYDIR_CSV=1). */
    void printCsv(std::ostream &os, bool with_average = true) const;

    /** Arithmetic mean of one column over all rows. */
    double columnAverage(unsigned col) const;

    const std::string &tableTitle() const { return title; }
    const std::vector<std::string> &columns() const { return cols; }
    const std::vector<std::pair<std::string, std::vector<double>>> &
    rowData() const
    {
        return rows;
    }

  private:
    std::string title;
    std::vector<std::string> cols;
    std::vector<std::pair<std::string, std::vector<double>>> rows;
};

/** One failed grid cell, for reports and the JSON dump. */
struct BenchFailure
{
    std::string error;    //!< scheme/workload identity + what happened
    std::string dumpPath; //!< violation dump, when one was written
    bool timedOut = false;
};

/** Wall-time accounting for one tabulated experiment. */
struct BenchTiming
{
    double wallSeconds = 0.0; //!< end-to-end matrix wall time
    double simSeconds = 0.0;  //!< summed per-simulation wall time
    unsigned jobs = 1;        //!< worker threads used
    unsigned simsRun = 0;     //!< simulations actually executed
    unsigned simsMemoized = 0; //!< cells served from identical jobs
    /** Simulated accesses summed over the executed (non-memoized) sims. */
    Counter simAccesses = 0;
    /** Summed time inside Driver::run (per-sim setup excluded). */
    double runSeconds = 0.0;
    std::vector<BenchFailure> failures; //!< failed cells (partial run)

    /** Aggregate throughput: simulated accesses per Driver::run second. */
    double
    accessesPerSec() const
    {
        return runSeconds > 0.0
                   ? static_cast<double>(simAccesses) / runSeconds
                   : 0.0;
    }
};

/** Path of the machine-readable results dump (TINYDIR_JSON), or "". */
std::string jsonResultsPath();

/**
 * Append one JSON-lines record (title, scale, per-cell values, wall
 * time) for @p table to @p path. Benches call this automatically when
 * TINYDIR_JSON is set, so a whole suite run can share one file.
 */
void appendJsonResults(const std::string &path, const ResultTable &table,
                       const BenchScale &scale,
                       const BenchTiming &timing);

} // namespace tinydir

#endif // TINYDIR_SIM_EXPERIMENT_HH
