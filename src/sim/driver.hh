/**
 * @file
 * Simulation driver: replays every core's access stream against a
 * System in global issue-time order.
 *
 * Each core keeps its own clock; the driver picks the core with the
 * earliest pending issue time (a binary heap), executes the access
 * atomically, and advances that core's clock to the completion time.
 * This keeps the inter-core interleaving consistent with the timing
 * the memory system produces, which is what the tracking schemes
 * differentiate on.
 */

#ifndef TINYDIR_SIM_DRIVER_HH
#define TINYDIR_SIM_DRIVER_HH

#include <functional>
#include <memory>
#include <vector>

#include "core/trace.hh"
#include "sim/system.hh"

namespace tinydir
{

/** Outcome of a driven run. */
struct RunResult
{
    Cycle execCycles = 0;
    Counter accesses = 0;
};

/**
 * The driver's replay position: the executed-access count plus the
 * one in-flight pending access per core. Together with the System and
 * stream states this is everything a checkpoint needs to resume a run
 * mid-flight (ckpt/ckpt.hh).
 */
struct DriverProgress
{
    Counter accesses = 0;
    unsigned live = 0;
    std::vector<Cycle> issues;
    std::vector<TraceAccess> pending;

    /** Serialize the progress record (ckpt/). */
    template <typename W>
    void
    saveState(W &w) const
    {
        w.u64(accesses);
        w.u32(live);
        w.u64(issues.size());
        for (Cycle c : issues)
            w.u64(c);
        for (const TraceAccess &a : pending) {
            w.u64(a.gap);
            w.u8(static_cast<std::uint8_t>(a.type));
            w.u64(a.addr);
        }
    }

    /** Restore a record written by saveState. */
    template <typename R>
    void
    loadState(R &r)
    {
        accesses = r.u64();
        live = r.u32();
        const std::uint64_t n = r.u64();
        issues.resize(static_cast<std::size_t>(n));
        pending.resize(static_cast<std::size_t>(n));
        for (auto &c : issues)
            c = r.u64();
        for (auto &a : pending) {
            a.gap = r.u64();
            const std::uint8_t t = r.u8();
            if (t > static_cast<std::uint8_t>(AccessType::Ifetch))
                throw CheckpointError(
                    "checkpoint corrupt: access type " +
                    std::to_string(t));
            a.type = static_cast<AccessType>(t);
            a.addr = r.u64();
        }
    }
};

/** Replays streams to completion. */
class Driver
{
  public:
    /**
     * Optional periodic hook (e.g. invariant checks in tests): called
     * every @p hookPeriod accesses with the running access count.
     */
    std::function<void(System &, Counter)> hook;
    Counter hookPeriod = 0;

    /**
     * Total accesses (across all cores) to execute before resetting
     * the statistics: the measured region then reflects steady state.
     */
    Counter warmupAccesses = 0;

    /**
     * Wall-clock watchdog: when positive, run() throws SimTimeout once
     * the run has taken this many real seconds. Checked cooperatively
     * every timeoutCheckPeriod accesses, so a hung run is detected
     * promptly while the deadline check stays off the hot path.
     */
    double timeoutSeconds = 0.0;

    /** How often (in accesses) the wall-clock deadline is polled. */
    static constexpr Counter timeoutCheckPeriod = 4096;

    /**
     * Checkpoint sink, called with a consistent (system, streams,
     * progress) triple every checkpointEvery accesses and once more
     * when an interrupt is being honored. The ckpt layer installs a
     * closure that writes the checkpoint file.
     */
    std::function<void(System &,
                       const std::vector<std::unique_ptr<AccessStream>> &,
                       const DriverProgress &)>
        checkpointSink;

    /** Invoke checkpointSink every this many accesses (0 = never). */
    Counter checkpointEvery = 0;

    /**
     * Stop early — without finalizing the system — once this many
     * accesses have executed (0 = run to stream exhaustion). Used by
     * the checkpoint tests to split a run at an exact boundary.
     */
    Counter stopAfterAccesses = 0;

    /**
     * Replay @p streams against @p sys. When @p resume is non-null the
     * driver starts from that recorded position instead of priming the
     * per-core pending slots from the streams (the streams must have
     * been restored to matching positions).
     *
     * Honors ckpt::interruptRequested() at timeoutCheckPeriod cadence:
     * flushes a final checkpoint through checkpointSink and throws
     * SimInterrupt.
     */
    RunResult run(System &sys,
                  std::vector<std::unique_ptr<AccessStream>> streams,
                  const DriverProgress *resume = nullptr);
};

} // namespace tinydir

#endif // TINYDIR_SIM_DRIVER_HH
