/**
 * @file
 * Simulation driver: replays every core's access stream against a
 * System in global issue-time order.
 *
 * Each core keeps its own clock; the driver picks the core with the
 * earliest pending issue time (a binary heap), executes the access
 * atomically, and advances that core's clock to the completion time.
 * This keeps the inter-core interleaving consistent with the timing
 * the memory system produces, which is what the tracking schemes
 * differentiate on.
 */

#ifndef TINYDIR_SIM_DRIVER_HH
#define TINYDIR_SIM_DRIVER_HH

#include <functional>
#include <memory>
#include <vector>

#include "core/trace.hh"
#include "sim/system.hh"

namespace tinydir
{

/** Outcome of a driven run. */
struct RunResult
{
    Cycle execCycles = 0;
    Counter accesses = 0;
};

/** Replays streams to completion. */
class Driver
{
  public:
    /**
     * Optional periodic hook (e.g. invariant checks in tests): called
     * every @p hookPeriod accesses with the running access count.
     */
    std::function<void(System &, Counter)> hook;
    Counter hookPeriod = 0;

    /**
     * Total accesses (across all cores) to execute before resetting
     * the statistics: the measured region then reflects steady state.
     */
    Counter warmupAccesses = 0;

    /**
     * Wall-clock watchdog: when positive, run() throws SimTimeout once
     * the run has taken this many real seconds. Checked cooperatively
     * every timeoutCheckPeriod accesses, so a hung run is detected
     * promptly while the deadline check stays off the hot path.
     */
    double timeoutSeconds = 0.0;

    /** How often (in accesses) the wall-clock deadline is polled. */
    static constexpr Counter timeoutCheckPeriod = 4096;

    RunResult run(System &sys,
                  std::vector<std::unique_ptr<AccessStream>> streams);
};

} // namespace tinydir

#endif // TINYDIR_SIM_DRIVER_HH
