/**
 * @file
 * Full-system assembly: cores + private hierarchies + mesh + LLC +
 * DRAM + the configured coherence tracker, glued by the engine.
 *
 * This is the library's main entry point: construct a System from a
 * SystemConfig, feed it accesses (directly or through sim/driver.hh),
 * then read the statistics dump.
 */

#ifndef TINYDIR_SIM_SYSTEM_HH
#define TINYDIR_SIM_SYSTEM_HH

#include <array>
#include <cstddef>
#include <memory>
#include <string>
#include <vector>

#include "cache/llc.hh"
#include "common/config.hh"
#include "common/log.hh"
#include "common/stats.hh"
#include "core/core.hh"
#include "core/private_cache.hh"
#include "core/trace.hh"
#include "mem/dram.hh"
#include "noc/mesh.hh"
#include "proto/engine.hh"
#include "proto/tracker.hh"

namespace tinydir
{

/**
 * One recently processed home transaction (request or eviction
 * notice), kept in a small ring buffer for invariant-violation dumps:
 * when the verifier trips, the last few transactions are the context
 * a debugger needs to replay the corruption.
 */
struct TxnRecord
{
    Cycle when = 0;
    CoreId core = invalidCore;
    Addr block = 0;
    ReqType type = ReqType::GetS;
    bool isNotice = false;       //!< eviction notice, not a request
    MesiState put = MesiState::I; //!< private state put back (notices)
};

/** A complete simulated chip-multiprocessor. */
class System
{
  public:
    explicit System(const SystemConfig &cfg);

    /**
     * Execute one memory access of core @p c issued at @p issue.
     * @return absolute completion time (>= issue).
     */
    Cycle executeAccess(CoreId c, const TraceAccess &acc, Cycle issue);

    /**
     * The one MESI access flow, parameterized over an execution
     * context that supplies locking, engine routing and notice
     * delivery. The serial executeAccess() instantiates it with no-op
     * locks and the system engine; the parallel driver (sim/shard.hh)
     * instantiates it with shard-routing contexts. Keeping a single
     * flow is what makes "exact lockstep reproduces serial stats
     * bit-identically" a structural property instead of a test hope.
     *
     * The Ex contract:
     *  - `NoticeVec &scratch()`: per-context notice buffer;
     *  - `lockPriv(c)/unlockPriv(c)`: core @p c's private-hierarchy
     *    lock (no-ops when single-threaded);
     *  - `request(...)`: route to the home engine. On return the home
     *    lock is STILL HELD (so the grant and the private fill below
     *    are atomic against other cores' forwards to this block);
     *  - `finishRequest(block)`: release that home lock;
     *  - `notice(c, block, st, t)`: deliver an eviction notice to the
     *    block's home (same shard: inline; cross-shard: mailbox);
     *  - `static constexpr bool debugTxn`: emit txn-ring entries and
     *    observer events (single-threaded contexts only).
     *
     * Lock order is always priv -> release -> home -> priv: the flow
     * never takes a home lock while holding a priv lock.
     */
    // TDLINT: hot
    template <typename Ex>
    Cycle
    accessFlow(Ex &ex, CoreId c, const TraceAccess &acc, Cycle issue)
    {
        panic_if(c >= cfg.numCores, "bad core id");
        const Addr block = blockNumber(acc.addr);
        Core &core = cores[c];
        switch (acc.type) {
          case AccessType::Load: ++core.loads; break;
          case AccessType::Store: ++core.stores; break;
          case AccessType::Ifetch: ++core.ifetches; break;
        }

        NoticeVec &scratch = ex.scratch();
        scratch.clear();
        ex.lockPriv(c);
        const auto ar = privs[c].access(block, acc.type, scratch);
        // Silent E->M upgrade under the same lock hold as the probe;
        // the home keeps seeing "exclusively owned". Commutes with the
        // (different-block) refill notices dispatched below.
        const bool silent_em = ar.present &&
            acc.type == AccessType::Store && ar.state == MesiState::E;
        if (silent_em)
            privs[c].setState(block, MesiState::M);
        ex.unlockPriv(c);
        for (const auto &n : scratch)
            ex.notice(c, n.block, n.state, issue);

        // Observer emissions: completions of purely local accesses and
        // of home transactions. Cold lambdas; with no observer
        // installed the only cost on the access path is the null
        // checks below.
        auto emitLocal = [&](MesiState st, Cycle done) {
            AccessObservation o;
            o.core = c;
            o.block = block;
            o.type = acc.type;
            o.privPresent = true;
            o.privState = st;
            o.issue = issue;
            o.done = done;
            observer->onAccess(o);
        };
        auto emitReq = [&](bool present, MesiState st, ReqType rt,
                           const RequestResult &rr) {
            AccessObservation o;
            o.core = c;
            o.block = block;
            o.type = acc.type;
            o.privPresent = present;
            o.privState = st;
            o.requested = true;
            o.req = rt;
            o.grant = rr.grant;
            o.src = rr.src;
            o.pre = rr.pre;
            o.issue = issue;
            o.done = rr.done;
            observer->onAccess(o);
        };

        if (ar.present) {
            if (acc.type == AccessType::Store &&
                ar.state == MesiState::S) {
                ++core.upgrades;
                if constexpr (Ex::debugTxn) {
                    noteTxn({issue + ar.latency, c, block, ReqType::Upg,
                             false, MesiState::I});
                }
                auto rr = ex.request(c, block, ReqType::Upg,
                                     issue + ar.latency);
                ex.lockPriv(c);
                scratch.clear();
                bool filled = false;
                if (privs[c].present(block)) {
                    privs[c].setState(block, MesiState::M);
                } else {
                    // Relaxed epochs only: the S copy was invalidated
                    // while the (softened) upgrade was in flight at the
                    // home; install the granted M copy instead.
                    privs[c].fill(block, rr.grant, acc.type, scratch);
                    filled = true;
                }
                ex.unlockPriv(c);
                ex.finishRequest(block);
                if (filled) {
                    for (const auto &n : scratch)
                        ex.notice(c, n.block, n.state, rr.done);
                }
                if constexpr (Ex::debugTxn) {
                    if (observer)
                        emitReq(true, MesiState::S, ReqType::Upg, rr);
                }
                return rr.done;
            }
            panic_if(acc.type == AccessType::Store &&
                     ar.state == MesiState::I,
                     "present block in I state");
            ++core.privHits;
            if constexpr (Ex::debugTxn) {
                if (observer)
                    emitLocal(silent_em ? MesiState::E : ar.state,
                              issue + ar.latency);
            }
            return issue + ar.latency;
        }

        ++core.misses;
        ReqType rt;
        switch (acc.type) {
          case AccessType::Load: rt = ReqType::GetS; break;
          case AccessType::Store: rt = ReqType::GetX; break;
          default: rt = ReqType::GetSI; break;
        }
        if constexpr (Ex::debugTxn) {
            noteTxn({issue + ar.latency, c, block, rt, false,
                     MesiState::I});
        }
        auto rr = ex.request(c, block, rt, issue + ar.latency);
        ex.lockPriv(c);
        scratch.clear();
        privs[c].fill(block, rr.grant, acc.type, scratch);
        ex.unlockPriv(c);
        ex.finishRequest(block);
        for (const auto &n : scratch)
            ex.notice(c, n.block, n.state, rr.done);
        if constexpr (Ex::debugTxn) {
            if (observer)
                emitReq(false, MesiState::I, rt, rr);
        }
        return rr.done;
    }

    /**
     * Debug half of a notice dispatch (txn ring + observer event);
     * execution contexts call this right before routing the notice to
     * the home engine. Single-threaded contexts only.
     */
    void
    noteNoticeDebug(CoreId c, Addr block, MesiState st, Cycle t)
    {
        noteTxn({t, c, block, ReqType::GetS, true, st});
        if (observer)
            observer->onNotice(c, block, st);
    }

    /**
     * Warm the caches for an access about to execute: decompose the
     * address, touch core @p c's private-hierarchy lookup structure
     * and the home LLC set's tag lane. Purely a host-side performance
     * hint issued by the batched driver front-end for every member of
     * a batch before the serialized executeAccess calls run; it has no
     * simulation-visible effect.
     *
     * Hot-annotated: it runs once per batched access, so the tdlint
     * allocation-freedom walk must cover it and everything it calls
     * (FlatMap::prefetch, Llc::locate/prefetchSet).
     */
    // TDLINT: hot
    void
    prefetchAccess(CoreId c, Addr addr) const
    {
        const Addr block = blockNumber(addr);
        privs[c].prefetch(block);
        llc.prefetchSet(llc.locate(block));
    }

    /** Flush residual residency statistics (end of simulation). */
    void finalize();

    /**
     * End-of-warmup reset: clear every measurement counter while
     * keeping all cache/directory state, so the dump reflects steady
     * state. Execution cycles reported afterwards are relative to the
     * reset point.
     */
    void resetStats();

    /** Full statistics dump (execution, traffic, residency, energy). */
    StatsDump dump() const;

    /**
     * Install (or remove, with nullptr) a per-access observer fed with
     * every externally visible protocol event (proto/observe.hh). The
     * differential oracle (src/oracle) attaches here; with no observer
     * the access path is unchanged.
     */
    void
    setObserver(AccessObserver *o)
    {
        observer = o;
        engine.setObserver(o);
    }

    /**
     * The installed observer (nullptr when none). The parallel driver
     * wires exact-lockstep shard engines to it so the observer event
     * stream matches serial execution; relaxed mode refuses observers.
     */
    AccessObserver *observerPtr() const { return observer; }

    /**
     * Verify global coherence invariants against the ground truth of
     * the private hierarchies: single-owner for E/M, exact sharer
     * sets, and no untracked cached blocks (modulo the coarse-grain
     * and broadcast-recovery schemes, which are checked accordingly).
     * @retval true when every invariant holds; otherwise @p msg (when
     * non-null) describes the first violation.
     */
    bool verifyCoherence(std::string *msg = nullptr);

    const SystemConfig cfg; //!< owning copy; components reference it
    Mesh mesh;
    Dram dram;
    Llc llc;
    std::vector<PrivateCache> privs;
    std::vector<Core> cores;
    Engine engine;
    std::unique_ptr<CoherenceTracker> tracker;

    /** Execution time so far: max core clock. */
    Cycle execCycles() const;

    /**
     * The most recent home transactions, oldest first (at most
     * txnLogSize). Feeds the verifier's violation dumps.
     *
     * Debug-only state: deliberately NOT part of saveState(), so a
     * restored system starts with an empty ring.
     */
    std::vector<TxnRecord> recentTxns() const;

    /**
     * Serialize every stateful component except the tracker (cores,
     * private hierarchies, LLC, DRAM, engine, warmup boundary). The
     * tracker is written as its own checkpoint section so a warmup
     * fast-forward restore can skip it (ckpt/ckpt.hh); the transaction
     * debug ring is not snapshotted. Config is NOT written here; the
     * checkpoint header guards compatibility.
     */
    void saveState(ckpt::Writer &w) const;

    /** Restore state written by saveState under an identical config. */
    void loadState(ckpt::Reader &r);

  private:
    void noteTxn(const TxnRecord &r);

    /** Reusable eviction-notice scratch; keeps accesses heap-free. */
    NoticeVec noticeScratch;

    /** Optional per-access event sink (null on the plain hot path). */
    AccessObserver *observer = nullptr;

    /** Clock value at the last resetStats() (warmup boundary). */
    Cycle statsBaseCycle = 0;

    static constexpr std::size_t txnLogSize = 16;
    std::array<TxnRecord, txnLogSize> txnLog{};
    std::size_t txnNext = 0;
    Counter txnCount = 0;
};

/** Factory for the tracker selected by @p cfg (used by System). */
std::unique_ptr<CoherenceTracker>
makeTracker(const SystemConfig &cfg, Llc &llc,
            std::vector<PrivateCache> &privs);

} // namespace tinydir

#endif // TINYDIR_SIM_SYSTEM_HH
