/**
 * @file
 * Full-system assembly: cores + private hierarchies + mesh + LLC +
 * DRAM + the configured coherence tracker, glued by the engine.
 *
 * This is the library's main entry point: construct a System from a
 * SystemConfig, feed it accesses (directly or through sim/driver.hh),
 * then read the statistics dump.
 */

#ifndef TINYDIR_SIM_SYSTEM_HH
#define TINYDIR_SIM_SYSTEM_HH

#include <array>
#include <cstddef>
#include <memory>
#include <string>
#include <vector>

#include "cache/llc.hh"
#include "common/config.hh"
#include "common/stats.hh"
#include "core/core.hh"
#include "core/private_cache.hh"
#include "core/trace.hh"
#include "mem/dram.hh"
#include "noc/mesh.hh"
#include "proto/engine.hh"
#include "proto/tracker.hh"

namespace tinydir
{

/**
 * One recently processed home transaction (request or eviction
 * notice), kept in a small ring buffer for invariant-violation dumps:
 * when the verifier trips, the last few transactions are the context
 * a debugger needs to replay the corruption.
 */
struct TxnRecord
{
    Cycle when = 0;
    CoreId core = invalidCore;
    Addr block = 0;
    ReqType type = ReqType::GetS;
    bool isNotice = false;       //!< eviction notice, not a request
    MesiState put = MesiState::I; //!< private state put back (notices)
};

/** A complete simulated chip-multiprocessor. */
class System
{
  public:
    explicit System(const SystemConfig &cfg);

    /**
     * Execute one memory access of core @p c issued at @p issue.
     * @return absolute completion time (>= issue).
     */
    Cycle executeAccess(CoreId c, const TraceAccess &acc, Cycle issue);

    /**
     * Warm the caches for an access about to execute: decompose the
     * address, touch core @p c's private-hierarchy lookup structure
     * and the home LLC set's tag lane. Purely a host-side performance
     * hint issued by the batched driver front-end for every member of
     * a batch before the serialized executeAccess calls run; it has no
     * simulation-visible effect.
     *
     * Hot-annotated: it runs once per batched access, so the tdlint
     * allocation-freedom walk must cover it and everything it calls
     * (FlatMap::prefetch, Llc::locate/prefetchSet).
     */
    // TDLINT: hot
    void
    prefetchAccess(CoreId c, Addr addr) const
    {
        const Addr block = blockNumber(addr);
        privs[c].prefetch(block);
        llc.prefetchSet(llc.locate(block));
    }

    /** Flush residual residency statistics (end of simulation). */
    void finalize();

    /**
     * End-of-warmup reset: clear every measurement counter while
     * keeping all cache/directory state, so the dump reflects steady
     * state. Execution cycles reported afterwards are relative to the
     * reset point.
     */
    void resetStats();

    /** Full statistics dump (execution, traffic, residency, energy). */
    StatsDump dump() const;

    /**
     * Install (or remove, with nullptr) a per-access observer fed with
     * every externally visible protocol event (proto/observe.hh). The
     * differential oracle (src/oracle) attaches here; with no observer
     * the access path is unchanged.
     */
    void
    setObserver(AccessObserver *o)
    {
        observer = o;
        engine.setObserver(o);
    }

    /**
     * Verify global coherence invariants against the ground truth of
     * the private hierarchies: single-owner for E/M, exact sharer
     * sets, and no untracked cached blocks (modulo the coarse-grain
     * and broadcast-recovery schemes, which are checked accordingly).
     * @retval true when every invariant holds; otherwise @p msg (when
     * non-null) describes the first violation.
     */
    bool verifyCoherence(std::string *msg = nullptr);

    const SystemConfig cfg; //!< owning copy; components reference it
    Mesh mesh;
    Dram dram;
    Llc llc;
    std::vector<PrivateCache> privs;
    std::vector<Core> cores;
    Engine engine;
    std::unique_ptr<CoherenceTracker> tracker;

    /** Execution time so far: max core clock. */
    Cycle execCycles() const;

    /**
     * The most recent home transactions, oldest first (at most
     * txnLogSize). Feeds the verifier's violation dumps.
     *
     * Debug-only state: deliberately NOT part of saveState(), so a
     * restored system starts with an empty ring.
     */
    std::vector<TxnRecord> recentTxns() const;

    /**
     * Serialize every stateful component except the tracker (cores,
     * private hierarchies, LLC, DRAM, engine, warmup boundary). The
     * tracker is written as its own checkpoint section so a warmup
     * fast-forward restore can skip it (ckpt/ckpt.hh); the transaction
     * debug ring is not snapshotted. Config is NOT written here; the
     * checkpoint header guards compatibility.
     */
    void saveState(ckpt::Writer &w) const;

    /** Restore state written by saveState under an identical config. */
    void loadState(ckpt::Reader &r);

  private:
    void processNotices(CoreId c, const NoticeVec &notices, Cycle t);

    void noteTxn(const TxnRecord &r);

    /** Reusable eviction-notice scratch; keeps accesses heap-free. */
    NoticeVec noticeScratch;

    /** Optional per-access event sink (null on the plain hot path). */
    AccessObserver *observer = nullptr;

    /** Clock value at the last resetStats() (warmup boundary). */
    Cycle statsBaseCycle = 0;

    static constexpr std::size_t txnLogSize = 16;
    std::array<TxnRecord, txnLogSize> txnLog{};
    std::size_t txnNext = 0;
    Counter txnCount = 0;
};

/** Factory for the tracker selected by @p cfg (used by System). */
std::unique_ptr<CoherenceTracker>
makeTracker(const SystemConfig &cfg, Llc &llc,
            std::vector<PrivateCache> &privs);

} // namespace tinydir

#endif // TINYDIR_SIM_SYSTEM_HH
