#include "sim/parallel.hh"

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <ios>
#include <map>
#include <sstream>
#include <thread>

#include "common/log.hh"
#include "common/sim_error.hh"

namespace tinydir
{

std::string
jobFingerprint(const SimJob &job)
{
    panic_if(!job.prof, "SimJob without a workload profile");
    std::ostringstream os;
    // Hexfloat keeps the double-valued fields exact.
    os << std::hexfloat;
    os << job.prof << '|' << job.prof->name << '|'
       << job.accessesPerCore << '|' << job.warmupPerCore;
    const SystemConfig &c = job.cfg;
    os << '|' << c.numCores << '|' << c.l1Bytes << '|' << c.l1Assoc
       << '|' << c.l1Latency << '|' << c.l2Bytes << '|' << c.l2Assoc
       << '|' << c.l2Latency << '|' << c.llcAssoc << '|'
       << c.llcTagLatency << '|' << c.llcDataLatency << '|'
       << c.llcBlocksPerN << '|' << c.hopCycles << '|' << c.memChannels
       << '|' << c.memBanksPerChannel << '|' << c.dramCas << '|'
       << c.dramRcd << '|' << c.dramRp << '|' << c.dramBurst << '|'
       << c.dramRowBytes << '|' << static_cast<int>(c.tracker) << '|'
       << c.dirSizeFactor << '|' << c.dirAssoc << '|' << c.dirSkewed
       << '|' << static_cast<int>(c.tinyPolicy) << '|' << c.tinySpill
       << '|' << c.sharerGrain << '|' << c.straCounterBits << '|'
       << c.gnruQuantumCycles << '|' << c.gnruTimerBits << '|'
       << c.spillSampledSets << '|' << c.spillWindowAccesses << '|'
       << c.mgdRegionBytes << '|' << c.seed << '|'
       << c.nackRetryCycles;
    // Controls that can abort a run are part of the identity; the
    // label and dump directory only shape failure reporting and are
    // deliberately excluded so labeled duplicates still memoize.
    os << '|' << job.controls.verifyPeriod << '|'
       << job.controls.timeoutSeconds;
    return os.str();
}

std::string
describeJob(const SimJob &job)
{
    std::ostringstream os;
    os << "scheme '" << toString(job.cfg.tracker) << "' / workload '"
       << (job.prof ? job.prof->name : std::string("?")) << "'";
    return os.str();
}

unsigned
defaultJobCount()
{
    const char *env = std::getenv("TINYDIR_JOBS");
    if (env && env[0] != '\0') {
        char *end = nullptr;
        const long v = std::strtol(env, &end, 10);
        if (end && *end == '\0' && v > 0)
            return static_cast<unsigned>(v);
        warn("TINYDIR_JOBS must be a positive integer, ignoring: ",
             env);
    }
    const unsigned hw = std::thread::hardware_concurrency();
    return hw ? hw : 1;
}

namespace
{

SimResult
runTimed(const SimJob &job)
{
    const auto t0 = std::chrono::steady_clock::now();
    SimResult r;
    try {
        r.out = runOne(job.cfg, *job.prof, job.accessesPerCore,
                       job.warmupPerCore, job.controls);
    } catch (const InvariantViolation &e) {
        r.failed = true;
        r.dumpPath = e.dumpPath;
        r.error = describeJob(job) + ": " + e.what();
    } catch (const SimTimeout &e) {
        r.failed = true;
        r.timedOut = true;
        r.error = describeJob(job) + ": " + e.what();
    } catch (const SimError &e) {
        r.failed = true;
        r.error = describeJob(job) + ": " + e.what();
    } catch (const std::exception &e) {
        r.failed = true;
        r.error = describeJob(job) + ": unexpected error: " + e.what();
    }
    r.wallSeconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      t0)
            .count();
    return r;
}

} // namespace

std::vector<SimResult>
runMany(const std::vector<SimJob> &jobs, unsigned workers, bool strict)
{
    std::vector<SimResult> results(jobs.size());
    if (jobs.empty())
        return results;

    // Deduplicate: the first job with a given fingerprint simulates;
    // later duplicates share its result.
    std::map<std::string, std::size_t> seen;
    std::vector<std::size_t> uniqueIdx;  // job index of each unique job
    std::vector<std::size_t> sourceOf(jobs.size()); // -> uniqueIdx slot
    uniqueIdx.reserve(jobs.size());
    for (std::size_t i = 0; i < jobs.size(); ++i) {
        const auto [it, inserted] =
            seen.emplace(jobFingerprint(jobs[i]), uniqueIdx.size());
        if (inserted)
            uniqueIdx.push_back(i);
        sourceOf[i] = it->second;
    }

    if (workers == 0)
        workers = defaultJobCount();
    workers = static_cast<unsigned>(std::min<std::size_t>(
        workers, uniqueIdx.size()));

    std::vector<SimResult> unique(uniqueIdx.size());
    std::atomic<std::size_t> next{0};
    std::atomic<bool> abort{false};
    auto work = [&]() {
        for (;;) {
            if (strict && abort.load(std::memory_order_relaxed))
                return;
            const std::size_t u = next.fetch_add(1);
            if (u >= uniqueIdx.size())
                return;
            unique[u] = runTimed(jobs[uniqueIdx[u]]);
            if (unique[u].failed)
                abort.store(true, std::memory_order_relaxed);
        }
    };
    if (workers <= 1) {
        work();
    } else {
        std::vector<std::thread> pool;
        pool.reserve(workers);
        for (unsigned w = 0; w < workers; ++w)
            pool.emplace_back(work);
        for (auto &t : pool)
            t.join();
    }

    if (strict) {
        for (const SimResult &r : unique) {
            if (r.failed)
                throw SimError("strict mode: " + r.error);
        }
    }

    for (std::size_t i = 0; i < jobs.size(); ++i) {
        results[i] = unique[sourceOf[i]];
        if (uniqueIdx[sourceOf[i]] != i) {
            results[i].memoized = true;
            results[i].wallSeconds = 0.0;
        }
    }
    return results;
}

} // namespace tinydir
