#include "sim/parallel.hh"

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <fstream>
#include <ios>
#include <map>
#include <sstream>
#include <thread>

#include "ckpt/ckpt.hh"
#include "common/log.hh"
#include "common/sim_error.hh"

namespace tinydir
{

std::string
jobFingerprint(const SimJob &job)
{
    panic_if(!job.prof, "SimJob without a workload profile");
    std::ostringstream os;
    // Hexfloat keeps the double-valued fields exact.
    os << std::hexfloat;
    os << job.prof << '|' << job.prof->name << '|'
       << job.accessesPerCore << '|' << job.warmupPerCore;
    const SystemConfig &c = job.cfg;
    os << '|' << c.numCores << '|' << c.l1Bytes << '|' << c.l1Assoc
       << '|' << c.l1Latency << '|' << c.l2Bytes << '|' << c.l2Assoc
       << '|' << c.l2Latency << '|' << c.llcAssoc << '|'
       << c.llcTagLatency << '|' << c.llcDataLatency << '|'
       << c.llcBlocksPerN << '|' << c.hopCycles << '|' << c.memChannels
       << '|' << c.memBanksPerChannel << '|' << c.dramCas << '|'
       << c.dramRcd << '|' << c.dramRp << '|' << c.dramBurst << '|'
       << c.dramRowBytes << '|' << static_cast<int>(c.tracker) << '|'
       << c.dirSizeFactor << '|' << c.dirAssoc << '|' << c.dirSkewed
       << '|' << static_cast<int>(c.tinyPolicy) << '|' << c.tinySpill
       << '|' << c.sharerGrain << '|' << c.straCounterBits << '|'
       << c.gnruQuantumCycles << '|' << c.gnruTimerBits << '|'
       << c.spillSampledSets << '|' << c.spillWindowAccesses << '|'
       << c.mgdRegionBytes << '|' << c.seed << '|'
       << c.nackRetryCycles;
    // Controls that can abort a run are part of the identity; the
    // label and dump directory only shape failure reporting and are
    // deliberately excluded so labeled duplicates still memoize.
    os << '|' << job.controls.verifyPeriod << '|'
       << job.controls.timeoutSeconds;
    // Checkpoint controls change results (resume) or side effects
    // (files written), so memoizing across them would be wrong.
    // String fields are length-prefixed so adjacent paths cannot
    // alias across the separator.
    os << '|' << job.controls.checkpointPath.size() << ':'
       << job.controls.checkpointPath << '|'
       << job.controls.checkpointEvery << '|'
       << job.controls.resumePath.size() << ':'
       << job.controls.resumePath << '|'
       << job.controls.resumeFastForward << '|'
       << job.controls.stopAfterAccesses;
    return os.str();
}

std::string
describeJob(const SimJob &job)
{
    std::ostringstream os;
    os << "scheme '" << toString(job.cfg.tracker) << "' / workload '"
       << (job.prof ? job.prof->name : std::string("?")) << "'";
    return os.str();
}

unsigned
defaultJobCount()
{
    const char *env = std::getenv("TINYDIR_JOBS");
    if (env && env[0] != '\0') {
        char *end = nullptr;
        const long v = std::strtol(env, &end, 10);
        if (end && *end == '\0' && v > 0)
            return static_cast<unsigned>(v);
        warn("TINYDIR_JOBS must be a positive integer, ignoring: ",
             env);
    }
    const unsigned hw = std::thread::hardware_concurrency();
    return hw ? hw : 1;
}

namespace
{

SimResult
runTimed(const SimJob &job)
{
    const auto t0 = std::chrono::steady_clock::now();
    SimResult r;
    try {
        r.out = runOne(job.cfg, *job.prof, job.accessesPerCore,
                       job.warmupPerCore, job.controls);
    } catch (const InvariantViolation &e) {
        r.failed = true;
        r.dumpPath = e.dumpPath;
        r.error = describeJob(job) + ": " + e.what();
    } catch (const SimTimeout &e) {
        r.failed = true;
        r.timedOut = true;
        r.error = describeJob(job) + ": " + e.what();
    } catch (const SimInterrupt &e) {
        r.failed = true;
        r.interrupted = true;
        r.error = describeJob(job) + ": " + e.what();
    } catch (const SimError &e) {
        r.failed = true;
        r.error = describeJob(job) + ": " + e.what();
    } catch (const std::exception &e) {
        r.failed = true;
        r.error = describeJob(job) + ": unexpected error: " + e.what();
    }
    r.wallSeconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      t0)
            .count();
    return r;
}

/**
 * Run @p count indexed tasks on up to @p workers threads (a shared
 * atomic cursor; each index is claimed exactly once).
 */
template <typename Body>
void
runPool(std::size_t count, unsigned workers, Body &&body)
{
    std::atomic<std::size_t> next{0};
    auto work = [&]() {
        for (;;) {
            const std::size_t u = next.fetch_add(1);
            if (u >= count)
                return;
            body(u);
        }
    };
    workers = static_cast<unsigned>(
        std::min<std::size_t>(workers ? workers : 1, count));
    if (workers <= 1) {
        work();
    } else {
        std::vector<std::thread> pool;
        pool.reserve(workers);
        for (unsigned w = 0; w < workers; ++w)
            pool.emplace_back(work);
        for (auto &t : pool)
            t.join();
    }
}

/** One shared end-of-warmup snapshot and the cells restoring from it. */
struct WarmGroup
{
    std::string path;
    /** Generation job; cleared (prof == nullptr) when reusing a file. */
    SimJob snapshot;
    bool generate = false;
    std::vector<std::size_t> members; //!< indices into the unique jobs
};

} // namespace

ThroughputAgg
aggregateThroughput(const std::vector<SimResult> &results)
{
    ThroughputAgg agg;
    for (const SimResult &r : results) {
        if (r.memoized || r.failed || !(r.out.wallSeconds > 0.0)) {
            ++agg.skipped;
            continue;
        }
        ++agg.counted;
        agg.accesses += r.out.accesses - r.out.resumedAt;
        agg.runSeconds += r.out.wallSeconds;
    }
    return agg;
}

std::vector<SimResult>
runMany(const std::vector<SimJob> &jobs, unsigned workers, bool strict)
{
    RunManyOptions opt;
    opt.workers = workers;
    opt.strict = strict;
    return runMany(jobs, opt);
}

std::vector<SimResult>
runMany(const std::vector<SimJob> &jobs, const RunManyOptions &opt)
{
    std::vector<SimResult> results(jobs.size());
    if (jobs.empty())
        return results;

    // Deduplicate: the first job with a given fingerprint simulates;
    // later duplicates share its result.
    std::map<std::string, std::size_t> seen;
    std::vector<std::size_t> uniqueIdx;  // job index of each unique job
    std::vector<std::size_t> sourceOf(jobs.size()); // -> uniqueIdx slot
    uniqueIdx.reserve(jobs.size());
    for (std::size_t i = 0; i < jobs.size(); ++i) {
        const auto [it, inserted] =
            seen.emplace(jobFingerprint(jobs[i]), uniqueIdx.size());
        if (inserted)
            uniqueIdx.push_back(i);
        sourceOf[i] = it->second;
    }

    const unsigned workers = static_cast<unsigned>(
        std::min<std::size_t>(opt.workers ? opt.workers
                                          : defaultJobCount(),
                              uniqueIdx.size()));

    // The jobs actually executed: fast-forwarded copies when a warmup
    // snapshot applies, the submitted jobs otherwise.
    std::vector<SimJob> runJobs;
    runJobs.reserve(uniqueIdx.size());
    for (std::size_t i : uniqueIdx)
        runJobs.push_back(jobs[i]);
    std::vector<char> fastForwarded(uniqueIdx.size(), 0);

    // -- warmup fast-forward: group cells sharing (workload, lengths,
    //    warmup-equivalent config); each group warms up once.
    std::vector<WarmGroup> groups;
    if (!opt.warmupSnapshotDir.empty()) {
        std::map<std::string, std::size_t> byKey;
        for (std::size_t u = 0; u < runJobs.size(); ++u) {
            const SimJob &j = runJobs[u];
            // Cells already doing their own checkpoint/resume dance
            // are left alone.
            if (j.warmupPerCore == 0 || !j.controls.resumePath.empty() ||
                !j.controls.checkpointPath.empty() ||
                j.controls.stopAfterAccesses)
                continue;
            std::ostringstream key;
            key << j.prof->name << '|' << j.accessesPerCore << '|'
                << j.warmupPerCore << '|' << std::hex
                << ckpt::warmupSignature(j.cfg);
            const auto [it, inserted] =
                byKey.emplace(key.str(), groups.size());
            if (inserted)
                groups.push_back({});
            groups[it->second].members.push_back(u);
        }
        for (WarmGroup &g : groups) {
            if (g.members.size() < 2) {
                g.members.clear(); // nothing to amortize
                continue;
            }
            const SimJob &first = runJobs[g.members.front()];
            const std::uint64_t warm = effectiveWarmupPerCore(
                first.cfg, *first.prof, first.warmupPerCore);
            if (warm == 0) {
                g.members.clear();
                continue;
            }
            std::ostringstream file;
            file << opt.warmupSnapshotDir << "/tinydir-warm-"
                 << first.prof->name << '-' << first.accessesPerCore
                 << '-' << first.warmupPerCore << '-' << std::hex
                 << ckpt::warmupSignature(first.cfg) << ".tdcp";
            g.path = file.str();
            // Reuse a snapshot from an earlier invocation when one is
            // present; a stale/corrupt file fails each member's
            // restore, which falls back to a cold run below.
            g.generate = !static_cast<bool>(std::ifstream(g.path));
            if (g.generate) {
                g.snapshot = first;
                g.snapshot.cfg = ckpt::warmupNormalized(first.cfg);
                g.snapshot.controls.label =
                    "warmup snapshot / " + first.prof->name;
                g.snapshot.controls.checkpointPath = g.path;
                g.snapshot.controls.checkpointEvery = 0;
                g.snapshot.controls.resumePath.clear();
                g.snapshot.controls.stopAfterAccesses =
                    warm * g.snapshot.cfg.numCores;
            }
            for (std::size_t u : g.members) {
                runJobs[u].controls.resumePath = g.path;
                runJobs[u].controls.resumeFastForward = true;
                fastForwarded[u] = 1;
            }
        }
        // Phase 1: generate the missing snapshots (each is one warmup
        // run under the normalized config, stopped at the boundary).
        std::vector<std::size_t> toGen;
        for (std::size_t gi = 0; gi < groups.size(); ++gi) {
            if (!groups[gi].members.empty() && groups[gi].generate)
                toGen.push_back(gi);
        }
        if (!toGen.empty()) {
            runPool(toGen.size(), workers, [&](std::size_t t) {
                WarmGroup &g = groups[toGen[t]];
                if (ckpt::interruptRequested())
                    return; // members fall back / report interruption
                const SimResult r = runTimed(g.snapshot);
                if (r.failed) {
                    warn("warmup snapshot generation failed, members "
                         "run cold: ", r.error);
                    for (std::size_t u : g.members) {
                        runJobs[u] = jobs[uniqueIdx[u]];
                        fastForwarded[u] = 0;
                    }
                }
            });
        }
    }

    std::vector<SimResult> unique(uniqueIdx.size());
    std::atomic<bool> abort{false};
    runPool(uniqueIdx.size(), workers, [&](std::size_t u) {
        const bool interrupted = ckpt::interruptRequested();
        if (interrupted ||
            (opt.strict && abort.load(std::memory_order_relaxed))) {
            // Strict mode throws below, so only the cooperative
            // interruption path reports never-started cells.
            if (interrupted && !opt.strict) {
                unique[u].failed = true;
                unique[u].interrupted = true;
                unique[u].error = describeJob(jobs[uniqueIdx[u]]) +
                                  ": interrupted before start";
            }
            return;
        }
        unique[u] = runTimed(runJobs[u]);
        if (unique[u].failed && fastForwarded[u] &&
            !unique[u].timedOut && !unique[u].interrupted) {
            // A stale/corrupt snapshot (or any other fast-forward
            // casualty) must not fail the cell: rerun it cold. A
            // genuine failure reproduces there with full-run context.
            warn("warmup fast-forward failed, rerunning cold: ",
                 unique[u].error);
            unique[u] = runTimed(jobs[uniqueIdx[u]]);
        }
        if (unique[u].failed)
            abort.store(true, std::memory_order_relaxed);
    });

    if (opt.strict) {
        for (const SimResult &r : unique) {
            if (r.failed)
                throw SimError("strict mode: " + r.error);
        }
    }

    for (std::size_t i = 0; i < jobs.size(); ++i) {
        results[i] = unique[sourceOf[i]];
        if (uniqueIdx[sourceOf[i]] != i) {
            results[i].memoized = true;
            // A memoized copy was neither simulated nor timed: zero
            // the whole timing story, not just the outer wall time. A
            // copied accessesPerSec next to a zeroed wallSeconds made
            // the two fields mutually inconsistent and invited
            // accesses/wallSeconds divisions by zero downstream.
            results[i].wallSeconds = 0.0;
            results[i].out.wallSeconds = 0.0;
            results[i].out.accessesPerSec = 0.0;
        }
    }
    return results;
}

} // namespace tinydir
