#include "sim/driver.hh"

#include <chrono>
#include <sstream>
#include <vector>

#include "common/log.hh"
#include "common/sim_error.hh"

namespace tinydir
{

namespace
{

/** Sentinel issue time of an exhausted stream. */
constexpr Cycle idle = ~Cycle(0);

} // namespace

RunResult
Driver::run(System &sys,
            std::vector<std::unique_ptr<AccessStream>> streams)
{
    panic_if(streams.size() != sys.cfg.numCores,
             "stream count != core count");
    // One pending access per core, selected by linear min-scan. The
    // scan takes the smallest issue time and breaks ties on the lower
    // core id — the same total order the previous binary heap used —
    // and replaces heap push/pop churn with a branch-predictable pass
    // over a tiny contiguous array (numCores <= 128). Issue times are
    // kept apart from the access payloads so the scan touches only
    // 8 bytes per core.
    std::vector<Cycle> issues(sys.cfg.numCores, idle);
    std::vector<TraceAccess> pending(sys.cfg.numCores);
    unsigned live = 0;
    for (CoreId c = 0; c < sys.cfg.numCores; ++c) {
        TraceAccess acc;
        if (streams[c] && streams[c]->next(acc)) {
            issues[c] = sys.cores[c].clock + acc.gap;
            pending[c] = acc;
            ++live;
        }
    }

    using Clock = std::chrono::steady_clock;
    const Clock::time_point started = Clock::now();

    RunResult res;
    const unsigned n = sys.cfg.numCores;
    while (live > 0) {
        CoreId best = 0;
        Cycle best_issue = idle;
        for (CoreId c = 0; c < n; ++c) {
            if (issues[c] < best_issue) {
                best_issue = issues[c];
                best = c;
            }
        }
        const Cycle done =
            sys.executeAccess(best, pending[best], best_issue);
        sys.cores[best].clock = done;
        ++res.accesses;
        if (warmupAccesses && res.accesses == warmupAccesses)
            sys.resetStats();
        if (hook && hookPeriod && res.accesses % hookPeriod == 0)
            hook(sys, res.accesses);
        if (timeoutSeconds > 0.0 &&
            res.accesses % timeoutCheckPeriod == 0) {
            const std::chrono::duration<double> elapsed =
                Clock::now() - started;
            if (elapsed.count() > timeoutSeconds) {
                std::ostringstream os;
                os << "simulation exceeded the " << timeoutSeconds
                   << " s wall-clock limit after " << res.accesses
                   << " accesses";
                throw SimTimeout(os.str(), timeoutSeconds);
            }
        }
        TraceAccess acc;
        if (streams[best]->next(acc)) {
            issues[best] = done + acc.gap;
            pending[best] = acc;
        } else {
            issues[best] = idle;
            --live;
        }
    }
    sys.finalize();
    res.execCycles = sys.execCycles();
    return res;
}

} // namespace tinydir
