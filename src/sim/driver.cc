#include "sim/driver.hh"

#include <chrono>
#include <sstream>
#include <vector>

#include "ckpt/ckpt.hh"
#include "common/log.hh"
#include "common/sim_error.hh"
#include "common/time_wheel.hh"

namespace tinydir
{

namespace
{

/** Sentinel issue time of an exhausted stream. */
constexpr Cycle idle = ~Cycle(0);

} // namespace

RunResult
Driver::run(System &sys,
            std::vector<std::unique_ptr<AccessStream>> streams,
            const DriverProgress *resume)
{
    panic_if(streams.size() != sys.cfg.numCores,
             "stream count != core count");
    // One pending access per core. The issues[]/pending[] arrays stay
    // authoritative (they are what checkpoints snapshot); the time
    // wheel below is a derived index over issues[] that yields the
    // smallest issue time with ties broken on the lower core id — the
    // same total order the previous linear min-scan (and the binary
    // heap before it) used.
    std::vector<Cycle> issues(sys.cfg.numCores, idle);
    std::vector<TraceAccess> pending(sys.cfg.numCores);
    unsigned live = 0;
    RunResult res;
    if (resume) {
        if (resume->issues.size() != issues.size())
            throw CheckpointError(
                "resume progress covers a different core count");
        issues = resume->issues;
        pending = resume->pending;
        live = resume->live;
        res.accesses = resume->accesses;
    } else {
        for (CoreId c = 0; c < sys.cfg.numCores; ++c) {
            TraceAccess acc;
            if (streams[c] && streams[c]->next(acc)) {
                issues[c] = sys.cores[c].clock + acc.gap;
                pending[c] = acc;
                ++live;
            }
        }
    }

    using Clock = std::chrono::steady_clock;
    const Clock::time_point started = Clock::now();

    const auto progress_now = [&]() {
        DriverProgress p;
        p.accesses = res.accesses;
        p.live = live;
        p.issues = issues;
        p.pending = pending;
        return p;
    };

    // Batched front-end over a bucketed time wheel. The wheel holds
    // one (issue cycle, core) event per live stream; its pop order —
    // earliest cycle first, lowest core id on ties — is exactly the
    // total order the per-access linear min-scan used. Each batch
    // pulls every access issuing within one L1 latency of the
    // earliest: executeAccess never completes before issue +
    // l1Latency (the L1 lookup precedes everything), so a refill
    // lands at or beyond the window end — strictly after every batch
    // member — and can never preempt or tie one. Batch members get
    // their address-decompose + lookup-structure prefetches issued
    // together before the serialized retires; stats stay
    // bit-identical to the one-at-a-time order.
    const unsigned n = sys.cfg.numCores;
    const Cycle window = sys.cfg.l1Latency;
    TimeWheel<CoreId> nextIssue;
    nextIssue.reserve(n);
    for (CoreId c = 0; c < n; ++c) {
        if (issues[c] != idle)
            nextIssue.insert(issues[c], c);
    }
    std::vector<CoreId> batch(n);
    unsigned batchLen = 0;
    unsigned batchPos = 0;
    while (live > 0) {
        if (batchPos >= batchLen) {
            TimeWheel<CoreId>::Event ev;
            const bool got = nextIssue.pop(ev);
            panic_if(!got, "issue wheel empty with live streams");
            batch[0] = ev.payload;
            batchLen = 1;
            // Window of zero (degenerate zero-latency L1 config): a
            // refill could tie a member, so keep batches at size one.
            if (window > 0) {
                const Cycle limit = ev.cycle + window;
                while (nextIssue.earliestCycle() < limit) {
                    nextIssue.pop(ev);
                    batch[batchLen++] = ev.payload;
                }
            }
            batchPos = 0;
            // Warm the host caches for the members queued behind the
            // first; their lookups run after it retires.
            for (unsigned i = 1; i < batchLen; ++i) {
                const CoreId c = batch[i];
                sys.prefetchAccess(c, pending[c].addr);
            }
        }
        const CoreId best = batch[batchPos++];
        const Cycle best_issue = issues[best];
        const Cycle done =
            sys.executeAccess(best, pending[best], best_issue);
        sys.cores[best].clock = done;
        ++res.accesses;
        // Refill before any checkpoint work below: a snapshot must
        // hold the NEXT pending access per core, not the one just
        // executed, or the restore would replay it. The streams never
        // touch the System, so the reorder is timing-invisible.
        TraceAccess acc;
        if (streams[best]->next(acc)) {
            issues[best] = done + acc.gap;
            pending[best] = acc;
            nextIssue.insert(issues[best], best);
        } else {
            issues[best] = idle;
            --live;
        }
        if (warmupAccesses && res.accesses == warmupAccesses)
            sys.resetStats();
        if (hook && hookPeriod && res.accesses % hookPeriod == 0)
            hook(sys, res.accesses);
        if (res.accesses % timeoutCheckPeriod == 0) {
            if (timeoutSeconds > 0.0) {
                const std::chrono::duration<double> elapsed =
                    Clock::now() - started;
                if (elapsed.count() > timeoutSeconds) {
                    std::ostringstream os;
                    os << "simulation exceeded the " << timeoutSeconds
                       << " s wall-clock limit after " << res.accesses
                       << " accesses";
                    throw SimTimeout(os.str(), timeoutSeconds);
                }
            }
            if (ckpt::interruptRequested()) {
                if (checkpointSink)
                    checkpointSink(sys, streams, progress_now());
                std::ostringstream os;
                os << "interrupted after " << res.accesses
                   << " accesses";
                throw SimInterrupt(os.str());
            }
        }
        if (checkpointEvery && checkpointSink &&
            res.accesses % checkpointEvery == 0) {
            checkpointSink(sys, streams, progress_now());
        }
        if (stopAfterAccesses && res.accesses >= stopAfterAccesses) {
            if (checkpointSink)
                checkpointSink(sys, streams, progress_now());
            // Early stop: deliberately no finalize(); the run is
            // expected to continue from the checkpoint.
            res.execCycles = sys.execCycles();
            return res;
        }
    }
    sys.finalize();
    res.execCycles = sys.execCycles();
    return res;
}

} // namespace tinydir
