#include "sim/driver.hh"

#include <chrono>
#include <sstream>
#include <vector>

#include "ckpt/ckpt.hh"
#include "common/log.hh"
#include "common/sim_error.hh"

namespace tinydir
{

namespace
{

/** Sentinel issue time of an exhausted stream. */
constexpr Cycle idle = ~Cycle(0);

} // namespace

RunResult
Driver::run(System &sys,
            std::vector<std::unique_ptr<AccessStream>> streams,
            const DriverProgress *resume)
{
    panic_if(streams.size() != sys.cfg.numCores,
             "stream count != core count");
    // One pending access per core, selected by linear min-scan. The
    // scan takes the smallest issue time and breaks ties on the lower
    // core id — the same total order the previous binary heap used —
    // and replaces heap push/pop churn with a branch-predictable pass
    // over a tiny contiguous array (numCores <= 128). Issue times are
    // kept apart from the access payloads so the scan touches only
    // 8 bytes per core.
    std::vector<Cycle> issues(sys.cfg.numCores, idle);
    std::vector<TraceAccess> pending(sys.cfg.numCores);
    unsigned live = 0;
    RunResult res;
    if (resume) {
        if (resume->issues.size() != issues.size())
            throw CheckpointError(
                "resume progress covers a different core count");
        issues = resume->issues;
        pending = resume->pending;
        live = resume->live;
        res.accesses = resume->accesses;
    } else {
        for (CoreId c = 0; c < sys.cfg.numCores; ++c) {
            TraceAccess acc;
            if (streams[c] && streams[c]->next(acc)) {
                issues[c] = sys.cores[c].clock + acc.gap;
                pending[c] = acc;
                ++live;
            }
        }
    }

    using Clock = std::chrono::steady_clock;
    const Clock::time_point started = Clock::now();

    const auto progress_now = [&]() {
        DriverProgress p;
        p.accesses = res.accesses;
        p.live = live;
        p.issues = issues;
        p.pending = pending;
        return p;
    };

    const unsigned n = sys.cfg.numCores;
    while (live > 0) {
        CoreId best = 0;
        Cycle best_issue = idle;
        for (CoreId c = 0; c < n; ++c) {
            if (issues[c] < best_issue) {
                best_issue = issues[c];
                best = c;
            }
        }
        const Cycle done =
            sys.executeAccess(best, pending[best], best_issue);
        sys.cores[best].clock = done;
        ++res.accesses;
        // Refill before any checkpoint work below: a snapshot must
        // hold the NEXT pending access per core, not the one just
        // executed, or the restore would replay it. The streams never
        // touch the System, so the reorder is timing-invisible.
        TraceAccess acc;
        if (streams[best]->next(acc)) {
            issues[best] = done + acc.gap;
            pending[best] = acc;
        } else {
            issues[best] = idle;
            --live;
        }
        if (warmupAccesses && res.accesses == warmupAccesses)
            sys.resetStats();
        if (hook && hookPeriod && res.accesses % hookPeriod == 0)
            hook(sys, res.accesses);
        if (res.accesses % timeoutCheckPeriod == 0) {
            if (timeoutSeconds > 0.0) {
                const std::chrono::duration<double> elapsed =
                    Clock::now() - started;
                if (elapsed.count() > timeoutSeconds) {
                    std::ostringstream os;
                    os << "simulation exceeded the " << timeoutSeconds
                       << " s wall-clock limit after " << res.accesses
                       << " accesses";
                    throw SimTimeout(os.str(), timeoutSeconds);
                }
            }
            if (ckpt::interruptRequested()) {
                if (checkpointSink)
                    checkpointSink(sys, streams, progress_now());
                std::ostringstream os;
                os << "interrupted after " << res.accesses
                   << " accesses";
                throw SimInterrupt(os.str());
            }
        }
        if (checkpointEvery && checkpointSink &&
            res.accesses % checkpointEvery == 0) {
            checkpointSink(sys, streams, progress_now());
        }
        if (stopAfterAccesses && res.accesses >= stopAfterAccesses) {
            if (checkpointSink)
                checkpointSink(sys, streams, progress_now());
            // Early stop: deliberately no finalize(); the run is
            // expected to continue from the checkpoint.
            res.execCycles = sys.execCycles();
            return res;
        }
    }
    sys.finalize();
    res.execCycles = sys.execCycles();
    return res;
}

} // namespace tinydir
