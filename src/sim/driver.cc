#include "sim/driver.hh"

#include <queue>

#include "common/log.hh"

namespace tinydir
{

namespace
{

struct Pending
{
    Cycle issue;
    CoreId core;
    TraceAccess acc;

    bool
    operator>(const Pending &o) const
    {
        return issue != o.issue ? issue > o.issue : core > o.core;
    }
};

} // namespace

RunResult
Driver::run(System &sys,
            std::vector<std::unique_ptr<AccessStream>> streams)
{
    panic_if(streams.size() != sys.cfg.numCores,
             "stream count != core count");
    std::priority_queue<Pending, std::vector<Pending>,
                        std::greater<Pending>> heap;
    for (CoreId c = 0; c < sys.cfg.numCores; ++c) {
        TraceAccess acc;
        if (streams[c] && streams[c]->next(acc))
            heap.push({sys.cores[c].clock + acc.gap, c, acc});
    }

    RunResult res;
    while (!heap.empty()) {
        Pending p = heap.top();
        heap.pop();
        const Cycle done = sys.executeAccess(p.core, p.acc, p.issue);
        sys.cores[p.core].clock = done;
        ++res.accesses;
        if (warmupAccesses && res.accesses == warmupAccesses)
            sys.resetStats();
        if (hook && hookPeriod && res.accesses % hookPeriod == 0)
            hook(sys, res.accesses);
        TraceAccess acc;
        if (streams[p.core]->next(acc))
            heap.push({done + acc.gap, p.core, acc});
    }
    sys.finalize();
    res.execCycles = sys.execCycles();
    return res;
}

} // namespace tinydir
