#include "sim/driver.hh"

#include <chrono>
#include <queue>
#include <sstream>

#include "common/log.hh"
#include "common/sim_error.hh"

namespace tinydir
{

namespace
{

struct Pending
{
    Cycle issue;
    CoreId core;
    TraceAccess acc;

    bool
    operator>(const Pending &o) const
    {
        return issue != o.issue ? issue > o.issue : core > o.core;
    }
};

} // namespace

RunResult
Driver::run(System &sys,
            std::vector<std::unique_ptr<AccessStream>> streams)
{
    panic_if(streams.size() != sys.cfg.numCores,
             "stream count != core count");
    std::priority_queue<Pending, std::vector<Pending>,
                        std::greater<Pending>> heap;
    for (CoreId c = 0; c < sys.cfg.numCores; ++c) {
        TraceAccess acc;
        if (streams[c] && streams[c]->next(acc))
            heap.push({sys.cores[c].clock + acc.gap, c, acc});
    }

    using Clock = std::chrono::steady_clock;
    const Clock::time_point started = Clock::now();

    RunResult res;
    while (!heap.empty()) {
        Pending p = heap.top();
        heap.pop();
        const Cycle done = sys.executeAccess(p.core, p.acc, p.issue);
        sys.cores[p.core].clock = done;
        ++res.accesses;
        if (warmupAccesses && res.accesses == warmupAccesses)
            sys.resetStats();
        if (hook && hookPeriod && res.accesses % hookPeriod == 0)
            hook(sys, res.accesses);
        if (timeoutSeconds > 0.0 &&
            res.accesses % timeoutCheckPeriod == 0) {
            const std::chrono::duration<double> elapsed =
                Clock::now() - started;
            if (elapsed.count() > timeoutSeconds) {
                std::ostringstream os;
                os << "simulation exceeded the " << timeoutSeconds
                   << " s wall-clock limit after " << res.accesses
                   << " accesses";
                throw SimTimeout(os.str(), timeoutSeconds);
            }
        }
        TraceAccess acc;
        if (streams[p.core]->next(acc))
            heap.push({done + acc.gap, p.core, acc});
    }
    sys.finalize();
    res.execCycles = sys.execCycles();
    return res;
}

} // namespace tinydir
