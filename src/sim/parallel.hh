/**
 * @file
 * Parallel experiment runner: executes independent (configuration x
 * workload) simulations on a worker pool.
 *
 * Every System is self-contained and every SyntheticStream draws from
 * its own RNG, so simulations are embarrassingly parallel; the only
 * shared infrastructure the workers touch (the log sinks, the
 * workload layout registry) is thread-safe. Results are returned in
 * submission order and are bit-identical to serial execution
 * regardless of the worker count.
 *
 * Duplicate jobs are memoized through a config+app fingerprint: when
 * a figure's baseline configuration also appears among its schemes,
 * or the same cell is requested twice, the simulation runs once and
 * the result is shared.
 *
 * Execution is fault-isolated: a job that throws (invariant
 * violation, watchdog timeout, bad configuration) is recorded as a
 * failed SimResult — carrying the scheme + workload identity and any
 * violation-dump path — while the rest of the grid completes. Strict
 * mode (--strict / TINYDIR_STRICT=1 in the benches) turns the first
 * failure into a fail-fast SimError instead.
 */

#ifndef TINYDIR_SIM_PARALLEL_HH
#define TINYDIR_SIM_PARALLEL_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/config.hh"
#include "sim/experiment.hh"
#include "workload/profile.hh"

namespace tinydir
{

/** One independent simulation request. */
struct SimJob
{
    SystemConfig cfg;
    const WorkloadProfile *prof = nullptr;
    std::uint64_t accessesPerCore = 0;
    std::uint64_t warmupPerCore = 0;
    /** Verification / watchdog controls (label names the cell). */
    RunControls controls;
};

/** "scheme 'X' / workload 'Y'": the identity of a job in reports. */
std::string describeJob(const SimJob &job);

/** Outcome of one job, with wall-time accounting. */
struct SimResult
{
    RunOut out;
    /** Seconds spent simulating this job (0 for memoized copies). */
    double wallSeconds = 0.0;
    /** True when the result was shared from an identical earlier job. */
    bool memoized = false;
    /**
     * True when the simulation raised instead of completing; out is
     * then default-constructed and error carries the job identity
     * (scheme + workload) plus what went wrong. The rest of the grid
     * still runs (unless strict mode aborted it).
     */
    bool failed = false;
    /** The failure was the wall-clock watchdog (SimTimeout). */
    bool timedOut = false;
    /**
     * The run was cut short (or never started) because the process
     * received SIGINT/SIGTERM; failed is also set. A final checkpoint
     * was flushed when the job had a checkpoint path configured.
     */
    bool interrupted = false;
    std::string error;
    /** Invariant-violation state dump path, when one was written. */
    std::string dumpPath;
};

/**
 * Aggregate simulator throughput over a result set. Only cells that
 * actually executed AND were actually timed count: memoized copies
 * (their time belongs to the source cell), failed cells, and cells
 * whose Driver::run wall time was too short for the clock to resolve
 * are excluded and reported in skipped. Summing the accesses of an
 * untimed cell would divide work by a time that does not contain it,
 * which is exactly the inconsistency the perf guard must not inherit.
 */
struct ThroughputAgg
{
    /** Accesses executed by the counted cells (resumed work only). */
    Counter accesses = 0;
    /** Summed time inside Driver::run for the counted cells. */
    double runSeconds = 0.0;
    unsigned counted = 0;
    unsigned skipped = 0; //!< memoized / failed / untimed cells

    double
    accessesPerSec() const
    {
        return runSeconds > 0.0
                   ? static_cast<double>(accesses) / runSeconds
                   : 0.0;
    }
};

ThroughputAgg aggregateThroughput(const std::vector<SimResult> &results);

/**
 * Canonical fingerprint of a job: every SystemConfig field, the
 * workload identity, and the run lengths. Two jobs with equal
 * fingerprints produce bit-identical results, so runMany() simulates
 * only one of them.
 */
std::string jobFingerprint(const SimJob &job);

/**
 * Worker count used when the caller passes 0: the TINYDIR_JOBS
 * environment variable when set (a positive integer), otherwise the
 * hardware concurrency (at least 1).
 */
unsigned defaultJobCount();

/**
 * Run @p jobs on @p workers threads (0 = defaultJobCount()) and
 * return the results in submission order. With one worker (or one
 * unique job) everything runs on the calling thread.
 *
 * Failures are isolated: a job that throws (invariant violation,
 * watchdog timeout, bad configuration) becomes a failed SimResult
 * carrying the job's scheme + workload identity while every other
 * job still runs. With @p strict set, the first failure instead stops
 * workers from picking up further jobs and is rethrown as SimError
 * once the in-flight jobs have drained.
 */
std::vector<SimResult> runMany(const std::vector<SimJob> &jobs,
                               unsigned workers = 0,
                               bool strict = false);

/** Full option set for runMany(). */
struct RunManyOptions
{
    unsigned workers = 0; //!< 0 = defaultJobCount()
    bool strict = false;
    /**
     * Warmup fast-forward: when non-empty, jobs sharing a workload,
     * run length and warmup-compatible configuration (equal
     * ckpt::warmupSignature) are grouped; each group generates one
     * end-of-warmup snapshot in this directory — under the
     * warmup-normalized (default-tracker) configuration — and every
     * member restores from it, re-deriving its own tracker state from
     * the restored caches. This amortizes warmup per workload instead
     * of per cell. Cells whose configuration equals the normalized one
     * restore bit-identically; other cells trade exact per-scheme
     * warmup interleaving for the shared snapshot, so this is an
     * explicit opt-in, not a default. Snapshots are reused across
     * invocations when loadable; a member whose restore fails falls
     * back to an ordinary cold run.
     */
    std::string warmupSnapshotDir;
};

/** runMany() with the full option set (fast-forward, interrupts). */
std::vector<SimResult> runMany(const std::vector<SimJob> &jobs,
                               const RunManyOptions &opt);

} // namespace tinydir

#endif // TINYDIR_SIM_PARALLEL_HH
