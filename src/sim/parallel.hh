/**
 * @file
 * Parallel experiment runner: executes independent (configuration x
 * workload) simulations on a worker pool.
 *
 * Every System is self-contained and every SyntheticStream draws from
 * its own RNG, so simulations are embarrassingly parallel; the only
 * shared infrastructure the workers touch (the log sinks, the
 * workload layout registry) is thread-safe. Results are returned in
 * submission order and are bit-identical to serial execution
 * regardless of the worker count.
 *
 * Duplicate jobs are memoized through a config+app fingerprint: when
 * a figure's baseline configuration also appears among its schemes,
 * or the same cell is requested twice, the simulation runs once and
 * the result is shared.
 */

#ifndef TINYDIR_SIM_PARALLEL_HH
#define TINYDIR_SIM_PARALLEL_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/config.hh"
#include "sim/experiment.hh"
#include "workload/profile.hh"

namespace tinydir
{

/** One independent simulation request. */
struct SimJob
{
    SystemConfig cfg;
    const WorkloadProfile *prof = nullptr;
    std::uint64_t accessesPerCore = 0;
    std::uint64_t warmupPerCore = 0;
};

/** Outcome of one job, with wall-time accounting. */
struct SimResult
{
    RunOut out;
    /** Seconds spent simulating this job (0 for memoized copies). */
    double wallSeconds = 0.0;
    /** True when the result was shared from an identical earlier job. */
    bool memoized = false;
};

/**
 * Canonical fingerprint of a job: every SystemConfig field, the
 * workload identity, and the run lengths. Two jobs with equal
 * fingerprints produce bit-identical results, so runMany() simulates
 * only one of them.
 */
std::string jobFingerprint(const SimJob &job);

/**
 * Worker count used when the caller passes 0: the TINYDIR_JOBS
 * environment variable when set (a positive integer), otherwise the
 * hardware concurrency (at least 1).
 */
unsigned defaultJobCount();

/**
 * Run @p jobs on @p workers threads (0 = defaultJobCount()) and
 * return the results in submission order. With one worker (or one
 * unique job) everything runs on the calling thread.
 */
std::vector<SimResult> runMany(const std::vector<SimJob> &jobs,
                               unsigned workers = 0);

} // namespace tinydir

#endif // TINYDIR_SIM_PARALLEL_HH
