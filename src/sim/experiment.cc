#include "sim/experiment.hh"

#include <chrono>
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iomanip>
#include <iostream>
#include <memory>
#include <ostream>

#include "ckpt/ckpt.hh"
#include "common/log.hh"
#include "sim/driver.hh"
#include "sim/shard.hh"
#include "sim/system.hh"
#include "verify/verifier.hh"
#include "workload/generator.hh"

namespace tinydir
{

std::uint64_t
effectiveWarmupPerCore(const SystemConfig &cfg,
                       const WorkloadProfile &prof,
                       std::uint64_t warmup_per_core)
{
    // Warmup must cover the deterministic prologue (one touch of the
    // reused footprint) plus some steady-state settling.
    if (warmup_per_core == 0)
        return 0;
    auto layout = layoutFor(prof, cfg);
    return std::max<std::uint64_t>(warmup_per_core,
                                   maxPrologueLen(*layout) + 2000);
}

RunOut
runOne(const SystemConfig &cfg, const WorkloadProfile &prof,
       std::uint64_t accesses_per_core,
       std::uint64_t warmup_per_core, const RunControls &ctl)
{
    auto layout = layoutFor(prof, cfg);
    const std::uint64_t warmup =
        effectiveWarmupPerCore(cfg, prof, warmup_per_core);
    auto streams = makeStreams(layout, cfg, accesses_per_core + warmup,
                               warmup > 0);
    System sys(cfg);
    // The ParallelDriver delegates to the serial Driver at threads=1,
    // so one setup path serves every mode.
    ParallelDriver driver;
    driver.threads = std::max(1u, ctl.simThreads);
    driver.epochCycles = ctl.simEpoch;
    driver.warmupAccesses = warmup * cfg.numCores;
    driver.timeoutSeconds = ctl.timeoutSeconds;
    driver.stopAfterAccesses = ctl.stopAfterAccesses;
    if (!ctl.checkpointPath.empty()) {
        driver.checkpointEvery = ctl.checkpointEvery;
        driver.checkpointSink =
            [&ctl, &prof](
                System &s,
                const std::vector<std::unique_ptr<AccessStream>> &strs,
                const DriverProgress &p) {
                ckpt::saveRunFile(ctl.checkpointPath, s, strs, p,
                                  prof.name);
            };
    }
    RunOut out;
    DriverProgress progress;
    bool resumed = false;
    if (!ctl.resumePath.empty() && !ctl.checkpointPath.empty() &&
        !std::ifstream(ctl.resumePath).good()) {
        // Checkpointed-run mode (--checkpoint + --resume together,
        // the continue-an-interrupted-grid workflow): a cell whose
        // checkpoint does not exist never got one — it either
        // finished or never started before the interrupt — so it
        // (re)runs cold. A bare --resume with a missing file stays a
        // hard CheckpointError below (typo protection).
        warn("no checkpoint at ", ctl.resumePath, "; ",
             ctl.label.empty() ? "run" : ctl.label, " starts cold");
    } else if (!ctl.resumePath.empty()) {
        ckpt::LoadResult lr = ckpt::loadRunFile(
            ctl.resumePath, sys, streams, ctl.resumeFastForward);
        if (lr.profile != prof.name)
            throw CheckpointError(
                "checkpoint was taken on workload '" + lr.profile +
                "', refusing restore into '" + prof.name + "'");
        progress = std::move(lr.progress);
        out.resumedAt = lr.accessesDone;
        resumed = true;
    }
    Verifier::Options vo;
    vo.dumpDir = ctl.dumpDir;
    vo.label = ctl.label;
    Verifier verifier(std::move(vo));
    bool verify = ctl.verifyPeriod > 0;
    if (verify && ctl.simEpoch > 0 && driver.threads > 1) {
        // Relaxed epochs let tracker state trail the private caches by
        // up to one window, so mid-run invariants legitimately wobble;
        // only exact lockstep (--epoch=0) is verifiable.
        warn("periodic verification skipped: relaxed epochs (",
             ctl.simEpoch, " cycles) make mid-run invariants ",
             "approximate; use --epoch=0 for verified parallel runs");
        verify = false;
    }
    if (verify) {
        driver.hookPeriod = ctl.verifyPeriod;
        driver.hook = [&verifier](System &s, Counter n) {
            verifier.enforce(s, n);
        };
    }
    const auto simStart = std::chrono::steady_clock::now();
    const RunResult rr =
        driver.run(sys, std::move(streams), resumed ? &progress : nullptr);
    const double simWall =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      simStart)
            .count();
    // Final pass so corruption in the tail (after the last periodic
    // hook firing) cannot slip through. Skipped for relaxed epochs
    // alongside the periodic checks: softened races leave end-state
    // tracking approximate too.
    if (verify)
        verifier.enforce(sys, rr.accesses);
    out.totalCycles = rr.execCycles;
    out.accesses = rr.accesses;
    const ShardTelemetry &tl = driver.telemetry();
    out.simThreads = std::max(1u, driver.threads);
    out.epochs = tl.epochs;
    out.maxObservedSkew = tl.maxObservedSkew;
    out.crossShardNotices = tl.crossShardNotices;
    out.softenedRequests = tl.softenedRequests;
    out.staleNotices = tl.staleNotices;
    out.wallSeconds = simWall;
    // Throughput covers only the accesses this process executed: a
    // resumed run did not pay for the pre-checkpoint portion.
    if (simWall > 0.0) {
        out.accessesPerSec =
            static_cast<double>(rr.accesses - out.resumedAt) / simWall;
    }
    out.stats = sys.dump();
    out.execCycles =
        static_cast<Cycle>(out.stats.get("exec_cycles"));
    return out;
}

namespace
{

/**
 * Parse the value of a --flag=N bench argument. Rejects garbage,
 * trailing junk and zero: silently atoi-ing those to 0 used to turn
 * a typo into a 0-core simulation.
 */
std::uint64_t
parsePositiveFlag(const char *flag, const char *value)
{
    char *end = nullptr;
    const unsigned long long v = std::strtoull(value, &end, 10);
    fatal_if(value[0] == '\0' || end == nullptr || *end != '\0' ||
                 v == 0,
             flag, " expects a positive integer, got \"", value, "\"");
    return static_cast<std::uint64_t>(v);
}

/**
 * Parse the value of a --flag=N argument that accepts zero (the
 * relaxed-epoch knob: 0 = exact lockstep).
 */
std::uint64_t
parseNonNegativeFlag(const char *flag, const char *value)
{
    char *end = nullptr;
    const unsigned long long v = std::strtoull(value, &end, 10);
    fatal_if(value[0] == '\0' || end == nullptr || *end != '\0',
             flag, " expects a non-negative integer, got \"", value,
             "\"");
    return static_cast<std::uint64_t>(v);
}

/** Parse a positive decimal number of seconds. */
double
parseSecondsFlag(const char *flag, const char *value)
{
    char *end = nullptr;
    const double v = std::strtod(value, &end);
    fatal_if(value[0] == '\0' || end == nullptr || *end != '\0' ||
                 !(v > 0.0),
             flag, " expects a positive number of seconds, got \"",
             value, "\"");
    return v;
}

} // namespace

RunControls
envRunControls()
{
    RunControls ctl;
    if (const char *env = std::getenv("TINYDIR_VERIFY")) {
        char *end = nullptr;
        const unsigned long long v = std::strtoull(env, &end, 10);
        if (env[0] != '\0' && end && *end == '\0' && v > 0)
            ctl.verifyPeriod = static_cast<Counter>(v);
        else
            warn("TINYDIR_VERIFY must be a positive access count, "
                 "ignoring: ", env);
    }
    if (const char *env = std::getenv("TINYDIR_TIMEOUT")) {
        char *end = nullptr;
        const double v = std::strtod(env, &end);
        if (env[0] != '\0' && end && *end == '\0' && v > 0.0)
            ctl.timeoutSeconds = v;
        else
            warn("TINYDIR_TIMEOUT must be a positive number of "
                 "seconds, ignoring: ", env);
    }
    if (const char *env = std::getenv("TINYDIR_THREADS")) {
        char *end = nullptr;
        const unsigned long long v = std::strtoull(env, &end, 10);
        if (env[0] != '\0' && end && *end == '\0' && v > 0)
            ctl.simThreads = static_cast<unsigned>(v);
        else
            warn("TINYDIR_THREADS must be a positive thread count, "
                 "ignoring: ", env);
    }
    if (const char *env = std::getenv("TINYDIR_EPOCH")) {
        char *end = nullptr;
        const unsigned long long v = std::strtoull(env, &end, 10);
        if (env[0] != '\0' && end && *end == '\0')
            ctl.simEpoch = static_cast<Cycle>(v);
        else
            warn("TINYDIR_EPOCH must be a non-negative cycle count, "
                 "ignoring: ", env);
    }
    return ctl;
}

/**
 * parseBenchScale/selectApps are the CLI boundary of the bench
 * binaries: a bad flag or workload name must exit the process (the
 * "fatal:" line is already on stderr), not escape main() as an
 * exception.
 */
[[noreturn]] static void
cliFatal(const ConfigError &)
{
    // TDLINT: allow(error-path): CLI boundary; main() must not see throws
    std::exit(1);
}

namespace
{

/** Default shared-snapshot directory for --warmup-ff without a value. */
std::string
defaultSnapshotDir()
{
    const char *t = std::getenv("TMPDIR");
    return (t && t[0] != '\0') ? std::string(t) : std::string("/tmp");
}

} // namespace

BenchScale
parseBenchScale(int argc, char **argv)
try {
    // Interrupted grids should checkpoint + flush partial results
    // instead of dying mid-write; the driver polls this flag.
    ckpt::installSignalHandlers();
    BenchScale s;
    s.accessesPerCore = 20000;
    s.controls = envRunControls();
    if (const char *env = std::getenv("TINYDIR_WARMUP_FF")) {
        if (std::strcmp(env, "1") == 0)
            s.warmupSnapshotDir = defaultSnapshotDir();
        else if (env[0] != '\0' && std::strcmp(env, "0") != 0)
            s.warmupSnapshotDir = env;
    }
    bool explicit_cores = false;
    bool explicit_accesses = false;
    bool explicit_warmup = false;
    const char *envf = std::getenv("TINYDIR_FULL");
    if (envf && envf[0] == '1')
        s.full = true;
    const char *envq = std::getenv("TINYDIR_QUICK");
    if (envq && envq[0] == '1')
        s.quick = true;
    const char *envs = std::getenv("TINYDIR_STRICT");
    if (envs && envs[0] == '1')
        s.strict = true;
    for (int i = 1; i < argc; ++i) {
        const char *a = argv[i];
        if (std::strcmp(a, "--full") == 0) {
            s.full = true;
        } else if (std::strcmp(a, "--quick") == 0) {
            s.quick = true;
        } else if (std::strcmp(a, "--strict") == 0) {
            s.strict = true;
        } else if (std::strncmp(a, "--verify=", 9) == 0) {
            s.controls.verifyPeriod =
                parsePositiveFlag("--verify", a + 9);
        } else if (std::strncmp(a, "--timeout=", 10) == 0) {
            s.controls.timeoutSeconds =
                parseSecondsFlag("--timeout", a + 10);
        } else if (std::strncmp(a, "--cores=", 8) == 0) {
            s.cores = static_cast<unsigned>(
                parsePositiveFlag("--cores", a + 8));
            explicit_cores = true;
        } else if (std::strncmp(a, "--accesses=", 11) == 0) {
            s.accessesPerCore = parsePositiveFlag("--accesses", a + 11);
            explicit_accesses = true;
        } else if (std::strncmp(a, "--warmup=", 9) == 0) {
            s.warmupPerCore = parsePositiveFlag("--warmup", a + 9);
            explicit_warmup = true;
        } else if (std::strncmp(a, "--jobs=", 7) == 0) {
            s.jobs = static_cast<unsigned>(
                parsePositiveFlag("--jobs", a + 7));
        } else if (std::strncmp(a, "--threads=", 10) == 0) {
            s.controls.simThreads = static_cast<unsigned>(
                parsePositiveFlag("--threads", a + 10));
        } else if (std::strncmp(a, "--epoch=", 8) == 0) {
            s.controls.simEpoch = static_cast<Cycle>(
                parseNonNegativeFlag("--epoch", a + 8));
        } else if (std::strncmp(a, "--app=", 6) == 0) {
            s.onlyApps.emplace_back(a + 6);
        } else if (std::strncmp(a, "--checkpoint=", 13) == 0) {
            fatal_if(a[13] == '\0', "--checkpoint expects a path");
            s.controls.checkpointPath = a + 13;
        } else if (std::strncmp(a, "--checkpoint-every=", 19) == 0) {
            s.controls.checkpointEvery =
                parsePositiveFlag("--checkpoint-every", a + 19);
        } else if (std::strncmp(a, "--resume=", 9) == 0) {
            fatal_if(a[9] == '\0', "--resume expects a path");
            s.controls.resumePath = a + 9;
        } else if (std::strcmp(a, "--warmup-ff") == 0) {
            s.warmupSnapshotDir = defaultSnapshotDir();
        } else if (std::strncmp(a, "--warmup-ff=", 12) == 0) {
            fatal_if(a[12] == '\0', "--warmup-ff expects a directory");
            s.warmupSnapshotDir = a + 12;
        } else {
            warn("ignoring unknown bench argument: ", a);
        }
    }
    if (s.full && s.quick) {
        warn("--full and --quick both requested; keeping --full");
        s.quick = false;
    }
    // Presets fill in whatever was not given explicitly: an explicit
    // --cores/--accesses always wins over --full/--quick.
    if (s.full) {
        if (!explicit_cores)
            s.cores = 128;
        if (!explicit_accesses) {
            s.accessesPerCore = std::max<std::uint64_t>(
                s.accessesPerCore, 20000);
        }
    } else if (s.quick) {
        if (!explicit_cores)
            s.cores = 8;
        if (!explicit_accesses)
            s.accessesPerCore = 2000;
    }
    if (!explicit_warmup)
        s.warmupPerCore = s.accessesPerCore / 2;
    return s;
} catch (const ConfigError &e) {
    cliFatal(e);
}

std::vector<const WorkloadProfile *>
selectApps(const BenchScale &s)
try {
    std::vector<const WorkloadProfile *> apps;
    if (!s.onlyApps.empty()) {
        for (const auto &name : s.onlyApps)
            apps.push_back(&profileByName(name));
        return apps;
    }
    if (s.quick) {
        for (const char *n : {"barnes", "ocean_cp", "TPC-C", "compress"})
            apps.push_back(&profileByName(n));
        return apps;
    }
    for (const auto &p : allProfiles())
        apps.push_back(&p);
    return apps;
} catch (const ConfigError &e) {
    cliFatal(e);
}

SystemConfig
baseConfig(const BenchScale &s)
{
    SystemConfig cfg = SystemConfig::scaled(s.cores);
    if (!s.full) {
        // The paper's 8K-access observation window corresponds to ~1M
        // LLC accesses across 128 banks; scaled runs shorten it so the
        // DynSpill controller converges within the shorter traces.
        cfg.spillWindowAccesses = 1024;
    }
    return cfg;
}

ResultTable::ResultTable(std::string t, std::vector<std::string> c)
    : title(std::move(t)), cols(std::move(c))
{
}

void
ResultTable::addRow(const std::string &name, std::vector<double> values)
{
    panic_if(values.size() != cols.size(),
             "row width mismatch in table ", title);
    rows.emplace_back(name, std::move(values));
}

double
ResultTable::columnAverage(unsigned col) const
{
    // Failed cells are recorded as NaN; the average covers the cells
    // that did produce a value, so one failed run does not poison the
    // whole column.
    double sum = 0.0;
    std::size_t n = 0;
    for (const auto &[name, vals] : rows) {
        if (!std::isfinite(vals[col]))
            continue;
        sum += vals[col];
        ++n;
    }
    return n ? sum / static_cast<double>(n) : 0.0;
}

void
ResultTable::print(std::ostream &os, int precision,
                   bool with_average) const
{
    const char *csv = std::getenv("TINYDIR_CSV");
    if (csv && csv[0] == '1') {
        printCsv(os, with_average);
        return;
    }
    os << "# " << title << '\n';
    os << std::left << std::setw(14) << "workload";
    for (const auto &c : cols)
        os << ' ' << std::right << std::setw(14) << c;
    os << '\n';
    auto print_row = [&](const std::string &name,
                         const std::vector<double> &vals) {
        os << std::left << std::setw(14) << name;
        for (double v : vals) {
            os << ' ' << std::right << std::setw(14) << std::fixed
               << std::setprecision(precision) << v;
        }
        os << '\n';
    };
    for (const auto &[name, vals] : rows)
        print_row(name, vals);
    if (with_average && !rows.empty()) {
        std::vector<double> avg(cols.size(), 0.0);
        for (unsigned i = 0; i < cols.size(); ++i)
            avg[i] = columnAverage(i);
        print_row("Average", avg);
    }
    os.unsetf(std::ios::fixed);
}

void
ResultTable::printCsv(std::ostream &os, bool with_average) const
{
    os << "# " << title << '\n';
    os << "workload";
    for (const auto &c : cols)
        os << ',' << c;
    os << '\n';
    auto row_out = [&](const std::string &name,
                       const std::vector<double> &vals) {
        os << name;
        for (double v : vals)
            os << ',' << std::setprecision(8) << v;
        os << '\n';
    };
    for (const auto &[name, vals] : rows)
        row_out(name, vals);
    if (with_average && !rows.empty()) {
        std::vector<double> avg(cols.size(), 0.0);
        for (unsigned i = 0; i < cols.size(); ++i)
            avg[i] = columnAverage(i);
        row_out("Average", avg);
    }
}

std::string
jsonResultsPath()
{
    const char *p = std::getenv("TINYDIR_JSON");
    return p ? std::string(p) : std::string();
}

namespace
{

void
jsonString(std::ostream &os, const std::string &s)
{
    os << '"';
    for (char ch : s) {
        switch (ch) {
          case '"': os << "\\\""; break;
          case '\\': os << "\\\\"; break;
          case '\n': os << "\\n"; break;
          case '\t': os << "\\t"; break;
          default: os << ch;
        }
    }
    os << '"';
}

void
jsonNumber(std::ostream &os, double v)
{
    if (!std::isfinite(v)) {
        os << "null";
        return;
    }
    os << std::setprecision(17) << v;
}

} // namespace

void
appendJsonResults(const std::string &path, const ResultTable &table,
                  const BenchScale &scale, const BenchTiming &timing)
{
    std::ofstream os(path, std::ios::app);
    if (!os) {
        warn("cannot open TINYDIR_JSON file for append: ", path);
        return;
    }
    os << "{\"title\":";
    jsonString(os, table.tableTitle());
    os << ",\"cores\":" << scale.cores
       << ",\"accesses_per_core\":" << scale.accessesPerCore
       << ",\"warmup_per_core\":" << scale.warmupPerCore
       << ",\"full\":" << (scale.full ? "true" : "false")
       << ",\"quick\":" << (scale.quick ? "true" : "false")
       << ",\"jobs\":" << timing.jobs
       << ",\"sims_run\":" << timing.simsRun
       << ",\"sims_memoized\":" << timing.simsMemoized
       << ",\"sims_failed\":" << timing.failures.size()
       << ",\"failures\":[";
    for (std::size_t i = 0; i < timing.failures.size(); ++i) {
        const BenchFailure &f = timing.failures[i];
        if (i)
            os << ',';
        os << "{\"error\":";
        jsonString(os, f.error);
        os << ",\"dump\":";
        jsonString(os, f.dumpPath);
        os << ",\"timed_out\":" << (f.timedOut ? "true" : "false")
           << "}";
    }
    os << "],\"wall_seconds\":";
    jsonNumber(os, timing.wallSeconds);
    os << ",\"sim_seconds\":";
    jsonNumber(os, timing.simSeconds);
    os << ",\"sim_accesses\":" << timing.simAccesses
       << ",\"accesses_per_sec\":";
    jsonNumber(os, timing.accessesPerSec());
    os << ",\"columns\":[";
    const auto &cols = table.columns();
    for (std::size_t i = 0; i < cols.size(); ++i) {
        if (i)
            os << ',';
        jsonString(os, cols[i]);
    }
    os << "],\"rows\":[";
    const auto &rows = table.rowData();
    for (std::size_t r = 0; r < rows.size(); ++r) {
        if (r)
            os << ',';
        os << "{\"workload\":";
        jsonString(os, rows[r].first);
        os << ",\"values\":[";
        for (std::size_t c = 0; c < rows[r].second.size(); ++c) {
            if (c)
                os << ',';
            jsonNumber(os, rows[r].second[c]);
        }
        os << "]}";
    }
    os << "]}\n";
}

} // namespace tinydir
