/**
 * @file
 * ParallelDriver implementation: the exact-lockstep baton loop and the
 * relaxed-epoch worker pool described in shard.hh.
 *
 * Both modes route every access through System::accessFlow with an
 * execution context that supplies real locks and shard routing, so the
 * MESI flow is literally the serial one. The difference is purely in
 * scheduling:
 *
 *  - exact: one global issue wheel, one baton mutex, full serial
 *    bookkeeping per access. Identical (cycle, core) retire order to
 *    the serial driver, hence bit-identical stats and checkpoints.
 *
 *  - relaxed: per-worker issue wheels over contiguous core ranges;
 *    workers drain their wheels up to the epoch edge, then meet at a
 *    barrier where the LAST arriver (the leader) drains the cross-
 *    shard notice mailboxes in deterministic (receiver, sender) order,
 *    folds shard statistics, and services warmup/hook/checkpoint/
 *    timeout/interrupt duties before opening the next window.
 *
 * Fold discipline: sys.engine stays the canonical statistics and
 * busy-window holder. Every barrier (and every exact-mode service
 * point) absorbs the shard engines' statistic deltas into it; busy
 * windows are folded only around checkpoints and at the end of the
 * run, because moving them is what makes saved state independent of
 * the thread count (the serialized engine section then matches a
 * serial run byte for byte in exact mode).
 */

#include "sim/shard.hh"

#include <chrono>
#include <condition_variable>
#include <exception>
#include <memory>
#include <mutex>
#include <sstream>
#include <thread>
#include <vector>

#include "ckpt/ckpt.hh"
#include "common/log.hh"
#include "common/sim_error.hh"
#include "common/time_wheel.hh"

namespace tinydir
{

namespace
{

/** Sentinel issue time of an exhausted stream (same as sim/driver.cc). */
constexpr Cycle idle = ~Cycle(0);

/**
 * Reusable barrier whose last arriver runs a leader function under the
 * barrier mutex before releasing the generation. The mutex acquire/
 * release pairs give every worker a happens-before edge over whatever
 * the leader (and every other worker, transitively through earlier
 * generations) wrote — which is what lets the leader read worker-
 * published progress, and workers read leader-published epoch state,
 * through plain non-atomic fields.
 */
class EpochBarrier
{
  public:
    explicit EpochBarrier(unsigned n) : total(n) {}

    template <typename Fn>
    void
    arrive(Fn &&leader)
    {
        std::unique_lock<std::mutex> lk(mu);
        if (++arrived == total) {
            leader();
            arrived = 0;
            ++generation;
            cv.notify_all();
        } else {
            const std::uint64_t gen = generation;
            cv.wait(lk, [&] { return generation != gen; });
        }
    }

  private:
    std::mutex mu;
    std::condition_variable cv;
    const unsigned total;
    unsigned arrived = 0;
    std::uint64_t generation = 0;
};

/** Per-worker mutable state, padded so workers never share a line. */
struct alignas(64) WorkerSlot
{
    CoreId coreBegin = 0;
    CoreId coreEnd = 0;
    /** Issue wheel over this worker's cores (relaxed mode only). */
    TimeWheel<CoreId> wheel;
    /** Accesses this worker retired so far. */
    Counter retired = 0;
    /** Streams of this worker's cores that are still live. */
    unsigned live = 0;
    /** Published before each barrier: earliest pending issue (idle
     *  when none), and the largest (issue - epoch start) seen. */
    Cycle earliest = idle;
    Cycle maxSkew = 0;
    /** Mailbox telemetry, accumulated from the execution context. */
    Counter crossNotices = 0;
    Counter fallbacks = 0;
};

/** Everything the workers and the leader share. */
struct Runtime
{
    System &sys;
    unsigned threads;
    unsigned shards;

    std::vector<std::unique_ptr<Engine>> eng;
    std::vector<std::mutex> homeMu;
    std::unique_ptr<std::mutex[]> privMu;
    std::mutex dramMu;
    std::mutex llcStatsMu;
    /** Exact mode: the one-access-at-a-time global baton. */
    std::mutex batonMu;

    /** Per-(sender, receiver) notice rings; index src*threads + dst. */
    std::vector<NoticeMailbox> mbx;

    std::vector<WorkerSlot> slots;

    /** Replay position (driver.cc layout; exact mode mutates it under
     *  the baton, relaxed workers each own their cores' entries). */
    std::vector<Cycle> issues;
    std::vector<TraceAccess> pending;
    Counter accesses = 0;
    unsigned live = 0;

    /** First error wins; abort makes everyone drain to the exit. */
    std::mutex errMu;
    std::exception_ptr err;
    std::atomic<bool> abort{false};

    /** Leader/baton-published run control (read after barrier/baton). */
    bool finished = false;
    bool finalizeAtEnd = true;
    /** Relaxed mode: the open epoch window [epochStart, epochEnd). */
    Cycle epochStart = 0;
    Cycle epochEnd = 0;

    Runtime(System &s, unsigned t, unsigned sh)
        : sys(s), threads(t), shards(sh), homeMu(sh),
          privMu(new std::mutex[s.cfg.numCores]), slots(t),
          issues(s.cfg.numCores, idle), pending(s.cfg.numCores)
    {
    }

    unsigned shardOf(Addr block) const
    {
        return sys.llc.bankOf(block) % shards;
    }

    unsigned workerOfShard(unsigned s) const { return s % threads; }

    Engine &engineOf(Addr block) { return *eng[shardOf(block)]; }

    NoticeMailbox &mailbox(unsigned src, unsigned dst)
    {
        return mbx[src * threads + dst];
    }

    void
    storeError(std::exception_ptr e)
    {
        std::lock_guard<std::mutex> g(errMu);
        if (!err)
            err = e;
        abort.store(true, std::memory_order_release);
    }

    // -- fold / unfold -----------------------------------------------------

    /** Absorb every shard engine's statistic deltas into sys.engine. */
    void
    foldStats()
    {
        for (auto &e : eng)
            sys.engine.absorbStatsFrom(*e);
    }

    /**
     * Move every busy window into sys.engine and advance every expiry
     * wheel to the global maximum clock, reaping entries the serial
     * engine would have reaped by now. Returns that clock so the
     * inverse can restore it. Quiescence required (barrier or baton).
     */
    Cycle
    foldBusy()
    {
        Cycle tmax = sys.engine.expiryClock();
        for (auto &e : eng)
            tmax = std::max(tmax, e->expiryClock());
        sys.engine.drainExpiredTo(tmax);
        for (auto &e : eng) {
            e->drainExpiredTo(tmax);
            sys.engine.absorbBusyFrom(*e);
        }
        return tmax;
    }

    /**
     * Inverse of foldBusy after a mid-run checkpoint: hand the windows
     * back to their home shards, then re-advance every wheel to @p
     * tmax — absorb/redistribute rebuild the wheels from scratch
     * (clock zero), and a later fold must not see a clock regression
     * (the saved wheel clock would diverge from a serial run's).
     */
    void
    unfoldBusy(Cycle tmax)
    {
        sys.engine.redistributeBusy(
            [&](Addr blk) -> Engine & { return engineOf(blk); });
        sys.engine.drainExpiredTo(tmax);
        for (auto &e : eng)
            e->drainExpiredTo(tmax);
    }

    /** Initial scatter (fresh run or checkpoint resume). */
    void
    scatterInitial()
    {
        const Cycle t0 = sys.engine.expiryClock();
        unfoldBusy(t0);
    }
};

/** Install the LLC statistics mutex for the run; always restore. */
class LlcStatsLockGuard
{
  public:
    LlcStatsLockGuard(Llc &l, std::mutex &mu) : llc(l)
    {
        llc.setStatsMutex(&mu);
    }
    ~LlcStatsLockGuard() { llc.setStatsMutex(nullptr); }

  private:
    Llc &llc;
};

/**
 * Exact-lockstep execution context. All execution is serialized by the
 * baton, but the locks stay in place so the code path (and therefore
 * the locking bugs) are the same ones the relaxed mode exercises. The
 * home lock is held as a member unique_lock: a protocol panic between
 * request() and finishRequest() then releases it on unwind instead of
 * deadlocking the other workers on their way to the exit.
 */
struct ExactExec
{
    Runtime &rt;
    NoticeVec buf;
    std::unique_lock<std::mutex> homeLk;
    std::unique_lock<std::mutex> privLk;
    static constexpr bool debugTxn = true;

    explicit ExactExec(Runtime &r) : rt(r) {}

    NoticeVec &scratch() { return buf; }

    void
    lockPriv(CoreId c)
    {
        privLk = std::unique_lock<std::mutex>(rt.privMu[c]);
    }

    void unlockPriv(CoreId) { privLk.unlock(); }

    RequestResult
    request(CoreId c, Addr block, ReqType type, Cycle at)
    {
        const unsigned s = rt.shardOf(block);
        homeLk = std::unique_lock<std::mutex>(rt.homeMu[s]);
        return rt.eng[s]->request(c, block, type, at);
    }

    void finishRequest(Addr) { homeLk.unlock(); }

    void
    notice(CoreId c, Addr block, MesiState st, Cycle t)
    {
        rt.sys.noteNoticeDebug(c, block, st, t);
        const unsigned s = rt.shardOf(block);
        std::lock_guard<std::mutex> g(rt.homeMu[s]);
        rt.eng[s]->evictionNotice(c, block, st, t);
    }
};

/**
 * Relaxed-epoch execution context for worker @p self. Same-shard
 * eviction notices are delivered inline under the home lock; remote
 * ones ride the (self, owner) mailbox and are drained by the barrier
 * leader — unless the ring is full, in which case the sender delivers
 * inline (out of deterministic drain order, but counted, and legal:
 * notices are dispatched holding no other lock).
 */
struct RelaxedExec
{
    Runtime &rt;
    unsigned self;
    Counter crossNotices = 0;
    Counter fallbacks = 0;
    NoticeVec buf;
    std::unique_lock<std::mutex> homeLk;
    std::unique_lock<std::mutex> privLk;
    static constexpr bool debugTxn = false;

    RelaxedExec(Runtime &r, unsigned w) : rt(r), self(w) {}

    NoticeVec &scratch() { return buf; }

    void
    lockPriv(CoreId c)
    {
        privLk = std::unique_lock<std::mutex>(rt.privMu[c]);
    }

    void unlockPriv(CoreId) { privLk.unlock(); }

    RequestResult
    request(CoreId c, Addr block, ReqType type, Cycle at)
    {
        const unsigned s = rt.shardOf(block);
        homeLk = std::unique_lock<std::mutex>(rt.homeMu[s]);
        return rt.eng[s]->request(c, block, type, at);
    }

    void finishRequest(Addr) { homeLk.unlock(); }

    void
    notice(CoreId c, Addr block, MesiState st, Cycle t)
    {
        const unsigned s = rt.shardOf(block);
        const unsigned owner = rt.workerOfShard(s);
        if (owner != self) {
            ++crossNotices;
            if (rt.mailbox(self, owner).push({c, block, st, t}))
                return;
            ++fallbacks;
        }
        std::lock_guard<std::mutex> g(rt.homeMu[s]);
        rt.eng[s]->evictionNotice(c, block, st, t);
    }
};

/**
 * The exact-lockstep loop body: one access of serial-driver
 * bookkeeping, executed with the baton held. Mirrors sim/driver.cc
 * line for line (minus the host-prefetch batching, which never
 * affected retire order) so the access count at which every side
 * effect fires — warmup reset, hook, timeout poll, checkpoint — is
 * the serial one exactly.
 */
class ExactLoop
{
  public:
    ExactLoop(Runtime &r, ParallelDriver &d,
              std::vector<std::unique_ptr<AccessStream>> &s,
              std::chrono::steady_clock::time_point start)
        : rt(r), drv(d), streams(s), started(start)
    {
        wheel.reserve(rt.sys.cfg.numCores);
        for (CoreId c = 0; c < rt.sys.cfg.numCores; ++c) {
            if (rt.issues[c] != idle)
                wheel.insert(rt.issues[c], c);
        }
    }

    ExactLoop(const ExactLoop &) = delete;
    ExactLoop &operator=(const ExactLoop &) = delete;

    /** Run one worker until the run finishes or aborts. */
    void
    work()
    {
        while (true) {
            std::lock_guard<std::mutex> baton(rt.batonMu);
            if (rt.finished || rt.abort.load(std::memory_order_acquire))
                return;
            step();
        }
    }

  private:
    DriverProgress
    progressNow() const
    {
        DriverProgress p;
        p.accesses = rt.accesses;
        p.live = rt.live;
        p.issues = rt.issues;
        p.pending = rt.pending;
        return p;
    }

    void
    checkpoint()
    {
        rt.foldStats();
        const Cycle tmax = rt.foldBusy();
        drv.checkpointSink(rt.sys, streams, progressNow());
        rt.unfoldBusy(tmax);
    }

    void
    step()
    {
        if (rt.live == 0) {
            rt.finished = true;
            return;
        }
        TimeWheel<CoreId>::Event ev;
        const bool got = wheel.pop(ev);
        panic_if(!got, "issue wheel empty with live streams");
        const CoreId best = ev.payload;
        const Cycle best_issue = rt.issues[best];
        const Cycle done =
            rt.sys.accessFlow(ex, best, rt.pending[best], best_issue);
        rt.sys.cores[best].clock = done;
        ++rt.accesses;
        TraceAccess acc;
        if (streams[best]->next(acc)) {
            rt.issues[best] = done + acc.gap;
            rt.pending[best] = acc;
            wheel.insert(rt.issues[best], best);
        } else {
            rt.issues[best] = idle;
            --rt.live;
        }
        if (drv.warmupAccesses && rt.accesses == drv.warmupAccesses) {
            rt.foldStats();
            rt.sys.resetStats();
        }
        if (drv.hook && drv.hookPeriod &&
            rt.accesses % drv.hookPeriod == 0) {
            rt.foldStats();
            drv.hook(rt.sys, rt.accesses);
        }
        if (rt.accesses % ParallelDriver::timeoutCheckPeriod == 0) {
            if (drv.timeoutSeconds > 0.0) {
                // TDLINT: allow(parallel): host watchdog only.
                const auto hostNow = std::chrono::steady_clock::now();
                const std::chrono::duration<double> elapsed =
                    hostNow - started;
                if (elapsed.count() > drv.timeoutSeconds) {
                    std::ostringstream os;
                    os << "simulation exceeded the "
                       << drv.timeoutSeconds
                       << " s wall-clock limit after " << rt.accesses
                       << " accesses";
                    throw SimTimeout(os.str(), drv.timeoutSeconds);
                }
            }
            if (ckpt::interruptRequested()) {
                if (drv.checkpointSink)
                    checkpoint();
                std::ostringstream os;
                os << "interrupted after " << rt.accesses
                   << " accesses";
                throw SimInterrupt(os.str());
            }
        }
        if (drv.checkpointEvery && drv.checkpointSink &&
            rt.accesses % drv.checkpointEvery == 0) {
            checkpoint();
        }
        if (drv.stopAfterAccesses &&
            rt.accesses >= drv.stopAfterAccesses) {
            if (drv.checkpointSink)
                checkpoint();
            rt.finalizeAtEnd = false;
            rt.finished = true;
        }
        if (rt.live == 0)
            rt.finished = true;
    }

    Runtime &rt;
    ParallelDriver &drv;
    std::vector<std::unique_ptr<AccessStream>> &streams;
    /** Issue wheel shared by all workers; only touched under baton. */
    TimeWheel<CoreId> wheel;
    /** Reusable execution context; only touched under baton. */
    ExactExec ex{rt};
    const std::chrono::steady_clock::time_point started;
};

/**
 * The relaxed-epoch machinery: per-worker window loops plus the
 * barrier leader's bookkeeping. Warmup, hooks and checkpoints fire at
 * the first barrier at or past their access marks instead of at exact
 * counts — the overshoot is bounded by one epoch of execution.
 */
class RelaxedLoop
{
  public:
    RelaxedLoop(Runtime &r, ParallelDriver &d,
                std::vector<std::unique_ptr<AccessStream>> &s,
                std::chrono::steady_clock::time_point start)
        : rt(r), drv(d), streams(s), barrier(r.threads), started(start)
    {
        // Marks: the next access count at which each periodic duty is
        // due. A resumed run re-derives them from the restored count.
        warmupDone =
            !drv.warmupAccesses || rt.accesses >= drv.warmupAccesses;
        nextHook = nextMark(drv.hookPeriod);
        nextCkpt = nextMark(drv.checkpointEvery);
        rt.epochStart = initialEpochStart();
        rt.epochEnd = rt.epochStart + drv.epochCycles;
    }

    void
    work(unsigned w)
    {
        WorkerSlot &slot = rt.slots[w];
        RelaxedExec ex(rt, w);
        Cycle winStart = rt.epochStart;
        Cycle winEnd = rt.epochEnd;
        while (true) {
            if (!rt.abort.load(std::memory_order_acquire)) {
                try {
                    window(ex, slot, winStart, winEnd);
                } catch (...) {
                    rt.storeError(std::current_exception());
                }
            }
            slot.earliest = slot.wheel.earliestCycle();
            slot.crossNotices = ex.crossNotices;
            slot.fallbacks = ex.fallbacks;
            barrier.arrive([this] { lead(); });
            if (rt.finished)
                return;
            winStart = rt.epochStart;
            winEnd = rt.epochEnd;
        }
    }

  private:
    Counter
    nextMark(Counter period) const
    {
        if (!period)
            return 0;
        return (rt.accesses / period + 1) * period;
    }

    /** First epoch boundary at or below the earliest pending issue. */
    Cycle
    initialEpochStart() const
    {
        Cycle min_issue = idle;
        for (Cycle c : rt.issues)
            min_issue = std::min(min_issue, c);
        if (min_issue == idle)
            return 0;
        return (min_issue / drv.epochCycles) * drv.epochCycles;
    }

    /**
     * Drain the worker's issue wheel up to the epoch edge. The abort
     * flag is polled every 1024 retires so a peer's failure (or a
     * leader-detected interrupt) stops a long window promptly.
     */
    void
    window(RelaxedExec &ex, WorkerSlot &slot, Cycle winStart,
           Cycle winEnd)
    {
        TimeWheel<CoreId>::Event ev;
        Counter n = 0;
        while (slot.wheel.earliestCycle() < winEnd) {
            slot.wheel.pop(ev);
            const CoreId c = ev.payload;
            const Cycle issue = rt.issues[c];
            slot.maxSkew = std::max(slot.maxSkew, issue - winStart);
            const Cycle done =
                rt.sys.accessFlow(ex, c, rt.pending[c], issue);
            rt.sys.cores[c].clock = done;
            ++slot.retired;
            TraceAccess acc;
            if (streams[c]->next(acc)) {
                rt.issues[c] = done + acc.gap;
                rt.pending[c] = acc;
                slot.wheel.insert(rt.issues[c], c);
            } else {
                rt.issues[c] = idle;
                --slot.live;
            }
            if ((++n & 1023) == 0) {
                if (rt.abort.load(std::memory_order_acquire))
                    break;
                // The count in the message is as of the last barrier
                // (reading peers' live counters here would race).
                if (drv.timeoutSeconds > 0.0)
                    checkTimeout(rt.accesses);
            }
        }
    }

    /** Throw SimTimeout when the watchdog deadline has passed. */
    void
    checkTimeout(Counter accessesSoFar) const
    {
        // TDLINT: allow(parallel): host watchdog only.
        const auto hostNow = std::chrono::steady_clock::now();
        const std::chrono::duration<double> elapsed = hostNow - started;
        if (elapsed.count() <= drv.timeoutSeconds)
            return;
        std::ostringstream os;
        os << "simulation exceeded the " << drv.timeoutSeconds
           << " s wall-clock limit after " << accessesSoFar
           << " accesses";
        throw SimTimeout(os.str(), drv.timeoutSeconds);
    }

    /**
     * Deliver every mailboxed notice in (receiver, sender) order. All
     * workers are parked at the barrier, so the shard engines are
     * quiescent and no home lock is needed; the barrier mutex carries
     * the memory ordering.
     */
    void
    drainMailboxes()
    {
        ShardNotice n;
        for (unsigned dst = 0; dst < rt.threads; ++dst) {
            for (unsigned src = 0; src < rt.threads; ++src) {
                NoticeMailbox &m = rt.mailbox(src, dst);
                while (m.pop(n)) {
                    rt.engineOf(n.block).evictionNotice(
                        n.core, n.block, n.state, n.when);
                }
            }
        }
    }

    void
    checkpoint()
    {
        const Cycle tmax = rt.foldBusy();
        DriverProgress p;
        p.accesses = rt.accesses;
        p.live = rt.live;
        p.issues = rt.issues;
        p.pending = rt.pending;
        drv.checkpointSink(rt.sys, streams, p);
        rt.unfoldBusy(tmax);
    }

    /** Barrier leader: runs with every worker parked. */
    void
    lead()
    {
        ++epochs;
        drainMailboxes();
        rt.foldStats();
        rt.accesses = baseAccesses;
        rt.live = 0;
        for (const WorkerSlot &s : rt.slots) {
            rt.accesses += s.retired;
            rt.live += s.live;
        }

        if (rt.abort.load(std::memory_order_acquire)) {
            rt.finished = true;
            return;
        }
        // Epochs with few retires may never hit the workers' polled
        // timeout check; the barrier backstops it.
        if (drv.timeoutSeconds > 0.0) {
            try {
                checkTimeout(rt.accesses);
            } catch (...) {
                rt.storeError(std::current_exception());
                rt.finished = true;
                return;
            }
        }
        if (!warmupDone && rt.accesses >= drv.warmupAccesses) {
            rt.sys.resetStats();
            warmupDone = true;
        }
        if (drv.hook && nextHook && rt.accesses >= nextHook) {
            drv.hook(rt.sys, rt.accesses);
            nextHook = nextMark(drv.hookPeriod);
        }
        if (ckpt::interruptRequested()) {
            if (drv.checkpointSink)
                checkpoint();
            std::ostringstream os;
            os << "interrupted after " << rt.accesses << " accesses";
            rt.storeError(
                std::make_exception_ptr(SimInterrupt(os.str())));
            rt.finished = true;
            return;
        }
        if (drv.checkpointEvery && drv.checkpointSink && nextCkpt &&
            rt.accesses >= nextCkpt) {
            checkpoint();
            nextCkpt = nextMark(drv.checkpointEvery);
        }
        if (drv.stopAfterAccesses &&
            rt.accesses >= drv.stopAfterAccesses) {
            if (drv.checkpointSink)
                checkpoint();
            rt.finalizeAtEnd = false;
            rt.finished = true;
            return;
        }
        Cycle min_issue = idle;
        for (const WorkerSlot &s : rt.slots)
            min_issue = std::min(min_issue, s.earliest);
        if (rt.live == 0 || min_issue == idle) {
            rt.finished = true;
            return;
        }
        // Skip-ahead: when every stream's next issue is far in the
        // future (long gaps), jump straight to its epoch instead of
        // turning empty windows.
        const Cycle e = drv.epochCycles;
        rt.epochStart = std::max(rt.epochEnd, (min_issue / e) * e);
        rt.epochEnd = rt.epochStart + e;
    }

  public:
    /** Accesses retired before this run started (checkpoint resume). */
    Counter baseAccesses = 0;
    Counter epochs = 0;

  private:
    Runtime &rt;
    ParallelDriver &drv;
    std::vector<std::unique_ptr<AccessStream>> &streams;
    EpochBarrier barrier;
    const std::chrono::steady_clock::time_point started;
    bool warmupDone = true;
    Counter nextHook = 0;
    Counter nextCkpt = 0;
};

} // namespace

RunResult
ParallelDriver::run(System &sys,
                    std::vector<std::unique_ptr<AccessStream>> streams,
                    const DriverProgress *resume)
{
    panic_if(streams.size() != sys.cfg.numCores,
             "stream count != core count");
    const unsigned t =
        std::min<unsigned>(std::max(1u, threads), sys.cfg.numCores);
    if (t <= 1) {
        // Serial: hand everything to the untouched Driver. The only
        // drop-off is that telemetry stays empty (no shards).
        Driver d;
        d.hook = hook;
        d.hookPeriod = hookPeriod;
        d.warmupAccesses = warmupAccesses;
        d.timeoutSeconds = timeoutSeconds;
        d.checkpointSink = checkpointSink;
        d.checkpointEvery = checkpointEvery;
        d.stopAfterAccesses = stopAfterAccesses;
        tele = ShardTelemetry{};
        tele.shards = 1;
        return d.run(sys, std::move(streams), resume);
    }

    const bool exact = epochCycles == 0;
    panic_if(!exact && sys.observerPtr(),
             "relaxed epochs cannot feed an access observer; "
             "use --epoch=0 (exact lockstep) for verified runs");

    // Shard count: one home engine per worker when the tracker's
    // state is bank-sliced; otherwise a single home shard serializes
    // every home transaction (private-cache hits still run in
    // parallel) behind one lock.
    const unsigned sh = sys.tracker->shardSafe()
        ? std::min(t, sys.llc.numBanks())
        : 1;

    Runtime rt(sys, t, sh);
    for (unsigned s = 0; s < sh; ++s) {
        auto e = std::make_unique<Engine>(sys.cfg, sys.llc, sys.mesh,
                                          sys.dram, sys.privs);
        e->setTracker(sys.tracker.get());
        e->setPrivLocks(rt.privMu.get());
        e->setDramMutex(&rt.dramMu);
        if (exact) {
            e->shareTimeWith(sys.engine);
            e->setObserver(sys.observerPtr());
        } else {
            e->setRelaxed(true);
        }
        rt.eng.push_back(std::move(e));
    }
    if (!exact)
        rt.mbx = std::vector<NoticeMailbox>(t * t);

    // Prime the replay position (driver.cc semantics).
    RunResult res;
    if (resume) {
        if (resume->issues.size() != rt.issues.size())
            throw CheckpointError(
                "resume progress covers a different core count");
        rt.issues = resume->issues;
        rt.pending = resume->pending;
        rt.live = resume->live;
        rt.accesses = resume->accesses;
    } else {
        for (CoreId c = 0; c < sys.cfg.numCores; ++c) {
            TraceAccess acc;
            if (streams[c] && streams[c]->next(acc)) {
                rt.issues[c] = sys.cores[c].clock + acc.gap;
                rt.pending[c] = acc;
                ++rt.live;
            }
        }
    }

    // Contiguous core ranges per worker; relaxed workers also build
    // their private issue wheels here.
    const unsigned n = sys.cfg.numCores;
    for (unsigned w = 0; w < t; ++w) {
        WorkerSlot &slot = rt.slots[w];
        slot.coreBegin = static_cast<CoreId>(w * n / t);
        slot.coreEnd = static_cast<CoreId>((w + 1) * n / t);
        for (CoreId c = slot.coreBegin; c < slot.coreEnd; ++c) {
            if (rt.issues[c] != idle) {
                slot.wheel.insert(rt.issues[c], c);
                ++slot.live;
            }
        }
    }

    sys.engine.relax = RelaxCounters{};
    rt.scatterInitial();
    LlcStatsLockGuard llcGuard(sys.llc, rt.llcStatsMu);

    // TDLINT: allow(parallel): host watchdog; never feeds simulated state.
    const auto started = std::chrono::steady_clock::now();

    tele = ShardTelemetry{};
    tele.shards = sh;

    Counter relaxedEpochs = 0;
    {
        std::unique_ptr<ExactLoop> exLoop;
        std::unique_ptr<RelaxedLoop> rxLoop;
        if (exact) {
            exLoop =
                std::make_unique<ExactLoop>(rt, *this, streams, started);
        } else {
            rxLoop = std::make_unique<RelaxedLoop>(rt, *this, streams,
                                                   started);
            rxLoop->baseAccesses = rt.accesses;
        }
        std::vector<std::thread> pool;
        pool.reserve(t);
        for (unsigned w = 0; w < t; ++w) {
            pool.emplace_back([&, w] {
                if (exact) {
                    try {
                        exLoop->work();
                    } catch (...) {
                        rt.storeError(std::current_exception());
                    }
                } else {
                    // Relaxed workers catch per-window; work() itself
                    // must keep arriving at barriers after a failure.
                    rxLoop->work(w);
                }
            });
        }
        for (auto &th : pool)
            th.join();
        if (rxLoop)
            relaxedEpochs = rxLoop->epochs;
    }

    // Quiescent now. Fold everything back so sys.engine holds the
    // canonical state even when we are about to rethrow (post-mortem
    // dumps then see a coherent system).
    rt.foldStats();
    rt.foldBusy();

    tele.epochs = relaxedEpochs;
    for (const WorkerSlot &s : rt.slots) {
        tele.maxObservedSkew = std::max(tele.maxObservedSkew, s.maxSkew);
        tele.crossShardNotices += s.crossNotices;
        tele.mailboxFallbacks += s.fallbacks;
    }
    tele.staleNotices = sys.engine.relax.staleNotices;
    tele.softenedRequests = sys.engine.relax.softenedRequests;

    if (rt.err)
        std::rethrow_exception(rt.err);

    res.accesses = rt.accesses;
    if (rt.finalizeAtEnd)
        sys.finalize();
    res.execCycles = sys.execCycles();
    return res;
}

} // namespace tinydir
