/**
 * @file
 * Sharded parallel simulation driver.
 *
 * The system is partitioned by LLC bank / address home: shard s owns
 * every block whose home bank satisfies `bank % shards == s`, and one
 * Engine instance per shard serves its banks' home transactions over
 * the SAME Llc/Mesh/Dram/private-cache components. Cores are split in
 * contiguous ranges over a pool of worker threads.
 *
 * Two synchronization modes, selected by epochCycles:
 *
 *  - epochCycles == 0 (exact lockstep): every worker pulls from ONE
 *    global issue wheel under a single baton mutex, so accesses retire
 *    in exactly the serial driver's (cycle, core) order with full
 *    mutual exclusion. Stats and checkpoint bytes are bit-identical to
 *    the serial engine by construction, for every tracker. This mode
 *    buys correctness, not speed.
 *
 *  - epochCycles == E > 0 (relaxed lockstep): each worker advances its
 *    own cores freely within the epoch window [T, T+E) — the maximum
 *    clock skew between concurrently executing accesses is therefore
 *    structurally < E — with a barrier at epoch edges. Cross-shard
 *    eviction notices travel through per-(worker,worker) lock-free
 *    SPSC mailboxes drained deterministically at the barrier; requests
 *    to remote homes execute synchronously under the home shard's
 *    mutex (a request's completion time feeds the issuing core's
 *    clock, so it cannot be deferred). Protocol races that the skew
 *    makes possible are softened by the engines (Engine::setRelaxed)
 *    and counted in the telemetry; stats are approximate with a
 *    divergence bounded by the skew window.
 *
 * Lock order (cycle-free): baton (exact only) -> home-shard mutex ->
 * per-core private-hierarchy mutex -> DRAM mutex. Eviction notices are
 * dispatched holding no locks.
 */

#ifndef TINYDIR_SIM_SHARD_HH
#define TINYDIR_SIM_SHARD_HH

#include <array>
#include <atomic>
#include <cstdint>

#include "sim/driver.hh"

namespace tinydir
{

/**
 * One cross-shard eviction notice in flight between two workers.
 */
struct ShardNotice
{
    CoreId core = invalidCore;
    Addr block = 0;
    MesiState state = MesiState::I;
    Cycle when = 0;
};

/**
 * Single-producer single-consumer lock-free ring carrying cross-shard
 * eviction notices between one (sender, receiver) worker pair. A full
 * ring makes push() fail; the sender then processes the notice inline
 * under the destination home mutex (legal — notices are dispatched
 * holding no locks) and counts the fallback.
 */
class NoticeMailbox
{
  public:
    static constexpr std::size_t capacity = 1024; // power of two

    bool
    push(const ShardNotice &n)
    {
        const std::uint64_t t = tail.load(std::memory_order_relaxed);
        const std::uint64_t h = head.load(std::memory_order_acquire);
        if (t - h == capacity)
            return false;
        ring[t & (capacity - 1)] = n;
        tail.store(t + 1, std::memory_order_release);
        return true;
    }

    bool
    pop(ShardNotice &n)
    {
        const std::uint64_t h = head.load(std::memory_order_relaxed);
        const std::uint64_t t = tail.load(std::memory_order_acquire);
        if (h == t)
            return false;
        n = ring[h & (capacity - 1)];
        head.store(h + 1, std::memory_order_release);
        return true;
    }

    bool
    empty() const
    {
        return head.load(std::memory_order_acquire) ==
            tail.load(std::memory_order_acquire);
    }

  private:
    alignas(64) std::atomic<std::uint64_t> head{0};
    alignas(64) std::atomic<std::uint64_t> tail{0};
    std::array<ShardNotice, capacity> ring{};
};

/**
 * Parallel-run telemetry. Never part of StatsDump or checkpoints: it
 * describes the host-side execution, not the simulated machine, and
 * TINYDIR_JSON must stay identical across thread counts.
 */
struct ShardTelemetry
{
    unsigned shards = 0;        //!< home shards (1 when tracker unsafe)
    Counter epochs = 0;         //!< barriers crossed (relaxed mode)
    Cycle maxObservedSkew = 0;  //!< max (issue - epoch start) seen
    Counter crossShardNotices = 0; //!< notices routed via mailboxes
    Counter mailboxFallbacks = 0;  //!< ring-full inline deliveries
    Counter staleNotices = 0;      //!< dropped by relaxed softening
    Counter softenedRequests = 0;  //!< view mismatches softened
};

/**
 * Drop-in parallel counterpart of Driver: same knobs, same RunResult,
 * same checkpoint sink contract, plus the thread/epoch configuration.
 * threads == 1 delegates to the serial Driver outright.
 */
class ParallelDriver
{
  public:
    /** Periodic hook; exact mode honors the serial cadence exactly,
     *  relaxed mode calls it at the first barrier past each multiple. */
    std::function<void(System &, Counter)> hook;
    Counter hookPeriod = 0;

    Counter warmupAccesses = 0;

    double timeoutSeconds = 0.0;
    static constexpr Counter timeoutCheckPeriod = 4096;

    std::function<void(System &,
                       const std::vector<std::unique_ptr<AccessStream>> &,
                       const DriverProgress &)>
        checkpointSink;
    Counter checkpointEvery = 0;

    /** Exact mode stops at the exact count; relaxed mode stops at the
     *  first barrier past it (the overshoot stays within one epoch). */
    Counter stopAfterAccesses = 0;

    /** Worker threads (1 = serial Driver). */
    unsigned threads = 1;

    /** Epoch window in cycles; 0 = exact lockstep. */
    Cycle epochCycles = 0;

    /**
     * Replay @p streams against @p sys on the worker pool. Shard state
     * is folded back into the system engine before every checkpoint
     * and at the end of the run, so serialized state always has the
     * serial single-engine layout (thread-count-independent restores).
     */
    RunResult run(System &sys,
                  std::vector<std::unique_ptr<AccessStream>> streams,
                  const DriverProgress *resume = nullptr);

    /** Telemetry of the last run() call. */
    const ShardTelemetry &telemetry() const { return tele; }

  private:
    ShardTelemetry tele;
};

} // namespace tinydir

#endif // TINYDIR_SIM_SHARD_HH
