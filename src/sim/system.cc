#include "sim/system.hh"

#include <algorithm>
#include <sstream>

#include "common/log.hh"
#include "ckpt/io.hh"
#include "energy/energy.hh"
#include "proto/inllc.hh"
#include "proto/mgd.hh"
#include "proto/shared_only_dir.hh"
#include "proto/sparse_dir.hh"
#include "proto/stash.hh"
#include "proto/tiny_dir.hh"
#include "verify/verifier.hh"

namespace tinydir
{

std::unique_ptr<CoherenceTracker>
makeTracker(const SystemConfig &cfg, Llc &llc,
            std::vector<PrivateCache> &privs)
{
    switch (cfg.tracker) {
      case TrackerKind::SparseDir:
        return std::make_unique<SparseDirTracker>(cfg);
      case TrackerKind::SharedOnlyDir:
        return std::make_unique<SharedOnlyDirTracker>(cfg);
      case TrackerKind::InLlcTagExtended:
        return std::make_unique<TagExtendedTracker>(cfg, llc);
      case TrackerKind::InLlc:
        return std::make_unique<InLlcTracker>(cfg, llc);
      case TrackerKind::TinyDir:
        return std::make_unique<TinyDirTracker>(cfg, llc);
      case TrackerKind::Mgd:
        return std::make_unique<MgdTracker>(cfg, privs);
      case TrackerKind::Stash:
        return std::make_unique<StashTracker>(cfg);
    }
    panic("unknown tracker kind");
}

System::System(const SystemConfig &c)
    : cfg([&] {
          c.validate();
          return c;
      }()),
      mesh(cfg), dram(cfg), llc(cfg),
      engine(cfg, llc, mesh, dram, privs)
{
    privs.reserve(cfg.numCores);
    cores.reserve(cfg.numCores);
    for (CoreId i = 0; i < cfg.numCores; ++i) {
        privs.emplace_back(cfg, i);
        cores.emplace_back(i);
    }
    tracker = makeTracker(cfg, llc, privs);
    engine.setTracker(tracker.get());
}

void
System::noteTxn(const TxnRecord &r)
{
    txnLog[txnNext] = r;
    txnNext = (txnNext + 1) % txnLogSize;
    ++txnCount;
}

std::vector<TxnRecord>
System::recentTxns() const
{
    std::vector<TxnRecord> out;
    const std::size_t n =
        static_cast<std::size_t>(std::min<Counter>(txnCount, txnLogSize));
    out.reserve(n);
    for (std::size_t i = 0; i < n; ++i)
        out.push_back(txnLog[(txnNext + txnLogSize - n + i) % txnLogSize]);
    return out;
}

namespace
{

/**
 * Single-threaded execution context: no locks, the system engine,
 * direct notice delivery. accessFlow instantiated with this context is
 * the exact flow executeAccess has always run.
 */
struct SerialExec
{
    System &sys;
    NoticeVec &buf;

    static constexpr bool debugTxn = true;

    NoticeVec &scratch() { return buf; }
    void lockPriv(CoreId) {}
    void unlockPriv(CoreId) {}

    RequestResult
    request(CoreId c, Addr block, ReqType type, Cycle at)
    {
        return sys.engine.request(c, block, type, at);
    }

    void finishRequest(Addr) {}

    void
    notice(CoreId c, Addr block, MesiState st, Cycle t)
    {
        sys.noteNoticeDebug(c, block, st, t);
        sys.engine.evictionNotice(c, block, st, t);
    }
};

} // namespace

// TDLINT: hot
Cycle
System::executeAccess(CoreId c, const TraceAccess &acc, Cycle issue)
{
    SerialExec ex{*this, noticeScratch};
    return accessFlow(ex, c, acc, issue);
}

void
System::finalize()
{
    llc.flushResidency();
}

void
System::resetStats()
{
    engine.stats.reset();
    llc.resetStats();
    // Re-seed the per-residency sharer counters from the live
    // coherence state: a block that stays shared across the warmup
    // boundary must still be reported shared (Fig. 2).
    llc.forEachEntry([&](LlcEntry &e) {
        if (e.meta == LlcMeta::Spill)
            return;
        TrackerView v = tracker->view(e.tag);
        if (v.ts.shared())
            e.stats.maxSharers = v.ts.sharers.count();
    });
    dram.resetCounters();
    tracker->resetStats();
    for (auto &core : cores) {
        core.loads.reset();
        core.stores.reset();
        core.ifetches.reset();
        core.privHits.reset();
        core.upgrades.reset();
        core.misses.reset();
    }
    statsBaseCycle = execCycles();
}

void
System::saveState(ckpt::Writer &w) const
{
    for (const auto &core : cores) {
        w.u64(core.clock);
        core.loads.saveState(w);
        core.stores.saveState(w);
        core.ifetches.saveState(w);
        core.privHits.saveState(w);
        core.upgrades.saveState(w);
        core.misses.saveState(w);
    }
    for (const auto &p : privs)
        p.saveState(w);
    llc.saveState(w);
    dram.saveState(w);
    engine.saveState(w);
    w.u64(statsBaseCycle);
}

void
System::loadState(ckpt::Reader &r)
{
    for (auto &core : cores) {
        core.clock = r.u64();
        core.loads.loadState(r);
        core.stores.loadState(r);
        core.ifetches.loadState(r);
        core.privHits.loadState(r);
        core.upgrades.loadState(r);
        core.misses.loadState(r);
    }
    for (auto &p : privs)
        p.loadState(r);
    llc.loadState(r);
    dram.loadState(r);
    engine.loadState(r);
    statsBaseCycle = r.u64();
}

Cycle
System::execCycles() const
{
    Cycle mx = 0;
    for (const auto &core : cores)
        mx = std::max(mx, core.clock);
    return mx;
}

StatsDump
System::dump() const
{
    StatsDump d;
    const auto &es = engine.stats;
    d.add("exec_cycles",
          static_cast<double>(execCycles() - statsBaseCycle));

    Counter loads = 0, stores = 0, ifetches = 0, hits = 0, misses = 0,
            upgs = 0;
    for (const auto &core : cores) {
        loads += core.loads.value();
        stores += core.stores.value();
        ifetches += core.ifetches.value();
        hits += core.privHits.value();
        misses += core.misses.value();
        upgs += core.upgrades.value();
    }
    d.add("core.loads", static_cast<double>(loads));
    d.add("core.stores", static_cast<double>(stores));
    d.add("core.ifetches", static_cast<double>(ifetches));
    d.add("core.priv_hits", static_cast<double>(hits));
    d.add("core.misses", static_cast<double>(misses));
    d.add("core.upgrades", static_cast<double>(upgs));

    d.add("llc.accesses", static_cast<double>(es.llcAccesses.value()));
    d.add("llc.data_misses",
          static_cast<double>(es.llcDataMisses.value()));
    d.add("llc.fills", static_cast<double>(es.llcFills.value()));
    const double llc_acc =
        std::max<double>(1.0, static_cast<double>(es.llcAccesses.value()));
    d.add("llc.miss_rate",
          static_cast<double>(es.llcDataMisses.value()) / llc_acc);
    d.add("llc.coh_data_writes",
          static_cast<double>(llc.cohDataWrites.value()));

    d.add("lengthened.reads",
          static_cast<double>(es.lengthenedReads.value()));
    d.add("lengthened.code",
          static_cast<double>(es.lengthenedCode.value()));
    d.add("lengthened.frac",
          static_cast<double>(es.lengthenedReads.value()) / llc_acc);
    d.add("spill.saved_accesses",
          static_cast<double>(es.savedBySpill.value()));
    d.add("spill.saved_frac",
          static_cast<double>(es.savedBySpill.value()) / llc_acc);

    d.add("nack.retries", static_cast<double>(es.nackRetries.value()));
    d.add("engine.upgrade_misses",
          static_cast<double>(es.upgradeMisses.value()));
    d.add("fwd.owner", static_cast<double>(es.ownerForwards.value()));
    d.add("inval.messages",
          static_cast<double>(es.invalidations.value()));
    d.add("inval.back", static_cast<double>(es.backInvals.value()));
    d.add("wb.dirty", static_cast<double>(es.dirtyWritebacks.value()));
    d.add("wb.notices",
          static_cast<double>(es.evictionNotices.value()));

    d.add("traffic.processor.bytes",
          static_cast<double>(es.traffic.bytes(MsgClass::Processor)));
    d.add("traffic.writeback.bytes",
          static_cast<double>(es.traffic.bytes(MsgClass::Writeback)));
    d.add("traffic.coherence.bytes",
          static_cast<double>(es.traffic.bytes(MsgClass::Coherence)));
    d.add("traffic.total.bytes",
          static_cast<double>(es.traffic.totalBytes()));

    const auto &rh = llc.residency();
    d.add("resid.blocks", static_cast<double>(rh.blocksAllocated));
    d.add("resid.shared_blocks", static_cast<double>(rh.blocksShared));
    for (unsigned b = 0; b < 4; ++b) {
        std::ostringstream name;
        name << "resid.sharer_bin" << b;
        d.add(name.str(), static_cast<double>(rh.sharerBins.bucket(b)));
    }
    d.add("resid.lengthened_blocks",
          static_cast<double>(rh.blocksLengthened));
    for (unsigned cat = 0; cat < numStraCategories; ++cat) {
        std::ostringstream bn, an;
        bn << "stra.blocks.c" << cat;
        an << "stra.accesses.c" << cat;
        d.add(bn.str(), static_cast<double>(rh.straBlocks.bucket(cat)));
        d.add(an.str(),
              static_cast<double>(rh.straAccesses.bucket(cat)));
    }

    d.add("dir.hits", static_cast<double>(tracker->dirHits()));
    d.add("dir.allocs", static_cast<double>(tracker->dirAllocs()));
    d.add("dir.spills", static_cast<double>(tracker->spills()));
    d.add("dir.broadcasts",
          static_cast<double>(tracker->broadcasts()));
    d.add("dir.sram_bits",
          static_cast<double>(tracker->trackerSramBits()));

    d.add("dram.accesses", static_cast<double>(dram.accesses()));
    d.add("dram.row_hits", static_cast<double>(dram.rowHits()));

    // Miss-latency distribution: mean plus quartile-style markers.
    {
        const auto &hl = es.latency;
        const Counter n = hl.total();
        double sum = 0;
        for (unsigned b = 0; b < hl.size(); ++b)
            sum += (b * 32.0 + 16.0) * static_cast<double>(hl.bucket(b));
        d.add("latency.samples", static_cast<double>(n));
        d.add("latency.mean_cycles", n ? sum / n : 0.0);
        auto quantile = [&](double q) {
            const int b = histQuantileBucket(hl, q);
            return b < 0 ? 0.0 : b * 32.0 + 16.0;
        };
        d.add("latency.p50_cycles", quantile(0.50));
        d.add("latency.p90_cycles", quantile(0.90));
    }

    // Energy (Fig. 21 model).
    EnergyModel em(cfg);
    EnergyInput ei;
    ei.llcTagAccesses = es.llcAccesses.value() +
        es.evictionNotices.value() + es.llcFills.value();
    ei.llcDataAccesses = es.llcAccesses.value() + es.llcFills.value() +
        llc.cohDataWrites.value();
    ei.dirAccesses = es.llcAccesses.value();
    ei.dirBits = tracker->trackerSramBits();
    ei.llcBits = static_cast<std::uint64_t>(llc.numBanks()) *
        llc.setsPerBank() * llc.assoc() * blockBytes * 8;
    ei.cycles = execCycles();
    const EnergyResult er = em.compute(ei);
    d.add("energy.dynamic_j", er.dynamicJ);
    d.add("energy.leakage_j", er.leakageJ);
    d.add("energy.total_j", er.totalJ());
    return d;
}

bool
System::verifyCoherence(std::string *msg)
{
    // The full rule set lives in the Verifier (verify/verifier.hh);
    // this remains the lightweight non-throwing entry point.
    Verifier::Options o;
    o.dumpOnViolation = false;
    Verifier v(std::move(o));
    const VerifyReport rep = v.check(*this);
    if (rep.ok())
        return true;
    if (msg) {
        std::ostringstream os;
        os << "block " << rep.violations.front().block << ": "
           << rep.summary();
        *msg = os.str();
    }
    return false;
}

} // namespace tinydir
