#include "mem/dram.hh"

#include <algorithm>

#include "common/log.hh"
#include "ckpt/io.hh"

namespace tinydir
{

Dram::Dram(const SystemConfig &c)
    : cfg(c), channels(c.memChannels)
{
    for (auto &ch : channels)
        ch.banks.resize(cfg.memBanksPerChannel);
}

unsigned
Dram::channelOf(Addr block) const
{
    return static_cast<unsigned>(block & (cfg.memChannels - 1));
}

Cycle
Dram::access(Addr block, Cycle now)
{
    ++reqs;
    const unsigned ch_idx = channelOf(block);
    Channel &ch = channels[ch_idx];
    const Addr in_channel = block >> __builtin_ctz(cfg.memChannels);
    const unsigned bank_idx = static_cast<unsigned>(
        in_channel % cfg.memBanksPerChannel);
    Bank &bank = ch.banks[bank_idx];
    const Addr row = in_channel / cfg.memBanksPerChannel /
        (cfg.dramRowBytes / blockBytes);

    Cycle start = std::max({now, bank.freeAt, ch.busFreeAt});
    Cycle access_lat;
    if (bank.openRow == row) {
        ++hits;
        access_lat = cfg.dramCas + cfg.dramBurst;
    } else if (bank.openRow == invalidAddr) {
        ++misses;
        access_lat = cfg.dramRcd + cfg.dramCas + cfg.dramBurst;
    } else {
        ++misses;
        access_lat = cfg.dramRp + cfg.dramRcd + cfg.dramCas +
            cfg.dramBurst;
    }
    bank.openRow = row;
    Cycle done = start + access_lat;
    bank.freeAt = done;
    // The shared channel bus is held for the burst transfer only;
    // row activation/precharge overlap across banks.
    ch.busFreeAt = start + cfg.dramBurst;
    return done;
}

void
Dram::saveState(ckpt::Writer &w) const
{
    for (const auto &ch : channels) {
        w.u64(ch.busFreeAt);
        for (const auto &b : ch.banks) {
            w.u64(b.openRow);
            w.u64(b.freeAt);
        }
    }
    hits.saveState(w);
    misses.saveState(w);
    reqs.saveState(w);
}

void
Dram::loadState(ckpt::Reader &r)
{
    for (auto &ch : channels) {
        ch.busFreeAt = r.u64();
        for (auto &b : ch.banks) {
            b.openRow = r.u64();
            b.freeAt = r.u64();
        }
    }
    hits.loadState(r);
    misses.loadState(r);
    reqs.loadState(r);
}

void
Dram::reset()
{
    for (auto &ch : channels) {
        ch.busFreeAt = 0;
        for (auto &b : ch.banks)
            b = Bank{};
    }
    hits.reset();
    misses.reset();
    reqs.reset();
}

} // namespace tinydir
