/**
 * @file
 * Generic set-associative tag array with pluggable replacement.
 *
 * EntryT must provide two public members:
 *   Addr tag;    // block number stored in the way
 *   bool valid;  // way holds a live entry
 *
 * Storage is struct-of-arrays: beside the EntryT payload the array
 * keeps a contiguous per-way tag lane (invalid ways hold a sentinel
 * no real tag can equal) and a per-set valid bitmask. Tag match is a
 * branch-free compare loop over the lane the compiler can vectorize,
 * and "first invalid way" is a single ctz on the mask, instead of
 * striding through payload structs. The lanes are owned by the
 * array: tag/valid changes go through install()/clearWay() (or the
 * caller's load path, which rebuilds the lanes); way() hands out the
 * payload for in-place mutation of everything else.
 *
 * The array owns replacement metadata (LRU stamps or NRU bits) beside
 * the payload so that EntryT stays a plain value type. Callers compute
 * their own set index (bank interleaving differs per structure) and use
 * find/touch/victimWay.
 */

#ifndef TINYDIR_MEM_CACHE_ARRAY_HH
#define TINYDIR_MEM_CACHE_ARRAY_HH

#include <cstdint>
#include <vector>

#include "common/log.hh"
#include "common/rng.hh"
#include "common/types.hh"
#include "mem/replacement.hh"

namespace tinydir
{

/** A set-associative array of EntryT with replacement bookkeeping. */
template <typename EntryT>
class CacheArray
{
  public:
    /**
     * Tag-lane value of an invalid way. Never matched by a lookup:
     * real tags are block numbers (physical address >> blockShift)
     * or block numbers with low decoration bits, far below 2^64 - 1;
     * install() rejects it outright.
     */
    static constexpr Addr invalidTag = ~Addr(0);

    CacheArray(std::uint64_t num_sets, unsigned assoc, ReplPolicy policy,
               std::uint64_t seed = 7)
        : sets(num_sets), ways(assoc), repl(policy),
          entries(num_sets * assoc),
          laneTags(num_sets * assoc, invalidTag), validBits(num_sets, 0),
          stamps(num_sets * assoc, 0), rng(seed)
    {
        panic_if(num_sets == 0 || assoc == 0, "degenerate cache array");
        panic_if(assoc > 64, "associativity > 64 (pinned mask width)");
        waysMask = ways == 64 ? ~0ull : (1ull << ways) - 1;
    }

    std::uint64_t numSets() const { return sets; }
    unsigned assoc() const { return ways; }

    /**
     * Direct access to a way's payload. Contract: tag and valid are
     * immutable through this reference — use install()/clearWay().
     */
    EntryT &
    way(std::uint64_t set, unsigned w)
    {
        panic_if(set >= sets || w >= ways, "way() out of range");
        return entries[set * ways + w];
    }

    const EntryT &
    way(std::uint64_t set, unsigned w) const
    {
        panic_if(set >= sets || w >= ways, "way() out of range");
        return entries[set * ways + w];
    }

    /**
     * Claim a way for @p tag: the payload is reset to EntryT{}, tag
     * and valid are stamped into both the entry and the tag lane, and
     * the payload is returned for the caller to fill. Does not touch.
     */
    EntryT &
    install(std::uint64_t set, unsigned w, Addr tag)
    {
        panic_if(set >= sets || w >= ways, "install() out of range");
        panic_if(tag == invalidTag, "tag collides with lane sentinel");
        const std::uint64_t i = set * ways + w;
        entries[i] = EntryT{};
        entries[i].tag = tag;
        entries[i].valid = true;
        laneTags[i] = tag;
        validBits[set] |= 1ull << w;
        return entries[i];
    }

    /** Invalidate one way (payload resets to EntryT{}). */
    void
    clearWay(std::uint64_t set, unsigned w)
    {
        panic_if(set >= sets || w >= ways, "clearWay() out of range");
        const std::uint64_t i = set * ways + w;
        entries[i] = EntryT{};
        laneTags[i] = invalidTag;
        validBits[set] &= ~(1ull << w);
    }

    /** Find the way holding @p tag, or nullptr. Does not touch. */
    EntryT *
    find(std::uint64_t set, Addr tag)
    {
        int w = findWay(set, tag);
        return w < 0 ? nullptr : &way(set, static_cast<unsigned>(w));
    }

    /** Way index of @p tag in @p set, or -1. */
    int
    findWay(std::uint64_t set, Addr tag) const
    {
        const Addr *lane = laneBase(set);
        for (unsigned w = 0; w < ways; ++w) {
            if (lane[w] == tag)
                return static_cast<int>(w);
        }
        return -1;
    }

    /**
     * First way of @p set, bounds-checked once: scan loops index
     * base[w] instead of paying way()'s range check per way. Same
     * tag/valid immutability contract as way().
     */
    EntryT *
    setBase(std::uint64_t set)
    {
        panic_if(set >= sets, "setBase() out of range");
        return &entries[set * ways];
    }

    const EntryT *
    setBase(std::uint64_t set) const
    {
        panic_if(set >= sets, "setBase() out of range");
        return &entries[set * ways];
    }

    /** Contiguous tag lane of @p set (invalid ways read invalidTag). */
    const Addr *
    laneBase(std::uint64_t set) const
    {
        panic_if(set >= sets, "laneBase() out of range");
        return &laneTags[set * ways];
    }

    /** Valid bitmask of @p set (bit w set iff way w is valid). */
    std::uint64_t
    validMask(std::uint64_t set) const
    {
        panic_if(set >= sets, "validMask() out of range");
        return validBits[set];
    }

    /** Hint an upcoming lookup in @p set: pull the tag lane in. */
    void
    prefetchSet(std::uint64_t set) const
    {
        if (set < sets)
            __builtin_prefetch(&laneTags[set * ways]);
    }

    /** Record a use of a way (updates LRU stamp / clears NRU bit). */
    void
    touch(std::uint64_t set, unsigned w)
    {
        switch (repl) {
          case ReplPolicy::Lru:
            stamps[set * ways + w] = ++clock;
            break;
          case ReplPolicy::Nru:
            stamps[set * ways + w] = 0;
            break;
          case ReplPolicy::Random:
            break;
        }
    }

    /** Force a way to be the next victim candidate. */
    void
    demote(std::uint64_t set, unsigned w)
    {
        switch (repl) {
          case ReplPolicy::Lru:
            stamps[set * ways + w] = 0;
            break;
          case ReplPolicy::Nru:
            stamps[set * ways + w] = 1;
            break;
          case ReplPolicy::Random:
            break;
        }
    }

    /**
     * Pick a victim way: the first invalid way if one exists,
     * otherwise per the replacement policy. Bit w of @p pinned marks
     * a way that must not be victimized (e.g. the data block a
     * spilled tracking entry protects); the bitmask caps
     * associativity at 64 ways.
     */
    unsigned
    victimWay(std::uint64_t set, std::uint64_t pinned = 0)
    {
        // First unpinned invalid way, straight off the valid mask.
        // This is the same way the old per-entry scans returned.
        const std::uint64_t inv = ~validBits[set] & waysMask & ~pinned;
        if (inv)
            return static_cast<unsigned>(__builtin_ctzll(inv));
        switch (repl) {
          case ReplPolicy::Lru: {
            // First way holding the minimal LRU stamp among unpinned
            // ways.
            const std::uint64_t *st = &stamps[set * ways];
            unsigned victim = 0;
            std::uint64_t best = ~0ull;
            bool found = false;
            for (unsigned w = 0; w < ways; ++w) {
                if ((pinned >> w) & 1)
                    continue;
                if (st[w] < best || !found) {
                    best = st[w];
                    victim = w;
                    found = true;
                }
            }
            panic_if(!found, "all ways pinned in victimWay()");
            return victim;
          }
          case ReplPolicy::Nru: {
            // Two scans: first way with NRU bit set; if none, reset
            // all bits and take way 0 (classic 1-bit NRU).
            for (unsigned pass = 0; pass < 2; ++pass) {
                for (unsigned w = 0; w < ways; ++w) {
                    if ((pinned >> w) & 1)
                        continue;
                    if (stamps[set * ways + w])
                        return w;
                }
                for (unsigned w = 0; w < ways; ++w)
                    stamps[set * ways + w] = 1;
            }
            panic_if(true, "all ways pinned in victimWay()");
            return 0;
          }
          case ReplPolicy::Random: {
            for (unsigned tries = 0; tries < 64; ++tries) {
                auto w = static_cast<unsigned>(rng.below(ways));
                if (!((pinned >> w) & 1))
                    return w;
            }
            panic_if(true, "all ways pinned in victimWay()");
            return 0;
          }
        }
        return 0;
    }

    /** Invalidate every way (e.g. between experiment phases). */
    void
    reset()
    {
        for (auto &e : entries)
            e = EntryT{};
        for (auto &t : laneTags)
            t = invalidTag;
        for (auto &v : validBits)
            v = 0;
        for (auto &s : stamps)
            s = 0;
        clock = 0;
    }

    /**
     * Serialize the array payload: every entry (via @p save_entry,
     * which writes one EntryT through the ckpt::Writer-shaped sink),
     * the replacement stamps, the LRU clock and the Random-policy RNG.
     * Geometry (sets/ways/policy) is construction-time configuration
     * and is not part of the stream; the tag lanes and valid masks are
     * derived from the entries and are rebuilt on load.
     */
    template <typename W, typename SaveE>
    void
    saveState(W &w, SaveE &&save_entry) const
    {
        for (const EntryT &e : entries)
            save_entry(w, e);
        for (std::uint64_t s : stamps)
            w.u64(s);
        w.u64(clock);
        rng.saveState(w);
    }

    /** Restore an array written by saveState of identical geometry. */
    template <typename R, typename LoadE>
    void
    loadState(R &r, LoadE &&load_entry)
    {
        for (EntryT &e : entries)
            load_entry(r, e);
        for (auto &s : stamps)
            s = r.u64();
        clock = r.u64();
        rng.loadState(r);
        rebuildLanes();
    }

  private:
    /** Recompute tag lanes and valid masks from the entry payload. */
    void
    rebuildLanes()
    {
        for (auto &v : validBits)
            v = 0;
        for (std::uint64_t i = 0; i < entries.size(); ++i) {
            const EntryT &e = entries[i];
            panic_if(e.valid && e.tag == invalidTag,
                     "loaded entry tag collides with lane sentinel");
            laneTags[i] = e.valid ? e.tag : invalidTag;
            if (e.valid)
                validBits[i / ways] |= 1ull << (i % ways);
        }
    }

    std::uint64_t sets;
    unsigned ways;
    std::uint64_t waysMask;
    ReplPolicy repl;
    std::vector<EntryT> entries;
    /** SoA tag lane; invalidTag where the way is invalid. */
    std::vector<Addr> laneTags;
    /** One valid bitmask per set. */
    std::vector<std::uint64_t> validBits;
    /** LRU stamp (Lru) or NRU bit (Nru) per way. */
    std::vector<std::uint64_t> stamps;
    std::uint64_t clock = 0;
    Rng rng;
};

} // namespace tinydir

#endif // TINYDIR_MEM_CACHE_ARRAY_HH
