/**
 * @file
 * Generic set-associative tag array with pluggable replacement.
 *
 * EntryT must provide two public members:
 *   Addr tag;    // block number stored in the way
 *   bool valid;  // way holds a live entry
 *
 * The array owns replacement metadata (LRU stamps or NRU bits) beside
 * the payload so that EntryT stays a plain value type. Callers compute
 * their own set index (bank interleaving differs per structure) and use
 * find/touch/victimWay.
 */

#ifndef TINYDIR_MEM_CACHE_ARRAY_HH
#define TINYDIR_MEM_CACHE_ARRAY_HH

#include <cstdint>
#include <vector>

#include "common/log.hh"
#include "common/rng.hh"
#include "common/types.hh"
#include "mem/replacement.hh"

namespace tinydir
{

/** A set-associative array of EntryT with replacement bookkeeping. */
template <typename EntryT>
class CacheArray
{
  public:
    CacheArray(std::uint64_t num_sets, unsigned assoc, ReplPolicy policy,
               std::uint64_t seed = 7)
        : sets(num_sets), ways(assoc), repl(policy),
          entries(num_sets * assoc), stamps(num_sets * assoc, 0),
          rng(seed)
    {
        panic_if(num_sets == 0 || assoc == 0, "degenerate cache array");
        panic_if(assoc > 64, "associativity > 64 (pinned mask width)");
    }

    std::uint64_t numSets() const { return sets; }
    unsigned assoc() const { return ways; }

    /** Direct access to a way of a set. */
    EntryT &
    way(std::uint64_t set, unsigned w)
    {
        panic_if(set >= sets || w >= ways, "way() out of range");
        return entries[set * ways + w];
    }

    const EntryT &
    way(std::uint64_t set, unsigned w) const
    {
        panic_if(set >= sets || w >= ways, "way() out of range");
        return entries[set * ways + w];
    }

    /** Find the way holding @p tag, or nullptr. Does not touch. */
    EntryT *
    find(std::uint64_t set, Addr tag)
    {
        int w = findWay(set, tag);
        return w < 0 ? nullptr : &way(set, static_cast<unsigned>(w));
    }

    /** Way index of @p tag in @p set, or -1. */
    int
    findWay(std::uint64_t set, Addr tag) const
    {
        const EntryT *base = setBase(set);
        for (unsigned w = 0; w < ways; ++w) {
            if (base[w].valid && base[w].tag == tag)
                return static_cast<int>(w);
        }
        return -1;
    }

    /**
     * First way of @p set, bounds-checked once: scan loops index
     * base[w] instead of paying way()'s range check per way.
     */
    EntryT *
    setBase(std::uint64_t set)
    {
        panic_if(set >= sets, "setBase() out of range");
        return &entries[set * ways];
    }

    const EntryT *
    setBase(std::uint64_t set) const
    {
        panic_if(set >= sets, "setBase() out of range");
        return &entries[set * ways];
    }

    /** Record a use of a way (updates LRU stamp / clears NRU bit). */
    void
    touch(std::uint64_t set, unsigned w)
    {
        switch (repl) {
          case ReplPolicy::Lru:
            stamps[set * ways + w] = ++clock;
            break;
          case ReplPolicy::Nru:
            stamps[set * ways + w] = 0;
            break;
          case ReplPolicy::Random:
            break;
        }
    }

    /** Force a way to be the next victim candidate. */
    void
    demote(std::uint64_t set, unsigned w)
    {
        switch (repl) {
          case ReplPolicy::Lru:
            stamps[set * ways + w] = 0;
            break;
          case ReplPolicy::Nru:
            stamps[set * ways + w] = 1;
            break;
          case ReplPolicy::Random:
            break;
        }
    }

    /**
     * Pick a victim way: an invalid way if one exists, otherwise per
     * the replacement policy. Bit w of @p pinned marks a way that must
     * not be victimized (e.g. the data block a spilled tracking entry
     * protects); the bitmask caps associativity at 64 ways.
     */
    unsigned
    victimWay(std::uint64_t set, std::uint64_t pinned = 0)
    {
        const EntryT *base = setBase(set);
        if (repl != ReplPolicy::Lru) {
            for (unsigned w = 0; w < ways; ++w) {
                if (!base[w].valid && !((pinned >> w) & 1))
                    return w;
            }
        }
        switch (repl) {
          case ReplPolicy::Lru: {
            // One fused pass: the first unpinned invalid way wins
            // outright; otherwise the first way with the minimal LRU
            // stamp — the same victim the separate invalid-then-LRU
            // scans picked.
            const std::uint64_t *st = &stamps[set * ways];
            unsigned victim = 0;
            std::uint64_t best = ~0ull;
            bool found = false;
            for (unsigned w = 0; w < ways; ++w) {
                if ((pinned >> w) & 1)
                    continue;
                if (!base[w].valid)
                    return w;
                if (st[w] < best || !found) {
                    best = st[w];
                    victim = w;
                    found = true;
                }
            }
            panic_if(!found, "all ways pinned in victimWay()");
            return victim;
          }
          case ReplPolicy::Nru: {
            // Two scans: first way with NRU bit set; if none, reset
            // all bits and take way 0 (classic 1-bit NRU).
            for (unsigned pass = 0; pass < 2; ++pass) {
                for (unsigned w = 0; w < ways; ++w) {
                    if ((pinned >> w) & 1)
                        continue;
                    if (stamps[set * ways + w])
                        return w;
                }
                for (unsigned w = 0; w < ways; ++w)
                    stamps[set * ways + w] = 1;
            }
            panic_if(true, "all ways pinned in victimWay()");
            return 0;
          }
          case ReplPolicy::Random: {
            for (unsigned tries = 0; tries < 64; ++tries) {
                auto w = static_cast<unsigned>(rng.below(ways));
                if (!((pinned >> w) & 1))
                    return w;
            }
            panic_if(true, "all ways pinned in victimWay()");
            return 0;
          }
        }
        return 0;
    }

    /** Invalidate every way (e.g. between experiment phases). */
    void
    reset()
    {
        for (auto &e : entries)
            e = EntryT{};
        for (auto &s : stamps)
            s = 0;
        clock = 0;
    }

    /**
     * Serialize the array payload: every entry (via @p save_entry,
     * which writes one EntryT through the ckpt::Writer-shaped sink),
     * the replacement stamps, the LRU clock and the Random-policy RNG.
     * Geometry (sets/ways/policy) is construction-time configuration
     * and is not part of the stream.
     */
    template <typename W, typename SaveE>
    void
    saveState(W &w, SaveE &&save_entry) const
    {
        for (const EntryT &e : entries)
            save_entry(w, e);
        for (std::uint64_t s : stamps)
            w.u64(s);
        w.u64(clock);
        rng.saveState(w);
    }

    /** Restore an array written by saveState of identical geometry. */
    template <typename R, typename LoadE>
    void
    loadState(R &r, LoadE &&load_entry)
    {
        for (EntryT &e : entries)
            load_entry(r, e);
        for (auto &s : stamps)
            s = r.u64();
        clock = r.u64();
        rng.loadState(r);
    }

  private:
    std::uint64_t sets;
    unsigned ways;
    ReplPolicy repl;
    std::vector<EntryT> entries;
    /** LRU stamp (Lru) or NRU bit (Nru) per way. */
    std::vector<std::uint64_t> stamps;
    std::uint64_t clock = 0;
    Rng rng;
};

} // namespace tinydir

#endif // TINYDIR_MEM_CACHE_ARRAY_HH
