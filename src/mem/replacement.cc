#include "mem/replacement.hh"

namespace tinydir
{

std::string
toString(ReplPolicy p)
{
    switch (p) {
      case ReplPolicy::Lru: return "LRU";
      case ReplPolicy::Nru: return "NRU";
      case ReplPolicy::Random: return "random";
    }
    return "?";
}

} // namespace tinydir
