/**
 * @file
 * Compact DDR3 main-memory model.
 *
 * Stands in for the paper's DRAMSim2 configuration (Table I): eight
 * single-channel DDR3-2133 controllers, 8 banks per rank, open-page
 * policy, 12-12-12 timing. The model tracks one open row and a
 * busy-until time per bank, plus data-bus occupancy per channel, which
 * yields row-hit/closed/conflict latencies and queueing under load —
 * the aggregate behaviour that matters for comparing directory
 * schemes.
 */

#ifndef TINYDIR_MEM_DRAM_HH
#define TINYDIR_MEM_DRAM_HH

#include <vector>

#include "common/config.hh"
#include "common/stats.hh"
#include "common/types.hh"

namespace tinydir
{

namespace ckpt
{
class Writer;
class Reader;
} // namespace ckpt

/** Eight-channel open-page DDR3 timing model. */
class Dram
{
  public:
    explicit Dram(const SystemConfig &cfg);

    /**
     * Issue a block read or write.
     *
     * @param block Block number being accessed.
     * @param now Request arrival time at the controller.
     * @return Completion time (>= now).
     */
    Cycle access(Addr block, Cycle now);

    /** Memory channel servicing @p block (for mesh routing). */
    unsigned channelOf(Addr block) const;

    /** Row-hit counters for diagnostics. */
    Counter rowHits() const { return hits.value(); }
    Counter rowMisses() const { return misses.value(); }
    Counter accesses() const { return reqs.value(); }

    void reset();

    /** Reset the counters only (timing/row state untouched). */
    void
    resetCounters()
    {
        hits.reset();
        misses.reset();
        reqs.reset();
    }

    /** Serialize open rows, busy-until times and counters (ckpt/). */
    void saveState(ckpt::Writer &w) const;

    /** Restore state written by saveState under an identical config. */
    void loadState(ckpt::Reader &r);

  private:
    struct Bank
    {
        Addr openRow = invalidAddr;
        Cycle freeAt = 0;
    };

    struct Channel
    {
        std::vector<Bank> banks;
        Cycle busFreeAt = 0;
    };

    const SystemConfig &cfg;
    std::vector<Channel> channels;
    Scalar hits, misses, reqs;
};

} // namespace tinydir

#endif // TINYDIR_MEM_DRAM_HH
