/**
 * @file
 * Replacement policy selection for the generic cache arrays.
 *
 * The paper uses LRU in all caches, 1-bit NRU in sparse directory
 * slices (Table I), and LRU stamps inside the skew-associative
 * organizations. Random is provided for tests and ablations.
 */

#ifndef TINYDIR_MEM_REPLACEMENT_HH
#define TINYDIR_MEM_REPLACEMENT_HH

#include <string>

namespace tinydir
{

/** Replacement policy identifier. */
enum class ReplPolicy
{
    Lru,    //!< full LRU via 64-bit stamps
    Nru,    //!< 1-bit not-recently-used
    Random, //!< uniform random victim
};

/** Human-readable policy name. */
std::string toString(ReplPolicy p);

} // namespace tinydir

#endif // TINYDIR_MEM_REPLACEMENT_HH
