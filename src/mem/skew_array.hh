/**
 * @file
 * Skew-associative array with H3 hashing and single-level ZCache-style
 * relocation.
 *
 * Each way has a private H3 hash mapping a tag to one row of that way.
 * On insertion, if every candidate row is occupied, the array first
 * tries to relocate one candidate to an empty alternative position in
 * another way (a depth-1 ZCache walk); only if that fails is the LRU
 * candidate evicted. This reproduces the conflict-miss reduction the
 * paper attributes to the 4-way skew-associative Z-cache organization
 * (Section I, Fig. 3; Section V-C for MgD).
 *
 * Like CacheArray, storage is struct-of-arrays: a contiguous tag lane
 * (sentinel-valued where invalid) sits beside the EntryT payload so
 * the candidate probe of find()/touch() reads one word per way. The
 * lanes are owned by the array: insert() stamps the new tag into the
 * claimed slot itself (callers fill only the payload), and erasure
 * goes through clearEntry().
 */

#ifndef TINYDIR_MEM_SKEW_ARRAY_HH
#define TINYDIR_MEM_SKEW_ARRAY_HH

#include <algorithm>
#include <cstdint>
#include <optional>
#include <vector>

#include "common/log.hh"
#include "common/types.hh"
#include "mem/h3_hash.hh"

namespace tinydir
{

/**
 * Skew-associative container of EntryT (requires members tag/valid,
 * like CacheArray).
 */
template <typename EntryT>
class SkewArray
{
  public:
    /** Tag-lane value of an invalid slot (see CacheArray). */
    static constexpr Addr invalidTag = ~Addr(0);

    SkewArray(std::uint64_t rows_per_way, unsigned num_ways,
              std::uint64_t seed = 11)
        : rows(rows_per_way), ways(num_ways)
    {
        panic_if(rows == 0 || ways == 0, "degenerate skew array");
        panic_if((rows & (rows - 1)) != 0,
                 "skew array rows must be a power of two");
        unsigned bits = 0;
        while ((1ull << bits) < rows)
            ++bits;
        // Degenerate single-row arrays still need a valid hash width;
        // rowOf() masks the result back into range.
        bits = std::max(bits, 1u);
        panic_if(ways > maxWays, "skew array ways > %u", maxWays);
        for (unsigned w = 0; w < ways; ++w)
            hashes.emplace_back(seed * 1315423911ull + w, bits);
        // Transpose the per-way H3 matrices so rowsOf() can scan the
        // tag's set bits once, XOR-ing all ways' rows per bit, instead
        // of re-scanning the tag for every way.
        xposed.resize(64 * ways);
        for (unsigned bit = 0; bit < 64; ++bit)
            for (unsigned w = 0; w < ways; ++w)
                xposed[bit * ways + w] = hashes[w].row(bit);
        entries.resize(rows * ways);
        laneTags.assign(rows * ways, invalidTag);
        stamps.assign(rows * ways, 0);
    }

    /** Upper bound on ways (rowsOf scratch is stack-allocated). */
    static constexpr unsigned maxWays = 8;

    /** Candidate rows of @p tag in every way, one bit scan of the tag. */
    void
    rowsOf(Addr tag, std::uint64_t (&out)[maxWays]) const
    {
        for (unsigned w = 0; w < maxWays; ++w)
            out[w] = 0;
        std::uint64_t key = tag;
        while (key) {
            const unsigned bit =
                static_cast<unsigned>(__builtin_ctzll(key));
            const std::uint64_t *r = &xposed[bit * ways];
            for (unsigned w = 0; w < ways; ++w)
                out[w] ^= r[w];
            key &= key - 1;
        }
        // H3 masks to outBits, rowOf() then to rows-1; since the hash
        // width is chosen so 2^bits == rows (or 1 row, mask 0), the
        // single rows-1 mask here matches rowOf() bit for bit.
        for (unsigned w = 0; w < ways; ++w)
            out[w] &= rows - 1;
    }

    std::uint64_t numRows() const { return rows; }
    unsigned numWays() const { return ways; }

    /** Row selected by way @p w for @p tag. */
    std::uint64_t
    rowOf(unsigned w, Addr tag) const
    {
        return hashes[w](tag) & (rows - 1);
    }

    /**
     * Payload of way @p w, row @p row. Contract: tag and valid are
     * immutable through this reference — use insert()/clearEntry().
     */
    EntryT &
    at(unsigned w, std::uint64_t row)
    {
        return entries[row * ways + w];
    }

    /** Find the entry holding @p tag, or nullptr. */
    EntryT *
    find(Addr tag)
    {
        std::uint64_t cand[maxWays];
        rowsOf(tag, cand);
        for (unsigned w = 0; w < ways; ++w) {
            if (laneTags[cand[w] * ways + w] == tag)
                return &at(w, cand[w]);
        }
        return nullptr;
    }

    /** Record a use of the entry currently holding @p tag. */
    void
    touch(Addr tag)
    {
        std::uint64_t cand[maxWays];
        rowsOf(tag, cand);
        for (unsigned w = 0; w < ways; ++w) {
            const std::uint64_t row = cand[w];
            if (laneTags[row * ways + w] == tag) {
                stamps[row * ways + w] = ++clock;
                return;
            }
        }
    }

    /**
     * Make room for @p tag and return the claimed slot plus
     * (optionally) the entry that had to be evicted. The slot comes
     * back with tag/valid already stamped (payload reset to
     * EntryT{}); the caller fills the payload and handles the
     * victim's coherence side-effects.
     */
    struct InsertResult
    {
        EntryT *slot;
        std::optional<EntryT> victim;
    };

    InsertResult
    insert(Addr tag)
    {
        panic_if(tag == invalidTag, "tag collides with lane sentinel");
        std::uint64_t candRows[maxWays];
        rowsOf(tag, candRows);
        // 1. Any candidate row empty?
        for (unsigned w = 0; w < ways; ++w) {
            const std::uint64_t row = candRows[w];
            const std::uint64_t i = row * ways + w;
            if (laneTags[i] == invalidTag) {
                stamps[i] = ++clock;
                return {&claim(i, tag), std::nullopt};
            }
        }
        // 2. Depth-1 ZCache walk: relocate one candidate to an empty
        //    alternative position in a different way. The relocated
        //    candidate's tag differs per way, so its alternative rows
        //    still need per-way rowOf().
        for (unsigned w = 0; w < ways; ++w) {
            const std::uint64_t row = candRows[w];
            const std::uint64_t ci = row * ways + w;
            EntryT &cand = entries[ci];
            for (unsigned aw = 0; aw < ways; ++aw) {
                if (aw == w)
                    continue;
                const std::uint64_t arow = rowOf(aw, cand.tag);
                const std::uint64_t ai = arow * ways + aw;
                if (laneTags[ai] == invalidTag) {
                    entries[ai] = cand;
                    laneTags[ai] = cand.tag;
                    stamps[ai] = stamps[ci];
                    stamps[ci] = ++clock;
                    return {&claim(ci, tag), std::nullopt};
                }
            }
        }
        // 3. Evict the LRU candidate.
        unsigned victim_way = 0;
        std::uint64_t victim_row = candRows[0];
        std::uint64_t best = ~0ull;
        for (unsigned w = 0; w < ways; ++w) {
            std::uint64_t row = candRows[w];
            if (stamps[row * ways + w] < best) {
                best = stamps[row * ways + w];
                victim_way = w;
                victim_row = row;
            }
        }
        const std::uint64_t vi = victim_row * ways + victim_way;
        std::optional<EntryT> victim = entries[vi];
        stamps[vi] = ++clock;
        return {&claim(vi, tag), victim};
    }

    /** Invalidate the slot @p e points into (from find()/at()). */
    void
    clearEntry(EntryT *e)
    {
        const auto i =
            static_cast<std::uint64_t>(e - entries.data());
        panic_if(i >= entries.size(), "clearEntry() out of range");
        entries[i] = EntryT{};
        laneTags[i] = invalidTag;
    }

    /** Invalidate everything. */
    void
    reset()
    {
        for (auto &e : entries)
            e = EntryT{};
        laneTags.assign(rows * ways, invalidTag);
        stamps.assign(rows * ways, 0);
        clock = 0;
    }

    /** Visit every valid entry (diagnostics/invariant checks). */
    template <typename F>
    void
    forEachValid(F &&f)
    {
        for (auto &e : entries) {
            if (e.valid)
                f(e);
        }
    }

    /**
     * Serialize entries, stamps and the LRU clock. The H3 matrices and
     * their transpose are derived from the construction seed, and the
     * tag lanes from the entries; neither is part of the stream.
     */
    template <typename W, typename SaveE>
    void
    saveState(W &w, SaveE &&save_entry) const
    {
        for (const EntryT &e : entries)
            save_entry(w, e);
        for (std::uint64_t s : stamps)
            w.u64(s);
        w.u64(clock);
    }

    /** Restore an array written by saveState of identical geometry. */
    template <typename R, typename LoadE>
    void
    loadState(R &r, LoadE &&load_entry)
    {
        for (EntryT &e : entries)
            load_entry(r, e);
        for (auto &s : stamps)
            s = r.u64();
        clock = r.u64();
        for (std::uint64_t i = 0; i < entries.size(); ++i) {
            panic_if(entries[i].valid && entries[i].tag == invalidTag,
                     "loaded entry tag collides with lane sentinel");
            laneTags[i] =
                entries[i].valid ? entries[i].tag : invalidTag;
        }
    }

  private:
    /** Reset slot @p i and stamp @p tag into entry and lane. */
    EntryT &
    claim(std::uint64_t i, Addr tag)
    {
        entries[i] = EntryT{};
        entries[i].tag = tag;
        entries[i].valid = true;
        laneTags[i] = tag;
        return entries[i];
    }

    std::uint64_t rows;
    unsigned ways;
    std::vector<H3Hash> hashes;
    //! Transposed matrices: xposed[bit * ways + w] == hashes[w].row(bit).
    std::vector<std::uint64_t> xposed;
    std::vector<EntryT> entries;
    /** SoA tag lane; invalidTag where the slot is invalid. */
    std::vector<Addr> laneTags;
    std::vector<std::uint64_t> stamps;
    std::uint64_t clock = 0;
};

} // namespace tinydir

#endif // TINYDIR_MEM_SKEW_ARRAY_HH
