#include "mem/h3_hash.hh"

#include "common/log.hh"
#include "common/rng.hh"

namespace tinydir
{

H3Hash::H3Hash(std::uint64_t seed, unsigned out_bits)
    : bits(out_bits)
{
    panic_if(out_bits == 0 || out_bits > 63, "bad H3 output width");
    mask = (1ull << out_bits) - 1;
    Rng rng(seed ^ 0xc0ffee123ull);
    for (auto &row : rows)
        row = rng.next();
}

} // namespace tinydir
