/**
 * @file
 * H3 universal hash family.
 *
 * The skew-associative directory variants in the paper (Fig. 3 and the
 * MgD comparison) use an "H3 hash-based Z-cache organization" [36].
 * H3 hashes an n-bit key by XOR-ing, for every set key bit, a fixed
 * random row of a boolean matrix; different seeds give independent
 * members of the family.
 */

#ifndef TINYDIR_MEM_H3_HASH_HH
#define TINYDIR_MEM_H3_HASH_HH

#include <array>
#include <cstdint>

namespace tinydir
{

/** One member of the H3 hash family mapping 64-bit keys to outBits. */
class H3Hash
{
  public:
    /**
     * @param seed Selects the family member (the random matrix).
     * @param out_bits Width of the hash output (1..63).
     */
    H3Hash(std::uint64_t seed, unsigned out_bits);

    /** Hash @p key to [0, 2^outBits). */
    std::uint64_t
    operator()(std::uint64_t key) const
    {
        std::uint64_t h = 0;
        while (key) {
            unsigned bit = static_cast<unsigned>(__builtin_ctzll(key));
            h ^= rows[bit];
            key &= key - 1;
        }
        return h & mask;
    }

    unsigned outBits() const { return bits; }

    /**
     * Matrix row XOR-ed in when key bit @p bit is set. Lets callers
     * that evaluate several family members on the same key (e.g. the
     * skew array's per-way hashes) transpose the matrices and scan the
     * key's set bits once instead of once per member.
     */
    std::uint64_t row(unsigned bit) const { return rows[bit]; }

    /** Output mask (2^outBits - 1). */
    std::uint64_t outMask() const { return mask; }

  private:
    std::array<std::uint64_t, 64> rows;
    std::uint64_t mask;
    unsigned bits;
};

} // namespace tinydir

#endif // TINYDIR_MEM_H3_HASH_HH
