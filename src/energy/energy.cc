#include "energy/energy.hh"

#include <cmath>

namespace tinydir
{

namespace
{

// Reference points, CACTI-class 22 nm ballparks:
//  - a 2 Mbit (256 KB) bank read costs ~0.1 nJ;
//  - SRAM leaks ~60 mW per MB.
constexpr double refAccessJ = 0.1e-9;
constexpr double refAccessBits = double(1ull << 21);
constexpr double leakWPerBit = 60e-3 / (8.0 * 1024 * 1024);

} // namespace

EnergyModel::EnergyModel(const SystemConfig &cfg)
    : clockHz(2.0e9), banks(cfg.llcBanks())
{
}

double
EnergyModel::accessEnergy(std::uint64_t bits)
{
    if (bits == 0)
        return 0.0;
    return refAccessJ * std::sqrt(static_cast<double>(bits) /
                                  refAccessBits);
}

double
EnergyModel::leakagePower(std::uint64_t bits)
{
    return leakWPerBit * static_cast<double>(bits);
}

EnergyResult
EnergyModel::compute(const EnergyInput &in) const
{
    EnergyResult r;
    // The LLC is banked: a single access activates one bank.
    const std::uint64_t llc_bank_bits = in.llcBits / banks;
    const std::uint64_t dir_slice_bits =
        in.dirBits ? std::max<std::uint64_t>(1, in.dirBits / banks) : 0;
    // Tags are roughly 1/10 of the data-array bits per access.
    r.dynamicJ =
        static_cast<double>(in.llcTagAccesses) *
            accessEnergy(llc_bank_bits / 10) +
        static_cast<double>(in.llcDataAccesses) *
            accessEnergy(llc_bank_bits) +
        static_cast<double>(in.dirAccesses) *
            accessEnergy(dir_slice_bits);
    const double seconds = static_cast<double>(in.cycles) / clockHz;
    r.leakageJ =
        (leakagePower(in.llcBits) + leakagePower(in.dirBits)) * seconds;
    return r;
}

} // namespace tinydir
