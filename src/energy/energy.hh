/**
 * @file
 * Analytical LLC + directory energy model (Fig. 21).
 *
 * Stands in for the CACTI/McPAT 22 nm numbers of the paper. The model
 * preserves the scaling trends Fig. 21 depends on: per-access dynamic
 * energy grows roughly with the square root of array capacity (wider
 * wordlines/longer bitlines), and leakage power is proportional to
 * capacity. Coefficients are CACTI-class ballpark values; only
 * relative comparisons between configurations are meaningful.
 */

#ifndef TINYDIR_ENERGY_ENERGY_HH
#define TINYDIR_ENERGY_ENERGY_HH

#include <cstdint>

#include "common/config.hh"
#include "common/types.hh"

namespace tinydir
{

/** Activity and capacity inputs to the energy model. */
struct EnergyInput
{
    std::uint64_t llcTagAccesses = 0;
    std::uint64_t llcDataAccesses = 0;
    std::uint64_t dirAccesses = 0;
    std::uint64_t dirBits = 0;
    std::uint64_t llcBits = 0;
    Cycle cycles = 0;
};

/** Joules, split the way Fig. 21 reports them. */
struct EnergyResult
{
    double dynamicJ = 0.0;
    double leakageJ = 0.0;

    double totalJ() const { return dynamicJ + leakageJ; }
};

/** The analytical model. */
class EnergyModel
{
  public:
    explicit EnergyModel(const SystemConfig &cfg);

    EnergyResult compute(const EnergyInput &in) const;

    /** Per-access dynamic energy (J) of an array of @p bits bits. */
    static double accessEnergy(std::uint64_t bits);

    /** Leakage power (W) of an array of @p bits bits. */
    static double leakagePower(std::uint64_t bits);

  private:
    double clockHz;
    unsigned banks;
};

} // namespace tinydir

#endif // TINYDIR_ENERGY_ENERGY_HH
