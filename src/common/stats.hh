/**
 * @file
 * Minimal statistics package: named scalar counters, histograms, and a
 * registry that formats a stats dump. Modeled on the spirit of the gem5
 * stats package but kept deliberately small.
 */

#ifndef TINYDIR_COMMON_STATS_HH
#define TINYDIR_COMMON_STATS_HH

#include <cstddef>
#include <cstdint>
#include <map>
#include <ostream>
#include <string>
#include <utility>
#include <vector>

#include "common/types.hh"

namespace tinydir
{

/** A named scalar statistic. */
class Scalar
{
  public:
    Scalar() = default;

    Scalar &operator++() { ++val; return *this; }
    Scalar &operator+=(Counter v) { val += v; return *this; }
    void reset() { val = 0; }
    Counter value() const { return val; }

    /** Serialize the counter (ckpt::Writer-shaped sink). */
    template <typename W>
    void
    saveState(W &w) const
    {
        w.u64(val);
    }

    /** Restore a counter written by saveState. */
    template <typename R>
    void
    loadState(R &r)
    {
        val = r.u64();
    }

  private:
    Counter val = 0;
};

/** A fixed-bucket histogram statistic. */
class Histogram
{
  public:
    /** @param nbuckets Number of buckets (indices 0..nbuckets-1). */
    explicit Histogram(unsigned nbuckets = 0) : buckets(nbuckets, 0) {}

    void
    sample(unsigned bucket, Counter weight = 1)
    {
        if (bucket >= buckets.size())
            // TDLINT: allow(hot-alloc): hot callers clamp bucket below the construction-time size
            buckets.resize(bucket + 1, 0);
        buckets[bucket] += weight;
    }

    Counter
    bucket(unsigned b) const
    {
        return b < buckets.size() ? buckets[b] : 0;
    }

    unsigned size() const { return static_cast<unsigned>(buckets.size()); }

    Counter
    total() const
    {
        Counter t = 0;
        for (auto b : buckets)
            t += b;
        return t;
    }

    void reset() { for (auto &b : buckets) b = 0; }

    /** Serialize bucket count and weights (ckpt::Writer-shaped sink). */
    template <typename W>
    void
    saveState(W &w) const
    {
        w.u64(buckets.size());
        for (Counter b : buckets)
            w.u64(b);
    }

    /**
     * Restore a histogram written by saveState. The bucket vector takes
     * the saved size (sample()'s resize-on-demand rule would grow it to
     * the same shape on replay anyway).
     */
    template <typename R>
    void
    loadState(R &r)
    {
        buckets.assign(static_cast<std::size_t>(r.u64()), 0);
        for (auto &b : buckets)
            b = r.u64();
    }

  private:
    std::vector<Counter> buckets;
};

/**
 * Index of the bucket holding the @p q quantile of @p h, or -1 when
 * the histogram is empty. The target rank is ceil(q * total) clamped
 * to [1, total]: a truncated target of 0 would be "reached" at bucket
 * 0 even when that bucket is empty, which used to misreport p50/p90
 * of small samples as the first bucket's midpoint.
 */
int histQuantileBucket(const Histogram &h, double q);

/** Tracks a running mean without storing samples. */
class Average
{
  public:
    void
    sample(double v)
    {
        sum += v;
        ++n;
    }

    double mean() const { return n ? sum / static_cast<double>(n) : 0.0; }
    Counter samples() const { return n; }
    void reset() { sum = 0.0; n = 0; }

  private:
    double sum = 0.0;
    Counter n = 0;
};

/**
 * A registry of named scalar values built up by the simulator at dump
 * time; keeps reporting decoupled from where stats live.
 */
class StatsDump
{
  public:
    // TDLINT: cold
    void
    add(const std::string &name, double value)
    {
        entries.emplace_back(name, value);
    }

    void print(std::ostream &os) const;

    double get(const std::string &name) const;
    bool has(const std::string &name) const;

    /** All entries in dump order (e.g. for whole-dump comparison). */
    const std::vector<std::pair<std::string, double>> &
    items() const
    {
        return entries;
    }

  private:
    std::vector<std::pair<std::string, double>> entries;
};

} // namespace tinydir

#endif // TINYDIR_COMMON_STATS_HH
