/**
 * @file
 * Open-addressing hash map keyed by Addr for the simulation hot path.
 *
 * A robin-hood / linear-probe map with power-of-two capacity and
 * tombstone-free backward-shift erase. Compared to std::unordered_map
 * it stores entries contiguously (one cache line covers several
 * probes, no per-node allocation) and, once reserve()d to the
 * structure's known maximum footprint, never allocates again — the
 * property the per-access simulation core relies on (DESIGN.md,
 * "Performance engineering").
 *
 * Iteration order is unspecified and changes across rehashes; no
 * simulation-visible decision may depend on it. All current users
 * iterate only for invariant checks, stats flushes, or pruning of
 * entries whose effect is already spent, which keeps behaviour
 * bit-identical to the std::unordered_map implementation it replaced.
 */

#ifndef TINYDIR_COMMON_FLAT_MAP_HH
#define TINYDIR_COMMON_FLAT_MAP_HH

#include <algorithm>
#include <cstdint>
#include <cstddef>
#include <utility>
#include <vector>

#include "common/log.hh"
#include "common/types.hh"

namespace tinydir
{

/** Robin-hood open-addressing map from Addr to V. */
template <typename V>
class FlatMap
{
  public:
    /** One slot: dist 0 = empty, else 1 + probe distance from home. */
    struct Slot
    {
        Addr key = 0;
        V value{};
        std::uint8_t dist = 0;
    };

    FlatMap() = default;

    /** Value of @p key, or nullptr. Stable until the next mutation. */
    V *
    find(Addr key)
    {
        if (count == 0)
            return nullptr;
        std::size_t idx = homeOf(key);
        std::uint8_t dist = 1;
        for (;;) {
            Slot &s = slots[idx];
            // Robin-hood invariant: once the resident entry is closer
            // to its home than we are to ours, the key cannot appear
            // further down the probe chain.
            if (s.dist < dist)
                return nullptr;
            if (s.key == key)
                return &s.value;
            idx = (idx + 1) & mask();
            ++dist;
        }
    }

    const V *
    find(Addr key) const
    {
        return const_cast<FlatMap *>(this)->find(key);
    }

    bool contains(Addr key) const { return find(key) != nullptr; }

    /**
     * Hint the cache that @p key's home slot is about to be probed.
     * Purely a performance hint (no simulation-visible effect): the
     * batched access front-end issues these for the whole batch before
     * the serialized lookups run, overlapping the DRAM misses.
     */
    void
    prefetch(Addr key) const
    {
        if (!slots.empty())
            __builtin_prefetch(&slots[homeOf(key)]);
    }

    /** Value of @p key, default-constructed and inserted if absent. */
    // TDLINT: hot-safe
    V &
    operator[](Addr key)
    {
        if (V *v = find(key))
            return *v;
        return *insertNew(key, V{});
    }

    /**
     * Insert (@p key, @p value), overwriting any existing entry.
     * @return pointer to the stored value (stable until next mutation).
     *
     * Steady-state allocation freedom (capacity reserve()d up front,
     * amortized rehash only while warming) is proven dynamically by
     * test_hotpath's counted operator new; the static walk trusts it.
     */
    // TDLINT: hot-safe
    V *
    insert(Addr key, V value)
    {
        if (V *v = find(key)) {
            *v = std::move(value);
            return v;
        }
        return insertNew(key, std::move(value));
    }

    /** Remove @p key. @return true when an entry was erased. */
    bool
    erase(Addr key)
    {
        if (count == 0)
            return false;
        std::size_t idx = homeOf(key);
        std::uint8_t dist = 1;
        for (;;) {
            Slot &s = slots[idx];
            if (s.dist < dist)
                return false;
            if (s.key == key)
                break;
            idx = (idx + 1) & mask();
            ++dist;
        }
        eraseAt(idx);
        return true;
    }

    std::size_t size() const { return count; }
    bool empty() const { return count == 0; }

    /** Slot-array capacity (always zero or a power of two). */
    std::size_t capacity() const { return slots.size(); }

    void
    clear()
    {
        for (Slot &s : slots)
            s = Slot{};
        count = 0;
    }

    /**
     * Pre-size so that @p n entries fit without rehashing. Sizing to a
     * structure's known maximum footprint up front is what makes the
     * map allocation-free in steady state.
     */
    void
    reserve(std::size_t n)
    {
        std::size_t cap = minCapacity;
        // Grow while n exceeds the maxLoad fraction of cap.
        while (n * loadDen > cap * loadNum)
            cap <<= 1;
        if (cap > slots.size())
            rehash(cap);
    }

    /** Visit every (key, value) pair; order is unspecified. */
    template <typename F>
    void
    forEach(F &&f) const
    {
        for (const Slot &s : slots) {
            if (s.dist)
                f(s.key, s.value);
        }
    }

    /**
     * Serialize the live entries in ascending key order (so the byte
     * stream is deterministic even though iteration order is not);
     * @p save_value writes one V through the ckpt::Writer-shaped sink.
     */
    template <typename W, typename SaveV>
    void
    saveState(W &w, SaveV &&save_value) const
    {
        std::vector<Addr> keys;
        keys.reserve(count);
        forEach([&](Addr k, const V &) { keys.push_back(k); });
        std::sort(keys.begin(), keys.end());
        w.u64(keys.size());
        for (Addr k : keys) {
            w.u64(k);
            save_value(w, *find(k));
        }
    }

    /**
     * Restore entries written by saveState. Capacity may differ from
     * the saving map's — iteration order is already documented as
     * non-simulation-visible, so that difference is unobservable.
     */
    template <typename R, typename LoadV>
    void
    loadState(R &r, LoadV &&load_value)
    {
        clear();
        const std::uint64_t n = r.u64();
        reserve(static_cast<std::size_t>(n));
        for (std::uint64_t i = 0; i < n; ++i) {
            const Addr k = r.u64();
            V v{};
            load_value(r, v);
            insert(k, std::move(v));
        }
    }

    /**
     * Erase every entry for which @p pred(key, value) holds. Because
     * backward-shift erase moves entries across the wrap-around
     * boundary, an entry relocated during the sweep may be visited
     * twice or not at all: @p pred must be idempotent and pruning-like
     * (a survivor skipped this sweep is simply caught by the next).
     */
    template <typename F>
    void
    eraseIf(F &&pred)
    {
        for (std::size_t i = 0; i < slots.size(); ++i) {
            while (slots[i].dist && pred(slots[i].key, slots[i].value))
                eraseAt(i); // the successor shifts into i; re-test it
        }
    }

  private:
    static constexpr std::size_t minCapacity = 16;
    // Maximum load factor 13/16 (~0.81): probe chains stay short while
    // pre-sized tables don't over-allocate.
    static constexpr std::size_t loadNum = 13;
    static constexpr std::size_t loadDen = 16;

    std::size_t mask() const { return slots.size() - 1; }

    std::size_t
    homeOf(Addr key) const
    {
        // Fibonacci hashing: the golden-ratio multiplier mixes the low
        // block-number bits into the high bits the mask keeps.
        return static_cast<std::size_t>(
            (key * 0x9E3779B97F4A7C15ull) >> shift);
    }

    V *
    insertNew(Addr key, V value)
    {
        if (slots.empty() ||
            (count + 1) * loadDen > slots.size() * loadNum) {
            rehash(slots.empty() ? minCapacity : slots.size() * 2);
        }
        V *placed = nullptr;
        Slot cur;
        cur.key = key;
        cur.value = std::move(value);
        cur.dist = 1;
        std::size_t idx = homeOf(key);
        for (;;) {
            Slot &s = slots[idx];
            if (s.dist == 0) {
                s = std::move(cur);
                ++count;
                return placed ? placed : &s.value;
            }
            if (s.dist < cur.dist) {
                // Rich entry found: displace it (robin hood) and keep
                // walking with the displaced entry.
                std::swap(s, cur);
                if (!placed)
                    placed = &s.value;
            }
            idx = (idx + 1) & mask();
            panic_if(++cur.dist == 0, "FlatMap probe length overflow");
        }
    }

    /** Backward-shift erase of the (occupied) slot at @p idx. */
    void
    eraseAt(std::size_t idx)
    {
        for (;;) {
            const std::size_t nxt = (idx + 1) & mask();
            Slot &n = slots[nxt];
            if (n.dist <= 1)
                break; // empty or already home: chain ends here
            slots[idx] = std::move(n);
            --slots[idx].dist;
            idx = nxt;
        }
        slots[idx] = Slot{};
        --count;
    }

    void
    rehash(std::size_t new_cap)
    {
        panic_if((new_cap & (new_cap - 1)) != 0,
                 "FlatMap capacity must be a power of two");
        std::vector<Slot> old = std::move(slots);
        slots.assign(new_cap, Slot{});
        shift = 64;
        for (std::size_t c = new_cap; c > 1; c >>= 1)
            --shift;
        count = 0;
        for (Slot &s : old) {
            if (s.dist)
                insertNew(s.key, std::move(s.value));
        }
    }

    std::vector<Slot> slots;
    std::size_t count = 0;
    /** 64 - log2(capacity); used by the fibonacci hash. */
    unsigned shift = 64;
};

} // namespace tinydir

#endif // TINYDIR_COMMON_FLAT_MAP_HH
