/**
 * @file
 * Fundamental scalar types shared by every module of the tinydir library.
 */

#ifndef TINYDIR_COMMON_TYPES_HH
#define TINYDIR_COMMON_TYPES_HH

#include <cstdint>
#include <limits>

namespace tinydir
{

/** Physical byte address. The paper assumes 48 physical address bits. */
using Addr = std::uint64_t;

/** Processor core identifier. */
using CoreId = std::uint16_t;

/** Simulated time, measured in core clock cycles (2 GHz in Table I). */
using Cycle = std::uint64_t;

/** Generic 64-bit counter used throughout the statistics machinery. */
using Counter = std::uint64_t;

/** Sentinel meaning "no core". */
constexpr CoreId invalidCore = std::numeric_limits<CoreId>::max();

/** Sentinel address (never produced by workloads: generators avoid ~0). */
constexpr Addr invalidAddr = std::numeric_limits<Addr>::max();

/** Maximum number of cores supported by the fixed-width sharer vector. */
constexpr unsigned maxCores = 512;

/** Cache block size in bytes (Table I). */
constexpr unsigned blockBytes = 64;

/** log2 of the block size. */
constexpr unsigned blockShift = 6;

/** Physical address width assumed for tag-size accounting (Section V). */
constexpr unsigned physAddrBits = 48;

/** Convert a byte address to a block address (block-aligned). */
constexpr Addr
blockAlign(Addr a)
{
    return a & ~static_cast<Addr>(blockBytes - 1);
}

/** Extract the block number of a byte address. */
constexpr Addr
blockNumber(Addr a)
{
    return a >> blockShift;
}

} // namespace tinydir

#endif // TINYDIR_COMMON_TYPES_HH
