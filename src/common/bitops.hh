/**
 * @file
 * Small integer/bit helpers used by cache indexing and tag accounting.
 */

#ifndef TINYDIR_COMMON_BITOPS_HH
#define TINYDIR_COMMON_BITOPS_HH

#include <bit>
#include <cstdint>

#include "common/log.hh"

namespace tinydir
{

/** True iff @p v is a power of two (zero is not). */
constexpr bool
isPowerOfTwo(std::uint64_t v)
{
    return v != 0 && (v & (v - 1)) == 0;
}

/** Floor of log2; @p v must be non-zero. */
constexpr unsigned
floorLog2(std::uint64_t v)
{
    return 63u - static_cast<unsigned>(std::countl_zero(v));
}

/** Ceiling of log2; @p v must be non-zero. */
constexpr unsigned
ceilLog2(std::uint64_t v)
{
    return isPowerOfTwo(v) ? floorLog2(v) : floorLog2(v) + 1;
}

/** Integer division rounding up. */
constexpr std::uint64_t
divCeil(std::uint64_t a, std::uint64_t b)
{
    return (a + b - 1) / b;
}

/**
 * Mix the bits of a block number. Used to spread synthetic addresses
 * across sets/banks; splitmix64 finalizer.
 */
constexpr std::uint64_t
mix64(std::uint64_t x)
{
    x += 0x9e3779b97f4a7c15ull;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return x ^ (x >> 31);
}

} // namespace tinydir

#endif // TINYDIR_COMMON_BITOPS_HH
