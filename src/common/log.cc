#include "common/log.hh"

#include <cstdio>
#include <mutex>
#include <sstream>

#include "common/sim_error.hh"

namespace tinydir
{
namespace log_detail
{

namespace
{

/**
 * Serializes the sinks: parallel simulation workers warn() and
 * inform() concurrently, and interleaved partial lines would make the
 * output useless. Each message is rendered before the lock is taken
 * and emitted with a single stdio call.
 */
std::mutex &
sinkMutex()
{
    static std::mutex mu;
    return mu;
}

} // namespace

void
panicImpl(const char *file, int line, const std::string &msg)
{
    {
        std::lock_guard<std::mutex> guard(sinkMutex());
        // TDLINT: allow(error-path): this is the designated panic sink
        std::fprintf(stderr, "panic: %s (%s:%d)\n", msg.c_str(), file,
                     line);
    }
    std::ostringstream os;
    os << msg << " (" << file << ':' << line << ')';
    throw InternalError(os.str());
}

void
fatalImpl(const char *file, int line, const std::string &msg)
{
    {
        std::lock_guard<std::mutex> guard(sinkMutex());
        // TDLINT: allow(error-path): this is the designated fatal sink
        std::fprintf(stderr, "fatal: %s (%s:%d)\n", msg.c_str(), file,
                     line);
    }
    std::ostringstream os;
    os << msg << " (" << file << ':' << line << ')';
    throw ConfigError(os.str());
}

void
warnImpl(const std::string &msg)
{
    std::lock_guard<std::mutex> guard(sinkMutex());
    // TDLINT: allow(error-path): this is the designated warn sink
    std::fprintf(stderr, "warn: %s\n", msg.c_str());
}

void
informImpl(const std::string &msg)
{
    std::lock_guard<std::mutex> guard(sinkMutex());
    // TDLINT: allow(error-path): this is the designated inform sink
    std::fprintf(stdout, "info: %s\n", msg.c_str());
}

} // namespace log_detail
} // namespace tinydir
