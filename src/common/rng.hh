/**
 * @file
 * Deterministic random number generation for workload synthesis.
 *
 * xoshiro256** by Blackman and Vigna; seeded through splitmix64 so that
 * any 64-bit seed (including 0) produces a well-mixed state. Every
 * workload stream owns an independent Rng so simulations are fully
 * reproducible and insensitive to scheme-dependent consumption order.
 */

#ifndef TINYDIR_COMMON_RNG_HH
#define TINYDIR_COMMON_RNG_HH

#include <cmath>
#include <cstdint>
#include <vector>

#include "common/bitops.hh"
#include "common/log.hh"

namespace tinydir
{

/** Deterministic 64-bit pseudo random number generator. */
class Rng
{
  public:
    explicit Rng(std::uint64_t seed = 1)
    {
        std::uint64_t sm = seed;
        for (auto &word : state) {
            sm += 0x9e3779b97f4a7c15ull;
            word = mix64(sm);
        }
    }

    /** Next raw 64-bit value. */
    std::uint64_t
    next()
    {
        const std::uint64_t result = rotl(state[1] * 5, 7) * 9;
        const std::uint64_t t = state[1] << 17;
        state[2] ^= state[0];
        state[3] ^= state[1];
        state[1] ^= state[2];
        state[0] ^= state[3];
        state[2] ^= t;
        state[3] = rotl(state[3], 45);
        return result;
    }

    /** Uniform integer in [0, bound). @p bound must be non-zero. */
    std::uint64_t
    below(std::uint64_t bound)
    {
        panic_if(bound == 0, "Rng::below(0)");
        // Lemire's multiply-shift rejection-free approximation is fine
        // for simulation workloads (bias < 2^-64 * bound).
        return static_cast<std::uint64_t>(
            (static_cast<unsigned __int128>(next()) * bound) >> 64);
    }

    /** Uniform double in [0, 1). */
    double
    uniform()
    {
        return static_cast<double>(next() >> 11) * 0x1.0p-53;
    }

    /** Bernoulli trial with probability @p p. */
    bool chance(double p) { return uniform() < p; }

    /** Serialize the generator state (ckpt::Writer-shaped sink). */
    template <typename W>
    void
    saveState(W &w) const
    {
        for (std::uint64_t word : state)
            w.u64(word);
    }

    /** Restore state written by saveState (ckpt::Reader-shaped source). */
    template <typename R>
    void
    loadState(R &r)
    {
        for (auto &word : state)
            word = r.u64();
    }

    /**
     * Zipf-like rank selection over [0, n): rank r is chosen with
     * probability proportional to 1/(r+1)^theta, approximated via
     * inverse-power transform (cheap, adequate for locality skew).
     */
    std::uint64_t
    zipf(std::uint64_t n, double theta)
    {
        if (n <= 1)
            return 0;
        if (theta <= 0.0)
            return below(n);
        const double u = uniform();
        // Inverse-power transform maps u in [0,1) to a rank skewed
        // toward 0 with skew controlled by theta.
        const double exponent = 1.0 / (1.0 + theta);
        double r = static_cast<double>(n) *
            (1.0 - std::pow(u, exponent));
        auto rank = static_cast<std::uint64_t>(r);
        return rank >= n ? n - 1 : rank;
    }

  private:
    static std::uint64_t
    rotl(std::uint64_t x, int k)
    {
        return (x << k) | (x >> (64 - k));
    }

    std::uint64_t state[4];
};

/**
 * Exact discrete Zipf sampler: rank r in [0, n) is drawn with
 * probability proportional to 1/(r+1)^theta. The CDF is precomputed
 * once (the workload generators reuse a sampler per region), sampling
 * is a binary search. Rng::zipf remains as a cheap stateless
 * approximation for callers that cannot hold state.
 */
class ZipfSampler
{
  public:
    ZipfSampler(std::uint64_t n, double theta) : cdf(n)
    {
        panic_if(n == 0, "ZipfSampler over empty range");
        double acc = 0.0;
        for (std::uint64_t r = 0; r < n; ++r) {
            acc += theta <= 0.0
                ? 1.0
                : std::pow(static_cast<double>(r + 1), -theta);
            cdf[r] = acc;
        }
        for (auto &c : cdf)
            c /= acc;
    }

    std::uint64_t
    operator()(Rng &rng) const
    {
        const double u = rng.uniform();
        std::uint64_t lo = 0, hi = cdf.size() - 1;
        while (lo < hi) {
            const std::uint64_t mid = (lo + hi) / 2;
            if (cdf[mid] < u)
                lo = mid + 1;
            else
                hi = mid;
        }
        return lo;
    }

    std::uint64_t size() const { return cdf.size(); }

  private:
    std::vector<double> cdf;
};

} // namespace tinydir

#endif // TINYDIR_COMMON_RNG_HH
