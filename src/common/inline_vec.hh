/**
 * @file
 * Fixed-capacity inline vector for hot-path scratch buffers.
 *
 * The per-access simulation core must not heap-allocate in steady
 * state (DESIGN.md, "Performance engineering"): transient results
 * whose size is bounded by construction — e.g. the eviction notices
 * one private-cache access can emit — live in an InlineVec owned by
 * the caller and reused across accesses. Exceeding the compile-time
 * capacity is an internal invariant violation, not a reallocation.
 */

#ifndef TINYDIR_COMMON_INLINE_VEC_HH
#define TINYDIR_COMMON_INLINE_VEC_HH

#include <array>
#include <cstddef>

#include "common/log.hh"

namespace tinydir
{

/** A vector of at most N elements stored inline (no heap). */
template <typename T, std::size_t N>
class InlineVec
{
  public:
    using value_type = T;

    void
    push_back(const T &v)
    {
        panic_if(n >= N, "InlineVec overflow (capacity ", N, ")");
        buf[n++] = v;
    }

    void clear() { n = 0; }

    std::size_t size() const { return n; }
    bool empty() const { return n == 0; }
    static constexpr std::size_t capacity() { return N; }

    T &
    operator[](std::size_t i)
    {
        panic_if(i >= n, "InlineVec index out of range");
        return buf[i];
    }

    const T &
    operator[](std::size_t i) const
    {
        panic_if(i >= n, "InlineVec index out of range");
        return buf[i];
    }

    T *begin() { return buf.data(); }
    T *end() { return buf.data() + n; }
    const T *begin() const { return buf.data(); }
    const T *end() const { return buf.data() + n; }

  private:
    std::array<T, N> buf{};
    std::size_t n = 0;
};

} // namespace tinydir

#endif // TINYDIR_COMMON_INLINE_VEC_HH
