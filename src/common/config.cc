#include "common/config.hh"

#include <cmath>

#include "common/bitops.hh"
#include "common/log.hh"

namespace tinydir
{

std::string
toString(TrackerKind k)
{
    switch (k) {
      case TrackerKind::SparseDir: return "sparse";
      case TrackerKind::SharedOnlyDir: return "shared-only";
      case TrackerKind::InLlcTagExtended: return "in-llc-tag-extended";
      case TrackerKind::InLlc: return "in-llc";
      case TrackerKind::TinyDir: return "tiny";
      case TrackerKind::Mgd: return "mgd";
      case TrackerKind::Stash: return "stash";
    }
    return "?";
}

std::string
toString(TinyPolicy p)
{
    switch (p) {
      case TinyPolicy::Dstra: return "DSTRA";
      case TinyPolicy::DstraGnru: return "DSTRA+gNRU";
    }
    return "?";
}

std::uint64_t
SystemConfig::aggregateL2Blocks() const
{
    return static_cast<std::uint64_t>(numCores) * (l2Bytes / blockBytes);
}

std::uint64_t
SystemConfig::dirEntriesTotal() const
{
    auto entries = static_cast<std::uint64_t>(
        std::llround(dirSizeFactor * static_cast<double>(
            aggregateL2Blocks())));
    // Never fewer than one entry per slice.
    return std::max<std::uint64_t>(entries, llcBanks());
}

std::uint64_t
SystemConfig::dirEntriesPerSlice() const
{
    return std::max<std::uint64_t>(1, dirEntriesTotal() / llcBanks());
}

std::uint64_t
SystemConfig::llcBlocksTotal() const
{
    return static_cast<std::uint64_t>(std::llround(
        llcBlocksPerN * static_cast<double>(aggregateL2Blocks())));
}

std::uint64_t
SystemConfig::llcSetsPerBank() const
{
    return llcBlocksTotal() / llcBanks() / llcAssoc;
}

unsigned
SystemConfig::effectiveDirAssoc() const
{
    auto per_slice = dirEntriesPerSlice();
    if (per_slice <= 16)
        return static_cast<unsigned>(per_slice); // fully associative
    return dirAssoc;
}

unsigned
SystemConfig::meshWidth() const
{
    // The wider power-of-two factorization: 128 -> 16x8, 64 -> 8x8.
    unsigned log = ceilLog2(numCores);
    return 1u << divCeil(log, 2);
}

unsigned
SystemConfig::meshHeight() const
{
    return std::max(1u, numCores / meshWidth());
}

void
SystemConfig::validate() const
{
    fatal_if(numCores == 0 || numCores > maxCores,
             "numCores must be in [1, ", maxCores, "]");
    fatal_if(!isPowerOfTwo(numCores), "numCores must be a power of two");
    fatal_if(l1Bytes % (blockBytes * l1Assoc) != 0, "bad L1 geometry");
    fatal_if(l2Bytes % (blockBytes * l2Assoc) != 0, "bad L2 geometry");
    fatal_if(llcSetsPerBank() == 0, "LLC too small for bank/assoc split");
    fatal_if(!isPowerOfTwo(llcSetsPerBank()),
             "LLC sets per bank must be a power of two, got ",
             llcSetsPerBank());
    fatal_if(memChannels == 0 || !isPowerOfTwo(memChannels),
             "memChannels must be a power of two");
    auto assoc = effectiveDirAssoc();
    fatal_if(assoc == 0, "directory slice has zero ways");
    fatal_if(dirEntriesPerSlice() % assoc != 0,
             "directory slice entries (", dirEntriesPerSlice(),
             ") not divisible by associativity (", assoc, ")");
    fatal_if(dirSkewed && dirAssoc != 4,
             "skew-associative directories are modeled as 4-way ZCache");
    fatal_if(straCounterBits == 0 || straCounterBits > 8,
             "STRA counters must be 1..8 bits wide");
    fatal_if(sharerGrain == 0 || !isPowerOfTwo(sharerGrain) ||
                 sharerGrain > numCores,
             "sharerGrain must be a power of two <= numCores");
    fatal_if(sharerGrain > 1 && tracker != TrackerKind::SparseDir,
             "coarse sharer vectors are supported for the sparse "
             "directory only");
}

SystemConfig
SystemConfig::scaled(unsigned cores)
{
    SystemConfig cfg;
    cfg.numCores = cores;
    // Per-core cache sizes stay as in Table I; the LLC and directory
    // scale through their N-relative definitions automatically.
    return cfg;
}

} // namespace tinydir
