/**
 * @file
 * Bucketed time wheel for cycle-keyed event tracking.
 *
 * A fixed ring of single-cycle slots covers the horizon
 * [now, now + span); each live cycle in that window maps to exactly
 * one slot (slot = cycle mod span), so a slot never mixes cycles. A
 * two-level occupancy bitmap (one bit per slot, one summary bit per
 * 64 slots) turns "earliest pending event" into two ctz probes
 * instead of the linear min-scans this structure replaces in the
 * engine's busyUntil pruning and the driver's next-issue selection.
 * Events past the horizon wait in an overflow list and migrate into
 * the ring as the wheel turns; when the ring drains completely the
 * wheel jumps straight to the earliest overflow cycle.
 *
 * Nodes come from an index-linked pool with a freelist, so the
 * steady-state insert/pop cycle allocates nothing (the pool doubles
 * only while the working set is still growing, the same amortization
 * argument FlatMap makes). Pops are deterministic: strictly
 * nondecreasing cycle, and the smallest payload first among events
 * sharing a cycle — independent of insertion order, which is what
 * keeps straight runs and checkpoint-restored runs bit-identical.
 *
 * saveState/loadState serialize the live (cycle, payload) pairs in
 * canonical sorted order plus the current cycle, so the stream is a
 * pure function of the logical contents (pool layout, freelist order
 * and slot-list order never leak into checkpoint bytes).
 */

#ifndef TINYDIR_COMMON_TIME_WHEEL_HH
#define TINYDIR_COMMON_TIME_WHEEL_HH

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "common/log.hh"
#include "common/types.hh"

namespace tinydir
{

/**
 * Time-indexed multiset of integral payloads. PayloadT must be an
 * integral type (it is compared for deterministic same-cycle ordering
 * and serialized through u64).
 */
template <typename PayloadT>
class TimeWheel
{
  public:
    /** Slots in the ring; also the horizon width in cycles. */
    static constexpr std::uint64_t span = 4096;

    struct Event
    {
        Cycle cycle = 0;
        PayloadT payload{};
    };

    TimeWheel()
        : slotHead(span, -1), occ(span / 64, 0)
    {
    }

    /** Events currently tracked (ring + overflow). */
    std::size_t size() const { return wheelCount + overflow.size(); }

    bool empty() const { return size() == 0; }

    /** Current cycle: no live event is earlier than this. */
    Cycle now() const { return cur; }

    /**
     * Grow the node pool to at least @p n nodes up front so the
     * steady state never triggers a doubling.
     */
    void
    reserve(std::size_t n)
    {
        if (pool.size() < n)
            growPool(n);
        overflow.reserve(n);
    }

    /**
     * Track @p payload at @p cycle. Cycles earlier than now() clamp
     * to now() (they are already due); callers that cancel by cycle
     * must use the clamped value.
     */
    void
    insert(Cycle cycle, PayloadT payload)
    {
        if (cycle < cur)
            cycle = cur;
        if (cycle - cur >= span) {
            spillFarFuture(cycle, payload);
            return;
        }
        const std::uint64_t s = cycle & (span - 1);
        if (freeHead < 0)
            growPool(pool.empty() ? 64 : pool.size() * 2);
        const std::int32_t n = freeHead;
        freeHead = pool[n].next;
        pool[n].cycle = cycle;
        pool[n].payload = payload;
        pool[n].next = slotHead[s];
        slotHead[s] = n;
        occ[s >> 6] |= 1ull << (s & 63);
        summary |= 1ull << (s >> 6);
        ++wheelCount;
    }

    /**
     * Remove one event matching (@p cycle, @p payload) exactly.
     * Returns false if no such event is live.
     */
    bool
    cancel(Cycle cycle, PayloadT payload)
    {
        if (cycle >= cur && cycle - cur < span) {
            const std::uint64_t s = cycle & (span - 1);
            std::int32_t prev = -1;
            for (std::int32_t n = slotHead[s]; n >= 0;
                 prev = n, n = pool[n].next) {
                if (pool[n].payload == payload) {
                    unlink(s, prev, n);
                    return true;
                }
            }
            return false;
        }
        for (std::size_t i = 0; i < overflow.size(); ++i) {
            if (overflow[i].cycle == cycle &&
                overflow[i].payload == payload) {
                overflow[i] = overflow.back();
                overflow.pop_back();
                recomputeOverflowMin();
                return true;
            }
        }
        return false;
    }

    /** Earliest event without removing it. */
    bool
    peek(Event &out)
    {
        if (empty())
            return false;
        settle();
        std::int32_t prev, n;
        const std::uint64_t s = findEarliest(prev, n);
        (void)s;
        out.cycle = pool[n].cycle;
        out.payload = pool[n].payload;
        return true;
    }

    /** Remove and return the earliest event; advances now() to it. */
    bool
    pop(Event &out)
    {
        if (empty())
            return false;
        settle();
        std::int32_t prev, n;
        const std::uint64_t s = findEarliest(prev, n);
        out.cycle = pool[n].cycle;
        out.payload = pool[n].payload;
        unlink(s, prev, n);
        cur = out.cycle;
        return true;
    }

    /**
     * Pop every event with cycle <= @p to, in deterministic order,
     * calling fn(cycle, payload) for each; now() ends at max(now(),
     * @p to). Unlike peek(), this never moves now() past @p to, so
     * later inserts between @p to and the next event do not clamp.
     */
    template <typename Fn>
    void
    advance(Cycle to, Fn &&fn)
    {
        Event ev;
        while (!empty() && earliestCycle() <= to) {
            pop(ev);
            fn(ev.cycle, ev.payload);
        }
        if (to > cur)
            cur = to;
    }

    /** Drop every event and reset now() to zero. */
    void
    clear()
    {
        std::fill(slotHead.begin(), slotHead.end(), -1);
        std::fill(occ.begin(), occ.end(), 0);
        summary = 0;
        freeHead = -1;
        for (std::size_t i = 0; i < pool.size(); ++i) {
            pool[i].next = freeHead;
            freeHead = static_cast<std::int32_t>(i);
        }
        overflow.clear();
        overflowMin = ~Cycle(0);
        wheelCount = 0;
        cur = 0;
    }

    /**
     * Drop every event and restart now() at @p start. Used when a
     * wheel is rebuilt from external authoritative state (checkpoint
     * restore) so a re-save reproduces the original stream.
     */
    void
    reset(Cycle start)
    {
        clear();
        cur = start;
    }

    /**
     * Canonical serialization: now(), the live count, then every
     * (cycle, payload) pair sorted by cycle then payload.
     */
    template <typename W>
    void
    saveState(W &w) const
    {
        std::vector<Event> all = liveEvents();
        w.u64(cur);
        w.u64(all.size());
        for (const Event &e : all) {
            w.u64(e.cycle);
            w.u64(static_cast<std::uint64_t>(e.payload));
        }
    }

    /** Restore a stream written by saveState. */
    template <typename R>
    void
    loadState(R &r)
    {
        clear();
        cur = r.u64();
        const std::uint64_t n = r.u64();
        for (std::uint64_t i = 0; i < n; ++i) {
            const Cycle c = r.u64();
            const auto p = static_cast<PayloadT>(r.u64());
            insert(c, p);
        }
    }

    /**
     * Earliest live cycle across ring and overflow without mutating
     * the wheel (now() does not move); ~Cycle(0) when empty. Batch
     * formation uses this to test the next event against a window
     * bound before deciding to pop it.
     */
    Cycle
    earliestCycle() const
    {
        Cycle best = ~Cycle(0);
        if (wheelCount > 0) {
            std::int32_t prev, n;
            findEarliest(prev, n);
            best = pool[n].cycle;
        }
        if (!overflow.empty())
            best = std::min(best, overflowMin);
        return best;
    }

    /** Live (cycle, payload) pairs in canonical sorted order. */
    std::vector<Event>
    liveEvents() const
    {
        std::vector<Event> all;
        all.reserve(size());
        for (std::uint64_t s = 0; s < span; ++s) {
            for (std::int32_t n = slotHead[s]; n >= 0; n = pool[n].next)
                all.push_back({pool[n].cycle, pool[n].payload});
        }
        all.insert(all.end(), overflow.begin(), overflow.end());
        std::sort(all.begin(), all.end(),
                  [](const Event &a, const Event &b) {
                      if (a.cycle != b.cycle)
                          return a.cycle < b.cycle;
                      return a.payload < b.payload;
                  });
        return all;
    }

  private:
    struct Node
    {
        Cycle cycle = 0;
        PayloadT payload{};
        std::int32_t next = -1;
    };

    /** Grow the pool to @p target nodes, chaining the new freelist. */
    // TDLINT: cold
    void
    growPool(std::size_t target)
    {
        const std::size_t old = pool.size();
        pool.resize(std::max(target, old + 1));
        for (std::size_t i = pool.size(); i > old; --i) {
            pool[i - 1].next = freeHead;
            freeHead = static_cast<std::int32_t>(i - 1);
        }
    }

    /** Park an event beyond the horizon in the overflow list. */
    // TDLINT: cold
    void
    spillFarFuture(Cycle cycle, PayloadT payload)
    {
        overflow.push_back({cycle, payload});
        if (cycle < overflowMin)
            overflowMin = cycle;
    }

    // TDLINT: cold
    void
    recomputeOverflowMin()
    {
        overflowMin = ~Cycle(0);
        for (const Event &e : overflow)
            overflowMin = std::min(overflowMin, e.cycle);
    }

    /**
     * Pull overflow events that now fit the horizon into the ring;
     * if the ring is empty, first jump now() to the earliest
     * overflow cycle so at least one event lands.
     */
    void
    settle()
    {
        if (overflow.empty())
            return;
        if (wheelCount == 0 && overflowMin > cur)
            cur = overflowMin;
        if (overflowMin - cur >= span)
            return;
        migrateOverflow();
    }

    // TDLINT: cold
    void
    migrateOverflow()
    {
        std::size_t kept = 0;
        for (std::size_t i = 0; i < overflow.size(); ++i) {
            const Event e = overflow[i];
            if (e.cycle - cur < span)
                insert(e.cycle, e.payload);
            else
                overflow[kept++] = e;
        }
        overflow.resize(kept);
        recomputeOverflowMin();
    }

    /**
     * Locate the earliest event in the ring: first occupied slot in
     * circular order from now()'s slot, then the smallest payload in
     * that slot (all nodes of a slot share one cycle). Returns the
     * slot and writes the node and its list predecessor.
     */
    std::uint64_t
    findEarliest(std::int32_t &prevOut, std::int32_t &nodeOut) const
    {
        panic_if(wheelCount == 0, "findEarliest() on an empty wheel");
        const std::uint64_t start = cur & (span - 1);
        const std::uint64_t wi = start >> 6;
        std::uint64_t s;
        const std::uint64_t head = occ[wi] & (~0ull << (start & 63));
        if (head) {
            s = (wi << 6) +
                static_cast<unsigned>(__builtin_ctzll(head));
        } else {
            // Summary bits for words after wi, then before wi, then
            // wi's wrapped low bits: circular order from start.
            const std::uint64_t later =
                wi + 1 < span / 64 ? summary & (~0ull << (wi + 1)) : 0;
            const std::uint64_t earlier =
                summary & ((1ull << wi) - 1);
            if (later || earlier) {
                const std::uint64_t word = later ? later : earlier;
                const std::uint64_t wj =
                    static_cast<unsigned>(__builtin_ctzll(word));
                s = (wj << 6) + static_cast<unsigned>(
                                    __builtin_ctzll(occ[wj]));
            } else {
                const std::uint64_t mask =
                    (start & 63) ? (1ull << (start & 63)) - 1 : 0;
                const std::uint64_t wrap = occ[wi] & mask;
                panic_if(wrap == 0, "occupancy bitmap out of sync");
                s = (wi << 6) +
                    static_cast<unsigned>(__builtin_ctzll(wrap));
            }
        }
        std::int32_t prev = -1, best_prev = -1;
        std::int32_t best = slotHead[s];
        for (std::int32_t n = slotHead[s]; n >= 0;
             prev = n, n = pool[n].next) {
            if (pool[n].payload < pool[best].payload) {
                best = n;
                best_prev = prev;
            }
        }
        prevOut = best_prev;
        nodeOut = best;
        return s;
    }

    /** Unlink node @p n (predecessor @p prev) from slot @p s. */
    void
    unlink(std::uint64_t s, std::int32_t prev, std::int32_t n)
    {
        if (prev < 0)
            slotHead[s] = pool[n].next;
        else
            pool[prev].next = pool[n].next;
        pool[n].next = freeHead;
        freeHead = n;
        --wheelCount;
        if (slotHead[s] < 0) {
            occ[s >> 6] &= ~(1ull << (s & 63));
            if (occ[s >> 6] == 0)
                summary &= ~(1ull << (s >> 6));
        }
    }

    std::vector<std::int32_t> slotHead;
    std::vector<Node> pool;
    std::int32_t freeHead = -1;
    /** One occupancy bit per slot. */
    std::vector<std::uint64_t> occ;
    /** One bit per occ word. */
    std::uint64_t summary = 0;
    std::vector<Event> overflow;
    Cycle overflowMin = ~Cycle(0);
    std::size_t wheelCount = 0;
    Cycle cur = 0;
};

} // namespace tinydir

#endif // TINYDIR_COMMON_TIME_WHEEL_HH
