#include "common/stats.hh"

#include <cmath>
#include <iomanip>

#include "common/log.hh"

namespace tinydir
{

int
histQuantileBucket(const Histogram &h, double q)
{
    const Counter n = h.total();
    if (n == 0)
        return -1;
    auto target = static_cast<Counter>(
        std::ceil(q * static_cast<double>(n)));
    if (target == 0)
        target = 1;
    if (target > n)
        target = n;
    Counter acc = 0;
    for (unsigned b = 0; b < h.size(); ++b) {
        acc += h.bucket(b);
        if (acc >= target)
            return static_cast<int>(b);
    }
    return static_cast<int>(h.size()) - 1;
}

void
StatsDump::print(std::ostream &os) const
{
    for (const auto &[name, value] : entries) {
        os << std::left << std::setw(48) << name << ' '
           << std::setprecision(12) << value << '\n';
    }
}

double
StatsDump::get(const std::string &name) const
{
    for (const auto &[n, v] : entries) {
        if (n == name)
            return v;
    }
    panic("unknown stat: ", name);
}

bool
StatsDump::has(const std::string &name) const
{
    for (const auto &[n, v] : entries) {
        if (n == name)
            return true;
    }
    return false;
}

} // namespace tinydir
