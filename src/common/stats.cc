#include "common/stats.hh"

#include <iomanip>

#include "common/log.hh"

namespace tinydir
{

void
StatsDump::print(std::ostream &os) const
{
    for (const auto &[name, value] : entries) {
        os << std::left << std::setw(48) << name << ' '
           << std::setprecision(12) << value << '\n';
    }
}

double
StatsDump::get(const std::string &name) const
{
    for (const auto &[n, v] : entries) {
        if (n == name)
            return v;
    }
    panic("unknown stat: ", name);
}

bool
StatsDump::has(const std::string &name) const
{
    for (const auto &[n, v] : entries) {
        if (n == name)
            return true;
    }
    return false;
}

} // namespace tinydir
