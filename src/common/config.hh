/**
 * @file
 * System configuration (paper Table I) and coherence-scheme selection.
 *
 * All sizing relationships from the paper are kept as invariants:
 *  - N = aggregate private L2 capacity in blocks across all cores;
 *  - a "k x" directory has k*N tracking entries;
 *  - the LLC holds 2*N blocks (so a 2x directory can track every LLC
 *    block, Fig. 2 setup);
 *  - one LLC bank + one directory slice per core/mesh hop.
 *
 * scaled() produces smaller-core-count configurations that preserve all
 * these ratios so bench runs stay fast while keeping scheme ordering.
 */

#ifndef TINYDIR_COMMON_CONFIG_HH
#define TINYDIR_COMMON_CONFIG_HH

#include <string>

#include "common/types.hh"

namespace tinydir
{

/** Which coherence-tracking organization the system uses. */
enum class TrackerKind
{
    /** Conventional sparse directory (baseline, any size). */
    SparseDir,
    /** Idealized directory tracking only shared blocks (Fig. 3). */
    SharedOnlyDir,
    /** Storage-heavy in-LLC variant: every LLC tag extended (Fig. 4). */
    InLlcTagExtended,
    /** In-LLC tracking borrowing data-block bits (Section III). */
    InLlc,
    /** Tiny directory on top of in-LLC tracking (Section IV). */
    TinyDir,
    /** Multi-grain directory baseline (Fig. 22). */
    Mgd,
    /** Stash directory baseline (Fig. 22). */
    Stash,
};

/** Allocation/eviction policy of the tiny directory (Section IV-A). */
enum class TinyPolicy
{
    Dstra,     //!< Dynamic STRA allocation
    DstraGnru, //!< DSTRA + generational NRU
};

/** Convert enum values to human-readable names. */
std::string toString(TrackerKind k);
std::string toString(TinyPolicy p);

/** Full system configuration. Defaults reproduce Table I. */
struct SystemConfig
{
    // -- cores and private hierarchy ------------------------------------
    unsigned numCores = 128;
    unsigned l1Bytes = 32 * 1024;   //!< per L1 (separate I and D)
    unsigned l1Assoc = 8;
    Cycle l1Latency = 2;
    unsigned l2Bytes = 128 * 1024;  //!< unified private L2
    unsigned l2Assoc = 8;
    Cycle l2Latency = 3;

    // -- shared LLC ------------------------------------------------------
    unsigned llcAssoc = 16;
    Cycle llcTagLatency = 4;
    Cycle llcDataLatency = 2;
    /**
     * LLC capacity expressed as a multiple of N blocks (aggregate L2
     * blocks). Table I: 32 MB for 128 cores = 2*N blocks. The Section
     * V-A robustness experiment halves this to 1.
     */
    double llcBlocksPerN = 2.0;

    // -- interconnect -----------------------------------------------------
    Cycle hopCycles = 6;            //!< 3 ns per hop at 2 GHz

    // -- DRAM --------------------------------------------------------------
    unsigned memChannels = 8;
    unsigned memBanksPerChannel = 8;
    Cycle dramCas = 23;             //!< 11.25 ns at 2 GHz, rounded up
    Cycle dramRcd = 23;
    Cycle dramRp = 23;
    Cycle dramBurst = 8;            //!< BL=8 on 64-bit channel
    unsigned dramRowBytes = 8 * 1024;

    // -- coherence tracking -------------------------------------------------
    TrackerKind tracker = TrackerKind::SparseDir;
    /** Directory entries as a multiple of N (2.0 = the 2x baseline). */
    double dirSizeFactor = 2.0;
    unsigned dirAssoc = 8;
    /** Use a 4-way skew-associative (ZCache/H3) organization. */
    bool dirSkewed = false;
    TinyPolicy tinyPolicy = TinyPolicy::DstraGnru;
    /** Enable dynamic spilling into the LLC (Section IV-B). */
    bool tinySpill = false;
    /**
     * Cores per sharer-vector bit in the sparse directory (paper
     * Section I-A: "any standard technique for limiting the width of
     * the directory entry can be seamlessly applied on top"). Grain 1
     * is the exact full map; larger grains store a conservative
     * superset: invalidations also visit groupmates and entries may
     * outlive their last sharer. Supported by TrackerKind::SparseDir.
     */
    unsigned sharerGrain = 1;

    // -- tiny-directory / spill tunables (paper values) ---------------------
    unsigned straCounterBits = 6;   //!< STRAC / OAC width
    unsigned gnruQuantumCycles = 4096;    //!< T-counter tick
    unsigned gnruTimerBits = 10;          //!< T counter width
    unsigned spillSampledSets = 16;       //!< no-spill sets per bank
    unsigned spillWindowAccesses = 8192;  //!< observation window per bank

    // -- MgD / Stash tunables ------------------------------------------------
    unsigned mgdRegionBytes = 1024; //!< private-region grain

    // -- workload / driver ----------------------------------------------------
    std::uint64_t seed = 12345;
    /** Retry penalty when a request hits a busy (pending) block. */
    Cycle nackRetryCycles = 20;

    // -- derived quantities ------------------------------------------------
    /** N: aggregate private L2 capacity in blocks. */
    std::uint64_t aggregateL2Blocks() const;
    /** Total directory entries implied by dirSizeFactor. */
    std::uint64_t dirEntriesTotal() const;
    /** Directory entries per slice (one slice per LLC bank). */
    std::uint64_t dirEntriesPerSlice() const;
    /** Number of LLC banks (one per core/mesh hop). */
    unsigned llcBanks() const { return numCores; }
    /** Total LLC capacity in blocks. */
    std::uint64_t llcBlocksTotal() const;
    /** LLC sets per bank. */
    std::uint64_t llcSetsPerBank() const;
    /**
     * Effective per-slice directory associativity: the paper uses
     * fully-associative slices once a slice has <= 16 entries.
     */
    unsigned effectiveDirAssoc() const;
    /** Mesh width (power of two; 128 cores -> 16x8 mesh). */
    unsigned meshWidth() const;
    /** Mesh height (numCores / meshWidth()). */
    unsigned meshHeight() const;

    /** Check internal consistency; fatal() on bad combinations. */
    void validate() const;

    /**
     * A configuration with @p cores cores preserving every Table I
     * ratio (cache sizes per core, LLC blocks = llcBlocksPerN * N,
     * banks = cores).
     */
    static SystemConfig scaled(unsigned cores);
};

} // namespace tinydir

#endif // TINYDIR_COMMON_CONFIG_HH
