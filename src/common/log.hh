/**
 * @file
 * gem5-flavoured status and error reporting helpers.
 *
 * panic() is for internal invariant violations (library bugs): logs
 * the message and throws InternalError.
 * fatal() is for unusable user configuration: logs and throws
 * ConfigError.
 * Neither kills the process: the parallel experiment runner catches
 * per-job errors so one broken cell cannot take a whole bench grid
 * down (common/sim_error.hh). An error that reaches main() uncaught
 * still terminates, with the message already on stderr.
 * warn()/inform() report conditions without stopping the simulation.
 */

#ifndef TINYDIR_COMMON_LOG_HH
#define TINYDIR_COMMON_LOG_HH

#include <sstream>
#include <string>

namespace tinydir
{

namespace log_detail
{

/** Render a printf-like format lazily built from streamed arguments. */
template <typename... Args>
std::string
concat(Args &&...args)
{
    std::ostringstream os;
    (os << ... << args);
    return os.str();
}

[[noreturn]] void panicImpl(const char *file, int line,
                            const std::string &msg);
[[noreturn]] void fatalImpl(const char *file, int line,
                            const std::string &msg);
void warnImpl(const std::string &msg);
void informImpl(const std::string &msg);

} // namespace log_detail

/** Throw InternalError on an internal invariant violation (a bug). */
#define panic(...) \
    ::tinydir::log_detail::panicImpl(__FILE__, __LINE__, \
        ::tinydir::log_detail::concat(__VA_ARGS__))

/** Throw ConfigError on an unrecoverable user/configuration error. */
#define fatal(...) \
    ::tinydir::log_detail::fatalImpl(__FILE__, __LINE__, \
        ::tinydir::log_detail::concat(__VA_ARGS__))

/** Report a suspicious but survivable condition. */
#define warn(...) \
    ::tinydir::log_detail::warnImpl(::tinydir::log_detail::concat(__VA_ARGS__))

/** Report normal operating status. */
#define inform(...) \
    ::tinydir::log_detail::informImpl( \
        ::tinydir::log_detail::concat(__VA_ARGS__))

/** panic() unless the stated invariant holds. */
#define panic_if(cond, ...) \
    do { \
        if (cond) { \
            panic("assertion failure: ", #cond, ": ", \
                  ::tinydir::log_detail::concat(__VA_ARGS__)); \
        } \
    } while (0)

/** fatal() unless the stated configuration requirement holds. */
#define fatal_if(cond, ...) \
    do { \
        if (cond) { \
            fatal("configuration error: ", #cond, ": ", \
                  ::tinydir::log_detail::concat(__VA_ARGS__)); \
        } \
    } while (0)

} // namespace tinydir

#endif // TINYDIR_COMMON_LOG_HH
