/**
 * @file
 * Exception hierarchy for recoverable simulation errors.
 *
 * Library code must never kill the process: a tracker bug or a bad
 * per-job configuration inside a 17-workload bench grid would take
 * every other cell down with it. panic() and fatal() therefore throw
 * these types, and the layers that own a recovery boundary (the
 * parallel runner's per-job worker, bench main()s, gtest) catch them:
 *
 *   SimError                 base; carries the formatted message
 *   +-- InternalError        invariant violation in library code (panic)
 *   +-- ConfigError          unusable user configuration (fatal)
 *   +-- InvariantViolation   coherence invariant broken (verify/);
 *   |                        carries the block and the JSON dump path
 *   +-- SimTimeout           per-job wall-clock watchdog expired
 *   +-- CheckpointError      unreadable/incompatible checkpoint (ckpt/)
 *   +-- SimInterrupt         cooperative SIGINT/SIGTERM stop request
 */

#ifndef TINYDIR_COMMON_SIM_ERROR_HH
#define TINYDIR_COMMON_SIM_ERROR_HH

#include <stdexcept>
#include <string>
#include <utility>

#include "common/types.hh"

namespace tinydir
{

/** Base of every recoverable simulation error. */
class SimError : public std::runtime_error
{
  public:
    explicit SimError(const std::string &msg) : std::runtime_error(msg) {}
};

/** An internal invariant violation (a library bug); thrown by panic(). */
class InternalError : public SimError
{
  public:
    using SimError::SimError;
};

/** An unusable user/bench configuration; thrown by fatal(). */
class ConfigError : public SimError
{
  public:
    using SimError::SimError;
};

/**
 * A coherence invariant failed at runtime (verify/verifier.hh). The
 * violating block and the path of the JSON state dump (empty when
 * dumping was disabled) ride along for failure reports.
 */
class InvariantViolation : public SimError
{
  public:
    InvariantViolation(const std::string &msg, Addr blk,
                       std::string dump)
        : SimError(msg), block(blk), dumpPath(std::move(dump))
    {
    }

    Addr block = invalidAddr;
    std::string dumpPath;
};

/** The per-job wall-clock watchdog expired (sim/driver.hh). */
class SimTimeout : public SimError
{
  public:
    SimTimeout(const std::string &msg, double limit)
        : SimError(msg), limitSeconds(limit)
    {
    }

    double limitSeconds = 0.0;
};

/**
 * A checkpoint file could not be read, failed validation (bad magic,
 * version, or config hash), or the run it describes is incompatible
 * with the requested restore (ckpt/).
 */
class CheckpointError : public SimError
{
  public:
    using SimError::SimError;
};

/**
 * The process received SIGINT/SIGTERM and the driver stopped the run
 * cooperatively (after flushing a final checkpoint when one was
 * requested). The grid layers treat this like any other failed cell
 * so partial results still reach the TINYDIR_JSON flush.
 */
class SimInterrupt : public SimError
{
  public:
    using SimError::SimError;
};

} // namespace tinydir

#endif // TINYDIR_COMMON_SIM_ERROR_HH
