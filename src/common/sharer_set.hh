/**
 * @file
 * Fixed-width sharer bitvector.
 *
 * Every directory organization in the paper uses a full-map bitvector
 * per tracking entry (Section I-A); this type provides that bitvector
 * for up to maxCores cores with cheap set algebra.
 */

#ifndef TINYDIR_COMMON_SHARER_SET_HH
#define TINYDIR_COMMON_SHARER_SET_HH

#include <array>
#include <bit>
#include <cstdint>

#include "common/log.hh"
#include "common/types.hh"

namespace tinydir
{

/** Full-map sharer bitvector for up to maxCores cores. */
class SharerSet
{
  public:
    SharerSet() : words{} {}

    /** Construct a singleton set. */
    static SharerSet
    single(CoreId c)
    {
        SharerSet s;
        s.add(c);
        return s;
    }

    void
    add(CoreId c)
    {
        panic_if(c >= maxCores, "sharer id out of range: ", c);
        words[c >> 6] |= 1ull << (c & 63);
    }

    void
    remove(CoreId c)
    {
        panic_if(c >= maxCores, "sharer id out of range: ", c);
        words[c >> 6] &= ~(1ull << (c & 63));
    }

    bool
    contains(CoreId c) const
    {
        panic_if(c >= maxCores, "sharer id out of range: ", c);
        return (words[c >> 6] >> (c & 63)) & 1;
    }

    void clear() { words = {}; }

    bool
    empty() const
    {
        std::uint64_t acc = 0;
        for (std::uint64_t w : words)
            acc |= w;
        return acc == 0;
    }

    unsigned
    count() const
    {
        unsigned n = 0;
        for (std::uint64_t w : words)
            n += static_cast<unsigned>(std::popcount(w));
        return n;
    }

    /**
     * The lowest-numbered sharer, or invalidCore if empty. Used to
     * elect a forwarding sharer for three-hop reads (Section III-B).
     */
    CoreId
    first() const
    {
        for (unsigned w = 0; w < kWords; ++w) {
            if (words[w])
                return static_cast<CoreId>(
                    w * 64 + std::countr_zero(words[w]));
        }
        return invalidCore;
    }

    /**
     * Elect the sharer closest to @p seed in id space (wrapping),
     * approximating proximity-based election on the mesh.
     */
    CoreId
    electNear(CoreId seed, unsigned num_cores) const
    {
        if (empty())
            return invalidCore;
        for (unsigned d = 0; d < num_cores; ++d) {
            CoreId up = static_cast<CoreId>((seed + d) % num_cores);
            if (contains(up))
                return up;
            CoreId down =
                static_cast<CoreId>((seed + num_cores - d) % num_cores);
            if (contains(down))
                return down;
        }
        return invalidCore;
    }

    /** Visit every member in ascending order. */
    template <typename F>
    void
    forEach(F &&f) const
    {
        for (unsigned w = 0; w < kWords; ++w) {
            std::uint64_t bits = words[w];
            while (bits) {
                unsigned b = static_cast<unsigned>(std::countr_zero(bits));
                f(static_cast<CoreId>(w * 64 + b));
                bits &= bits - 1;
            }
        }
    }

    bool
    operator==(const SharerSet &o) const
    {
        return words == o.words;
    }

    /** Serialize the bitvector (ckpt::Writer-shaped sink). */
    template <typename W>
    void
    saveState(W &w) const
    {
        for (std::uint64_t word : words)
            w.u64(word);
    }

    /** Restore a bitvector written by saveState. */
    template <typename R>
    void
    loadState(R &r)
    {
        for (std::uint64_t &word : words)
            word = r.u64();
    }

  private:
    static constexpr unsigned kWords = (maxCores + 63) / 64;
    std::array<std::uint64_t, kWords> words;
};

} // namespace tinydir

#endif // TINYDIR_COMMON_SHARER_SET_HH
