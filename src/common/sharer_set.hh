/**
 * @file
 * Fixed-width sharer bitvector.
 *
 * Every directory organization in the paper uses a full-map bitvector
 * per tracking entry (Section I-A); this type provides that bitvector
 * for up to maxCores (128) cores with cheap set algebra.
 */

#ifndef TINYDIR_COMMON_SHARER_SET_HH
#define TINYDIR_COMMON_SHARER_SET_HH

#include <array>
#include <bit>
#include <cstdint>

#include "common/log.hh"
#include "common/types.hh"

namespace tinydir
{

/** Full-map sharer bitvector for up to maxCores cores. */
class SharerSet
{
  public:
    SharerSet() : words{0, 0} {}

    /** Construct a singleton set. */
    static SharerSet
    single(CoreId c)
    {
        SharerSet s;
        s.add(c);
        return s;
    }

    void
    add(CoreId c)
    {
        panic_if(c >= maxCores, "sharer id out of range: ", c);
        words[c >> 6] |= 1ull << (c & 63);
    }

    void
    remove(CoreId c)
    {
        panic_if(c >= maxCores, "sharer id out of range: ", c);
        words[c >> 6] &= ~(1ull << (c & 63));
    }

    bool
    contains(CoreId c) const
    {
        panic_if(c >= maxCores, "sharer id out of range: ", c);
        return (words[c >> 6] >> (c & 63)) & 1;
    }

    void clear() { words = {0, 0}; }

    bool empty() const { return (words[0] | words[1]) == 0; }

    unsigned
    count() const
    {
        return static_cast<unsigned>(std::popcount(words[0]) +
                                     std::popcount(words[1]));
    }

    /**
     * The lowest-numbered sharer, or invalidCore if empty. Used to
     * elect a forwarding sharer for three-hop reads (Section III-B).
     */
    CoreId
    first() const
    {
        if (words[0])
            return static_cast<CoreId>(std::countr_zero(words[0]));
        if (words[1])
            return static_cast<CoreId>(64 + std::countr_zero(words[1]));
        return invalidCore;
    }

    /**
     * Elect the sharer closest to @p seed in id space (wrapping),
     * approximating proximity-based election on the mesh.
     */
    CoreId
    electNear(CoreId seed, unsigned num_cores) const
    {
        if (empty())
            return invalidCore;
        for (unsigned d = 0; d < num_cores; ++d) {
            CoreId up = static_cast<CoreId>((seed + d) % num_cores);
            if (contains(up))
                return up;
            CoreId down =
                static_cast<CoreId>((seed + num_cores - d) % num_cores);
            if (contains(down))
                return down;
        }
        return invalidCore;
    }

    /** Visit every member in ascending order. */
    template <typename F>
    void
    forEach(F &&f) const
    {
        for (unsigned w = 0; w < 2; ++w) {
            std::uint64_t bits = words[w];
            while (bits) {
                unsigned b = static_cast<unsigned>(std::countr_zero(bits));
                f(static_cast<CoreId>(w * 64 + b));
                bits &= bits - 1;
            }
        }
    }

    bool
    operator==(const SharerSet &o) const
    {
        return words == o.words;
    }

    /** Serialize the bitvector (ckpt::Writer-shaped sink). */
    template <typename W>
    void
    saveState(W &w) const
    {
        w.u64(words[0]);
        w.u64(words[1]);
    }

    /** Restore a bitvector written by saveState. */
    template <typename R>
    void
    loadState(R &r)
    {
        words[0] = r.u64();
        words[1] = r.u64();
    }

  private:
    std::array<std::uint64_t, 2> words;
};

} // namespace tinydir

#endif // TINYDIR_COMMON_SHARER_SET_HH
