#include "cache/llc.hh"

#include "common/bitops.hh"
#include "common/log.hh"
#include "ckpt/io.hh"

namespace tinydir
{

void
ResidencyHistograms::noteDeath(const ResidencyStats &rs)
{
    ++blocksAllocated;
    if (rs.maxSharers >= 2) {
        ++blocksShared;
        unsigned bin;
        if (rs.maxSharers <= 4)
            bin = 0;
        else if (rs.maxSharers <= 8)
            bin = 1;
        else if (rs.maxSharers <= 16)
            bin = 2;
        else
            bin = 3;
        sharerBins.sample(bin);
    }
    if (rs.lengthened > 0)
        ++blocksLengthened;
    const Counter total =
        static_cast<Counter>(rs.straReads) + rs.otherAccesses;
    if (total > 0 && rs.straReads > 0) {
        const double ratio =
            static_cast<double>(rs.straReads) / static_cast<double>(total);
        const unsigned cat = straCategory(ratio);
        straBlocks.sample(cat);
        straAccesses.sample(cat, rs.straReads);
    }
}

Llc::Llc(const SystemConfig &cfg)
    : banks_(cfg.llcBanks()), sets(cfg.llcSetsPerBank()),
      ways(cfg.llcAssoc)
{
    panic_if(ways > 64, "LLC associativity > 64 (pinned mask width)");
    // Sampled no-spill sets: spillSampledSets per bank, evenly
    // spread. Degenerate tiny LLCs (tests) sample at most every other
    // set so spilling stays possible.
    sampleStride = static_cast<unsigned>(
        std::max<std::uint64_t>(2, sets / cfg.spillSampledSets));
    arrays.reserve(banks_);
    for (unsigned b = 0; b < banks_; ++b)
        arrays.emplace_back(sets, ways, ReplPolicy::Lru, cfg.seed + b);
    bankFree.assign(banks_, 0);
}

// The set scans below run over the array's contiguous tag lane: one
// 64-bit compare per way (invalid ways hold a sentinel no block can
// equal), with the 56-byte payload touched only for the at most two
// ways whose tag matches (data + spill share a tag and differ in
// meta). An LLC set's payload spans ~14 cache lines; its tag lane
// spans two.

// TDLINT: hot
LlcEntry *
Llc::findData(Loc loc, Addr block)
{
    auto &arr = arrays[loc.bank];
    const Addr *lane = arr.laneBase(loc.set);
    LlcEntry *base = arr.setBase(loc.set);
    for (unsigned w = 0; w < ways; ++w) {
        if (lane[w] == block && base[w].meta != LlcMeta::Spill)
            return &base[w];
    }
    return nullptr;
}

LlcEntry *
Llc::findSpill(Loc loc, Addr block)
{
    auto &arr = arrays[loc.bank];
    const Addr *lane = arr.laneBase(loc.set);
    LlcEntry *base = arr.setBase(loc.set);
    for (unsigned w = 0; w < ways; ++w) {
        if (lane[w] == block && base[w].meta == LlcMeta::Spill)
            return &base[w];
    }
    return nullptr;
}

// TDLINT: hot
Llc::Pair
Llc::findBoth(Loc loc, Addr block)
{
    auto &arr = arrays[loc.bank];
    const Addr *lane = arr.laneBase(loc.set);
    LlcEntry *base = arr.setBase(loc.set);
    Pair p;
    for (unsigned w = 0; w < ways; ++w) {
        if (lane[w] != block)
            continue;
        if (base[w].meta == LlcMeta::Spill)
            p.spill = &base[w];
        else
            p.data = &base[w];
    }
    return p;
}

void
Llc::touchData(Loc loc, Addr block)
{
    auto &arr = arrays[loc.bank];
    const Addr *lane = arr.laneBase(loc.set);
    const LlcEntry *base = arr.setBase(loc.set);
    for (unsigned w = 0; w < ways; ++w) {
        if (lane[w] == block && base[w].meta != LlcMeta::Spill) {
            arr.touch(loc.set, w);
            return;
        }
    }
}

void
Llc::touchSpill(Loc loc, Addr block)
{
    auto &arr = arrays[loc.bank];
    const Addr *lane = arr.laneBase(loc.set);
    const LlcEntry *base = arr.setBase(loc.set);
    for (unsigned w = 0; w < ways; ++w) {
        if (lane[w] == block && base[w].meta == LlcMeta::Spill) {
            arr.touch(loc.set, w);
            return;
        }
    }
}

void
Llc::touchEntry(Loc loc, const LlcEntry *e)
{
    auto &arr = arrays[loc.bank];
    const unsigned w = static_cast<unsigned>(e - arr.setBase(loc.set));
    panic_if(w >= ways, "touchEntry pointer outside its set");
    arr.touch(loc.set, w);
}

// TDLINT: hot
Llc::AllocResult
Llc::allocate(Loc loc, Addr block)
{
    auto &arr = arrays[loc.bank];
    // Pin any way already holding this tag (the companion entry).
    std::uint64_t pinned = 0;
    const Addr *lane = arr.laneBase(loc.set);
    for (unsigned w = 0; w < ways; ++w) {
        if (lane[w] == block)
            pinned |= 1ull << w;
    }
    const unsigned w = arr.victimWay(loc.set, pinned);
    AllocResult res{nullptr, std::nullopt};
    const LlcEntry &old = arr.way(loc.set, w);
    if (old.valid)
        res.victim = old;
    res.slot = &arr.install(loc.set, w, block);
    arr.touch(loc.set, w);
    return res;
}

void
Llc::freeSpill(Loc loc, Addr block)
{
    auto &arr = arrays[loc.bank];
    const Addr *lane = arr.laneBase(loc.set);
    const LlcEntry *base = arr.setBase(loc.set);
    for (unsigned w = 0; w < ways; ++w) {
        if (lane[w] == block && base[w].meta == LlcMeta::Spill) {
            arr.clearWay(loc.set, w);
            arr.demote(loc.set, w);
            return;
        }
    }
}

void
Llc::freeData(Loc loc, Addr block)
{
    auto &arr = arrays[loc.bank];
    const Addr *lane = arr.laneBase(loc.set);
    LlcEntry *base = arr.setBase(loc.set);
    for (unsigned w = 0; w < ways; ++w) {
        if (lane[w] == block && base[w].meta != LlcMeta::Spill) {
            noteDeath(base[w]);
            arr.clearWay(loc.set, w);
            arr.demote(loc.set, w);
            return;
        }
    }
}

void
Llc::noteDeath(const LlcEntry &e)
{
    if (e.valid && e.meta != LlcMeta::Spill) {
        // The histograms aggregate across banks, so deaths processed
        // by concurrent shard engines must serialize here (serial runs
        // have no mutex installed and pay only the branch).
        if (statsMu) {
            std::lock_guard<std::mutex> g(*statsMu);
            hist.noteDeath(e.stats);
        } else {
            hist.noteDeath(e.stats);
        }
    }
}

void
Llc::flushResidency()
{
    for (unsigned b = 0; b < banks_; ++b) {
        for (std::uint64_t s = 0; s < sets; ++s) {
            for (unsigned w = 0; w < ways; ++w) {
                const LlcEntry &e = arrays[b].way(s, w);
                noteDeath(e);
            }
        }
    }
}

void
Llc::resetStats()
{
    hist.reset();
    cohDataWrites.reset();
    for (unsigned b = 0; b < banks_; ++b) {
        for (std::uint64_t s = 0; s < sets; ++s) {
            for (unsigned w = 0; w < ways; ++w)
                arrays[b].way(s, w).stats = ResidencyStats{};
        }
    }
}

bool
Llc::isSampledSet(Addr block) const
{
    return setOf(block) % sampleStride == 0;
}

namespace
{

void
saveLlcEntry(ckpt::Writer &w, const LlcEntry &e)
{
    w.u64(e.tag);
    w.b(e.valid);
    w.b(e.dirty);
    w.u8(static_cast<std::uint8_t>(e.meta));
    w.u16(e.owner);
    e.sharers.saveState(w);
    w.u8(e.strac);
    w.u8(e.oac);
    w.u32(e.stats.maxSharers);
    w.u32(e.stats.straReads);
    w.u32(e.stats.otherAccesses);
    w.u32(e.stats.lengthened);
    w.u32(e.stats.lengthenedCode);
}

void
loadLlcEntry(ckpt::Reader &r, LlcEntry &e)
{
    e.tag = r.u64();
    e.valid = r.b();
    e.dirty = r.b();
    const std::uint8_t meta = r.u8();
    if (meta > static_cast<std::uint8_t>(LlcMeta::Spill))
        throw CheckpointError("checkpoint corrupt: LLC meta-state " +
                              std::to_string(meta));
    e.meta = static_cast<LlcMeta>(meta);
    e.owner = r.u16();
    e.sharers.loadState(r);
    e.strac = r.u8();
    e.oac = r.u8();
    e.stats.maxSharers = r.u32();
    e.stats.straReads = r.u32();
    e.stats.otherAccesses = r.u32();
    e.stats.lengthened = r.u32();
    e.stats.lengthenedCode = r.u32();
}

} // namespace

void
Llc::saveState(ckpt::Writer &w) const
{
    for (const auto &arr : arrays)
        arr.saveState(w, saveLlcEntry);
    for (Cycle c : bankFree)
        w.u64(c);
    w.u64(hist.blocksAllocated);
    hist.sharerBins.saveState(w);
    w.u64(hist.blocksShared);
    w.u64(hist.blocksLengthened);
    hist.straBlocks.saveState(w);
    hist.straAccesses.saveState(w);
    cohDataWrites.saveState(w);
}

void
Llc::loadState(ckpt::Reader &r)
{
    for (auto &arr : arrays)
        arr.loadState(r, loadLlcEntry);
    for (auto &c : bankFree)
        c = r.u64();
    hist.blocksAllocated = r.u64();
    hist.sharerBins.loadState(r);
    hist.blocksShared = r.u64();
    hist.blocksLengthened = r.u64();
    hist.straBlocks.loadState(r);
    hist.straAccesses.loadState(r);
    cohDataWrites.loadState(r);
}

} // namespace tinydir
