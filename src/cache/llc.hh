/**
 * @file
 * Shared banked last-level cache.
 *
 * Beyond a plain non-inclusive LLC (Table I: 128 banks, 16-way, LRU),
 * this LLC carries the meta-states the paper's mechanisms need:
 *
 *  - CorruptExcl / CorruptShared: the block's data way holds the
 *    in-LLC coherence encoding of Section III (V=0, D=1); the LLC
 *    cannot supply data for this tag.
 *  - Spill: the way holds a spilled coherence tracking entry E_B for a
 *    block B resident in the same set (Section IV-B1).
 *
 * Per-residency measurement counters (max sharers, STRA reads,
 * lengthened accesses) live in each entry and are flushed to the
 * system histograms on eviction, feeding Figs. 2 and 6-9.
 */

#ifndef TINYDIR_CACHE_LLC_HH
#define TINYDIR_CACHE_LLC_HH

#include <mutex>
#include <optional>
#include <vector>

#include "common/config.hh"
#include "common/sharer_set.hh"
#include "common/stats.hh"
#include "common/types.hh"
#include "mem/cache_array.hh"
#include "proto/mesi.hh"

namespace tinydir
{

namespace ckpt
{
class Writer;
class Reader;
} // namespace ckpt

/** Meta-state of an LLC way (paper Tables III/IV). */
enum class LlcMeta : std::uint8_t
{
    Normal,        //!< plain data block (V=1)
    CorruptExcl,   //!< V=0,D=1; b2=1: exclusively owned, data corrupt
    CorruptShared, //!< V=0,D=1; b2=0: shared, data corrupt
    Spill,         //!< spilled tracking entry E_B (V=0,D=1 + same tag)
};

/**
 * Per-LLC-residency measurement counters (not policy state). 32-bit
 * on purpose: they count events within one residency of one block
 * (far below 2^32 even at paper scale), and they sit inside every
 * LlcEntry, where slimmer entries directly shorten the per-access
 * set scans.
 */
struct ResidencyStats
{
    std::uint32_t maxSharers = 0;
    std::uint32_t straReads = 0;      //!< reads finding the block shared
    std::uint32_t otherAccesses = 0;  //!< other non-writeback accesses
    std::uint32_t lengthened = 0;     //!< reads actually served three-hop
    std::uint32_t lengthenedCode = 0; //!< subset that were ifetches
};

/** One LLC way. */
struct LlcEntry
{
    Addr tag = 0;       //!< block number
    bool valid = false; //!< way in use (any meta-state)
    bool dirty = false; //!< data dirty (Normal only)
    LlcMeta meta = LlcMeta::Normal;

    // Tracking payload, meaningful for Corrupt*/Spill ways.
    CoreId owner = invalidCore;
    SharerSet sharers;
    /** 6-bit saturating STRAC / OAC policy counters (Section IV-A). */
    std::uint8_t strac = 0;
    std::uint8_t oac = 0;

    ResidencyStats stats;

    bool isData() const { return valid && meta != LlcMeta::Spill; }
    bool
    isCorrupt() const
    {
        return valid && (meta == LlcMeta::CorruptExcl ||
                         meta == LlcMeta::CorruptShared);
    }
};

/**
 * Aggregated end-of-run residency histograms (Figs. 2, 7, 8, 9 raw
 * material). Flushed into by the LLC whenever a data entry dies.
 */
struct ResidencyHistograms
{
    Counter blocksAllocated = 0;
    /** blocks by max sharer count bin: [2,4],[5,8],[9,16],[17,128]. */
    Histogram sharerBins{4};
    Counter blocksShared = 0;     //!< max sharers >= 2
    Counter blocksLengthened = 0; //!< suffered >=1 three-hop read
    /** blocks with non-zero STRA ratio, by category C1..C7 (idx 1..7). */
    Histogram straBlocks{numStraCategories};
    /** three-hop (would-be) reads by block category. */
    Histogram straAccesses{numStraCategories};

    void noteDeath(const ResidencyStats &rs);

    void
    reset()
    {
        blocksAllocated = 0;
        blocksShared = 0;
        blocksLengthened = 0;
        sharerBins.reset();
        straBlocks.reset();
        straAccesses.reset();
    }
};

/** The shared banked last-level cache. */
class Llc
{
  public:
    explicit Llc(const SystemConfig &cfg);

    unsigned numBanks() const { return banks_; }
    std::uint64_t setsPerBank() const { return sets; }
    unsigned assoc() const { return ways; }

    /** Home bank of a block. */
    unsigned bankOf(Addr block) const
    {
        return static_cast<unsigned>(block % banks_);
    }

    /** Set index of a block within its bank. */
    std::uint64_t setOf(Addr block) const
    {
        return (block / banks_) & (sets - 1);
    }

    /**
     * Decomposed LLC address of a block: computed once per access and
     * passed down so bank/set are not re-derived (div/mod) on every
     * lookup the transaction makes.
     */
    struct Loc
    {
        unsigned bank;
        std::uint64_t set;
    };

    Loc locate(Addr block) const { return {bankOf(block), setOf(block)}; }

    /** Hint an upcoming lookup: pull the set's tag lane into cache. */
    void
    prefetchSet(Loc loc) const
    {
        arrays[loc.bank].prefetchSet(loc.set);
    }

    /** Find the data entry (Normal or Corrupt*) for a block. */
    LlcEntry *findData(Addr block) { return findData(locate(block), block); }
    LlcEntry *findData(Loc loc, Addr block);

    /** Find the spilled tracking entry for a block, if any. */
    LlcEntry *findSpill(Addr block) { return findSpill(locate(block), block); }
    LlcEntry *findSpill(Loc loc, Addr block);

    /** Data and spill entries of a block in one set scan. */
    struct Pair
    {
        LlcEntry *data = nullptr;
        LlcEntry *spill = nullptr;
    };
    Pair findBoth(Loc loc, Addr block);

    /**
     * Promote to MRU. When the block also has a spilled entry the
     * paper's ordering rule applies: E_B first, then B, so that E_B is
     * always older than B and gets victimized first.
     */
    void touchData(Addr block) { touchData(locate(block), block); }
    void touchSpill(Addr block) { touchSpill(locate(block), block); }
    void touchData(Loc loc, Addr block);
    void touchSpill(Loc loc, Addr block);

    /**
     * Promote an entry already located (e.g. by findBoth) to MRU; the
     * way index comes from pointer arithmetic instead of rescanning
     * the set.
     */
    void touchEntry(Loc loc, const LlcEntry *e);

    /**
     * Allocate a way for a (data or spill) entry of @p block.
     * Never victimizes a way whose tag equals @p block (the companion
     * entry). The evicted entry, if any, is returned for the caller
     * (engine/tracker) to handle. The new way comes back with
     * tag/valid installed (rest of the payload reset); the caller
     * fills meta/dirty/tracking state.
     */
    struct AllocResult
    {
        LlcEntry *slot;
        std::optional<LlcEntry> victim;
    };
    AllocResult allocate(Addr block) { return allocate(locate(block), block); }
    AllocResult allocate(Loc loc, Addr block);

    /** Remove the spill entry of @p block (after state transfer). */
    void freeSpill(Addr block) { freeSpill(locate(block), block); }
    void freeSpill(Loc loc, Addr block);

    /** Remove the data entry of @p block, flushing residency stats. */
    void freeData(Addr block) { freeData(locate(block), block); }
    void freeData(Loc loc, Addr block);

    /** Flush residency stats of a dying/reset entry into the histograms. */
    void noteDeath(const LlcEntry &e);

    /** Flush stats of every live data entry (end of simulation). */
    void flushResidency();

    /**
     * Reset measurement state after a warmup phase: clears the
     * histograms, the per-entry residency counters of live blocks,
     * and the coherence-write counter. Cache contents are untouched.
     */
    void resetStats();

    /** Per-bank service queue; engine uses this for queueing delay. */
    Cycle bankFreeAt(unsigned bank) const { return bankFree[bank]; }
    void setBankFreeAt(unsigned bank, Cycle c) { bankFree[bank] = c; }

    ResidencyHistograms &residency() { return hist; }
    const ResidencyHistograms &residency() const { return hist; }

    /** Count of data-array writes for coherence-state updates. */
    Scalar cohDataWrites;

    /**
     * Count one coherence-state data write. Trackers call this instead
     * of touching cohDataWrites directly: the counter is shared across
     * banks, so concurrent shard engines need the stats mutex even
     * though each only writes blocks of its own banks.
     */
    void
    noteCohDataWrite()
    {
        if (statsMu) {
            std::lock_guard<std::mutex> g(*statsMu);
            ++cohDataWrites;
        } else {
            ++cohDataWrites;
        }
    }

    /**
     * Serialize cross-bank measurement state (residency histograms and
     * cohDataWrites) for parallel shards; nullptr (default) = serial,
     * no locking. Policy state needs no lock: each shard engine only
     * touches ways of its own banks.
     */
    void setStatsMutex(std::mutex *mu) { statsMu = mu; }

    /** Whether @p block maps to a sampled no-spill set (Section IV-B2). */
    bool isSampledSet(Addr block) const;
    bool isSampledSet(Loc loc) const { return loc.set % sampleStride == 0; }

    /**
     * Serialize arrays (every way's full payload incl. meta-states and
     * replacement order), bank queues, residency histograms and the
     * coherence-write counter (ckpt/).
     */
    void saveState(ckpt::Writer &w) const;

    /** Restore state written by saveState under an identical config. */
    void loadState(ckpt::Reader &r);

    /** Visit every valid way (any meta-state). */
    template <typename F>
    void
    forEachEntry(F &&f)
    {
        for (unsigned b = 0; b < banks_; ++b) {
            for (std::uint64_t s = 0; s < sets; ++s) {
                for (unsigned w = 0; w < ways; ++w) {
                    LlcEntry &e = arrays[b].way(s, w);
                    if (e.valid)
                        f(e);
                }
            }
        }
    }

    /** Visit every valid way without mutating (read-only callers). */
    template <typename F>
    void
    forEachEntry(F &&f) const
    {
        for (unsigned b = 0; b < banks_; ++b) {
            for (std::uint64_t s = 0; s < sets; ++s) {
                for (unsigned w = 0; w < ways; ++w) {
                    const LlcEntry &e = arrays[b].way(s, w);
                    if (e.valid)
                        f(e);
                }
            }
        }
    }

  private:
    unsigned banks_;
    std::uint64_t sets;
    unsigned ways;
    unsigned sampleStride;
    std::vector<CacheArray<LlcEntry>> arrays;
    std::vector<Cycle> bankFree;
    ResidencyHistograms hist;
    std::mutex *statsMu = nullptr;
};

} // namespace tinydir

#endif // TINYDIR_CACHE_LLC_HH
