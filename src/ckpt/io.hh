/**
 * @file
 * Binary checkpoint stream primitives.
 *
 * Writer/Reader serialize fixed-width little-endian scalars over
 * std::ostream/std::istream. The encoding is deliberately dumb —
 * explicit byte order, explicit widths, doubles bit-cast through
 * uint64 — so checkpoint bytes are identical across hosts and a
 * mismatch between save and load code shows up as a hard
 * CheckpointError (short read / bad section tag) instead of silent
 * state corruption. Every component's saveState/loadState member is
 * written against these two types (or any type with the same u8..str
 * surface, which is what the template members on Rng/CacheArray/...
 * bind to).
 */

#ifndef TINYDIR_CKPT_IO_HH
#define TINYDIR_CKPT_IO_HH

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <istream>
#include <ostream>
#include <string>

#include "common/sim_error.hh"

namespace tinydir
{
namespace ckpt
{

/** Little-endian scalar writer over a std::ostream. */
class Writer
{
  public:
    explicit Writer(std::ostream &os) : out(os) {}

    void u8(std::uint8_t v) { putBytes(&v, 1); }

    void
    u16(std::uint16_t v)
    {
        std::uint8_t b[2] = {static_cast<std::uint8_t>(v),
                             static_cast<std::uint8_t>(v >> 8)};
        putBytes(b, 2);
    }

    void
    u32(std::uint32_t v)
    {
        std::uint8_t b[4];
        for (unsigned i = 0; i < 4; ++i)
            b[i] = static_cast<std::uint8_t>(v >> (8 * i));
        putBytes(b, 4);
    }

    void
    u64(std::uint64_t v)
    {
        std::uint8_t b[8];
        for (unsigned i = 0; i < 8; ++i)
            b[i] = static_cast<std::uint8_t>(v >> (8 * i));
        putBytes(b, 8);
    }

    void b(bool v) { u8(v ? 1 : 0); }

    void
    d(double v)
    {
        std::uint64_t bits;
        std::memcpy(&bits, &v, sizeof(bits));
        u64(bits);
    }

    /** Length-prefixed byte string. */
    void
    str(const std::string &s)
    {
        u64(s.size());
        if (!s.empty())
            putBytes(reinterpret_cast<const std::uint8_t *>(s.data()),
                     s.size());
    }

    /** Flush and report whether every write reached the stream. */
    bool
    good()
    {
        out.flush();
        return static_cast<bool>(out);
    }

  private:
    void
    putBytes(const std::uint8_t *p, std::size_t n)
    {
        out.write(reinterpret_cast<const char *>(p),
                  static_cast<std::streamsize>(n));
        if (!out)
            throw CheckpointError("checkpoint write failed (stream "
                                  "error / disk full?)");
    }

    std::ostream &out;
};

/** Little-endian scalar reader; throws CheckpointError on short read. */
class Reader
{
  public:
    explicit Reader(std::istream &is) : in(is) {}

    std::uint8_t
    u8()
    {
        std::uint8_t v;
        getBytes(&v, 1);
        return v;
    }

    std::uint16_t
    u16()
    {
        std::uint8_t b[2];
        getBytes(b, 2);
        return static_cast<std::uint16_t>(b[0] | (b[1] << 8));
    }

    std::uint32_t
    u32()
    {
        std::uint8_t b[4];
        getBytes(b, 4);
        std::uint32_t v = 0;
        for (unsigned i = 0; i < 4; ++i)
            v |= static_cast<std::uint32_t>(b[i]) << (8 * i);
        return v;
    }

    std::uint64_t
    u64()
    {
        std::uint8_t b[8];
        getBytes(b, 8);
        std::uint64_t v = 0;
        for (unsigned i = 0; i < 8; ++i)
            v |= static_cast<std::uint64_t>(b[i]) << (8 * i);
        return v;
    }

    bool
    b()
    {
        const std::uint8_t v = u8();
        if (v > 1)
            throw CheckpointError("checkpoint corrupt: bool byte is " +
                                  std::to_string(v));
        return v != 0;
    }

    double
    d()
    {
        const std::uint64_t bits = u64();
        double v;
        std::memcpy(&v, &bits, sizeof(v));
        return v;
    }

    std::string
    str()
    {
        const std::uint64_t n = u64();
        if (n > maxStringBytes)
            throw CheckpointError(
                "checkpoint corrupt: string length " + std::to_string(n) +
                " exceeds sanity cap");
        std::string s(static_cast<std::size_t>(n), '\0');
        if (n)
            getBytes(reinterpret_cast<std::uint8_t *>(s.data()),
                     static_cast<std::size_t>(n));
        return s;
    }

    /** Skip @p n payload bytes (e.g. an incompatible section). */
    void
    skip(std::uint64_t n)
    {
        in.ignore(static_cast<std::streamsize>(n));
        if (in.gcount() != static_cast<std::streamsize>(n))
            throw CheckpointError("checkpoint truncated: could not skip " +
                                  std::to_string(n) + " bytes");
        consumedBytes += n;
    }

    /**
     * Bytes consumed so far (reads + skips). Section loaders compare
     * deltas of this against the recorded section length, so a
     * save/load mismatch is caught at the section that caused it.
     */
    std::uint64_t consumed() const { return consumedBytes; }

  private:
    /** Anything longer than this in a str() field is corruption. */
    static constexpr std::uint64_t maxStringBytes = 1ull << 20;

    void
    getBytes(std::uint8_t *p, std::size_t n)
    {
        in.read(reinterpret_cast<char *>(p),
                static_cast<std::streamsize>(n));
        if (in.gcount() != static_cast<std::streamsize>(n))
            throw CheckpointError(
                "checkpoint truncated: wanted " + std::to_string(n) +
                " more bytes");
        consumedBytes += n;
    }

    std::istream &in;
    std::uint64_t consumedBytes = 0;
};

} // namespace ckpt
} // namespace tinydir

#endif // TINYDIR_CKPT_IO_HH
