/**
 * @file
 * Versioned binary checkpoint/restore of a full simulation run.
 *
 * A checkpoint captures everything needed to continue a run with
 * bit-identical results: the System (caches, DRAM, engine, per-core
 * counters), the tracker, the driver's replay position and the
 * per-core stream generator states. The file starts with a
 * magic/version/config-hash header; restoring under a different
 * configuration raises CheckpointError instead of corrupting state.
 *
 * Layout (all little-endian, via ckpt::Writer):
 *
 *   header:  u32 magic "TDCP" | u32 version | u64 fullConfigHash |
 *            u64 warmupConfigHash | u32 numCores | u64 accessesDone |
 *            str profileName
 *   then tagged sections, each  u32 tag | u64 payloadBytes | payload:
 *     "SYS " System::saveState
 *     "TRK " tracker saveState (skippable: warmup fast-forward loads
 *            under a different tracker config skip it by length and
 *            warm-reconstruct the tracker from the private caches)
 *     "DRV " DriverProgress::saveState
 *     "STR " per-core AccessStream::saveState
 *     "END " empty terminator
 *
 * Version policy: any change to a section's byte layout bumps
 * `version`; old files are refused (no migration shims — checkpoints
 * are working files, not archives).
 *
 * The warmup hash covers every configuration field EXCEPT the
 * tracker-only ones, so one end-of-warmup snapshot per workload can
 * seed every tracking scheme of a grid cell (sim/parallel.cc).
 */

#ifndef TINYDIR_CKPT_CKPT_HH
#define TINYDIR_CKPT_CKPT_HH

#include <istream>
#include <memory>
#include <ostream>
#include <string>
#include <vector>

#include "common/config.hh"
#include "common/types.hh"
#include "core/trace.hh"
#include "sim/driver.hh"
#include "sim/system.hh"

namespace tinydir
{
namespace ckpt
{

/** File magic: "TDCP" read as a little-endian u32. */
constexpr std::uint32_t fileMagic = 0x50434454;

/** Current checkpoint format version (2: 512-core sharer vectors). */
constexpr std::uint32_t fileVersion = 2;

// -- cooperative interruption ---------------------------------------------

/**
 * Install SIGINT/SIGTERM handlers that set the interrupt flag polled
 * by Driver::run (which then flushes a final checkpoint and throws
 * SimInterrupt). Idempotent; async-signal-safe handler.
 */
void installSignalHandlers();

/** Has an interrupt been requested (signal or requestInterrupt)? */
bool interruptRequested();

/** Clear the interrupt flag (start of a new run / tests). */
void clearInterrupt();

/** Set the interrupt flag programmatically (tests). */
void requestInterrupt();

// -- configuration hashing -------------------------------------------------

/** FNV-1a hash over every SystemConfig field (order-stable). */
std::uint64_t configSignature(const SystemConfig &cfg);

/**
 * @p cfg with every tracker-only field reset to its default, i.e. the
 * configuration the shared warmup snapshot of a grid cell is taken
 * under. Cache/NoC/DRAM/workload fields are untouched.
 */
SystemConfig warmupNormalized(const SystemConfig &cfg);

/** configSignature of warmupNormalized(@p cfg). */
std::uint64_t warmupSignature(const SystemConfig &cfg);

// -- save / load -----------------------------------------------------------

/** Write a full checkpoint of (@p sys, @p streams, @p progress). */
void saveRun(std::ostream &os, const System &sys,
             const std::vector<std::unique_ptr<AccessStream>> &streams,
             const DriverProgress &progress, const std::string &profile);

/**
 * saveRun into @p path via a temporary file renamed into place, so a
 * crash mid-write never leaves a truncated checkpoint at @p path.
 */
void saveRunFile(const std::string &path, const System &sys,
                 const std::vector<std::unique_ptr<AccessStream>> &streams,
                 const DriverProgress &progress,
                 const std::string &profile);

/** What loadRun restored. */
struct LoadResult
{
    DriverProgress progress;
    std::string profile;     //!< profile name recorded at save time
    Counter accessesDone = 0;
    /** Full config hash matched: the restore is bit-exact. */
    bool exact = false;
};

/**
 * Restore @p sys and @p streams from a checkpoint.
 *
 * Strict mode (@p allow_warmup_fallback false): the full config hash
 * must match or CheckpointError is thrown. With the fallback enabled,
 * a checkpoint whose warmup hash matches is accepted for a config
 * that differs only in tracker fields: the tracker section is
 * skipped, the tracker is warm-reconstructed from the restored
 * private caches (untrackable blocks are back-invalidated), and the
 * measurement counters are reset — the warmup fast-forward path.
 */
LoadResult loadRun(std::istream &is, System &sys,
                   std::vector<std::unique_ptr<AccessStream>> &streams,
                   bool allow_warmup_fallback = false);

/** loadRun from @p path; CheckpointError when the file is unreadable. */
LoadResult loadRunFile(const std::string &path, System &sys,
                       std::vector<std::unique_ptr<AccessStream>> &streams,
                       bool allow_warmup_fallback = false);

} // namespace ckpt
} // namespace tinydir

#endif // TINYDIR_CKPT_CKPT_HH
