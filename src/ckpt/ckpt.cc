#include "ckpt/ckpt.hh"

#include <algorithm>
#include <atomic>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

#include "ckpt/io.hh"
#include "common/sharer_set.hh"
#include "proto/mesi.hh"

namespace tinydir
{
namespace ckpt
{

namespace
{

// -- interrupt flag --------------------------------------------------------

std::atomic<bool> interruptFlag{false};

void
onSignal(int)
{
    // Lock-free store: the only async-signal-safe thing we do. The
    // driver polls the flag and performs the actual checkpoint flush
    // from normal context.
    interruptFlag.store(true, std::memory_order_relaxed);
}

// -- config hashing --------------------------------------------------------

/** Incremental FNV-1a over explicitly widened field encodings. */
struct Fnv
{
    std::uint64_t h = 14695981039346656037ull;

    void
    byte(std::uint8_t b)
    {
        h ^= b;
        h *= 1099511628211ull;
    }

    void
    u64(std::uint64_t v)
    {
        for (unsigned i = 0; i < 8; ++i)
            byte(static_cast<std::uint8_t>(v >> (8 * i)));
    }

    void
    d(double v)
    {
        std::uint64_t bits;
        static_assert(sizeof(bits) == sizeof(v));
        std::memcpy(&bits, &v, sizeof(bits));
        u64(bits);
    }
};

// -- section framing -------------------------------------------------------

constexpr std::uint32_t
tagOf(char a, char b, char c, char d)
{
    return static_cast<std::uint32_t>(static_cast<unsigned char>(a)) |
           static_cast<std::uint32_t>(static_cast<unsigned char>(b)) << 8 |
           static_cast<std::uint32_t>(static_cast<unsigned char>(c)) << 16 |
           static_cast<std::uint32_t>(static_cast<unsigned char>(d)) << 24;
}

constexpr std::uint32_t tagSys = tagOf('S', 'Y', 'S', ' ');
constexpr std::uint32_t tagTrk = tagOf('T', 'R', 'K', ' ');
constexpr std::uint32_t tagDrv = tagOf('D', 'R', 'V', ' ');
constexpr std::uint32_t tagStr = tagOf('S', 'T', 'R', ' ');
constexpr std::uint32_t tagEnd = tagOf('E', 'N', 'D', ' ');

/**
 * Buffer a section's payload to learn its byte length, then emit
 * tag + length + payload. The length is what lets an incompatible
 * tracker section be skipped on warmup fast-forward restores.
 */
template <typename Fill>
void
emitSection(Writer &w, std::ostream &os, std::uint32_t tag, Fill &&fill)
{
    std::ostringstream buf;
    Writer bw(buf);
    fill(bw);
    const std::string payload = buf.str();
    w.u32(tag);
    w.u64(payload.size());
    os.write(payload.data(),
             static_cast<std::streamsize>(payload.size()));
    if (!os)
        throw CheckpointError("checkpoint write failed (stream error / "
                              "disk full?)");
}

/** Read a section head; the tag must match or the file is corrupt. */
std::uint64_t
expectSection(Reader &r, std::uint32_t tag, const char *name)
{
    const std::uint32_t got = r.u32();
    if (got != tag)
        throw CheckpointError(
            std::string("checkpoint corrupt: expected section '") + name +
            "', found tag 0x" + [&] {
                std::ostringstream os;
                os << std::hex << got;
                return os.str();
            }());
    return r.u64();
}

/** A section loader must consume exactly the recorded length. */
void
checkSectionLen(const Reader &r, std::uint64_t before, std::uint64_t len,
                const char *name)
{
    const std::uint64_t used = r.consumed() - before;
    if (used != len)
        throw CheckpointError(
            std::string("checkpoint corrupt: section '") + name +
            "' declared " + std::to_string(len) + " bytes but load used " +
            std::to_string(used));
}

// -- warm tracker reconstruction -------------------------------------------

/** Current ground-truth tracking state of @p block in the privates. */
TrackState
groundTruth(const System &sys, Addr block)
{
    SharerSet sharers;
    for (CoreId c = 0; c < sys.cfg.numCores; ++c) {
        const MesiState st = sys.privs[c].state(block);
        if (st == MesiState::E || st == MesiState::M)
            return TrackState::makeExclusive(c);
        if (st == MesiState::S)
            sharers.add(c);
    }
    if (sharers.count() > 0)
        return TrackState::makeShared(sharers);
    return {};
}

/**
 * Rebuild a freshly constructed tracker's state from the restored
 * private caches (the warmup fast-forward path: the snapshot's
 * tracker section belongs to a different tracker configuration).
 * Blocks the scheme cannot track (e.g. no LLC tag under tag-inclusive
 * schemes) are back-invalidated, exactly as a cold tracker would have
 * refused them; registration may itself evict earlier victims, so the
 * ground truth is re-derived per block rather than precomputed.
 */
void
warmReconstructTracker(System &sys)
{
    std::vector<Addr> blocks;
    for (const auto &p : sys.privs)
        p.forEachBlock(
            [&](Addr b, MesiState) { blocks.push_back(b); });
    std::sort(blocks.begin(), blocks.end());
    blocks.erase(std::unique(blocks.begin(), blocks.end()),
                 blocks.end());
    for (Addr b : blocks) {
        const TrackState ts = groundTruth(sys, b);
        if (ts.invalid())
            continue; // evicted as a victim of an earlier registration
        if (!sys.tracker->warmRegister(b, ts, sys.engine))
            sys.engine.backInvalidate(b, ts);
    }
}

} // namespace

// -- cooperative interruption ---------------------------------------------

void
installSignalHandlers()
{
    struct sigaction sa = {};
    sa.sa_handler = onSignal;
    sigemptyset(&sa.sa_mask);
    sa.sa_flags = 0;
    sigaction(SIGINT, &sa, nullptr);
    sigaction(SIGTERM, &sa, nullptr);
}

bool
interruptRequested()
{
    return interruptFlag.load(std::memory_order_relaxed);
}

void
clearInterrupt()
{
    interruptFlag.store(false, std::memory_order_relaxed);
}

void
requestInterrupt()
{
    interruptFlag.store(true, std::memory_order_relaxed);
}

// -- configuration hashing -------------------------------------------------

std::uint64_t
configSignature(const SystemConfig &cfg)
{
    Fnv f;
    f.u64(cfg.numCores);
    f.u64(cfg.l1Bytes);
    f.u64(cfg.l1Assoc);
    f.u64(cfg.l1Latency);
    f.u64(cfg.l2Bytes);
    f.u64(cfg.l2Assoc);
    f.u64(cfg.l2Latency);
    f.u64(cfg.llcAssoc);
    f.u64(cfg.llcTagLatency);
    f.u64(cfg.llcDataLatency);
    f.d(cfg.llcBlocksPerN);
    f.u64(cfg.hopCycles);
    f.u64(cfg.memChannels);
    f.u64(cfg.memBanksPerChannel);
    f.u64(cfg.dramCas);
    f.u64(cfg.dramRcd);
    f.u64(cfg.dramRp);
    f.u64(cfg.dramBurst);
    f.u64(cfg.dramRowBytes);
    f.u64(static_cast<std::uint64_t>(cfg.tracker));
    f.d(cfg.dirSizeFactor);
    f.u64(cfg.dirAssoc);
    f.u64(cfg.dirSkewed ? 1 : 0);
    f.u64(static_cast<std::uint64_t>(cfg.tinyPolicy));
    f.u64(cfg.tinySpill ? 1 : 0);
    f.u64(cfg.sharerGrain);
    f.u64(cfg.straCounterBits);
    f.u64(cfg.gnruQuantumCycles);
    f.u64(cfg.gnruTimerBits);
    f.u64(cfg.spillSampledSets);
    f.u64(cfg.spillWindowAccesses);
    f.u64(cfg.mgdRegionBytes);
    f.u64(cfg.seed);
    f.u64(cfg.nackRetryCycles);
    return f.h;
}

SystemConfig
warmupNormalized(const SystemConfig &cfg)
{
    const SystemConfig defaults;
    SystemConfig norm = cfg;
    norm.tracker = defaults.tracker;
    norm.dirSizeFactor = defaults.dirSizeFactor;
    norm.dirAssoc = defaults.dirAssoc;
    norm.dirSkewed = defaults.dirSkewed;
    norm.tinyPolicy = defaults.tinyPolicy;
    norm.tinySpill = defaults.tinySpill;
    norm.sharerGrain = defaults.sharerGrain;
    norm.straCounterBits = defaults.straCounterBits;
    norm.gnruQuantumCycles = defaults.gnruQuantumCycles;
    norm.gnruTimerBits = defaults.gnruTimerBits;
    norm.spillSampledSets = defaults.spillSampledSets;
    norm.spillWindowAccesses = defaults.spillWindowAccesses;
    norm.mgdRegionBytes = defaults.mgdRegionBytes;
    return norm;
}

std::uint64_t
warmupSignature(const SystemConfig &cfg)
{
    return configSignature(warmupNormalized(cfg));
}

// -- save / load -----------------------------------------------------------

void
saveRun(std::ostream &os, const System &sys,
        const std::vector<std::unique_ptr<AccessStream>> &streams,
        const DriverProgress &progress, const std::string &profile)
{
    if (streams.size() != sys.cfg.numCores)
        throw CheckpointError("cannot checkpoint: stream count " +
                              std::to_string(streams.size()) +
                              " != core count " +
                              std::to_string(sys.cfg.numCores));
    Writer w(os);
    w.u32(fileMagic);
    w.u32(fileVersion);
    w.u64(configSignature(sys.cfg));
    w.u64(warmupSignature(sys.cfg));
    w.u32(sys.cfg.numCores);
    w.u64(progress.accesses);
    w.str(profile);
    emitSection(w, os, tagSys,
                [&](Writer &bw) { sys.saveState(bw); });
    emitSection(w, os, tagTrk,
                [&](Writer &bw) { sys.tracker->saveState(bw); });
    emitSection(w, os, tagDrv,
                [&](Writer &bw) { progress.saveState(bw); });
    emitSection(w, os, tagStr, [&](Writer &bw) {
        for (const auto &s : streams)
            s->saveState(bw);
    });
    emitSection(w, os, tagEnd, [](Writer &) {});
    if (!w.good())
        throw CheckpointError("checkpoint write failed (stream error / "
                              "disk full?)");
}

void
saveRunFile(const std::string &path, const System &sys,
            const std::vector<std::unique_ptr<AccessStream>> &streams,
            const DriverProgress &progress, const std::string &profile)
{
    const std::string tmp = path + ".tmp";
    {
        std::ofstream os(tmp, std::ios::binary | std::ios::trunc);
        if (!os)
            throw CheckpointError("cannot create checkpoint file: " +
                                  tmp);
        saveRun(os, sys, streams, progress, profile);
    }
    if (std::rename(tmp.c_str(), path.c_str()) != 0) {
        std::remove(tmp.c_str());
        throw CheckpointError("cannot move checkpoint into place: " +
                              path);
    }
}

LoadResult
loadRun(std::istream &is, System &sys,
        std::vector<std::unique_ptr<AccessStream>> &streams,
        bool allow_warmup_fallback)
{
    Reader r(is);
    const std::uint32_t m = r.u32();
    if (m != fileMagic)
        throw CheckpointError("not a checkpoint file (bad magic)");
    const std::uint32_t v = r.u32();
    if (v != fileVersion)
        throw CheckpointError(
            "unsupported checkpoint version " + std::to_string(v) +
            " (this build reads version " + std::to_string(fileVersion) +
            ")");
    const std::uint64_t full_hash = r.u64();
    const std::uint64_t warmup_hash = r.u64();
    const std::uint32_t num_cores = r.u32();

    LoadResult out;
    out.accessesDone = r.u64();
    out.profile = r.str();
    if (num_cores != sys.cfg.numCores)
        throw CheckpointError(
            "checkpoint was taken with " + std::to_string(num_cores) +
            " cores, this system has " +
            std::to_string(sys.cfg.numCores));
    out.exact = full_hash == configSignature(sys.cfg);
    if (!out.exact) {
        if (!allow_warmup_fallback)
            throw CheckpointError(
                "checkpoint configuration hash mismatch (refusing "
                "restore; pass the identical config, or use the warmup "
                "fast-forward path for tracker-only differences)");
        if (warmup_hash != warmupSignature(sys.cfg))
            throw CheckpointError(
                "checkpoint warmup hash mismatch: the snapshot differs "
                "in more than tracker configuration");
    }
    if (streams.size() != num_cores)
        throw CheckpointError("stream count " +
                              std::to_string(streams.size()) +
                              " != checkpoint core count " +
                              std::to_string(num_cores));

    std::uint64_t len = expectSection(r, tagSys, "SYS");
    std::uint64_t before = r.consumed();
    sys.loadState(r);
    checkSectionLen(r, before, len, "SYS");

    len = expectSection(r, tagTrk, "TRK");
    if (out.exact) {
        before = r.consumed();
        sys.tracker->loadState(r);
        checkSectionLen(r, before, len, "TRK");
    } else {
        r.skip(len);
    }

    len = expectSection(r, tagDrv, "DRV");
    before = r.consumed();
    out.progress.loadState(r);
    checkSectionLen(r, before, len, "DRV");
    if (out.progress.issues.size() != num_cores)
        throw CheckpointError(
            "checkpoint corrupt: driver progress covers " +
            std::to_string(out.progress.issues.size()) + " cores");

    len = expectSection(r, tagStr, "STR");
    before = r.consumed();
    for (auto &s : streams)
        s->loadState(r);
    checkSectionLen(r, before, len, "STR");

    len = expectSection(r, tagEnd, "END");
    if (len != 0)
        throw CheckpointError(
            "checkpoint corrupt: END section carries payload");

    if (!out.exact) {
        warmReconstructTracker(sys);
        // The snapshot sits at the warmup boundary; restart the
        // measured region so reconstruction noise is not counted.
        sys.resetStats();
    }
    return out;
}

LoadResult
loadRunFile(const std::string &path, System &sys,
            std::vector<std::unique_ptr<AccessStream>> &streams,
            bool allow_warmup_fallback)
{
    std::ifstream is(path, std::ios::binary);
    if (!is)
        throw CheckpointError("cannot open checkpoint file: " + path);
    return loadRun(is, sys, streams, allow_warmup_fallback);
}

} // namespace ckpt
} // namespace tinydir
