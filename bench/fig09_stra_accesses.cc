/**
 * @file
 * Fig. 9: distribution of the offending (three-hop shared read) LLC
 * accesses across the STRA category of the accessed block, under
 * in-LLC tracking.
 */

#include <iostream>

#include "bench_util.hh"

using namespace tinydir;
using namespace tinydir::bench;

int
main(int argc, char **argv)
{
    BenchScale scale = parseBenchScale(argc, argv);
    SystemConfig illc = baseConfig(scale);
    illc.tracker = TrackerKind::InLlc;
    ResultTable table(
        "Fig. 9: % of offending LLC accesses per block category",
        {"C1", "C2", "C3", "C4", "C5", "C6", "C7"});
    for (const auto *app : selectApps(scale)) {
        RunOut o = runOne(illc, *app, scale.accessesPerCore, scale.warmupPerCore);
        double total = 0;
        for (unsigned c = 1; c <= 7; ++c) {
            total += o.stats.get("stra.accesses.c" +
                                 std::to_string(c));
        }
        total = std::max(1.0, total);
        std::vector<double> row;
        for (unsigned c = 1; c <= 7; ++c) {
            row.push_back(100.0 *
                          o.stats.get("stra.accesses.c" +
                                      std::to_string(c)) / total);
        }
        table.addRow(app->name, std::move(row));
    }
    table.print(std::cout, 2);
    return 0;
}
