/**
 * @file
 * Fig. 6: percentage of LLC accesses whose critical path lengthens to
 * three hops under in-LLC tracking, split into data and code reads.
 */

#include <iostream>

#include "bench_util.hh"

using namespace tinydir;
using namespace tinydir::bench;

int
main(int argc, char **argv)
{
    BenchScale scale = parseBenchScale(argc, argv);
    SystemConfig illc = baseConfig(scale);
    illc.tracker = TrackerKind::InLlc;
    ResultTable table(
        "Fig. 6: % of LLC accesses with lengthened critical path",
        {"data %", "code %", "total %"});
    for (const auto *app : selectApps(scale)) {
        RunOut o = runOne(illc, *app, scale.accessesPerCore, scale.warmupPerCore);
        const double acc = std::max(1.0, o.stats.get("llc.accesses"));
        const double code = o.stats.get("lengthened.code");
        const double all = o.stats.get("lengthened.reads");
        table.addRow(app->name,
                     {100.0 * (all - code) / acc, 100.0 * code / acc,
                      100.0 * all / acc});
    }
    table.print(std::cout, 2);
    return 0;
}
