/**
 * @file
 * Fig. 6: percentage of LLC accesses whose critical path lengthens to
 * three hops under in-LLC tracking, split into data and code reads.
 */

#include <iostream>

#include "bench_util.hh"

using namespace tinydir;
using namespace tinydir::bench;

int
main(int argc, char **argv)
{
    const auto t0 = std::chrono::steady_clock::now();
    BenchScale scale = parseBenchScale(argc, argv);
    SystemConfig illc = baseConfig(scale);
    illc.tracker = TrackerKind::InLlc;
    ResultTable table(
        "Fig. 6: % of LLC accesses with lengthened critical path",
        {"data %", "code %", "total %"});
    const auto apps = selectApps(scale);
    const auto grid = runGrid({illc}, scale);
    for (std::size_t a = 0; a < apps.size(); ++a) {
        const RunOut &o = grid[a][0].out;
        const double acc = std::max(1.0, o.stats.get("llc.accesses"));
        const double code = o.stats.get("lengthened.code");
        const double all = o.stats.get("lengthened.reads");
        table.addRow(apps[a]->name,
                     {100.0 * (all - code) / acc, 100.0 * code / acc,
                      100.0 * all / acc});
    }
    recordGridResults(table, scale, grid, t0);
    table.print(std::cout, 2);
    return 0;
}
