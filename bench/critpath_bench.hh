/**
 * @file
 * Shared driver for Figs. 14/15: percentage of LLC accesses that
 * still suffer a lengthened critical path under a tiny directory of a
 * given size, per policy.
 */

#ifndef TINYDIR_BENCH_CRITPATH_BENCH_HH
#define TINYDIR_BENCH_CRITPATH_BENCH_HH

#include <iostream>

#include "bench_util.hh"

namespace tinydir::bench
{

inline int
runCritpathFigure(int argc, char **argv, const char *figure,
                  double factor)
{
    BenchScale scale = parseBenchScale(argc, argv);
    std::vector<Scheme> schemes{
        {"DSTRA", tinyCfg(scale, factor, TinyPolicy::Dstra, false)},
        {"DSTRA+gNRU",
         tinyCfg(scale, factor, TinyPolicy::DstraGnru, false)},
        {"+DynSpill",
         tinyCfg(scale, factor, TinyPolicy::DstraGnru, true)},
    };
    auto metric = [](const RunOut &o) {
        return 100.0 * o.stats.get("lengthened.frac");
    };
    auto table = runMatrix(
        std::string(figure) +
            ": % LLC accesses with lengthened critical path, tiny " +
            sizeLabel(factor),
        scale, nullptr, schemes, metric);
    table.print(std::cout, 2);
    return 0;
}

} // namespace tinydir::bench

#endif // TINYDIR_BENCH_CRITPATH_BENCH_HH
