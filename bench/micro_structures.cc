/**
 * @file
 * google-benchmark microbenchmarks of the core data structures:
 * lookup/insert throughput of the cache arrays, the skew array, the
 * sharer set, the STRA category computation, and whole-transaction
 * throughput of the engine under each tracker. These bound the
 * simulator's own speed and double as ablation probes for the
 * structure choices in DESIGN.md Section 5.
 */

#include <benchmark/benchmark.h>

#include "common/rng.hh"
#include "common/sharer_set.hh"
#include "mem/cache_array.hh"
#include "mem/skew_array.hh"
#include "proto/mesi.hh"
#include "sim/system.hh"

using namespace tinydir;

namespace
{

struct Entry
{
    Addr tag = 0;
    bool valid = false;
};

void
BM_CacheArrayLookup(benchmark::State &state)
{
    const unsigned assoc = static_cast<unsigned>(state.range(0));
    CacheArray<Entry> arr(256, assoc, ReplPolicy::Lru);
    Rng rng(1);
    for (unsigned i = 0; i < 256 * assoc; ++i) {
        const std::uint64_t set = rng.below(256);
        const unsigned w = arr.victimWay(set);
        arr.way(set, w) = {rng.below(1 << 20), true};
    }
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            arr.find(rng.below(256), rng.below(1 << 20)));
    }
}
BENCHMARK(BM_CacheArrayLookup)->Arg(4)->Arg(8)->Arg(16);

void
BM_SkewArrayInsert(benchmark::State &state)
{
    SkewArray<Entry> arr(256, 4);
    Rng rng(2);
    for (auto _ : state) {
        auto ir = arr.insert(rng.below(1 << 22));
        ir.slot->tag = 1;
        ir.slot->valid = true;
        benchmark::DoNotOptimize(ir.slot);
    }
}
BENCHMARK(BM_SkewArrayInsert);

void
BM_SharerSetOps(benchmark::State &state)
{
    SharerSet s;
    Rng rng(3);
    for (auto _ : state) {
        const CoreId c = static_cast<CoreId>(rng.below(128));
        s.add(c);
        benchmark::DoNotOptimize(s.count());
        benchmark::DoNotOptimize(s.electNear(c, 128));
        s.remove(c);
    }
}
BENCHMARK(BM_SharerSetOps);

void
BM_StraCategory(benchmark::State &state)
{
    Rng rng(4);
    for (auto _ : state)
        benchmark::DoNotOptimize(straCategory(rng.uniform()));
}
BENCHMARK(BM_StraCategory);

void
BM_EngineTransaction(benchmark::State &state)
{
    SystemConfig cfg = SystemConfig::scaled(16);
    cfg.tracker = static_cast<TrackerKind>(state.range(0));
    cfg.dirSizeFactor =
        cfg.tracker == TrackerKind::SparseDir ? 2.0 : 1.0 / 32;
    if (cfg.tracker == TrackerKind::Mgd) {
        cfg.dirSkewed = true;
        cfg.dirAssoc = 4;
    }
    if (cfg.tracker == TrackerKind::TinyDir)
        cfg.tinySpill = true;
    System sys(cfg);
    Rng rng(5);
    for (auto _ : state) {
        const CoreId c = static_cast<CoreId>(rng.below(16));
        TraceAccess a;
        a.gap = 4;
        a.type = rng.chance(0.3) ? AccessType::Store : AccessType::Load;
        a.addr = rng.below(4096) << blockShift;
        const Cycle issue = sys.cores[c].clock + a.gap;
        sys.cores[c].clock = sys.executeAccess(c, a, issue);
    }
}
BENCHMARK(BM_EngineTransaction)
    ->Arg(static_cast<int>(TrackerKind::SparseDir))
    ->Arg(static_cast<int>(TrackerKind::InLlc))
    ->Arg(static_cast<int>(TrackerKind::TinyDir))
    ->Arg(static_cast<int>(TrackerKind::Mgd))
    ->Arg(static_cast<int>(TrackerKind::Stash));

} // namespace

BENCHMARK_MAIN();
