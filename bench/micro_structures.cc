/**
 * @file
 * google-benchmark microbenchmarks of the core data structures:
 * lookup/insert throughput of the cache arrays, the skew array, the
 * hot-path FlatMap/InlineVec (vs their std counterparts), the sharer
 * set, the STRA category computation, and whole-transaction
 * throughput of the engine under each tracker. These bound the
 * simulator's own speed and double as ablation probes for the
 * structure choices in DESIGN.md Section 5.
 *
 * Besides the google-benchmark console table, setting TINYDIR_JSON
 * appends one machine-readable record (benchmark name -> ns/op) to
 * that file through the same appendJsonResults writer the figure
 * benches use.
 */

#include <benchmark/benchmark.h>

#include <chrono>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "sim/experiment.hh"

#include "common/flat_map.hh"
#include "common/inline_vec.hh"
#include "common/rng.hh"
#include "common/sharer_set.hh"
#include "common/time_wheel.hh"
#include "mem/cache_array.hh"
#include "mem/skew_array.hh"
#include "proto/mesi.hh"
#include "sim/system.hh"

using namespace tinydir;

namespace
{

struct Entry
{
    Addr tag = 0;
    bool valid = false;
};

void
BM_CacheArrayLookup(benchmark::State &state)
{
    const unsigned assoc = static_cast<unsigned>(state.range(0));
    CacheArray<Entry> arr(256, assoc, ReplPolicy::Lru);
    Rng rng(1);
    for (unsigned i = 0; i < 256 * assoc; ++i) {
        const std::uint64_t set = rng.below(256);
        const unsigned w = arr.victimWay(set);
        arr.install(set, w, rng.below(1 << 20));
    }
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            arr.find(rng.below(256), rng.below(1 << 20)));
    }
}
BENCHMARK(BM_CacheArrayLookup)->Arg(4)->Arg(8)->Arg(16);

void
BM_SkewArrayInsert(benchmark::State &state)
{
    SkewArray<Entry> arr(256, 4);
    Rng rng(2);
    for (auto _ : state) {
        auto ir = arr.insert(rng.below(1 << 22));
        benchmark::DoNotOptimize(ir.slot);
    }
}
BENCHMARK(BM_SkewArrayInsert);

/**
 * Bucketed time wheel vs FlatMap on the busyUntil expiry pattern:
 * insert a block with a deadline a short latency ahead, then drain
 * everything due at the advancing clock. The FlatMap variant models
 * the old periodic linear prune (scan all keys, erase expired).
 */
void
BM_TimeWheelBusyChurn(benchmark::State &state)
{
    TimeWheel<Addr> wheel;
    wheel.reserve(1u << 12);
    Rng rng(9);
    Cycle now = 0;
    for (auto _ : state) {
        now += 2;
        wheel.insert(now + 40 + rng.below(64), rng.below(1u << 16));
        wheel.advance(now, [](Cycle, Addr p) {
            benchmark::DoNotOptimize(p);
        });
    }
}
BENCHMARK(BM_TimeWheelBusyChurn);

void
BM_FlatMapBusyPrune(benchmark::State &state)
{
    FlatMap<Cycle> m;
    m.reserve(1u << 12);
    Rng rng(9);
    Cycle now = 0;
    std::size_t next_prune = 64;
    for (auto _ : state) {
        now += 2;
        m[rng.below(1u << 16)] = now + 40 + rng.below(64);
        if (m.size() >= next_prune) {
            // The old engine idiom: full scan, erase expired entries.
            m.eraseIf([&](Addr, Cycle until) { return until <= now; });
            next_prune = std::max<std::size_t>(64, 2 * m.size());
        }
    }
    benchmark::DoNotOptimize(m.size());
}
BENCHMARK(BM_FlatMapBusyPrune);

/**
 * SoA tag-lane victim scan vs an AoS reference replicating the
 * pre-SoA layout (tag + valid + payload per element, strided scan).
 */
struct AosRefEntry
{
    Addr tag = 0;
    bool valid = false;
    std::uint64_t stamp = 0;
    std::uint8_t pad[40] = {}; // LlcEntry-sized payload stride
};

void
BM_VictimScanAos(benchmark::State &state)
{
    const unsigned assoc = static_cast<unsigned>(state.range(0));
    std::vector<AosRefEntry> arr(256 * assoc);
    Rng rng(10);
    for (unsigned i = 0; i < 256 * assoc; ++i) {
        arr[i].tag = rng.below(1 << 20);
        arr[i].valid = true;
        arr[i].stamp = rng.below(1 << 16);
    }
    for (auto _ : state) {
        const std::uint64_t set = rng.below(256);
        const AosRefEntry *base = &arr[set * assoc];
        unsigned best = 0;
        std::uint64_t best_stamp = ~0ull;
        for (unsigned w = 0; w < assoc; ++w) {
            if (!base[w].valid)
                continue;
            if (base[w].stamp < best_stamp) {
                best_stamp = base[w].stamp;
                best = w;
            }
        }
        benchmark::DoNotOptimize(best);
    }
}
BENCHMARK(BM_VictimScanAos)->Arg(16);

void
BM_VictimScanSoa(benchmark::State &state)
{
    const unsigned assoc = static_cast<unsigned>(state.range(0));
    CacheArray<Entry> arr(256, assoc, ReplPolicy::Lru);
    Rng rng(10);
    for (unsigned i = 0; i < 256 * assoc; ++i) {
        const std::uint64_t set = rng.below(256);
        const unsigned w = arr.victimWay(set);
        arr.install(set, w, rng.below(1 << 20));
        arr.touch(set, w);
    }
    for (auto _ : state)
        benchmark::DoNotOptimize(arr.victimWay(rng.below(256)));
}
BENCHMARK(BM_VictimScanSoa)->Arg(16);

/**
 * FlatMap vs std::unordered_map on the busyUntil/PrivateCache::info
 * access pattern: lookup-heavy with steady insert/erase churn.
 */
void
BM_FlatMapChurn(benchmark::State &state)
{
    FlatMap<std::uint32_t> m;
    m.reserve(1u << 12);
    Rng rng(7);
    for (auto _ : state) {
        const Addr k = rng.below(1u << 12);
        if (rng.chance(0.25))
            m[k] = 1;
        else if (rng.chance(0.1))
            m.erase(k);
        else
            benchmark::DoNotOptimize(m.find(k));
    }
}
BENCHMARK(BM_FlatMapChurn);

void
BM_UnorderedMapChurn(benchmark::State &state)
{
    std::unordered_map<Addr, std::uint32_t> m;
    m.reserve(1u << 12);
    Rng rng(7);
    for (auto _ : state) {
        const Addr k = rng.below(1u << 12);
        if (rng.chance(0.25))
            m[k] = 1;
        else if (rng.chance(0.1))
            m.erase(k);
        else
            benchmark::DoNotOptimize(m.count(k));
    }
}
BENCHMARK(BM_UnorderedMapChurn);

/**
 * InlineVec vs a freshly heap-allocated std::vector as the eviction
 * notice scratch buffer: the per-access cost the zero-allocation
 * access path removed.
 */
void
BM_InlineVecScratch(benchmark::State &state)
{
    Rng rng(8);
    InlineVec<std::uint64_t, 4> v;
    for (auto _ : state) {
        v.clear();
        v.push_back(rng.below(1u << 20));
        if (rng.chance(0.3))
            v.push_back(1);
        benchmark::DoNotOptimize(v.size());
    }
}
BENCHMARK(BM_InlineVecScratch);

void
BM_HeapVectorScratch(benchmark::State &state)
{
    Rng rng(8);
    for (auto _ : state) {
        std::vector<std::uint64_t> v;
        v.push_back(rng.below(1u << 20));
        if (rng.chance(0.3))
            v.push_back(1);
        benchmark::DoNotOptimize(v.size());
    }
}
BENCHMARK(BM_HeapVectorScratch);

void
BM_SharerSetOps(benchmark::State &state)
{
    SharerSet s;
    Rng rng(3);
    for (auto _ : state) {
        const CoreId c = static_cast<CoreId>(rng.below(128));
        s.add(c);
        benchmark::DoNotOptimize(s.count());
        benchmark::DoNotOptimize(s.electNear(c, 128));
        s.remove(c);
    }
}
BENCHMARK(BM_SharerSetOps);

void
BM_StraCategory(benchmark::State &state)
{
    Rng rng(4);
    for (auto _ : state)
        benchmark::DoNotOptimize(straCategory(rng.uniform()));
}
BENCHMARK(BM_StraCategory);

void
BM_EngineTransaction(benchmark::State &state)
{
    SystemConfig cfg = SystemConfig::scaled(16);
    cfg.tracker = static_cast<TrackerKind>(state.range(0));
    cfg.dirSizeFactor =
        cfg.tracker == TrackerKind::SparseDir ? 2.0 : 1.0 / 32;
    if (cfg.tracker == TrackerKind::Mgd) {
        cfg.dirSkewed = true;
        cfg.dirAssoc = 4;
    }
    if (cfg.tracker == TrackerKind::TinyDir)
        cfg.tinySpill = true;
    System sys(cfg);
    Rng rng(5);
    for (auto _ : state) {
        const CoreId c = static_cast<CoreId>(rng.below(16));
        TraceAccess a;
        a.gap = 4;
        a.type = rng.chance(0.3) ? AccessType::Store : AccessType::Load;
        a.addr = rng.below(4096) << blockShift;
        const Cycle issue = sys.cores[c].clock + a.gap;
        sys.cores[c].clock = sys.executeAccess(c, a, issue);
    }
}
BENCHMARK(BM_EngineTransaction)
    ->Arg(static_cast<int>(TrackerKind::SparseDir))
    ->Arg(static_cast<int>(TrackerKind::InLlc))
    ->Arg(static_cast<int>(TrackerKind::TinyDir))
    ->Arg(static_cast<int>(TrackerKind::Mgd))
    ->Arg(static_cast<int>(TrackerKind::Stash));

/**
 * Console reporter that also collects (name, ns/op) rows so the run
 * can be appended to the TINYDIR_JSON dump.
 */
class CollectingReporter : public benchmark::ConsoleReporter
{
  public:
    std::vector<std::pair<std::string, double>> collected;

    void
    ReportRuns(const std::vector<Run> &reports) override
    {
        for (const Run &r : reports) {
            if (!r.error_occurred) {
                collected.emplace_back(r.benchmark_name(),
                                       r.GetAdjustedRealTime());
            }
        }
        ConsoleReporter::ReportRuns(reports);
    }
};

} // namespace

int
main(int argc, char **argv)
{
    benchmark::Initialize(&argc, argv);
    if (benchmark::ReportUnrecognizedArguments(argc, argv))
        return 1;
    const auto t0 = std::chrono::steady_clock::now();
    CollectingReporter reporter;
    benchmark::RunSpecifiedBenchmarks(&reporter);
    const std::string path = jsonResultsPath();
    if (!path.empty()) {
        ResultTable table("micro_structures: data-structure ns/op",
                          {"ns_per_op"});
        for (const auto &[name, ns] : reporter.collected)
            table.addRow(name, {ns});
        BenchScale scale;
        BenchTiming timing;
        timing.wallSeconds = std::chrono::duration<double>(
                                 std::chrono::steady_clock::now() - t0)
                                 .count();
        timing.simsRun =
            static_cast<unsigned>(reporter.collected.size());
        appendJsonResults(path, table, scale, timing);
    }
    return 0;
}
