/**
 * @file
 * Shared helpers for the figure-regeneration bench binaries.
 *
 * Every bench accepts --full (paper scale: 128 cores), --quick,
 * --cores=N, --accesses=N and --app=NAME, via
 * tinydir::parseBenchScale. Default scale keeps all Table I ratios at
 * 16 cores so the suite completes in minutes (DESIGN.md Section 4).
 */

#ifndef TINYDIR_BENCH_BENCH_UTIL_HH
#define TINYDIR_BENCH_BENCH_UTIL_HH

#include <functional>
#include <iostream>
#include <string>
#include <utility>
#include <vector>

#include "sim/experiment.hh"

namespace tinydir::bench
{

/** Metric extracted from one run. */
using Metric = std::function<double(const RunOut &)>;

/** A labeled scheme configuration. */
struct Scheme
{
    std::string label;
    SystemConfig cfg;
};

inline Metric
execCyclesMetric()
{
    return [](const RunOut &o) {
        return static_cast<double>(o.execCycles);
    };
}

inline Metric
statMetric(const std::string &name)
{
    return [name](const RunOut &o) { return o.stats.get(name); };
}

/**
 * Run every selected app under every scheme and tabulate
 * metric(run) — divided by metric(baseline run) when a baseline
 * config is supplied.
 */
inline ResultTable
runMatrix(const std::string &title, const BenchScale &scale,
          const SystemConfig *baseline,
          const std::vector<Scheme> &schemes, const Metric &metric,
          const Metric &baseline_metric = {})
{
    std::vector<std::string> cols;
    cols.reserve(schemes.size());
    for (const auto &s : schemes)
        cols.push_back(s.label);
    ResultTable table(title, cols);
    for (const auto *app : selectApps(scale)) {
        double base = 1.0;
        if (baseline) {
            RunOut b = runOne(*baseline, *app, scale.accessesPerCore, scale.warmupPerCore);
            base = (baseline_metric ? baseline_metric : metric)(b);
            if (base == 0.0)
                base = 1.0;
        }
        std::vector<double> row;
        row.reserve(schemes.size());
        for (const auto &s : schemes) {
            RunOut o = runOne(s.cfg, *app, scale.accessesPerCore, scale.warmupPerCore);
            row.push_back(metric(o) / (baseline ? base : 1.0));
        }
        table.addRow(app->name, std::move(row));
    }
    return table;
}

/** Convenience: a sparse directory config of a given size factor. */
inline SystemConfig
sparseCfg(const BenchScale &scale, double factor)
{
    SystemConfig cfg = baseConfig(scale);
    cfg.tracker = TrackerKind::SparseDir;
    cfg.dirSizeFactor = factor;
    return cfg;
}

/** Convenience: a tiny-directory config. */
inline SystemConfig
tinyCfg(const BenchScale &scale, double factor, TinyPolicy policy,
        bool spill)
{
    SystemConfig cfg = baseConfig(scale);
    cfg.tracker = TrackerKind::TinyDir;
    cfg.dirSizeFactor = factor;
    cfg.tinyPolicy = policy;
    cfg.tinySpill = spill;
    return cfg;
}

/** Label helper for size factors: 1/32 -> "1/32x". */
inline std::string
sizeLabel(double factor)
{
    if (factor >= 1.0) {
        const int v = static_cast<int>(factor + 0.5);
        return std::to_string(v) + "x";
    }
    const int denom = static_cast<int>(1.0 / factor + 0.5);
    return "1/" + std::to_string(denom) + "x";
}

} // namespace tinydir::bench

#endif // TINYDIR_BENCH_BENCH_UTIL_HH
