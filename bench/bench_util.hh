/**
 * @file
 * Shared helpers for the figure-regeneration bench binaries.
 *
 * Every bench accepts --full (paper scale: 128 cores), --quick,
 * --cores=N, --accesses=N and --app=NAME, via
 * tinydir::parseBenchScale. Default scale keeps all Table I ratios at
 * 16 cores so the suite completes in minutes (DESIGN.md Section 4).
 */

#ifndef TINYDIR_BENCH_BENCH_UTIL_HH
#define TINYDIR_BENCH_BENCH_UTIL_HH

#include <chrono>
#include <cmath>
#include <cstdlib>
#include <functional>
#include <iostream>
#include <string>
#include <utility>
#include <vector>

#include "common/sim_error.hh"
#include "sim/experiment.hh"
#include "sim/parallel.hh"

namespace tinydir::bench
{

/** Metric extracted from one run. */
using Metric = std::function<double(const RunOut &)>;

/** A labeled scheme configuration. */
struct Scheme
{
    std::string label;
    SystemConfig cfg;
};

/**
 * Execution time of the measured region. This is the post-warmup
 * cycle count (the exec_cycles stat): the warmup half of every trace
 * is identical across schemes and would dilute the scheme-vs-scheme
 * ratios the figures compare.
 */
inline Metric
execCyclesMetric()
{
    return [](const RunOut &o) {
        return static_cast<double>(o.execCycles);
    };
}

/** Raw run length including warmup (the historical metric). */
inline Metric
totalCyclesMetric()
{
    return [](const RunOut &o) {
        return static_cast<double>(o.totalCycles);
    };
}

inline Metric
statMetric(const std::string &name)
{
    return [name](const RunOut &o) { return o.stats.get(name); };
}

/** "tiny 1/32x / ocean" -> "tiny-1-32x-ocean": filesystem-safe. */
inline std::string
fileSafeLabel(const std::string &label)
{
    std::string out;
    out.reserve(label.size());
    for (const char c : label) {
        const bool keep = (c >= 'a' && c <= 'z') ||
                          (c >= 'A' && c <= 'Z') ||
                          (c >= '0' && c <= '9') || c == '.' ||
                          c == '_';
        if (keep)
            out.push_back(c);
        else if (!out.empty() && out.back() != '-')
            out.push_back('-');
    }
    while (!out.empty() && out.back() == '-')
        out.pop_back();
    return out;
}

/**
 * Per-job controls: the scale's controls labeled with the cell. A
 * bench-level --checkpoint/--resume path fans out to one file per
 * cell (suffixed with the cell's label) so a grid's cells never
 * clobber each other's snapshots.
 */
inline RunControls
cellControls(const BenchScale &scale, const std::string &scheme,
             const std::string &app)
{
    RunControls ctl = scale.controls;
    ctl.label = scheme.empty() ? app : scheme + " / " + app;
    const std::string suffix = "." + fileSafeLabel(ctl.label);
    if (!ctl.checkpointPath.empty())
        ctl.checkpointPath += suffix;
    if (!ctl.resumePath.empty())
        ctl.resumePath += suffix;
    return ctl;
}

/**
 * runMany() with CLI-grade strict handling: in strict mode the first
 * failed cell is reported on stderr and the bench exits with status 1
 * instead of letting the SimError escape main().
 */
inline std::vector<SimResult>
runManyCli(const std::vector<SimJob> &jobs, const BenchScale &scale)
{
    RunManyOptions opt;
    opt.workers = scale.jobs;
    opt.strict = scale.strict;
    opt.warmupSnapshotDir = scale.warmupSnapshotDir;
    try {
        return runMany(jobs, opt);
    } catch (const SimError &e) {
        std::cerr << "error: " << e.what() << "\n";
        std::exit(1);
    }
}

/**
 * Record an experiment's timing: emit a wall-time summary on stderr
 * (stdout stays a clean table for CSV consumers), report every failed
 * cell, and, when TINYDIR_JSON names a file, append the
 * machine-readable record (failures included).
 */
inline void
recordBenchResults(const ResultTable &table, const BenchScale &scale,
                   const std::vector<SimResult> &results,
                   std::chrono::steady_clock::time_point t0)
{
    BenchTiming timing;
    timing.wallSeconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      t0)
            .count();
    timing.jobs = scale.jobs ? scale.jobs : defaultJobCount();
    // Throughput through the one shared aggregator: cells that were
    // memoized, failed, or too fast for the clock contribute neither
    // accesses nor seconds (counting untimed accesses would inflate
    // the quotient).
    const ThroughputAgg agg = aggregateThroughput(results);
    timing.simAccesses = agg.accesses;
    timing.runSeconds = agg.runSeconds;
    for (const auto &r : results) {
        if (r.memoized) {
            ++timing.simsMemoized;
        } else {
            ++timing.simsRun;
            timing.simSeconds += r.wallSeconds;
        }
        if (r.failed && !r.memoized)
            timing.failures.push_back({r.error, r.dumpPath, r.timedOut});
    }
    std::cerr << "# " << table.tableTitle() << ": " << timing.simsRun
              << " sims (" << timing.simsMemoized << " memoized), "
              << timing.jobs << " jobs, wall " << timing.wallSeconds
              << " s, sim " << timing.simSeconds << " s, "
              << timing.simAccesses << " accesses ("
              << static_cast<std::uint64_t>(timing.accessesPerSec())
              << "/s)\n";
    if (!timing.failures.empty()) {
        std::cerr << "# " << timing.failures.size()
                  << " cell(s) FAILED; table shows nan for them:\n";
        for (const auto &f : timing.failures) {
            std::cerr << "#   " << f.error;
            if (!f.dumpPath.empty())
                std::cerr << " [dump: " << f.dumpPath << "]";
            std::cerr << "\n";
        }
    }
    const std::string path = jsonResultsPath();
    if (!path.empty())
        appendJsonResults(path, table, scale, timing);
}

/**
 * Run every selected app under every config on the worker pool;
 * result[a][c] pairs selectApps(scale)[a] with cfgs[c]. For figure
 * binaries whose columns are not one-metric-per-scheme (sharer
 * histograms, traffic breakdowns, ...) and so cannot go through
 * runMatrix. Finish with recordGridResults().
 */
inline std::vector<std::vector<SimResult>>
runGrid(const std::vector<SystemConfig> &cfgs, const BenchScale &scale)
{
    const auto apps = selectApps(scale);
    std::vector<SimJob> jobs;
    jobs.reserve(apps.size() * cfgs.size());
    for (const auto *app : apps) {
        for (const auto &cfg : cfgs) {
            jobs.push_back({cfg, app, scale.accessesPerCore,
                            scale.warmupPerCore,
                            cellControls(scale, toString(cfg.tracker),
                                         app->name)});
        }
    }
    auto flat = runManyCli(jobs, scale);
    std::vector<std::vector<SimResult>> grid(apps.size());
    std::size_t k = 0;
    for (auto &row : grid) {
        row.reserve(cfgs.size());
        for (std::size_t c = 0; c < cfgs.size(); ++c)
            row.push_back(std::move(flat[k++]));
    }
    return grid;
}

/** recordBenchResults() over a runGrid() result. */
inline void
recordGridResults(const ResultTable &table, const BenchScale &scale,
                  const std::vector<std::vector<SimResult>> &grid,
                  std::chrono::steady_clock::time_point t0)
{
    std::vector<SimResult> flat;
    for (const auto &row : grid) {
        for (const auto &r : row)
            flat.push_back(r);
    }
    recordBenchResults(table, scale, flat, t0);
}

/**
 * Run every selected app under every scheme and tabulate
 * metric(run) — divided by metric(baseline run) when a baseline
 * config is supplied.
 *
 * The full scheme x app matrix (baseline included) is enqueued up
 * front and executed by runMany()'s worker pool, so every figure
 * binary scales with --jobs / TINYDIR_JOBS; a baseline that is also
 * one of the schemes is simulated only once.
 */
inline ResultTable
runMatrix(const std::string &title, const BenchScale &scale,
          const SystemConfig *baseline,
          const std::vector<Scheme> &schemes, const Metric &metric,
          const Metric &baseline_metric = {})
{
    const auto t0 = std::chrono::steady_clock::now();
    std::vector<std::string> cols;
    cols.reserve(schemes.size());
    for (const auto &s : schemes)
        cols.push_back(s.label);
    ResultTable table(title, cols);

    const auto apps = selectApps(scale);
    std::vector<SimJob> jobs;
    jobs.reserve(apps.size() * (schemes.size() + (baseline ? 1 : 0)));
    for (const auto *app : apps) {
        if (baseline) {
            jobs.push_back({*baseline, app, scale.accessesPerCore,
                            scale.warmupPerCore,
                            cellControls(scale, "baseline",
                                         app->name)});
        }
        for (const auto &s : schemes) {
            jobs.push_back({s.cfg, app, scale.accessesPerCore,
                            scale.warmupPerCore,
                            cellControls(scale, s.label, app->name)});
        }
    }
    const auto results = runManyCli(jobs, scale);

    std::size_t k = 0;
    for (const auto *app : apps) {
        double base = 1.0;
        bool base_failed = false;
        if (baseline) {
            const SimResult &b = results[k++];
            base_failed = b.failed;
            base = (baseline_metric ? baseline_metric : metric)(b.out);
            if (base == 0.0)
                base = 1.0;
        }
        std::vector<double> row;
        row.reserve(schemes.size());
        for (std::size_t s = 0; s < schemes.size(); ++s) {
            const SimResult &r = results[k++];
            // A failed cell (or a cell whose baseline failed) has no
            // meaningful value; NaN keeps the rest of the table alive
            // and columnAverage() skips it.
            if (r.failed || base_failed) {
                row.push_back(std::nan(""));
                continue;
            }
            row.push_back(metric(r.out) / (baseline ? base : 1.0));
        }
        table.addRow(app->name, std::move(row));
    }
    recordBenchResults(table, scale, results, t0);
    return table;
}

/** Convenience: a sparse directory config of a given size factor. */
inline SystemConfig
sparseCfg(const BenchScale &scale, double factor)
{
    SystemConfig cfg = baseConfig(scale);
    cfg.tracker = TrackerKind::SparseDir;
    cfg.dirSizeFactor = factor;
    return cfg;
}

/** Convenience: a tiny-directory config. */
inline SystemConfig
tinyCfg(const BenchScale &scale, double factor, TinyPolicy policy,
        bool spill)
{
    SystemConfig cfg = baseConfig(scale);
    cfg.tracker = TrackerKind::TinyDir;
    cfg.dirSizeFactor = factor;
    cfg.tinyPolicy = policy;
    cfg.tinySpill = spill;
    return cfg;
}

/** Label helper for size factors: 1/32 -> "1/32x". */
inline std::string
sizeLabel(double factor)
{
    if (factor >= 1.0) {
        const int v = static_cast<int>(factor + 0.5);
        return std::to_string(v) + "x";
    }
    const int denom = static_cast<int>(1.0 / factor + 0.5);
    return "1/" + std::to_string(denom) + "x";
}

} // namespace tinydir::bench

#endif // TINYDIR_BENCH_BENCH_UTIL_HH
