/**
 * @file
 * Shared driver for Figs. 16/17: a tiny-directory statistic under the
 * DSTRA+gNRU policy normalized to the same statistic under plain
 * DSTRA, for all four tiny sizes.
 */

#ifndef TINYDIR_BENCH_GNRU_RATIO_BENCH_HH
#define TINYDIR_BENCH_GNRU_RATIO_BENCH_HH

#include <iostream>

#include "bench_util.hh"

namespace tinydir::bench
{

inline int
runGnruRatioFigure(int argc, char **argv, const std::string &title,
                   const std::string &stat)
{
    BenchScale scale = parseBenchScale(argc, argv);
    const std::vector<double> sizes{1.0 / 256, 1.0 / 128, 1.0 / 64,
                                    1.0 / 32};
    std::vector<std::string> cols;
    for (double f : sizes)
        cols.push_back(sizeLabel(f));
    ResultTable table(title, cols);
    for (const auto *app : selectApps(scale)) {
        std::vector<double> row;
        for (double f : sizes) {
            RunOut dstra =
                runOne(tinyCfg(scale, f, TinyPolicy::Dstra, false),
                       *app, scale.accessesPerCore, scale.warmupPerCore);
            RunOut gnru =
                runOne(tinyCfg(scale, f, TinyPolicy::DstraGnru, false),
                       *app, scale.accessesPerCore, scale.warmupPerCore);
            const double denom = std::max(1.0, dstra.stats.get(stat));
            row.push_back(gnru.stats.get(stat) / denom);
        }
        table.addRow(app->name, std::move(row));
    }
    table.print(std::cout);
    return 0;
}

} // namespace tinydir::bench

#endif // TINYDIR_BENCH_GNRU_RATIO_BENCH_HH
