/**
 * @file
 * Shared driver for Figs. 16/17: a tiny-directory statistic under the
 * DSTRA+gNRU policy normalized to the same statistic under plain
 * DSTRA, for all four tiny sizes.
 */

#ifndef TINYDIR_BENCH_GNRU_RATIO_BENCH_HH
#define TINYDIR_BENCH_GNRU_RATIO_BENCH_HH

#include <iostream>

#include "bench_util.hh"

namespace tinydir::bench
{

inline int
runGnruRatioFigure(int argc, char **argv, const std::string &title,
                   const std::string &stat)
{
    const auto t0 = std::chrono::steady_clock::now();
    BenchScale scale = parseBenchScale(argc, argv);
    const std::vector<double> sizes{1.0 / 256, 1.0 / 128, 1.0 / 64,
                                    1.0 / 32};
    std::vector<std::string> cols;
    for (double f : sizes)
        cols.push_back(sizeLabel(f));
    ResultTable table(title, cols);

    // Enqueue the whole app x size matrix (a DSTRA and a DSTRA+gNRU
    // run per cell) for the worker pool.
    const auto apps = selectApps(scale);
    std::vector<SimJob> jobs;
    jobs.reserve(apps.size() * sizes.size() * 2);
    for (const auto *app : apps) {
        for (double f : sizes) {
            jobs.push_back({tinyCfg(scale, f, TinyPolicy::Dstra, false),
                            app, scale.accessesPerCore,
                            scale.warmupPerCore,
                            cellControls(scale, "dstra " + sizeLabel(f),
                                         app->name)});
            jobs.push_back(
                {tinyCfg(scale, f, TinyPolicy::DstraGnru, false), app,
                 scale.accessesPerCore, scale.warmupPerCore,
                 cellControls(scale, "dstra+gnru " + sizeLabel(f),
                              app->name)});
        }
    }
    const auto results = runManyCli(jobs, scale);

    std::size_t k = 0;
    for (const auto *app : apps) {
        std::vector<double> row;
        for (std::size_t i = 0; i < sizes.size(); ++i) {
            const SimResult &dstra = results[k++];
            const SimResult &gnru = results[k++];
            if (dstra.failed || gnru.failed) {
                row.push_back(std::nan(""));
                continue;
            }
            const double denom =
                std::max(1.0, dstra.out.stats.get(stat));
            row.push_back(gnru.out.stats.get(stat) / denom);
        }
        table.addRow(app->name, std::move(row));
    }
    recordBenchResults(table, scale, results, t0);
    table.print(std::cout);
    return 0;
}

} // namespace tinydir::bench

#endif // TINYDIR_BENCH_GNRU_RATIO_BENCH_HH
