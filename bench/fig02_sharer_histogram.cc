/**
 * @file
 * Fig. 2: distribution of the maximum sharer count per allocated LLC
 * block (percent of allocated blocks per bin), measured under the 2x
 * sparse directory baseline.
 */

#include <iostream>

#include "bench_util.hh"

using namespace tinydir;
using namespace tinydir::bench;

int
main(int argc, char **argv)
{
    const auto t0 = std::chrono::steady_clock::now();
    BenchScale scale = parseBenchScale(argc, argv);
    SystemConfig cfg = sparseCfg(scale, 2.0);
    ResultTable table(
        "Fig. 2: % of allocated LLC blocks by max sharer count",
        {"[2,4]", "[5,8]", "[9,16]", "[17,C]", "shared total"});
    const auto apps = selectApps(scale);
    const auto grid = runGrid({cfg}, scale);
    for (std::size_t a = 0; a < apps.size(); ++a) {
        const RunOut &o = grid[a][0].out;
        const double blocks =
            std::max(1.0, o.stats.get("resid.blocks"));
        std::vector<double> row;
        for (unsigned b = 0; b < 4; ++b) {
            row.push_back(100.0 *
                          o.stats.get("resid.sharer_bin" +
                                      std::to_string(b)) / blocks);
        }
        row.push_back(100.0 * o.stats.get("resid.shared_blocks") /
                      blocks);
        table.addRow(apps[a]->name, std::move(row));
    }
    recordGridResults(table, scale, grid, t0);
    table.print(std::cout, 2);
    return 0;
}
