/**
 * @file
 * Fig. 2: distribution of the maximum sharer count per allocated LLC
 * block (percent of allocated blocks per bin), measured under the 2x
 * sparse directory baseline.
 */

#include <iostream>

#include "bench_util.hh"

using namespace tinydir;
using namespace tinydir::bench;

int
main(int argc, char **argv)
{
    BenchScale scale = parseBenchScale(argc, argv);
    SystemConfig cfg = sparseCfg(scale, 2.0);
    ResultTable table(
        "Fig. 2: % of allocated LLC blocks by max sharer count",
        {"[2,4]", "[5,8]", "[9,16]", "[17,C]", "shared total"});
    for (const auto *app : selectApps(scale)) {
        RunOut o = runOne(cfg, *app, scale.accessesPerCore, scale.warmupPerCore);
        const double blocks =
            std::max(1.0, o.stats.get("resid.blocks"));
        std::vector<double> row;
        for (unsigned b = 0; b < 4; ++b) {
            row.push_back(100.0 *
                          o.stats.get("resid.sharer_bin" +
                                      std::to_string(b)) / blocks);
        }
        row.push_back(100.0 * o.stats.get("resid.shared_blocks") /
                      blocks);
        table.addRow(app->name, std::move(row));
    }
    table.print(std::cout, 2);
    return 0;
}
