/** @file Fig. 17: tiny directory allocations, DSTRA+gNRU / DSTRA. */

#include "gnru_ratio_bench.hh"

int
main(int argc, char **argv)
{
    return tinydir::bench::runGnruRatioFigure(
        argc, argv,
        "Fig. 17: tiny directory allocations, DSTRA+gNRU / DSTRA",
        "dir.allocs");
}
