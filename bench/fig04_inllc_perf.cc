/**
 * @file
 * Fig. 4: execution time of in-LLC coherence tracking normalized to a
 * 2x sparse directory — the storage-heavy tag-extended variant vs the
 * data-bits-borrowing variant of Section III.
 */

#include <iostream>

#include "bench_util.hh"

using namespace tinydir;
using namespace tinydir::bench;

int
main(int argc, char **argv)
{
    BenchScale scale = parseBenchScale(argc, argv);
    SystemConfig base = sparseCfg(scale, 2.0);
    SystemConfig tag_ext = baseConfig(scale);
    tag_ext.tracker = TrackerKind::InLlcTagExtended;
    SystemConfig borrowed = baseConfig(scale);
    borrowed.tracker = TrackerKind::InLlc;
    auto table = runMatrix(
        "Fig. 4: normalized execution time, in-LLC tracking",
        scale, &base,
        {{"tag extended", tag_ext}, {"data bits borrowed", borrowed}},
        execCyclesMetric());
    table.print(std::cout);
    return 0;
}
