/**
 * @file
 * Fig. 8: distribution of allocated LLC blocks with non-zero STRA
 * ratio across categories C1..C7 (percent of such blocks), under
 * in-LLC tracking.
 */

#include <iostream>

#include "bench_util.hh"

using namespace tinydir;
using namespace tinydir::bench;

int
main(int argc, char **argv)
{
    const auto t0 = std::chrono::steady_clock::now();
    BenchScale scale = parseBenchScale(argc, argv);
    SystemConfig illc = baseConfig(scale);
    illc.tracker = TrackerKind::InLlc;
    ResultTable table(
        "Fig. 8: % of non-zero-STRA LLC blocks per category",
        {"C1", "C2", "C3", "C4", "C5", "C6", "C7"});
    const auto apps = selectApps(scale);
    const auto grid = runGrid({illc}, scale);
    for (std::size_t a = 0; a < apps.size(); ++a) {
        const RunOut &o = grid[a][0].out;
        double total = 0;
        for (unsigned c = 1; c <= 7; ++c) {
            total += o.stats.get("stra.blocks.c" +
                                 std::to_string(c));
        }
        total = std::max(1.0, total);
        std::vector<double> row;
        for (unsigned c = 1; c <= 7; ++c) {
            row.push_back(100.0 *
                          o.stats.get("stra.blocks.c" +
                                      std::to_string(c)) / total);
        }
        table.addRow(apps[a]->name, std::move(row));
    }
    recordGridResults(table, scale, grid, t0);
    table.print(std::cout, 2);
    return 0;
}
