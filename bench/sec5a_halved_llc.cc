/**
 * @file
 * Section V-A robustness check: the entire cache hierarchy halved
 * (LLC capacity = N blocks instead of 2N). The 1/128x tiny directory
 * with DSTRA+gNRU and with +DynSpill versus a 2x sparse directory of
 * the same halved system.
 */

#include <iostream>

#include "bench_util.hh"

using namespace tinydir;
using namespace tinydir::bench;

int
main(int argc, char **argv)
{
    BenchScale scale = parseBenchScale(argc, argv);
    SystemConfig base = sparseCfg(scale, 2.0);
    base.llcBlocksPerN = 1.0;
    SystemConfig gnru =
        tinyCfg(scale, 1.0 / 128, TinyPolicy::DstraGnru, false);
    gnru.llcBlocksPerN = 1.0;
    SystemConfig spill =
        tinyCfg(scale, 1.0 / 128, TinyPolicy::DstraGnru, true);
    spill.llcBlocksPerN = 1.0;
    auto table = runMatrix(
        "Sec. V-A: halved LLC, tiny 1/128x vs sparse 2x",
        scale, &base,
        {{"DSTRA+gNRU", gnru}, {"+DynSpill", spill}},
        execCyclesMetric());
    table.print(std::cout);
    return 0;
}
