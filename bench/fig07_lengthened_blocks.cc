/**
 * @file
 * Fig. 7: percentage of allocated LLC blocks that experience at least
 * one lengthened (three-hop shared read) access under in-LLC tracking.
 */

#include <iostream>

#include "bench_util.hh"

using namespace tinydir;
using namespace tinydir::bench;

int
main(int argc, char **argv)
{
    const auto t0 = std::chrono::steady_clock::now();
    BenchScale scale = parseBenchScale(argc, argv);
    SystemConfig illc = baseConfig(scale);
    illc.tracker = TrackerKind::InLlc;
    ResultTable table(
        "Fig. 7: % of allocated LLC blocks with lengthened accesses",
        {"blocks %"});
    const auto apps = selectApps(scale);
    const auto grid = runGrid({illc}, scale);
    for (std::size_t a = 0; a < apps.size(); ++a) {
        const RunOut &o = grid[a][0].out;
        const double blocks =
            std::max(1.0, o.stats.get("resid.blocks"));
        table.addRow(apps[a]->name,
                     {100.0 * o.stats.get("resid.lengthened_blocks") /
                      blocks});
    }
    recordGridResults(table, scale, grid, t0);
    table.print(std::cout, 2);
    return 0;
}
