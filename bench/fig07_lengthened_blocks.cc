/**
 * @file
 * Fig. 7: percentage of allocated LLC blocks that experience at least
 * one lengthened (three-hop shared read) access under in-LLC tracking.
 */

#include <iostream>

#include "bench_util.hh"

using namespace tinydir;
using namespace tinydir::bench;

int
main(int argc, char **argv)
{
    BenchScale scale = parseBenchScale(argc, argv);
    SystemConfig illc = baseConfig(scale);
    illc.tracker = TrackerKind::InLlc;
    ResultTable table(
        "Fig. 7: % of allocated LLC blocks with lengthened accesses",
        {"blocks %"});
    for (const auto *app : selectApps(scale)) {
        RunOut o = runOne(illc, *app, scale.accessesPerCore, scale.warmupPerCore);
        const double blocks =
            std::max(1.0, o.stats.get("resid.blocks"));
        table.addRow(app->name,
                     {100.0 * o.stats.get("resid.lengthened_blocks") /
                      blocks});
    }
    table.print(std::cout, 2);
    return 0;
}
