/** @file Prints the resolved system configuration (paper Table I). */

#include <iostream>

#include "bench_util.hh"
#include "noc/traffic.hh"

using namespace tinydir;

int
main(int argc, char **argv)
{
    BenchScale scale = parseBenchScale(argc, argv);
    SystemConfig cfg = baseConfig(scale);
    cfg.validate();

    std::cout << "# Table I: simulation environment ("
              << (scale.full ? "paper scale" : "scaled") << ")\n";
    std::cout << "cores                    " << cfg.numCores << "\n";
    std::cout << "L1 I/D per core          " << cfg.l1Bytes / 1024
              << " KB, " << cfg.l1Assoc << "-way, " << cfg.l1Latency
              << " cycles\n";
    std::cout << "L2 per core              " << cfg.l2Bytes / 1024
              << " KB, " << cfg.l2Assoc << "-way, " << cfg.l2Latency
              << " cycles\n";
    std::cout << "shared LLC               "
              << cfg.llcBlocksTotal() * blockBytes / (1024 * 1024)
              << " MB, " << cfg.llcAssoc << "-way, " << cfg.llcBanks()
              << " banks, tag " << cfg.llcTagLatency << " + data "
              << cfg.llcDataLatency << " cycles\n";
    std::cout << "block size               " << blockBytes << " B\n";
    std::cout << "mesh                     " << cfg.meshWidth() << "x"
              << cfg.meshHeight() << ", " << cfg.hopCycles
              << " cycles/hop\n";
    std::cout << "memory                   " << cfg.memChannels
              << " channels, " << cfg.memBanksPerChannel
              << " banks each, CAS/RCD/RP " << cfg.dramCas << "/"
              << cfg.dramRcd << "/" << cfg.dramRp << " cycles\n";
    std::cout << "aggregate L2 blocks (N)  " << cfg.aggregateL2Blocks()
              << "\n";
    std::cout << "directory sizes (entries/slice, associativity):\n";
    for (double f : {2.0, 1.0, 0.5, 0.25, 0.125, 1.0 / 16, 1.0 / 32,
                     1.0 / 64, 1.0 / 128, 1.0 / 256}) {
        SystemConfig c = cfg;
        c.dirSizeFactor = f;
        std::cout << "  " << tinydir::bench::sizeLabel(f) << ": "
                  << c.dirEntriesPerSlice() << " entries/slice, "
                  << c.effectiveDirAssoc()
                  << (c.dirEntriesPerSlice() <= 16
                          ? "-way (fully assoc)\n" : "-way\n");
    }
    std::cout << "reconstruction payload   "
              << reconstructBytes(cfg.numCores) << " B per E-state "
              << "eviction notice\n";
    return 0;
}
