/**
 * @file
 * Ablation study of the tiny-directory design choices called out in
 * DESIGN.md Section 5, on a sharing-heavy workload subset:
 *
 *  - STRA counter width (paper: 6 bits, halved on saturation);
 *  - gNRU generation quantum (paper: 4K cycles);
 *  - DynSpill observation window (paper: 8K accesses/bank);
 *  - DynSpill sampled no-spill sets (paper: 16/bank).
 *
 * Each sweep reports execution time normalized to the paper's setting
 * so "0.98/1.02" reads as better/worse than the published choice.
 */

#include <iostream>

#include "bench_util.hh"

using namespace tinydir;
using namespace tinydir::bench;

int
main(int argc, char **argv)
{
    const auto t0 = std::chrono::steady_clock::now();
    BenchScale scale = parseBenchScale(argc, argv);
    if (scale.onlyApps.empty()) {
        // Sharing-heavy subset: where the knobs actually matter.
        scale.onlyApps = {"barnes", "TPC-C", "SPEC_Web-B", "SPEC_JBB"};
    }
    SystemConfig ref =
        tinyCfg(scale, 1.0 / 64, TinyPolicy::DstraGnru, true);

    // Every sweep point goes into one job list so the worker pool
    // covers the whole ablation and the memoizer collapses the sweep
    // points that equal the paper-setting reference.
    std::vector<SystemConfig> cfgs;
    auto add = [&](const SystemConfig &cfg) {
        cfgs.push_back(cfg);
        return cfgs.size() - 1;
    };
    const std::size_t ref_i = add(ref);

    const std::vector<unsigned> stra_bits{2, 4, 6, 8};
    std::vector<std::size_t> stra_i;
    for (unsigned bits : stra_bits) {
        SystemConfig cfg = ref;
        cfg.straCounterBits = bits;
        stra_i.push_back(add(cfg));
    }

    const std::vector<unsigned> quanta{1024, 4096, 16384, 65536};
    std::vector<std::size_t> quanta_i;
    for (unsigned q : quanta) {
        SystemConfig cfg = ref;
        cfg.gnruQuantumCycles = q;
        quanta_i.push_back(add(cfg));
    }

    const std::vector<unsigned> windows{256, 1024, 4096, 8192};
    std::vector<std::size_t> windows_i;
    for (unsigned w : windows) {
        SystemConfig cfg = ref;
        cfg.spillWindowAccesses = w;
        windows_i.push_back(add(cfg));
    }

    const std::vector<unsigned> sampled{4, 16, 64};
    std::vector<std::size_t> sampled_i;
    for (unsigned s : sampled) {
        SystemConfig cfg = ref;
        cfg.spillSampledSets = s;
        sampled_i.push_back(add(cfg));
    }

    const std::size_t full_i = add(sparseCfg(scale, 2.0));
    const std::vector<unsigned> grains{1, 2, 4, 8};
    std::vector<std::size_t> grains_i;
    for (unsigned grain : grains) {
        SystemConfig cfg = sparseCfg(scale, 2.0);
        cfg.sharerGrain = grain;
        grains_i.push_back(add(cfg));
    }

    std::vector<std::size_t> spill_i;
    for (bool sp : {false, true}) {
        spill_i.push_back(add(
            tinyCfg(scale, 1.0 / 256, TinyPolicy::DstraGnru, sp)));
    }

    const auto grid = runGrid(cfgs, scale);

    // Machine-readable record of the whole sweep: one row per config,
    // workload-average post-warmup execution cycles.
    {
        ResultTable rec("Ablations: tiny 1/64x +DynSpill design knobs",
                        {"avg exec cycles"});
        for (std::size_t c = 0; c < cfgs.size(); ++c) {
            double sum = 0;
            for (const auto &row : grid)
                sum += static_cast<double>(row[c].out.execCycles);
            rec.addRow("cfg" + std::to_string(c),
                       {sum / static_cast<double>(grid.size())});
        }
        recordGridResults(rec, scale, grid, t0);
    }

    auto avgExec = [&](std::size_t cfg_idx) {
        double sum = 0;
        for (const auto &row : grid)
            sum += static_cast<double>(row[cfg_idx].out.execCycles);
        return sum / static_cast<double>(grid.size());
    };
    const double base = avgExec(ref_i);

    std::cout << "# Ablations of the tiny 1/64x +DynSpill design "
                 "(execution time normalized to paper settings)\n";

    std::cout << "\nSTRA counter width (paper: 6 bits)\n";
    for (std::size_t i = 0; i < stra_bits.size(); ++i) {
        std::cout << "  " << stra_bits[i] << " bits: "
                  << avgExec(stra_i[i]) / base << '\n';
    }

    std::cout << "\ngNRU generation quantum (paper: 4096 cycles)\n";
    for (std::size_t i = 0; i < quanta.size(); ++i) {
        std::cout << "  " << quanta[i] << " cycles: "
                  << avgExec(quanta_i[i]) / base << '\n';
    }

    std::cout << "\nDynSpill observation window (scaled default: "
              << ref.spillWindowAccesses << " accesses/bank)\n";
    for (std::size_t i = 0; i < windows.size(); ++i) {
        std::cout << "  " << windows[i] << " accesses: "
                  << avgExec(windows_i[i]) / base << '\n';
    }

    std::cout << "\nDynSpill sampled no-spill sets (paper: 16/bank)\n";
    for (std::size_t i = 0; i < sampled.size(); ++i) {
        std::cout << "  " << sampled[i] << " sets: "
                  << avgExec(sampled_i[i]) / base << '\n';
    }

    std::cout << "\nCoarse sharer vectors on the sparse 2x baseline "
                 "(Section I-A: width reduction applies on top)\n";
    {
        const double fbase = avgExec(full_i);
        for (std::size_t i = 0; i < grains.size(); ++i) {
            std::cout << "  grain " << grains[i] << " ("
                      << scale.cores / grains[i] << "-bit vector): "
                      << avgExec(grains_i[i]) / fbase << '\n';
        }
    }

    std::cout << "\nSpilling on/off at 1/256x (robustness source)\n";
    std::cout << "  spill off: " << avgExec(spill_i[0]) / base << '\n';
    std::cout << "  spill on : " << avgExec(spill_i[1]) / base << '\n';
    return 0;
}
