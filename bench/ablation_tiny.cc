/**
 * @file
 * Ablation study of the tiny-directory design choices called out in
 * DESIGN.md Section 5, on a sharing-heavy workload subset:
 *
 *  - STRA counter width (paper: 6 bits, halved on saturation);
 *  - gNRU generation quantum (paper: 4K cycles);
 *  - DynSpill observation window (paper: 8K accesses/bank);
 *  - DynSpill sampled no-spill sets (paper: 16/bank).
 *
 * Each sweep reports execution time normalized to the paper's setting
 * so "0.98/1.02" reads as better/worse than the published choice.
 */

#include <iostream>

#include "bench_util.hh"

using namespace tinydir;
using namespace tinydir::bench;

namespace
{

double
averageExec(const SystemConfig &cfg, const BenchScale &scale)
{
    double sum = 0;
    unsigned n = 0;
    for (const auto *app : selectApps(scale)) {
        RunOut o = runOne(cfg, *app, scale.accessesPerCore,
                          scale.warmupPerCore);
        sum += static_cast<double>(o.execCycles);
        ++n;
    }
    return sum / n;
}

} // namespace

int
main(int argc, char **argv)
{
    BenchScale scale = parseBenchScale(argc, argv);
    if (scale.onlyApps.empty()) {
        // Sharing-heavy subset: where the knobs actually matter.
        scale.onlyApps = {"barnes", "TPC-C", "SPEC_Web-B", "SPEC_JBB"};
    }
    SystemConfig ref =
        tinyCfg(scale, 1.0 / 64, TinyPolicy::DstraGnru, true);
    const double base = averageExec(ref, scale);

    std::cout << "# Ablations of the tiny 1/64x +DynSpill design "
                 "(execution time normalized to paper settings)\n";

    std::cout << "\nSTRA counter width (paper: 6 bits)\n";
    for (unsigned bits : {2u, 4u, 6u, 8u}) {
        SystemConfig cfg = ref;
        cfg.straCounterBits = bits;
        std::cout << "  " << bits << " bits: "
                  << averageExec(cfg, scale) / base << '\n';
    }

    std::cout << "\ngNRU generation quantum (paper: 4096 cycles)\n";
    for (unsigned q : {1024u, 4096u, 16384u, 65536u}) {
        SystemConfig cfg = ref;
        cfg.gnruQuantumCycles = q;
        std::cout << "  " << q << " cycles: "
                  << averageExec(cfg, scale) / base << '\n';
    }

    std::cout << "\nDynSpill observation window (scaled default: "
              << ref.spillWindowAccesses << " accesses/bank)\n";
    for (unsigned w : {256u, 1024u, 4096u, 8192u}) {
        SystemConfig cfg = ref;
        cfg.spillWindowAccesses = w;
        std::cout << "  " << w << " accesses: "
                  << averageExec(cfg, scale) / base << '\n';
    }

    std::cout << "\nDynSpill sampled no-spill sets (paper: 16/bank)\n";
    for (unsigned s : {4u, 16u, 64u}) {
        SystemConfig cfg = ref;
        cfg.spillSampledSets = s;
        std::cout << "  " << s << " sets: "
                  << averageExec(cfg, scale) / base << '\n';
    }

    std::cout << "\nCoarse sharer vectors on the sparse 2x baseline "
                 "(Section I-A: width reduction applies on top)\n";
    {
        SystemConfig full = sparseCfg(scale, 2.0);
        const double fbase = averageExec(full, scale);
        for (unsigned grain : {1u, 2u, 4u, 8u}) {
            SystemConfig cfg = sparseCfg(scale, 2.0);
            cfg.sharerGrain = grain;
            std::cout << "  grain " << grain << " ("
                      << cfg.numCores / grain << "-bit vector): "
                      << averageExec(cfg, scale) / fbase << '\n';
        }
    }

    std::cout << "\nSpilling on/off at 1/256x (robustness source)\n";
    for (bool sp : {false, true}) {
        SystemConfig cfg =
            tinyCfg(scale, 1.0 / 256, TinyPolicy::DstraGnru, sp);
        std::cout << "  spill " << (sp ? "on " : "off") << ": "
                  << averageExec(cfg, scale) / base << '\n';
    }
    return 0;
}
