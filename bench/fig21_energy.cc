/**
 * @file
 * Fig. 21: execution cycles plus LLC+directory dynamic / leakage /
 * total energy of baseline sparse directories (2x .. 1/16x) and the
 * 1/128x tiny directory, everything normalized to the 1/256x tiny
 * directory exercising DSTRA+gNRU+DynSpill. Values are averaged over
 * the selected workloads, as in the paper.
 */

#include <iostream>

#include "bench_util.hh"

using namespace tinydir;
using namespace tinydir::bench;

namespace
{

struct Sums
{
    double dyn = 0, leak = 0, total = 0, cycles = 0;
};

/** Workload average of one config's column of a runGrid() result. */
Sums
average(const std::vector<std::vector<SimResult>> &grid,
        std::size_t cfg_idx)
{
    Sums s;
    for (const auto &row : grid) {
        const RunOut &o = row[cfg_idx].out;
        s.dyn += o.stats.get("energy.dynamic_j");
        s.leak += o.stats.get("energy.leakage_j");
        s.total += o.stats.get("energy.total_j");
        s.cycles += static_cast<double>(o.execCycles);
    }
    const auto n = static_cast<double>(grid.size());
    s.dyn /= n;
    s.leak /= n;
    s.total /= n;
    s.cycles /= n;
    return s;
}

} // namespace

int
main(int argc, char **argv)
{
    const auto t0 = std::chrono::steady_clock::now();
    BenchScale scale = parseBenchScale(argc, argv);

    const std::vector<double> sparse_sizes{2.0, 1.0, 0.5, 0.25, 0.125,
                                           1.0 / 16};
    std::vector<SystemConfig> cfgs{
        tinyCfg(scale, 1.0 / 256, TinyPolicy::DstraGnru, true)};
    for (double f : sparse_sizes)
        cfgs.push_back(sparseCfg(scale, f));
    cfgs.push_back(tinyCfg(scale, 1.0 / 128, TinyPolicy::DstraGnru,
                           true));
    const auto grid = runGrid(cfgs, scale);
    const Sums ref = average(grid, 0);

    ResultTable table(
        "Fig. 21: energy and cycles normalized to the 1/256x tiny "
        "directory (+DynSpill), workload average",
        {"dynamic", "leakage", "total", "exec cycles"});
    for (std::size_t i = 0; i < sparse_sizes.size(); ++i) {
        const Sums s = average(grid, 1 + i);
        table.addRow("sparse " + sizeLabel(sparse_sizes[i]),
                     {s.dyn / ref.dyn, s.leak / ref.leak,
                      s.total / ref.total, s.cycles / ref.cycles});
    }
    const Sums t128 = average(grid, cfgs.size() - 1);
    table.addRow("tiny 1/128x",
                 {t128.dyn / ref.dyn, t128.leak / ref.leak,
                  t128.total / ref.total, t128.cycles / ref.cycles});
    table.addRow("tiny 1/256x", {1.0, 1.0, 1.0, 1.0});
    recordGridResults(table, scale, grid, t0);
    table.print(std::cout, 3, false);
    return 0;
}
