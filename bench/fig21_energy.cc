/**
 * @file
 * Fig. 21: execution cycles plus LLC+directory dynamic / leakage /
 * total energy of baseline sparse directories (2x .. 1/16x) and the
 * 1/128x tiny directory, everything normalized to the 1/256x tiny
 * directory exercising DSTRA+gNRU+DynSpill. Values are averaged over
 * the selected workloads, as in the paper.
 */

#include <iostream>

#include "bench_util.hh"

using namespace tinydir;
using namespace tinydir::bench;

namespace
{

struct Sums
{
    double dyn = 0, leak = 0, total = 0, cycles = 0;
};

Sums
average(const SystemConfig &cfg, const BenchScale &scale)
{
    Sums s;
    unsigned n = 0;
    for (const auto *app : selectApps(scale)) {
        RunOut o = runOne(cfg, *app, scale.accessesPerCore, scale.warmupPerCore);
        s.dyn += o.stats.get("energy.dynamic_j");
        s.leak += o.stats.get("energy.leakage_j");
        s.total += o.stats.get("energy.total_j");
        s.cycles += static_cast<double>(o.execCycles);
        ++n;
    }
    s.dyn /= n;
    s.leak /= n;
    s.total /= n;
    s.cycles /= n;
    return s;
}

} // namespace

int
main(int argc, char **argv)
{
    BenchScale scale = parseBenchScale(argc, argv);
    const Sums ref = average(
        tinyCfg(scale, 1.0 / 256, TinyPolicy::DstraGnru, true), scale);

    ResultTable table(
        "Fig. 21: energy and cycles normalized to the 1/256x tiny "
        "directory (+DynSpill), workload average",
        {"dynamic", "leakage", "total", "exec cycles"});
    for (double f : {2.0, 1.0, 0.5, 0.25, 0.125, 1.0 / 16}) {
        const Sums s = average(sparseCfg(scale, f), scale);
        table.addRow("sparse " + sizeLabel(f),
                     {s.dyn / ref.dyn, s.leak / ref.leak,
                      s.total / ref.total, s.cycles / ref.cycles});
    }
    const Sums t128 = average(
        tinyCfg(scale, 1.0 / 128, TinyPolicy::DstraGnru, true), scale);
    table.addRow("tiny 1/128x",
                 {t128.dyn / ref.dyn, t128.leak / ref.leak,
                  t128.total / ref.total, t128.cycles / ref.cycles});
    table.addRow("tiny 1/256x", {1.0, 1.0, 1.0, 1.0});
    table.print(std::cout, 3, false);
    return 0;
}
