/** @file Fig. 11: tiny 1/64x directory, three policies vs sparse 2x. */

#include "tiny_size_bench.hh"

int
main(int argc, char **argv)
{
    return tinydir::bench::runTinySizeFigure(argc, argv, "Fig. 11",
                                             1.0 / 64);
}
