/** @file Fig. 15: lengthened-access share with a 1/256x tiny directory. */

#include "critpath_bench.hh"

int
main(int argc, char **argv)
{
    return tinydir::bench::runCritpathFigure(argc, argv, "Fig. 15",
                                             1.0 / 256);
}
