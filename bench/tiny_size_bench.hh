/**
 * @file
 * Shared driver for Figs. 10-13: execution time of one tiny-directory
 * size under the DSTRA, DSTRA+gNRU and DSTRA+gNRU+DynSpill policies,
 * normalized to the 2x sparse directory.
 */

#ifndef TINYDIR_BENCH_TINY_SIZE_BENCH_HH
#define TINYDIR_BENCH_TINY_SIZE_BENCH_HH

#include <iostream>

#include "bench_util.hh"

namespace tinydir::bench
{

inline int
runTinySizeFigure(int argc, char **argv, const char *figure,
                  double factor)
{
    BenchScale scale = parseBenchScale(argc, argv);
    SystemConfig base = sparseCfg(scale, 2.0);
    std::vector<Scheme> schemes{
        {"DSTRA", tinyCfg(scale, factor, TinyPolicy::Dstra, false)},
        {"DSTRA+gNRU",
         tinyCfg(scale, factor, TinyPolicy::DstraGnru, false)},
        {"+DynSpill",
         tinyCfg(scale, factor, TinyPolicy::DstraGnru, true)},
    };
    auto table = runMatrix(
        std::string(figure) + ": normalized execution time, tiny " +
            sizeLabel(factor) + " directory",
        scale, &base, schemes, execCyclesMetric());
    table.print(std::cout);
    return 0;
}

} // namespace tinydir::bench

#endif // TINYDIR_BENCH_TINY_SIZE_BENCH_HH
