/**
 * @file
 * Fig. 20: increase in LLC miss rate (percentage points) of
 * DSTRA+gNRU+DynSpill relative to the 2x sparse directory, for all
 * four tiny sizes. The paper's delta guarantee bounds these values.
 */

#include <iostream>

#include "bench_util.hh"

using namespace tinydir;
using namespace tinydir::bench;

int
main(int argc, char **argv)
{
    const auto t0 = std::chrono::steady_clock::now();
    BenchScale scale = parseBenchScale(argc, argv);
    const std::vector<double> sizes{1.0 / 256, 1.0 / 128, 1.0 / 64,
                                    1.0 / 32};
    std::vector<std::string> cols;
    std::vector<SystemConfig> cfgs{sparseCfg(scale, 2.0)};
    for (double f : sizes) {
        cols.push_back(sizeLabel(f));
        cfgs.push_back(tinyCfg(scale, f, TinyPolicy::DstraGnru, true));
    }
    ResultTable table(
        "Fig. 20: LLC miss-rate increase vs sparse 2x (% points)",
        cols);
    const auto apps = selectApps(scale);
    const auto grid = runGrid(cfgs, scale);
    for (std::size_t a = 0; a < apps.size(); ++a) {
        const double mr_base = grid[a][0].out.stats.get("llc.miss_rate");
        std::vector<double> row;
        for (std::size_t c = 1; c < cfgs.size(); ++c) {
            const RunOut &o = grid[a][c].out;
            row.push_back(100.0 *
                          (o.stats.get("llc.miss_rate") - mr_base));
        }
        table.addRow(apps[a]->name, std::move(row));
    }
    recordGridResults(table, scale, grid, t0);
    table.print(std::cout, 2);
    return 0;
}
