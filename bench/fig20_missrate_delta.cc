/**
 * @file
 * Fig. 20: increase in LLC miss rate (percentage points) of
 * DSTRA+gNRU+DynSpill relative to the 2x sparse directory, for all
 * four tiny sizes. The paper's delta guarantee bounds these values.
 */

#include <iostream>

#include "bench_util.hh"

using namespace tinydir;
using namespace tinydir::bench;

int
main(int argc, char **argv)
{
    BenchScale scale = parseBenchScale(argc, argv);
    SystemConfig base = sparseCfg(scale, 2.0);
    const std::vector<double> sizes{1.0 / 256, 1.0 / 128, 1.0 / 64,
                                    1.0 / 32};
    std::vector<std::string> cols;
    for (double f : sizes)
        cols.push_back(sizeLabel(f));
    ResultTable table(
        "Fig. 20: LLC miss-rate increase vs sparse 2x (% points)",
        cols);
    for (const auto *app : selectApps(scale)) {
        RunOut b = runOne(base, *app, scale.accessesPerCore, scale.warmupPerCore);
        const double mr_base = b.stats.get("llc.miss_rate");
        std::vector<double> row;
        for (double f : sizes) {
            RunOut o =
                runOne(tinyCfg(scale, f, TinyPolicy::DstraGnru, true),
                       *app, scale.accessesPerCore, scale.warmupPerCore);
            row.push_back(100.0 *
                          (o.stats.get("llc.miss_rate") - mr_base));
        }
        table.addRow(app->name, std::move(row));
    }
    table.print(std::cout, 2);
    return 0;
}
