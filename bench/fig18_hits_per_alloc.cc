/**
 * @file
 * Fig. 18: hits per allocation in the tiny directory under the
 * DSTRA+gNRU policy, for all four sizes.
 */

#include <iostream>

#include "bench_util.hh"

using namespace tinydir;
using namespace tinydir::bench;

int
main(int argc, char **argv)
{
    const auto t0 = std::chrono::steady_clock::now();
    BenchScale scale = parseBenchScale(argc, argv);
    const std::vector<double> sizes{1.0 / 256, 1.0 / 128, 1.0 / 64,
                                    1.0 / 32};
    std::vector<std::string> cols;
    std::vector<SystemConfig> cfgs;
    for (double f : sizes) {
        cols.push_back(sizeLabel(f));
        cfgs.push_back(tinyCfg(scale, f, TinyPolicy::DstraGnru, false));
    }
    ResultTable table(
        "Fig. 18: tiny directory hits per allocation (DSTRA+gNRU)",
        cols);
    const auto apps = selectApps(scale);
    const auto grid = runGrid(cfgs, scale);
    for (std::size_t a = 0; a < apps.size(); ++a) {
        std::vector<double> row;
        for (std::size_t c = 0; c < cfgs.size(); ++c) {
            const RunOut &o = grid[a][c].out;
            row.push_back(o.stats.get("dir.hits") /
                          std::max(1.0, o.stats.get("dir.allocs")));
        }
        table.addRow(apps[a]->name, std::move(row));
    }
    recordGridResults(table, scale, grid, t0);
    table.print(std::cout, 1);
    return 0;
}
