/**
 * @file
 * Fig. 18: hits per allocation in the tiny directory under the
 * DSTRA+gNRU policy, for all four sizes.
 */

#include <iostream>

#include "bench_util.hh"

using namespace tinydir;
using namespace tinydir::bench;

int
main(int argc, char **argv)
{
    BenchScale scale = parseBenchScale(argc, argv);
    const std::vector<double> sizes{1.0 / 256, 1.0 / 128, 1.0 / 64,
                                    1.0 / 32};
    std::vector<std::string> cols;
    for (double f : sizes)
        cols.push_back(sizeLabel(f));
    ResultTable table(
        "Fig. 18: tiny directory hits per allocation (DSTRA+gNRU)",
        cols);
    for (const auto *app : selectApps(scale)) {
        std::vector<double> row;
        for (double f : sizes) {
            RunOut o =
                runOne(tinyCfg(scale, f, TinyPolicy::DstraGnru, false),
                       *app, scale.accessesPerCore, scale.warmupPerCore);
            row.push_back(o.stats.get("dir.hits") /
                          std::max(1.0, o.stats.get("dir.allocs")));
        }
        table.addRow(app->name, std::move(row));
    }
    table.print(std::cout, 1);
    return 0;
}
