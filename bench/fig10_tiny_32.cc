/** @file Fig. 10: tiny 1/32x directory, three policies vs sparse 2x. */

#include "tiny_size_bench.hh"

int
main(int argc, char **argv)
{
    return tinydir::bench::runTinySizeFigure(argc, argv, "Fig. 10",
                                             1.0 / 32);
}
