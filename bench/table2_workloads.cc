/** @file Prints the workload inventory (paper Table II analogue). */

#include <iomanip>
#include <iostream>

#include "bench_util.hh"
#include "workload/profile.hh"

using namespace tinydir;

int
main(int argc, char **argv)
{
    (void)parseBenchScale(argc, argv);
    std::cout << "# Table II analogue: synthetic workload profiles\n";
    std::cout << std::left << std::setw(14) << "name"
              << std::right << std::setw(8) << "ifetch"
              << std::setw(8) << "shared" << std::setw(8) << "stream"
              << std::setw(10) << "priv/core" << std::setw(10)
              << "shr/core" << std::setw(8) << "code"
              << std::setw(26) << "degree mix [2-4,5-8,9-16,17+]"
              << '\n';
    for (const auto &p : allProfiles()) {
        std::cout << std::left << std::setw(14) << p.name
                  << std::right << std::fixed << std::setprecision(2)
                  << std::setw(8) << p.ifetchFrac
                  << std::setw(8) << p.sharedFrac
                  << std::setw(8) << p.streamFrac
                  << std::setw(10) << p.privBlocksPerCore
                  << std::setw(10) << p.sharedBlocksPerCore
                  << std::setw(8) << p.codeBlocks
                  << "    [" << p.degreeMix[0] << ", "
                  << p.degreeMix[1] << ", " << p.degreeMix[2] << ", "
                  << p.degreeMix[3] << "]\n";
    }
    return 0;
}
