/**
 * @file
 * Fig. 1: execution time with 1/4x, 1/8x, 1/16x sparse directories
 * normalized to a 2x sparse directory.
 */

#include <iostream>

#include "bench_util.hh"

using namespace tinydir;
using namespace tinydir::bench;

int
main(int argc, char **argv)
{
    BenchScale scale = parseBenchScale(argc, argv);
    SystemConfig base = sparseCfg(scale, 2.0);
    std::vector<Scheme> schemes;
    for (double f : {0.25, 0.125, 1.0 / 16})
        schemes.push_back({sizeLabel(f), sparseCfg(scale, f)});
    auto table = runMatrix(
        "Fig. 1: normalized execution time, sparse directory sizing",
        scale, &base, schemes, execCyclesMetric());
    table.print(std::cout);
    return 0;
}
