/**
 * @file
 * Hot-path throughput baseline + regression guard.
 *
 * Two modes:
 *
 *  - default: measure the hot-path data structures (FlatMap vs
 *    std::unordered_map, InlineVec vs heap std::vector, SkewArray
 *    lookup) and the end-to-end quick-grid simulated-accesses/sec,
 *    then write the record to --out=FILE (default BENCH_hotpath.json,
 *    truncated) using the same JSON-lines format as TINYDIR_JSON.
 *
 *  - --guard=BASELINE.json: re-measure the quick-grid accesses/sec
 *    (best of three) and exit 1 if it regressed more than
 *    TINYDIR_PERF_TOL (default 0.20, i.e. 20%) below the committed
 *    baseline. This is the bench_perf_smoke ctest.
 *
 * Structure numbers are Mops (million operations per host second);
 * the end-to-end row is simulated accesses per host second inside
 * Driver::run. All numbers are machine-dependent: regenerate the
 * baseline with this tool when moving to new hardware.
 */

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "bench_util.hh"
#include "common/flat_map.hh"
#include "common/inline_vec.hh"
#include "common/rng.hh"
#include "common/time_wheel.hh"
#include "mem/cache_array.hh"
#include "mem/skew_array.hh"

namespace
{

using namespace tinydir;
using namespace tinydir::bench;

using Clock = std::chrono::steady_clock;

double
secondsSince(Clock::time_point t0)
{
    return std::chrono::duration<double>(Clock::now() - t0).count();
}

/** Million ops per second of @p ops operations taking @p sec. */
double
mops(std::uint64_t ops, double sec)
{
    return sec > 0.0 ? static_cast<double>(ops) / sec / 1e6 : 0.0;
}

constexpr std::uint64_t mapKeys = 1u << 16;
constexpr std::uint64_t mapOps = 4u << 20;

double
flatMapLookupMops()
{
    FlatMap<std::uint32_t> m;
    Rng rng(11);
    for (std::uint64_t i = 0; i < mapKeys; ++i)
        m[rng.below(1u << 20)] = static_cast<std::uint32_t>(i);
    Rng probe(12);
    std::uint64_t sum = 0;
    const auto t0 = Clock::now();
    for (std::uint64_t i = 0; i < mapOps; ++i) {
        const auto *v = m.find(probe.below(1u << 20));
        if (v)
            sum += *v;
    }
    const double sec = secondsSince(t0);
    if (sum == 0xdeadbeef)
        std::cerr << "";
    return mops(mapOps, sec);
}

double
unorderedMapLookupMops()
{
    std::unordered_map<Addr, std::uint32_t> m;
    Rng rng(11);
    for (std::uint64_t i = 0; i < mapKeys; ++i)
        m[rng.below(1u << 20)] = static_cast<std::uint32_t>(i);
    Rng probe(12);
    std::uint64_t sum = 0;
    const auto t0 = Clock::now();
    for (std::uint64_t i = 0; i < mapOps; ++i) {
        const auto it = m.find(probe.below(1u << 20));
        if (it != m.end())
            sum += it->second;
    }
    const double sec = secondsSince(t0);
    if (sum == 0xdeadbeef)
        std::cerr << "";
    return mops(mapOps, sec);
}

double
flatMapChurnMops()
{
    FlatMap<std::uint32_t> m;
    Rng rng(13);
    const auto t0 = Clock::now();
    for (std::uint64_t i = 0; i < mapOps; ++i) {
        const Addr k = rng.below(mapKeys);
        if (rng.chance(0.5))
            m[k] = static_cast<std::uint32_t>(i);
        else
            m.erase(k);
    }
    const double sec = secondsSince(t0);
    return mops(mapOps, sec);
}

double
unorderedMapChurnMops()
{
    std::unordered_map<Addr, std::uint32_t> m;
    Rng rng(13);
    const auto t0 = Clock::now();
    for (std::uint64_t i = 0; i < mapOps; ++i) {
        const Addr k = rng.below(mapKeys);
        if (rng.chance(0.5))
            m[k] = static_cast<std::uint32_t>(i);
        else
            m.erase(k);
    }
    const double sec = secondsSince(t0);
    return mops(mapOps, sec);
}

constexpr std::uint64_t vecRounds = 8u << 20;

/** Keep @p v live so the loop body cannot be folded away. */
inline void
sinkValue(std::uint64_t &v)
{
    asm volatile("" : "+r"(v));
}

double
inlineVecFillMops()
{
    // The chained accumulator makes each round data-dependent on the
    // previous one; without it the compiler folds the whole loop.
    std::uint64_t x = 1;
    InlineVec<std::uint64_t, 4> v;
    const auto t0 = Clock::now();
    for (std::uint64_t i = 0; i < vecRounds; ++i) {
        v.clear();
        v.push_back(x);
        v.push_back(x ^ 0x9E3779B9ull);
        x = v[0] + v[1] + (x << 1);
        sinkValue(x);
    }
    const double sec = secondsSince(t0);
    sinkValue(x);
    return mops(vecRounds, sec);
}

double
heapVectorFillMops()
{
    std::uint64_t x = 1;
    const auto t0 = Clock::now();
    for (std::uint64_t i = 0; i < vecRounds; ++i) {
        std::vector<std::uint64_t> v;
        v.push_back(x);
        v.push_back(x ^ 0x9E3779B9ull);
        x = v[0] + v[1] + (x << 1);
        sinkValue(x);
    }
    const double sec = secondsSince(t0);
    sinkValue(x);
    return mops(vecRounds, sec);
}

struct SkewEntry
{
    Addr tag = 0;
    bool valid = false;
};

double
skewLookupMops()
{
    SkewArray<SkewEntry> arr(1u << 10, 4);
    Rng rng(14);
    for (std::uint64_t i = 0; i < 3u << 10; ++i)
        arr.insert(rng.below(1u << 22)); // insert() stamps tag/valid
    Rng probe(15);
    std::uint64_t hits = 0;
    const auto t0 = Clock::now();
    for (std::uint64_t i = 0; i < mapOps; ++i) {
        if (arr.find(probe.below(1u << 22)))
            ++hits;
    }
    const double sec = secondsSince(t0);
    if (hits == 0xdeadbeef)
        std::cerr << "";
    return mops(mapOps, sec);
}

/**
 * Busy-window expiry tracking: bucketed time wheel vs the old
 * FlatMap periodic linear prune. Each op inserts one deadline a short
 * latency ahead and drains everything due at the advancing clock.
 */
double
timeWheelBusyMops()
{
    TimeWheel<Addr> wheel;
    wheel.reserve(1u << 12);
    Rng rng(16);
    Cycle now = 0;
    const auto t0 = Clock::now();
    for (std::uint64_t i = 0; i < mapOps; ++i) {
        now += 2;
        wheel.insert(now + 40 + rng.below(64), rng.below(1u << 16));
        wheel.advance(now, [](Cycle, Addr) {});
    }
    const double sec = secondsSince(t0);
    return mops(mapOps, sec);
}

double
flatMapBusyPruneMops()
{
    FlatMap<Cycle> m;
    m.reserve(1u << 12);
    Rng rng(16);
    Cycle now = 0;
    std::size_t next_prune = 64;
    const auto t0 = Clock::now();
    for (std::uint64_t i = 0; i < mapOps; ++i) {
        now += 2;
        m[rng.below(1u << 16)] = now + 40 + rng.below(64);
        if (m.size() >= next_prune) {
            m.eraseIf([&](Addr, Cycle until) { return until <= now; });
            next_prune = std::max<std::size_t>(64, 2 * m.size());
        }
    }
    const double sec = secondsSince(t0);
    if (m.size() == 0xdeadbeef)
        std::cerr << "";
    return mops(mapOps, sec);
}

/** SoA tag-lane victim scan (LRU min-stamp over a full 16-way set). */
double
soaVictimScanMops()
{
    CacheArray<SkewEntry> arr(256, 16, ReplPolicy::Lru);
    Rng rng(17);
    for (unsigned i = 0; i < 256 * 16; ++i) {
        const std::uint64_t set = rng.below(256);
        const unsigned w = arr.victimWay(set);
        arr.install(set, w, rng.below(1u << 20));
        arr.touch(set, w);
    }
    Rng probe(18);
    std::uint64_t sink = 0;
    const auto t0 = Clock::now();
    for (std::uint64_t i = 0; i < mapOps; ++i)
        sink += arr.victimWay(probe.below(256));
    const double sec = secondsSince(t0);
    if (sink == 0xdeadbeef)
        std::cerr << "";
    return mops(mapOps, sec);
}

/**
 * The fig10-style quick grid, timed. @p simThreads / @p epoch select
 * the sharded engine per simulation (1/0 = the serial driver); see
 * the threads-scaling rows in writeMode().
 */
ThroughputAgg
quickGridThroughput(unsigned simThreads = 1, Cycle epoch = 0,
                    unsigned cores = 8)
{
    BenchScale scale;
    scale.quick = true;
    scale.cores = cores;
    scale.accessesPerCore = 2000;
    scale.warmupPerCore = 1000;
    scale.jobs = 1;
    scale.controls.simThreads = simThreads;
    scale.controls.simEpoch = epoch;
    SystemConfig base = sparseCfg(scale, 2.0);
    std::vector<Scheme> schemes{
        {"DSTRA", tinyCfg(scale, 1.0 / 32, TinyPolicy::Dstra, false)},
        {"DSTRA+gNRU",
         tinyCfg(scale, 1.0 / 32, TinyPolicy::DstraGnru, false)},
        {"+DynSpill",
         tinyCfg(scale, 1.0 / 32, TinyPolicy::DstraGnru, true)},
    };
    const auto apps = selectApps(scale);
    std::vector<SimJob> jobs;
    jobs.reserve(apps.size() * (schemes.size() + 1));
    for (const auto *app : apps) {
        jobs.push_back({base, app, scale.accessesPerCore,
                        scale.warmupPerCore,
                        cellControls(scale, "baseline", app->name)});
        for (const auto &s : schemes) {
            jobs.push_back({s.cfg, app, scale.accessesPerCore,
                            scale.warmupPerCore,
                            cellControls(scale, s.label, app->name)});
        }
    }
    const auto results = runMany(jobs, 1, false);
    // aggregateThroughput drops memoized, failed and untimed cells —
    // a wallSeconds == 0 cell must never contribute accesses to a
    // quotient whose denominator does not include its time.
    return aggregateThroughput(results);
}

/** Best of @p n timed quick grids (noise floor on loaded machines). */
ThroughputAgg
bestQuickGrid(unsigned n, unsigned simThreads = 1, Cycle epoch = 0,
              unsigned cores = 8)
{
    ThroughputAgg best;
    for (unsigned i = 0; i < n; ++i) {
        const ThroughputAgg agg =
            quickGridThroughput(simThreads, epoch, cores);
        std::cerr << "# quick grid pass " << (i + 1) << "/" << n << " ("
                  << cores << " cores, threads=" << simThreads
                  << ", epoch=" << epoch << "): "
                  << static_cast<std::uint64_t>(agg.accessesPerSec())
                  << " accesses/s (" << agg.counted << " timed cells, "
                  << agg.skipped << " skipped)\n";
        if (agg.accessesPerSec() > best.accessesPerSec())
            best = agg;
    }
    return best;
}

/**
 * One 512-core cell under the relaxed sharded engine and a wall-clock
 * watchdog: the scale target the parallel engine exists for. Returns
 * simulated accesses per host second (0 when the watchdog fired).
 */
double
cores512CellAccessesPerSec()
{
    BenchScale scale;
    scale.quick = true;
    scale.cores = 512;
    scale.accessesPerCore = 200;
    scale.warmupPerCore = 100;
    const SystemConfig cfg = sparseCfg(scale, 2.0);
    const WorkloadProfile &prof = profileByName("barnes");
    RunControls ctl;
    ctl.label = "cores512 / barnes";
    ctl.timeoutSeconds = 600.0;
    ctl.simThreads = 2;
    ctl.simEpoch = 4096;
    try {
        const RunOut out =
            runOne(cfg, prof, scale.accessesPerCore,
                   scale.warmupPerCore, ctl);
        std::cerr << "# cores512 cell: " << out.accesses
                  << " accesses, "
                  << static_cast<std::uint64_t>(out.accessesPerSec)
                  << "/s, threads=" << out.simThreads << ", epochs="
                  << out.epochs << ", max skew " << out.maxObservedSkew
                  << "\n";
        return out.accessesPerSec;
    } catch (const SimError &e) {
        std::cerr << "warn: cores512 cell failed (" << e.what()
                  << "); recording 0\n";
        return 0.0;
    }
}

constexpr const char *e2eRow = "quick_grid_accesses_per_sec";

/**
 * Pull the quick-grid accesses/sec out of a BENCH_hotpath.json
 * baseline. Minimal parse: the file is our own appendJsonResults
 * output, so the row is "{\"workload\":\"<e2eRow>\",\"values\":[N]}".
 */
double
baselineAccessesPerSec(const std::string &path)
{
    std::ifstream is(path);
    if (!is) {
        std::cerr << "error: cannot read baseline " << path << "\n";
        std::exit(2);
    }
    std::stringstream ss;
    ss << is.rdbuf();
    const std::string text = ss.str();
    const std::string needle =
        std::string("\"workload\":\"") + e2eRow + "\",\"values\":[";
    const auto pos = text.find(needle);
    if (pos == std::string::npos) {
        std::cerr << "error: no " << e2eRow << " row in " << path
                  << "\n";
        std::exit(2);
    }
    return std::strtod(text.c_str() + pos + needle.size(), nullptr);
}

double
perfTolerance()
{
    if (const char *env = std::getenv("TINYDIR_PERF_TOL")) {
        char *end = nullptr;
        const double v = std::strtod(env, &end);
        if (env[0] != '\0' && end && *end == '\0' && v > 0.0 && v < 1.0)
            return v;
        std::cerr << "warn: TINYDIR_PERF_TOL must be in (0,1), "
                     "ignoring: "
                  << env << "\n";
    }
    return 0.20;
}

int
guardMode(const std::string &baselinePath)
{
    const double base = baselineAccessesPerSec(baselinePath);
    // A zero/garbage baseline makes the floor 0, which every
    // measurement — including a completely untimed one — would
    // "pass". Refuse instead of silently disarming the gate.
    if (!(base > 0.0)) {
        std::cerr << "error: baseline throughput in " << baselinePath
                  << " is zero or unparsable; the guard cannot arm — "
                     "regenerate the baseline with bench_hotpath\n";
        return 2;
    }
    const double tol = perfTolerance();
    const ThroughputAgg agg = bestQuickGrid(3);
    const double now = agg.accessesPerSec();
    // All-memoized / all-failed / clock-unresolved passes have no
    // timed cells; that is a measurement failure, never a pass.
    if (agg.counted == 0 || !(now > 0.0)) {
        std::cerr << "error: quick grid produced no timed cells ("
                  << agg.skipped
                  << " skipped as memoized/failed/untimed); refusing "
                     "to gate on a zero measurement\n";
        return 1;
    }
    const double floor = base * (1.0 - tol);
    std::cout << "baseline " << static_cast<std::uint64_t>(base)
              << " accesses/s, current "
              << static_cast<std::uint64_t>(now) << " accesses/s, floor "
              << static_cast<std::uint64_t>(floor) << " (tol "
              << tol * 100 << "%)\n";
    if (now < floor) {
        std::cerr << "error: quick-grid throughput regressed more than "
                  << tol * 100 << "% below the committed baseline ("
                  << baselinePath
                  << "); if the machine legitimately changed, "
                     "regenerate with bench_hotpath, or raise "
                     "TINYDIR_PERF_TOL\n";
        return 1;
    }
    return 0;
}

int
writeMode(const std::string &outPath)
{
    ResultTable table("hotpath: structure Mops + quick-grid accesses/s",
                      {"value"});
    struct NamedBench
    {
        const char *name;
        double (*fn)();
    };
    const NamedBench structureBenches[] = {
        {"flat_map_lookup_mops", flatMapLookupMops},
        {"unordered_map_lookup_mops", unorderedMapLookupMops},
        {"flat_map_churn_mops", flatMapChurnMops},
        {"unordered_map_churn_mops", unorderedMapChurnMops},
        {"inline_vec_fill_mops", inlineVecFillMops},
        {"heap_vector_fill_mops", heapVectorFillMops},
        {"skew_lookup_mops", skewLookupMops},
        {"time_wheel_busy_mops", timeWheelBusyMops},
        {"flat_map_busy_prune_mops", flatMapBusyPruneMops},
        {"soa_victim_scan_mops", soaVictimScanMops},
    };
    const auto t0 = Clock::now();
    for (const auto &b : structureBenches) {
        const double v = b.fn();
        std::cerr << "# " << b.name << ": " << v << "\n";
        table.addRow(b.name, {v});
    }
    const ThroughputAgg best = bestQuickGrid(3);
    table.addRow(e2eRow, {best.accessesPerSec()});

    // Threads-scaling rows: the same quick grid on the sharded
    // engine, exact (lockstep, bit-identical) and relaxed (4096-cycle
    // epochs). Absolute speedup is host-dependent — host_cpus records
    // how many CPUs these numbers had to work with (a 1-CPU container
    // cannot show parallel speedup, only overhead).
    table.addRow("host_cpus",
                 {static_cast<double>(
                     std::thread::hardware_concurrency())});
    table.addRow("quick_grid_accesses_per_sec_t2_exact",
                 {bestQuickGrid(2, 2, 0).accessesPerSec()});
    table.addRow("quick_grid_accesses_per_sec_t2_epoch4096",
                 {bestQuickGrid(2, 2, 4096).accessesPerSec()});
    table.addRow("quick_grid_accesses_per_sec_t4_epoch4096",
                 {bestQuickGrid(2, 4, 4096).accessesPerSec()});

    // Scale rows: the 64-core grid (serial reference for the scaling
    // study) and the first 512-core cell (relaxed engine + watchdog).
    table.addRow("grid64_accesses_per_sec",
                 {bestQuickGrid(1, 2, 4096, 64).accessesPerSec()});
    table.addRow("cores512_accesses_per_sec",
                 {cores512CellAccessesPerSec()});

    BenchScale scale;
    scale.quick = true;
    scale.cores = 8;
    scale.accessesPerCore = 2000;
    scale.warmupPerCore = 1000;
    scale.jobs = 1;
    BenchTiming timing;
    timing.wallSeconds = secondsSince(t0);
    timing.jobs = 1;
    // The aggregate fields mirror the best quick-grid pass (the one
    // the e2e row reports), so the top-level sim_accesses /
    // accesses_per_sec of the baseline record are consistent with it
    // instead of the zeros they used to carry.
    timing.simsRun = best.counted;
    timing.simAccesses = best.accesses;
    timing.runSeconds = best.runSeconds;
    timing.simSeconds = best.runSeconds;

    // Fresh baseline: truncate, then reuse the TINYDIR_JSON writer.
    {
        std::ofstream os(outPath, std::ios::trunc);
        if (!os) {
            std::cerr << "error: cannot write " << outPath << "\n";
            return 2;
        }
    }
    appendJsonResults(outPath, table, scale, timing);
    table.print(std::cout, 4, /*with_average=*/false);
    std::cout << "wrote " << outPath << "\n";
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    std::string out = "BENCH_hotpath.json";
    std::string guard;
    for (int i = 1; i < argc; ++i) {
        const char *a = argv[i];
        if (std::strncmp(a, "--out=", 6) == 0) {
            out = a + 6;
        } else if (std::strncmp(a, "--guard=", 8) == 0) {
            guard = a + 8;
        } else {
            std::cerr << "usage: bench_hotpath [--out=FILE | "
                         "--guard=BASELINE.json]\n";
            return 2;
        }
    }
    if (!guard.empty())
        return guardMode(guard);
    return writeMode(out);
}
