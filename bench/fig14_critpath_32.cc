/** @file Fig. 14: lengthened-access share with a 1/32x tiny directory. */

#include "critpath_bench.hh"

int
main(int argc, char **argv)
{
    return tinydir::bench::runCritpathFigure(argc, argv, "Fig. 14",
                                             1.0 / 32);
}
