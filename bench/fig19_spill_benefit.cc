/**
 * @file
 * Fig. 19: percentage of LLC accesses that avoid a lengthened
 * critical path thanks to spilled directory entries
 * (DSTRA+gNRU+DynSpill), for all four tiny sizes.
 */

#include <iostream>

#include "bench_util.hh"

using namespace tinydir;
using namespace tinydir::bench;

int
main(int argc, char **argv)
{
    BenchScale scale = parseBenchScale(argc, argv);
    const std::vector<double> sizes{1.0 / 256, 1.0 / 128, 1.0 / 64,
                                    1.0 / 32};
    std::vector<Scheme> schemes;
    for (double f : sizes) {
        schemes.push_back(
            {sizeLabel(f),
             tinyCfg(scale, f, TinyPolicy::DstraGnru, true)});
    }
    auto metric = [](const RunOut &o) {
        return 100.0 * o.stats.get("spill.saved_frac");
    };
    auto table = runMatrix(
        "Fig. 19: % LLC accesses saved by spilled entries",
        scale, nullptr, schemes, metric);
    table.print(std::cout, 2);
    return 0;
}
