/** @file Fig. 16: tiny directory hits, DSTRA+gNRU normalized to DSTRA. */

#include "gnru_ratio_bench.hh"

int
main(int argc, char **argv)
{
    return tinydir::bench::runGnruRatioFigure(
        argc, argv,
        "Fig. 16: tiny directory hits, DSTRA+gNRU / DSTRA",
        "dir.hits");
}
