/**
 * @file
 * Fig. 5: interconnect traffic (bytes) of in-LLC tracking split into
 * processor / writeback / coherence classes, normalized to the total
 * traffic of the 2x sparse directory baseline.
 */

#include <iostream>

#include "bench_util.hh"

using namespace tinydir;
using namespace tinydir::bench;

int
main(int argc, char **argv)
{
    const auto t0 = std::chrono::steady_clock::now();
    BenchScale scale = parseBenchScale(argc, argv);
    SystemConfig base = sparseCfg(scale, 2.0);
    SystemConfig illc = baseConfig(scale);
    illc.tracker = TrackerKind::InLlc;

    ResultTable table(
        "Fig. 5: interconnect traffic by class, normalized to the "
        "sparse 2x total",
        {"base:proc", "base:wb", "base:coh", "inllc:proc", "inllc:wb",
         "inllc:coh", "inllc:total"});
    const auto apps = selectApps(scale);
    const auto grid = runGrid({base, illc}, scale);
    for (std::size_t a = 0; a < apps.size(); ++a) {
        const RunOut &b = grid[a][0].out;
        const RunOut &o = grid[a][1].out;
        const double total =
            std::max(1.0, b.stats.get("traffic.total.bytes"));
        table.addRow(
            apps[a]->name,
            {b.stats.get("traffic.processor.bytes") / total,
             b.stats.get("traffic.writeback.bytes") / total,
             b.stats.get("traffic.coherence.bytes") / total,
             o.stats.get("traffic.processor.bytes") / total,
             o.stats.get("traffic.writeback.bytes") / total,
             o.stats.get("traffic.coherence.bytes") / total,
             o.stats.get("traffic.total.bytes") / total});
    }
    recordGridResults(table, scale, grid, t0);
    table.print(std::cout);
    return 0;
}
