/**
 * @file
 * Fig. 5: interconnect traffic (bytes) of in-LLC tracking split into
 * processor / writeback / coherence classes, normalized to the total
 * traffic of the 2x sparse directory baseline.
 */

#include <iostream>

#include "bench_util.hh"

using namespace tinydir;
using namespace tinydir::bench;

int
main(int argc, char **argv)
{
    BenchScale scale = parseBenchScale(argc, argv);
    SystemConfig base = sparseCfg(scale, 2.0);
    SystemConfig illc = baseConfig(scale);
    illc.tracker = TrackerKind::InLlc;

    ResultTable table(
        "Fig. 5: interconnect traffic by class, normalized to the "
        "sparse 2x total",
        {"base:proc", "base:wb", "base:coh", "inllc:proc", "inllc:wb",
         "inllc:coh", "inllc:total"});
    for (const auto *app : selectApps(scale)) {
        RunOut b = runOne(base, *app, scale.accessesPerCore, scale.warmupPerCore);
        RunOut o = runOne(illc, *app, scale.accessesPerCore, scale.warmupPerCore);
        const double total =
            std::max(1.0, b.stats.get("traffic.total.bytes"));
        table.addRow(
            app->name,
            {b.stats.get("traffic.processor.bytes") / total,
             b.stats.get("traffic.writeback.bytes") / total,
             b.stats.get("traffic.coherence.bytes") / total,
             o.stats.get("traffic.processor.bytes") / total,
             o.stats.get("traffic.writeback.bytes") / total,
             o.stats.get("traffic.coherence.bytes") / total,
             o.stats.get("traffic.total.bytes") / total});
    }
    table.print(std::cout);
    return 0;
}
