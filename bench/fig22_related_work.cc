/**
 * @file
 * Fig. 22: execution time of the multi-grain directory (MgD, 1/8x ..
 * 1/64x, skew-associative) and the Stash directory (1/32x),
 * normalized to a 2x sparse directory.
 */

#include <iostream>

#include "bench_util.hh"

using namespace tinydir;
using namespace tinydir::bench;

int
main(int argc, char **argv)
{
    BenchScale scale = parseBenchScale(argc, argv);
    SystemConfig base = sparseCfg(scale, 2.0);
    std::vector<Scheme> schemes;
    for (double f : {0.125, 1.0 / 16, 1.0 / 32, 1.0 / 64}) {
        SystemConfig cfg = baseConfig(scale);
        cfg.tracker = TrackerKind::Mgd;
        cfg.dirSizeFactor = f;
        cfg.dirSkewed = true;
        cfg.dirAssoc = 4;
        schemes.push_back({"MgD " + sizeLabel(f), cfg});
    }
    {
        SystemConfig cfg = baseConfig(scale);
        cfg.tracker = TrackerKind::Stash;
        cfg.dirSizeFactor = 1.0 / 32;
        schemes.push_back({"Stash 1/32x", cfg});
    }
    // The paper's own design at the same size, for reference.
    schemes.push_back(
        {"tiny 1/32x",
         tinyCfg(scale, 1.0 / 32, TinyPolicy::DstraGnru, true)});
    auto table = runMatrix(
        "Fig. 22: normalized execution time, related proposals",
        scale, &base, schemes, execCyclesMetric());
    table.print(std::cout);
    return 0;
}
