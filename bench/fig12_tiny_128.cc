/** @file Fig. 12: tiny 1/128x directory, three policies vs sparse 2x. */

#include "tiny_size_bench.hh"

int
main(int argc, char **argv)
{
    return tinydir::bench::runTinySizeFigure(argc, argv, "Fig. 12",
                                             1.0 / 128);
}
