/** @file Fig. 13: tiny 1/256x directory, three policies vs sparse 2x. */

#include "tiny_size_bench.hh"

int
main(int argc, char **argv)
{
    return tinydir::bench::runTinySizeFigure(argc, argv, "Fig. 13",
                                             1.0 / 256);
}
