/**
 * @file
 * Fig. 3: execution time with sparse directories that track shared
 * blocks only (1/16x .. 1/128x; non-shared tracking is free),
 * normalized to a conventional 2x sparse directory. Includes the
 * 4-way skew-associative (H3/ZCache) variants the paper reports for
 * 1/16x .. 1/64x.
 */

#include <iostream>

#include "bench_util.hh"

using namespace tinydir;
using namespace tinydir::bench;

int
main(int argc, char **argv)
{
    BenchScale scale = parseBenchScale(argc, argv);
    SystemConfig base = sparseCfg(scale, 2.0);
    std::vector<Scheme> schemes;
    for (double f : {1.0 / 16, 1.0 / 32, 1.0 / 64, 1.0 / 128}) {
        SystemConfig cfg = baseConfig(scale);
        cfg.tracker = TrackerKind::SharedOnlyDir;
        cfg.dirSizeFactor = f;
        schemes.push_back({sizeLabel(f), cfg});
    }
    for (double f : {1.0 / 16, 1.0 / 32, 1.0 / 64}) {
        SystemConfig cfg = baseConfig(scale);
        cfg.tracker = TrackerKind::SharedOnlyDir;
        cfg.dirSizeFactor = f;
        cfg.dirSkewed = true;
        cfg.dirAssoc = 4;
        schemes.push_back({sizeLabel(f) + " skew", cfg});
    }
    auto table = runMatrix(
        "Fig. 3: normalized execution time, shared-only directories",
        scale, &base, schemes, execCyclesMetric());
    table.print(std::cout);
    return 0;
}
