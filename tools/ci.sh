#!/usr/bin/env bash
# Single-entry CI gate. Runs, in order:
#   1. configure + build (default preset, build/)
#   2. ctest -L fast        (unit/integration tests, tdlint, header TUs)
#   3. ctest -L ckpt        (checkpoint save->load->continue
#      bit-identity + warmup fast-forward equivalence)
#   4. ctest -L parallel    (sharded-engine differential matrix +
#      grid-scale thread-count determinism)
#   5. tdlint over the tree (redundant with the ctest, but surfaces
#      diagnostics directly in the log even when ctest output is terse)
#   6. fuzz_smoke under the asan preset (build-asan/)
#   7. tsan-parallel: the contention-heavy ParallelTsan.* subset under
#      the tsan preset (build-tsan/)
#   8. perf: bench_perf_smoke under the release-perf preset
#      (build-perf/). Re-measures the quick-grid throughput and fails
#      if it regresses more than TINYDIR_PERF_TOL (default 20%) below
#      the committed BENCH_hotpath.json baseline.
#
# Usage: tools/ci.sh [--skip-asan] [--skip-tsan] [--skip-perf]
# Any failure stops the script (set -e); the failing stage is the last
# banner printed.

set -euo pipefail
cd "$(dirname "$0")/.."

SKIP_ASAN=0
SKIP_TSAN=0
SKIP_PERF=0
for arg in "$@"; do
    case "$arg" in
        --skip-asan) SKIP_ASAN=1 ;;
        --skip-tsan) SKIP_TSAN=1 ;;
        --skip-perf) SKIP_PERF=1 ;;
        *) echo "usage: tools/ci.sh [--skip-asan] [--skip-tsan]" \
                "[--skip-perf]" >&2
           exit 2 ;;
    esac
done

banner() { printf '\n=== %s ===\n' "$*"; }

banner "configure + build (default)"
cmake -B build -S . >/dev/null
cmake --build build -j "$(nproc)"

banner "ctest -L fast"
ctest --test-dir build -L fast --output-on-failure -j "$(nproc)"

banner "ctest -L ckpt (checkpoint bit-identity)"
ctest --test-dir build -L ckpt --output-on-failure

banner "ctest -L parallel (sharded engine vs serial oracle)"
ctest --test-dir build -L parallel --output-on-failure

banner "tdlint"
./build/tools/tdlint --root .

if [ "$SKIP_ASAN" = 0 ]; then
    banner "fuzz_smoke (asan)"
    cmake --preset asan >/dev/null
    cmake --build build-asan -j "$(nproc)" --target fuzz_traces
    ctest --test-dir build-asan -R fuzz_smoke --output-on-failure
fi

if [ "$SKIP_TSAN" = 0 ]; then
    banner "tsan-parallel (ThreadSanitizer over the sharded engine)"
    cmake --preset tsan >/dev/null
    cmake --build build-tsan -j "$(nproc)" --target tinydir_tests
    ctest --test-dir build-tsan -L tsan-parallel --output-on-failure
fi

if [ "$SKIP_PERF" = 0 ]; then
    banner "perf (release-perf, tolerance ${TINYDIR_PERF_TOL:-0.20})"
    cmake --preset release-perf >/dev/null
    cmake --build build-perf -j "$(nproc)" --target bench_hotpath
    # The guard re-runs the quick grid and compares accesses/sec with
    # the committed baseline; TINYDIR_PERF_TOL is read by the binary.
    ctest --test-dir build-perf -R '^bench_perf_smoke$' \
        --output-on-failure
fi

banner "CI gate passed"
