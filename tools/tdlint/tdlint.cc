/**
 * @file
 * tdlint implementation: lexer, lightweight function/call-graph model,
 * and the five checks described in tdlint.hh.
 *
 * This is a token-level approximation, not a compiler frontend. The
 * known over/under-approximations are documented in DESIGN.md
 * ("Static analysis"); fixtures in tests/lint_fixtures pin the
 * behaviour each check must have.
 */

#include "tdlint/tdlint.hh"

#include <algorithm>
#include <cctype>
#include <filesystem>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <stdexcept>

namespace tdlint
{

namespace
{

// ---------------------------------------------------------------------------
// Lexer
// ---------------------------------------------------------------------------

enum class Tok : unsigned char
{
    Ident,
    Number,
    Str,
    Chr,
    Punct,
};

struct Token
{
    Tok kind;
    std::string text;
    int line;
};

/** A parsed `// TDLINT:` directive. */
struct Directive
{
    enum Kind { Hot, HotSafe, Cold, Allow, Malformed } kind = Malformed;
    std::vector<std::string> allowChecks;
    std::string error;   //!< for Malformed: what was wrong
    int line = 0;
    bool ownLine = false; //!< comment was alone on its line
    mutable bool used = false;
};

struct SourceFile
{
    std::string path; //!< relative to the lint root
    std::vector<Token> toks;
    std::vector<Directive> directives;
    /** Quoted includes as written (repo-relative under src/). */
    std::vector<std::string> quotedIncludes;
    /** Angled includes as written (std / system headers). */
    std::vector<std::string> angledIncludes;
    /** First #ifndef / #define pair, for the guard check. */
    std::string guardIfndef, guardDefine;
    bool sawPreprocessor = false;
};

bool
identChar(char c)
{
    return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

/** Parse the text after "TDLINT:" into a directive. */
Directive
parseDirective(const std::string &body, int line, bool own_line)
{
    Directive d;
    d.line = line;
    d.ownLine = own_line;
    std::string s = body;
    // Trim.
    while (!s.empty() && std::isspace(static_cast<unsigned char>(s.front())))
        s.erase(s.begin());
    while (!s.empty() && std::isspace(static_cast<unsigned char>(s.back())))
        s.pop_back();
    if (s == "hot") {
        d.kind = Directive::Hot;
    } else if (s == "hot-safe") {
        d.kind = Directive::HotSafe;
    } else if (s == "cold") {
        d.kind = Directive::Cold;
    } else if (s.rfind("allow(", 0) == 0) {
        const auto close = s.find(')');
        if (close == std::string::npos) {
            d.error = "allow() missing closing parenthesis";
            return d;
        }
        std::string list = s.substr(6, close - 6);
        std::string rest = s.substr(close + 1);
        if (rest.empty() || rest[0] != ':') {
            d.error = "allow() requires a ': <justification>' suffix";
            return d;
        }
        rest.erase(rest.begin());
        while (!rest.empty() &&
               std::isspace(static_cast<unsigned char>(rest.front())))
            rest.erase(rest.begin());
        if (rest.empty()) {
            d.error = "allow() justification must not be empty";
            return d;
        }
        std::stringstream ls(list);
        std::string item;
        while (std::getline(ls, item, ',')) {
            while (!item.empty() && std::isspace(
                       static_cast<unsigned char>(item.front())))
                item.erase(item.begin());
            while (!item.empty() && std::isspace(
                       static_cast<unsigned char>(item.back())))
                item.pop_back();
            if (item.empty())
                continue;
            if (std::find(allChecks().begin(), allChecks().end(), item) ==
                allChecks().end()) {
                d.error = "allow() names unknown check '" + item + "'";
                return d;
            }
            d.allowChecks.push_back(item);
        }
        if (d.allowChecks.empty()) {
            d.error = "allow() lists no checks";
            return d;
        }
        d.kind = Directive::Allow;
    } else {
        d.error = "unknown TDLINT directive '" + s + "'";
    }
    return d;
}

/** Lex one file: tokens, directives, includes, guard. */
void
lex(const std::string &src, SourceFile &out)
{
    const std::size_t n = src.size();
    std::size_t i = 0;
    int line = 1;
    bool tokenOnLine = false;
    auto newline = [&]() {
        ++line;
        tokenOnLine = false;
    };
    while (i < n) {
        const char c = src[i];
        if (c == '\n') {
            newline();
            ++i;
            continue;
        }
        if (std::isspace(static_cast<unsigned char>(c))) {
            ++i;
            continue;
        }
        // Preprocessor line (only at start of line logically; good
        // enough to treat any '#' as one since '#' appears nowhere
        // else outside strings in this codebase).
        if (c == '#') {
            out.sawPreprocessor = true;
            std::size_t j = i + 1;
            while (j < n && std::isspace(static_cast<unsigned char>(src[j])) &&
                   src[j] != '\n')
                ++j;
            std::string word;
            while (j < n && identChar(src[j]))
                word += src[j++];
            while (j < n && std::isspace(static_cast<unsigned char>(src[j])) &&
                   src[j] != '\n')
                ++j;
            if (word == "include" && j < n) {
                const char open = src[j];
                const char close = open == '<' ? '>' : '"';
                if (open == '<' || open == '"') {
                    std::string path;
                    ++j;
                    while (j < n && src[j] != close && src[j] != '\n')
                        path += src[j++];
                    if (open == '<')
                        out.angledIncludes.push_back(path);
                    else
                        out.quotedIncludes.push_back(path);
                }
            } else if (word == "ifndef" || word == "define") {
                std::string sym;
                std::size_t k = j;
                while (k < n && identChar(src[k]))
                    sym += src[k++];
                if (word == "ifndef" && out.guardIfndef.empty())
                    out.guardIfndef = sym;
                else if (word == "define" && out.guardDefine.empty() &&
                         !out.guardIfndef.empty())
                    out.guardDefine = sym;
            }
            // Consume to end of line, honouring continuations.
            while (i < n && src[i] != '\n') {
                if (src[i] == '\\' && i + 1 < n && src[i + 1] == '\n') {
                    i += 2;
                    newline();
                    continue;
                }
                ++i;
            }
            continue;
        }
        if (c == '/' && i + 1 < n && src[i + 1] == '/') {
            std::size_t j = i + 2;
            std::string text;
            while (j < n && src[j] != '\n')
                text += src[j++];
            const auto pos = text.find("TDLINT:");
            if (pos != std::string::npos) {
                out.directives.push_back(parseDirective(
                    text.substr(pos + 7), line, !tokenOnLine));
            }
            i = j;
            continue;
        }
        if (c == '/' && i + 1 < n && src[i + 1] == '*') {
            std::size_t j = i + 2;
            std::string text;
            while (j + 1 < n && !(src[j] == '*' && src[j + 1] == '/')) {
                if (src[j] == '\n')
                    newline();
                text += src[j++];
            }
            const auto pos = text.find("TDLINT:");
            if (pos != std::string::npos) {
                // Block-comment directives attach to the comment's
                // closing line (conservative; the repo uses //-form).
                auto end = text.find('\n', pos);
                out.directives.push_back(parseDirective(
                    text.substr(pos + 7, end == std::string::npos
                                             ? std::string::npos
                                             : end - pos - 7),
                    line, !tokenOnLine));
            }
            i = j + 2;
            continue;
        }
        tokenOnLine = true;
        if (c == '"') {
            // Raw string?
            bool raw = false;
            if (i > 0 && src[i - 1] == 'R' &&
                (i < 2 || !identChar(src[i - 2])))
                raw = true;
            std::size_t j = i + 1;
            if (raw) {
                std::string delim;
                while (j < n && src[j] != '(')
                    delim += src[j++];
                const std::string closer = ")" + delim + "\"";
                const auto endPos = src.find(closer, j);
                for (std::size_t k = j;
                     k < std::min(n, endPos == std::string::npos
                                         ? n
                                         : endPos + closer.size());
                     ++k) {
                    if (src[k] == '\n')
                        newline();
                }
                j = endPos == std::string::npos ? n
                                                : endPos + closer.size();
            } else {
                while (j < n && src[j] != '"') {
                    if (src[j] == '\\')
                        ++j;
                    else if (src[j] == '\n')
                        newline();
                    ++j;
                }
                ++j;
            }
            out.toks.push_back({Tok::Str, "", line});
            i = j;
            continue;
        }
        if (c == '\'') {
            std::size_t j = i + 1;
            while (j < n && src[j] != '\'') {
                if (src[j] == '\\')
                    ++j;
                ++j;
            }
            out.toks.push_back({Tok::Chr, "", line});
            i = j + 1;
            continue;
        }
        if (identChar(c) && !std::isdigit(static_cast<unsigned char>(c))) {
            std::string text;
            std::size_t j = i;
            while (j < n && identChar(src[j]))
                text += src[j++];
            out.toks.push_back({Tok::Ident, text, line});
            i = j;
            continue;
        }
        if (std::isdigit(static_cast<unsigned char>(c))) {
            std::string text;
            std::size_t j = i;
            while (j < n && (identChar(src[j]) || src[j] == '.' ||
                             ((src[j] == '+' || src[j] == '-') && j > i &&
                              (src[j - 1] == 'e' || src[j - 1] == 'E' ||
                               src[j - 1] == 'p' || src[j - 1] == 'P'))))
                text += src[j++];
            out.toks.push_back({Tok::Number, text, line});
            i = j;
            continue;
        }
        // Punctuation; combine only '::' and '->' (template-angle
        // arithmetic elsewhere wants single chars).
        if (c == ':' && i + 1 < n && src[i + 1] == ':') {
            out.toks.push_back({Tok::Punct, "::", line});
            i += 2;
            continue;
        }
        if (c == '-' && i + 1 < n && src[i + 1] == '>') {
            out.toks.push_back({Tok::Punct, "->", line});
            i += 2;
            continue;
        }
        out.toks.push_back({Tok::Punct, std::string(1, c), line});
        ++i;
    }
}

// ---------------------------------------------------------------------------
// Function / struct model
// ---------------------------------------------------------------------------

struct CallSite
{
    std::string name;
    int line;
};

struct StdUse
{
    std::string name; //!< identifier after `std::`
    int line;
};

struct Function
{
    std::string qualName;  //!< Scope::name as written
    std::string simpleName;
    int fileIdx = -1;
    int startLine = 0;
    bool hot = false;
    bool hotSafe = false;
    bool cold = false;
    std::vector<CallSite> calls;
    std::vector<StdUse> stdUses;
    std::vector<int> newLines;      //!< lines with a `new` expression
    std::set<std::string> identSet; //!< all identifiers in the body
    std::set<std::string> headerIdents; //!< identifiers in the signature
    /** `throw <Type>` sites: (type simple name, line); "" = rethrow. */
    std::vector<std::pair<std::string, int>> throwSites;
};

struct StatsStruct
{
    std::string name;
    int fileIdx = -1;
    int line = 0;
    /** (member name, declaration line). */
    std::vector<std::pair<std::string, int>> members;
};

struct Model
{
    std::vector<SourceFile> files;
    std::vector<Function> funcs;
    std::vector<StatsStruct> statsStructs;
    std::map<std::string, std::vector<int>> byName; //!< simple name -> funcs
};

const std::set<std::string> &
keywordSet()
{
    static const std::set<std::string> kw = {
        "if", "for", "while", "switch", "return", "sizeof", "alignof",
        "catch", "static_assert", "decltype", "static_cast",
        "dynamic_cast", "reinterpret_cast", "const_cast", "new",
        "delete", "throw", "case", "default", "do", "else", "goto",
        "typeid", "alignas", "noexcept", "requires", "co_await",
        "co_return", "co_yield", "defined", "assert",
    };
    return kw;
}

/** Skip from an opening bracket to just past its match. */
std::size_t
skipBalanced(const std::vector<Token> &t, std::size_t i, const char *open,
             const char *close)
{
    int depth = 0;
    const std::size_t n = t.size();
    for (; i < n; ++i) {
        if (t[i].kind == Tok::Punct) {
            if (t[i].text == open)
                ++depth;
            else if (t[i].text == close && --depth == 0)
                return i + 1;
        }
    }
    return n;
}

/** Scan a function body, collecting call sites and banned tokens. */
std::size_t
scanBody(const std::vector<Token> &t, std::size_t open, Function &fn)
{
    int depth = 0;
    const std::size_t n = t.size();
    std::size_t i = open;
    for (; i < n; ++i) {
        const Token &tok = t[i];
        if (tok.kind == Tok::Punct) {
            if (tok.text == "{")
                ++depth;
            else if (tok.text == "}" && --depth == 0) {
                ++i;
                break;
            }
            continue;
        }
        if (tok.kind != Tok::Ident)
            continue;
        fn.identSet.insert(tok.text);
        if (tok.text == "new") {
            fn.newLines.push_back(tok.line);
            continue;
        }
        if (tok.text == "throw") {
            // Extract the thrown type's simple name: the last
            // identifier of the qualifier chain before '(' or '{'.
            std::string type;
            std::size_t j = i + 1;
            while (j < n) {
                const Token &u = t[j];
                if (u.kind == Tok::Ident) {
                    type = u.text;
                    ++j;
                    continue;
                }
                if (u.kind == Tok::Punct && u.text == "::") {
                    ++j;
                    continue;
                }
                break;
            }
            fn.throwSites.emplace_back(type, tok.line);
            continue;
        }
        if (tok.text == "std" && i + 2 < n && t[i + 1].kind == Tok::Punct &&
            t[i + 1].text == "::" && t[i + 2].kind == Tok::Ident) {
            fn.stdUses.push_back({t[i + 2].text, t[i + 2].line});
        }
        if (i + 1 < n && t[i + 1].kind == Tok::Punct &&
            t[i + 1].text == "(" && !keywordSet().count(tok.text)) {
            fn.calls.push_back({tok.text, tok.line});
        }
    }
    // Function-try-block / trailing catch clauses: consume
    // `catch (...) { ... }` sequences that belong to this function.
    while (i < n && t[i].kind == Tok::Ident && t[i].text == "catch") {
        std::size_t j = i + 1;
        if (j < n && t[j].kind == Tok::Punct && t[j].text == "(")
            j = skipBalanced(t, j, "(", ")");
        if (j < n && t[j].kind == Tok::Punct && t[j].text == "{") {
            // The catch body is part of the function for call/ident
            // purposes; recurse through the same scanner.
            Function sub;
            j = scanBody(t, j, sub);
            for (const auto &c : sub.calls)
                fn.calls.push_back(c);
            for (const auto &s : sub.stdUses)
                fn.stdUses.push_back(s);
            for (int l : sub.newLines)
                fn.newLines.push_back(l);
            for (const auto &th : sub.throwSites)
                fn.throwSites.push_back(th);
            fn.identSet.insert(sub.identSet.begin(), sub.identSet.end());
        }
        i = j;
    }
    return i;
}

/** Collect member declarations of a stats struct body. */
void
collectMembers(const std::vector<Token> &t, std::size_t open,
               std::size_t close, StatsStruct &ss)
{
    // Walk depth-1 tokens, splitting statements at ';'. Tokens inside
    // nested braces (member function bodies, braced initializers) and
    // parens are skipped; a statement that contained a '(' at depth 1
    // is a function declaration/definition, not a data member.
    std::vector<const Token *> stmt;
    bool sawParen = false;
    bool skip = false;
    int depth = 0;
    for (std::size_t i = open; i < close; ++i) {
        const Token &tok = t[i];
        if (tok.kind == Tok::Punct) {
            if (tok.text == "{" || tok.text == "(") {
                if (tok.text == "(" && depth == 0)
                    sawParen = true;
                ++depth;
                continue;
            }
            if (tok.text == "}" || tok.text == ")") {
                --depth;
                continue;
            }
            if (depth > 0)
                continue;
            if (tok.text == ";") {
                if (!skip && !sawParen && !stmt.empty()) {
                    // Multi-declarator split at top-level commas;
                    // angle depth guards template argument commas.
                    int angle = 0;
                    const Token *last = nullptr;
                    bool afterEq = false;
                    auto flush = [&]() {
                        if (last)
                            ss.members.emplace_back(last->text, last->line);
                        last = nullptr;
                        afterEq = false;
                    };
                    for (const Token *p : stmt) {
                        if (p->kind == Tok::Punct) {
                            if (p->text == "<")
                                ++angle;
                            else if (p->text == ">")
                                --angle;
                            else if (p->text == "," && angle == 0)
                                flush();
                            else if (p->text == "=")
                                afterEq = true;
                            continue;
                        }
                        if (p->kind == Tok::Ident && !afterEq)
                            last = p;
                    }
                    flush();
                }
                stmt.clear();
                sawParen = false;
                skip = false;
                continue;
            }
            if (tok.text == ":" && stmt.size() == 1 &&
                stmt[0]->kind == Tok::Ident &&
                (stmt[0]->text == "public" || stmt[0]->text == "private" ||
                 stmt[0]->text == "protected")) {
                stmt.clear();
                continue;
            }
            stmt.push_back(&tok);
            continue;
        }
        if (depth > 0)
            continue;
        if (tok.kind == Tok::Ident && stmt.empty() &&
            (tok.text == "using" || tok.text == "typedef" ||
             tok.text == "friend" || tok.text == "template" ||
             tok.text == "static" || tok.text == "enum" ||
             tok.text == "struct" || tok.text == "class"))
            skip = true;
        stmt.push_back(&tok);
    }
}

/**
 * Find the annotation (hot/hot-safe/cold) closest above a function
 * definition; directives bind to definitions within 3 lines below.
 */
void
applyAnnotations(const SourceFile &sf, Function &fn)
{
    for (const Directive &d : sf.directives) {
        if (d.kind != Directive::Hot && d.kind != Directive::HotSafe &&
            d.kind != Directive::Cold)
            continue;
        if (d.line <= fn.startLine && fn.startLine - d.line <= 3) {
            d.used = true;
            if (d.kind == Directive::Hot)
                fn.hot = true;
            else if (d.kind == Directive::HotSafe)
                fn.hotSafe = true;
            else
                fn.cold = true;
        }
    }
}

/** Parse one file's token stream into functions and stats structs. */
void
parseFile(Model &m, int file_idx)
{
    const SourceFile &sf = m.files[file_idx];
    const std::vector<Token> &t = sf.toks;
    const std::size_t n = t.size();

    struct Scope
    {
        std::string name; //!< empty for anonymous / block scopes
        bool isClass = false;
    };
    std::vector<Scope> scopes;

    auto qualify = [&](const std::string &name) {
        std::string q;
        for (const auto &s : scopes) {
            if (!s.name.empty() && s.isClass)
                q += s.name + "::";
        }
        return q + name;
    };

    std::size_t i = 0;
    while (i < n) {
        const Token &tok = t[i];
        if (tok.kind == Tok::Punct) {
            if (tok.text == "{") {
                scopes.push_back({});
                ++i;
            } else if (tok.text == "}") {
                if (!scopes.empty())
                    scopes.pop_back();
                ++i;
            } else {
                ++i;
            }
            continue;
        }
        if (tok.kind != Tok::Ident) {
            ++i;
            continue;
        }
        const std::string &kw = tok.text;
        if (kw == "namespace") {
            std::size_t j = i + 1;
            std::string name;
            if (j < n && t[j].kind == Tok::Ident)
                name = t[j++].text;
            while (j < n &&
                   !(t[j].kind == Tok::Punct &&
                     (t[j].text == "{" || t[j].text == ";")))
                ++j;
            if (j < n && t[j].text == "{") {
                scopes.push_back({name, false});
                i = j + 1;
            } else {
                i = j + 1;
            }
            continue;
        }
        if (kw == "class" || kw == "struct" || kw == "union" ||
            kw == "enum") {
            // `enum class X : base {` / `struct X : public Y {` /
            // forward declarations / `struct X *p;` uses.
            std::size_t j = i + 1;
            if (j < n && t[j].kind == Tok::Ident && t[j].text == "class")
                ++j; // enum class
            std::string name;
            if (j < n && t[j].kind == Tok::Ident)
                name = t[j++].text;
            // Find '{' or ';' at angle depth 0 (base clauses may
            // contain templates).
            int angle = 0;
            while (j < n) {
                if (t[j].kind == Tok::Punct) {
                    if (t[j].text == "<")
                        ++angle;
                    else if (t[j].text == ">")
                        --angle;
                    else if (angle == 0 &&
                             (t[j].text == "{" || t[j].text == ";" ||
                              t[j].text == ")" || t[j].text == ","))
                        break;
                }
                ++j;
            }
            if (j >= n || t[j].text != "{") {
                // Forward declaration or `struct X` used as a type
                // (e.g. in a parameter list): not a definition.
                i = j + 1;
                continue;
            }
            if (kw == "enum") {
                i = skipBalanced(t, j, "{", "}");
                continue;
            }
            const bool isStats =
                !name.empty() &&
                ((name.size() > 5 &&
                  name.compare(name.size() - 5, 5, "Stats") == 0) ||
                 (name.size() > 10 &&
                  name.compare(name.size() - 10, 10, "Histograms") == 0));
            if (isStats) {
                StatsStruct ss;
                ss.name = name;
                ss.fileIdx = file_idx;
                ss.line = tok.line;
                const std::size_t end = skipBalanced(t, j, "{", "}") - 1;
                collectMembers(t, j + 1, end, ss);
                m.statsStructs.push_back(std::move(ss));
            }
            scopes.push_back({name, true});
            i = j + 1;
            continue;
        }
        if (kw == "template") {
            std::size_t j = i + 1;
            if (j < n && t[j].kind == Tok::Punct && t[j].text == "<") {
                int angle = 0;
                while (j < n) {
                    if (t[j].kind == Tok::Punct) {
                        if (t[j].text == "<")
                            ++angle;
                        else if (t[j].text == ">" && --angle == 0) {
                            ++j;
                            break;
                        }
                    }
                    ++j;
                }
            }
            i = j;
            continue;
        }
        if ((kw == "public" || kw == "private" || kw == "protected") &&
            i + 1 < n && t[i + 1].kind == Tok::Punct &&
            t[i + 1].text == ":") {
            i += 2;
            continue;
        }
        if (kw == "using" || kw == "typedef") {
            while (i < n &&
                   !(t[i].kind == Tok::Punct && t[i].text == ";"))
                ++i;
            ++i;
            continue;
        }

        // Candidate function (or variable, or statement): find the
        // first '(' in this statement at angle depth 0.
        std::size_t j = i;
        int angle = 0;
        std::size_t paren = 0;
        bool found = false;
        while (j < n) {
            const Token &u = t[j];
            if (u.kind == Tok::Punct) {
                if (u.text == "<")
                    ++angle;
                else if (u.text == ">")
                    --angle;
                else if (u.text == ";" || u.text == "{" || u.text == "}")
                    break;
                else if (u.text == "(" && angle <= 0) {
                    paren = j;
                    found = true;
                    break;
                } else if (u.text == "=") {
                    break; // variable initialization
                }
            }
            ++j;
        }
        if (!found) {
            // Not a function header; skip this statement. `{` starts
            // a scope the main loop will handle.
            if (j < n && t[j].kind == Tok::Punct && t[j].text == ";")
                ++j;
            i = std::max(j, i + 1);
            continue;
        }
        // Name: identifier (or operator cluster) before '('.
        std::string name;
        int nameLine = t[paren].line;
        std::size_t k = paren;
        if (k > i) {
            const Token &prev = t[k - 1];
            if (prev.kind == Tok::Ident) {
                name = prev.text;
                nameLine = prev.line;
                if (k >= 2 && t[k - 2].kind == Tok::Punct &&
                    t[k - 2].text == "~")
                    name = "~" + name;
            } else if (prev.kind == Tok::Punct) {
                // operator()/operator[]/operator++ ... walk back to
                // the `operator` keyword.
                std::size_t b = k - 1;
                std::string cluster;
                while (b > i && t[b].kind == Tok::Punct) {
                    cluster = t[b].text + cluster;
                    --b;
                }
                if (t[b].kind == Tok::Ident && t[b].text == "operator") {
                    name = "operator" + cluster;
                    nameLine = t[b].line;
                }
            }
        }
        if (name.empty() || keywordSet().count(name)) {
            i = skipBalanced(t, paren, "(", ")");
            continue;
        }
        // Qualifier chain before the name: A::B::name.
        std::string qual;
        {
            std::size_t b = paren - 1;
            // Step to the token before the name/operator cluster.
            while (b > i && !(t[b].kind == Tok::Ident &&
                              (t[b].text == name ||
                               (name.rfind("operator", 0) == 0 &&
                                t[b].text == "operator"))))
                --b;
            while (b >= 2 && t[b - 1].kind == Tok::Punct &&
                   t[b - 1].text == "::" && t[b - 2].kind == Tok::Ident) {
                qual = t[b - 2].text + "::" + qual;
                b -= 2;
            }
        }
        std::size_t after = skipBalanced(t, paren, "(", ")");
        Function fn;
        fn.fileIdx = file_idx;
        fn.simpleName = name;
        fn.qualName = qual.empty() ? qualify(name) : qual + name;
        fn.startLine = t[i].line;
        (void)nameLine;
        for (std::size_t p = paren + 1; p + 1 < after; ++p) {
            if (t[p].kind == Tok::Ident)
                fn.headerIdents.insert(t[p].text);
        }
        // After the parameter list: qualifiers, ctor-inits, trailing
        // return, `= default/delete`, or the body.
        bool isDef = false;
        bool inInit = false;
        std::size_t q = after;
        std::string prevText = ")";
        while (q < n) {
            const Token &u = t[q];
            if (u.kind == Tok::Ident) {
                if (u.text == "try") {
                    ++q;
                    prevText = "try";
                    continue;
                }
                prevText = u.text;
                ++q;
                continue;
            }
            if (u.kind != Tok::Punct) {
                prevText = "";
                ++q;
                continue;
            }
            if (u.text == ";") {
                break; // declaration only
            }
            if (u.text == "=") {
                break; // = default / = delete / = 0
            }
            if (u.text == "(") {
                q = skipBalanced(t, q, "(", ")");
                prevText = ")";
                continue;
            }
            if (u.text == ":" ) {
                inInit = true;
                ++q;
                prevText = ":";
                continue;
            }
            if (u.text == "{") {
                if (inInit && prevText != ")" && prevText != "}" &&
                    prevText != "try") {
                    // Braced member initializer inside a ctor-init
                    // list, not the body.
                    q = skipBalanced(t, q, "{", "}");
                    prevText = "}";
                    continue;
                }
                isDef = true;
                break;
            }
            prevText = u.text;
            ++q;
        }
        if (!isDef) {
            i = q + 1;
            continue;
        }
        const std::size_t bodyEnd = scanBody(t, q, fn);
        applyAnnotations(sf, fn);
        m.byName[fn.simpleName].push_back(static_cast<int>(m.funcs.size()));
        m.funcs.push_back(std::move(fn));
        i = bodyEnd;
    }
}

// ---------------------------------------------------------------------------
// Shared helpers for checks
// ---------------------------------------------------------------------------

struct Linter
{
    const Options &opts;
    Model model;
    std::vector<Diagnostic> diags;

    bool
    checkEnabled(const std::string &c) const
    {
        return opts.checks.empty() ||
               std::find(opts.checks.begin(), opts.checks.end(), c) !=
                   opts.checks.end();
    }

    /** Is there a consumed allow(check) covering @p line of @p file? */
    bool
    suppressed(int file_idx, int line, const std::string &check)
    {
        for (const Directive &d : model.files[file_idx].directives) {
            if (d.kind != Directive::Allow)
                continue;
            const bool covers =
                d.line == line || (d.ownLine && d.line + 1 == line);
            if (!covers)
                continue;
            if (std::find(d.allowChecks.begin(), d.allowChecks.end(),
                          check) == d.allowChecks.end())
                continue;
            d.used = true;
            return true;
        }
        return false;
    }

    void
    report(int file_idx, int line, const std::string &check,
           const std::string &msg)
    {
        if (!checkEnabled(check))
            return;
        if (suppressed(file_idx, line, check))
            return;
        diags.push_back({model.files[file_idx].path, line, check, msg});
    }

    bool
    isSrcFile(int file_idx) const
    {
        const std::string &p = model.files[file_idx].path;
        return p.rfind("src/", 0) == 0 || p.find('/') == std::string::npos;
    }
};

// ---------------------------------------------------------------------------
// Check 1: hot-alloc
// ---------------------------------------------------------------------------

const std::set<std::string> &
bannedAllocCalls()
{
    static const std::set<std::string> s = {
        "malloc", "calloc", "realloc", "strdup", "strndup",
        "aligned_alloc", "posix_memalign", "free",
    };
    return s;
}

/** Methods that allocate on std containers when not resolved in-repo. */
const std::set<std::string> &
bannedAllocMethods()
{
    static const std::set<std::string> s = {
        "push_back", "emplace_back", "emplace", "resize", "reserve",
        "assign", "append", "shrink_to_fit", "to_string", "substr",
        "str", "push_front", "emplace_front",
    };
    return s;
}

const std::set<std::string> &
bannedStdTypes()
{
    static const std::set<std::string> s = {
        "vector", "string", "map", "multimap", "set", "multiset",
        "unordered_map", "unordered_set", "unordered_multimap",
        "unordered_multiset", "deque", "list", "forward_list",
        "function", "ostringstream", "stringstream", "istringstream",
        "make_unique", "make_shared", "to_string", "stoi", "stoul",
        "stoull", "stod", "getline",
    };
    return s;
}

void
checkHotAlloc(Linter &lt)
{
    Model &m = lt.model;
    std::vector<int> parent(m.funcs.size(), -1);
    std::vector<char> visited(m.funcs.size(), 0);
    std::vector<int> queue;
    for (std::size_t f = 0; f < m.funcs.size(); ++f) {
        if (m.funcs[f].hot) {
            queue.push_back(static_cast<int>(f));
            visited[f] = 1;
        }
    }
    auto pathOf = [&](int f) {
        std::string path = m.funcs[f].qualName;
        int hops = 0;
        for (int p = parent[f]; p >= 0 && hops < 8; p = parent[p], ++hops)
            path = m.funcs[p].qualName + " -> " + path;
        return path;
    };
    for (std::size_t qi = 0; qi < queue.size(); ++qi) {
        const int f = queue[qi];
        const Function &fn = m.funcs[f];
        if (fn.hotSafe || fn.cold)
            continue;
        // The hot path never enters the debug/verification
        // subsystems (observer and verifier are detached in
        // production runs); their name-collisions with tracker
        // methods would otherwise poison the walk.
        const std::string &fp = m.files[fn.fileIdx].path;
        const bool debugSubsystem =
            fp.find("oracle/") != std::string::npos ||
            fp.find("verify/") != std::string::npos;
        if (debugSubsystem && !fn.hot)
            continue;
        for (int l : fn.newLines) {
            lt.report(fn.fileIdx, l, "hot-alloc",
                      "'new' on the hot path in " + fn.qualName +
                          " (hot via " + pathOf(f) + ")");
        }
        for (const StdUse &u : fn.stdUses) {
            if (bannedStdTypes().count(u.name)) {
                lt.report(fn.fileIdx, u.line, "hot-alloc",
                          "allocating std::" + u.name +
                              " on the hot path in " + fn.qualName +
                              " (hot via " + pathOf(f) + ")");
            }
        }
        for (const CallSite &c : fn.calls) {
            const auto it = m.byName.find(c.name);
            if (it != m.byName.end()) {
                for (int callee : it->second) {
                    if (visited[callee])
                        continue;
                    visited[callee] = 1;
                    parent[callee] = f;
                    queue.push_back(callee);
                }
                continue;
            }
            if (bannedAllocCalls().count(c.name)) {
                lt.report(fn.fileIdx, c.line, "hot-alloc",
                          "call to allocator '" + c.name +
                              "' on the hot path in " + fn.qualName +
                              " (hot via " + pathOf(f) + ")");
            } else if (bannedAllocMethods().count(c.name)) {
                lt.report(fn.fileIdx, c.line, "hot-alloc",
                          "call to potentially allocating '" + c.name +
                              "' (unresolved in repo) on the hot path in " +
                              fn.qualName + " (hot via " + pathOf(f) + ")");
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Check 2: error-path
// ---------------------------------------------------------------------------

void
checkErrorPath(Linter &lt)
{
    static const std::set<std::string> killers = {
        "abort", "exit", "_exit", "_Exit", "quick_exit", "terminate",
        "raise", "longjmp",
    };
    static const std::set<std::string> rawStdio = {
        "fprintf", "printf", "vfprintf", "fputs", "fputc", "puts",
        "perror",
    };
    static const std::set<std::string> allowedThrows = {
        "SimError", "InternalError", "ConfigError", "InvariantViolation",
        "SimTimeout", "CheckpointError", "SimInterrupt",
    };
    Model &m = lt.model;
    for (std::size_t f = 0; f < m.funcs.size(); ++f) {
        const Function &fn = m.funcs[f];
        if (!lt.isSrcFile(fn.fileIdx))
            continue;
        for (const CallSite &c : fn.calls) {
            if (killers.count(c.name)) {
                lt.report(fn.fileIdx, c.line, "error-path",
                          "process-killing '" + c.name + "' in " +
                              fn.qualName +
                              "; library paths must throw SimError "
                              "(panic()/fatal())");
            } else if (rawStdio.count(c.name)) {
                lt.report(fn.fileIdx, c.line, "error-path",
                          "raw stdio '" + c.name + "' in " + fn.qualName +
                              "; use warn()/inform() or take an ostream");
            }
        }
        for (const auto &[type, line] : fn.throwSites) {
            if (type.empty())
                continue; // bare rethrow
            if (!allowedThrows.count(type)) {
                lt.report(fn.fileIdx, line, "error-path",
                          "throw of non-SimError type '" + type + "' in " +
                              fn.qualName +
                              "; only the SimError hierarchy may cross "
                              "library boundaries");
            }
        }
        // std::cerr / std::cout writes bypass the serialized sinks.
        for (const StdUse &u : fn.stdUses) {
            if (u.name == "cerr" || u.name == "cout") {
                lt.report(fn.fileIdx, u.line, "error-path",
                          "direct std::" + u.name + " in " + fn.qualName +
                              "; use warn()/inform() or take an ostream");
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Check 3: determinism
// ---------------------------------------------------------------------------

void
checkDeterminism(Linter &lt)
{
    static const std::set<std::string> bannedCalls = {
        "rand", "srand", "rand_r", "random", "srandom", "drand48",
        "lrand48", "time", "clock", "gettimeofday", "localtime",
        "gmtime",
    };
    static const std::set<std::string> bannedIdents = {
        "random_device", "system_clock", "unordered_map",
        "unordered_set", "unordered_multimap", "unordered_multiset",
    };
    Model &m = lt.model;
    for (std::size_t fi = 0; fi < m.files.size(); ++fi) {
        if (!lt.isSrcFile(static_cast<int>(fi)))
            continue;
        const auto &t = m.files[fi].toks;
        for (std::size_t i = 0; i < t.size(); ++i) {
            if (t[i].kind != Tok::Ident)
                continue;
            const std::string &name = t[i].text;
            if (bannedIdents.count(name)) {
                lt.report(static_cast<int>(fi), t[i].line, "determinism",
                          name.rfind("unordered", 0) == 0
                              ? "std::" + name +
                                    " has nondeterministic iteration "
                                    "order; use FlatMap or std::map"
                              : "'" + name +
                                    "' is nondeterministic; simulations "
                                    "must replay bit-identically");
                continue;
            }
            if (bannedCalls.count(name) && i + 1 < t.size() &&
                t[i + 1].kind == Tok::Punct && t[i + 1].text == "(") {
                lt.report(static_cast<int>(fi), t[i].line, "determinism",
                          "call to '" + name +
                              "' is nondeterministic; use the seeded "
                              "Rng / simulated time");
                continue;
            }
            // std::map< / std::set< with a pointer-typed key iterates
            // in address order, which varies run to run.
            if ((name == "map" || name == "set") && i >= 2 &&
                t[i - 1].kind == Tok::Punct && t[i - 1].text == "::" &&
                t[i - 2].kind == Tok::Ident && t[i - 2].text == "std" &&
                i + 1 < t.size() && t[i + 1].kind == Tok::Punct &&
                t[i + 1].text == "<") {
                int angle = 0;
                bool star = false;
                for (std::size_t j = i + 1; j < t.size(); ++j) {
                    if (t[j].kind != Tok::Punct)
                        continue;
                    if (t[j].text == "<")
                        ++angle;
                    else if (t[j].text == ">") {
                        if (--angle == 0)
                            break;
                    } else if (t[j].text == "," && angle == 1) {
                        break; // only the key type matters
                    } else if (t[j].text == "*" && angle >= 1) {
                        star = true;
                    }
                }
                if (star) {
                    lt.report(static_cast<int>(fi), t[i].line,
                              "determinism",
                              "pointer-keyed std::" + name +
                                  " iterates in address order, which is "
                                  "nondeterministic across runs");
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Check: parallel (sharded-engine hygiene)
// ---------------------------------------------------------------------------

/**
 * Files implementing the sharded parallel engine (path contains
 * "shard" or "mailbox") run simulation state on worker threads, so
 * they get rules stricter than the repo-wide determinism check: no
 * host-clock reads (any <chrono> clock, not just system_clock), no
 * worker-thread identity, and no unordered containers. Any of these
 * lets host scheduling leak into simulated state and breaks the
 * bit-identical-across-thread-counts guarantee. The one legitimate
 * exception — the wall-clock watchdog, which observes but never feeds
 * the simulation — carries a justified allow(parallel).
 */
void
checkParallel(Linter &lt)
{
    static const std::set<std::string> clockIdents = {
        "steady_clock", "system_clock", "high_resolution_clock",
    };
    static const std::set<std::string> identityIdents = {
        "this_thread", "get_id", "hardware_concurrency",
        "pthread_self", "gettid",
    };
    static const std::set<std::string> unorderedIdents = {
        "unordered_map", "unordered_set", "unordered_multimap",
        "unordered_multiset",
    };
    Model &m = lt.model;
    for (std::size_t fi = 0; fi < m.files.size(); ++fi) {
        if (!lt.isSrcFile(static_cast<int>(fi)))
            continue;
        const std::string &path = m.files[fi].path;
        if (path.find("shard") == std::string::npos &&
            path.find("mailbox") == std::string::npos)
            continue;
        const auto &t = m.files[fi].toks;
        for (std::size_t i = 0; i < t.size(); ++i) {
            if (t[i].kind != Tok::Ident)
                continue;
            const std::string &name = t[i].text;
            // Clock *reads* only (clock::now()): time_point plumbing
            // that merely carries a previously sampled value is fine.
            if (clockIdents.count(name) && i + 2 < t.size() &&
                t[i + 1].kind == Tok::Punct && t[i + 1].text == "::" &&
                t[i + 2].kind == Tok::Ident && t[i + 2].text == "now") {
                lt.report(static_cast<int>(fi), t[i].line, "parallel",
                          "'" + name +
                              "::now()' in sharded-engine code; host "
                              "clocks must never feed simulated state "
                              "(epoch windows count simulated cycles)");
                continue;
            }
            if (identityIdents.count(name)) {
                lt.report(static_cast<int>(fi), t[i].line, "parallel",
                          "'" + name +
                              "' in sharded-engine code; worker "
                              "identity must not influence results "
                              "(drain mailboxes in fixed (dst, src) "
                              "order, not arrival order)");
                continue;
            }
            if (unorderedIdents.count(name)) {
                lt.report(static_cast<int>(fi), t[i].line, "parallel",
                          "std::" + name +
                              " in sharded-engine code: cross-thread "
                              "fold order must be deterministic; use "
                              "FlatMap or std::map");
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Check 4: stats-dump
// ---------------------------------------------------------------------------

void
checkStatsDump(Linter &lt)
{
    Model &m = lt.model;
    // Closure of functions reachable from any function named `dump`.
    std::vector<char> inClosure(m.funcs.size(), 0);
    std::vector<int> queue;
    const auto roots = m.byName.find("dump");
    if (roots != m.byName.end()) {
        for (int f : roots->second) {
            inClosure[f] = 1;
            queue.push_back(f);
        }
    }
    for (std::size_t qi = 0; qi < queue.size(); ++qi) {
        for (const CallSite &c : m.funcs[queue[qi]].calls) {
            const auto it = m.byName.find(c.name);
            if (it == m.byName.end())
                continue;
            for (int callee : it->second) {
                if (!inClosure[callee]) {
                    inClosure[callee] = 1;
                    queue.push_back(callee);
                }
            }
        }
    }
    // Members directly visible from the dump closure.
    std::set<std::string> dumped;
    for (std::size_t f = 0; f < m.funcs.size(); ++f) {
        if (!inClosure[f])
            continue;
        for (const auto &ss : m.statsStructs) {
            for (const auto &[name, line] : ss.members) {
                if (m.funcs[f].identSet.count(name))
                    dumped.insert(name);
            }
        }
    }
    // One-hop flow: an aggregation function that takes a stats struct
    // as a parameter and feeds at least one dumped member forwards
    // the members it reads (e.g. ResidencyHistograms::noteDeath
    // flushing ResidencyStats into the dumped histograms).
    for (const auto &ss : m.statsStructs) {
        for (std::size_t f = 0; f < m.funcs.size(); ++f) {
            const Function &fn = m.funcs[f];
            if (!fn.headerIdents.count(ss.name))
                continue;
            bool feedsDump = false;
            for (const std::string &d : dumped) {
                if (fn.identSet.count(d)) {
                    feedsDump = true;
                    break;
                }
            }
            if (!feedsDump)
                continue;
            for (const auto &[name, line] : ss.members) {
                if (fn.identSet.count(name))
                    dumped.insert(name);
            }
        }
    }
    for (const auto &ss : m.statsStructs) {
        if (!lt.isSrcFile(ss.fileIdx))
            continue;
        for (const auto &[name, line] : ss.members) {
            if (!dumped.count(name)) {
                lt.report(ss.fileIdx, line, "stats-dump",
                          "counter '" + ss.name + "::" + name +
                              "' never reaches the stats dump path "
                              "(unreachable from any dump() and not "
                              "flushed by an aggregation function)");
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Check 5: header
// ---------------------------------------------------------------------------

/** std symbol -> header that must be included for it. */
const std::map<std::string, std::string> &
stdHeaderMap()
{
    static const std::map<std::string, std::string> m = {
        {"vector", "vector"}, {"string", "string"}, {"array", "array"},
        {"optional", "optional"}, {"unique_ptr", "memory"},
        {"shared_ptr", "memory"}, {"make_unique", "memory"},
        {"make_shared", "memory"}, {"weak_ptr", "memory"},
        {"pair", "utility"}, {"move", "utility"}, {"swap", "utility"},
        {"forward", "utility"}, {"exchange", "utility"},
        {"uint8_t", "cstdint"}, {"uint16_t", "cstdint"},
        {"uint32_t", "cstdint"}, {"uint64_t", "cstdint"},
        {"int8_t", "cstdint"}, {"int16_t", "cstdint"},
        {"int32_t", "cstdint"}, {"int64_t", "cstdint"},
        {"size_t", "cstddef"}, {"ptrdiff_t", "cstddef"},
        {"byte", "cstddef"}, {"nullptr_t", "cstddef"},
        {"map", "map"}, {"multimap", "map"}, {"set", "set"},
        {"multiset", "set"}, {"deque", "deque"}, {"list", "list"},
        {"function", "functional"}, {"hash", "functional"},
        {"less", "functional"},
        {"ostringstream", "sstream"}, {"istringstream", "sstream"},
        {"stringstream", "sstream"},
        {"ostream", "ostream"}, {"istream", "istream"},
        {"ifstream", "fstream"}, {"ofstream", "fstream"},
        {"min", "algorithm"}, {"max", "algorithm"},
        {"sort", "algorithm"}, {"stable_sort", "algorithm"},
        {"find_if", "algorithm"}, {"fill", "algorithm"},
        {"copy", "algorithm"}, {"clamp", "algorithm"},
        {"max_element", "algorithm"}, {"min_element", "algorithm"},
        {"lower_bound", "algorithm"}, {"upper_bound", "algorithm"},
        {"all_of", "algorithm"}, {"any_of", "algorithm"},
        {"none_of", "algorithm"}, {"count_if", "algorithm"},
        {"remove_if", "algorithm"}, {"nth_element", "algorithm"},
        {"accumulate", "numeric"}, {"iota", "numeric"},
        {"numeric_limits", "limits"},
        {"chrono", "chrono"}, {"thread", "thread"},
        {"mutex", "mutex"}, {"lock_guard", "mutex"},
        {"unique_lock", "mutex"}, {"scoped_lock", "mutex"},
        {"atomic", "atomic"}, {"condition_variable",
        "condition_variable"},
        {"runtime_error", "stdexcept"}, {"logic_error", "stdexcept"},
        {"out_of_range", "stdexcept"},
        {"invalid_argument", "stdexcept"},
        {"exception", "exception"},
        {"memcpy", "cstring"}, {"memset", "cstring"},
        {"strcmp", "cstring"}, {"strlen", "cstring"},
        {"strncmp", "cstring"},
        {"snprintf", "cstdio"}, {"fprintf", "cstdio"},
        {"FILE", "cstdio"},
        {"getenv", "cstdlib"}, {"strtoull", "cstdlib"},
        {"strtod", "cstdlib"}, {"exit", "cstdlib"},
        {"abort", "cstdlib"},
        {"string_view", "string_view"}, {"tuple", "tuple"},
        {"tie", "tuple"}, {"initializer_list", "initializer_list"},
        {"is_same", "type_traits"}, {"enable_if", "type_traits"},
        {"decay", "type_traits"}, {"conditional", "type_traits"},
        {"remove_reference", "type_traits"},
        {"is_trivially_copyable", "type_traits"},
        {"mt19937", "random"}, {"mt19937_64", "random"},
        {"setw", "iomanip"}, {"setprecision", "iomanip"},
        {"setfill", "iomanip"},
        {"cout", "iostream"}, {"cerr", "iostream"},
        {"ceil", "cmath"}, {"floor", "cmath"}, {"sqrt", "cmath"},
        {"pow", "cmath"}, {"log2", "cmath"}, {"exp", "cmath"},
        {"isfinite", "cmath"}, {"isnan", "cmath"}, {"fabs", "cmath"},
        {"lround", "cmath"}, {"llround", "cmath"},
        {"variant", "variant"}, {"bitset", "bitset"},
        {"filesystem", "filesystem"},
        {"from_chars", "charconv"}, {"to_chars", "charconv"},
    };
    return m;
}

void
checkHeader(Linter &lt)
{
    Model &m = lt.model;
    // Resolve repo-relative quoted includes: "common/types.hh" as
    // written resolves against src/ (the library's include root).
    std::map<std::string, int> byPath;
    for (std::size_t fi = 0; fi < m.files.size(); ++fi)
        byPath[m.files[fi].path] = static_cast<int>(fi);
    auto resolve = [&](const std::string &inc) -> int {
        auto it = byPath.find("src/" + inc);
        if (it != byPath.end())
            return it->second;
        it = byPath.find(inc);
        if (it != byPath.end())
            return it->second;
        return -1;
    };
    for (std::size_t fi = 0; fi < m.files.size(); ++fi) {
        const SourceFile &sf = m.files[fi];
        if (!lt.isSrcFile(static_cast<int>(fi)))
            continue;
        if (sf.path.size() < 3 ||
            sf.path.compare(sf.path.size() - 3, 3, ".hh") != 0)
            continue;
        // (a) include guard.
        if (sf.guardIfndef.empty() || sf.guardIfndef != sf.guardDefine) {
            lt.report(static_cast<int>(fi), 1, "header",
                      "missing or mismatched include guard "
                      "(#ifndef/#define pair)");
        } else if (sf.guardIfndef.rfind("TINYDIR_", 0) != 0 ||
                   sf.guardIfndef.size() < 4 ||
                   sf.guardIfndef.compare(sf.guardIfndef.size() - 3, 3,
                                          "_HH") != 0) {
            lt.report(static_cast<int>(fi), 1, "header",
                      "include guard '" + sf.guardIfndef +
                          "' does not match TINYDIR_*_HH");
        }
        // (b) std includes available through the repo include closure.
        std::set<std::string> angled(sf.angledIncludes.begin(),
                                     sf.angledIncludes.end());
        std::set<int> seen;
        std::vector<int> stack;
        stack.push_back(static_cast<int>(fi));
        seen.insert(static_cast<int>(fi));
        while (!stack.empty()) {
            const int cur = stack.back();
            stack.pop_back();
            for (const std::string &inc :
                 m.files[cur].quotedIncludes) {
                const int next = resolve(inc);
                if (next < 0 || seen.count(next))
                    continue;
                seen.insert(next);
                stack.push_back(next);
                angled.insert(m.files[next].angledIncludes.begin(),
                              m.files[next].angledIncludes.end());
            }
        }
        // Collect std:: uses across the whole header token stream.
        std::set<std::string> flagged;
        const auto &t = sf.toks;
        for (std::size_t i = 0; i + 2 < t.size(); ++i) {
            if (t[i].kind == Tok::Ident && t[i].text == "std" &&
                t[i + 1].kind == Tok::Punct && t[i + 1].text == "::" &&
                t[i + 2].kind == Tok::Ident) {
                const std::string &sym = t[i + 2].text;
                const auto need = stdHeaderMap().find(sym);
                if (need == stdHeaderMap().end())
                    continue;
                if (angled.count(need->second) || flagged.count(sym))
                    continue;
                flagged.insert(sym);
                lt.report(static_cast<int>(fi), t[i + 2].line, "header",
                          "std::" + sym + " used but <" + need->second +
                              "> is not included (directly or via "
                              "included repo headers)");
            }
        }
    }
}

// ---------------------------------------------------------------------------
// lint-usage: malformed / unused suppressions
// ---------------------------------------------------------------------------

void
checkLintUsage(Linter &lt, bool all_checks_ran)
{
    for (std::size_t fi = 0; fi < lt.model.files.size(); ++fi) {
        for (const Directive &d : lt.model.files[fi].directives) {
            if (d.kind == Directive::Malformed) {
                lt.diags.push_back({lt.model.files[fi].path, d.line,
                                    "lint-usage", d.error});
            } else if (all_checks_ran && !d.used) {
                const char *what =
                    d.kind == Directive::Allow
                        ? "unused suppression (no diagnostic at the "
                          "covered line; remove it)"
                        : "annotation does not precede a function "
                          "definition (within 3 lines)";
                lt.diags.push_back({lt.model.files[fi].path, d.line,
                                    "lint-usage", what});
            }
        }
    }
}

} // namespace

// ---------------------------------------------------------------------------
// Public API
// ---------------------------------------------------------------------------

const std::vector<std::string> &
allChecks()
{
    static const std::vector<std::string> c = {
        "hot-alloc", "error-path", "determinism", "parallel",
        "stats-dump", "header", "lint-usage",
    };
    return c;
}

std::vector<std::string>
defaultFileSet(const std::string &root)
{
    namespace fs = std::filesystem;
    std::vector<std::string> out;
    const fs::path src = fs::path(root) / "src";
    if (!fs::exists(src))
        throw std::runtime_error("no src/ directory under " + root);
    for (const auto &e : fs::recursive_directory_iterator(src)) {
        if (!e.is_regular_file())
            continue;
        const std::string ext = e.path().extension().string();
        if (ext != ".hh" && ext != ".cc")
            continue;
        out.push_back(
            fs::relative(e.path(), fs::path(root)).generic_string());
    }
    std::sort(out.begin(), out.end());
    return out;
}

Result
run(const Options &opts)
{
    Linter lt{opts, {}, {}};
    for (const std::string &rel : opts.files) {
        const std::filesystem::path p =
            std::filesystem::path(opts.root) / rel;
        std::ifstream in(p, std::ios::binary);
        if (!in)
            throw std::runtime_error("cannot read " + p.string());
        std::ostringstream ss;
        ss << in.rdbuf();
        SourceFile sf;
        sf.path = rel;
        lex(ss.str(), sf);
        lt.model.files.push_back(std::move(sf));
    }
    for (std::size_t fi = 0; fi < lt.model.files.size(); ++fi)
        parseFile(lt.model, static_cast<int>(fi));

    if (lt.checkEnabled("hot-alloc"))
        checkHotAlloc(lt);
    if (lt.checkEnabled("error-path"))
        checkErrorPath(lt);
    if (lt.checkEnabled("determinism"))
        checkDeterminism(lt);
    if (lt.checkEnabled("parallel"))
        checkParallel(lt);
    if (lt.checkEnabled("stats-dump"))
        checkStatsDump(lt);
    if (lt.checkEnabled("header"))
        checkHeader(lt);
    if (lt.checkEnabled("lint-usage"))
        checkLintUsage(lt, opts.checks.empty());

    // Deterministic report order.
    std::stable_sort(lt.diags.begin(), lt.diags.end(),
                     [](const Diagnostic &a, const Diagnostic &b) {
                         if (a.file != b.file)
                             return a.file < b.file;
                         return a.line < b.line;
                     });
    Result res;
    res.diags = std::move(lt.diags);
    return res;
}

std::size_t
printDiagnostics(const Result &res, std::string &out)
{
    std::ostringstream os;
    for (const Diagnostic &d : res.diags) {
        os << d.file << ':' << d.line << ": [" << d.check << "] "
           << d.message << '\n';
    }
    out = os.str();
    return res.diags.size();
}

} // namespace tdlint
