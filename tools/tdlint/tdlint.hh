/**
 * @file
 * tdlint: a project-specific static analyzer for the tinydir simulator.
 *
 * The repo's core invariants are enforced dynamically elsewhere (the
 * runtime coherence verifier, the counted operator new in
 * test_hotpath, the differential oracle). tdlint moves the same
 * invariants to build time: a dependency-free lexer + call-graph
 * approximation over the C++ sources, with six checks:
 *
 *   hot-alloc    functions reachable from a `// TDLINT: hot` root may
 *                not allocate (no `new`/`malloc`, no allocating std
 *                containers); `// TDLINT: hot-safe` marks structures
 *                whose steady-state ops are proven allocation-free
 *                dynamically (InlineVec, FlatMap).
 *   error-path   library code under src/ must not kill or bypass the
 *                process-wide error discipline: no abort/exit/raw
 *                stdio, and every `throw` must be a SimError type.
 *   determinism  no wall-clock, libc rand, unordered container, or
 *                pointer-keyed ordered container in src/ (simulations
 *                must replay bit-identically).
 *   parallel     sharded-engine files (path contains "shard" or
 *                "mailbox") additionally ban every <chrono> clock
 *                read, worker-thread identity, and unordered
 *                containers: host scheduling must never leak into
 *                simulated state, so parallel runs stay bit-identical
 *                across thread counts.
 *   stats-dump   every member of a `*Stats` / `*Histograms` struct
 *                must be observable from the dump path (reachable
 *                from a function named `dump`, or flushed by an
 *                aggregation function that feeds dumped members).
 *   header       every header under src/ carries a TINYDIR_*_HH
 *                include guard and includes what it uses for a
 *                curated table of std symbols (directly or through
 *                repo headers it includes).
 *
 * Suppression grammar (required justification after the colon):
 *   // TDLINT: allow(<check>[,<check>...]): <justification>
 * applies to its own line, and to the following line when the comment
 * stands alone on its line. Unused or malformed suppressions are
 * diagnostics themselves (check `lint-usage`).
 *
 * Annotation grammar:
 *   // TDLINT: hot        next function is a hot-path root
 *   // TDLINT: hot-safe   next function is trusted allocation-free in
 *                         steady state; the hot-path walk neither
 *                         scans nor descends into it
 *   // TDLINT: cold       next function is never on the hot path; the
 *                         walk does not descend into it
 */

#ifndef TINYDIR_TOOLS_TDLINT_HH
#define TINYDIR_TOOLS_TDLINT_HH

#include <string>
#include <vector>

namespace tdlint
{

/** One finding, formatted as file:line: [check] message. */
struct Diagnostic
{
    std::string file; //!< path relative to the lint root
    int line = 0;
    std::string check;
    std::string message;
};

/** Analyzer configuration. */
struct Options
{
    /** Directory all relative paths resolve against. */
    std::string root;

    /** Repo-relative files to lint (e.g. "src/cache/llc.hh"). */
    std::vector<std::string> files;

    /** Checks to run; empty means all of them. */
    std::vector<std::string> checks;
};

/** Analyzer outcome. */
struct Result
{
    std::vector<Diagnostic> diags;

    bool clean() const { return diags.empty(); }
};

/** Names of all checks, in report order. */
const std::vector<std::string> &allChecks();

/** Run the analyzer. Throws std::runtime_error on unreadable input. */
Result run(const Options &opts);

/**
 * The default lint file set: every .hh/.cc under <root>/src, sorted
 * for deterministic diagnostic order.
 */
std::vector<std::string> defaultFileSet(const std::string &root);

/** Render @p diags to @p out, one line each. @return diags.size(). */
std::size_t printDiagnostics(const Result &res, std::string &out);

} // namespace tdlint

#endif // TINYDIR_TOOLS_TDLINT_HH
