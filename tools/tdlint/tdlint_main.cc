/**
 * @file
 * tdlint CLI.
 *
 * Usage:
 *   tdlint --root <dir> [--check <name>]... [file...]
 *
 * Files are repo-relative; with none given, every .hh/.cc under
 * <root>/src is linted. Exit status: 0 clean, 1 findings, 2 usage or
 * I/O error.
 */

#include "tdlint/tdlint.hh"

#include <cstdio>
#include <string>
#include <vector>

int
main(int argc, char **argv)
{
    tdlint::Options opts;
    opts.root = ".";
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--root") {
            if (++i >= argc) {
                std::fprintf(stderr, "tdlint: --root needs a value\n");
                return 2;
            }
            opts.root = argv[i];
        } else if (arg == "--check") {
            if (++i >= argc) {
                std::fprintf(stderr, "tdlint: --check needs a value\n");
                return 2;
            }
            const std::string c = argv[i];
            bool known = false;
            for (const auto &k : tdlint::allChecks())
                known = known || k == c;
            if (!known) {
                std::fprintf(stderr, "tdlint: unknown check '%s'\n",
                             c.c_str());
                return 2;
            }
            opts.checks.push_back(c);
        } else if (arg == "--list-checks") {
            for (const auto &k : tdlint::allChecks())
                std::printf("%s\n", k.c_str());
            return 0;
        } else if (arg == "--help" || arg == "-h") {
            std::printf(
                "usage: tdlint --root <dir> [--check <name>]... "
                "[file...]\n"
                "Lints repo-relative files (default: src/**/*.{hh,cc}).\n"
                "Exit: 0 clean, 1 findings, 2 usage/I-O error.\n");
            return 0;
        } else if (!arg.empty() && arg[0] == '-') {
            std::fprintf(stderr, "tdlint: unknown option '%s'\n",
                         arg.c_str());
            return 2;
        } else {
            opts.files.push_back(arg);
        }
    }
    try {
        if (opts.files.empty())
            opts.files = tdlint::defaultFileSet(opts.root);
        const tdlint::Result res = tdlint::run(opts);
        std::string report;
        const std::size_t n = tdlint::printDiagnostics(res, report);
        if (n) {
            std::fputs(report.c_str(), stderr);
            std::fprintf(stderr, "tdlint: %zu finding%s\n", n,
                         n == 1 ? "" : "s");
            return 1;
        }
        std::printf("tdlint: clean (%zu files)\n", opts.files.size());
        return 0;
    } catch (const std::exception &e) {
        std::fprintf(stderr, "tdlint: %s\n", e.what());
        return 2;
    }
}
