/**
 * @file
 * Coverage-oriented trace fuzzer with differential-oracle checking and
 * failing-trace minimization.
 *
 * Default mode generates random sharing-pattern traces (src/oracle/
 * patterns.hh) over randomized configurations (src/oracle/schemes.hh)
 * and replays each through a real System cross-checked by the
 * reference model. Any divergence or engine panic is minimized with
 * ddmin (src/oracle/shrink.hh) and written as a corpus case
 * (trace + .meta) ready for `--replay` or tests/test_corpus_replay.
 *
 *   fuzz_traces --runs 100 --seed 7
 *   fuzz_traces --seconds 9                  # time-boxed smoke run
 *   fuzz_traces --scheme tiny256spill --pattern spill_pressure
 *   fuzz_traces --inject drop-tracker-entry  # oracle must detect it
 *   fuzz_traces --replay tests/corpus/case.meta
 *   fuzz_traces --emit-seed-corpus tests/corpus
 *
 * Exit status: 0 = all runs behaved as expected; 1 = an unexpected
 * divergence/halt (or a missed injected fault); 2 = usage error.
 */

#include <chrono>
#include <cstring>
#include <iostream>
#include <optional>
#include <string>

#include "common/rng.hh"
#include "common/sim_error.hh"
#include "oracle/corpus.hh"
#include "oracle/patterns.hh"
#include "oracle/replay.hh"
#include "oracle/schemes.hh"
#include "oracle/shrink.hh"

using namespace tinydir;

namespace
{

struct Options
{
    unsigned runs = 50;
    double seconds = 0;       //!< when > 0, time-boxes the fuzz loop
    std::uint64_t seed = 1;
    unsigned cores = 0;       //!< 0 = randomize per run
    Counter accesses = 0;     //!< per core; 0 = randomize per run
    std::string scheme;       //!< empty = randomize per run
    std::string pattern;      //!< empty = randomize per run
    std::optional<FaultKind> inject;
    Counter checkPeriod = 256;
    std::string corpusDir = ".";
    Counter maxShrinkRuns = 800;
    std::string replayMeta;
    std::string emitSeedCorpusDir;
    bool verbose = false;
};

[[noreturn]] void
usage(int code)
{
    std::cerr <<
        "usage: fuzz_traces [options]\n"
        "  --runs N              fuzz iterations (default 50)\n"
        "  --seconds S           time-box the fuzz loop instead of --runs\n"
        "  --seed X              base seed (default 1)\n"
        "  --cores N             fix the core count (default: random 2/4/8)\n"
        "  --accesses N          per-core trace length (default: random)\n"
        "  --scheme LABEL        fix the tracking scheme (see --list)\n"
        "  --pattern NAME        fix the sharing pattern (see --list)\n"
        "  --inject KIND         plant a fault each run; the oracle must\n"
        "                        detect it (flip-sharer-bit, ...)\n"
        "  --check-period N      cross-check cadence (default 256)\n"
        "  --corpus-dir DIR      where minimized repros are written\n"
        "  --max-shrink-runs N   ddmin predicate budget (default 800)\n"
        "  --replay META         replay one corpus case and verify it\n"
        "  --emit-seed-corpus DIR  regenerate the checked-in seed corpus\n"
        "  --list                print schemes and patterns\n"
        "  -v                    per-run progress\n";
    std::exit(code);
}

void
list()
{
    std::cout << "schemes:";
    for (const auto &s : fuzzSchemes())
        std::cout << " " << s.label;
    std::cout << "\npatterns:";
    for (const auto &p : allPatterns())
        std::cout << " " << p.name;
    std::cout << "\nfaults: " << toString(FaultKind::FlipSharerBit) << " "
              << toString(FaultKind::DropTrackerEntry) << " "
              << toString(FaultKind::DesyncSpilledEntry) << " "
              << toString(FaultKind::ForgeOwner) << "\n";
}

std::optional<FaultKind>
parseFault(const std::string &s)
{
    for (auto k : {FaultKind::FlipSharerBit, FaultKind::DropTrackerEntry,
                   FaultKind::DesyncSpilledEntry, FaultKind::ForgeOwner})
        if (toString(k) == s)
            return k;
    return std::nullopt;
}

Options
parseArgs(int argc, char **argv)
{
    Options o;
    auto need = [&](int &i) -> std::string {
        if (i + 1 >= argc) {
            std::cerr << "missing value for " << argv[i] << "\n";
            usage(2);
        }
        return argv[++i];
    };
    auto needNum = [&](int &i) -> std::uint64_t {
        const std::string flag = argv[i];
        const std::string v = need(i);
        try {
            std::size_t pos = 0;
            const std::uint64_t n = std::stoull(v, &pos);
            if (pos != v.size() || v[0] == '-')
                throw std::invalid_argument(v);
            return n;
        } catch (const std::exception &) {
            std::cerr << "fatal: " << flag
                      << " expects a non-negative integer, got \"" << v
                      << "\"\n";
            std::exit(1);
        }
    };
    auto needReal = [&](int &i) -> double {
        const std::string flag = argv[i];
        const std::string v = need(i);
        try {
            std::size_t pos = 0;
            const double d = std::stod(v, &pos);
            if (pos != v.size() || d < 0)
                throw std::invalid_argument(v);
            return d;
        } catch (const std::exception &) {
            std::cerr << "fatal: " << flag
                      << " expects a non-negative number, got \"" << v
                      << "\"\n";
            std::exit(1);
        }
    };
    for (int i = 1; i < argc; ++i) {
        const std::string a = argv[i];
        if (a == "--runs") o.runs = needNum(i);
        else if (a == "--seconds") o.seconds = needReal(i);
        else if (a == "--seed") o.seed = needNum(i);
        else if (a == "--cores") o.cores = needNum(i);
        else if (a == "--accesses") o.accesses = needNum(i);
        else if (a == "--scheme") o.scheme = need(i);
        else if (a == "--pattern") o.pattern = need(i);
        else if (a == "--inject") {
            const std::string v = need(i);
            o.inject = parseFault(v);
            if (!o.inject) {
                std::cerr << "unknown fault kind '" << v << "'\n";
                usage(2);
            }
        }
        else if (a == "--check-period") o.checkPeriod = needNum(i);
        else if (a == "--corpus-dir") o.corpusDir = need(i);
        else if (a == "--max-shrink-runs") o.maxShrinkRuns = needNum(i);
        else if (a == "--replay") o.replayMeta = need(i);
        else if (a == "--emit-seed-corpus") o.emitSeedCorpusDir = need(i);
        else if (a == "--list") { list(); std::exit(0); }
        else if (a == "-v") o.verbose = true;
        else if (a == "--help" || a == "-h") usage(0);
        else {
            std::cerr << "unknown option '" << a << "'\n";
            usage(2);
        }
    }
    if (o.scheme.empty() == false && !findFuzzScheme(o.scheme)) {
        std::cerr << "unknown scheme '" << o.scheme << "'\n";
        usage(2);
    }
    return o;
}

/** Re-run @p spec; true when it still fails the same way. */
bool
sameFailure(const ReplaySpec &spec, const ReplayResult &orig,
            const TraceStreams &streams)
{
    ReplaySpec cand = spec;
    cand.streams = streams;
    const ReplayResult r = replayWithOracle(cand);
    if (spec.inject) {
        // Injected-fault repro: any detection with the fault planted
        // counts (the exact rule may legitimately shift as the trace
        // shrinks and detection happens earlier).
        return r.injected && r.failed();
    }
    if (r.status != orig.status)
        return false;
    return orig.status != ReplayStatus::Diverged ||
           r.report.rule == orig.report.rule;
}

/** Shrink a failing run and write it to the corpus. */
std::string
shrinkAndSave(const Options &o, const ReplaySpec &spec,
              const ReplayResult &orig, const std::string &name)
{
    std::cout << "  shrinking (" << flattenStreams(spec.streams).size()
              << " accesses, budget " << o.maxShrinkRuns << " replays)...\n";
    const ShrinkResult sh = shrinkTrace(
        spec.streams, spec.cfg.numCores,
        [&](const TraceStreams &s) { return sameFailure(spec, orig, s); },
        o.maxShrinkRuns);
    std::cout << "  shrunk " << sh.originalAccesses << " -> "
              << sh.finalAccesses << " accesses in " << sh.predicateRuns
              << " replays" << (sh.exhausted ? " (budget hit)" : "") << "\n";

    CorpusCase c;
    c.spec = spec;
    c.spec.streams = sh.streams;
    // Minimized repros re-check on every access so the divergence
    // fires at the earliest possible point during replay.
    c.spec.checkPeriod = 1;
    c.expect = CorpusExpect::Detected;
    c.rule = orig.status == ReplayStatus::Diverged ? orig.report.rule
                                                   : "engine-halt";
    const std::string base = o.corpusDir + "/" + name;
    saveCorpusCase(base, c);
    std::cout << "  wrote " << base << ".meta (+ .tdtr)\n";
    return base;
}

void
printFailure(const ReplayResult &r)
{
    if (r.status == ReplayStatus::Diverged)
        std::cout << r.report.describe();
    else if (r.status == ReplayStatus::EngineHalt)
        std::cout << "engine halt: " << r.haltMessage << "\n";
}

int
replayMode(const Options &o)
{
    CorpusCase c = loadCorpusCase(o.replayMeta);
    std::cout << "replaying " << c.name << " ("
              << flattenStreams(c.spec.streams).size() << " accesses, "
              << toString(c.spec.cfg.tracker) << ", expect "
              << toString(c.expect) << ")\n";
    const ReplayResult r = replayWithOracle(c.spec);
    std::cout << "result: " << toString(r.status);
    if (r.injected)
        std::cout << " (fault injected: " << r.faultNote << ")";
    std::cout << "\n";
    printFailure(r);

    const bool ok = c.expect == CorpusExpect::Clean
        ? !r.failed()
        : r.failed() && (!c.spec.inject || r.injected);
    std::cout << (ok ? "OK: matches expectation\n"
                     : "FAIL: does not match expectation\n");
    return ok ? 0 : 1;
}

int
emitSeedCorpus(const Options &o)
{
    // Clean regression cases: one per sharing pattern over a spread of
    // schemes (paired round-robin so every pattern and the interesting
    // schemes are covered without a full cross product).
    const char *schemeNames[] = {"sparse2x", "tiny32", "tiny256spill",
                                 "mgd", "stash", "sparse2x_grain4"};
    int rc = 0;
    unsigned i = 0;
    for (const auto &p : allPatterns()) {
        const FuzzScheme *s = findFuzzScheme(schemeNames[i % 6]);
        ++i;
        PatternParams pp;
        pp.numCores = 4;
        pp.accessesPerCore = 400;
        pp.seed = o.seed + i;

        CorpusCase c;
        c.spec.cfg = makeFuzzConfig(*s, pp.numCores, o.seed + i);
        c.spec.streams = p.fn(pp);
        c.spec.checkPeriod = o.checkPeriod;
        c.expect = CorpusExpect::Clean;

        const ReplayResult r = replayWithOracle(c.spec);
        if (r.failed()) {
            std::cout << "seed case " << p.name << "/" << s->label
                      << " FAILED (fix before committing):\n";
            printFailure(r);
            rc = 1;
            continue;
        }
        const std::string base =
            o.emitSeedCorpusDir + "/clean_" + p.name + "_" + s->label;
        saveCorpusCase(base, c);
        std::cout << "wrote " << base << ".meta\n";
    }

    // One detected case: a real injected corruption, minimized.
    const FuzzScheme *s = findFuzzScheme("tiny32");
    PatternParams pp;
    pp.numCores = 4;
    pp.accessesPerCore = 600;
    pp.seed = o.seed + 99;
    ReplaySpec spec;
    spec.cfg = makeFuzzConfig(*s, pp.numCores, pp.seed);
    spec.streams = falseSharing(pp);
    spec.checkPeriod = 1;
    spec.inject = FaultKind::DropTrackerEntry;
    const ReplayResult r = replayWithOracle(spec);
    if (!r.injected || !r.failed()) {
        std::cout << "injected seed case did not detect (injected="
                  << r.injected << ", status=" << toString(r.status)
                  << ")\n";
        return 1;
    }
    Options oc = o;
    oc.corpusDir = o.emitSeedCorpusDir;
    shrinkAndSave(oc, spec, r,
                  "detected_drop_tracker_entry_tiny32");
    return rc;
}

int
fuzzMode(const Options &o)
{
    Rng rng(o.seed);
    const auto t0 = std::chrono::steady_clock::now();
    auto elapsed = [&] {
        return std::chrono::duration<double>(
                   std::chrono::steady_clock::now() - t0)
            .count();
    };

    unsigned ran = 0, skipped = 0;
    for (unsigned run = 0;; ++run) {
        if (o.seconds > 0 ? elapsed() >= o.seconds : run >= o.runs)
            break;

        // FlipSharerBit drops one core's sharer bit, which does not
        // exist as distinct storage when several cores share a bit:
        // on coarse-grain schemes the injection is a silent no-op, so
        // keep that pairing out of the rotation.
        auto schemeOk = [&](const FuzzScheme &fs) {
            return !(o.inject == FaultKind::FlipSharerBit && fs.grain > 1);
        };
        const auto &schemes = fuzzSchemes();
        const FuzzScheme *sp;
        do {
            sp = o.scheme.empty() ? &schemes[rng.below(schemes.size())]
                                  : findFuzzScheme(o.scheme);
        } while (o.scheme.empty() && !schemeOk(*sp));
        if (!schemeOk(*sp)) {
            std::cerr << "scheme " << sp->label << " stores sharers at "
                         "grain " << sp->grain << "; " << toString(*o.inject)
                      << " cannot be represented there\n";
            return 2;
        }
        const FuzzScheme &s = *sp;
        const auto &pats = allPatterns();
        const NamedPattern &p = o.pattern.empty()
            ? pats[rng.below(pats.size())]
            : *[&] {
                  for (const auto &np : pats)
                      if (o.pattern == np.name)
                          return &np;
                  std::cerr << "unknown pattern '" << o.pattern << "'\n";
                  usage(2);
              }();

        PatternParams pp;
        static const unsigned coreChoices[] = {2, 4, 8};
        pp.numCores = o.cores ? o.cores : coreChoices[rng.below(3)];
        pp.accessesPerCore =
            o.accesses ? o.accesses : 200 + rng.below(1800);
        pp.seed = rng.next();

        ReplaySpec spec;
        spec.cfg = makeFuzzConfig(s, pp.numCores, pp.seed);
        spec.streams = p.fn(pp);
        spec.checkPeriod = o.checkPeriod;
        spec.inject = o.inject;

        if (o.verbose)
            std::cout << "run " << run << ": " << s.label << " / " << p.name
                      << " cores=" << pp.numCores << " accesses="
                      << pp.accessesPerCore << " seed=" << pp.seed << "\n";

        const ReplayResult r = replayWithOracle(spec);
        ++ran;

        if (o.inject) {
            if (!r.injected) {
                // This scheme/trace never grew state eligible for the
                // fault class (e.g. a spill fault without spilling).
                ++skipped;
                continue;
            }
            if (!r.failed()) {
                std::cout << "MISSED FAULT on run " << run << " (" << s.label
                          << "/" << p.name << " seed=" << pp.seed
                          << "): " << r.faultNote << "\n";
                return 1;
            }
            continue; // injected and detected: expected outcome
        }

        if (r.failed()) {
            std::cout << "FAILURE on run " << run << " (" << s.label << "/"
                      << p.name << " cores=" << pp.numCores
                      << " seed=" << pp.seed << ")\n";
            printFailure(r);
            shrinkAndSave(o, spec, r, "fuzz_repro_" + std::to_string(run));
            return 1;
        }
    }

    std::cout << "fuzz: " << ran << " runs clean";
    if (o.inject)
        std::cout << " (" << (ran - skipped) << " injected+detected, "
                  << skipped << " ineligible)";
    std::cout << " in " << elapsed() << "s\n";
    if (o.inject && ran == skipped && ran > 0) {
        std::cout << "FAIL: fault was never injectable; choose a scheme "
                     "that supports it (e.g. --scheme tiny256spill for "
                     "desync-spilled-entry)\n";
        return 1;
    }
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    const Options o = parseArgs(argc, argv);
    try {
        if (!o.replayMeta.empty())
            return replayMode(o);
        if (!o.emitSeedCorpusDir.empty())
            return emitSeedCorpus(o);
        return fuzzMode(o);
    } catch (const SimError &e) {
        std::cerr << "error: " << e.what() << "\n";
        return 1;
    }
}
