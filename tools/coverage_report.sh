#!/usr/bin/env bash
# Aggregate gcov line coverage for the simulator sources (src/**).
#
# Usage:
#   cmake --preset coverage && cmake --build --preset coverage
#   ctest --preset coverage
#   tools/coverage_report.sh [build-dir]        # default: build-cov
#
# Only plain `gcov` is required (no gcovr/lcov). Every .gcda in the
# build tree is decoded with `gcov -n`; per-file "Lines executed"
# records are filtered to this repo's src/ tree and merged taking the
# maximum per file (headers are instrumented once per including TU, so
# summing would double-count them).
set -euo pipefail

build=${1:-build-cov}
repo=$(cd "$(dirname "$0")/.." && pwd)
cd "$repo"

if [ ! -d "$build" ]; then
    echo "error: no such build dir: $build" >&2
    echo "hint: cmake --preset coverage && cmake --build --preset coverage" >&2
    exit 1
fi
if ! find "$build" -name '*.gcda' -print -quit | grep -q .; then
    echo "error: no .gcda files under $build — run the tests first" >&2
    echo "hint: ctest --preset coverage" >&2
    exit 1
fi

raw=$(mktemp)
trap 'rm -f "$raw"' EXIT

find "$build" -name '*.gcda' -print0 |
    while IFS= read -r -d '' gcda; do
        gcov -n -o "$(dirname "$gcda")" "$gcda" 2>/dev/null || true
    done > "$raw"

awk -v repo="$repo/" '
    /^File / {
        f = substr($0, 7)               # strip the leading "File '\''"
        gsub(/^\x27|\x27$/, "", f)
        # Normalize to a repo-relative path and keep only src/**.
        sub("^" repo, "", f)
        keep = (f ~ /^src\//)
        next
    }
    /^Lines executed:/ {
        if (!keep) next
        pct = $0; sub(/^Lines executed:/, "", pct); sub(/% of .*/, "", pct)
        n = $0; sub(/.*% of /, "", n)
        if (!(f in lines) || pct + 0 > best[f] + 0) {
            best[f] = pct + 0
            lines[f] = n + 0
        }
        keep = 0
    }
    END {
        total = 0; hit = 0
        m = 0
        for (f in lines) order[m++] = f
        # Insertion sort by path for stable output.
        for (i = 1; i < m; ++i) {
            v = order[i]
            for (j = i - 1; j >= 0 && order[j] > v; --j)
                order[j + 1] = order[j]
            order[j + 1] = v
        }
        printf "%-52s %8s %8s\n", "file", "lines", "cover%"
        for (i = 0; i < m; ++i) {
            f = order[i]
            printf "%-52s %8d %7.2f%%\n", f, lines[f], best[f]
            total += lines[f]
            hit += best[f] * lines[f] / 100.0
        }
        printf "%-52s %8d %7.2f%%\n", "TOTAL (src/)", total,
               total ? 100.0 * hit / total : 0
    }
' "$raw"
