/** @file Unit tests for the DDR3 timing model. */

#include <gtest/gtest.h>

#include "common/config.hh"
#include "mem/dram.hh"

using namespace tinydir;

namespace
{

SystemConfig
smallCfg()
{
    SystemConfig cfg = SystemConfig::scaled(8);
    return cfg;
}

} // namespace

TEST(Dram, FirstAccessPaysActivate)
{
    auto cfg = smallCfg();
    Dram d(cfg);
    Cycle done = d.access(0, 1000);
    EXPECT_EQ(done, 1000 + cfg.dramRcd + cfg.dramCas + cfg.dramBurst);
    EXPECT_EQ(d.rowMisses(), 1u);
}

TEST(Dram, RowHitIsFaster)
{
    auto cfg = smallCfg();
    Dram d(cfg);
    Cycle t1 = d.access(0, 0);
    // Same block again after the bank freed: row hit.
    Cycle t2 = d.access(0, t1 + 100);
    EXPECT_EQ(t2 - (t1 + 100), cfg.dramCas + cfg.dramBurst);
    EXPECT_EQ(d.rowHits(), 1u);
}

TEST(Dram, RowConflictPaysPrecharge)
{
    auto cfg = smallCfg();
    Dram d(cfg);
    Cycle t1 = d.access(0, 0);
    // A block far away in the same bank (different row): channel 0,
    // bank 0 requires block % channels == 0 and
    // (block/channels) % banks == 0.
    const Addr far = static_cast<Addr>(cfg.memChannels) *
        cfg.memBanksPerChannel * (cfg.dramRowBytes / blockBytes) * 8;
    Cycle t2 = d.access(far, t1 + 10);
    EXPECT_EQ(t2 - (t1 + 10),
              cfg.dramRp + cfg.dramRcd + cfg.dramCas + cfg.dramBurst);
}

TEST(Dram, BankQueueingSerializes)
{
    auto cfg = smallCfg();
    Dram d(cfg);
    Cycle t1 = d.access(0, 0);
    // Request to the same bank while busy starts after it frees.
    Cycle t2 = d.access(0, 1);
    EXPECT_GE(t2, t1 + cfg.dramCas);
}

TEST(Dram, ChannelsAreIndependent)
{
    auto cfg = smallCfg();
    Dram d(cfg);
    Cycle t1 = d.access(0, 0);
    Cycle t2 = d.access(1, 0); // different channel
    // Both should complete with no mutual queueing.
    EXPECT_EQ(t1, t2);
}

TEST(Dram, ChannelMapCoversAll)
{
    auto cfg = smallCfg();
    Dram d(cfg);
    std::vector<bool> seen(cfg.memChannels, false);
    for (Addr b = 0; b < 64; ++b)
        seen[d.channelOf(b)] = true;
    for (bool s : seen)
        EXPECT_TRUE(s);
}

TEST(Dram, ResetClearsState)
{
    auto cfg = smallCfg();
    Dram d(cfg);
    d.access(0, 0);
    d.reset();
    EXPECT_EQ(d.accesses(), 0u);
    Cycle done = d.access(0, 0);
    EXPECT_EQ(done, cfg.dramRcd + cfg.dramCas + cfg.dramBurst);
}
