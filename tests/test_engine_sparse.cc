/** @file Protocol tests of the engine with the sparse-directory baseline. */

#include <gtest/gtest.h>

#include "proto/engine.hh"
#include "test_util.hh"

using namespace tinydir;
using tinydir::test::Harness;
using tinydir::test::smallConfig;

TEST(EngineSparse, LoadMissGrantsExclusive)
{
    Harness h(smallConfig(TrackerKind::SparseDir));
    h.load(0, 100);
    EXPECT_EQ(h.stateAt(0, 100), MesiState::E);
    auto v = h.sys.tracker->view(100);
    EXPECT_TRUE(v.ts.exclusive());
    EXPECT_EQ(v.ts.owner, 0);
    h.expectCoherent();
}

TEST(EngineSparse, IfetchGrantsShared)
{
    Harness h(smallConfig(TrackerKind::SparseDir));
    h.ifetch(0, 100);
    EXPECT_EQ(h.stateAt(0, 100), MesiState::S);
    auto v = h.sys.tracker->view(100);
    EXPECT_TRUE(v.ts.shared());
    h.expectCoherent();
}

TEST(EngineSparse, SecondReaderSharesAndDowngradesOwner)
{
    Harness h(smallConfig(TrackerKind::SparseDir));
    h.load(0, 100);
    h.load(1, 100);
    EXPECT_EQ(h.stateAt(0, 100), MesiState::S);
    EXPECT_EQ(h.stateAt(1, 100), MesiState::S);
    auto v = h.sys.tracker->view(100);
    ASSERT_TRUE(v.ts.shared());
    EXPECT_EQ(v.ts.sharers.count(), 2u);
    EXPECT_EQ(h.sys.engine.stats.ownerForwards.value(), 1u);
    h.expectCoherent();
}

TEST(EngineSparse, DirtySharingWritesBackToLlc)
{
    Harness h(smallConfig(TrackerKind::SparseDir));
    h.store(0, 100); // GetX -> M
    EXPECT_EQ(h.stateAt(0, 100), MesiState::M);
    h.load(1, 100);  // forward, owner downgrades, LLC gets dirty data
    LlcEntry *e = h.sys.llc.findData(100);
    ASSERT_NE(e, nullptr);
    EXPECT_TRUE(e->dirty);
    EXPECT_EQ(h.stateAt(0, 100), MesiState::S);
    h.expectCoherent();
}

TEST(EngineSparse, StoreToSharedInvalidatesAll)
{
    Harness h(smallConfig(TrackerKind::SparseDir));
    for (CoreId c = 0; c < 4; ++c)
        h.load(c, 100);
    h.expectCoherent();
    h.store(5, 100); // GetX: all four sharers invalidated
    for (CoreId c = 0; c < 4; ++c)
        EXPECT_EQ(h.stateAt(c, 100), MesiState::I);
    EXPECT_EQ(h.stateAt(5, 100), MesiState::M);
    EXPECT_GE(h.sys.engine.stats.invalidations.value(), 4u);
    h.expectCoherent();
}

TEST(EngineSparse, UpgradeFromSharer)
{
    Harness h(smallConfig(TrackerKind::SparseDir));
    h.load(0, 100);
    h.load(1, 100);
    h.store(0, 100); // S -> Upg -> M
    EXPECT_EQ(h.stateAt(0, 100), MesiState::M);
    EXPECT_EQ(h.stateAt(1, 100), MesiState::I);
    EXPECT_EQ(h.sys.engine.stats.upgradeMisses.value(), 1u);
    h.expectCoherent();
}

TEST(EngineSparse, SilentEtoMUpgrade)
{
    Harness h(smallConfig(TrackerKind::SparseDir));
    h.load(0, 100);  // E
    h.store(0, 100); // silent E->M, no home transaction
    EXPECT_EQ(h.stateAt(0, 100), MesiState::M);
    EXPECT_EQ(h.sys.engine.stats.upgradeMisses.value(), 0u);
    // Home still sees "exclusively owned".
    auto v = h.sys.tracker->view(100);
    EXPECT_TRUE(v.ts.exclusive());
    h.expectCoherent();
}

TEST(EngineSparse, GetXToOwnerForwardInvalidates)
{
    Harness h(smallConfig(TrackerKind::SparseDir));
    h.store(0, 100);
    h.store(1, 100);
    EXPECT_EQ(h.stateAt(0, 100), MesiState::I);
    EXPECT_EQ(h.stateAt(1, 100), MesiState::M);
    h.expectCoherent();
}

TEST(EngineSparse, TwoHopFasterThanThreeHop)
{
    Harness h(smallConfig(TrackerKind::SparseDir));
    // Place the home bank away from both the owner and the readers so
    // every leg of the three-hop path pays mesh latency.
    const Addr blk = 803; // bank 3
    h.load(0, blk);
    // Let the busy window from the fill drain before each read.
    const Cycle three_hop = h.step(1, AccessType::Load, blk, 500);
    // Two-hop: read of an (LLC-resident) shared block by a third
    // core, issued well after the forward's busy window drained.
    const Cycle two_hop = h.step(2, AccessType::Load, blk, 5000);
    EXPECT_LT(two_hop, three_hop);
}

TEST(EngineSparse, LengthenedReadsNeverHappenInBaseline)
{
    Harness h(smallConfig(TrackerKind::SparseDir));
    for (CoreId c = 0; c < 8; ++c)
        h.load(c, 4096 + c);
    for (CoreId c = 1; c < 8; ++c)
        h.load(c, 4096);
    EXPECT_EQ(h.sys.engine.stats.lengthenedReads.value(), 0u);
}

TEST(EngineSparse, DirectoryEvictionBackInvalidates)
{
    // An extreme sparse directory on 8 cores: 8 entries total, one
    // per slice. Two blocks of the same slice cannot coexist.
    auto cfg = smallConfig(TrackerKind::SparseDir, 1.0 / 2048);
    Harness h(cfg);
    ASSERT_EQ(cfg.dirEntriesPerSlice(), 1u);
    const Addr a = 8;  // bank 0
    const Addr b = 16; // bank 0
    h.load(0, a);
    EXPECT_EQ(h.stateAt(0, a), MesiState::E);
    h.load(1, b); // same slice: evicts a's entry, back-invalidates
    EXPECT_EQ(h.stateAt(0, a), MesiState::I);
    EXPECT_GE(h.sys.engine.stats.backInvals.value(), 1u);
    h.expectCoherent();
}

TEST(EngineSparse, EvictionNoticesUpdateDirectory)
{
    auto cfg = smallConfig(TrackerKind::SparseDir);
    // Tiny private caches so fills evict quickly.
    cfg.l1Bytes = 4 * 2 * blockBytes;
    cfg.l1Assoc = 2;
    cfg.l2Bytes = 8 * 2 * blockBytes;
    cfg.l2Assoc = 2;
    Harness h(cfg);
    for (Addr blk = 0; blk < 256; ++blk)
        h.load(0, blk);
    EXPECT_GT(h.sys.engine.stats.evictionNotices.value(), 0u);
    h.expectCoherent();
}

TEST(EngineSparse, DramPathOnLlcMiss)
{
    Harness h(smallConfig(TrackerKind::SparseDir));
    h.load(0, 12345);
    EXPECT_EQ(h.sys.engine.stats.llcDataMisses.value(), 1u);
    EXPECT_EQ(h.sys.dram.accesses(), 1u);
    // Second access hits the LLC after the core drops it... it is
    // still privately cached, so hit privately instead.
    const Cycle lat = h.load(0, 12345);
    EXPECT_EQ(lat, h.sys.cfg.l1Latency);
}

TEST(EngineSparse, TrafficAccumulatesInAllClasses)
{
    auto cfg = smallConfig(TrackerKind::SparseDir);
    cfg.l1Bytes = 4 * 2 * blockBytes;
    cfg.l1Assoc = 2;
    cfg.l2Bytes = 8 * 2 * blockBytes;
    cfg.l2Assoc = 2;
    Harness h(cfg);
    for (Addr blk = 0; blk < 128; ++blk)
        h.load(0, blk);
    h.load(1, 0);
    h.store(2, 0);
    const auto &t = h.sys.engine.stats.traffic;
    EXPECT_GT(t.bytes(MsgClass::Processor), 0u);
    EXPECT_GT(t.bytes(MsgClass::Writeback), 0u);
    EXPECT_GT(t.bytes(MsgClass::Coherence), 0u);
}
