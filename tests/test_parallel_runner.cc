/**
 * @file
 * Tests for the parallel experiment runner: parallel execution must
 * be bit-identical to serial execution, duplicate jobs must be
 * memoized, and the satellite metric fixes (post-warmup exec cycles,
 * histogram quantiles) must hold.
 */

#include <gtest/gtest.h>

#include <vector>

#include "common/stats.hh"
#include "sim/parallel.hh"
#include "workload/profile.hh"

namespace tinydir
{
namespace
{

SystemConfig
schemeConfig(TrackerKind kind, double factor)
{
    SystemConfig cfg = SystemConfig::scaled(4);
    cfg.tracker = kind;
    cfg.dirSizeFactor = factor;
    return cfg;
}

/** 2 schemes x 2 apps at quick scale. */
std::vector<SimJob>
matrixJobs(std::uint64_t accesses, std::uint64_t warmup)
{
    std::vector<SimJob> jobs;
    for (const char *app : {"compress", "swaptions"}) {
        const WorkloadProfile *prof = &profileByName(app);
        jobs.push_back({schemeConfig(TrackerKind::SparseDir, 2.0), prof,
                        accesses, warmup, {}});
        jobs.push_back({schemeConfig(TrackerKind::TinyDir, 1.0 / 32),
                        prof, accesses, warmup, {}});
    }
    return jobs;
}

void
expectSameRun(const RunOut &a, const RunOut &b)
{
    EXPECT_EQ(a.execCycles, b.execCycles);
    EXPECT_EQ(a.totalCycles, b.totalCycles);
    EXPECT_EQ(a.accesses, b.accesses);
    const auto &ia = a.stats.items();
    const auto &ib = b.stats.items();
    ASSERT_EQ(ia.size(), ib.size());
    for (std::size_t i = 0; i < ia.size(); ++i) {
        EXPECT_EQ(ia[i].first, ib[i].first);
        EXPECT_EQ(ia[i].second, ib[i].second)
            << "stat " << ia[i].first << " differs";
    }
}

TEST(ParallelRunner, ParallelMatchesSerialBitExactly)
{
    const auto jobs = matrixJobs(500, 250);
    const auto serial = runMany(jobs, 1);
    const auto parallel = runMany(jobs, 4);
    ASSERT_EQ(serial.size(), jobs.size());
    ASSERT_EQ(parallel.size(), jobs.size());
    for (std::size_t i = 0; i < jobs.size(); ++i)
        expectSameRun(serial[i].out, parallel[i].out);
}

TEST(ParallelRunner, MemoizesDuplicateJobs)
{
    auto jobs = matrixJobs(300, 0);
    // Re-submit the first job (the "baseline also a scheme" case).
    jobs.push_back(jobs.front());
    const auto res = runMany(jobs, 2);
    ASSERT_EQ(res.size(), jobs.size());
    EXPECT_FALSE(res.front().memoized);
    EXPECT_GT(res.front().wallSeconds, 0.0);
    EXPECT_TRUE(res.back().memoized);
    EXPECT_EQ(res.back().wallSeconds, 0.0);
    expectSameRun(res.front().out, res.back().out);
}

TEST(ParallelRunner, MemoizedCopiesCarryNoTiming)
{
    // Regression: memoized copies used to zero only the outer
    // wallSeconds while keeping the source cell's out.wallSeconds and
    // out.accessesPerSec, so grids double-counted throughput.
    auto jobs = matrixJobs(300, 0);
    jobs.push_back(jobs.front());
    const auto res = runMany(jobs, 2);
    const SimResult &copy = res.back();
    ASSERT_TRUE(copy.memoized);
    EXPECT_EQ(copy.wallSeconds, 0.0);
    EXPECT_EQ(copy.out.wallSeconds, 0.0);
    EXPECT_EQ(copy.out.accessesPerSec, 0.0);
    // The simulation outcome itself is still shared.
    expectSameRun(res.front().out, copy.out);
}

TEST(ThroughputAggregation, SkipsMemoizedFailedAndUntimedCells)
{
    std::vector<SimResult> results(4);
    // A properly timed cell.
    results[0].out.accesses = 1000;
    results[0].out.wallSeconds = 0.5;
    // A memoized copy: its accesses were not executed here.
    results[1].memoized = true;
    results[1].out.accesses = 1000;
    results[1].out.wallSeconds = 0.5;
    // A failed cell.
    results[2].failed = true;
    results[2].out.accesses = 700;
    results[2].out.wallSeconds = 0.1;
    // A run too fast for the clock: counting its accesses would
    // divide work by a time that does not contain it.
    results[3].out.accesses = 500;
    results[3].out.wallSeconds = 0.0;

    const ThroughputAgg agg = aggregateThroughput(results);
    EXPECT_EQ(agg.accesses, 1000u);
    EXPECT_EQ(agg.runSeconds, 0.5);
    EXPECT_EQ(agg.counted, 1u);
    EXPECT_EQ(agg.skipped, 3u);
    EXPECT_EQ(agg.accessesPerSec(), 2000.0);
}

TEST(ThroughputAggregation, CountsOnlyResumedWorkAndZeroIsZero)
{
    std::vector<SimResult> results(1);
    results[0].out.accesses = 1000;
    results[0].out.resumedAt = 400; // loaded from a checkpoint
    results[0].out.wallSeconds = 0.5;
    const ThroughputAgg agg = aggregateThroughput(results);
    // Only the work this process performed counts.
    EXPECT_EQ(agg.accesses, 600u);
    EXPECT_EQ(agg.accessesPerSec(), 1200.0);

    // All-skipped aggregates report zero, never a division blowup.
    const ThroughputAgg empty = aggregateThroughput({});
    EXPECT_EQ(empty.accesses, 0u);
    EXPECT_EQ(empty.counted, 0u);
    EXPECT_EQ(empty.accessesPerSec(), 0.0);
}

TEST(ParallelRunner, FingerprintSeparatesConfigsAndApps)
{
    const auto jobs = matrixJobs(300, 0);
    EXPECT_EQ(jobFingerprint(jobs[0]), jobFingerprint(jobs[0]));
    // Different scheme, same app.
    EXPECT_NE(jobFingerprint(jobs[0]), jobFingerprint(jobs[1]));
    // Same scheme, different app.
    EXPECT_NE(jobFingerprint(jobs[0]), jobFingerprint(jobs[2]));
    SimJob tweaked = jobs[0];
    tweaked.cfg.seed ^= 1;
    EXPECT_NE(jobFingerprint(jobs[0]), jobFingerprint(tweaked));
    tweaked = jobs[0];
    tweaked.warmupPerCore += 1;
    EXPECT_NE(jobFingerprint(jobs[0]), jobFingerprint(tweaked));
}

TEST(PostWarmupMetric, ExecCyclesExcludesWarmup)
{
    SystemConfig cfg = schemeConfig(TrackerKind::SparseDir, 2.0);
    const WorkloadProfile &prof = profileByName("compress");
    const RunOut out = runOne(cfg, prof, 800, 400);
    EXPECT_GT(out.execCycles, 0u);
    // The measured region excludes the warmup phase ...
    EXPECT_LT(out.execCycles, out.totalCycles);
    // ... and matches the post-warmup stat exactly.
    EXPECT_EQ(static_cast<double>(out.execCycles),
              out.stats.get("exec_cycles"));

    // Without warmup the two agree.
    const RunOut raw = runOne(cfg, prof, 800, 0);
    EXPECT_EQ(raw.execCycles, raw.totalCycles);
}

TEST(HistQuantile, CeilingTargetSkipsEmptyLeadingBuckets)
{
    // A single sample in bucket 3: every quantile lives there. The
    // old truncated target (q * n = 0) reported empty bucket 0.
    Histogram h(8);
    h.sample(3);
    EXPECT_EQ(histQuantileBucket(h, 0.50), 3);
    EXPECT_EQ(histQuantileBucket(h, 0.90), 3);

    Histogram h2(8);
    h2.sample(1, 5);
    h2.sample(3, 5);
    EXPECT_EQ(histQuantileBucket(h2, 0.50), 1); // rank ceil(5.0) = 5
    EXPECT_EQ(histQuantileBucket(h2, 0.90), 3); // rank ceil(9.0) = 9

    Histogram empty(4);
    EXPECT_EQ(histQuantileBucket(empty, 0.50), -1);
}

} // namespace
} // namespace tinydir
