/**
 * @file
 * Tests of the differential oracle (src/oracle): reference-model unit
 * checks on scripted event streams, clean engine-vs-oracle agreement
 * on every sharing pattern and scheme, oracle detection of every
 * fault_inject corruption class, and the ddmin trace shrinker.
 */

#include <gtest/gtest.h>

#include <string>

#include "oracle/corpus.hh"
#include "oracle/patterns.hh"
#include "oracle/ref_model.hh"
#include "oracle/replay.hh"
#include "oracle/schemes.hh"
#include "oracle/shrink.hh"
#include "test_util.hh"

using namespace tinydir;

namespace
{

SystemConfig
refCfg()
{
    return makeFuzzConfig(*findFuzzScheme("sparse2x"), 4, 1);
}

AccessObservation
obs(CoreId core, Addr block, AccessType type)
{
    AccessObservation o;
    o.core = core;
    o.block = block;
    o.type = type;
    return o;
}

/** A load miss of an unheld block: GetS granted E from DRAM. */
AccessObservation
coldLoad(CoreId core, Addr block)
{
    AccessObservation o = obs(core, block, AccessType::Load);
    o.requested = true;
    o.req = ReqType::GetS;
    o.grant = MesiState::E;
    o.src = DataSource::Dram;
    return o;
}

} // namespace

TEST(RefModel, AcceptsLegalColdMissAndHit)
{
    RefModel m(refCfg());
    EXPECT_FALSE(m.onLlcFill(5).has_value());
    EXPECT_FALSE(m.onAccess(coldLoad(0, 5)).has_value());
    EXPECT_EQ(m.holderState(0, 5), MesiState::E);
    EXPECT_TRUE(m.llcResident(5));

    AccessObservation hit = obs(0, 5, AccessType::Load);
    hit.privPresent = true;
    hit.privState = MesiState::E;
    EXPECT_FALSE(m.onAccess(hit).has_value());
    EXPECT_EQ(m.totals().privHits, 1u);
    EXPECT_EQ(m.totals().misses, 1u);
}

TEST(RefModel, SilentUpgradeOnStoreHitToExclusive)
{
    RefModel m(refCfg());
    ASSERT_FALSE(m.onAccess(coldLoad(0, 5)).has_value());

    AccessObservation st = obs(0, 5, AccessType::Store);
    st.privPresent = true;
    st.privState = MesiState::E;
    EXPECT_FALSE(m.onAccess(st).has_value());
    EXPECT_EQ(m.holderState(0, 5), MesiState::M);
}

TEST(RefModel, FlagsPhantomHit)
{
    RefModel m(refCfg());
    AccessObservation hit = obs(0, 5, AccessType::Load);
    hit.privPresent = true;
    hit.privState = MesiState::S;
    const auto d = m.onAccess(hit);
    ASSERT_TRUE(d.has_value());
    EXPECT_EQ(d->rule, "priv.presence");
}

TEST(RefModel, FlagsIllegalExclusiveGrantWhileShared)
{
    RefModel m(refCfg());
    ASSERT_FALSE(m.onAccess(coldLoad(0, 5)).has_value());

    // Core 1 reads the same block but is (illegally) granted E.
    AccessObservation bad = coldLoad(1, 5);
    const auto d = m.onAccess(bad);
    ASSERT_TRUE(d.has_value());
    EXPECT_EQ(d->rule, "grant.read");
}

TEST(RefModel, RelaxedGrainAcceptsConservativeSharedGrant)
{
    SystemConfig cfg = makeFuzzConfig(*findFuzzScheme("sparse2x_grain4"),
                                      4, 1);
    RefModel m(cfg);
    ASSERT_TRUE(m.relaxedGrant());
    AccessObservation o = coldLoad(0, 5);
    o.grant = MesiState::S; // coarse grain may believe sharers exist
    EXPECT_FALSE(m.onAccess(o).has_value());

    RefModel strict(refCfg());
    const auto d = strict.onAccess(o);
    ASSERT_TRUE(d.has_value());
    EXPECT_EQ(d->rule, "grant.read");
}

TEST(RefModel, FlagsWrongRequestType)
{
    RefModel m(refCfg());
    AccessObservation o = coldLoad(0, 5);
    o.type = AccessType::Store; // store miss must be GetX, not GetS
    const auto d = m.onAccess(o);
    ASSERT_TRUE(d.has_value());
    EXPECT_EQ(d->rule, "req.type");
}

TEST(RefModel, FlagsNoticeWithWrongState)
{
    RefModel m(refCfg());
    ASSERT_FALSE(m.onAccess(coldLoad(0, 5)).has_value());
    const auto d = m.onNotice(0, 5, MesiState::M); // holder is E
    ASSERT_TRUE(d.has_value());
    EXPECT_EQ(d->rule, "notice.state");
    EXPECT_FALSE(m.onNotice(0, 5, MesiState::E).has_value());
    const auto d2 = m.onNotice(0, 5, MesiState::E); // now untracked
    ASSERT_TRUE(d2.has_value());
    EXPECT_EQ(d2->rule, "notice.untracked");
}

TEST(RefModel, FlagsLlcResidencyDesync)
{
    RefModel m(refCfg());
    ASSERT_FALSE(m.onLlcFill(5).has_value());
    const auto dup = m.onLlcFill(5);
    ASSERT_TRUE(dup.has_value());
    EXPECT_EQ(dup->rule, "llc.double-fill");

    // A later access that claims no LLC entry exists diverges.
    RefModel m2(refCfg());
    ASSERT_FALSE(m2.onLlcFill(7).has_value());
    ASSERT_FALSE(m2.onAccess(coldLoad(0, 7)).has_value()); // clears journal
    AccessObservation o = coldLoad(1, 7);
    o.grant = MesiState::S;
    o.pre = PreEntry::None; // engine lost the entry
    const auto d = m2.onAccess(o);
    ASSERT_TRUE(d.has_value());
    EXPECT_EQ(d->rule, "llc.lost-entry");
}

TEST(RefModel, SelfCheckStaysCleanOnLegalStreams)
{
    // The grant checks run before state application, so a legal event
    // stream can never violate SWMR inside the model; selfCheck is the
    // backstop for holes in those checks and must stay silent here.
    RefModel m(refCfg());
    ASSERT_FALSE(m.onAccess(coldLoad(0, 5)).has_value());
    EXPECT_FALSE(m.selfCheck().has_value());

    AccessObservation rd = coldLoad(1, 5);
    rd.grant = MesiState::S; // held by core 0 -> S, owner downgrades
    ASSERT_FALSE(m.onAccess(rd).has_value());
    EXPECT_EQ(m.holderState(0, 5), MesiState::S);
    EXPECT_EQ(m.holderState(1, 5), MesiState::S);
    EXPECT_FALSE(m.selfCheck().has_value());
    EXPECT_EQ(m.totals().mustForward, 1u);
}

// ---------------------------------------------------------------------
// Engine-vs-oracle: every pattern on representative schemes is clean.
// ---------------------------------------------------------------------

TEST(OracleDiff, EnginesAgreeOnAllPatternsAndSchemes)
{
    const std::uint64_t seed = test::testSeed(2024);
    for (const char *label : {"sparse2x", "tiny32spill", "mgd", "stash"}) {
        for (const auto &p : allPatterns()) {
            PatternParams pp;
            pp.numCores = 4;
            pp.accessesPerCore = 300;
            pp.seed = seed;

            ReplaySpec spec;
            spec.cfg = makeFuzzConfig(*findFuzzScheme(label), pp.numCores,
                                      seed);
            spec.streams = p.fn(pp);
            spec.checkPeriod = 128;

            const ReplayResult r = replayWithOracle(spec);
            EXPECT_EQ(r.status, ReplayStatus::Clean)
                << label << "/" << p.name << " seed=" << seed << "\n"
                << r.report.describe() << r.haltMessage;
        }
    }
}

// ---------------------------------------------------------------------
// Fault detection: every fault_inject corruption class must be caught
// by the oracle diff (same scheme eligibility as test_verifier.cc).
// ---------------------------------------------------------------------

struct OracleFaultCase
{
    FaultKind kind;
    const char *scheme;
    const char *label;
};

class OracleFault : public ::testing::TestWithParam<OracleFaultCase>
{
};

TEST_P(OracleFault, DiffDetectsInjectedFault)
{
    const auto &fc = GetParam();
    const std::uint64_t seed = test::testSeed(77);

    PatternParams pp;
    pp.numCores = 8;
    pp.accessesPerCore = 1500;
    pp.seed = seed;

    ReplaySpec spec;
    spec.cfg = makeFuzzConfig(*findFuzzScheme(fc.scheme), pp.numCores, seed,
                              /*tinyCaches=*/false);
    spec.streams = fc.kind == FaultKind::DesyncSpilledEntry
        ? spillPressure(pp)
        : falseSharing(pp);
    spec.checkPeriod = 1;
    spec.inject = fc.kind;

    const ReplayResult r = replayWithOracle(spec);
    ASSERT_TRUE(r.injected)
        << toString(fc.kind) << " found nothing to corrupt on "
        << fc.scheme << " seed=" << seed;
    EXPECT_TRUE(r.failed())
        << toString(fc.kind) << " went undetected by the oracle on "
        << fc.scheme << " seed=" << seed << " (" << r.faultNote << ")";
}

INSTANTIATE_TEST_SUITE_P(
    AllClasses, OracleFault,
    ::testing::Values(
        OracleFaultCase{FaultKind::FlipSharerBit, "sparse2x",
                        "flip_on_sparse"},
        OracleFaultCase{FaultKind::FlipSharerBit, "inllc",
                        "flip_on_inllc"},
        OracleFaultCase{FaultKind::DropTrackerEntry, "tiny32",
                        "drop_on_tiny"},
        OracleFaultCase{FaultKind::DropTrackerEntry, "sparse2x",
                        "drop_on_sparse"},
        OracleFaultCase{FaultKind::DesyncSpilledEntry, "tiny256spill",
                        "desync_on_tiny_spill"},
        OracleFaultCase{FaultKind::ForgeOwner, "sparse2x",
                        "forge_on_sparse"},
        OracleFaultCase{FaultKind::ForgeOwner, "inllc",
                        "forge_on_inllc"}),
    [](const ::testing::TestParamInfo<OracleFaultCase> &info) {
        return std::string(info.param.label);
    });

// ---------------------------------------------------------------------
// Shrinker.
// ---------------------------------------------------------------------

TEST(Shrink, FlattenRoundTripsPerCoreOrder)
{
    PatternParams pp;
    pp.numCores = 3;
    pp.accessesPerCore = 50;
    pp.seed = 9;
    const TraceStreams streams = migratory(pp);
    const TraceStreams back =
        unflattenTrace(flattenStreams(streams), pp.numCores);
    ASSERT_EQ(back.size(), streams.size());
    for (unsigned c = 0; c < pp.numCores; ++c) {
        ASSERT_EQ(back[c].size(), streams[c].size()) << c;
        for (std::size_t i = 0; i < streams[c].size(); ++i) {
            EXPECT_EQ(back[c][i].addr, streams[c][i].addr);
            EXPECT_EQ(back[c][i].type, streams[c][i].type);
        }
    }
}

TEST(Shrink, DdminFindsMinimalCulpritSet)
{
    // Synthetic predicate: fails iff the trace still contains both a
    // store to block A by core 0 and a load of block A by core 1.
    PatternParams pp;
    pp.numCores = 2;
    pp.accessesPerCore = 200;
    pp.seed = 4;
    TraceStreams streams = randomMix(pp);
    const Addr culprit = 0xABCD00;
    streams[0][57] = {1, AccessType::Store, culprit};
    streams[1][131] = {1, AccessType::Load, culprit};

    auto fails = [&](const TraceStreams &s) {
        bool st = false, ld = false;
        for (const auto &a : s[0])
            st |= a.type == AccessType::Store && a.addr == culprit;
        for (const auto &a : s[1])
            ld |= a.type == AccessType::Load && a.addr == culprit;
        return st && ld;
    };
    ASSERT_TRUE(fails(streams));

    const ShrinkResult sh = shrinkTrace(streams, pp.numCores, fails);
    EXPECT_FALSE(sh.exhausted);
    EXPECT_EQ(sh.finalAccesses, 2u)
        << "ddmin should isolate exactly the two culprit accesses";
    EXPECT_TRUE(fails(sh.streams));
}

TEST(Shrink, MinimizesInjectedFaultToTinyTrace)
{
    const std::uint64_t seed = test::testSeed(55);
    PatternParams pp;
    pp.numCores = 4;
    pp.accessesPerCore = 600;
    pp.seed = seed;

    ReplaySpec spec;
    spec.cfg = makeFuzzConfig(*findFuzzScheme("tiny32"), pp.numCores, seed);
    spec.streams = falseSharing(pp);
    spec.checkPeriod = 1;
    spec.inject = FaultKind::DropTrackerEntry;

    const ReplayResult orig = replayWithOracle(spec);
    ASSERT_TRUE(orig.injected) << "seed=" << seed;
    ASSERT_TRUE(orig.failed()) << "seed=" << seed;

    const ShrinkResult sh = shrinkTrace(
        spec.streams, pp.numCores,
        [&](const TraceStreams &s) {
            ReplaySpec cand = spec;
            cand.streams = s;
            const ReplayResult r = replayWithOracle(cand);
            return r.injected && r.failed();
        },
        400);
    EXPECT_LT(sh.finalAccesses, 100u)
        << "minimized repro must stay under 100 accesses (seed=" << seed
        << ")";
    EXPECT_LE(sh.finalAccesses, sh.originalAccesses);
}

// ---------------------------------------------------------------------
// Corpus round trip.
// ---------------------------------------------------------------------

TEST(Corpus, SaveLoadRoundTrip)
{
    PatternParams pp;
    pp.numCores = 2;
    pp.accessesPerCore = 40;
    pp.seed = 3;

    CorpusCase c;
    c.spec.cfg = makeFuzzConfig(*findFuzzScheme("tiny32spill"), pp.numCores,
                                3);
    c.spec.streams = producerConsumer(pp);
    c.spec.checkPeriod = 64;
    c.spec.inject = FaultKind::DropTrackerEntry;
    c.expect = CorpusExpect::Detected;
    c.rule = "priv.presence";

    const std::string base =
        ::testing::TempDir() + "tinydir_corpus_roundtrip";
    saveCorpusCase(base, c);
    const CorpusCase back = loadCorpusCase(base + ".meta");

    EXPECT_EQ(back.spec.cfg.tracker, TrackerKind::TinyDir);
    EXPECT_TRUE(back.spec.cfg.tinySpill);
    EXPECT_EQ(back.spec.cfg.numCores, 2u);
    EXPECT_EQ(back.spec.checkPeriod, 64u);
    ASSERT_TRUE(back.spec.inject.has_value());
    EXPECT_EQ(*back.spec.inject, FaultKind::DropTrackerEntry);
    EXPECT_EQ(back.expect, CorpusExpect::Detected);
    EXPECT_EQ(back.rule, "priv.presence");
    ASSERT_EQ(back.spec.streams.size(), c.spec.streams.size());
    for (unsigned core = 0; core < pp.numCores; ++core) {
        ASSERT_EQ(back.spec.streams[core].size(),
                  c.spec.streams[core].size());
        for (std::size_t i = 0; i < c.spec.streams[core].size(); ++i) {
            EXPECT_EQ(back.spec.streams[core][i].addr,
                      c.spec.streams[core][i].addr);
            EXPECT_EQ(back.spec.streams[core][i].gap,
                      c.spec.streams[core][i].gap);
            EXPECT_EQ(back.spec.streams[core][i].type,
                      c.spec.streams[core][i].type);
        }
    }
}
