/** @file Unit tests for the generic set-associative array. */

#include <gtest/gtest.h>

#include <set>

#include "mem/cache_array.hh"

using namespace tinydir;

namespace
{

struct Entry
{
    Addr tag = 0;
    bool valid = false;
};

} // namespace

/**
 * The SoA tag lane and valid masks must mirror the entry payload
 * exactly through any mix of install / clearWay / victim churn —
 * lookups and victim scans read only the lane, so a divergence would
 * silently change simulation results.
 */
void
expectLanesMatch(const CacheArray<Entry> &arr)
{
    for (std::uint64_t s = 0; s < arr.numSets(); ++s) {
        const Addr *lane = arr.laneBase(s);
        const std::uint64_t mask = arr.validMask(s);
        for (unsigned w = 0; w < arr.assoc(); ++w) {
            const Entry &e = arr.way(s, w);
            EXPECT_EQ(lane[w],
                      e.valid ? e.tag : CacheArray<Entry>::invalidTag)
                << "set " << s << " way " << w;
            EXPECT_EQ((mask >> w) & 1, e.valid ? 1u : 0u)
                << "set " << s << " way " << w;
            if (e.valid) {
                EXPECT_EQ(arr.findWay(s, e.tag), static_cast<int>(w));
            }
        }
    }
}

TEST(CacheArray, SoALaneMatchesEntries)
{
    CacheArray<Entry> arr(8, 4, ReplPolicy::Lru);
    // Deterministic churn: installs into victim ways, periodic
    // touches and explicit invalidations.
    for (Addr tag = 1; tag <= 200; ++tag) {
        const std::uint64_t set = (tag * 7) % 8;
        const unsigned w = arr.victimWay(set);
        arr.install(set, w, tag);
        arr.touch(set, w);
        if (tag % 5 == 0)
            arr.touch(set, arr.assoc() - 1 - w % arr.assoc());
        if (tag % 11 == 0)
            arr.clearWay((tag * 3) % 8, static_cast<unsigned>(tag % 4));
    }
    expectLanesMatch(arr);
    arr.reset();
    expectLanesMatch(arr);
    EXPECT_EQ(arr.validMask(0), 0u);
}

TEST(CacheArray, FindMissOnEmpty)
{
    CacheArray<Entry> arr(4, 2, ReplPolicy::Lru);
    EXPECT_EQ(arr.find(0, 42), nullptr);
    EXPECT_EQ(arr.findWay(3, 42), -1);
}

TEST(CacheArray, InsertAndFind)
{
    CacheArray<Entry> arr(4, 2, ReplPolicy::Lru);
    unsigned w = arr.victimWay(1);
    arr.install(1, w, 100);
    arr.touch(1, w);
    ASSERT_NE(arr.find(1, 100), nullptr);
    EXPECT_EQ(arr.find(0, 100), nullptr); // wrong set
}

TEST(CacheArray, VictimPrefersInvalid)
{
    CacheArray<Entry> arr(1, 4, ReplPolicy::Lru);
    for (unsigned w = 0; w < 3; ++w) {
        arr.install(0, w, w + 10);
        arr.touch(0, w);
    }
    EXPECT_EQ(arr.victimWay(0), 3u);
}

TEST(CacheArray, LruEvictsOldest)
{
    CacheArray<Entry> arr(1, 4, ReplPolicy::Lru);
    for (unsigned w = 0; w < 4; ++w) {
        arr.install(0, w, w + 10);
        arr.touch(0, w);
    }
    // Refresh way 0; oldest is now way 1.
    arr.touch(0, 0);
    EXPECT_EQ(arr.victimWay(0), 1u);
    arr.touch(0, 1);
    EXPECT_EQ(arr.victimWay(0), 2u);
}

TEST(CacheArray, DemoteMakesVictim)
{
    CacheArray<Entry> arr(1, 4, ReplPolicy::Lru);
    for (unsigned w = 0; w < 4; ++w) {
        arr.install(0, w, w + 10);
        arr.touch(0, w);
    }
    arr.demote(0, 3);
    EXPECT_EQ(arr.victimWay(0), 3u);
}

TEST(CacheArray, NruTwoPassBehaviour)
{
    CacheArray<Entry> arr(1, 4, ReplPolicy::Nru);
    for (unsigned w = 0; w < 4; ++w) {
        arr.install(0, w, w + 10);
        arr.touch(0, w); // all recently used
    }
    // All NRU bits clear: the array resets them and picks way 0.
    EXPECT_EQ(arr.victimWay(0), 0u);
    // After the reset pass every way is old; touching way 0 protects
    // it, so the next victim is way 1.
    arr.touch(0, 0);
    EXPECT_EQ(arr.victimWay(0), 1u);
}

TEST(CacheArray, PinnedWaysAreNeverVictims)
{
    CacheArray<Entry> arr(1, 4, ReplPolicy::Lru);
    for (unsigned w = 0; w < 4; ++w) {
        arr.install(0, w, w + 10);
        arr.touch(0, w);
    }
    const std::uint64_t pinned = 0b0011; // ways 0 and 1
    for (int i = 0; i < 16; ++i) {
        unsigned v = arr.victimWay(0, pinned);
        EXPECT_GE(v, 2u);
    }
}

TEST(CacheArray, RandomVictimRespectsPins)
{
    CacheArray<Entry> arr(1, 4, ReplPolicy::Random);
    for (unsigned w = 0; w < 4; ++w)
        arr.install(0, w, w + 10);
    const std::uint64_t pinned = 0b1101; // all but way 1
    for (int i = 0; i < 32; ++i)
        EXPECT_EQ(arr.victimWay(0, pinned), 1u);
}

TEST(CacheArray, ResetInvalidatesAll)
{
    CacheArray<Entry> arr(2, 2, ReplPolicy::Lru);
    arr.install(0, 0, 42);
    arr.reset();
    EXPECT_EQ(arr.find(0, 42), nullptr);
}

/** Parameterized sweep: fill-then-thrash keeps exactly assoc entries. */
class CacheArrayAssoc : public ::testing::TestWithParam<unsigned>
{
};

TEST_P(CacheArrayAssoc, WorkingSetBoundedByAssoc)
{
    const unsigned assoc = GetParam();
    CacheArray<Entry> arr(1, assoc, ReplPolicy::Lru);
    for (Addr t = 0; t < 100; ++t) {
        if (arr.findWay(0, t) < 0) {
            unsigned w = arr.victimWay(0);
            arr.install(0, w, t);
        }
        arr.touch(0, static_cast<unsigned>(arr.findWay(0, t)));
    }
    std::set<Addr> live;
    for (unsigned w = 0; w < assoc; ++w) {
        ASSERT_TRUE(arr.way(0, w).valid);
        live.insert(arr.way(0, w).tag);
    }
    EXPECT_EQ(live.size(), assoc);
    // With LRU the survivors are the last `assoc` tags.
    for (Addr t = 100 - assoc; t < 100; ++t)
        EXPECT_TRUE(live.count(t)) << "missing tag " << t;
}

INSTANTIATE_TEST_SUITE_P(Assocs, CacheArrayAssoc,
                         ::testing::Values(1u, 2u, 4u, 8u, 16u));
