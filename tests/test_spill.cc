/** @file Tests of the Dynamic Spill policy and spilled-entry protocol. */

#include <gtest/gtest.h>

#include "proto/engine.hh"
#include "proto/spill.hh"
#include "proto/tiny_dir.hh"
#include "test_util.hh"

using namespace tinydir;
using tinydir::test::Harness;
using tinydir::test::smallConfig;

namespace
{

SystemConfig
spillCfg(double factor = 1.0 / 2048)
{
    SystemConfig cfg = smallConfig(TrackerKind::TinyDir, factor);
    cfg.tinyPolicy = TinyPolicy::DstraGnru;
    cfg.tinySpill = true;
    return cfg;
}

} // namespace

TEST(SpillPolicy, StaysPermissiveWhenHarmless)
{
    SystemConfig cfg = SystemConfig::scaled(8);
    SpillPolicy sp(cfg, 1);
    EXPECT_EQ(sp.thresholdIdx(0), 0u); // permissive start
    // Windows with equal miss rates in sampled and spill-exercising
    // sets: the threshold must stay at the permissive floor.
    for (unsigned win = 0; win < 7; ++win) {
        for (Counter i = 0; i < cfg.spillWindowAccesses; ++i) {
            const bool sampled = i % 16 == 0;
            const bool miss = i % 10 == 0;
            sp.observe(0, sampled, miss, false);
        }
    }
    EXPECT_EQ(sp.thresholdIdx(0), 0u);
    EXPECT_EQ(sp.windowsCompleted(), 7u);
}

TEST(SpillPolicy, ThresholdRisesWhenMissesGrow)
{
    SystemConfig cfg = SystemConfig::scaled(8);
    SpillPolicy sp(cfg, 1);
    ASSERT_EQ(sp.thresholdIdx(0), 0u);
    // Now the spill sets miss much more than the sampled sets.
    for (unsigned win = 0; win < 3; ++win) {
        for (Counter i = 0; i < cfg.spillWindowAccesses; ++i) {
            const bool sampled = i % 16 == 0;
            const bool miss = !sampled && i % 2 == 0; // 50% vs 0%
            sp.observe(0, sampled, miss, false);
        }
    }
    EXPECT_EQ(sp.thresholdIdx(0), 3u);
}

TEST(SpillPolicy, DeltaClassesFollowProfile)
{
    SystemConfig cfg = SystemConfig::scaled(8);
    SpillPolicy sp(cfg, 1);
    // Category A: miss rate >= 10%, STRA >= 0.4 -> delta = 1/4.
    for (Counter i = 0; i < cfg.spillWindowAccesses; ++i)
        sp.observe(0, i % 16 == 0, i % 5 == 0, i % 2 == 0);
    EXPECT_DOUBLE_EQ(sp.delta(0), 0.25);
    // Category D: low miss rate, low STRA -> delta = 1/32.
    for (Counter i = 0; i < cfg.spillWindowAccesses; ++i)
        sp.observe(0, i % 16 == 0, false, false);
    EXPECT_DOUBLE_EQ(sp.delta(0), 1.0 / 32);
    // Category C: low miss rate, high STRA -> delta = 1/16.
    for (Counter i = 0; i < cfg.spillWindowAccesses; ++i)
        sp.observe(0, i % 16 == 0, false, i % 2 == 0);
    EXPECT_DOUBLE_EQ(sp.delta(0), 1.0 / 16);
}

TEST(SpillPolicy, SampledSetsNeverSpill)
{
    SystemConfig cfg = SystemConfig::scaled(8);
    SpillPolicy sp(cfg, 1);
    EXPECT_FALSE(sp.allows(0, 7, true));
    EXPECT_TRUE(sp.allows(0, 7, false));
}

TEST(Spill, DecliningTinyDirSpillsSharedEntry)
{
    // One tiny entry per slice and a permissive spill threshold: the
    // spill path must engage for shared blocks the tiny directory
    // cannot hold.
    auto cfg = spillCfg();
    Harness h(cfg);
    auto *tracker = dynamic_cast<TinyDirTracker *>(h.sys.tracker.get());
    ASSERT_NE(tracker, nullptr);
    // Drive the per-bank thresholds to 0 by feeding harmless windows.
    for (unsigned bank = 0; bank < cfg.numCores; ++bank) {
        for (unsigned win = 0; win < 7; ++win) {
            for (Counter i = 0; i < cfg.spillWindowAccesses; ++i) {
                h.sys.tracker->onLlcAccess(bank + 8 * (i % 64),
                                           false, false);
            }
        }
    }
    // Occupy the single tiny entry of bank 0's slice with block a.
    const Addr a = 8, b = 16, c = 24; // all bank 0, different sets
    (void)c;
    h.ifetch(0, a);
    ASSERT_EQ(h.sys.tracker->view(a).where, Residence::DirSram);
    // Now make b shared and hot; the tiny directory declines (equal
    // category C0 initially, occupied slice) and must spill instead.
    h.ifetch(1, b);
    auto vb = h.sys.tracker->view(b);
    EXPECT_EQ(vb.where, Residence::LlcSpill);
    EXPECT_GE(tracker->spills(), 1u);
    ASSERT_NE(h.sys.llc.findSpill(b), nullptr);
    h.expectCoherent();
}

TEST(Spill, SpilledReadsAreTwoHopAndCounted)
{
    auto cfg = spillCfg();
    Harness h(cfg);
    for (unsigned bank = 0; bank < cfg.numCores; ++bank) {
        for (unsigned win = 0; win < 7; ++win) {
            for (Counter i = 0; i < cfg.spillWindowAccesses; ++i) {
                h.sys.tracker->onLlcAccess(bank + 8 * (i % 64),
                                           false, false);
            }
        }
    }
    const Addr a = 8, b = 16;
    h.ifetch(0, a); // occupies the tiny slice
    h.ifetch(1, b); // spilled
    ASSERT_EQ(h.sys.tracker->view(b).where, Residence::LlcSpill);
    const Counter before = h.sys.engine.stats.lengthenedReads.value();
    h.ifetch(2, b); // read of a spilled shared block: 2-hop
    EXPECT_EQ(h.sys.engine.stats.lengthenedReads.value(), before);
    EXPECT_GE(h.sys.engine.stats.savedBySpill.value(), 1u);
    h.expectCoherent();
}

TEST(Spill, GetXCollapsesSpillToCorruptExclusive)
{
    auto cfg = spillCfg();
    Harness h(cfg);
    for (unsigned bank = 0; bank < cfg.numCores; ++bank) {
        for (unsigned win = 0; win < 7; ++win) {
            for (Counter i = 0; i < cfg.spillWindowAccesses; ++i) {
                h.sys.tracker->onLlcAccess(bank + 8 * (i % 64),
                                           false, false);
            }
        }
    }
    const Addr a = 8, b = 16;
    h.ifetch(0, a);
    h.ifetch(1, b);
    ASSERT_EQ(h.sys.tracker->view(b).where, Residence::LlcSpill);
    h.store(2, b);
    EXPECT_EQ(h.sys.llc.findSpill(b), nullptr);
    auto vb = h.sys.tracker->view(b);
    EXPECT_TRUE(vb.ts.exclusive());
    EXPECT_EQ(vb.where, Residence::LlcCorrupt);
    EXPECT_EQ(h.stateAt(1, b), MesiState::I);
    h.expectCoherent();
}

TEST(Spill, LastSharerNoticeFreesSpillEntry)
{
    auto cfg = spillCfg();
    cfg.l1Bytes = 4 * 2 * blockBytes;
    cfg.l1Assoc = 2;
    cfg.l2Bytes = 8 * 2 * blockBytes;
    cfg.l2Assoc = 2;
    Harness h(cfg);
    for (unsigned bank = 0; bank < cfg.numCores; ++bank) {
        for (unsigned win = 0; win < 7; ++win) {
            for (Counter i = 0; i < cfg.spillWindowAccesses; ++i) {
                h.sys.tracker->onLlcAccess(bank + 8 * (i % 64),
                                           false, false);
            }
        }
    }
    // This shrunken LLC has two sets per bank; set 0 is sampled
    // (no-spill), so use blocks mapping to set 1.
    const Addr a = 8, b = 24;
    h.ifetch(0, a);
    h.ifetch(1, b);
    ASSERT_EQ(h.sys.tracker->view(b).where, Residence::LlcSpill);
    // Evict b from core 1's hierarchy; the last-sharer notice must
    // free the spilled entry.
    for (Addr blk = 3000; blk < 3200; ++blk)
        h.ifetch(1, blk);
    EXPECT_EQ(h.stateAt(1, b), MesiState::I);
    EXPECT_EQ(h.sys.llc.findSpill(b), nullptr);
    EXPECT_TRUE(h.sys.tracker->view(b).ts.invalid());
    h.expectCoherent();
}

TEST(Spill, DisabledWhenConfiguredOff)
{
    auto cfg = spillCfg();
    cfg.tinySpill = false;
    Harness h(cfg);
    const Addr a = 8, b = 16;
    h.ifetch(0, a);
    h.ifetch(1, b);
    EXPECT_EQ(h.sys.llc.findSpill(b), nullptr);
    EXPECT_EQ(h.sys.tracker->spills(), 0u);
}
