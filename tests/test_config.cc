/** @file Tests of the Table I sizing invariants in SystemConfig. */

#include <gtest/gtest.h>

#include <string>

#include "common/config.hh"
#include "common/sim_error.hh"

using namespace tinydir;

TEST(Config, TableIDefaults)
{
    SystemConfig cfg;
    cfg.validate();
    // N = 128 cores x (128 KB / 64 B) = 256 K blocks.
    EXPECT_EQ(cfg.aggregateL2Blocks(), 262144u);
    // LLC holds 2N blocks = 512 K blocks = 32 MB.
    EXPECT_EQ(cfg.llcBlocksTotal(), 524288u);
    EXPECT_EQ(cfg.llcBanks(), 128u);
    // 512 K blocks / 128 banks / 16 ways = 256 sets per bank.
    EXPECT_EQ(cfg.llcSetsPerBank(), 256u);
    // 2x directory: 512 K entries, 4 K per slice.
    EXPECT_EQ(cfg.dirEntriesTotal(), 524288u);
    EXPECT_EQ(cfg.dirEntriesPerSlice(), 4096u);
    EXPECT_EQ(cfg.effectiveDirAssoc(), 8u);
    // 128 cores -> 16x8 mesh.
    EXPECT_EQ(cfg.meshWidth(), 16u);
    EXPECT_EQ(cfg.meshHeight(), 8u);
}

TEST(Config, TinySizesMatchPaper)
{
    SystemConfig cfg;
    // Paper Section V: per-slice entries are 64, 32, 16, 8 for
    // 1/32x .. 1/256x; the last two are fully associative.
    cfg.dirSizeFactor = 1.0 / 32;
    EXPECT_EQ(cfg.dirEntriesPerSlice(), 64u);
    EXPECT_EQ(cfg.effectiveDirAssoc(), 8u);
    cfg.dirSizeFactor = 1.0 / 64;
    EXPECT_EQ(cfg.dirEntriesPerSlice(), 32u);
    EXPECT_EQ(cfg.effectiveDirAssoc(), 8u);
    cfg.dirSizeFactor = 1.0 / 128;
    EXPECT_EQ(cfg.dirEntriesPerSlice(), 16u);
    EXPECT_EQ(cfg.effectiveDirAssoc(), 16u); // fully associative
    cfg.dirSizeFactor = 1.0 / 256;
    EXPECT_EQ(cfg.dirEntriesPerSlice(), 8u);
    EXPECT_EQ(cfg.effectiveDirAssoc(), 8u); // fully associative
}

TEST(Config, ScaledPreservesRatios)
{
    for (unsigned cores : {8u, 16u, 32u, 64u}) {
        SystemConfig cfg = SystemConfig::scaled(cores);
        cfg.validate();
        EXPECT_EQ(cfg.llcBlocksTotal(), 2 * cfg.aggregateL2Blocks());
        EXPECT_EQ(cfg.llcBanks(), cores);
        EXPECT_EQ(cfg.dirEntriesTotal(), 2 * cfg.aggregateL2Blocks());
        EXPECT_GE(cfg.meshWidth() * cfg.meshHeight(), cores);
    }
}

TEST(Config, HalvedLlcForSection5A)
{
    SystemConfig cfg;
    cfg.llcBlocksPerN = 1.0; // 16 MB LLC
    cfg.validate();
    EXPECT_EQ(cfg.llcBlocksTotal(), 262144u);
    EXPECT_EQ(cfg.llcSetsPerBank(), 128u);
}

TEST(Config, NamesRoundTrip)
{
    EXPECT_EQ(toString(TrackerKind::TinyDir), "tiny");
    EXPECT_EQ(toString(TrackerKind::SparseDir), "sparse");
    EXPECT_EQ(toString(TinyPolicy::Dstra), "DSTRA");
    EXPECT_EQ(toString(TinyPolicy::DstraGnru), "DSTRA+gNRU");
}

TEST(ConfigValidate, RejectsBadGeometry)
{
    SystemConfig cfg;
    cfg.numCores = 96; // not a power of two
    try {
        cfg.validate();
        FAIL() << "expected ConfigError";
    } catch (const ConfigError &e) {
        EXPECT_NE(std::string(e.what()).find("power of two"),
                  std::string::npos)
            << e.what();
    }
}
