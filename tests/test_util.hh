/**
 * @file
 * Shared helpers for protocol-level tests: a small System wrapper with
 * explicit access stepping and invariant assertion.
 */

#ifndef TINYDIR_TESTS_TEST_UTIL_HH
#define TINYDIR_TESTS_TEST_UTIL_HH

#include <gtest/gtest.h>

#include <cstdlib>
#include <iostream>
#include <string>

#include "sim/system.hh"

namespace tinydir::test
{

/**
 * Seed for randomized tests. TINYDIR_TEST_SEED in the environment
 * overrides @p fallback (so a failure seen in CI can be replayed
 * locally: TINYDIR_TEST_SEED=N ctest -R <test>); the chosen value is
 * printed so every failure log names the seed that reproduces it.
 */
inline std::uint64_t
testSeed(std::uint64_t fallback)
{
    std::uint64_t seed = fallback;
    if (const char *env = std::getenv("TINYDIR_TEST_SEED"))
        seed = std::strtoull(env, nullptr, 0);
    std::cout << "[   SEED   ] TINYDIR_TEST_SEED=" << seed << std::endl;
    return seed;
}

/** An 8-core system scaled down for directed protocol tests. */
inline SystemConfig
smallConfig(TrackerKind kind, double dir_factor = 2.0)
{
    SystemConfig cfg = SystemConfig::scaled(8);
    cfg.tracker = kind;
    cfg.dirSizeFactor = dir_factor;
    return cfg;
}

/** Drives a System with per-core clocks like the Driver would. */
class Harness
{
  public:
    explicit Harness(const SystemConfig &cfg) : sys(cfg) {}

    /** Execute one access on core @p c; returns its latency. */
    Cycle
    step(CoreId c, AccessType type, Addr block, Cycle gap = 10)
    {
        TraceAccess acc;
        acc.gap = gap;
        acc.type = type;
        acc.addr = block << blockShift;
        const Cycle issue = sys.cores[c].clock + gap;
        const Cycle done = sys.executeAccess(c, acc, issue);
        sys.cores[c].clock = done;
        return done - issue;
    }

    Cycle load(CoreId c, Addr b) { return step(c, AccessType::Load, b); }
    Cycle store(CoreId c, Addr b)
    {
        return step(c, AccessType::Store, b);
    }
    Cycle ifetch(CoreId c, Addr b)
    {
        return step(c, AccessType::Ifetch, b);
    }

    MesiState
    stateAt(CoreId c, Addr b) const
    {
        return sys.privs[c].state(b);
    }

    void
    expectCoherent()
    {
        std::string msg;
        EXPECT_TRUE(sys.verifyCoherence(&msg)) << msg;
    }

    System sys;
};

} // namespace tinydir::test

#endif // TINYDIR_TESTS_TEST_UTIL_HH
