/** @file Edge-path tests of the tiny directory and its spill plumbing. */

#include <gtest/gtest.h>

#include "proto/engine.hh"
#include "proto/tiny_dir.hh"
#include "test_util.hh"

using namespace tinydir;
using tinydir::test::Harness;
using tinydir::test::smallConfig;

namespace
{

SystemConfig
tinyCfg(TinyPolicy policy, bool spill, double factor = 1.0 / 32)
{
    SystemConfig cfg = smallConfig(TrackerKind::TinyDir, factor);
    cfg.tinyPolicy = policy;
    cfg.tinySpill = spill;
    return cfg;
}

void
makePermissive(Harness &h, const SystemConfig &cfg)
{
    for (unsigned bank = 0; bank < cfg.numCores; ++bank) {
        for (unsigned win = 0; win < 7; ++win) {
            for (Counter i = 0; i < cfg.spillWindowAccesses; ++i) {
                h.sys.tracker->onLlcAccess(bank + 8 * (i % 64), false,
                                           false);
            }
        }
    }
}

} // namespace

TEST(TinyEdges, EvictedEntryWithoutLlcTagBackInvalidates)
{
    // A tiny-tracked block whose LLC data entry has been evicted must
    // be back-invalidated when its tiny entry is displaced (the
    // paper's "rare case").
    auto cfg = tinyCfg(TinyPolicy::DstraGnru, false, 1.0 / 2048);
    ASSERT_EQ(cfg.dirEntriesPerSlice(), 1u);
    Harness h(cfg);
    const Addr a = 8;
    h.ifetch(0, a); // tiny-tracked, shared by core 0
    ASSERT_EQ(h.sys.tracker->view(a).where, Residence::DirSram);
    // Evict a's LLC data entry by filling its set from another core.
    const Addr stride = h.sys.llc.numBanks() * h.sys.llc.setsPerBank();
    for (unsigned i = 1; i <= 2 * h.sys.llc.assoc(); ++i)
        h.load(1, a + i * stride);
    ASSERT_EQ(h.sys.llc.findData(a), nullptr);
    ASSERT_EQ(h.stateAt(0, a), MesiState::S); // still cached privately
    // Displace a's tiny entry: make its slice-mate EP'd, then allocate.
    h.sys.tracker->tick(100'000'000);
    const Addr b = 16; // same slice
    h.ifetch(2, b);
    EXPECT_EQ(h.sys.tracker->view(b).where, Residence::DirSram);
    // a had no LLC tag to corrupt: it must have been back-invalidated.
    EXPECT_EQ(h.stateAt(0, a), MesiState::I);
    EXPECT_TRUE(h.sys.tracker->view(a).ts.invalid());
    h.expectCoherent();
}

TEST(TinyEdges, EvictedSharedEntrySpillsWhenAllowed)
{
    auto cfg = tinyCfg(TinyPolicy::DstraGnru, true, 1.0 / 2048);
    Harness h(cfg);
    makePermissive(h, cfg);
    const Addr a = 8, b = 16;
    h.ifetch(0, a); // tiny-tracked shared
    ASSERT_EQ(h.sys.tracker->view(a).where, Residence::DirSram);
    h.sys.tracker->tick(100'000'000); // EP a's entry
    h.ifetch(1, b);                   // displaces a
    // a's tracking must have moved to a spilled entry, not corrupted
    // bits (spill is consulted first for shared victims).
    auto va = h.sys.tracker->view(a);
    EXPECT_EQ(va.where, Residence::LlcSpill);
    EXPECT_TRUE(va.ts.shared());
    EXPECT_EQ(h.stateAt(0, a), MesiState::S);
    h.expectCoherent();
}

TEST(TinyEdges, SpillVictimCascadeTransfersToCorrupt)
{
    // Evicting a spilled entry E_B from the LLC transfers B to the
    // corrupted-shared representation.
    auto cfg = tinyCfg(TinyPolicy::DstraGnru, true, 1.0 / 2048);
    Harness h(cfg);
    makePermissive(h, cfg);
    const Addr a = 8, b = 24; // same slice, different LLC sets
    h.ifetch(0, a); // occupies the single tiny entry
    h.ifetch(1, b); // spilled
    ASSERT_EQ(h.sys.tracker->view(b).where, Residence::LlcSpill);
    // Thrash b's LLC set until the spill entry gets evicted.
    const Addr stride = h.sys.llc.numBanks() * h.sys.llc.setsPerBank();
    for (unsigned i = 1; i <= 2 * h.sys.llc.assoc(); ++i)
        h.load(2, b + i * stride);
    auto vb = h.sys.tracker->view(b);
    // Either the spill entry survived (set had room) or b is now
    // corrupt / back-invalidated; all are coherent outcomes.
    if (vb.where == Residence::LlcCorrupt) {
        EXPECT_TRUE(vb.ts.shared());
    }
    h.expectCoherent();
}

TEST(TinyEdges, CountersTransferAcrossResidences)
{
    // STRA counters must follow the tracking entry: build up a high
    // category in the corrupted representation, then verify the block
    // wins a tiny allocation against a colder resident.
    auto cfg = tinyCfg(TinyPolicy::Dstra, false, 1.0 / 2048);
    Harness h(cfg);
    const Addr cold = 8, hot = 16; // same slice
    h.ifetch(0, cold); // C0 resident entry
    // Make `hot` shared-corrupt and hammer it with shared reads from
    // alternating cores (evict from the reader's cache via streams).
    h.load(1, hot);
    h.load(2, hot);
    for (int round = 0; round < 6; ++round) {
        h.store(3, hot);
        h.load(1, hot);
        h.load(2, hot);
    }
    // DSTRA (no gNRU help) must eventually displace the C0 entry.
    EXPECT_EQ(h.sys.tracker->view(hot).where, Residence::DirSram);
    EXPECT_EQ(h.sys.tracker->view(cold).where, Residence::LlcCorrupt);
    h.expectCoherent();
}

TEST(TinyEdges, TickCatchUpAfterLongIdle)
{
    auto cfg = tinyCfg(TinyPolicy::DstraGnru, false);
    Harness h(cfg);
    h.ifetch(0, 100);
    // A very long idle gap must be absorbed in one tick() call
    // without stalling (regression guard for the catch-up loop).
    h.sys.tracker->tick(2'000'000'000ull);
    h.ifetch(1, 100);
    h.expectCoherent();
}

TEST(TinyEdges, SramBitsShrinkWithSize)
{
    SystemConfig cfg;
    cfg.tracker = TrackerKind::TinyDir;
    Llc llc(cfg);
    std::uint64_t prev = ~0ull;
    for (double f : {1.0 / 32, 1.0 / 64, 1.0 / 128, 1.0 / 256}) {
        SystemConfig c2 = cfg;
        c2.dirSizeFactor = f;
        TinyDirTracker t(c2, llc);
        EXPECT_LT(t.trackerSramBits(), prev);
        prev = t.trackerSramBits();
    }
    // Paper: 23.75 KB total for 1/256x at 128 cores.
    SystemConfig c2 = cfg;
    c2.dirSizeFactor = 1.0 / 256;
    TinyDirTracker t(c2, llc);
    EXPECT_NEAR(static_cast<double>(t.trackerSramBits()) / 8 / 1024,
                23.75, 1.5);
}

TEST(TinyEdges, NarrowCountersStillWork)
{
    auto cfg = tinyCfg(TinyPolicy::DstraGnru, true);
    cfg.straCounterBits = 2; // ablation extreme
    Harness h(cfg);
    for (CoreId c = 0; c < 8; ++c)
        h.load(c, 100 + c);
    for (CoreId c = 1; c < 8; ++c)
        h.load(c, 100);
    h.expectCoherent();
}
