/**
 * @file
 * FlatMap (common/flat_map.hh) unit tests: std::unordered_map
 * equivalence under churn, backward-shift erase on forced collision
 * chains, power-of-two growth, reserve() allocation behaviour, and
 * the eraseIf pruning sweep.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/flat_map.hh"
#include "common/rng.hh"

using namespace tinydir;

TEST(FlatMap, InsertFindErase)
{
    FlatMap<int> m;
    EXPECT_TRUE(m.empty());
    EXPECT_EQ(m.find(7), nullptr);
    EXPECT_FALSE(m.erase(7));

    m.insert(7, 70);
    m.insert(9, 90);
    ASSERT_NE(m.find(7), nullptr);
    EXPECT_EQ(*m.find(7), 70);
    EXPECT_EQ(*m.find(9), 90);
    EXPECT_EQ(m.size(), 2u);

    // Overwrite keeps the size.
    m.insert(7, 71);
    EXPECT_EQ(*m.find(7), 71);
    EXPECT_EQ(m.size(), 2u);

    EXPECT_TRUE(m.erase(7));
    EXPECT_EQ(m.find(7), nullptr);
    EXPECT_EQ(*m.find(9), 90);
    EXPECT_EQ(m.size(), 1u);
}

TEST(FlatMap, OperatorBracketInsertsDefault)
{
    FlatMap<std::uint32_t> m;
    EXPECT_EQ(m[42], 0u);
    m[42] = 5;
    EXPECT_EQ(m[42], 5u);
    EXPECT_EQ(m.size(), 1u);
    EXPECT_TRUE(m.contains(42));
    EXPECT_FALSE(m.contains(43));
}

/**
 * Randomized churn against a std::unordered_map model: every lookup,
 * size, and the final contents must agree. This is the operational
 * equivalence the busyUntil / PrivateCache::info migration relies on.
 */
TEST(FlatMap, ChurnMatchesStdMap)
{
    FlatMap<std::uint64_t> m;
    std::unordered_map<Addr, std::uint64_t> model;
    Rng rng(1234);
    for (std::uint64_t i = 0; i < 200000; ++i) {
        const Addr k = rng.below(512);
        const double roll = rng.uniform();
        if (roll < 0.45) {
            m.insert(k, i);
            model[k] = i;
        } else if (roll < 0.70) {
            EXPECT_EQ(m.erase(k), model.erase(k) == 1) << "key " << k;
        } else {
            const auto *v = m.find(k);
            const auto it = model.find(k);
            ASSERT_EQ(v != nullptr, it != model.end()) << "key " << k;
            if (v) {
                EXPECT_EQ(*v, it->second) << "key " << k;
            }
        }
        ASSERT_EQ(m.size(), model.size());
    }
    // Full-content comparison via forEach.
    std::unordered_map<Addr, std::uint64_t> seen;
    m.forEach([&](Addr k, std::uint64_t v) { seen.emplace(k, v); });
    EXPECT_EQ(seen.size(), model.size());
    EXPECT_TRUE(seen == model);
}

namespace
{

/** The map's fibonacci hash, for crafting collision chains. */
std::size_t
homeOf(Addr key, std::size_t capacity)
{
    unsigned shift = 64;
    for (std::size_t c = capacity; c > 1; c >>= 1)
        --shift;
    return static_cast<std::size_t>(
        (key * 0x9E3779B97F4A7C15ull) >> shift);
}

} // namespace

/**
 * Backward-shift erase on a forced collision chain: keys hashing to
 * the same home slot probe linearly, so erasing an early chain member
 * must shift the rest back without losing anyone.
 */
TEST(FlatMap, BackwardShiftKeepsCollisionChain)
{
    FlatMap<int> m;
    m.reserve(8);
    const std::size_t cap = m.capacity();
    ASSERT_NE(cap, 0u);

    // Find four distinct keys sharing one home slot.
    std::vector<Addr> chain;
    const std::size_t home = homeOf(1, cap);
    for (Addr k = 1; chain.size() < 4 && k < 2000000; ++k) {
        if (homeOf(k, cap) == home)
            chain.push_back(k);
    }
    ASSERT_EQ(chain.size(), 4u);

    for (std::size_t i = 0; i < chain.size(); ++i)
        m.insert(chain[i], static_cast<int>(i));
    ASSERT_EQ(m.capacity(), cap) << "reserve(8) must cover 4 entries";

    // Erase the second chain member; the rest must survive.
    EXPECT_TRUE(m.erase(chain[1]));
    EXPECT_EQ(m.find(chain[1]), nullptr);
    for (std::size_t i : {std::size_t(0), std::size_t(2), std::size_t(3)}) {
        ASSERT_NE(m.find(chain[i]), nullptr) << "chain member " << i;
        EXPECT_EQ(*m.find(chain[i]), static_cast<int>(i));
    }

    // Erase the head, then everything.
    EXPECT_TRUE(m.erase(chain[0]));
    ASSERT_NE(m.find(chain[2]), nullptr);
    ASSERT_NE(m.find(chain[3]), nullptr);
    EXPECT_TRUE(m.erase(chain[3]));
    EXPECT_TRUE(m.erase(chain[2]));
    EXPECT_TRUE(m.empty());
}

TEST(FlatMap, GrowthIsPowerOfTwoAndLossless)
{
    FlatMap<std::uint64_t> m;
    std::size_t lastCap = m.capacity();
    EXPECT_EQ(lastCap, 0u);
    for (std::uint64_t i = 0; i < 5000; ++i) {
        m.insert(i * 977 + 3, i);
        const std::size_t cap = m.capacity();
        ASSERT_EQ(cap & (cap - 1), 0u) << "capacity " << cap;
        if (cap != lastCap) {
            // A rehash happened: everything inserted so far survives.
            for (std::uint64_t j = 0; j <= i; ++j) {
                ASSERT_NE(m.find(j * 977 + 3), nullptr)
                    << "lost key after growth to " << cap;
            }
            lastCap = cap;
        }
    }
    EXPECT_GE(lastCap, 5000u);
    EXPECT_EQ(m.size(), 5000u);
}

TEST(FlatMap, ReservePreventsRehash)
{
    FlatMap<int> m;
    m.reserve(1000);
    const std::size_t cap = m.capacity();
    ASSERT_GE(cap, 1024u);
    for (Addr k = 0; k < 1000; ++k)
        m.insert(k * 131, 1);
    EXPECT_EQ(m.capacity(), cap)
        << "inserting within reserve() must not rehash";
}

TEST(FlatMap, EraseIfPrunes)
{
    FlatMap<std::uint64_t> m;
    for (Addr k = 0; k < 1000; ++k)
        m.insert(k, k);
    m.eraseIf([](Addr, std::uint64_t v) { return v % 2 == 0; });
    EXPECT_EQ(m.size(), 500u);
    for (Addr k = 0; k < 1000; ++k)
        EXPECT_EQ(m.contains(k), k % 2 == 1) << "key " << k;

    // Clearing predicate empties the map.
    m.eraseIf([](Addr, std::uint64_t) { return true; });
    EXPECT_TRUE(m.empty());

    // clear() resets without shrinking.
    m.insert(5, 5);
    const std::size_t cap = m.capacity();
    m.clear();
    EXPECT_TRUE(m.empty());
    EXPECT_EQ(m.capacity(), cap);
    EXPECT_EQ(m.find(5), nullptr);
}
