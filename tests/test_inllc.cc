/** @file Protocol tests of in-LLC tracking (Section III). */

#include <gtest/gtest.h>

#include "proto/engine.hh"
#include "test_util.hh"

using namespace tinydir;
using tinydir::test::Harness;
using tinydir::test::smallConfig;

TEST(InLlc, FillCorruptsLlcEntry)
{
    Harness h(smallConfig(TrackerKind::InLlc));
    h.load(0, 100);
    LlcEntry *e = h.sys.llc.findData(100);
    ASSERT_NE(e, nullptr);
    EXPECT_EQ(e->meta, LlcMeta::CorruptExcl);
    EXPECT_EQ(e->owner, 0);
    h.expectCoherent();
}

TEST(InLlc, SharedReadIsThreeHopAndLengthened)
{
    Harness h(smallConfig(TrackerKind::InLlc));
    h.load(0, 100);
    h.load(1, 100); // E->S via owner forward: not lengthened
    EXPECT_EQ(h.sys.engine.stats.lengthenedReads.value(), 0u);
    LlcEntry *e = h.sys.llc.findData(100);
    ASSERT_NE(e, nullptr);
    EXPECT_EQ(e->meta, LlcMeta::CorruptShared);
    h.load(2, 100); // read of corrupted-shared block: lengthened
    EXPECT_EQ(h.sys.engine.stats.lengthenedReads.value(), 1u);
    EXPECT_EQ(e->stats.lengthened, 1u);
    h.expectCoherent();
}

TEST(InLlc, LengthenedReadSlowerThanBaseline)
{
    Harness base(smallConfig(TrackerKind::SparseDir));
    Harness illc(smallConfig(TrackerKind::InLlc));
    for (auto *h : {&base, &illc}) {
        h->load(0, 96);
        h->load(1, 96);
    }
    // Third reader: 2-hop in baseline, 3-hop in in-LLC.
    const Cycle lat_base = base.load(2, 96);
    const Cycle lat_illc = illc.load(2, 96);
    EXPECT_GT(lat_illc, lat_base);
}

TEST(InLlc, CodeLengthenedAccountedSeparately)
{
    Harness h(smallConfig(TrackerKind::InLlc));
    h.ifetch(0, 100); // S with one sharer (corrupt shared)
    h.ifetch(1, 100); // lengthened code read
    EXPECT_EQ(h.sys.engine.stats.lengthenedReads.value(), 1u);
    EXPECT_EQ(h.sys.engine.stats.lengthenedCode.value(), 1u);
}

TEST(InLlc, GetXOnCorruptSharedCollectsDataFromSharer)
{
    Harness h(smallConfig(TrackerKind::InLlc));
    h.load(0, 100);
    h.load(1, 100);
    h.load(2, 100);
    h.store(3, 100);
    EXPECT_EQ(h.stateAt(3, 100), MesiState::M);
    for (CoreId c = 0; c < 3; ++c)
        EXPECT_EQ(h.stateAt(c, 100), MesiState::I);
    LlcEntry *e = h.sys.llc.findData(100);
    ASSERT_NE(e, nullptr);
    EXPECT_EQ(e->meta, LlcMeta::CorruptExcl);
    EXPECT_EQ(e->owner, 3);
    h.expectCoherent();
}

TEST(InLlc, PutMRestoresNormalDirty)
{
    auto cfg = smallConfig(TrackerKind::InLlc);
    cfg.l1Bytes = 4 * 2 * blockBytes;
    cfg.l1Assoc = 2;
    cfg.l2Bytes = 8 * 2 * blockBytes;
    cfg.l2Assoc = 2;
    Harness h(cfg);
    h.store(0, 16);
    // Thrash core 0's private caches until block 16 is evicted (PutM).
    for (Addr b = 1000; b < 1200; ++b)
        h.load(0, b);
    EXPECT_EQ(h.stateAt(0, 16), MesiState::I);
    LlcEntry *e = h.sys.llc.findData(16);
    ASSERT_NE(e, nullptr);
    EXPECT_EQ(e->meta, LlcMeta::Normal);
    EXPECT_TRUE(e->dirty);
    h.expectCoherent();
}

TEST(InLlc, EvictionNoticeCarriesReconstructionBits)
{
    auto cfg = smallConfig(TrackerKind::InLlc);
    Harness h(cfg);
    EXPECT_EQ(h.sys.tracker->evictionNoticeExtraBytes(MesiState::E),
              reconstructBytes(cfg.numCores));
    EXPECT_EQ(h.sys.tracker->evictionNoticeExtraBytes(MesiState::M), 0u);
    EXPECT_EQ(h.sys.tracker->evictionNoticeExtraBytes(MesiState::S), 0u);
}

TEST(InLlc, LlcEvictionBackInvalidatesCorruptBlock)
{
    Harness h(smallConfig(TrackerKind::InLlc));
    const Addr b = 24;
    h.load(0, b);
    ASSERT_EQ(h.stateAt(0, b), MesiState::E);
    // Stream conflicting blocks through b's LLC set until b's
    // corrupted entry is evicted; core 0's copy must die with it.
    const Addr stride = h.sys.llc.numBanks() * h.sys.llc.setsPerBank();
    for (unsigned i = 1; i <= 2 * h.sys.llc.assoc(); ++i)
        h.load(1, b + i * stride);
    EXPECT_EQ(h.stateAt(0, b), MesiState::I);
    EXPECT_GE(h.sys.engine.stats.backInvals.value(), 1u);
    h.expectCoherent();
}

TEST(InLlc, TagExtendedKeepsTwoHopReads)
{
    Harness h(smallConfig(TrackerKind::InLlcTagExtended));
    h.load(0, 100);
    h.load(1, 100);
    h.load(2, 100);
    h.load(3, 100);
    EXPECT_EQ(h.sys.engine.stats.lengthenedReads.value(), 0u);
    LlcEntry *e = h.sys.llc.findData(100);
    ASSERT_NE(e, nullptr);
    EXPECT_EQ(e->meta, LlcMeta::Normal);
    h.expectCoherent();
}

TEST(InLlc, TagExtendedEvictionBackInvalidates)
{
    Harness h(smallConfig(TrackerKind::InLlcTagExtended));
    const Addr b = 32;
    h.load(0, b);
    const Addr stride = h.sys.llc.numBanks() * h.sys.llc.setsPerBank();
    for (unsigned i = 1; i <= 2 * h.sys.llc.assoc(); ++i)
        h.load(1, b + i * stride);
    EXPECT_EQ(h.stateAt(0, b), MesiState::I);
    h.expectCoherent();
}

TEST(InLlc, SharerElectionServesNearestAndKeepsSet)
{
    Harness h(smallConfig(TrackerKind::InLlc));
    h.load(0, 100);
    h.load(1, 100);
    h.load(5, 100);
    auto v = h.sys.tracker->view(100);
    ASSERT_TRUE(v.ts.shared());
    EXPECT_EQ(v.ts.sharers.count(), 3u);
    for (CoreId c : {0, 1, 5})
        EXPECT_TRUE(v.ts.sharers.contains(c));
}
