/** @file Tests of the binary trace file reader/writer. */

#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdio>
#include <filesystem>
#include <string>

#include "common/sim_error.hh"
#include "sim/driver.hh"
#include "sim/system.hh"
#include "workload/generator.hh"
#include "workload/trace_file.hh"

using namespace tinydir;

namespace
{

class TraceFileTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        path = (std::filesystem::temp_directory_path() /
                ("tinydir_trace_test_" +
                 std::to_string(::getpid()) + ".bin"))
                   .string();
    }

    void TearDown() override { std::remove(path.c_str()); }

    std::string path;
};

} // namespace

TEST_F(TraceFileTest, RoundTripPreservesEveryRecord)
{
    SystemConfig cfg = SystemConfig::scaled(8);
    auto lay = std::make_shared<const SharedLayout>(
        profileByName("bodytrack"), cfg);
    auto counts =
        TraceFileWriter::write(path, makeStreams(lay, cfg, 500, false));
    ASSERT_EQ(counts.size(), 8u);
    for (auto n : counts)
        EXPECT_EQ(n, 500u);

    auto info = traceFileInfo(path);
    EXPECT_EQ(info.numCores, 8u);

    // Replay and compare against a freshly generated stream.
    for (CoreId c : {CoreId(0), CoreId(3), CoreId(7)}) {
        SyntheticStream ref(lay, c, 500, cfg.seed, false);
        TraceFileStream replay(path, c);
        TraceAccess a, b;
        for (int i = 0; i < 500; ++i) {
            ASSERT_TRUE(ref.next(a));
            ASSERT_TRUE(replay.next(b));
            EXPECT_EQ(a.addr, b.addr);
            EXPECT_EQ(a.gap, b.gap);
            EXPECT_EQ(static_cast<int>(a.type),
                      static_cast<int>(b.type));
        }
        EXPECT_FALSE(replay.next(b));
    }
}

TEST_F(TraceFileTest, ReplayThroughSimulatorMatchesDirect)
{
    SystemConfig cfg = SystemConfig::scaled(8);
    cfg.tracker = TrackerKind::TinyDir;
    cfg.dirSizeFactor = 1.0 / 32;
    auto lay = std::make_shared<const SharedLayout>(
        profileByName("barnes"), cfg);
    TraceFileWriter::write(path, makeStreams(lay, cfg, 1500, false));

    // Direct run.
    System direct(cfg);
    Driver d1;
    auto r1 = d1.run(direct, makeStreams(lay, cfg, 1500, false));
    // Replayed run.
    System replay(cfg);
    Driver d2;
    auto r2 = d2.run(replay, openTraceStreams(path));

    EXPECT_EQ(r1.accesses, r2.accesses);
    EXPECT_EQ(r1.execCycles, r2.execCycles);
    EXPECT_EQ(direct.dump().get("llc.accesses"),
              replay.dump().get("llc.accesses"));
    EXPECT_EQ(direct.dump().get("lengthened.reads"),
              replay.dump().get("lengthened.reads"));
}

namespace
{

/** The call must throw ConfigError whose message contains @p substr. */
template <typename Fn>
void
expectConfigError(Fn &&fn, const char *substr)
{
    try {
        fn();
        FAIL() << "expected ConfigError mentioning " << substr;
    } catch (const ConfigError &e) {
        EXPECT_NE(std::string(e.what()).find(substr), std::string::npos)
            << e.what();
    }
}

} // namespace

TEST_F(TraceFileTest, RejectsGarbage)
{
    std::ofstream os(path, std::ios::binary);
    os << "this is not a trace";
    os.close();
    expectConfigError([&] { traceFileInfo(path); },
                      "not a tinydir trace");
}

TEST_F(TraceFileTest, RejectsMissingFile)
{
    expectConfigError([&] { traceFileInfo("/nonexistent/trace.bin"); },
                      "cannot open");
}

TEST_F(TraceFileTest, RejectsBadCoreIndex)
{
    SystemConfig cfg = SystemConfig::scaled(8);
    auto lay = std::make_shared<const SharedLayout>(
        profileByName("compress"), cfg);
    TraceFileWriter::write(path, makeStreams(lay, cfg, 10, false));
    expectConfigError([&] { TraceFileStream(path, 8); }, "no core");
}
