/** @file End-to-end integration tests across whole-system runs. */

#include <gtest/gtest.h>

#include "sim/driver.hh"
#include "sim/experiment.hh"
#include "sim/system.hh"
#include "workload/generator.hh"

using namespace tinydir;

namespace
{

SystemConfig
cfgFor(TrackerKind kind, double factor)
{
    SystemConfig cfg = SystemConfig::scaled(8);
    cfg.tracker = kind;
    cfg.dirSizeFactor = factor;
    if (kind == TrackerKind::TinyDir) {
        cfg.tinyPolicy = TinyPolicy::DstraGnru;
        cfg.tinySpill = true;
    }
    return cfg;
}

RunOut
runApp(const SystemConfig &cfg, const char *app, std::uint64_t n = 3000)
{
    // Warm the caches/policies; measure steady state like the benches.
    return runOne(cfg, profileByName(app), n, n / 2);
}

} // namespace

TEST(Integration, SparseBaselineRunsClean)
{
    auto out = runApp(cfgFor(TrackerKind::SparseDir, 2.0), "barnes");
    // Measured accesses plus the warmup prologue.
    EXPECT_GE(out.accesses, 8u * 3000u);
    EXPECT_GT(out.execCycles, 0u);
    EXPECT_GT(out.stats.get("llc.accesses"), 0.0);
    EXPECT_EQ(out.stats.get("lengthened.reads"), 0.0);
}

TEST(Integration, CoherenceHoldsUnderLoadForAllSchemes)
{
    for (TrackerKind kind :
         {TrackerKind::SparseDir, TrackerKind::SharedOnlyDir,
          TrackerKind::InLlcTagExtended, TrackerKind::InLlc,
          TrackerKind::TinyDir, TrackerKind::Mgd, TrackerKind::Stash}) {
        SystemConfig cfg = cfgFor(kind, kind == TrackerKind::SparseDir
                                            ? 2.0 : 1.0 / 32);
        if (kind == TrackerKind::Mgd) {
            cfg.dirSkewed = true;
            cfg.dirAssoc = 4;
        }
        auto layout = std::make_shared<const SharedLayout>(
            profileByName("TPC-C"), cfg);
        auto streams = makeStreams(layout, cfg, 2000);
        System sys(cfg);
        Driver driver;
        driver.hookPeriod = 4000;
        driver.hook = [&](System &s, Counter) {
            std::string msg;
            ASSERT_TRUE(s.verifyCoherence(&msg))
                << toString(kind) << ": " << msg;
        };
        driver.run(sys, std::move(streams));
        std::string msg;
        EXPECT_TRUE(sys.verifyCoherence(&msg))
            << toString(kind) << ": " << msg;
    }
}

TEST(Integration, InLlcSuffersLengthenedReadsTinyRecoversThem)
{
    const char *app = "barnes";
    auto inllc = runApp(cfgFor(TrackerKind::InLlc, 2.0), app);
    auto tiny = runApp(cfgFor(TrackerKind::TinyDir, 1.0 / 32), app);
    auto sparse = runApp(cfgFor(TrackerKind::SparseDir, 2.0), app);
    const double f_inllc = inllc.stats.get("lengthened.frac");
    const double f_tiny = tiny.stats.get("lengthened.frac");
    EXPECT_GT(f_inllc, 0.01);
    EXPECT_LT(f_tiny, f_inllc);
    EXPECT_EQ(sparse.stats.get("lengthened.frac"), 0.0);
}

TEST(Integration, InLlcSlowerThanTagExtended)
{
    const char *app = "barnes";
    auto data_bits = runApp(cfgFor(TrackerKind::InLlc, 2.0), app);
    auto tag_ext =
        runApp(cfgFor(TrackerKind::InLlcTagExtended, 2.0), app);
    EXPECT_GT(data_bits.execCycles, tag_ext.execCycles);
}

TEST(Integration, UndersizedSparseSlowerThanBaseline)
{
    const char *app = "TPC-C";
    auto big = runApp(cfgFor(TrackerKind::SparseDir, 2.0), app);
    auto small = runApp(cfgFor(TrackerKind::SparseDir, 1.0 / 16), app);
    EXPECT_GT(static_cast<double>(small.execCycles),
              static_cast<double>(big.execCycles));
    EXPECT_GT(small.stats.get("inval.back"),
              big.stats.get("inval.back"));
}

TEST(Integration, TinyWithSpillTracksBaselineClosely)
{
    const char *app = "TPC-C";
    auto base = runApp(cfgFor(TrackerKind::SparseDir, 2.0), app, 4000);
    auto tiny =
        runApp(cfgFor(TrackerKind::TinyDir, 1.0 / 32), app, 4000);
    const double ratio = static_cast<double>(tiny.execCycles) /
        static_cast<double>(base.execCycles);
    // Scaled-down run: allow slack, but the scheme must stay in the
    // baseline's neighbourhood, far from the in-LLC degradation.
    EXPECT_LT(ratio, 1.10);
    EXPECT_GT(ratio, 0.90);
}

TEST(Integration, SharedFractionMatchesCharacterization)
{
    // Fig. 2: commercial workloads have much larger shared block
    // populations than compress.
    auto tpcc = runApp(cfgFor(TrackerKind::SparseDir, 2.0), "TPC-C");
    auto comp = runApp(cfgFor(TrackerKind::SparseDir, 2.0), "compress");
    const double shared_tpcc = tpcc.stats.get("resid.shared_blocks") /
        std::max(1.0, tpcc.stats.get("resid.blocks"));
    const double shared_comp = comp.stats.get("resid.shared_blocks") /
        std::max(1.0, comp.stats.get("resid.blocks"));
    EXPECT_GT(shared_tpcc, 1.2 * shared_comp);
}

TEST(Integration, StreamingAppHasHighMissRate)
{
    auto mgrid = runApp(cfgFor(TrackerKind::SparseDir, 2.0),
                        "314.mgrid");
    auto barnes = runApp(cfgFor(TrackerKind::SparseDir, 2.0), "barnes");
    EXPECT_GT(mgrid.stats.get("llc.miss_rate"), 0.4);
    EXPECT_LT(barnes.stats.get("llc.miss_rate"),
              mgrid.stats.get("llc.miss_rate"));
}

TEST(Integration, StashBroadcastsUnderPressure)
{
    auto out = runApp(cfgFor(TrackerKind::Stash, 1.0 / 32), "TPC-C");
    EXPECT_GT(out.stats.get("dir.broadcasts"), 0.0);
}

TEST(Integration, EnergyReportedAndPositive)
{
    auto out = runApp(cfgFor(TrackerKind::TinyDir, 1.0 / 256), "barnes");
    EXPECT_GT(out.stats.get("energy.dynamic_j"), 0.0);
    EXPECT_GT(out.stats.get("energy.leakage_j"), 0.0);
    EXPECT_GT(out.stats.get("energy.total_j"),
              out.stats.get("energy.dynamic_j"));
}

TEST(Integration, DumpContainsAllKeySeries)
{
    auto out = runApp(cfgFor(TrackerKind::TinyDir, 1.0 / 64), "barnes");
    for (const char *key :
         {"exec_cycles", "llc.accesses", "llc.miss_rate",
          "lengthened.frac", "traffic.processor.bytes",
          "traffic.writeback.bytes", "traffic.coherence.bytes",
          "resid.sharer_bin0", "stra.blocks.c7", "dir.hits",
          "dir.allocs", "dir.spills", "energy.total_j"}) {
        EXPECT_TRUE(out.stats.has(key)) << key;
    }
}
