/**
 * @file
 * tdlint self-tests: drive the analyzer over tests/lint_fixtures/.
 * Each check has a minimal fixture it must flag and a clean twin that
 * must pass; the suppression grammar round-trips (a justified allow
 * silences a real diagnostic, misuse is itself diagnosed).
 */

#include <algorithm>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "tdlint/tdlint.hh"

namespace
{

using tdlint::Diagnostic;
using tdlint::Options;
using tdlint::Result;

Result
lintFixture(const std::string &file)
{
    Options o;
    o.root = TINYDIR_LINT_FIXTURE_DIR;
    o.files = {file};
    return tdlint::run(o);
}

/** Count diagnostics of @p check (empty = any). */
std::size_t
countCheck(const Result &r, const std::string &check)
{
    return static_cast<std::size_t>(std::count_if(
        r.diags.begin(), r.diags.end(), [&](const Diagnostic &d) {
            return check.empty() || d.check == check;
        }));
}

bool
hasDiag(const Result &r, const std::string &check, int line)
{
    return std::any_of(r.diags.begin(), r.diags.end(),
                       [&](const Diagnostic &d) {
                           return d.check == check && d.line == line;
                       });
}

TEST(TdlintHotAlloc, FlagsAllocationReachableFromHotRoot)
{
    const Result r = lintFixture("hot_alloc_bad.cc");
    ASSERT_EQ(countCheck(r, ""), 1u);
    EXPECT_TRUE(hasDiag(r, "hot-alloc", 7));
    // The diagnostic names the path from the hot root.
    EXPECT_NE(r.diags[0].message.find("access -> lookup -> helper"),
              std::string::npos);
}

TEST(TdlintHotAlloc, CleanTwinWithHotSafeAndColdPasses)
{
    EXPECT_TRUE(lintFixture("hot_alloc_clean.cc").clean());
}

TEST(TdlintErrorPath, FlagsKillersRawStdioAndForeignThrows)
{
    const Result r = lintFixture("error_path_bad.cc");
    EXPECT_EQ(countCheck(r, "error-path"), 3u);
    EXPECT_TRUE(hasDiag(r, "error-path", 11)); // fprintf
    EXPECT_TRUE(hasDiag(r, "error-path", 12)); // exit
    EXPECT_TRUE(hasDiag(r, "error-path", 18)); // throw runtime_error
}

TEST(TdlintErrorPath, SimErrorThrowsAndRethrowsPass)
{
    EXPECT_TRUE(lintFixture("error_path_clean.cc").clean());
}

TEST(TdlintDeterminism, FlagsRandTimeUnorderedAndPointerKeys)
{
    const Result r = lintFixture("determinism_bad.cc");
    EXPECT_EQ(countCheck(r, "determinism"), 4u);
    EXPECT_TRUE(hasDiag(r, "determinism", 14)); // rand()
    EXPECT_TRUE(hasDiag(r, "determinism", 20)); // time()
    EXPECT_TRUE(hasDiag(r, "determinism", 23)); // unordered_map
    EXPECT_TRUE(hasDiag(r, "determinism", 25)); // std::map<Node *, ...>
}

TEST(TdlintDeterminism, SeededRngAndValueKeysPass)
{
    EXPECT_TRUE(lintFixture("determinism_clean.cc").clean());
}

TEST(TdlintParallel, FlagsClockReadsThreadIdentityAndUnordered)
{
    const Result r = lintFixture("shard_parallel_bad.cc");
    EXPECT_EQ(countCheck(r, "parallel"), 3u);
    EXPECT_TRUE(hasDiag(r, "parallel", 13)); // steady_clock::now()
    EXPECT_TRUE(hasDiag(r, "parallel", 20)); // hardware_concurrency
    EXPECT_TRUE(hasDiag(r, "parallel", 23)); // unordered_map
    // The repo-wide determinism check independently flags the
    // unordered container; the parallel check is additive.
    EXPECT_TRUE(hasDiag(r, "determinism", 23));
}

TEST(TdlintParallel, SimulatedTimeOrderedStateAndWatchdogAllowPass)
{
    EXPECT_TRUE(lintFixture("shard_parallel_clean.cc").clean());
}

TEST(TdlintParallel, OnlyShardAndMailboxPathsAreCovered)
{
    // determinism_bad.cc is not sharded-engine code: its unordered
    // container draws the determinism diagnostic only.
    const Result r = lintFixture("determinism_bad.cc");
    EXPECT_EQ(countCheck(r, "parallel"), 0u);
}

TEST(TdlintStatsDump, FlagsCounterMissingFromDumpPath)
{
    const Result r = lintFixture("stats_dump_bad.cc");
    ASSERT_EQ(countCheck(r, ""), 1u);
    EXPECT_TRUE(hasDiag(r, "stats-dump", 9)); // orphaned
    EXPECT_NE(r.diags[0].message.find("orphaned"), std::string::npos);
}

TEST(TdlintStatsDump, DirectAndAggregatedCountersPass)
{
    EXPECT_TRUE(lintFixture("stats_dump_clean.cc").clean());
}

TEST(TdlintHeader, FlagsGuardAndMissingIncludes)
{
    const Result r = lintFixture("header_bad.hh");
    EXPECT_EQ(countCheck(r, "header"), 3u);
    EXPECT_TRUE(hasDiag(r, "header", 1)); // guard not TINYDIR_*_HH
    EXPECT_TRUE(hasDiag(r, "header", 9)); // vector + cstdint
}

TEST(TdlintHeader, SelfSufficientHeaderPasses)
{
    EXPECT_TRUE(lintFixture("header_clean.hh").clean());
}

TEST(TdlintSuppress, JustifiedAllowsSilenceBothForms)
{
    // suppress_ok.cc is error_path_bad-shaped code with an own-line
    // allow over exit() and an end-of-line allow on fprintf().
    EXPECT_TRUE(lintFixture("suppress_ok.cc").clean());
}

TEST(TdlintSuppress, MisuseIsDiagnosed)
{
    const Result r = lintFixture("suppress_bad.cc");
    EXPECT_EQ(countCheck(r, "lint-usage"), 3u);
    EXPECT_TRUE(hasDiag(r, "lint-usage", 8));  // missing justification
    EXPECT_TRUE(hasDiag(r, "lint-usage", 16)); // unknown check name
    EXPECT_TRUE(hasDiag(r, "lint-usage", 24)); // unused suppression
}

TEST(TdlintCli, CheckFilterRestrictsDiagnostics)
{
    Options o;
    o.root = TINYDIR_LINT_FIXTURE_DIR;
    o.files = {"error_path_bad.cc", "determinism_bad.cc"};
    o.checks = {"determinism"};
    const Result r = tdlint::run(o);
    EXPECT_EQ(countCheck(r, "determinism"), 4u);
    EXPECT_EQ(countCheck(r, ""), 4u); // no error-path leakage
}

TEST(TdlintCli, DiagnosticsAreSortedAndFormatted)
{
    Options o;
    o.root = TINYDIR_LINT_FIXTURE_DIR;
    o.files = {"header_bad.hh", "determinism_bad.cc"};
    const Result r = tdlint::run(o);
    ASSERT_FALSE(r.clean());
    EXPECT_TRUE(std::is_sorted(
        r.diags.begin(), r.diags.end(),
        [](const Diagnostic &a, const Diagnostic &b) {
            return a.file != b.file ? a.file < b.file : a.line < b.line;
        }));
    std::string report;
    EXPECT_EQ(tdlint::printDiagnostics(r, report), r.diags.size());
    EXPECT_NE(report.find("determinism_bad.cc:14: [determinism]"),
              std::string::npos);
}

TEST(TdlintRepo, WholeTreeIsClean)
{
    // The same invariant the `tdlint` ctest enforces, reachable from
    // the gtest binary so a violation shows up in both places.
    Options o;
    o.root = TINYDIR_REPO_ROOT;
    o.files = tdlint::defaultFileSet(o.root);
    const tdlint::Result r = tdlint::run(o);
    std::string report;
    tdlint::printDiagnostics(r, report);
    EXPECT_TRUE(r.clean()) << report;
}

} // namespace
