// Fixture for the parallel check: sharded-engine code (file name
// contains "shard") that reads a host clock, consults worker-thread
// identity, and keeps cross-shard state in an unordered container —
// each one lets host scheduling leak into simulated state.

#include <chrono>
#include <thread>
#include <unordered_map>

unsigned long long
epochDeadline()
{
    const auto t = std::chrono::steady_clock::now();
    return static_cast<unsigned long long>(t.time_since_epoch().count());
}

unsigned
pickWorker()
{
    return std::thread::hardware_concurrency();
}

std::unordered_map<int, int> pendingByShard;
