// Clean twin of determinism_bad.cc: a seeded generator, simulated
// time, and value-keyed ordered containers.

#include <cstdint>
#include <map>

struct Rng
{
    std::uint64_t state;
    std::uint64_t next() { return state = state * 6364136223846793005ULL + 1; }
};

std::uint64_t simNow = 0;

int
roll(Rng &rng)
{
    return static_cast<int>(rng.next() & 0xff);
}

std::uint64_t
stamp()
{
    return simNow;
}

std::map<std::uint64_t, int> byBlock;
