// Fixture: a hot-path root reaching an allocation two calls deep.
// tdlint must flag the `new` in helper() with the path via lookup().

int *
helper()
{
    return new int(7);
}

int
lookup(int x)
{
    return *helper() + x;
}

// TDLINT: hot
int
access(int x)
{
    return lookup(x);
}
