// Fixture: a stats struct with one counter the dump path never
// touches. `hits` is dumped, `misses` reaches the dump through an
// aggregation function, but `orphaned` is written and never read.

struct CoreStats
{
    unsigned long hits = 0;
    unsigned long misses = 0;
    unsigned long orphaned = 0;
};

struct TotalsStats
{
    unsigned long total = 0;
};

TotalsStats totals;

void
aggregate(const CoreStats &cs)
{
    totals.total += cs.misses;
}

void
recordHit(CoreStats &cs)
{
    ++cs.hits;
}

void
noteOrphan(CoreStats &cs)
{
    ++cs.orphaned;
}

void
dump(const CoreStats &cs)
{
    unsigned long sum = cs.hits + totals.total;
    (void)sum;
}
