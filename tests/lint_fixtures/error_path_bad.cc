// Fixture: library-path error handling that kills the process, writes
// raw stderr, and throws outside the SimError hierarchy.

#include <cstdio>
#include <cstdlib>
#include <stdexcept>

void
badFatal(int code)
{
    std::fprintf(stderr, "dying\n");
    std::exit(code);
}

void
badThrow()
{
    throw std::runtime_error("not a SimError");
}
