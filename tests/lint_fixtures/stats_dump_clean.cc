// Clean twin of stats_dump_bad.cc: every counter either appears in
// dump() directly or is flushed by an aggregation function that feeds
// dumped state.

struct CoreStats
{
    unsigned long hits = 0;
    unsigned long misses = 0;
};

struct TotalsStats
{
    unsigned long total = 0;
};

TotalsStats totals;

void
aggregate(const CoreStats &cs)
{
    totals.total += cs.misses;
}

void
dump(const CoreStats &cs)
{
    unsigned long sum = cs.hits + totals.total;
    (void)sum;
}
