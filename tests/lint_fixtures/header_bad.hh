// Fixture: header with a non-conforming include guard that uses
// std::vector and std::uint32_t without including what it uses.

#ifndef HEADER_BAD_H
#define HEADER_BAD_H

struct BadTable
{
    std::vector<std::uint32_t> rows;
};

#endif
