// Clean twin of error_path_bad.cc: errors throw SimError types and a
// bare rethrow is fine.

struct SimError
{
    explicit SimError(const char *) {}
};

struct ConfigError : SimError
{
    using SimError::SimError;
};

void
goodFatal()
{
    throw ConfigError("bad configuration");
}

void
forward()
{
    try {
        goodFatal();
    } catch (...) {
        throw;
    }
}
