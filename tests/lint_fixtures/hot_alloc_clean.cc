// Clean twin of hot_alloc_bad.cc: the same shape, but the helper does
// arithmetic instead of allocating, and a hot-safe container op plus a
// cold branch sit on the path without tripping the walk.

int
helper(int x)
{
    return x * 2 + 1;
}

// TDLINT: hot-safe
int *
trustedInsert(int /*key*/)
{
    // A real FlatMap::insert would amortize-allocate here; hot-safe
    // means the walk neither scans nor descends into this body.
    static int slot;
    return &slot;
}

// TDLINT: cold
void
dumpStats()
{
    int *p = new int(0); // never on the hot path
    delete p;
}

int
lookup(int x)
{
    return helper(x) + *trustedInsert(x);
}

// TDLINT: hot
int
access(int x)
{
    return lookup(x);
}
