// Fixture: every flavour of nondeterminism the check bans — libc
// rand, wall-clock time, an unordered container, and a pointer-keyed
// ordered map (iterates in address order).

#include <ctime>
#include <map>
#include <unordered_map>

struct Node;

int
roll()
{
    return rand();
}

long
stamp()
{
    return time(nullptr);
}

std::unordered_map<int, int> table;

std::map<Node *, int> byAddress;
