// Clean twin of header_bad.hh: conforming guard, includes what it
// uses.

#ifndef TINYDIR_HEADER_CLEAN_HH
#define TINYDIR_HEADER_CLEAN_HH

#include <cstdint>
#include <vector>

struct CleanTable
{
    std::vector<std::uint32_t> rows;
};

#endif // TINYDIR_HEADER_CLEAN_HH
