// Fixture: suppression misuse. A justification-less allow, an allow
// naming an unknown check, and an unused (but well-formed) allow must
// each produce a lint-usage diagnostic.

void
noJustification()
{
    // TDLINT: allow(error-path)
    int x = 0;
    (void)x;
}

void
unknownCheck()
{
    // TDLINT: allow(made-up-check): because
    int x = 0;
    (void)x;
}

void
unusedAllow()
{
    // TDLINT: allow(determinism): nothing nondeterministic below
    int x = 0;
    (void)x;
}
