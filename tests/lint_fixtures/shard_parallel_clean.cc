// Clean twin of shard_parallel_bad.cc: epoch deadlines in simulated
// cycles, worker count from configuration, ordered cross-shard state,
// a justified watchdog suppression, and time_point plumbing (carrying
// a sampled value is fine; only clock *reads* are flagged).

#include <chrono>
#include <map>

unsigned long long simClock = 0;
constexpr unsigned long long epochCycles = 4096;

unsigned long long
epochDeadline()
{
    return (simClock / epochCycles + 1) * epochCycles;
}

unsigned
pickWorker(unsigned configuredThreads, unsigned shard)
{
    return shard % configuredThreads;
}

std::map<int, int> pendingByShard;

double
watchdogElapsed(std::chrono::steady_clock::time_point started)
{
    // TDLINT: allow(parallel): host watchdog; never feeds simulated state.
    const auto hostNow = std::chrono::steady_clock::now();
    return std::chrono::duration<double>(hostNow - started).count();
}
