// Fixture: well-formed suppressions, both own-line (covers the next
// line) and end-of-line forms. Must lint clean.

#include <cstdio>
#include <cstdlib>

void
cliBoundary(int code)
{
    // TDLINT: allow(error-path): CLI boundary, the process must die here
    std::exit(code);
}

void
sink(const char *msg)
{
    std::fprintf(stderr, "%s\n", msg); // TDLINT: allow(error-path): designated sink
}
