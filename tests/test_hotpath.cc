/**
 * @file
 * Hot-path guarantees of the per-access simulation core:
 *
 *  - determinism: identical configs and seeds produce bit-identical
 *    stats dumps run-to-run (the data-structure swap must not leak
 *    iteration order into simulated behaviour);
 *  - bounded tracking state: Engine::busyUntil is pruned, so its
 *    footprint stays small even when a run streams over far more
 *    distinct blocks than are ever live;
 *  - zero heap allocations per access in steady state, counted by a
 *    replaced global operator new.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <new>

#include "sim/driver.hh"
#include "sim/experiment.hh"
#include "sim/system.hh"
#include "workload/generator.hh"

using namespace tinydir;

// --- Global allocation counter -------------------------------------
//
// Replacing the global allocation functions lets the steady-state
// test count every heap allocation in the process. The counter is
// atomic because other tests in this binary (the parallel runner)
// allocate from worker threads.

namespace
{

std::atomic<std::uint64_t> g_heapAllocs{0};

void *
countedAlloc(std::size_t n)
{
    ++g_heapAllocs;
    if (void *p = std::malloc(n ? n : 1))
        return p;
    throw std::bad_alloc();
}

} // namespace

void *operator new(std::size_t n) { return countedAlloc(n); }
void *operator new[](std::size_t n) { return countedAlloc(n); }
void *
operator new(std::size_t n, const std::nothrow_t &) noexcept
{
    ++g_heapAllocs;
    return std::malloc(n ? n : 1);
}
void *
operator new[](std::size_t n, const std::nothrow_t &) noexcept
{
    ++g_heapAllocs;
    return std::malloc(n ? n : 1);
}
void operator delete(void *p) noexcept { std::free(p); }
void operator delete[](void *p) noexcept { std::free(p); }
void operator delete(void *p, std::size_t) noexcept { std::free(p); }
void operator delete[](void *p, std::size_t) noexcept { std::free(p); }
void
operator delete(void *p, const std::nothrow_t &) noexcept
{
    std::free(p);
}
void
operator delete[](void *p, const std::nothrow_t &) noexcept
{
    std::free(p);
}

// -------------------------------------------------------------------

namespace
{

SystemConfig
tinyCfg(unsigned cores)
{
    SystemConfig cfg = SystemConfig::scaled(cores);
    cfg.tracker = TrackerKind::TinyDir;
    cfg.dirSizeFactor = 1.0 / 32;
    cfg.tinyPolicy = TinyPolicy::DstraGnru;
    cfg.tinySpill = true;
    return cfg;
}

} // namespace

TEST(HotPath, StatsDumpsAreDeterministic)
{
    // One quick scheme/workload pair, simulated twice from scratch:
    // every counter in the dump must match exactly. Hash-map iteration
    // order, pruning, or pointer-derived decisions would break this.
    const SystemConfig cfg = tinyCfg(8);
    const WorkloadProfile &prof = profileByName("barnes");
    const RunOut a = runOne(cfg, prof, 2000, 1000);
    const RunOut b = runOne(cfg, prof, 2000, 1000);

    EXPECT_EQ(a.execCycles, b.execCycles);
    EXPECT_EQ(a.totalCycles, b.totalCycles);
    EXPECT_EQ(a.accesses, b.accesses);
    const auto &ia = a.stats.items();
    const auto &ib = b.stats.items();
    ASSERT_EQ(ia.size(), ib.size());
    for (std::size_t i = 0; i < ia.size(); ++i) {
        EXPECT_EQ(ia[i].first, ib[i].first) << "stat order differs";
        EXPECT_EQ(ia[i].second, ib[i].second)
            << "stat " << ia[i].first << " differs between runs";
    }
}

TEST(HotPath, BusyWindowFootprintStaysBounded)
{
    // Stream over far more distinct blocks than are ever concurrently
    // busy. Without pruning busyUntil would end at ~numBlocks entries;
    // with pruning it stays near the live window count.
    SystemConfig cfg = tinyCfg(8);
    System sys(cfg);
    constexpr std::uint64_t numBlocks = 200000;
    for (std::uint64_t i = 0; i < numBlocks; ++i) {
        const CoreId c = static_cast<CoreId>(i % cfg.numCores);
        TraceAccess a;
        a.gap = 1;
        a.type = (i % 3) ? AccessType::Load : AccessType::Store;
        a.addr = i << blockShift;
        const Cycle issue = sys.cores[c].clock + a.gap;
        sys.cores[c].clock = sys.executeAccess(c, a, issue);
    }
    EXPECT_LE(sys.engine.busyFootprint(), 4096u)
        << "busyUntil grew with the block count; pruning is broken";
}

TEST(HotPath, SteadyStateAccessesDoNotAllocate)
{
    SystemConfig cfg = tinyCfg(8);
    System sys(cfg);
    Rng rng(42);
    constexpr std::uint64_t blocks = 4096;
    auto oneAccess = [&](std::uint64_t i) {
        const CoreId c = static_cast<CoreId>(rng.below(cfg.numCores));
        TraceAccess a;
        a.gap = 2;
        a.type =
            rng.chance(0.3) ? AccessType::Store : AccessType::Load;
        a.addr = rng.below(blocks) << blockShift;
        (void)i;
        const Cycle issue = sys.cores[c].clock + a.gap;
        sys.cores[c].clock = sys.executeAccess(c, a, issue);
    };
    // Warm every structure to its steady-state footprint: private
    // caches fill, tracker reaches capacity, FlatMaps finish growing.
    for (std::uint64_t i = 0; i < 50000; ++i)
        oneAccess(i);

    const std::uint64_t before =
        g_heapAllocs.load(std::memory_order_relaxed);
    for (std::uint64_t i = 0; i < 5000; ++i)
        oneAccess(i);
    const std::uint64_t after =
        g_heapAllocs.load(std::memory_order_relaxed);
    EXPECT_EQ(after - before, 0u)
        << "the steady-state access path heap-allocated "
        << (after - before) << " times in 5000 accesses";
}
