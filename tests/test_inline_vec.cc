/**
 * @file
 * InlineVec (common/inline_vec.hh) unit tests: fixed-capacity
 * semantics, clear-and-reuse (the hot-path scratch pattern), and the
 * overflow / out-of-range invariants.
 */

#include <gtest/gtest.h>

#include <numeric>

#include "common/inline_vec.hh"
#include "common/sim_error.hh"

using namespace tinydir;

TEST(InlineVec, PushIndexIterate)
{
    InlineVec<int, 4> v;
    EXPECT_TRUE(v.empty());
    EXPECT_EQ(v.size(), 0u);
    EXPECT_EQ(v.capacity(), 4u);
    EXPECT_EQ(v.begin(), v.end());

    v.push_back(10);
    v.push_back(20);
    v.push_back(30);
    EXPECT_FALSE(v.empty());
    ASSERT_EQ(v.size(), 3u);
    EXPECT_EQ(v[0], 10);
    EXPECT_EQ(v[1], 20);
    EXPECT_EQ(v[2], 30);
    EXPECT_EQ(std::accumulate(v.begin(), v.end(), 0), 60);

    v[1] = 21;
    EXPECT_EQ(v[1], 21);
}

TEST(InlineVec, ClearAndReuse)
{
    // The engine reuses one scratch buffer across accesses; clear()
    // must reset the size without touching capacity.
    InlineVec<int, 2> v;
    for (int round = 0; round < 100; ++round) {
        v.clear();
        EXPECT_TRUE(v.empty());
        v.push_back(round);
        v.push_back(round + 1);
        ASSERT_EQ(v.size(), 2u);
        EXPECT_EQ(v[0], round);
        EXPECT_EQ(v[1], round + 1);
    }
}

TEST(InlineVec, OverflowIsInvariantViolation)
{
    InlineVec<int, 2> v;
    v.push_back(1);
    v.push_back(2);
    EXPECT_THROW(v.push_back(3), InternalError);
    // The failed push must not corrupt the contents.
    ASSERT_EQ(v.size(), 2u);
    EXPECT_EQ(v[0], 1);
    EXPECT_EQ(v[1], 2);
}

TEST(InlineVec, OutOfRangeIndexThrows)
{
    InlineVec<int, 4> v;
    v.push_back(1);
    EXPECT_THROW(v[1], InternalError);
    EXPECT_THROW(v[4], InternalError);
    const InlineVec<int, 4> &cv = v;
    EXPECT_EQ(cv[0], 1);
    EXPECT_THROW(cv[1], InternalError);
}
