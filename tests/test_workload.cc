/** @file Tests of the synthetic workload profiles and generator. */

#include <gtest/gtest.h>

#include <map>
#include <set>
#include <string>

#include "common/sim_error.hh"
#include "workload/generator.hh"
#include "workload/profile.hh"

using namespace tinydir;

TEST(Workload, SeventeenProfiles)
{
    EXPECT_EQ(allProfiles().size(), 17u);
    std::set<std::string> names;
    for (const auto &p : allProfiles())
        names.insert(p.name);
    EXPECT_EQ(names.size(), 17u); // unique
    EXPECT_TRUE(names.count("barnes"));
    EXPECT_TRUE(names.count("TPC-C"));
    EXPECT_TRUE(names.count("SPEC_Web-B"));
}

TEST(Workload, LookupByName)
{
    EXPECT_EQ(profileByName("barnes").name, "barnes");
    try {
        profileByName("nonexistent");
        FAIL() << "expected ConfigError";
    } catch (const ConfigError &e) {
        EXPECT_NE(std::string(e.what()).find("unknown workload"),
                  std::string::npos)
            << e.what();
    }
}

TEST(Workload, ProfileParametersSane)
{
    for (const auto &p : allProfiles()) {
        EXPECT_GE(p.ifetchFrac, 0.0) << p.name;
        EXPECT_LE(p.ifetchFrac + p.streamFrac, 1.0) << p.name;
        EXPECT_GT(p.privBlocksPerCore, 0u) << p.name;
        EXPECT_GT(p.sharedBlocksPerCore, 0u) << p.name;
        double mix = 0;
        for (double d : p.degreeMix)
            mix += d;
        EXPECT_NEAR(mix, 1.0, 1e-6) << p.name;
    }
}

TEST(Workload, LayoutCoversAllCores)
{
    SystemConfig cfg = SystemConfig::scaled(16);
    SharedLayout lay(profileByName("barnes"), cfg);
    ASSERT_EQ(lay.groupsOfCore.size(), 16u);
    for (const auto &g : lay.groupsOfCore)
        EXPECT_FALSE(g.empty());
    // Degrees respect the bins.
    for (const auto &grp : lay.groups) {
        EXPECT_GE(grp.degree, 2u);
        EXPECT_LE(grp.degree, cfg.numCores);
    }
}

TEST(Workload, StreamsAreDeterministic)
{
    SystemConfig cfg = SystemConfig::scaled(8);
    auto lay = std::make_shared<const SharedLayout>(
        profileByName("bodytrack"), cfg);
    SyntheticStream s1(lay, 3, 1000, cfg.seed);
    SyntheticStream s2(lay, 3, 1000, cfg.seed);
    TraceAccess a1, a2;
    for (int i = 0; i < 1000; ++i) {
        ASSERT_TRUE(s1.next(a1));
        ASSERT_TRUE(s2.next(a2));
        EXPECT_EQ(a1.addr, a2.addr);
        EXPECT_EQ(a1.gap, a2.gap);
        EXPECT_EQ(static_cast<int>(a1.type), static_cast<int>(a2.type));
    }
    EXPECT_FALSE(s1.next(a1)); // exhausted
}

TEST(Workload, MixRoughlyMatchesProfile)
{
    SystemConfig cfg = SystemConfig::scaled(8);
    const auto &prof = profileByName("TPC-C");
    auto lay = std::make_shared<const SharedLayout>(prof, cfg);
    SyntheticStream s(lay, 0, 50000, cfg.seed);
    TraceAccess a;
    unsigned ifetches = 0, total = 0;
    while (s.next(a)) {
        ++total;
        if (a.type == AccessType::Ifetch)
            ++ifetches;
        EXPECT_EQ(a.addr % blockBytes, 0u); // block aligned
        EXPECT_GE(a.gap, 1u);
    }
    EXPECT_EQ(total, 50000u);
    EXPECT_NEAR(ifetches / 50000.0, prof.ifetchFrac, 0.02);
}

TEST(Workload, StreamingBlocksNeverRepeat)
{
    SystemConfig cfg = SystemConfig::scaled(8);
    const auto &prof = profileByName("314.mgrid"); // 72% streaming
    auto lay = std::make_shared<const SharedLayout>(prof, cfg);
    SyntheticStream s(lay, 1, 20000, cfg.seed);
    TraceAccess a;
    std::map<Addr, unsigned> counts;
    while (s.next(a))
        ++counts[blockNumber(a.addr)];
    // Streaming blocks live in their own region and appear once each.
    unsigned streaming_blocks = 0;
    for (const auto &[blk, n] : counts) {
        if (blk >= lay->streamBase) {
            EXPECT_EQ(n, 1u);
            ++streaming_blocks;
        }
    }
    EXPECT_NEAR(streaming_blocks / 20000.0, prof.streamFrac, 0.03);
}

TEST(Workload, CoresShareOnlyGroupAndCodeBlocks)
{
    SystemConfig cfg = SystemConfig::scaled(8);
    const auto &prof = profileByName("compress");
    auto lay = std::make_shared<const SharedLayout>(prof, cfg);
    // Collect private-region addresses of two cores; they must be
    // disjoint.
    std::set<Addr> c0, c1;
    SyntheticStream s0(lay, 0, 5000, cfg.seed);
    SyntheticStream s1(lay, 1, 5000, cfg.seed);
    TraceAccess a;
    while (s0.next(a)) {
        Addr b = blockNumber(a.addr);
        if (b >= lay->privBase && b < lay->streamBase)
            c0.insert(b);
    }
    while (s1.next(a)) {
        Addr b = blockNumber(a.addr);
        if (b >= lay->privBase && b < lay->streamBase)
            c1.insert(b);
    }
    for (Addr b : c0)
        EXPECT_FALSE(c1.count(b));
}

TEST(Workload, MakeStreamsOnePerCore)
{
    SystemConfig cfg = SystemConfig::scaled(8);
    auto lay = std::make_shared<const SharedLayout>(
        profileByName("sunflow"), cfg);
    auto streams = makeStreams(lay, cfg, 10);
    EXPECT_EQ(streams.size(), 8u);
    TraceAccess a;
    for (auto &s : streams)
        EXPECT_TRUE(s->next(a));
}
