/**
 * @file
 * Checkpoint/restore tests: save -> load -> continue must be
 * bit-identical to an uninterrupted run for every tracking scheme, a
 * damaged or mismatched checkpoint must be refused with
 * CheckpointError (never a silent wrong restore), and the shared
 * warmup fast-forward grid must reproduce the per-cell measured
 * regions while executing the warmup only once.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <sys/stat.h>
#include <unistd.h>
#include <vector>

#include "ckpt/ckpt.hh"
#include "common/sim_error.hh"
#include "oracle/diff.hh"
#include "sim/driver.hh"
#include "sim/experiment.hh"
#include "sim/parallel.hh"
#include "sim/system.hh"
#include "workload/generator.hh"
#include "workload/profile.hh"

namespace tinydir
{
namespace
{

struct NamedCfg
{
    const char *name;
    SystemConfig cfg;
};

/** All seven tracking schemes; each serializes different state. */
std::vector<NamedCfg>
checkpointSchemes()
{
    std::vector<NamedCfg> out;
    {
        SystemConfig cfg = SystemConfig::scaled(4);
        cfg.tracker = TrackerKind::SparseDir;
        cfg.dirSizeFactor = 2.0;
        out.push_back({"mesi_sparse_2x", cfg});
    }
    {
        SystemConfig cfg = SystemConfig::scaled(4);
        cfg.tracker = TrackerKind::SharedOnlyDir;
        cfg.dirSizeFactor = 1.0 / 64;
        out.push_back({"shared_only", cfg});
    }
    {
        SystemConfig cfg = SystemConfig::scaled(4);
        cfg.tracker = TrackerKind::InLlcTagExtended;
        out.push_back({"inllc_tag_extended", cfg});
    }
    {
        SystemConfig cfg = SystemConfig::scaled(4);
        cfg.tracker = TrackerKind::InLlc;
        out.push_back({"inllc", cfg});
    }
    {
        SystemConfig cfg = SystemConfig::scaled(4);
        cfg.tracker = TrackerKind::TinyDir;
        cfg.dirSizeFactor = 1.0 / 32;
        cfg.tinySpill = true; // exercise spill-buffer serialization
        out.push_back({"tiny_dir_1_32x", cfg});
    }
    {
        SystemConfig cfg = SystemConfig::scaled(4);
        cfg.tracker = TrackerKind::Mgd;
        out.push_back({"mgd", cfg});
    }
    {
        SystemConfig cfg = SystemConfig::scaled(4);
        cfg.tracker = TrackerKind::Stash;
        cfg.dirSizeFactor = 1.0 / 2048;
        out.push_back({"stash", cfg});
    }
    return out;
}

/** RunOut equality on everything deterministic (not wall time). */
void
expectSameRun(const RunOut &a, const RunOut &b)
{
    EXPECT_EQ(a.execCycles, b.execCycles);
    EXPECT_EQ(a.totalCycles, b.totalCycles);
    EXPECT_EQ(a.accesses, b.accesses);
    const auto &ia = a.stats.items();
    const auto &ib = b.stats.items();
    ASSERT_EQ(ia.size(), ib.size());
    for (std::size_t i = 0; i < ia.size(); ++i) {
        EXPECT_EQ(ia[i].first, ib[i].first);
        EXPECT_EQ(ia[i].second, ib[i].second)
            << "stat " << ia[i].first << " differs";
    }
}

std::string
tmpPath(const std::string &leaf)
{
    // ctest runs each gtest case as its own process, possibly in
    // parallel; a fixed leaf name would race across processes.
    return testing::TempDir() + std::to_string(::getpid()) + "_" + leaf;
}

/** Read a whole file into a byte string. */
std::string
slurp(const std::string &path)
{
    std::ifstream is(path, std::ios::binary);
    std::ostringstream os;
    os << is.rdbuf();
    return os.str();
}

void
spit(const std::string &path, const std::string &bytes)
{
    std::ofstream os(path, std::ios::binary | std::ios::trunc);
    os.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

constexpr std::uint64_t kAccesses = 1000;
constexpr std::uint64_t kWarmup = 300;

/**
 * Run to @p stop_after total accesses, checkpoint there, and return
 * the file's bytes (the file itself is removed).
 */
std::string
checkpointBytes(const SystemConfig &cfg, const WorkloadProfile &prof,
                Counter stop_after)
{
    const std::string path = tmpPath("tinydir_ckpt_src.tdcp");
    RunControls save;
    save.checkpointPath = path;
    save.stopAfterAccesses = stop_after;
    const RunOut part = runOne(cfg, prof, kAccesses, kWarmup, save);
    EXPECT_EQ(part.accesses, stop_after);
    std::string bytes = slurp(path);
    EXPECT_FALSE(bytes.empty());
    std::remove(path.c_str());
    return bytes;
}

/**
 * Write @p bytes to a file and resume from it, expecting
 * CheckpointError whose message contains @p needle.
 */
void
expectRefused(const SystemConfig &cfg, const WorkloadProfile &prof,
              const std::string &bytes, const std::string &needle)
{
    const std::string path = tmpPath("tinydir_ckpt_bad.tdcp");
    spit(path, bytes);
    RunControls load;
    load.resumePath = path;
    try {
        runOne(cfg, prof, kAccesses, kWarmup, load);
        FAIL() << "restore accepted a checkpoint that should be "
                  "refused (" << needle << ")";
    } catch (const CheckpointError &e) {
        EXPECT_NE(std::string(e.what()).find(needle), std::string::npos)
            << "unexpected message: " << e.what();
    }
    std::remove(path.c_str());
}

TEST(Checkpoint, SaveLoadContinueBitIdentical)
{
    const WorkloadProfile &prof = profileByName("compress");
    for (const auto &scheme : checkpointSchemes()) {
        SCOPED_TRACE(scheme.name);
        const RunOut full = runOne(scheme.cfg, prof, kAccesses, kWarmup);
        ASSERT_GT(full.accesses, 0u);
        // One split inside the warmup phase, one inside the measured
        // region: both sides of the stats-reset boundary must resume
        // bit-identically.
        for (const double frac : {0.45, 0.85}) {
            SCOPED_TRACE(frac);
            const Counter stop =
                static_cast<Counter>(
                    static_cast<double>(full.accesses) * frac) |
                1; // odd: never a multiple of any internal period
            const std::string path = tmpPath("tinydir_ckpt_bit.tdcp");
            RunControls save;
            save.checkpointPath = path;
            save.stopAfterAccesses = stop;
            const RunOut part1 =
                runOne(scheme.cfg, prof, kAccesses, kWarmup, save);
            EXPECT_EQ(part1.accesses, stop);
            EXPECT_EQ(part1.resumedAt, 0u);

            RunControls load;
            load.resumePath = path;
            const RunOut part2 =
                runOne(scheme.cfg, prof, kAccesses, kWarmup, load);
            EXPECT_EQ(part2.resumedAt, stop);
            expectSameRun(part2, full);
            std::remove(path.c_str());
        }
    }
}

TEST(Checkpoint, PeriodicCheckpointsDoNotPerturbAndResume)
{
    const SystemConfig cfg = checkpointSchemes()[0].cfg;
    const WorkloadProfile &prof = profileByName("swaptions");
    const RunOut full = runOne(cfg, prof, 800, 0);

    const std::string path = tmpPath("tinydir_ckpt_periodic.tdcp");
    RunControls save;
    save.checkpointPath = path;
    save.checkpointEvery = 512;
    const RunOut withCkpt = runOne(cfg, prof, 800, 0, save);
    // Periodic checkpointing must not change the simulation.
    expectSameRun(withCkpt, full);

    // The file holds the last periodic snapshot; resuming from it
    // finishes the run with the same final state.
    RunControls load;
    load.resumePath = path;
    const RunOut resumed = runOne(cfg, prof, 800, 0, load);
    EXPECT_GT(resumed.resumedAt, 0u);
    EXPECT_EQ(resumed.resumedAt % save.checkpointEvery, 0u);
    expectSameRun(resumed, full);
    std::remove(path.c_str());
}

TEST(Checkpoint, RestoreUnderVerifyPasses)
{
    const WorkloadProfile &prof = profileByName("compress");
    for (const auto &scheme : checkpointSchemes()) {
        SCOPED_TRACE(scheme.name);
        const RunOut full = runOne(scheme.cfg, prof, kAccesses, kWarmup);
        const std::string path = tmpPath("tinydir_ckpt_verify.tdcp");
        RunControls save;
        save.checkpointPath = path;
        save.stopAfterAccesses = full.accesses / 2;
        runOne(scheme.cfg, prof, kAccesses, kWarmup, save);

        RunControls load;
        load.resumePath = path;
        load.verifyPeriod = 128; // throws InvariantViolation on corruption
        const RunOut resumed =
            runOne(scheme.cfg, prof, kAccesses, kWarmup, load);
        expectSameRun(resumed, full);
        std::remove(path.c_str());
    }
}

TEST(Checkpoint, ResaveAfterLoadIsByteIdentical)
{
    // The engine persists only its busy-expiry time wheel's position
    // and rebuilds the wheel contents from the authoritative busyUntil
    // map on load. A re-save taken immediately after a load must
    // reproduce the original byte stream exactly — wheel position
    // included — or restores would not be transparent to later
    // checkpoints. barnes is shared-heavy, so the snapshot lands with
    // three-hop reminders actually live in the wheel.
    const WorkloadProfile &prof = profileByName("barnes");
    for (const auto &scheme : checkpointSchemes()) {
        SCOPED_TRACE(scheme.name);
        const auto layout = layoutFor(prof, scheme.cfg);
        const std::uint64_t perCore = 1200;

        std::ostringstream snap;
        {
            System sys(scheme.cfg);
            auto streams = makeStreams(layout, scheme.cfg, perCore, false);
            Driver d;
            d.checkpointSink =
                [&](System &s,
                    const std::vector<std::unique_ptr<AccessStream>> &strs,
                    const DriverProgress &p) {
                    snap.str(std::string());
                    ckpt::saveRun(snap, s, strs, p, prof.name);
                };
            d.stopAfterAccesses = 1601; // odd: mid-burst, wheel non-trivial
            d.run(sys, std::move(streams));
        }
        ASSERT_FALSE(snap.str().empty());

        System sys2(scheme.cfg);
        auto streams2 = makeStreams(layout, scheme.cfg, perCore, false);
        std::istringstream is(snap.str());
        ckpt::LoadResult lr = ckpt::loadRun(is, sys2, streams2);
        EXPECT_TRUE(lr.exact);

        std::ostringstream resnap;
        ckpt::saveRun(resnap, sys2, streams2, lr.progress, prof.name);
        EXPECT_EQ(snap.str(), resnap.str());
    }
}

TEST(Checkpoint, TruncatedFileRefused)
{
    const SystemConfig cfg = checkpointSchemes()[0].cfg;
    const WorkloadProfile &prof = profileByName("compress");
    const std::string bytes = checkpointBytes(cfg, prof, 2001);
    // Cut inside the header and inside a section payload.
    expectRefused(cfg, prof, bytes.substr(0, 10), "truncated");
    expectRefused(cfg, prof, bytes.substr(0, bytes.size() / 2),
                  "truncated");
    // An empty file is also a truncation, not a crash.
    expectRefused(cfg, prof, std::string(), "truncated");
}

TEST(Checkpoint, BadMagicAndVersionRefused)
{
    const SystemConfig cfg = checkpointSchemes()[0].cfg;
    const WorkloadProfile &prof = profileByName("compress");
    const std::string bytes = checkpointBytes(cfg, prof, 2001);

    std::string badMagic = bytes;
    badMagic[0] = static_cast<char>(badMagic[0] ^ 0xff);
    expectRefused(cfg, prof, badMagic, "bad magic");

    std::string badVersion = bytes;
    badVersion[4] = static_cast<char>(badVersion[4] + 1);
    expectRefused(cfg, prof, badVersion, "unsupported checkpoint version");
}

TEST(Checkpoint, CorruptSectionTagRefused)
{
    const SystemConfig cfg = checkpointSchemes()[0].cfg;
    const WorkloadProfile &prof = profileByName("compress");
    const std::string bytes = checkpointBytes(cfg, prof, 2001);
    // Header: magic u32, version u32, fullHash u64, warmupHash u64,
    // numCores u32, accessesDone u64, then the length-prefixed profile
    // name; the first section tag follows immediately.
    const std::size_t tagOff =
        4 + 4 + 8 + 8 + 4 + 8 + 8 + std::string("compress").size();
    ASSERT_LT(tagOff, bytes.size());
    std::string corrupt = bytes;
    corrupt[tagOff] = static_cast<char>(corrupt[tagOff] ^ 0xff);
    expectRefused(cfg, prof, corrupt, "section");
}

TEST(Checkpoint, ConfigMismatchRefused)
{
    const SystemConfig cfg = checkpointSchemes()[0].cfg;
    const WorkloadProfile &prof = profileByName("compress");
    const std::string bytes = checkpointBytes(cfg, prof, 2001);

    // A non-tracker difference (the seed) is refused outright ...
    SystemConfig otherSeed = cfg;
    otherSeed.seed ^= 1;
    expectRefused(otherSeed, prof, bytes, "hash mismatch");

    // ... even with the warmup fallback enabled: the fallback only
    // absorbs tracker-only differences.
    {
        const std::string path = tmpPath("tinydir_ckpt_seed.tdcp");
        spit(path, bytes);
        RunControls load;
        load.resumePath = path;
        load.resumeFastForward = true;
        EXPECT_THROW(runOne(otherSeed, prof, kAccesses, kWarmup, load),
                     CheckpointError);
        std::remove(path.c_str());
    }

    // A tracker-only difference is refused in strict mode.
    SystemConfig otherTracker = cfg;
    otherTracker.tracker = TrackerKind::TinyDir;
    otherTracker.dirSizeFactor = 1.0 / 32;
    expectRefused(otherTracker, prof, bytes, "hash mismatch");
}

TEST(Checkpoint, WrongWorkloadRefused)
{
    const SystemConfig cfg = checkpointSchemes()[0].cfg;
    const std::string bytes =
        checkpointBytes(cfg, profileByName("compress"), 2001);
    expectRefused(cfg, profileByName("swaptions"), bytes,
                  "refusing restore into");
}

TEST(Checkpoint, CommittedCorruptFixtureRefused)
{
    // The committed fixture is a checkpoint header cut off mid-field:
    // valid magic + version, then EOF. Guards the refusal path against
    // regressions in the on-disk format itself.
    const std::string path =
        std::string(TINYDIR_CKPT_FIXTURE_DIR) + "/truncated_header.tdcp";
    const SystemConfig cfg = checkpointSchemes()[0].cfg;
    RunControls load;
    load.resumePath = path;
    EXPECT_THROW(
        runOne(cfg, profileByName("compress"), kAccesses, kWarmup, load),
        CheckpointError);
}

TEST(Checkpoint, MissingFileRefused)
{
    const SystemConfig cfg = checkpointSchemes()[0].cfg;
    RunControls load;
    load.resumePath = tmpPath("tinydir_ckpt_does_not_exist.tdcp");
    try {
        runOne(cfg, profileByName("compress"), kAccesses, kWarmup, load);
        FAIL() << "expected CheckpointError";
    } catch (const CheckpointError &e) {
        EXPECT_NE(std::string(e.what()).find("cannot open"),
                  std::string::npos)
            << e.what();
    }
}

TEST(Checkpoint, MissingResumeColdStartsOnlyInCheckpointedMode)
{
    // The continue-an-interrupted-grid workflow passes --checkpoint
    // and --resume together; a cell with no snapshot then reruns
    // cold instead of failing the grid.
    const SystemConfig cfg = checkpointSchemes()[0].cfg;
    const WorkloadProfile &prof = profileByName("compress");
    const RunOut full = runOne(cfg, prof, 400, 0);
    RunControls both;
    both.resumePath = tmpPath("tinydir_ckpt_absent.tdcp");
    both.checkpointPath = tmpPath("tinydir_ckpt_new.tdcp");
    const RunOut cold = runOne(cfg, prof, 400, 0, both);
    EXPECT_EQ(cold.resumedAt, 0u);
    expectSameRun(cold, full);
    std::remove(both.checkpointPath.c_str());
}

TEST(Checkpoint, OracleCrossChecksResumedRun)
{
    // Attach the differential oracle to a checkpoint-restored system
    // mid-run: the primed model must track the continued execution
    // without divergence and the final cross-check must pass.
    const SystemConfig cfg = SystemConfig::scaled(4);
    const WorkloadProfile &prof = profileByName("barnes");
    const auto layout = layoutFor(prof, cfg);
    const std::uint64_t perCore = 1500;

    std::ostringstream snap;
    {
        System sys(cfg);
        auto streams = makeStreams(layout, cfg, perCore, false);
        Driver d1;
        d1.checkpointSink =
            [&](System &s,
                const std::vector<std::unique_ptr<AccessStream>> &strs,
                const DriverProgress &p) {
                snap.str(std::string());
                ckpt::saveRun(snap, s, strs, p, prof.name);
            };
        d1.stopAfterAccesses = 2500;
        d1.run(sys, std::move(streams));
    }
    ASSERT_FALSE(snap.str().empty());

    System sys2(cfg);
    auto streams2 = makeStreams(layout, cfg, perCore, false);
    std::istringstream is(snap.str());
    ckpt::LoadResult lr = ckpt::loadRun(is, sys2, streams2);
    EXPECT_TRUE(lr.exact);
    EXPECT_EQ(lr.accessesDone, 2500u);
    EXPECT_EQ(lr.profile, prof.name);

    OracleDiff diff(cfg);
    diff.primeFromSystem(sys2);
    sys2.setObserver(&diff);
    Driver d2;
    const RunResult rr = d2.run(sys2, std::move(streams2), &lr.progress);
    EXPECT_EQ(rr.accesses, 4 * perCore);
    EXPECT_FALSE(diff.diverged()) << diff.report().describe();
    EXPECT_TRUE(diff.crossCheck(sys2)) << diff.report().describe();
}

TEST(WarmupFastForward, GridSharesWarmupKeepsResultsAndVerifies)
{
    const WorkloadProfile *prof = &profileByName("compress");
    // The baseline cell's config IS the warmup-normalized config, so
    // its fast-forwarded restore must be bit-exact.
    const SystemConfig base = SystemConfig::scaled(4);
    ASSERT_EQ(ckpt::configSignature(base), ckpt::warmupSignature(base));

    SystemConfig tiny = base;
    tiny.tracker = TrackerKind::TinyDir;
    tiny.dirSizeFactor = 1.0 / 32;
    tiny.tinySpill = true;
    SystemConfig mgd = base;
    mgd.tracker = TrackerKind::Mgd;

    RunControls ctl;
    ctl.verifyPeriod = 256; // every cell runs under the verifier
    const std::uint64_t acc = 700, warm = 300;
    const std::vector<SimJob> jobs = {{base, prof, acc, warm, ctl},
                                      {tiny, prof, acc, warm, ctl},
                                      {mgd, prof, acc, warm, ctl}};

    const auto plain = runMany(jobs, 1);
    for (const auto &r : plain) {
        ASSERT_FALSE(r.failed) << r.error;
        EXPECT_EQ(r.out.resumedAt, 0u);
    }

    const std::string dir = tmpPath("tinydir_ffgrid");
    ::mkdir(dir.c_str(), 0755); // may already exist; reuse is fine

    RunManyOptions opt;
    opt.workers = 1;
    opt.warmupSnapshotDir = dir;
    const auto ff = runMany(jobs, opt);
    ASSERT_EQ(ff.size(), jobs.size());
    Counter plainExec = 0, ffExec = 0;
    for (std::size_t i = 0; i < jobs.size(); ++i) {
        SCOPED_TRACE(i);
        ASSERT_FALSE(ff[i].failed) << ff[i].error;
        // Every cell fast-forwarded past the shared warmup ...
        EXPECT_GT(ff[i].out.resumedAt, 0u);
        // ... and still covers the same total trace.
        EXPECT_EQ(ff[i].out.accesses, plain[i].out.accesses);
        plainExec += plain[i].out.accesses;
        ffExec += ff[i].out.accesses - ff[i].out.resumedAt;
    }
    // The exact-hash baseline cell restores bit-identically.
    expectSameRun(ff[0].out, plain[0].out);
    // Even counting the one shared snapshot generation, the grid
    // executed measurably fewer accesses than the cold grid.
    EXPECT_LT(ffExec + ff[0].out.resumedAt, plainExec);

    // Snapshots are reused: a second fast-forwarded grid is
    // deterministic and identical to the first.
    const auto ff2 = runMany(jobs, opt);
    for (std::size_t i = 0; i < jobs.size(); ++i) {
        ASSERT_FALSE(ff2[i].failed) << ff2[i].error;
        expectSameRun(ff2[i].out, ff[i].out);
    }
}

} // namespace
} // namespace tinydir
