/** @file Unit tests for the exact discrete Zipf sampler. */

#include <gtest/gtest.h>

#include <vector>

#include "common/rng.hh"

using namespace tinydir;

TEST(ZipfSampler, UniformWhenThetaZero)
{
    Rng rng(5);
    ZipfSampler z(8, 0.0);
    std::vector<unsigned> counts(8, 0);
    for (int i = 0; i < 16000; ++i)
        ++counts[z(rng)];
    for (auto c : counts)
        EXPECT_NEAR(static_cast<double>(c), 2000.0, 300.0);
}

TEST(ZipfSampler, MatchesAnalyticHeadMass)
{
    // theta = 1: P(rank 0) = 1 / H(n). For n = 100, H(100) ~ 5.187.
    Rng rng(7);
    ZipfSampler z(100, 1.0);
    unsigned zeros = 0;
    const int draws = 50000;
    for (int i = 0; i < draws; ++i)
        zeros += z(rng) == 0;
    EXPECT_NEAR(zeros / double(draws), 1.0 / 5.187, 0.01);
}

TEST(ZipfSampler, HeavierThetaConcentratesMore)
{
    Rng r1(9), r2(9);
    ZipfSampler weak(256, 0.6), strong(256, 1.4);
    unsigned weak_head = 0, strong_head = 0;
    for (int i = 0; i < 20000; ++i) {
        weak_head += weak(r1) < 16;
        strong_head += strong(r2) < 16;
    }
    EXPECT_GT(strong_head, weak_head + 2000);
}

TEST(ZipfSampler, AllRanksReachable)
{
    Rng rng(11);
    ZipfSampler z(16, 0.9);
    std::vector<bool> seen(16, false);
    for (int i = 0; i < 20000; ++i)
        seen[z(rng)] = true;
    for (bool s : seen)
        EXPECT_TRUE(s);
}

TEST(ZipfSampler, SingleElement)
{
    Rng rng(13);
    ZipfSampler z(1, 1.2);
    for (int i = 0; i < 10; ++i)
        EXPECT_EQ(z(rng), 0u);
}

TEST(ZipfSampler, MonotoneNonIncreasingFrequencies)
{
    Rng rng(17);
    ZipfSampler z(32, 1.1);
    std::vector<unsigned> counts(32, 0);
    for (int i = 0; i < 200000; ++i)
        ++counts[z(rng)];
    // Allow small statistical noise between adjacent ranks, but the
    // decade trend must be monotone.
    EXPECT_GT(counts[0], counts[7]);
    EXPECT_GT(counts[7], counts[31]);
}
