/** @file Unit tests for the LLC meta-states and spill-aware LRU. */

#include <gtest/gtest.h>

#include "cache/llc.hh"

using namespace tinydir;

namespace
{

SystemConfig
smallCfg()
{
    return SystemConfig::scaled(8); // 8 banks, 256 sets, 16 ways
}

/** Fill a slot returned by allocate() as a Normal data block. */
LlcEntry *
fillData(Llc &llc, Addr block, bool dirty = false)
{
    auto ar = llc.allocate(block); // tag/valid installed by allocate()
    ar.slot->dirty = dirty;
    ar.slot->meta = LlcMeta::Normal;
    return ar.slot;
}

/** Blocks of the same bank+set: stride = banks * sets. */
Addr
sameSet(const Llc &llc, Addr base, unsigned i)
{
    return base + static_cast<Addr>(i) * llc.numBanks() *
        llc.setsPerBank();
}

} // namespace

TEST(Llc, GeometryFromConfig)
{
    auto cfg = smallCfg();
    Llc llc(cfg);
    EXPECT_EQ(llc.numBanks(), 8u);
    EXPECT_EQ(llc.setsPerBank(), 256u);
    EXPECT_EQ(llc.assoc(), 16u);
}

TEST(Llc, BankAndSetMapping)
{
    auto cfg = smallCfg();
    Llc llc(cfg);
    EXPECT_EQ(llc.bankOf(0), 0u);
    EXPECT_EQ(llc.bankOf(7), 7u);
    EXPECT_EQ(llc.bankOf(8), 0u);
    EXPECT_EQ(llc.setOf(0), 0u);
    EXPECT_EQ(llc.setOf(8), 1u);
}

TEST(Llc, FindDataVsSpill)
{
    auto cfg = smallCfg();
    Llc llc(cfg);
    fillData(llc, 100);
    ASSERT_NE(llc.findData(100), nullptr);
    EXPECT_EQ(llc.findSpill(100), nullptr);
    // Add a spill entry with the same tag in the same set.
    auto ar = llc.allocate(100);
    ar.slot->meta = LlcMeta::Spill;
    ASSERT_NE(llc.findSpill(100), nullptr);
    ASSERT_NE(llc.findData(100), nullptr);
    EXPECT_NE(llc.findData(100), llc.findSpill(100));
}

TEST(Llc, AllocateNeverEvictsCompanionTag)
{
    auto cfg = smallCfg();
    Llc llc(cfg);
    const Addr b = 40;
    fillData(llc, b);
    // Fill the whole set with other blocks.
    for (unsigned i = 1; i < llc.assoc(); ++i)
        fillData(llc, sameSet(llc, b, i));
    // Allocate a spill entry for b: victim must never be b itself.
    auto ar = llc.allocate(b);
    ASSERT_TRUE(ar.victim.has_value());
    EXPECT_NE(ar.victim->tag, b);
    ar.slot->meta = LlcMeta::Spill;
    EXPECT_NE(llc.findData(b), nullptr);
    EXPECT_NE(llc.findSpill(b), nullptr);
}

TEST(Llc, SpillEvictedBeforeDataUnderLru)
{
    auto cfg = smallCfg();
    Llc llc(cfg);
    const Addr b = 16;
    fillData(llc, b);
    auto ar = llc.allocate(b);
    ar.slot->meta = LlcMeta::Spill;
    // Apply the ordering rule on every access: E_B then B.
    llc.touchSpill(b);
    llc.touchData(b);
    // Now stream conflicting blocks through the set; the spill entry
    // must die before the data block.
    bool spill_died = false;
    for (unsigned i = 1; i < 3 * llc.assoc(); ++i) {
        auto ar2 = llc.allocate(sameSet(llc, b, i));
        if (ar2.victim && ar2.victim->meta == LlcMeta::Spill &&
            ar2.victim->tag == b) {
            spill_died = true;
        }
        if (ar2.victim && ar2.victim->tag == b &&
            ar2.victim->meta != LlcMeta::Spill) {
            EXPECT_TRUE(spill_died)
                << "data block died before its spilled entry";
        }
        ar2.slot->meta = LlcMeta::Normal;
    }
    EXPECT_TRUE(spill_died);
}

TEST(Llc, FreeSpillAndFreeData)
{
    auto cfg = smallCfg();
    Llc llc(cfg);
    fillData(llc, 9);
    auto ar = llc.allocate(9);
    ar.slot->meta = LlcMeta::Spill;
    llc.freeSpill(9);
    EXPECT_EQ(llc.findSpill(9), nullptr);
    EXPECT_NE(llc.findData(9), nullptr);
    llc.freeData(9);
    EXPECT_EQ(llc.findData(9), nullptr);
    EXPECT_EQ(llc.residency().blocksAllocated, 1u);
}

TEST(Llc, ResidencyHistogramBins)
{
    ResidencyHistograms h;
    ResidencyStats rs;
    rs.maxSharers = 3;
    h.noteDeath(rs);
    rs.maxSharers = 6;
    h.noteDeath(rs);
    rs.maxSharers = 12;
    h.noteDeath(rs);
    rs.maxSharers = 100;
    h.noteDeath(rs);
    rs.maxSharers = 1; // private: not in any bin
    h.noteDeath(rs);
    EXPECT_EQ(h.blocksAllocated, 5u);
    EXPECT_EQ(h.blocksShared, 4u);
    EXPECT_EQ(h.sharerBins.bucket(0), 1u);
    EXPECT_EQ(h.sharerBins.bucket(1), 1u);
    EXPECT_EQ(h.sharerBins.bucket(2), 1u);
    EXPECT_EQ(h.sharerBins.bucket(3), 1u);
}

TEST(Llc, StraCategoryAccounting)
{
    ResidencyHistograms h;
    ResidencyStats rs;
    rs.straReads = 127;
    rs.otherAccesses = 1; // ratio 127/128 > 63/64 -> C7
    h.noteDeath(rs);
    EXPECT_EQ(h.straBlocks.bucket(7), 1u);
    EXPECT_EQ(h.straAccesses.bucket(7), 127u);
    ResidencyStats rs2;
    rs2.straReads = 1;
    rs2.otherAccesses = 9; // ratio 0.1 -> C1
    h.noteDeath(rs2);
    EXPECT_EQ(h.straBlocks.bucket(1), 1u);
}

TEST(Llc, SampledSetsAreSparse)
{
    auto cfg = smallCfg();
    Llc llc(cfg);
    unsigned sampled = 0;
    for (Addr b = 0; b < llc.setsPerBank(); ++b) {
        if (llc.isSampledSet(b * llc.numBanks()))
            ++sampled;
    }
    EXPECT_EQ(sampled, cfg.spillSampledSets);
}

TEST(Llc, FlushResidencyCountsLiveBlocks)
{
    auto cfg = smallCfg();
    Llc llc(cfg);
    fillData(llc, 1);
    fillData(llc, 2);
    llc.flushResidency();
    EXPECT_EQ(llc.residency().blocksAllocated, 2u);
}
