/**
 * @file
 * Property-based sweeps: every tracking scheme must preserve the
 * global coherence invariants under randomized, conflict-heavy access
 * streams, and scheme-independent functional quantities must agree
 * across schemes.
 */

#include <gtest/gtest.h>

#include <string>
#include <tuple>

#include "common/rng.hh"
#include "oracle/patterns.hh"
#include "oracle/replay.hh"
#include "oracle/schemes.hh"
#include "sim/system.hh"
#include "test_util.hh"

using namespace tinydir;

namespace
{

/** A deliberately nasty stream: tiny space, heavy write sharing. */
struct Stress
{
    Rng rng;
    explicit Stress(std::uint64_t seed) : rng(seed) {}

    TraceAccess
    next(unsigned num_cores)
    {
        (void)num_cores;
        TraceAccess a;
        a.gap = 1 + rng.below(8);
        const double u = rng.uniform();
        if (u < 0.1)
            a.type = AccessType::Ifetch;
        else if (u < 0.45)
            a.type = AccessType::Store;
        else
            a.type = AccessType::Load;
        // 128 hot blocks spanning all banks and a few sets.
        a.addr = rng.below(128) << blockShift;
        return a;
    }
};

struct SchemeParam
{
    TrackerKind kind;
    double factor;
    bool spill;
    const char *label;
};

class SchemeProperty : public ::testing::TestWithParam<SchemeParam>
{
};

SystemConfig
makeCfg(const SchemeParam &p, std::uint64_t seed)
{
    SystemConfig cfg = SystemConfig::scaled(8);
    cfg.seed = seed;
    cfg.tracker = p.kind;
    cfg.dirSizeFactor = p.factor;
    cfg.tinySpill = p.spill;
    if (p.kind == TrackerKind::Mgd) {
        cfg.dirSkewed = true;
        cfg.dirAssoc = 4;
    }
    // Small private caches: force heavy eviction-notice traffic.
    cfg.l1Bytes = 8 * 2 * blockBytes;
    cfg.l1Assoc = 2;
    cfg.l2Bytes = 16 * 2 * blockBytes;
    cfg.l2Assoc = 2;
    return cfg;
}

} // namespace

TEST_P(SchemeProperty, InvariantsHoldUnderStress)
{
    const auto p = GetParam();
    SystemConfig cfg = makeCfg(p, 99);
    System sys(cfg);
    Stress stress(42);
    Rng pick(7);
    for (unsigned i = 0; i < 6000; ++i) {
        const CoreId c = static_cast<CoreId>(pick.below(cfg.numCores));
        TraceAccess a = stress.next(cfg.numCores);
        const Cycle issue = sys.cores[c].clock + a.gap;
        sys.cores[c].clock = sys.executeAccess(c, a, issue);
        if (i % 500 == 0) {
            std::string msg;
            ASSERT_TRUE(sys.verifyCoherence(&msg))
                << p.label << " @" << i << ": " << msg;
        }
    }
    std::string msg;
    EXPECT_TRUE(sys.verifyCoherence(&msg)) << p.label << ": " << msg;
}

TEST_P(SchemeProperty, StoreVisibilityIsExclusive)
{
    // After any store completes, no other core may hold the block.
    const auto p = GetParam();
    SystemConfig cfg = makeCfg(p, 31);
    System sys(cfg);
    Rng rng(5);
    for (unsigned i = 0; i < 2000; ++i) {
        const CoreId c = static_cast<CoreId>(rng.below(cfg.numCores));
        const Addr blk = rng.below(64);
        TraceAccess a;
        a.gap = 2;
        a.type = rng.chance(0.5) ? AccessType::Store : AccessType::Load;
        a.addr = blk << blockShift;
        const Cycle issue = sys.cores[c].clock + a.gap;
        sys.cores[c].clock = sys.executeAccess(c, a, issue);
        if (a.type == AccessType::Store) {
            ASSERT_EQ(sys.privs[c].state(blk), MesiState::M)
                << p.label;
            for (CoreId o = 0; o < cfg.numCores; ++o) {
                if (o != c) {
                    ASSERT_FALSE(sys.privs[o].present(blk))
                        << p.label << ": core " << o
                        << " still holds stored block " << blk;
                }
            }
        }
    }
}

TEST_P(SchemeProperty, FootprintNeverExceedsPrivateCapacity)
{
    const auto p = GetParam();
    SystemConfig cfg = makeCfg(p, 77);
    System sys(cfg);
    Stress stress(11);
    Rng pick(3);
    const std::size_t capacity =
        2 * (cfg.l1Bytes / blockBytes) + cfg.l2Bytes / blockBytes;
    for (unsigned i = 0; i < 3000; ++i) {
        const CoreId c = static_cast<CoreId>(pick.below(cfg.numCores));
        TraceAccess a = stress.next(cfg.numCores);
        const Cycle issue = sys.cores[c].clock + a.gap;
        sys.cores[c].clock = sys.executeAccess(c, a, issue);
        ASSERT_LE(sys.privs[c].footprint(), capacity) << p.label;
    }
}

INSTANTIATE_TEST_SUITE_P(
    AllSchemes, SchemeProperty,
    ::testing::Values(
        SchemeParam{TrackerKind::SparseDir, 2.0, false, "sparse2x"},
        SchemeParam{TrackerKind::SparseDir, 1.0 / 16, false,
                    "sparse16th"},
        SchemeParam{TrackerKind::SparseDir, 1.0 / 2048, false,
                    "sparse1slot"},
        SchemeParam{TrackerKind::SharedOnlyDir, 1.0 / 64, false,
                    "sharedonly"},
        SchemeParam{TrackerKind::InLlcTagExtended, 2.0, false,
                    "tagext"},
        SchemeParam{TrackerKind::InLlc, 2.0, false, "inllc"},
        SchemeParam{TrackerKind::TinyDir, 1.0 / 32, false,
                    "tiny32"},
        SchemeParam{TrackerKind::TinyDir, 1.0 / 32, true,
                    "tiny32spill"},
        SchemeParam{TrackerKind::TinyDir, 1.0 / 256, true,
                    "tiny256spill"},
        SchemeParam{TrackerKind::Mgd, 1.0 / 8, false, "mgd"},
        SchemeParam{TrackerKind::Stash, 1.0 / 32, false, "stash"}),
    [](const ::testing::TestParamInfo<SchemeParam> &info) {
        return std::string(info.param.label);
    });

// ---------------------------------------------------------------------
// Differential-oracle properties: every scheme in the fuzz matrix must
// agree with the scheme-independent reference model (src/oracle) on
// randomized mixed-pattern traces, across multiple seeds.
// ---------------------------------------------------------------------

class OracleProperty : public ::testing::TestWithParam<FuzzScheme>
{
};

TEST_P(OracleProperty, EngineMatchesReferenceModel)
{
    const FuzzScheme &s = GetParam();
    const std::uint64_t base = test::testSeed(4242);
    for (std::uint64_t round = 0; round < 3; ++round) {
        const std::uint64_t seed = base + round;
        PatternParams pp;
        pp.numCores = 4;
        pp.accessesPerCore = 2500; // ~1e4 accesses per round
        pp.seed = seed;

        ReplaySpec spec;
        spec.cfg = makeFuzzConfig(s, pp.numCores, seed);
        spec.streams = randomMix(pp);
        spec.checkPeriod = 512;

        const ReplayResult r = replayWithOracle(spec);
        ASSERT_EQ(r.status, ReplayStatus::Clean)
            << s.label << " seed=" << seed << "\n"
            << r.report.describe() << r.haltMessage;
        ASSERT_EQ(r.accessesRun,
                  static_cast<Counter>(pp.numCores) * pp.accessesPerCore)
            << s.label << " seed=" << seed;
    }
}

TEST_P(OracleProperty, OracleTotalsAreSelfConsistent)
{
    // The model's own counters must add up regardless of scheme:
    // accesses = hits + misses + upgrades, and every access is exactly
    // one of load/store/ifetch.
    const FuzzScheme &s = GetParam();
    const std::uint64_t seed = test::testSeed(1717);
    PatternParams pp;
    pp.numCores = 4;
    pp.accessesPerCore = 2000;
    pp.seed = seed;

    ReplaySpec spec;
    spec.cfg = makeFuzzConfig(s, pp.numCores, seed);
    spec.streams = randomMix(pp);
    spec.checkPeriod = 0; // totals + final cross-check only

    System sys(spec.cfg);
    OracleDiff diff(spec.cfg);
    sys.setObserver(&diff);
    for (unsigned c = 0; c < pp.numCores; ++c) {
        for (const TraceAccess &a : spec.streams[c]) {
            const Cycle issue = sys.cores[c].clock + a.gap;
            sys.cores[c].clock = sys.executeAccess(c, a, issue);
            ASSERT_FALSE(diff.diverged())
                << s.label << " seed=" << seed << "\n"
                << diff.report().describe();
        }
    }
    ASSERT_TRUE(diff.crossCheck(sys))
        << s.label << " seed=" << seed << "\n" << diff.report().describe();
    ASSERT_TRUE(diff.checkTotals(sys.dump()))
        << s.label << " seed=" << seed << "\n" << diff.report().describe();

    const OracleTotals &t = diff.model().totals();
    EXPECT_EQ(t.accesses, t.privHits + t.misses + t.upgrades) << s.label;
    EXPECT_EQ(t.accesses, t.loads + t.stores + t.ifetches) << s.label;
    EXPECT_EQ(t.accesses,
              static_cast<Counter>(pp.numCores) * pp.accessesPerCore)
        << s.label;
}

INSTANTIATE_TEST_SUITE_P(
    FuzzMatrix, OracleProperty, ::testing::ValuesIn(fuzzSchemes()),
    [](const ::testing::TestParamInfo<FuzzScheme> &info) {
        return std::string(info.param.label);
    });

/** Scheme-independent functional agreement across trackers. */
TEST(Properties, AllSchemesSeeIdenticalAccessCounts)
{
    double ref_loads = -1, ref_stores = -1;
    for (auto kind : {TrackerKind::SparseDir, TrackerKind::InLlc,
                      TrackerKind::TinyDir}) {
        SystemConfig cfg = SystemConfig::scaled(8);
        cfg.tracker = kind;
        cfg.dirSizeFactor = kind == TrackerKind::SparseDir
            ? 2.0 : 1.0 / 32;
        System sys(cfg);
        Stress stress(123);
        Rng pick(9);
        for (unsigned i = 0; i < 4000; ++i) {
            const CoreId c =
                static_cast<CoreId>(pick.below(cfg.numCores));
            TraceAccess a = stress.next(cfg.numCores);
            const Cycle issue = sys.cores[c].clock + a.gap;
            sys.cores[c].clock = sys.executeAccess(c, a, issue);
        }
        sys.finalize();
        auto d = sys.dump();
        const double loads = d.get("core.loads");
        const double stores = d.get("core.stores");
        if (ref_loads < 0) {
            ref_loads = loads;
            ref_stores = stores;
        } else {
            EXPECT_EQ(loads, ref_loads);
            EXPECT_EQ(stores, ref_stores);
        }
    }
}
