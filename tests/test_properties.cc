/**
 * @file
 * Property-based sweeps: every tracking scheme must preserve the
 * global coherence invariants under randomized, conflict-heavy access
 * streams, and scheme-independent functional quantities must agree
 * across schemes.
 */

#include <gtest/gtest.h>

#include <string>
#include <tuple>

#include "common/rng.hh"
#include "sim/system.hh"

using namespace tinydir;

namespace
{

/** A deliberately nasty stream: tiny space, heavy write sharing. */
struct Stress
{
    Rng rng;
    explicit Stress(std::uint64_t seed) : rng(seed) {}

    TraceAccess
    next(unsigned num_cores)
    {
        (void)num_cores;
        TraceAccess a;
        a.gap = 1 + rng.below(8);
        const double u = rng.uniform();
        if (u < 0.1)
            a.type = AccessType::Ifetch;
        else if (u < 0.45)
            a.type = AccessType::Store;
        else
            a.type = AccessType::Load;
        // 128 hot blocks spanning all banks and a few sets.
        a.addr = rng.below(128) << blockShift;
        return a;
    }
};

struct SchemeParam
{
    TrackerKind kind;
    double factor;
    bool spill;
    const char *label;
};

class SchemeProperty : public ::testing::TestWithParam<SchemeParam>
{
};

SystemConfig
makeCfg(const SchemeParam &p, std::uint64_t seed)
{
    SystemConfig cfg = SystemConfig::scaled(8);
    cfg.seed = seed;
    cfg.tracker = p.kind;
    cfg.dirSizeFactor = p.factor;
    cfg.tinySpill = p.spill;
    if (p.kind == TrackerKind::Mgd) {
        cfg.dirSkewed = true;
        cfg.dirAssoc = 4;
    }
    // Small private caches: force heavy eviction-notice traffic.
    cfg.l1Bytes = 8 * 2 * blockBytes;
    cfg.l1Assoc = 2;
    cfg.l2Bytes = 16 * 2 * blockBytes;
    cfg.l2Assoc = 2;
    return cfg;
}

} // namespace

TEST_P(SchemeProperty, InvariantsHoldUnderStress)
{
    const auto p = GetParam();
    SystemConfig cfg = makeCfg(p, 99);
    System sys(cfg);
    Stress stress(42);
    Rng pick(7);
    for (unsigned i = 0; i < 6000; ++i) {
        const CoreId c = static_cast<CoreId>(pick.below(cfg.numCores));
        TraceAccess a = stress.next(cfg.numCores);
        const Cycle issue = sys.cores[c].clock + a.gap;
        sys.cores[c].clock = sys.executeAccess(c, a, issue);
        if (i % 500 == 0) {
            std::string msg;
            ASSERT_TRUE(sys.verifyCoherence(&msg))
                << p.label << " @" << i << ": " << msg;
        }
    }
    std::string msg;
    EXPECT_TRUE(sys.verifyCoherence(&msg)) << p.label << ": " << msg;
}

TEST_P(SchemeProperty, StoreVisibilityIsExclusive)
{
    // After any store completes, no other core may hold the block.
    const auto p = GetParam();
    SystemConfig cfg = makeCfg(p, 31);
    System sys(cfg);
    Rng rng(5);
    for (unsigned i = 0; i < 2000; ++i) {
        const CoreId c = static_cast<CoreId>(rng.below(cfg.numCores));
        const Addr blk = rng.below(64);
        TraceAccess a;
        a.gap = 2;
        a.type = rng.chance(0.5) ? AccessType::Store : AccessType::Load;
        a.addr = blk << blockShift;
        const Cycle issue = sys.cores[c].clock + a.gap;
        sys.cores[c].clock = sys.executeAccess(c, a, issue);
        if (a.type == AccessType::Store) {
            ASSERT_EQ(sys.privs[c].state(blk), MesiState::M)
                << p.label;
            for (CoreId o = 0; o < cfg.numCores; ++o) {
                if (o != c) {
                    ASSERT_FALSE(sys.privs[o].present(blk))
                        << p.label << ": core " << o
                        << " still holds stored block " << blk;
                }
            }
        }
    }
}

TEST_P(SchemeProperty, FootprintNeverExceedsPrivateCapacity)
{
    const auto p = GetParam();
    SystemConfig cfg = makeCfg(p, 77);
    System sys(cfg);
    Stress stress(11);
    Rng pick(3);
    const std::size_t capacity =
        2 * (cfg.l1Bytes / blockBytes) + cfg.l2Bytes / blockBytes;
    for (unsigned i = 0; i < 3000; ++i) {
        const CoreId c = static_cast<CoreId>(pick.below(cfg.numCores));
        TraceAccess a = stress.next(cfg.numCores);
        const Cycle issue = sys.cores[c].clock + a.gap;
        sys.cores[c].clock = sys.executeAccess(c, a, issue);
        ASSERT_LE(sys.privs[c].footprint(), capacity) << p.label;
    }
}

INSTANTIATE_TEST_SUITE_P(
    AllSchemes, SchemeProperty,
    ::testing::Values(
        SchemeParam{TrackerKind::SparseDir, 2.0, false, "sparse2x"},
        SchemeParam{TrackerKind::SparseDir, 1.0 / 16, false,
                    "sparse16th"},
        SchemeParam{TrackerKind::SparseDir, 1.0 / 2048, false,
                    "sparse1slot"},
        SchemeParam{TrackerKind::SharedOnlyDir, 1.0 / 64, false,
                    "sharedonly"},
        SchemeParam{TrackerKind::InLlcTagExtended, 2.0, false,
                    "tagext"},
        SchemeParam{TrackerKind::InLlc, 2.0, false, "inllc"},
        SchemeParam{TrackerKind::TinyDir, 1.0 / 32, false,
                    "tiny32"},
        SchemeParam{TrackerKind::TinyDir, 1.0 / 32, true,
                    "tiny32spill"},
        SchemeParam{TrackerKind::TinyDir, 1.0 / 256, true,
                    "tiny256spill"},
        SchemeParam{TrackerKind::Mgd, 1.0 / 8, false, "mgd"},
        SchemeParam{TrackerKind::Stash, 1.0 / 32, false, "stash"}),
    [](const ::testing::TestParamInfo<SchemeParam> &info) {
        return std::string(info.param.label);
    });

/** Scheme-independent functional agreement across trackers. */
TEST(Properties, AllSchemesSeeIdenticalAccessCounts)
{
    double ref_loads = -1, ref_stores = -1;
    for (auto kind : {TrackerKind::SparseDir, TrackerKind::InLlc,
                      TrackerKind::TinyDir}) {
        SystemConfig cfg = SystemConfig::scaled(8);
        cfg.tracker = kind;
        cfg.dirSizeFactor = kind == TrackerKind::SparseDir
            ? 2.0 : 1.0 / 32;
        System sys(cfg);
        Stress stress(123);
        Rng pick(9);
        for (unsigned i = 0; i < 4000; ++i) {
            const CoreId c =
                static_cast<CoreId>(pick.below(cfg.numCores));
            TraceAccess a = stress.next(cfg.numCores);
            const Cycle issue = sys.cores[c].clock + a.gap;
            sys.cores[c].clock = sys.executeAccess(c, a, issue);
        }
        sys.finalize();
        auto d = sys.dump();
        const double loads = d.get("core.loads");
        const double stores = d.get("core.stores");
        if (ref_loads < 0) {
            ref_loads = loads;
            ref_stores = stores;
        } else {
            EXPECT_EQ(loads, ref_loads);
            EXPECT_EQ(stores, ref_stores);
        }
    }
}
