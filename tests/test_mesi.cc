/** @file Unit tests for MESI vocabulary and STRA categories. */

#include <gtest/gtest.h>

#include "proto/mesi.hh"

using namespace tinydir;

TEST(Mesi, TrackStateFactories)
{
    auto e = TrackState::makeExclusive(7);
    EXPECT_TRUE(e.exclusive());
    EXPECT_EQ(e.owner, 7);
    auto s = TrackState::makeShared(SharerSet::single(3));
    EXPECT_TRUE(s.shared());
    EXPECT_TRUE(s.sharers.contains(3));
    TrackState i;
    EXPECT_TRUE(i.invalid());
}

TEST(Mesi, Names)
{
    EXPECT_EQ(toString(MesiState::M), "M");
    EXPECT_EQ(toString(AccessType::Ifetch), "ifetch");
    EXPECT_EQ(toString(ReqType::Upg), "Upg");
}

TEST(Mesi, StraCategoryBoundaries)
{
    EXPECT_EQ(straCategory(0.0), 0u);
    EXPECT_EQ(straCategory(-1.0), 0u);
    EXPECT_EQ(straCategory(0.01), 1u);
    EXPECT_EQ(straCategory(0.5), 1u);    // C1 = (0, 1/2]
    EXPECT_EQ(straCategory(0.51), 2u);   // C2 = (1/2, 3/4]
    EXPECT_EQ(straCategory(0.75), 2u);
    EXPECT_EQ(straCategory(0.76), 3u);
    EXPECT_EQ(straCategory(0.875), 3u);  // C3 upper bound 7/8
    EXPECT_EQ(straCategory(15.0 / 16), 4u);
    EXPECT_EQ(straCategory(31.0 / 32), 5u);
    EXPECT_EQ(straCategory(63.0 / 64), 6u);
    EXPECT_EQ(straCategory(0.99), 7u);   // C7 = (63/64, 1]
    EXPECT_EQ(straCategory(1.0), 7u);
}

/** Property sweep: categories are monotone in the ratio. */
class StraMonotone : public ::testing::TestWithParam<int>
{
};

TEST_P(StraMonotone, NonDecreasing)
{
    const double r1 = GetParam() / 1000.0;
    const double r2 = r1 + 0.001;
    EXPECT_LE(straCategory(r1), straCategory(r2));
}

INSTANTIATE_TEST_SUITE_P(Ratios, StraMonotone,
                         ::testing::Range(0, 999, 37));
