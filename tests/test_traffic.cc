/** @file Unit tests for message classes and byte accounting. */

#include <gtest/gtest.h>

#include "noc/traffic.hh"

using namespace tinydir;

TEST(Traffic, MessageSizes)
{
    EXPECT_EQ(ctrlBytes, 8u);
    EXPECT_EQ(dataBytes, 72u);
}

TEST(Traffic, ReconstructBytesMatchesPaper)
{
    // 128 cores: 4 + ceil(log2 128) = 11 bits -> 2 bytes.
    EXPECT_EQ(reconstructBytes(128), 2u);
    // 16 cores: 4 + 4 = 8 bits -> 1 byte.
    EXPECT_EQ(reconstructBytes(16), 1u);
    // 2 cores: 4 + 1 = 5 bits -> 1 byte.
    EXPECT_EQ(reconstructBytes(2), 1u);
}

TEST(Traffic, AccumulatesPerClass)
{
    TrafficStats t;
    t.add(MsgClass::Processor, dataBytes);
    t.add(MsgClass::Processor, ctrlBytes, 3);
    t.add(MsgClass::Coherence, ctrlBytes);
    EXPECT_EQ(t.bytes(MsgClass::Processor), dataBytes + 3 * ctrlBytes);
    EXPECT_EQ(t.messages(MsgClass::Processor), 4u);
    EXPECT_EQ(t.bytes(MsgClass::Coherence), ctrlBytes);
    EXPECT_EQ(t.bytes(MsgClass::Writeback), 0u);
    EXPECT_EQ(t.totalBytes(), dataBytes + 4 * ctrlBytes);
    t.reset();
    EXPECT_EQ(t.totalBytes(), 0u);
}

TEST(Traffic, ClassNames)
{
    EXPECT_EQ(toString(MsgClass::Processor), "processor");
    EXPECT_EQ(toString(MsgClass::Writeback), "writeback");
    EXPECT_EQ(toString(MsgClass::Coherence), "coherence");
}
