/** @file Tests of the idealized shared-only directory (Fig. 3 design). */

#include <gtest/gtest.h>

#include "proto/engine.hh"
#include "proto/shared_only_dir.hh"
#include "test_util.hh"

using namespace tinydir;
using tinydir::test::Harness;
using tinydir::test::smallConfig;

TEST(SharedOnly, PrivateBlocksUseUnboundedStructure)
{
    // One directory entry per slice: private blocks must never
    // allocate in it.
    auto cfg = smallConfig(TrackerKind::SharedOnlyDir, 1.0 / 2048);
    Harness h(cfg);
    for (Addr b = 0; b < 64; ++b)
        h.load(0, 1000 + b);
    EXPECT_EQ(h.sys.tracker->dirAllocs(), 0u);
    EXPECT_EQ(h.sys.engine.stats.backInvals.value(), 0u);
    h.expectCoherent();
}

TEST(SharedOnly, SingleSharerStaysUnbounded)
{
    auto cfg = smallConfig(TrackerKind::SharedOnlyDir, 1.0 / 2048);
    Harness h(cfg);
    h.ifetch(0, 100); // S with one sharer
    EXPECT_EQ(h.sys.tracker->dirAllocs(), 0u);
    h.expectCoherent();
}

TEST(SharedOnly, TwoSharersAllocateEntry)
{
    auto cfg = smallConfig(TrackerKind::SharedOnlyDir, 1.0 / 2048);
    Harness h(cfg);
    h.load(0, 100);
    EXPECT_EQ(h.sys.tracker->dirAllocs(), 0u);
    h.load(1, 100); // two sharers -> sparse directory entry
    EXPECT_EQ(h.sys.tracker->dirAllocs(), 1u);
    h.expectCoherent();
}

TEST(SharedOnly, MigratorySharingNeverAllocates)
{
    // E->M->E movement across cores without a two-sharer episode must
    // stay in the unbounded structure (paper Section I).
    auto cfg = smallConfig(TrackerKind::SharedOnlyDir, 1.0 / 2048);
    Harness h(cfg);
    for (CoreId c = 0; c < 8; ++c)
        h.store(c, 500);
    EXPECT_EQ(h.sys.tracker->dirAllocs(), 0u);
    EXPECT_EQ(h.stateAt(7, 500), MesiState::M);
    h.expectCoherent();
}

TEST(SharedOnly, DirEvictionOnlyHitsSharedBlocks)
{
    auto cfg = smallConfig(TrackerKind::SharedOnlyDir, 1.0 / 2048);
    Harness h(cfg);
    // Two widely shared blocks in the same slice (bank 0) fight over
    // the single entry.
    const Addr a = 8, b = 16;
    h.load(0, a);
    h.load(1, a);
    h.expectCoherent();
    h.load(0, b);
    h.load(1, b); // evicts a's entry: a's sharers back-invalidated
    EXPECT_EQ(h.stateAt(0, a), MesiState::I);
    EXPECT_EQ(h.stateAt(1, a), MesiState::I);
    EXPECT_GE(h.sys.engine.stats.backInvals.value(), 1u);
    h.expectCoherent();
}

TEST(SharedOnly, EntryPersistsAfterGetX)
{
    // Once allocated, the entry stays until eviction or no-owner
    // state — a GetX does not move it back to the unbounded table.
    auto cfg = smallConfig(TrackerKind::SharedOnlyDir, 2.0);
    Harness h(cfg);
    h.load(0, 100);
    h.load(1, 100);
    ASSERT_EQ(h.sys.tracker->dirAllocs(), 1u);
    h.store(2, 100);
    auto v = h.sys.tracker->view(100);
    EXPECT_TRUE(v.ts.exclusive());
    h.expectCoherent();
}

TEST(SharedOnly, SkewVariantTracksSharedBlocks)
{
    auto cfg = smallConfig(TrackerKind::SharedOnlyDir, 1.0 / 32);
    cfg.dirSkewed = true;
    cfg.dirAssoc = 4;
    Harness h(cfg);
    for (Addr b = 0; b < 32; ++b) {
        h.load(0, 100 + b);
        h.load(1, 100 + b);
    }
    EXPECT_GE(h.sys.tracker->dirAllocs(), 32u);
    for (Addr b = 0; b < 32; ++b) {
        auto v = h.sys.tracker->view(100 + b);
        if (!v.ts.invalid()) {
            EXPECT_TRUE(v.ts.shared());
        }
    }
    h.expectCoherent();
}

TEST(SharedOnly, AlwaysTwoHopReads)
{
    auto cfg = smallConfig(TrackerKind::SharedOnlyDir, 1.0 / 2048);
    Harness h(cfg);
    h.load(0, 100);
    h.load(1, 100);
    h.load(2, 100);
    EXPECT_EQ(h.sys.engine.stats.lengthenedReads.value(), 0u);
}
