/** @file Unit tests for the deterministic RNG. */

#include <gtest/gtest.h>

#include <vector>

#include "common/rng.hh"

using namespace tinydir;

TEST(Rng, DeterministicPerSeed)
{
    Rng a(7), b(7), c(8);
    for (int i = 0; i < 100; ++i) {
        auto va = a.next();
        EXPECT_EQ(va, b.next());
        EXPECT_NE(va, c.next()); // overwhelmingly likely
    }
}

TEST(Rng, BelowStaysInRange)
{
    Rng r(3);
    for (std::uint64_t bound : {1ull, 2ull, 7ull, 1000ull, 1ull << 40}) {
        for (int i = 0; i < 200; ++i)
            EXPECT_LT(r.below(bound), bound);
    }
}

TEST(Rng, UniformInUnitInterval)
{
    Rng r(11);
    double sum = 0;
    for (int i = 0; i < 10000; ++i) {
        double u = r.uniform();
        ASSERT_GE(u, 0.0);
        ASSERT_LT(u, 1.0);
        sum += u;
    }
    EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Rng, ChanceMatchesProbability)
{
    Rng r(13);
    int hits = 0;
    for (int i = 0; i < 20000; ++i)
        hits += r.chance(0.3);
    EXPECT_NEAR(hits / 20000.0, 0.3, 0.02);
}

TEST(Rng, ZipfSkewsTowardZero)
{
    Rng r(17);
    const std::uint64_t n = 100;
    std::vector<unsigned> counts(n, 0);
    for (int i = 0; i < 50000; ++i)
        ++counts[r.zipf(n, 0.8)];
    // Rank 0 must be much more popular than rank n-1.
    EXPECT_GT(counts[0], counts[n - 1] * 4);
    // All ranks reachable.
    for (auto v : counts)
        EXPECT_GE(v, 0u);
}

TEST(Rng, ZipfThetaZeroIsUniform)
{
    Rng r(19);
    const std::uint64_t n = 16;
    std::vector<unsigned> counts(n, 0);
    for (int i = 0; i < 32000; ++i)
        ++counts[r.zipf(n, 0.0)];
    for (auto v : counts)
        EXPECT_NEAR(static_cast<double>(v), 2000.0, 350.0);
}

TEST(Rng, ZipfDegenerateSizes)
{
    Rng r(23);
    EXPECT_EQ(r.zipf(1, 0.9), 0u);
    for (int i = 0; i < 100; ++i)
        EXPECT_LT(r.zipf(2, 0.9), 2u);
}
