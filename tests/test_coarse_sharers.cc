/** @file Tests of coarse sharer vectors on the sparse directory. */

#include <gtest/gtest.h>

#include <string>

#include "common/sim_error.hh"
#include "proto/engine.hh"
#include "test_util.hh"

using namespace tinydir;
using tinydir::test::Harness;
using tinydir::test::smallConfig;

namespace
{

SystemConfig
coarseCfg(unsigned grain)
{
    SystemConfig cfg = smallConfig(TrackerKind::SparseDir);
    cfg.sharerGrain = grain;
    return cfg;
}

} // namespace

TEST(CoarseSharers, ConfigValidation)
{
    auto expectConfigError = [](SystemConfig &c, const char *substr) {
        try {
            c.validate();
            FAIL() << "expected ConfigError mentioning " << substr;
        } catch (const ConfigError &e) {
            EXPECT_NE(std::string(e.what()).find(substr),
                      std::string::npos)
                << e.what();
        }
    };
    SystemConfig cfg = smallConfig(TrackerKind::TinyDir, 1.0 / 32);
    cfg.sharerGrain = 2;
    expectConfigError(cfg, "sparse directory only");
    SystemConfig bad = smallConfig(TrackerKind::SparseDir);
    bad.sharerGrain = 3;
    expectConfigError(bad, "power of two");
}

TEST(CoarseSharers, TrackedSetIsGroupSuperset)
{
    Harness h(coarseCfg(4));
    h.load(0, 100);
    h.load(1, 100); // sharers {0,1} -> coarse group {0,1,2,3}
    auto v = h.sys.tracker->view(100);
    ASSERT_TRUE(v.ts.shared());
    for (CoreId c = 0; c < 4; ++c)
        EXPECT_TRUE(v.ts.sharers.contains(c));
    for (CoreId c = 4; c < 8; ++c)
        EXPECT_FALSE(v.ts.sharers.contains(c));
    h.expectCoherent();
}

TEST(CoarseSharers, GroupmateReadStaysTwoHop)
{
    Harness h(coarseCfg(4));
    h.load(0, 100);
    h.load(1, 100);
    // Core 2 is in the tracked group but holds nothing; its read must
    // complete normally (two-hop LLC hit).
    const Counter lengthened =
        h.sys.engine.stats.lengthenedReads.value();
    h.load(2, 100);
    EXPECT_EQ(h.stateAt(2, 100), MesiState::S);
    EXPECT_EQ(h.sys.engine.stats.lengthenedReads.value(), lengthened);
    h.expectCoherent();
}

TEST(CoarseSharers, InvalidationVisitsWholeGroup)
{
    Harness grain1(coarseCfg(1));
    Harness grain4(coarseCfg(4));
    for (auto *h : {&grain1, &grain4}) {
        h->load(0, 100);
        h->load(1, 100);
        h->store(6, 100);
        EXPECT_EQ(h->stateAt(0, 100), MesiState::I);
        EXPECT_EQ(h->stateAt(1, 100), MesiState::I);
        EXPECT_EQ(h->stateAt(6, 100), MesiState::M);
        std::string msg;
        EXPECT_TRUE(h->sys.verifyCoherence(&msg)) << msg;
    }
    // The coarse vector sends invalidations to the groupmates too.
    EXPECT_GT(grain4.sys.engine.stats.invalidations.value(),
              grain1.sys.engine.stats.invalidations.value());
}

TEST(CoarseSharers, SramBitsShrinkWithGrain)
{
    std::uint64_t prev = ~0ull;
    for (unsigned grain : {1u, 2u, 4u, 8u}) {
        SystemConfig cfg = coarseCfg(grain);
        Harness h(cfg);
        const std::uint64_t bits = h.sys.tracker->trackerSramBits();
        EXPECT_LT(bits, prev);
        prev = bits;
    }
}

TEST(CoarseSharers, CoherentUnderStress)
{
    Harness h(coarseCfg(2));
    Rng rng(77);
    for (unsigned i = 0; i < 4000; ++i) {
        const CoreId c = static_cast<CoreId>(rng.below(8));
        TraceAccess a;
        a.gap = 1 + rng.below(6);
        a.type = rng.chance(0.35) ? AccessType::Store
                                  : AccessType::Load;
        a.addr = rng.below(96) << blockShift;
        const Cycle issue = h.sys.cores[c].clock + a.gap;
        h.sys.cores[c].clock = h.sys.executeAccess(c, a, issue);
        if (i % 500 == 0)
            h.expectCoherent();
    }
    h.expectCoherent();
}

TEST(CoarseSharers, PerformanceCloseToFullMap)
{
    // The paper's premise for entry-width reduction: coarse vectors
    // barely change performance while shrinking storage.
    double exact = 0, coarse = 0;
    for (unsigned grain : {1u, 4u}) {
        SystemConfig cfg = coarseCfg(grain);
        Harness h(cfg);
        Rng rng(5);
        for (unsigned i = 0; i < 6000; ++i) {
            const CoreId c = static_cast<CoreId>(rng.below(8));
            TraceAccess a;
            a.gap = 4;
            a.type = rng.chance(0.2) ? AccessType::Store
                                     : AccessType::Load;
            a.addr = rng.below(256) << blockShift;
            const Cycle issue = h.sys.cores[c].clock + a.gap;
            h.sys.cores[c].clock = h.sys.executeAccess(c, a, issue);
        }
        (grain == 1 ? exact : coarse) =
            static_cast<double>(h.sys.execCycles());
    }
    EXPECT_NEAR(coarse / exact, 1.0, 0.05);
}
